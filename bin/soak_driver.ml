(* The soak harness behind `axml soak`: hold a seeded adversarial
   workload against a *served* peer — by default one this driver spawns
   as a separate process (`axml serve` via fork/exec), or any peer
   already listening when --host/--port point elsewhere.

   Each worker owns one socket client and one sender peer; all workers
   share one resilience guard (so a breaker tripped by one worker
   short-circuits the others — that is the point) and one scheduled
   oracle per declared function, whose behaviour follows the schedule's
   fault timeline: honest during warm-up and steady state, 50 ms slow
   during the first brownout, dead during the second, honest again for
   recovery. Axml_workload.Soak drives the phases, windows the metrics
   and grades the verdict; this driver maps outcomes, spawns/terminates
   the server, prints progress and writes BENCH_SOAK.json. *)

module Schema = Axml_schema.Schema
module Metrics = Axml_obs.Metrics
module Resilience = Axml_services.Resilience
module Oracle = Axml_services.Oracle
module Service = Axml_services.Service
module Registry = Axml_services.Registry
module Peer = Axml_peer.Peer
module Enforcement = Axml_peer.Enforcement
module Client = Axml_net.Client
module Mix = Axml_workload.Mix
module Schedule = Axml_workload.Schedule
module Soak = Axml_workload.Soak

exception Soak_failed of string

let failf fmt = Fmt.kstr (fun m -> raise (Soak_failed m)) fmt

let say quiet fmt =
  if quiet then Format.ifprintf Fmt.stdout (fmt ^^ "@.")
  else Fmt.pr (fmt ^^ "@.")

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Spawning the served peer (a genuinely separate process)             *)
(* ------------------------------------------------------------------ *)

type server = { pid : int; banner : in_channel }

(* "name: serving on 127.0.0.1:34211 (binary + HTTP; ...)" *)
let parse_banner_port line =
  let needle = "serving on " in
  let rec find i =
    if i + String.length needle > String.length line then None
    else if String.sub line i (String.length needle) = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let rest =
      String.sub line
        (i + String.length needle)
        (String.length line - i - String.length needle)
    in
    (match String.index_opt rest ':' with
     | None -> None
     | Some c ->
       let digits = Buffer.create 8 in
       let rec scan j =
         if
           j < String.length rest
           && rest.[j] >= '0'
           && rest.[j] <= '9'
         then begin
           Buffer.add_char digits rest.[j];
           scan (j + 1)
         end
       in
       scan (c + 1);
       int_of_string_opt (Buffer.contents digits))

let spawn_server ~schema_path ~k ~max_connections ~max_in_flight =
  let exe = Sys.executable_name in
  let argv =
    [| exe; "serve"; "-s"; schema_path; "-p"; "0"; "-k"; string_of_int k;
       "--name"; "soak-peer"; "--oracle"; "fail";
       "--max-connections"; string_of_int max_connections;
       "--max-in-flight"; string_of_int max_in_flight |]
  in
  let r, w = Unix.pipe ~cloexec:false () in
  let pid = Unix.create_process exe argv Unix.stdin w Unix.stderr in
  Unix.close w;
  let banner = Unix.in_channel_of_descr r in
  let rec wait_port () =
    match input_line banner with
    | line ->
      (match parse_banner_port line with
       | Some port -> port
       | None -> wait_port ())
    | exception End_of_file ->
      ignore (Unix.waitpid [] pid);
      failf "the spawned server exited before announcing its port"
  in
  let port = wait_port () in
  ({ pid; banner }, port)

let stop_server { pid; banner } =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
  close_in_noerr banner

(* ------------------------------------------------------------------ *)
(* The adversarial environment: scheduled oracles + a shared guard     *)
(* ------------------------------------------------------------------ *)

let behaviour_of_fault ~honest ~fname = function
  | Schedule.Healthy -> honest
  | Schedule.Flaky period -> Oracle.flaky ~period honest
  | Schedule.Slow delay_s -> Oracle.timing_out ~delay_s honest
  | Schedule.Dead -> Oracle.failing fname

(* One scheduled behaviour per declared function, shared by every
   worker: the same wall-clock timeline drives them all. *)
let scheduled_services ~schedule ~origin ~env ~s0 =
  let timeline = Schedule.fault_timeline schedule in
  List.filter_map
    (fun fname ->
      match Schema.find_function s0 fname with
      | None -> None
      | Some f ->
        let honest =
          Oracle.honest_random ~seed:schedule.Schedule.seed ~env s0 fname
        in
        let entries =
          List.map
            (fun (t, fault) -> (t, behaviour_of_fault ~honest ~fname fault))
            timeline
        in
        Some (fname, f, Oracle.scheduled ~origin entries))
    (Schema.function_names s0)

(* ------------------------------------------------------------------ *)
(* Progress + verdict rendering                                        *)
(* ------------------------------------------------------------------ *)

let fmt_q v = if Float.is_nan v then "-" else Fmt.str "%.1fms" (v *. 1000.)

let print_window quiet (w : Soak.window) =
  let breakers =
    List.filter (fun (_, st) -> st <> `Closed) w.Soak.w_breakers
  in
  say quiet "  [%5.1fs] %-13s %5d req %7.1f/s  p50 %-7s p99 %-7s%s%s"
    w.Soak.w_end_s w.Soak.w_phase w.Soak.w_requests w.Soak.w_rate
    (fmt_q w.Soak.w_p50) (fmt_q w.Soak.w_p99)
    (if w.Soak.w_trips > 0 then Fmt.str "  trips %d" w.Soak.w_trips else "")
    (if breakers = [] then ""
     else
       "  open: "
       ^ String.concat ","
           (List.map
              (fun (n, st) ->
                n ^ (match st with `Half_open -> "(half)" | _ -> ""))
              breakers))

let print_verdict quiet (r : Soak.report) =
  say quiet "";
  List.iter
    (fun (c : Soak.check) ->
      say quiet "  %-19s %s  %s" c.Soak.check
        (if c.Soak.ok then "ok" else "FAIL")
        c.Soak.detail)
    r.Soak.verdict.Soak.checks;
  let total =
    List.fold_left (fun acc s -> acc + s.Soak.s_requests) 0 r.Soak.phases
  in
  say quiet "";
  say quiet
    "soak %s: %d requests over %.1fs, %d breaker trip(s), heap high water \
     %d words"
    (if r.Soak.verdict.Soak.pass then "PASS" else "FAIL")
    total r.Soak.total_s r.Soak.resilience.Resilience.trips
    r.Soak.heap_high_water_words

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

let run ~quiet ~spawn ~host ~port ~s0 ~exchange ~exchange_path ~churn ~k
    ~duration_s ~workers ~window_s ~seed ~out () =
  let churn_schema, with_churn =
    match churn with Some s -> (s, true) | None -> (s0, false)
  in
  let schedule =
    Schedule.default ~seed ~workers ~churn:with_churn ~total_s:duration_s ()
  in
  let n_workers = Schedule.max_workers schedule in
  let max_in_flight = max (workers + 1) (n_workers / 2) in
  let server, port =
    if spawn then begin
      let server, port =
        spawn_server ~schema_path:exchange_path ~k
          ~max_connections:(n_workers + 8) ~max_in_flight
      in
      say quiet "spawned soak-peer (pid %d) on %s:%d (max in-flight %d)"
        server.pid host port max_in_flight;
      (Some server, port)
    end
    else (None, port)
  in
  Fun.protect ~finally:(fun () -> Option.iter stop_server server)
  @@ fun () ->
  let resilience =
    Resilience.create
      ~policy:
        (Resilience.policy ~max_retries:1 ~backoff_s:0.01 ~backoff_factor:2.
           ~breaker_threshold:3
           ~breaker_cooldown_s:(Float.max 0.5 (duration_s *. 0.03))
           ())
      ~seed ()
  in
  let env = Schema.env_of_schemas s0 exchange in
  let services =
    scheduled_services ~schedule ~origin:(Unix.gettimeofday ()) ~env ~s0
  in
  let clients =
    try
      Array.init n_workers (fun _ -> Client.connect ~host ~port ())
    with Unix.Unix_error (e, _, _) ->
      failf "cannot connect to %s:%d: %s (is a peer being served there?)"
        host port (Unix.error_message e)
  in
  Fun.protect ~finally:(fun () -> Array.iter Client.close clients)
  @@ fun () ->
  let senders =
    Array.init n_workers (fun i ->
        let sender =
          Peer.create ~name:(Fmt.str "soak-sender-%02d" i) ~schema:s0 ()
        in
        Peer.configure sender
          { Peer.default_config with
            Peer.k;
            resilience = Some resilience };
        List.iter
          (fun (fname, (f : Schema.func), behaviour) ->
            Registry.register (Peer.registry sender)
              (Service.make ~input:f.Schema.f_input ~output:f.Schema.f_output
                 fname behaviour))
          services;
        sender)
  in
  let send ~worker ~(phase : Schedule.phase) (item : Mix.item) =
    let exchange =
      match phase.Schedule.exchange with
      | `Primary -> exchange
      | `Churned -> churn_schema
    in
    let as_name = Fmt.str "soak-%02d" (item.Mix.seq mod 64) in
    match
      Client.send clients.(worker) ~sender:senders.(worker) ~exchange
        ~as_name item.Mix.doc
    with
    | Ok _ -> Soak.Accepted
    | Error (Enforcement.Service_fault _) -> Soak.Fault
    | Error _ -> Soak.Refused
    | exception Client.Net_error m ->
      if contains ~needle:"overloaded" m then Soak.Overloaded
      else Soak.Transport_error
  in
  let config =
    Soak.config ~window_s ~services:(List.map (fun (n, _, _) -> n) services)
      schedule
  in
  say quiet
    "soak: %d phase(s) over %.0fs, %d worker(s) peak, seed %d, k=%d, window \
     %.1fs"
    (List.length schedule.Schedule.phases)
    (Schedule.total_s schedule) n_workers seed k window_s;
  let report =
    Soak.run ~on_window:(print_window quiet) ~env ~config ~resilience
      ~schema:s0 ~send ()
  in
  print_verdict quiet report;
  Option.iter
    (fun path ->
      let oc = open_out_bin path in
      output_string oc (Soak.report_to_json report);
      output_char oc '\n';
      close_out oc;
      say quiet "wrote %s" path)
    out;
  if report.Soak.verdict.Soak.pass then 0 else 1
