(* The three-peer federation demo behind `axml federation`: real sockets
   on loopback, and every cross-peer hop over the wire.

     timeout.com (C)  hosts the services: Get_Temp, TimeOut, Get_Date
     reader (B)       enforces the exchange schema on everything it
                      receives; persists its repository via Repo
     newspaper.com (A) imports C's services from their WSDL over the
                      wire, enforces outgoing documents against B's
                      exchange schema, and ships them to B

   The demo asserts, not just prints: networked outcomes must equal the
   in-process ones byte for byte (an identical twin federation runs
   entirely in-process as the reference), the server must survive a
   killed client and a slow-service brownout, the repository must
   recover after the server goes away, and no fds may leak.

   The whole federation runs at one rewriting depth k, agreed on the
   wire when the exchange opens. TimeOut's exhibits embed Get_Date
   calls one level down, so the document stream is only shippable at
   k >= 2 — at k = 1 both transports must refuse identically, and a
   depth-mismatched agreement must be turned away before any document
   flows. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module D = Axml_core.Document
module Rewriter = Axml_core.Rewriter
module Service = Axml_services.Service
module Peer = Axml_peer.Peer
module Enforcement = Axml_peer.Enforcement
module Syntax = Axml_peer.Syntax
module Wire = Axml_net.Wire
module Endpoint = Axml_net.Endpoint
module Server = Axml_net.Server
module Client = Axml_net.Client
module Repo = Axml_net.Repo

exception Demo_failed of string

let failf fmt = Fmt.kstr (fun m -> raise (Demo_failed m)) fmt

let say quiet fmt =
  if quiet then Format.ifprintf Fmt.stdout (fmt ^^ "@.")
  else Fmt.pr (fmt ^^ "@.")

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> failf "demo schema: %s" e

(* ------------------------------------------------------------------ *)
(* Schemas (the paper's newspaper example, Fig. 1/2)                   *)
(* ------------------------------------------------------------------ *)

let common = {|
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.(Get_Date | date)
element performance = title.date
function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
function Get_Date : title -> date
|}

(* A's local schema: temperature and exhibits may still be calls, and an
   exhibit may itself embed a Get_Date call (intensional one level
   deeper — the depth the k bound governs). *)
let schema_sender =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
|} ^ common)

(* The agreed exchange schema: fully extensional, down to the exhibits.
   TimeOut's exhibits still embed Get_Date calls, so only a sender
   rewriting at k >= 2 can honour this agreement. *)
let schema_exchange = parse_schema {|
root newspaper
element newspaper = title.date.temp.exhibit*
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.date
element performance = title.date
|}

(* C's schema: its exhibits are intensional (they embed Get_Date), so
   TimeOut's WSDL_int descriptor carries the Get_Date declaration along
   with the element types. Every provided signature itself stays over
   element types. *)
let schema_provider = parse_schema {|
root listing
element listing = exhibit*
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.(Get_Date | date)
element performance = title.date
function Get_Date : title -> date
|}

let fig2a title =
  D.elem "newspaper"
    [ D.elem "title" [ D.data title ];
      D.elem "date" [ D.data "04/10/2002" ];
      D.call "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ];
      D.call "TimeOut" [ D.data "exhibits" ] ]

(* ------------------------------------------------------------------ *)
(* Peers                                                               *)
(* ------------------------------------------------------------------ *)

(* C's deterministic service behaviours — determinism is what makes the
   networked/in-process parity check exact. [slow_started] flags the
   brownout probe: it flips when the slow call is being served. *)
let provide_services ?(slow_started = Atomic.make false) peer =
  Peer.provide peer ~name:"Get_Temp" ~input:(R.sym (Schema.A_label "city"))
    ~output:(R.sym (Schema.A_label "temp"))
    (Peer.Const [ D.elem "temp" [ D.data "15" ] ]);
  (* TimeOut answers with an exhibit that still embeds a Get_Date call:
     perfectly legal under C's (and A's) intensional exhibit type, but
     one rewriting level short of the extensional exchange schema. *)
  Peer.provide peer ~name:"TimeOut" ~input:(R.sym Schema.A_data)
    ~output:
      (R.star
         (R.alt (R.sym (Schema.A_label "exhibit"))
            (R.sym (Schema.A_label "performance"))))
    (Peer.Const
       [ D.elem "exhibit"
           [ D.elem "title" [ D.data "Monet" ];
             D.call "Get_Date" [ D.elem "title" [ D.data "Monet" ] ] ] ]);
  Peer.provide peer ~name:"Get_Date" ~input:(R.sym (Schema.A_label "title"))
    ~output:(R.sym (Schema.A_label "date"))
    (Peer.Const [ D.elem "date" [ D.data "04/10/2002" ] ]);
  Peer.provide peer ~name:"Slow" ~input:(R.sym Schema.A_data)
    ~output:(R.sym Schema.A_data)
    (Peer.Compute
       (fun _ ->
         Atomic.set slow_started true;
         Thread.delay 0.3;
         [ D.data "slow" ]))

let open_fds () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Some (Array.length entries)
  | exception Sys_error _ -> None

(* A raw loopback connection for protocol-abuse probes. *)
let with_raw_socket port f =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
      f fd)

(* ------------------------------------------------------------------ *)
(* The demo                                                            *)
(* ------------------------------------------------------------------ *)

let run ~docs ~dir ~quiet ~k () =
  let say fmt = say quiet fmt in
  let fds_before = open_fds () in

  (* --- the served federation ------------------------------------- *)
  let slow_started = Atomic.make false in
  let peer_c = Peer.create ~name:"timeout.com" ~schema:schema_provider () in
  provide_services ~slow_started peer_c;
  let server_c = Server.start (Endpoint.create peer_c) in

  (* The receiver enforces at the same depth [k] as the sender; the wire
     agreement ([Open_exchange]) proves it before any document flows. *)
  let receiver_config = { Peer.default_config with Peer.k } in
  let peer_b = Peer.create ~name:"reader" ~schema:schema_exchange () in
  let repo_b = Repo.attach ~dir peer_b in
  let server_b =
    Server.start (Endpoint.create ~config:receiver_config ~repo:repo_b peer_b)
  in
  say "serving timeout.com on 127.0.0.1:%d, reader on 127.0.0.1:%d (k=%d)"
    (Server.port server_c) (Server.port server_b) k;

  (* TimeOut's output type [(exhibit | performance)*] does not guarantee
     the exchange's [exhibit*], so safe rewriting alone cannot ship
     fig2a: both senders run with the possible-rewriting fallback — the
     same config record, applied through [Peer.configure]. *)
  let sender_config =
    { Peer.default_config with Peer.fallback_possible = true; Peer.k }
  in
  let peer_a = Peer.create ~name:"newspaper.com" ~schema:schema_sender () in
  Peer.configure peer_a sender_config;
  let client_c = Client.connect ~port:(Server.port server_c) () in
  let client_b = Client.connect ~port:(Server.port server_b) () in

  (* --- the in-process reference twin ------------------------------ *)
  let twin_c = Peer.create ~name:"timeout.com" ~schema:schema_provider () in
  provide_services twin_c;
  let twin_b = Peer.create ~name:"reader" ~schema:schema_exchange () in
  Peer.configure twin_b receiver_config;
  let twin_a = Peer.create ~name:"newspaper.com" ~schema:schema_sender () in
  Peer.configure twin_a sender_config;
  Peer.connect twin_a ~provider:twin_c;

  let c_name, c_protocol = Client.ping client_c in
  let b_name, _ = Client.ping client_b in
  if (c_name, b_name) <> ("timeout.com", "reader") then
    failf "ping: unexpected peer names %s / %s" c_name b_name;
  say "pinged %s (wire protocol v%d) and %s" c_name c_protocol b_name;

  (* A learns C's services from their WSDL over the wire. *)
  let imported = Client.import_services client_c ~into:peer_a in
  say "imported from %s: %s" c_name (String.concat ", " imported);
  if not (List.mem "Get_Temp" imported && List.mem "TimeOut" imported) then
    failf "WSDL import missed a service (got: %s)" (String.concat ", " imported);

  (* A remote call through the SOAP envelope over the socket. *)
  (match Client.call client_c "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ] with
   | [ D.Elem { label = "temp"; _ } ] -> say "called Get_Temp on %s over the wire" c_name
   | other -> failf "Get_Temp returned %s" (Fmt.str "%a" D.pp_forest other));

  (* --- the document stream: networked vs in-process parity --------
     Every fig2a needs TimeOut, whose exhibits embed Get_Date calls one
     level down: at k >= 2 the sender re-enforces the returned forest
     and every document must be accepted; at k = 1 the sender cannot
     reach the embedded call and the receiver must refuse — on both
     transports, with equal verdicts (no sender-pass/receiver-refuse
     disagreement between the networked and in-process paths). *)
  let accepted = ref 0 and refused = ref 0 in
  for i = 1 to docs do
    let doc = fig2a (Fmt.str "The Sun #%d" i) in
    let as_name = Fmt.str "front-page-%d" i in
    let net =
      Client.send client_b ~sender:peer_a ~exchange:schema_exchange ~as_name doc
    in
    let reference =
      Peer.send twin_a ~receiver:twin_b ~exchange:schema_exchange ~as_name doc
    in
    (match (net, reference) with
     | Ok n, Ok r ->
       if not (D.equal n.Peer.sent r.Peer.sent) then
         failf "doc %d: networked and in-process enforcement sent different \
                documents" i;
       if n.Peer.wire_bytes <> r.Peer.wire_bytes then
         failf "doc %d: wire sizes differ (%d vs %d)" i n.Peer.wire_bytes
           r.Peer.wire_bytes;
       incr accepted
     | Error en, Error er ->
       if en <> er then
         failf "doc %d: networked and in-process refusal verdicts differ" i;
       incr refused
     | Ok _, Error e ->
       failf "doc %d: networked exchange accepted what the in-process one \
              refused: %a" i Enforcement.pp_error e
     | Error e, Ok _ ->
       failf "doc %d: networked exchange refused what the in-process one \
              accepted: %a" i Enforcement.pp_error e)
  done;
  if k >= 2 && !refused > 0 then
    failf "%d document(s) refused at k=%d — the TimeOut re-enforcement gap is \
           back" !refused k;
  if k <= 1 && !accepted > 0 then
    failf "%d document(s) accepted at k=1 — an embedded Get_Date call slipped \
           through validation" !accepted;
  say "exchanged %d document(s) at k=%d (%d accepted, %d refused); networked \
       outcomes byte-identical to in-process ones"
    docs k !accepted !refused;

  (* A document the receiver must refuse: verdicts must also agree.
     Both verdicts are computed from the same agreement bytes — the
     XML the schema crosses the wire as — like two real peers parsing
     one agreement document. *)
  let bad = D.elem "newspaper" [ D.elem "title" [ D.data "liar" ] ] in
  let bad_xml = Syntax.to_xml_string ~pretty:false bad in
  let agreement_xml = Axml_peer.Xml_schema_int.to_string schema_exchange in
  let agreement = Axml_peer.Xml_schema_int.of_string agreement_xml in
  (* A sender configured at another depth must be turned away at the
     agreement, before any document flows. *)
  (match
     Client.rpc client_b
       (Wire.Open_exchange { schema_xml = agreement_xml; k = k + 1 })
   with
   | Wire.Error { code = "k-mismatch"; _ } ->
     say "agreement at k=%d refused by a k=%d receiver (code k-mismatch)"
       (k + 1) k
   | r -> failf "mismatched-depth agreement was not refused: %a" Wire.pp_response r);

  let net_verdict =
    match
      Client.rpc client_b (Wire.Open_exchange { schema_xml = agreement_xml; k })
    with
    | Wire.Exchange_opened { id; k = _ } ->
      (match
         Client.rpc client_b
           (Wire.Exchange { exchange = id; as_name = "bad"; doc_xml = bad_xml })
       with
       | Wire.Refused { refusals } ->
         Enforcement.Rejected
           (List.map
              (fun { Wire.at; context } ->
                { Rewriter.at;
                  reason = Rewriter.Unsafe_word { context; word = [] } })
              refusals)
       | r -> failf "bad document was not refused: %a" Wire.pp_response r)
    | r -> failf "open-exchange failed: %a" Wire.pp_response r
  in
  let ref_verdict =
    match Peer.receive twin_b ~exchange:agreement ~as_name:"bad" bad_xml with
    | Error e -> e
    | Ok _ -> failf "in-process receive accepted the bad document"
  in
  if net_verdict <> ref_verdict then
    failf "refusal verdicts differ:@.  net: %a@.  ref: %a" Enforcement.pp_error
      net_verdict Enforcement.pp_error ref_verdict;
  say "refusal verdicts identical across transports";

  (* --- the k=1 gap, reproduced in process -------------------------
     At k=1 the sender's own enforcement passes fig2a (TimeOut's answer
     conforms to its declared output type) yet the shipped document
     still embeds Get_Date — so a receiver honouring the extensional
     agreement must refuse it. k >= 2 closes the gap by re-enforcing
     TimeOut's answer against the remaining budget. *)
  let gap_config = { sender_config with Peer.k = 1 } in
  let gap_a = Peer.create ~name:"newspaper.com" ~schema:schema_sender () in
  Peer.configure gap_a gap_config;
  Peer.connect gap_a ~provider:twin_c;
  let gap_doc = fig2a "The Sun (k=1)" in
  (match
     Enforcement.Pipeline.enforce
       (Peer.exchange_pipeline gap_a ~exchange:schema_exchange) gap_doc
   with
   | Error e -> failf "k=1 sender enforcement refused fig2a: %a" Enforcement.pp_error e
   | Ok (sent, _) ->
     let gap_b = Peer.create ~name:"reader" ~schema:schema_exchange () in
     (match
        Peer.receive gap_b ~exchange:agreement ~as_name:"gap"
          (Syntax.to_xml_string ~pretty:false sent)
      with
      | Error (Enforcement.Rejected _) ->
        say "k=1 gap reproduced: sender enforcement passed, receiver refused \
             the embedded Get_Date (closed at k>=2)"
      | Ok _ ->
        failf "k=1: receiver accepted a document with an embedded call"
      | Error e -> failf "k=1 receive failed oddly: %a" Enforcement.pp_error e));

  (* --- resilience: a killed client must not hurt the server ------- *)
  with_raw_socket (Server.port server_b) (fun fd ->
      (* half a frame header, then vanish *)
      ignore (Unix.write_substring fd "AXF1\x00\x00" 0 6));
  with_raw_socket (Server.port server_b) (fun fd ->
      (* a well-framed but undecodable payload: answered, not fatal *)
      let junk = "\xff\xffgarbage" in
      let b = Buffer.create 16 in
      Buffer.add_string b Wire.magic;
      let n = String.length junk in
      List.iter
        (fun shift -> Buffer.add_char b (Char.chr ((n lsr shift) land 0xff)))
        [ 24; 16; 8; 0 ];
      Buffer.add_string b junk;
      ignore (Unix.write_substring fd (Buffer.contents b) 0 (Buffer.length b));
      let reply = Bytes.create 256 in
      ignore (Unix.read fd reply 0 256));
  (match Client.ping client_b with
   | "reader", _ -> say "server survived a killed client and a garbage frame"
   | _ -> failf "server unhealthy after protocol abuse");

  (* --- brownout: a slow service call must not block other work ---- *)
  let slow_result = ref None in
  let slow_thread =
    Thread.create
      (fun () ->
        let c = Client.connect ~port:(Server.port server_c) () in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () -> slow_result := Some (Client.call c "Slow" [ D.data "x" ])))
      ()
  in
  while not (Atomic.get slow_started) do Thread.yield () done;
  let pings = ref 0 in
  for _ = 1 to 5 do
    match Client.ping client_c with
    | "timeout.com", _ -> incr pings
    | _ -> failf "ping failed during brownout"
  done;
  if Option.is_some !slow_result then
    failf "slow call finished before the pings — brownout probe proves nothing";
  Thread.join slow_thread;
  (match !slow_result with
   | Some [ _ ] -> ()
   | _ -> failf "slow call did not complete");
  say "served %d ping(s) while a 300 ms service call was in flight" !pings;

  (* --- the HTTP front --------------------------------------------- *)
  let status, metrics =
    Client.http ~port:(Server.port server_b) ~meth:"GET" ~path:"/metrics" ()
  in
  if status <> 200 then failf "GET /metrics: HTTP %d" status;
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  if not (contains metrics "axml_net_requests_total") then
    failf "/metrics scrape is missing the endpoint counters";
  say "scraped /metrics over HTTP (%d bytes)" (String.length metrics);

  let extensional =
    Syntax.to_xml_string ~pretty:false
      (D.elem "newspaper"
         [ D.elem "title" [ D.data "posted" ];
           D.elem "date" [ D.data "04/10/2002" ];
           D.elem "temp" [ D.data "15" ] ])
  in
  let status, _ =
    Client.http ~port:(Server.port server_b) ~meth:"POST"
      ~path:"/exchange?as=posted" ~body:extensional ()
  in
  if status <> 200 then failf "POST /exchange: HTTP %d" status;
  (match Client.rpc client_b (Wire.Get_document { name = "posted" }) with
   | Wire.Document _ -> say "posted a document over HTTP and read it back"
   | r -> failf "posted document not stored: %a" Wire.pp_response r);

  (* --- shutdown, leak accounting, recovery ------------------------ *)
  Client.close client_b;
  Client.close client_c;
  Server.stop server_b;
  Server.stop server_c;
  Repo.close repo_b;
  say "drained both servers (connections: %d + %d, in flight: %d + %d)"
    (Server.connections server_b) (Server.connections server_c)
    (Server.in_flight server_b) (Server.in_flight server_c);
  if Server.connections server_b + Server.connections server_c <> 0 then
    failf "connections survived shutdown";

  (match (fds_before, open_fds ()) with
   | Some before, Some after when after > before ->
     failf "fd leak: %d open before, %d after" before after
   | Some before, Some after -> say "no fd leak (%d before, %d after)" before after
   | _ -> ());

  (* The repository must come back from disk into a fresh peer. *)
  let reborn = Peer.create ~name:"reader" ~schema:schema_exchange () in
  let repo2 = Repo.attach ~dir reborn in
  let expect = !accepted + 1 (* + the HTTP post *) in
  if Repo.recovered repo2 < expect then
    failf "recovery lost documents: %d recovered, %d expected"
      (Repo.recovered repo2) expect;
  if !accepted > 0 then begin
    let original = Peer.fetch peer_b "front-page-1" in
    let recovered_doc = Peer.fetch reborn "front-page-1" in
    if not (D.equal original recovered_doc) then
      failf "recovered document differs from the stored one"
  end;
  Repo.close repo2;
  say "repository recovered %d document(s) after restart" (Repo.recovered repo2);

  say "federation demo passed";
  0

let run ~docs ~dir ~quiet ~k () =
  match run ~docs ~dir ~quiet ~k () with
  | code -> code
  | exception Demo_failed m ->
    Fmt.epr "federation demo FAILED: %s@." m;
    1
