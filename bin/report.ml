(* Shared rendering for the axml CLI. Per-document outcomes, run
   statistics, metrics dumps and lint diagnostics are formatted in one
   place so that batch, rewrite, trace and lint agree on their output
   (and a new command cannot fork the format by copy-pasting). *)

module Enforcement = Axml_peer.Enforcement
module Resilience = Axml_services.Resilience
module Metrics = Axml_obs.Metrics
module Diagnostic = Axml_analysis.Diagnostic

let action_string = function
  | Enforcement.Conformed -> "conformed"
  | Enforcement.Rewritten -> "rewritten"
  | Enforcement.Rewritten_possible -> "rewritten-possible"

let error_tag = function
  | Enforcement.Rejected _ -> "REJECTED"
  | Enforcement.Attempt_failed _ -> "ATTEMPT-FAILED"
  | Enforcement.Service_fault _ -> "SERVICE-FAULT"
  | Enforcement.Precluded _ -> "PRECLUDED"

(* One shared per-document outcome printer: the outcome line on stdout
   (or [ppf]), error details on stderr. *)
let print_outcome ?(ppf = Fmt.stdout) ~label = function
  | Ok (_, report) ->
    Fmt.pf ppf "%s: %s, %d invocation(s)@." label
      (action_string report.Enforcement.action)
      (List.length report.Enforcement.invocations)
  | Error e ->
    Fmt.pf ppf "%s: %s@." label (error_tag e);
    Fmt.epr "%s: %a@." label Enforcement.pp_error e

(* The shared run-statistics printer. *)
let print_run_stats stats = Fmt.epr "%a@." Enforcement.Pipeline.pp_stats stats

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

(* Dump the process-wide metrics registry: Prometheus text format, or
   JSON when the file name ends in .json. *)
let write_metrics file =
  let data =
    if Filename.check_suffix file ".json" then Metrics.to_json Metrics.default
    else Metrics.to_prometheus Metrics.default
  in
  write_file file data

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let min_k_json (m : Enforcement.Pipeline.min_k_stats) =
  let dist =
    m.Enforcement.Pipeline.distribution
    |> List.map (fun (k, n) -> Printf.sprintf "\"%d\": %d" k n)
    |> String.concat ", "
  in
  Printf.sprintf
    "{ \"measured\": %d, \"distribution\": { %s }, \"over_budget\": %d }"
    m.Enforcement.Pipeline.measured dist m.Enforcement.Pipeline.unbounded

let stats_json ~sender ~exchange (s : Enforcement.Pipeline.stats) =
  let c = s.Enforcement.Pipeline.cache in
  let r = s.Enforcement.Pipeline.resilience in
  Printf.sprintf
    "{\n\
    \  \"timestamp\": %s,\n\
    \  \"sender_schema\": %s,\n\
    \  \"exchange_schema\": %s,\n\
    \  \"docs\": %d,\n\
    \  \"conformed\": %d,\n\
    \  \"rewritten\": %d,\n\
    \  \"rewritten_possible\": %d,\n\
    \  \"rejected\": %d,\n\
    \  \"attempt_failed\": %d,\n\
    \  \"faults\": %d,\n\
    \  \"precluded\": %d,\n\
    \  \"invocations\": %d,\n\
    \  \"elapsed_s\": %.6f,\n\
    \  \"docs_per_s\": %.1f,\n\
    \  \"cache\": { \"hits\": %d, \"misses\": %d, \"evictions\": %d, \
     \"entries\": %d },\n\
    \  \"cache_hit_rate\": %.4f,\n\
    \  \"resilience\": { \"calls\": %d, \"attempts\": %d, \"retries\": %d, \
     \"successes\": %d, \"gave_up\": %d, \"timeouts\": %d, \"trips\": %d, \
     \"short_circuited\": %d },\n\
    \  \"min_k\": %s\n\
     }\n"
    (Metrics.json_string (iso8601 (Unix.gettimeofday ())))
    (Metrics.json_string sender)
    (Metrics.json_string exchange)
    s.Enforcement.Pipeline.docs s.Enforcement.Pipeline.conformed
    s.Enforcement.Pipeline.rewritten s.Enforcement.Pipeline.rewritten_possible
    s.Enforcement.Pipeline.rejected s.Enforcement.Pipeline.attempt_failed
    s.Enforcement.Pipeline.faults s.Enforcement.Pipeline.precluded
    s.Enforcement.Pipeline.invocations s.Enforcement.Pipeline.elapsed_s
    s.Enforcement.Pipeline.docs_per_s c.Axml_core.Contract.hits
    c.Axml_core.Contract.misses c.Axml_core.Contract.evictions
    c.Axml_core.Contract.entries s.Enforcement.Pipeline.cache_hit_rate
    r.Resilience.calls r.Resilience.attempts r.Resilience.retries
    r.Resilience.successes r.Resilience.gave_up r.Resilience.timeouts
    r.Resilience.trips r.Resilience.short_circuited
    (min_k_json s.Enforcement.Pipeline.min_k)

(* A usage/input error as a one-diagnostic report: commands running
   under --format json still owe stdout a single valid envelope when
   they die before producing their real report (LINTING.md exit code
   2); the human-readable message goes to stderr as usual. *)
let error_envelope message =
  Diagnostic.report_to_json
    [ Diagnostic.make ~code:"AXM000" ~severity:Diagnostic.Error
        Diagnostic.Root message ]

(* Per-document outcomes and run statistics as the shared JSON envelope
   (diagnostics + summary + the command's payload), for batch --format
   json. Failures double as diagnostics so the summary counts them. *)
let outcome_json ~label result =
  let js = Metrics.json_string in
  match result with
  | Ok (_, report) ->
    Printf.sprintf {|{"doc":%s,"ok":true,"action":%s,"invocations":%d}|}
      (js label)
      (js (action_string report.Enforcement.action))
      (List.length report.Enforcement.invocations)
  | Error e ->
    Printf.sprintf {|{"doc":%s,"ok":false,"error":%s,"detail":%s}|} (js label)
      (js (error_tag e))
      (js (Fmt.str "%a" Enforcement.pp_error e))

let batch_json ~sender ~exchange ~outcomes stats =
  let diagnostics =
    List.filter_map
      (fun (label, result) ->
        match result with
        | Ok _ -> None
        | Error e ->
          Some
            (Diagnostic.make ~file:label ~code:"AXM033"
               ~severity:Diagnostic.Error Diagnostic.Root
               (Fmt.str "%a" Enforcement.pp_error e)))
      outcomes
  in
  let summary_head = Diagnostic.report_to_json diagnostics in
  (* splice the payload fields into the envelope object *)
  let head = String.sub summary_head 0 (String.length summary_head - 1) in
  Printf.sprintf "%s,\"outcomes\":[%s],\"stats\":%s}" head
    (String.concat ","
       (List.map (fun (label, r) -> outcome_json ~label r) outcomes))
    (String.trim (stats_json ~sender ~exchange stats))

(* Lint diagnostics: one line (plus hint) per finding in text mode with
   a trailing severity summary, or the stable JSON report. *)
let print_diagnostics ?(ppf = Fmt.stdout) ~format ds =
  let ds = List.sort Diagnostic.compare ds in
  match format with
  | `Json -> Fmt.pf ppf "%s@." (Diagnostic.report_to_json ds)
  | `Text ->
    List.iter (fun d -> Fmt.pf ppf "@[<v>%a@]@." Diagnostic.pp d) ds;
    Fmt.pf ppf "%d error(s), %d warning(s), %d hint(s)@."
      (Diagnostic.count Diagnostic.Error ds)
      (Diagnostic.count Diagnostic.Warning ds)
      (Diagnostic.count Diagnostic.Hint ds)

(* Schema-evolution reports (axml diff / axml migrate). Text mode shows
   only what changed, then the diagnostics; JSON is the shared envelope
   from Evolution. *)

module Evolution = Axml_analysis.Evolution

let change_of_presence = function
  | Evolution.Both c -> Evolution.change_to_string c
  | Evolution.Only_v1 -> "removed"
  | Evolution.Only_v2 -> "added"

let verdict_string = function
  | Axml_core.Contract.Safe -> "safe"
  | Axml_core.Contract.Possible_only -> "possible"
  | Axml_core.Contract.Impossible -> "impossible"

let print_diff ?(ppf = Fmt.stdout) ~format ?from_file ?to_file
    (r : Evolution.report) =
  match format with
  | `Json -> Fmt.pf ppf "%s@." (Evolution.report_to_json ?from_file ?to_file r)
  | `Text ->
    let changed = function
      | Evolution.Both Evolution.Identical -> false
      | _ -> true
    in
    List.iter
      (fun (ld : Evolution.label_diff) ->
        if changed ld.Evolution.l_presence then
          Fmt.pf ppf "element  %-20s %s%s@." ld.Evolution.l_label
            (change_of_presence ld.Evolution.l_presence)
            (match ld.Evolution.l_new_calls with
             | [] -> ""
             | cs -> Fmt.str " (new calls: %s)" (String.concat ", " cs)))
      r.Evolution.r_labels;
    List.iter
      (fun (fd : Evolution.func_diff) ->
        if
          changed fd.Evolution.f_presence
          || fd.Evolution.f_invocable_v1 <> fd.Evolution.f_invocable_v2
        then
          Fmt.pf ppf "function %-20s %s@." fd.Evolution.f_func
            (change_of_presence fd.Evolution.f_presence))
      r.Evolution.r_functions;
    List.iter
      (fun (v : Evolution.verdict_lift) ->
        Fmt.pf ppf "verdict  %-20s %s@." v.Evolution.v_label
          (verdict_string v.Evolution.v_verdict))
      r.Evolution.r_verdicts;
    print_diagnostics ~ppf ~format:`Text r.Evolution.r_diagnostics

let print_migration ?(ppf = Fmt.stdout) ~format ?from_file ?to_file
    (g : Evolution.migration) =
  match format with
  | `Json ->
    Fmt.pf ppf "%s@." (Evolution.migration_to_json ?from_file ?to_file g)
  | `Text ->
    List.iter
      (fun (a : Evolution.doc_advisory) ->
        let calls =
          match a.Evolution.a_calls with
          | [] -> ""
          | cs ->
            Fmt.str " — materialize %s"
              (String.concat ", "
                 (List.map
                    (fun (path, name) ->
                      Fmt.str "%s (at /%s)" name
                        (String.concat "/" (List.map string_of_int path)))
                    cs))
        in
        match a.Evolution.a_advisory with
        | Evolution.Conforms ->
          Fmt.pf ppf "%s: conforms — already an instance of the new schema@."
            a.Evolution.a_doc
        | Evolution.Materialize ->
          Fmt.pf ppf "%s: materialize%s@." a.Evolution.a_doc calls
        | Evolution.Possible ->
          Fmt.pf ppf
            "%s: possible%s (some service answers land outside the new \
             schema)@."
            a.Evolution.a_doc calls
        | Evolution.Doomed reason ->
          Fmt.pf ppf "%s: DOOMED — %s@." a.Evolution.a_doc reason)
      g.Evolution.g_advisories;
    Fmt.pf ppf "%s@."
      (if g.Evolution.g_migratable then
         "MIGRATABLE: every document conforms or rewrites safely after \
          materialization"
       else
         "NOT MIGRATABLE: some documents only possibly rewrite, or cannot \
          move at all")
