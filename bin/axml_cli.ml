(* axml — command-line driver over the library.

     axml validate  -s schema.axs doc.xml
     axml check     -f sender.axs -t exchange.axs doc.xml [-k N] [--possible]
     axml rewrite   -f sender.axs -t exchange.axs doc.xml [-k N] [--possible]
                    [--oracle random|fail] [-o out.xml]
     axml compat    -f sender.axs -t exchange.axs [-r root] [-k N]
     axml schema    -s schema.axs [--to text|xml]
     axml batch     -f sender.axs -t exchange.axs doc1.xml doc2.xml ...
                    [-k N] [--possible] [--oracle random|fail|flaky]
                    [--retries N] [--timeout-ms N] [--breaker-threshold N]
                    [--format text|json] [--stats-json FILE]
                    [--metrics-out FILE]
     axml trace     -f sender.axs -t exchange.axs doc.xml [-k N] [--possible]
                    [--oracle random|fail|flaky] [--retries N]
                    [--buffer N] [--jsonl FILE] [--metrics-out FILE]
     axml lint      -s schema.axs | -f sender.axs -t exchange.axs [doc.xml...]
                    [--format text|json] [--deny error|warning|hint]
                    [-k N] [--metrics-out FILE]
     axml diff      -f v1.axs -t v2.axs [-k N] [--format text|json]
                    [--deny error|warning|hint] [--metrics-out FILE]
     axml migrate   -f v1.axs -t v2.axs doc1.xml doc2.xml ...
                    [-k N] [--format text|json] [--metrics-out FILE]

   Schema files may use the compact textual syntax (see README) or the
   XML Schema_int syntax; the format is auto-detected. Documents are
   intensional XML with <int:fun> call nodes. The [rewrite] command
   simulates services with honest random oracles drawn from the declared
   signatures (failing stubs with --oracle fail, or flaky ones failing
   every 7th call with --oracle flaky). [batch] guards every invocation
   with a retry/timeout/circuit-breaker policy, so a misbehaving service
   costs one document, not the batch. [trace] replays one enforcement
   with the decision tracer attached and prints every recorded step —
   validation, cache queries, fork choices, invocation attempts,
   retries, breaker transitions, the final verdict. [diff] classifies a
   schema evolution label by label (identical / widened / narrowed /
   incompatible) and lifts the verdicts to contract level; [migrate]
   advises an archived corpus on moving to the new version, naming the
   calls each document must materialize. --metrics-out dumps
   the process-wide metrics registry (Prometheus text format, or JSON
   when FILE ends in .json); see OBSERVABILITY.md for the catalog. *)

open Cmdliner

module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module D = Axml_core.Document
module Validate = Axml_core.Validate
module Rewriter = Axml_core.Rewriter
module Generate = Axml_core.Generate
module Schema_rewrite = Axml_core.Schema_rewrite
module Syntax = Axml_peer.Syntax
module Xml_schema_int = Axml_peer.Xml_schema_int
module Enforcement = Axml_peer.Enforcement
module Resilience = Axml_services.Resilience
module Metrics = Axml_obs.Metrics
module Trace = Axml_obs.Trace

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

exception Cli_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Cli_error m)) fmt

(* Auto-detect the schema syntax: XML starts with '<'. *)
let load_schema path =
  let text = read_file path in
  let trimmed = String.trim text in
  if String.length trimmed > 0 && trimmed.[0] = '<' then
    try Xml_schema_int.of_string text
    with Xml_schema_int.Schema_syntax_error m -> fail "%s: %s" path m
  else
    match Schema_parser.parse_result text with
    | Ok s -> s
    | Error e -> fail "%s: %s" path e

let load_document path =
  try Syntax.of_xml_string (read_file path)
  with Syntax.Syntax_error m -> fail "%s: %s" path m

let write_output out text =
  match out with
  | None -> print_string text
  | Some path ->
    let oc = open_out_bin path in
    output_string oc text;
    close_out oc

(* Usage and input errors exit 2 with the message on stderr. Commands
   run with [--format json] pass the format along so stdout still
   carries one valid JSON envelope (the error as an AXM000 diagnostic)
   — a consumer parsing the output never sees an empty or truncated
   stream. *)
let wrap ?(format = `Text) f =
  let input_error m =
    (match format with
     | `Json -> Fmt.pr "%s@." (Report.error_envelope m)
     | `Text -> ());
    Fmt.epr "error: %s@." m;
    2
  in
  match f () with
  | code -> code
  | exception Cli_error m -> input_error m
  | exception Sys_error m -> input_error m

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let doc_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml"
         ~doc:"Intensional XML document.")

let schema_arg flags docv doc =
  Arg.(required & opt (some file) None & info flags ~docv ~doc)

let sender_arg = schema_arg [ "f"; "from" ] "SCHEMA" "The sender schema (s0)."
let target_arg = schema_arg [ "t"; "to" ] "SCHEMA" "The exchange schema."

let k_arg =
  Arg.(value & opt int 1 & info [ "k"; "depth" ] ~docv:"N"
         ~doc:"Maximum rewriting depth (Definition 7).")

let possible_arg =
  Arg.(value & flag & info [ "possible" ]
         ~doc:"Use possible rewriting instead of safe rewriting.")

let engine_arg =
  let engine_conv =
    Arg.enum [ ("lazy", Rewriter.Lazy); ("eager", Rewriter.Eager) ]
  in
  Arg.(value & opt engine_conv Rewriter.Lazy & info [ "engine" ] ~docv:"ENGINE"
         ~doc:"Analysis engine: $(b,lazy) (Section 7) or $(b,eager) (Figure 3).")

(* Shared by lint, diff, migrate, batch and compat, so the report
   surface stays one: JSON mode always prints a single envelope on
   stdout, even on usage/input errors (see [wrap]). *)
let format_arg =
  Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
       & info [ "format" ] ~docv:"FORMAT"
           ~doc:"Report format: $(b,text) or $(b,json).")

let deny_arg =
  let sev =
    Arg.enum
      [ ("error", Axml_analysis.Diagnostic.Error);
        ("warning", Axml_analysis.Diagnostic.Warning);
        ("hint", Axml_analysis.Diagnostic.Hint) ]
  in
  Arg.(value & opt sev Axml_analysis.Diagnostic.Error
       & info [ "deny" ] ~docv:"SEVERITY"
           ~doc:"Exit non-zero when any diagnostic reaches $(docv) \
                 ($(b,error), $(b,warning) or $(b,hint); default \
                 $(b,error)).")

(* ------------------------------------------------------------------ *)
(* validate                                                            *)
(* ------------------------------------------------------------------ *)

let validate_cmd =
  let run schema_path doc_path =
    wrap (fun () ->
        let schema = load_schema schema_path in
        let doc = load_document doc_path in
        let ctx = Validate.ctx schema in
        match Validate.document_violations ctx doc with
        | [] ->
          Fmt.pr "valid: the document is an instance of the schema@.";
          0
        | violations ->
          List.iter (Fmt.pr "%a@." Validate.pp_violation) violations;
          1)
  in
  let schema = schema_arg [ "s"; "schema" ] "SCHEMA" "The schema to validate against." in
  Cmd.v
    (Cmd.info "validate" ~doc:"Check that a document is an instance of a schema.")
    Term.(const run $ schema $ doc_arg)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let run sender target k possible engine doc_path =
    wrap (fun () ->
        let s0 = load_schema sender in
        let exchange = load_schema target in
        let doc = load_document doc_path in
        let rw = Rewriter.create ~k ~engine ~s0 ~target:exchange () in
        let failures =
          if possible then Rewriter.check_possible rw doc
          else Rewriter.check_safe rw doc
        in
        match failures with
        | [] ->
          Fmt.pr "%s: the document rewrites into the exchange schema@."
            (if possible then "possible" else "safe");
          0
        | fs ->
          List.iter (Fmt.pr "%a@." Rewriter.pp_failure) fs;
          1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Decide whether a document safely (or possibly) rewrites into an \
             exchange schema, without invoking anything.")
    Term.(const run $ sender_arg $ target_arg $ k_arg $ possible_arg
          $ engine_arg $ doc_arg)

(* ------------------------------------------------------------------ *)
(* rewrite                                                             *)
(* ------------------------------------------------------------------ *)

let oracle_arg =
  Arg.(value
       & opt (enum [ ("random", `Random); ("fail", `Fail); ("flaky", `Flaky) ])
           `Random
       & info [ "oracle" ] ~docv:"KIND"
           ~doc:"Simulated services: $(b,random) honest outputs drawn from \
                 the signatures, $(b,fail) stubs that refuse every call, or \
                 $(b,flaky) honest services that fail every 7th call.")

(* Invokers must be thread-safe: [batch --jobs N] calls them from
   several domains at once. The generator is one mutable PRNG stream,
   so draws are serialized behind a mutex; the flaky counter is an
   atomic. *)
let make_invoker ~env ~s0 oracle =
  match oracle with
  | `Fail -> fun name _ -> fail "service %s is unavailable (--oracle fail)" name
  | `Random ->
    let g = Generate.create ~env s0 in
    let lock = Mutex.create () in
    fun name _params ->
      Mutex.protect lock (fun () -> Generate.output_instance g name)
  | `Flaky ->
    let g = Generate.create ~env s0 in
    let lock = Mutex.create () in
    let count = Atomic.make 0 in
    fun name _params ->
      if (Atomic.fetch_and_add count 1 + 1) mod 7 = 0 then
        failwith ("service " ^ name ^ ": transient failure")
      else Mutex.protect lock (fun () -> Generate.output_instance g name)

let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Dump the metrics registry to $(docv) on exit: Prometheus \
               text format, or JSON when $(docv) ends in .json.")


let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Where to write the materialized document (default stdout).")

let rewrite_cmd =
  let run sender target k possible engine oracle out doc_path =
    wrap (fun () ->
        let s0 = load_schema sender in
        let exchange = load_schema target in
        let doc = load_document doc_path in
        let env = Schema.env_of_schemas s0 exchange in
        let invoker = make_invoker ~env ~s0 oracle in
        let config =
          { Enforcement.default_config with
            Enforcement.k; engine; fallback_possible = possible }
        in
        let result = Enforcement.enforce ~config ~s0 ~exchange ~invoker doc in
        (* the materialized document owns stdout; outcomes go to stderr *)
        Report.print_outcome ~ppf:Fmt.stderr ~label:doc_path result;
        match result with
        | Ok (doc', _) ->
          write_output out (Syntax.to_xml_string doc');
          0
        | Error _ -> 1)
  in
  Cmd.v
    (Cmd.info "rewrite"
       ~doc:"Materialize a document so it conforms to an exchange schema, \
             using simulated services.")
    Term.(const run $ sender_arg $ target_arg $ k_arg $ possible_arg
          $ engine_arg $ oracle_arg $ out_arg $ doc_arg)

(* ------------------------------------------------------------------ *)
(* batch                                                               *)
(* ------------------------------------------------------------------ *)

let batch_cmd =
  let docs_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"DOC.xml"
           ~doc:"Intensional XML documents, enforced in order.")
  in
  let stats_json_arg =
    Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write the batch statistics as JSON to $(docv).")
  in
  let retries_arg =
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N"
           ~doc:"Retry each failing invocation up to $(docv) times (with \
                 exponential backoff) before giving up on the document.")
  in
  let timeout_ms_arg =
    Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS"
           ~doc:"Wall-clock budget per invocation, covering all its retry \
                 attempts (default unbounded).")
  in
  let breaker_arg =
    Arg.(value & opt int 5 & info [ "breaker-threshold" ] ~docv:"N"
           ~doc:"Trip a per-service circuit breaker after $(docv) \
                 consecutive failures.")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N"
           ~doc:"Enforce the batch on $(docv) domains in parallel. \
                 Outcomes are reported in input order regardless.")
  in
  let min_k_arg =
    Arg.(value & flag & info [ "min-k" ]
           ~doc:"Also search, per document, for the minimal depth at which \
                 a safe (and a possible) rewriting exists, up to $(b,--k); \
                 the distribution lands in the batch statistics and the \
                 $(b,axml_enforce_min_k_total) metric.")
  in
  let run sender target k possible engine oracle retries timeout_ms
      breaker_threshold jobs min_k format stats_out metrics_out doc_paths =
    wrap ~format (fun () ->
        let s0 = load_schema sender in
        let exchange = load_schema target in
        let env = Schema.env_of_schemas s0 exchange in
        let invoker = make_invoker ~env ~s0 oracle in
        let resilience =
          Resilience.create
            ~policy:
              (Resilience.policy ~max_retries:retries ~backoff_s:0.001
                 ?timeout_s:(Option.map (fun ms -> float_of_int ms /. 1000.) timeout_ms)
                 ~breaker_threshold ())
            ()
        in
        let executor =
          if jobs <= 1 then Enforcement.Sequential
          else Enforcement.Parallel { jobs }
        in
        let config =
          { Enforcement.default_config with
            Enforcement.k; engine; fallback_possible = possible;
            resilience = Some resilience; executor; track_min_k = min_k }
        in
        let pipeline = Enforcement.Pipeline.create ~config ~s0 ~exchange ~invoker () in
        let failed = ref 0 in
        (* JSON mode owes stdout a single envelope, so per-document
           outcome lines move to stderr and the records accumulate *)
        let outcomes = ref [] in
        let report path result =
          if Result.is_error result then incr failed;
          match format with
          | `Text -> Report.print_outcome ~label:path result
          | `Json ->
            outcomes := (path, result) :: !outcomes;
            Report.print_outcome ~ppf:Fmt.stderr ~label:path result
        in
        (match executor with
         | Enforcement.Sequential ->
           (* stream: enforce and report one document at a time *)
           List.iter
             (fun path ->
               let doc = load_document path in
               report path (Enforcement.Pipeline.enforce pipeline doc))
             doc_paths
         | Enforcement.Parallel _ ->
           (* batch: results come back in input order, so the report
              reads exactly like the sequential one *)
           let docs = List.map load_document doc_paths in
           let results, _batch = Enforcement.Pipeline.enforce_many pipeline docs in
           List.iter2 report doc_paths results);
        let stats = Enforcement.Pipeline.stats pipeline in
        (match format with
         | `Text -> ()
         | `Json ->
           Fmt.pr "%s@."
             (Report.batch_json ~sender ~exchange:target
                ~outcomes:(List.rev !outcomes) stats));
        Report.print_run_stats stats;
        Option.iter
          (fun file ->
            write_output (Some file)
              (Report.stats_json ~sender ~exchange:target stats))
          stats_out;
        Option.iter Report.write_metrics metrics_out;
        if !failed = 0 then 0 else 1)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Enforce an exchange schema over a stream of documents through \
             one compiled pipeline (shared contract-analysis cache and \
             retry/timeout/circuit-breaker guard), reporting per-document \
             outcomes and batch statistics. With $(b,--jobs) N the batch \
             is sharded across N domains.")
    Term.(const run $ sender_arg $ target_arg $ k_arg $ possible_arg
          $ engine_arg $ oracle_arg $ retries_arg $ timeout_ms_arg
          $ breaker_arg $ jobs_arg $ min_k_arg $ format_arg
          $ stats_json_arg $ metrics_out_arg $ docs_arg)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let buffer_arg =
    Arg.(value & opt int 4096 & info [ "buffer" ] ~docv:"N"
           ~doc:"Keep the last $(docv) trace events (older ones are dropped).")
  in
  let jsonl_arg =
    Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE"
           ~doc:"Also write the recorded events to $(docv), one JSON object \
                 per line.")
  in
  let retries_arg =
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N"
           ~doc:"Retry each failing invocation up to $(docv) times before \
                 giving up on the document.")
  in
  let print_events events =
    match events with
    | [] -> Fmt.pr "(no events recorded)@."
    | (first : Trace.event) :: _ ->
      let t0 = first.Trace.time_s in
      List.iter
        (fun (e : Trace.event) ->
          Fmt.pr "#%03d %+9.1f us  %s%a@." e.Trace.seq
            ((e.Trace.time_s -. t0) *. 1e6)
            (String.make (2 * e.Trace.depth) ' ')
            Trace.pp_kind e.Trace.kind)
        events
  in
  let run sender target k possible engine oracle retries buffer jsonl
      metrics_out doc_path =
    wrap (fun () ->
        let s0 = load_schema sender in
        let exchange = load_schema target in
        let doc = load_document doc_path in
        let env = Schema.env_of_schemas s0 exchange in
        let invoker = make_invoker ~env ~s0 oracle in
        let resilience =
          Resilience.create
            ~policy:(Resilience.policy ~max_retries:retries ~backoff_s:0.001 ())
            ()
        in
        let config =
          { Enforcement.default_config with
            Enforcement.k; engine; fallback_possible = possible;
            resilience = Some resilience }
        in
        let pipeline =
          Enforcement.Pipeline.create ~config ~s0 ~exchange ~invoker ()
        in
        let buf = Trace.buffer ~capacity:buffer () in
        Trace.set_sink Trace.default (Trace.Memory buf);
        (* one interactive document: exact per-event timestamps beat
           the amortized-clock default *)
        Trace.set_clock_every Trace.default 1;
        let result =
          Fun.protect
            ~finally:(fun () ->
              Trace.set_sink Trace.default Trace.Null;
              Trace.set_clock_every Trace.default 32)
            (fun () -> Enforcement.Pipeline.enforce pipeline doc)
        in
        let events = Trace.buffer_events buf in
        Fmt.pr "trace: %s -> %s (k=%d, engine=%s, %d event(s)%s)@." doc_path
          target k
          (match engine with Rewriter.Lazy -> "lazy" | Rewriter.Eager -> "eager")
          (Trace.buffer_pushed buf)
          (let dropped = Trace.buffer_pushed buf - List.length events in
           if dropped > 0 then Fmt.str ", %d dropped" dropped else "");
        print_events events;
        Option.iter
          (fun file ->
            let oc = open_out_bin file in
            List.iter
              (fun e ->
                output_string oc (Trace.event_to_json e);
                output_char oc '\n')
              events;
            close_out oc)
          jsonl;
        Report.print_outcome ~label:doc_path result;
        Report.print_run_stats (Enforcement.Pipeline.stats pipeline);
        Option.iter Report.write_metrics metrics_out;
        if Result.is_ok result then 0 else 1)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Replay one enforcement with the decision tracer attached and \
             print the per-decision trace: validation, cache queries, fork \
             choices, invocation attempts, retries, breaker transitions and \
             the final accept/reject/fault verdict.")
    Term.(const run $ sender_arg $ target_arg $ k_arg $ possible_arg
          $ engine_arg $ oracle_arg $ retries_arg $ buffer_arg $ jsonl_arg
          $ metrics_out_arg $ doc_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

(* Load a schema for linting: textual schemas come back with the source
   positions of their declarations, XML ones without. *)
let load_schema_positions path =
  let text = read_file path in
  let trimmed = String.trim text in
  if String.length trimmed > 0 && trimmed.[0] = '<' then
    try (Xml_schema_int.of_string text, None)
    with Xml_schema_int.Schema_syntax_error m -> fail "%s: %s" path m
  else
    match Schema_parser.parse_with_positions text with
    | s, positions -> (s, Some positions)
    | exception Schema_parser.Parse_error { line; col; message } ->
      if line = 0 then fail "%s: %s" path message
      else fail "%s: line %d, col %d: %s" path line col message

let lint_cmd =
  let schema_opt_arg =
    Arg.(value & opt (some file) None
         & info [ "s"; "schema" ] ~docv:"SCHEMA"
             ~doc:"Lint a single schema (schema-level rules only).")
  in
  let sender_opt_arg =
    Arg.(value & opt (some file) None & info [ "f"; "from" ] ~docv:"SCHEMA"
           ~doc:"The sender schema (s0) of an exchange to lint.")
  in
  let target_opt_arg =
    Arg.(value & opt (some file) None & info [ "t"; "to" ] ~docv:"SCHEMA"
           ~doc:"The exchange schema of an exchange to lint.")
  in
  let docs_arg =
    Arg.(value & pos_all file [] & info [] ~docv:"DOC.xml"
           ~doc:"Intensional XML documents to lint against the exchange \
                 contract (requires $(b,-f)/$(b,-t)).")
  in
  let run schema_opt sender_opt target_opt k engine format deny metrics_out
      doc_paths =
    wrap ~format (fun () ->
        let module Lint = Axml_analysis.Lint in
        let module Diagnostic = Axml_analysis.Diagnostic in
        let lint_schema_file path =
          let s, positions = load_schema_positions path in
          Lint.lint_schema ~file:path ?positions s
        in
        let diagnostics =
          match (schema_opt, sender_opt, target_opt) with
          | Some path, None, None ->
            if doc_paths <> [] then
              fail "linting documents needs the exchange pair (-f/-t), not -s";
            lint_schema_file path
          | None, Some sender, Some target ->
            let s0, _ = load_schema_positions sender in
            let exchange, _ = load_schema_positions target in
            let contract =
              try
                Axml_core.Contract.create ~k ~engine ~s0 ~target:exchange ()
              with Schema.Schema_error e ->
                fail "%s" (Fmt.str "schema pair: %a" Schema.pp_error e)
            in
            let tag path (d : Diagnostic.t) =
              { d with Diagnostic.loc = { d.Diagnostic.loc with
                                          Diagnostic.file = Some path } }
            in
            lint_schema_file sender @ lint_schema_file target
            @ List.map (tag sender) (Lint.lint_contract contract)
            @ List.concat_map
                (fun path ->
                  List.map (tag path)
                    (Lint.lint_document contract (load_document path)))
                doc_paths
          | _ ->
            fail
              "pass either -s SCHEMA, or -f SENDER -t EXCHANGE [DOC.xml ...]"
        in
        Report.print_diagnostics ~format diagnostics;
        Option.iter Report.write_metrics metrics_out;
        if Diagnostic.exceeds ~deny diagnostics then 1 else 0)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze schemas, exchange contracts and documents: \
             empty or ambiguous content models, unreachable or uninhabited \
             elements, never-safe functions, incompatible schema pairs, \
             doomed calls — before anything is exchanged or invoked.")
    Term.(const run $ schema_opt_arg $ sender_opt_arg $ target_opt_arg
          $ k_arg $ engine_arg $ format_arg $ deny_arg $ metrics_out_arg
          $ docs_arg)

(* ------------------------------------------------------------------ *)
(* diff / migrate (schema evolution)                                   *)
(* ------------------------------------------------------------------ *)

module Evolution = Axml_analysis.Evolution

let diff_cmd =
  let run sender target k engine format deny metrics_out =
    wrap ~format (fun () ->
        let v1, from_positions = load_schema_positions sender in
        let v2, to_positions = load_schema_positions target in
        let report =
          Evolution.diff ~k ~engine ~from_file:sender ?from_positions
            ~to_file:target ?to_positions ~v1 ~v2 ()
        in
        Report.print_diff ~format ~from_file:sender ~to_file:target report;
        Option.iter Report.write_metrics metrics_out;
        if
          Axml_analysis.Diagnostic.exceeds ~deny
            report.Evolution.r_diagnostics
        then 1
        else 0)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Diff two versions of an exchange schema: classify each label \
             and function as identical, widened, narrowed or incompatible \
             (Glushkov-DFA inclusion), lift the per-label changes to \
             contract-level verdicts (Section 6 against the pair), and \
             report AXM04x diagnostics with source positions.")
    Term.(const run $ sender_arg $ target_arg $ k_arg $ engine_arg
          $ format_arg $ deny_arg $ metrics_out_arg)

let migrate_cmd =
  let docs_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"DOC.xml"
           ~doc:"Archived documents of the old version to advise.")
  in
  let run sender target k engine format metrics_out doc_paths =
    wrap ~format (fun () ->
        let v1 = load_schema sender in
        let v2 = load_schema target in
        let docs = List.map (fun p -> (p, load_document p)) doc_paths in
        let migration =
          try Evolution.migrate ~k ~engine ~v1 ~v2 docs
          with Schema.Schema_error e ->
            fail "%s" (Fmt.str "schema pair: %a" Schema.pp_error e)
        in
        Report.print_migration ~format ~from_file:sender ~to_file:target
          migration;
        Option.iter Report.write_metrics metrics_out;
        if migration.Evolution.g_migratable then 0 else 1)
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:"Advise an archived corpus on moving to a new schema version: \
             per document, whether it conforms as-is, rewrites safely after \
             materializing a named set of calls, rewrites only possibly, or \
             cannot migrate (AXM042). Exits 0 only when every document \
             conforms or materializes safely.")
    Term.(const run $ sender_arg $ target_arg $ k_arg $ engine_arg
          $ format_arg $ metrics_out_arg $ docs_arg)

(* ------------------------------------------------------------------ *)
(* serve / call / send / federation (the networked peer)               *)
(* ------------------------------------------------------------------ *)

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Address to bind or connect to.")

let port_arg ~default doc =
  Arg.(value & opt int default & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let serve_cmd =
  let dir_arg =
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"Persist the repository under $(docv) (journal + \
                 snapshots); recovered on restart.")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N"
           ~doc:"Domains for batch enforcement on this peer.")
  in
  let name_srv_arg =
    Arg.(value & opt string "axml" & info [ "name" ] ~docv:"NAME"
           ~doc:"The peer's name (answered to pings).")
  in
  let max_connections_arg =
    Arg.(value
         & opt int Axml_net.Server.default_config.Axml_net.Server.max_connections
         & info [ "max-connections" ] ~docv:"N"
             ~doc:"Concurrent connections accepted; excess are refused.")
  in
  let max_in_flight_arg =
    Arg.(value
         & opt int Axml_net.Server.default_config.Axml_net.Server.max_in_flight
         & info [ "max-in-flight" ] ~docv:"N"
             ~doc:"Requests served at once across all connections; excess \
                   are answered with an $(b,overloaded) error (admission \
                   control), never queued.")
  in
  let run name schema_path dir host port k possible engine jobs oracle
      max_connections max_in_flight =
    wrap (fun () ->
        let schema = load_schema schema_path in
        let peer = Axml_peer.Peer.create ~name ~schema () in
        (* every declared function becomes a provided service, served by
           the chosen oracle — the peer answers calls out of the box *)
        (match oracle with
         | `Fail -> ()
         | (`Random | `Flaky) as o ->
           let env = Schema.env_of_schemas schema schema in
           List.iter
             (fun fname ->
               match Schema.find_function schema fname with
               | None -> ()
               | Some f ->
                 let behaviour =
                   let honest =
                     Axml_services.Oracle.honest_random ~env schema fname
                   in
                   match o with
                   | `Random -> honest
                   | `Flaky -> Axml_services.Oracle.flaky ~period:7 honest
                 in
                 Axml_peer.Peer.provide peer ~name:fname
                   ~input:f.Schema.f_input ~output:f.Schema.f_output
                   (Axml_peer.Peer.Compute behaviour))
             (Schema.function_names schema));
        Axml_peer.Peer.configure peer
          { Axml_peer.Peer.default_config with
            Axml_peer.Peer.k; engine; fallback_possible = possible; jobs };
        let repo = Option.map (fun dir -> Axml_net.Repo.attach ~dir peer) dir in
        let endpoint = Axml_net.Endpoint.create ?repo peer in
        let config =
          { Axml_net.Server.default_config with
            Axml_net.Server.max_connections;
            max_in_flight }
        in
        let server = Axml_net.Server.start ~config ~host ~port endpoint in
        Fmt.pr "%s: serving on %s:%d (binary + HTTP; GET /metrics, POST \
                /exchange)@."
          name host (Axml_net.Server.port server);
        Option.iter
          (fun r ->
            Fmt.pr "%s: repository under %s (%d document(s) recovered)@." name
              (Axml_net.Repo.dir r) (Axml_net.Repo.recovered r))
          repo;
        let stop = ref false in
        let request_stop _ = stop := true in
        Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
        while not !stop do Unix.sleepf 0.2 done;
        Fmt.pr "%s: draining...@." name;
        Axml_net.Server.stop server;
        Option.iter Axml_net.Repo.close repo;
        0)
  in
  let schema = schema_arg [ "s"; "schema" ] "SCHEMA" "The peer's schema." in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run a peer as a network server: the framed binary protocol \
             and a minimal HTTP front (GET /metrics, POST /exchange) on one \
             port. Declared functions are provided as services backed by \
             the chosen oracle. Stops gracefully on SIGINT/SIGTERM.")
    Term.(const run $ name_srv_arg $ schema $ dir_arg $ host_arg
          $ port_arg ~default:7411 "Port to listen on (0 = ephemeral)."
          $ k_arg $ possible_arg $ engine_arg $ jobs_arg $ oracle_arg
          $ max_connections_arg $ max_in_flight_arg)

let call_cmd =
  let method_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"METHOD"
           ~doc:"The service to invoke.")
  in
  let params_arg =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"PARAM"
           ~doc:"Parameters: existing files are parsed as intensional XML \
                 documents, anything else is passed as character data.")
  in
  let run host port method_name params =
    wrap (fun () ->
        let params =
          List.map
            (fun p ->
              if Sys.file_exists p then load_document p
              else Axml_core.Document.data p)
            params
        in
        let client = Axml_net.Client.connect ~host ~port () in
        Fun.protect ~finally:(fun () -> Axml_net.Client.close client)
        @@ fun () ->
        match Axml_net.Client.call client method_name params with
        | result ->
          List.iter
            (fun d -> print_string (Syntax.to_xml_string d))
            result;
          0
        | exception Axml_peer.Peer.Peer_error m ->
          Fmt.epr "fault: %s@." m;
          1
        | exception Axml_net.Client.Net_error m ->
          Fmt.epr "error: %s@." m;
          2)
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:"Invoke a service on a served peer (a SOAP envelope over the \
             wire) and print the result forest.")
    Term.(const run $ host_arg
          $ port_arg ~default:7411 "Port the peer listens on."
          $ method_arg $ params_arg)

let send_cmd =
  let as_arg =
    Arg.(value & opt string "inbox" & info [ "as" ] ~docv:"NAME"
           ~doc:"Store the document under $(docv) on the receiving peer.")
  in
  let import_arg =
    Arg.(value & flag & info [ "import" ]
           ~doc:"Import the receiver's services (via their WSDL) to \
                 materialize calls, instead of simulating them with \
                 oracles.")
  in
  let run host port sender_path exchange_path k possible engine oracle
      import as_name doc_path =
    wrap (fun () ->
        let s0 = load_schema sender_path in
        let exchange = load_schema exchange_path in
        let doc = load_document doc_path in
        let sender = Axml_peer.Peer.create ~name:"axml-send" ~schema:s0 () in
        Axml_peer.Peer.configure sender
          { Axml_peer.Peer.default_config with
            Axml_peer.Peer.k; engine; fallback_possible = possible };
        let client = Axml_net.Client.connect ~host ~port () in
        Fun.protect ~finally:(fun () -> Axml_net.Client.close client)
        @@ fun () ->
        if import then
          ignore (Axml_net.Client.import_services client ~into:sender)
        else begin
          let env = Schema.env_of_schemas s0 exchange in
          let invoker = make_invoker ~env ~s0 oracle in
          List.iter
            (fun fname ->
              match Schema.find_function s0 fname with
              | None -> ()
              | Some f ->
                Axml_services.Registry.register
                  (Axml_peer.Peer.registry sender)
                  (Axml_services.Service.make ~input:f.Schema.f_input
                     ~output:f.Schema.f_output fname
                     (fun ps -> invoker fname ps)))
            (Schema.function_names s0)
        end;
        match
          Axml_net.Client.send client ~sender ~exchange ~as_name doc
        with
        | Ok outcome ->
          Fmt.pr "accepted: stored as %S (%d wire byte(s), %d invocation(s))@."
            as_name outcome.Axml_peer.Peer.wire_bytes
            (List.length outcome.Axml_peer.Peer.report.Enforcement.invocations);
          0
        | Error e ->
          Fmt.pr "%a@." Enforcement.pp_error e;
          1
        | exception Axml_net.Client.Net_error m ->
          Fmt.epr "error: %s@." m;
          2)
  in
  Cmd.v
    (Cmd.info "send"
       ~doc:"Enforce a document against an exchange schema locally (the \
             sender side) and ship it to a served peer, which re-validates \
             and stores it.")
    Term.(const run $ host_arg
          $ port_arg ~default:7411 "Port the receiving peer listens on."
          $ sender_arg $ target_arg $ k_arg $ possible_arg $ engine_arg
          $ oracle_arg $ import_arg $ as_arg $ doc_arg)

let federation_cmd =
  let smoke_arg =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"CI mode: a short stream and quiet output.")
  in
  let docs_n_arg =
    Arg.(value & opt (some int) None & info [ "docs" ] ~docv:"N"
           ~doc:"Documents to stream from sender to receiver (default 25, \
                 or 5 with $(b,--smoke)).")
  in
  let dir_arg =
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"Repository directory for the receiving peer (default: a \
                 fresh temporary directory).")
  in
  let fed_k_arg =
    Arg.(value & opt int 2 & info [ "k"; "depth" ] ~docv:"N"
           ~doc:"Rewriting depth for the whole federation, agreed on the \
                 wire. The demo's document stream needs $(docv) >= 2 to be \
                 accepted; at 1 both transports must refuse identically.")
  in
  let run smoke docs_n dir k =
    wrap (fun () ->
        let docs =
          match docs_n with Some n -> n | None -> if smoke then 5 else 25
        in
        let dir =
          match dir with
          | Some d -> d
          | None ->
            let d =
              Filename.concat (Filename.get_temp_dir_name ())
                (Fmt.str "axml-federation-%d" (Unix.getpid ()))
            in
            d
        in
        Federation.run ~docs ~dir ~quiet:smoke ~k ())
  in
  Cmd.v
    (Cmd.info "federation"
       ~doc:"Run the three-peer federation demo over loopback sockets: one \
             peer hosts services, a sender imports them from their WSDL and \
             enforces documents against a receiver's exchange schema, and \
             every outcome is checked byte-for-byte against an in-process \
             twin. The whole federation enforces at one rewriting depth \
             ($(b,--k)), agreed when each exchange opens. Also exercises \
             killed clients, a slow-service brownout, the HTTP front and \
             crash recovery. Exits 0 only if every check passes.")
    Term.(const run $ smoke_arg $ docs_n_arg $ dir_arg $ fed_k_arg)

let soak_cmd =
  let smoke_arg =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"CI mode: a ~10s run with 0.5s windows and quiet \
                 per-window output (unless $(b,--duration) / \
                 $(b,--window) override it).")
  in
  let spawn_arg =
    Arg.(value & flag & info [ "spawn" ]
           ~doc:"Spawn the served peer as a separate process ($(b,axml \
                 serve) on an ephemeral port, fork/exec) and tear it down \
                 afterwards, instead of connecting to $(b,--host) / \
                 $(b,--port).")
  in
  let duration_arg =
    Arg.(value & opt (some float) None & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Total run length (default 60, or 10 with $(b,--smoke)).")
  in
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
           ~doc:"Steady-state worker concurrency; the flash crowd runs \
                 4x$(docv) (at least 8) workers.")
  in
  let window_arg =
    Arg.(value & opt (some float) None & info [ "window" ] ~docv:"SECONDS"
           ~doc:"Observation window length (default 1, or 0.5 with \
                 $(b,--smoke)).")
  in
  let seed_arg =
    Arg.(value & opt int 2003 & info [ "seed" ] ~docv:"N"
           ~doc:"Seed for the document streams, the profile pickers and \
                 the oracles: a fixed seed reproduces the traffic mix and \
                 the structural verdict.")
  in
  let churn_to_arg =
    Arg.(value & opt (some file) None & info [ "churn-to" ] ~docv:"SCHEMA"
           ~doc:"Exchange schema the churn phase flips the agreement to \
                 (default: the sender schema itself, so churned documents \
                 stay shippable).")
  in
  let no_churn_arg =
    Arg.(value & flag & info [ "no-churn" ]
           ~doc:"Drop the schema-churn phase from the schedule.")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_SOAK.json" & info [ "o"; "out" ]
           ~docv:"FILE"
           ~doc:"Where to write the full time series + verdict JSON \
                 ($(b,-) for none).")
  in
  let run host port sender_path exchange_path k smoke spawn duration workers
      window seed churn_to no_churn out =
    wrap (fun () ->
        let s0 = load_schema sender_path in
        let exchange = load_schema exchange_path in
        let churn =
          if no_churn then None
          else
            match churn_to with
            | Some path -> Some (load_schema path)
            | None -> Some s0
        in
        let duration_s =
          match duration with
          | Some d -> d
          | None -> if smoke then 10. else 60.
        in
        let window_s =
          match window with Some w -> w | None -> if smoke then 0.5 else 1.
        in
        let out = if out = "-" then None else Some out in
        match
          Soak_driver.run ~quiet:false ~spawn ~host ~port ~s0 ~exchange
            ~exchange_path ~churn ~k ~duration_s ~workers ~window_s ~seed
            ~out ()
        with
        | code -> code
        | exception Soak_driver.Soak_failed m -> fail "%s" m)
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Hold a seeded adversarial workload against a served peer and \
             grade the run: phase-scheduled traffic (warm-up, steady \
             state, schema churn, flash crowd, brownout, recovery) with \
             fault injection driving the resilience breakers, per-window \
             p50/p99/p999 latency, throughput, heap high-water and breaker \
             dynamics, and a deterministic structural verdict written with \
             the full time series to BENCH_SOAK.json (see BENCHMARKS.md). \
             Serve the peer in another terminal ($(b,axml serve)) or let \
             $(b,--spawn) fork one. Exits 0 only if every check passes.")
    Term.(const run $ host_arg
          $ port_arg ~default:7411 "Port the served peer listens on."
          $ sender_arg $ target_arg $ k_arg $ smoke_arg $ spawn_arg
          $ duration_arg $ workers_arg $ window_arg $ seed_arg $ churn_to_arg
          $ no_churn_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* compat                                                              *)
(* ------------------------------------------------------------------ *)

let compat_cmd =
  let root_arg =
    Arg.(value & opt (some string) None & info [ "r"; "root" ] ~docv:"LABEL"
           ~doc:"Root label (defaults to the sender schema's declared root).")
  in
  let run sender target k engine format root =
    wrap ~format (fun () ->
        let s0 = load_schema sender in
        let exchange = load_schema target in
        let root =
          match root, s0.Schema.root with
          | Some r, _ -> r
          | None, Some r -> r
          | None, None -> fail "no root label: pass --root or declare one in the schema"
        in
        let result = Schema_rewrite.check ~k ~engine ~s0 ~root ~target:exchange () in
        (match format with
         | `Json ->
           Fmt.pr "%s@."
             (Evolution.compat_to_json ~from_file:sender ~to_file:target ~k
                result)
         | `Text ->
           List.iter
             (fun (v : Schema_rewrite.label_verdict) ->
               Fmt.pr "%-24s %s%s@." v.Schema_rewrite.label
                 (if v.Schema_rewrite.safe then "ok" else "FAIL")
                 (match v.Schema_rewrite.reason with
                  | Some r when not v.Schema_rewrite.safe -> ": " ^ r
                  | _ -> ""))
             result.Schema_rewrite.verdicts;
           if result.Schema_rewrite.compatible then
             Fmt.pr "COMPATIBLE: every document of the sender schema safely \
                     rewrites into the exchange schema@."
           else Fmt.pr "INCOMPATIBLE@.");
        if result.Schema_rewrite.compatible then 0 else 1)
  in
  Cmd.v
    (Cmd.info "compat"
       ~doc:"Schema-level safe rewriting (Section 6): can every document of \
             one schema be safely rewritten into another?")
    Term.(const run $ sender_arg $ target_arg $ k_arg $ engine_arg
          $ format_arg $ root_arg)

(* ------------------------------------------------------------------ *)
(* schema (convert / pretty-print)                                     *)
(* ------------------------------------------------------------------ *)

let schema_cmd =
  let to_arg =
    Arg.(value & opt (enum [ ("text", `Text); ("xml", `Xml) ]) `Text
         & info [ "to" ] ~docv:"FORMAT" ~doc:"Output format: $(b,text) or $(b,xml).")
  in
  let run schema_path fmt out =
    wrap (fun () ->
        let schema = load_schema schema_path in
        (match fmt with
         | `Text -> write_output out (Fmt.str "%a" Schema.pp schema)
         | `Xml -> write_output out (Xml_schema_int.to_string schema));
        0)
  in
  let schema = schema_arg [ "s"; "schema" ] "SCHEMA" "The schema to convert." in
  Cmd.v
    (Cmd.info "schema"
       ~doc:"Parse a schema (textual or XML Schema_int) and print it in \
             either syntax.")
    Term.(const run $ schema $ to_arg $ out_arg)

let () =
  let info =
    Cmd.info "axml" ~version:"1.0.0"
      ~doc:"Exchanging intensional XML data: validation, safe/possible \
            rewriting, and schema compatibility (SIGMOD 2003)."
  in
  exit (Cmd.eval' (Cmd.group info
                     [ validate_cmd; check_cmd; rewrite_cmd; batch_cmd;
                       trace_cmd; lint_cmd; diff_cmd; migrate_cmd;
                       compat_cmd; schema_cmd; serve_cmd; call_cmd;
                       send_cmd; federation_cmd; soak_cmd ]))
