(* A minimal recursive-descent JSON syntax checker, shared by the test
   executables that assert exported JSON (metrics dumps, batch stats,
   trace events) actually parses. It builds no AST and accepts exactly
   one top-level value. *)

exception Bad of string * int

let validate (s : string) : unit =
  let n = String.length s in
  let i = ref 0 in
  let peek () = if !i < n then Some s.[!i] else None in
  let advance () = incr i in
  let error msg = raise (Bad (msg, !i)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal w =
    let l = String.length w in
    if !i + l <= n && String.sub s !i l = w then i := !i + l
    else error ("expected " ^ w)
  in
  let digits () =
    let saw = ref false in
    let rec go () =
      match peek () with
      | Some '0' .. '9' -> saw := true; advance (); go ()
      | _ -> ()
    in
    go ();
    if not !saw then error "digit expected"
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
           advance (); go ()
         | Some 'u' ->
           advance ();
           for _ = 1 to 4 do
             match peek () with
             | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
             | _ -> error "bad \\u escape"
           done;
           go ()
         | _ -> error "bad escape")
      | Some c when Char.code c < 0x20 -> error "raw control character"
      | Some _ -> advance (); go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> error "value expected"
  and number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with Some '.' -> advance (); digits () | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  and obj () =
    expect '{';
    skip_ws ();
    match peek () with
    | Some '}' -> advance ()
    | _ ->
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ()
        | Some '}' -> advance ()
        | _ -> error "',' or '}' expected"
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    match peek () with
    | Some ']' -> advance ()
    | _ ->
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); elems ()
        | Some ']' -> advance ()
        | _ -> error "',' or ']' expected"
      in
      elems ()
  in
  value ();
  skip_ws ();
  if !i <> n then error "trailing garbage"

let is_valid s = match validate s with () -> true | exception Bad _ -> false

let explain s =
  match validate s with
  | () -> None
  | exception Bad (msg, pos) -> Some (Printf.sprintf "%s at offset %d" msg pos)
