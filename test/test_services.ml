(* Tests for the simulated Web-service substrate (lib/services). *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module D = Axml_core.Document
module Validate = Axml_core.Validate
module Service = Axml_services.Service
module Registry = Axml_services.Registry
module Oracle = Axml_services.Oracle
module Directory = Axml_services.Directory
module Resilience = Axml_services.Resilience
module Execute = Axml_core.Execute

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let city = R.sym (Schema.A_label "city")
let temp = R.sym (Schema.A_label "temp")

let get_temp_service ?(cost = 0.) ?(acl = []) behaviour =
  Service.make ~cost ~acl ~input:city ~output:temp "Get_Temp" behaviour

let temp_reply = [ D.elem "temp" [ D.data "15" ] ]

let base_schema =
  match
    Axml_schema.Schema_parser.parse_result
      {|
element city = #data
element temp = #data
function Get_Temp : city -> temp
|}
  with
  | Ok s -> s
  | Error e -> Alcotest.failf "schema: %s" e

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_invoke_and_accounting () =
  let reg = Registry.create () in
  Registry.register reg (get_temp_service ~cost:2.5 (Oracle.constant temp_reply));
  let result = Registry.invoke reg "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ] in
  check "result" true (D.equal_forest result temp_reply);
  ignore (Registry.invoke reg "Get_Temp" []);
  check_int "count" 2 (Registry.invocation_count reg);
  Alcotest.(check (float 0.001)) "cost" 5.0 (Registry.total_cost reg);
  check_int "log entries" 2 (List.length (Registry.log reg));
  Registry.reset_accounting reg;
  check_int "reset" 0 (Registry.invocation_count reg)

let test_unknown_service () =
  let reg = Registry.create () in
  match Registry.invoke reg "Nope" [] with
  | exception Registry.Unknown_service "Nope" -> ()
  | _ -> Alcotest.fail "expected Unknown_service"

let test_budget () =
  let reg = Registry.create () in
  Registry.register reg (get_temp_service ~cost:3. (Oracle.constant temp_reply));
  Registry.set_budget reg (Some 5.);
  ignore (Registry.invoke reg "Get_Temp" []);
  (match Registry.invoke reg "Get_Temp" [] with
   | exception Registry.Budget_exhausted _ -> ()
   | _ -> Alcotest.fail "expected Budget_exhausted");
  check_int "only one call went through" 1 (Registry.invocation_count reg)

let test_acl () =
  let reg = Registry.create ~principal:"mallory" () in
  Registry.register reg (get_temp_service ~acl:[ "alice" ] (Oracle.constant temp_reply));
  (match Registry.invoke reg "Get_Temp" [] with
   | exception Registry.Access_denied { principal = "mallory"; _ } -> ()
   | _ -> Alcotest.fail "expected Access_denied");
  Registry.set_principal reg "alice";
  check "alice may call" true
    (D.equal_forest (Registry.invoke reg "Get_Temp" []) temp_reply)

let test_contract_checks () =
  let reg = Registry.create () in
  Registry.register reg
    (get_temp_service (Oracle.ill_typed [ D.elem "city" [ D.data "oops" ] ]));
  let ctx = Validate.ctx base_schema in
  Registry.set_check reg ~ctx Registry.Check_both;
  (* bad input *)
  (match Registry.invoke reg "Get_Temp" [ D.data "not a city" ] with
   | exception Registry.Contract_violation { what = `Input; _ } -> ()
   | _ -> Alcotest.fail "expected input violation");
  (* good input, bad output *)
  (match Registry.invoke reg "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ] with
   | exception Registry.Contract_violation { what = `Output; _ } -> ()
   | _ -> Alcotest.fail "expected output violation");
  (* trust mode lets everything through *)
  Registry.set_check reg Registry.Trust;
  ignore (Registry.invoke reg "Get_Temp" [ D.data "whatever" ])

let test_declare_all () =
  let reg = Registry.create () in
  Registry.register reg (get_temp_service (Oracle.constant temp_reply));
  let s =
    Schema.add_element
      (Schema.add_element Schema.empty "city" (R.sym Schema.A_data))
      "temp" (R.sym Schema.A_data)
  in
  let s = Registry.declare_all reg s in
  check "declared" true (Option.is_some (Schema.find_function s "Get_Temp"))

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)
(* ------------------------------------------------------------------ *)

let test_scripted () =
  let b = Oracle.scripted [ [ D.data "1" ]; [ D.data "2" ] ] in
  Alcotest.(check string) "first" "1"
    (match b [] with [ D.Data v ] -> v | _ -> "?");
  Alcotest.(check string) "second" "2"
    (match b [] with [ D.Data v ] -> v | _ -> "?");
  Alcotest.(check string) "wraps around" "1"
    (match b [] with [ D.Data v ] -> v | _ -> "?")

let test_flaky_and_counting () =
  let inner, count = Oracle.counting (Oracle.constant temp_reply) in
  let b = Oracle.flaky ~period:3 inner in
  ignore (b []);
  ignore (b []);
  (match b [] with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "expected the third call to fail");
  check_int "two successful calls counted" 2 (count ())

let test_honest_random () =
  let ctx = Validate.ctx base_schema in
  let b = Oracle.honest_random ~seed:5 base_schema "Get_Temp" in
  for _ = 1 to 10 do
    let forest = b [] in
    if Validate.output_instance ctx "Get_Temp" forest <> [] then
      Alcotest.fail "random output is not an output instance"
  done

let test_scripted_long_run () =
  (* regression: the index wraps in place instead of growing without
     bound *)
  let b = Oracle.scripted [ [ D.data "a" ]; [ D.data "b" ]; [ D.data "c" ] ] in
  for i = 0 to 2999 do
    let expected = [| "a"; "b"; "c" |].(i mod 3) in
    match b [] with
    | [ D.Data v ] -> if v <> expected then Alcotest.failf "call %d: %s" i v
    | _ -> Alcotest.fail "unexpected reply shape"
  done

(* ------------------------------------------------------------------ *)
(* Resilience                                                          *)
(* ------------------------------------------------------------------ *)

let quick_policy ?timeout_s ?(max_retries = 2) ?(breaker_threshold = 5)
    ?(breaker_cooldown_s = 5.0) () =
  Resilience.policy ~max_retries ~backoff_s:0.01 ~jitter:0. ?timeout_s
    ~breaker_threshold ~breaker_cooldown_s ()

let test_retry_recovers () =
  let r = Resilience.create ~policy:(quick_policy ())
      ~clock:(Resilience.manual_clock ()) () in
  (* fails on the first call, succeeds on the retry *)
  let calls = ref 0 in
  let fail_once _params =
    incr calls;
    if !calls = 1 then failwith "transient" else temp_reply
  in
  let b = Resilience.wrap_behaviour r ~name:"Get_Temp" fail_once in
  let result = b [] in
  check "recovered" true (D.equal_forest result temp_reply);
  let s = Resilience.stats r "Get_Temp" in
  check_int "one guarded call" 1 s.Resilience.calls;
  check_int "two attempts" 2 s.Resilience.attempts;
  check_int "one retry" 1 s.Resilience.retries;
  check_int "one success" 1 s.Resilience.successes;
  check_int "no give-up" 0 s.Resilience.gave_up

let test_give_up_attempts () =
  let r = Resilience.create ~policy:(quick_policy ~max_retries:2 ())
      ~clock:(Resilience.manual_clock ()) () in
  let b = Resilience.wrap_behaviour r ~name:"Down" (Oracle.failing "down") in
  (match b [] with
   | exception Execute.Invocation_failed { fname = "Down"; attempts = 3; cause = Failure _ } -> ()
   | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
   | _ -> Alcotest.fail "expected Invocation_failed");
  let s = Resilience.stats r "Down" in
  check_int "three attempts" 3 s.Resilience.attempts;
  check_int "two retries" 2 s.Resilience.retries;
  check_int "one give-up" 1 s.Resilience.gave_up

let test_timeout_budget () =
  let clock = Resilience.manual_clock () in
  let r = Resilience.create ~policy:(quick_policy ~timeout_s:0.5 ~max_retries:10 ())
      ~clock () in
  (* each attempt burns 0.3 virtual seconds and fails: the second
     attempt starts past the 0.5 s budget *)
  let slow_and_broken = Oracle.timing_out ~clock ~delay_s:0.3 (Oracle.failing "slow") in
  let b = Resilience.wrap_behaviour r ~name:"Slow" slow_and_broken in
  (match b [] with
   | exception Execute.Invocation_failed { cause = Resilience.Timed_out _; _ } -> ()
   | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
   | _ -> Alcotest.fail "expected a timeout");
  let s = Resilience.stats r "Slow" in
  check_int "timed out once" 1 s.Resilience.timeouts;
  check "bounded attempts" true (s.Resilience.attempts <= 3)

let test_late_success_is_timeout () =
  let clock = Resilience.manual_clock () in
  let r = Resilience.create ~policy:(quick_policy ~timeout_s:0.1 ()) ~clock () in
  (* the call eventually answers — but only after the deadline *)
  let slow = Oracle.timing_out ~clock ~delay_s:0.2 (Oracle.constant temp_reply) in
  let b = Resilience.wrap_behaviour r ~name:"Late" slow in
  (match b [] with
   | exception Execute.Invocation_failed { cause = Resilience.Timed_out _; _ } -> ()
   | exception e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
   | _ -> Alcotest.fail "expected a timeout");
  check_int "timed out" 1 (Resilience.stats r "Late").Resilience.timeouts

let test_breaker_trip_and_recovery () =
  let clock = Resilience.manual_clock () in
  let r =
    Resilience.create
      ~policy:(quick_policy ~max_retries:0 ~breaker_threshold:3
                 ~breaker_cooldown_s:5. ())
      ~clock ()
  in
  let healthy = ref false in
  let service _params = if !healthy then temp_reply else failwith "down" in
  let b = Resilience.wrap_behaviour r ~name:"S" service in
  let expect_give_up () =
    match b [] with
    | exception Execute.Invocation_failed _ -> ()
    | _ -> Alcotest.fail "expected failure"
  in
  (* three consecutive failures trip the breaker *)
  expect_give_up (); expect_give_up (); expect_give_up ();
  Alcotest.(check string) "breaker open" "open"
    (match Resilience.breaker_state r "S" with
     | `Open -> "open" | `Closed -> "closed" | `Half_open -> "half-open");
  check_int "one trip" 1 (Resilience.stats r "S").Resilience.trips;
  (* while open, calls are rejected without touching the service *)
  let attempts_before = (Resilience.stats r "S").Resilience.attempts in
  expect_give_up ();
  check_int "short-circuited" 1 (Resilience.stats r "S").Resilience.short_circuited;
  check_int "service untouched" attempts_before (Resilience.stats r "S").Resilience.attempts;
  (* cooldown elapses; the half-open probe fails and re-opens *)
  clock.Resilience.sleep 6.;
  expect_give_up ();
  check_int "probe re-trips" 2 (Resilience.stats r "S").Resilience.trips;
  (* cooldown again; the service recovered: probe closes the circuit *)
  clock.Resilience.sleep 6.;
  healthy := true;
  check "probe succeeds" true (D.equal_forest (b []) temp_reply);
  Alcotest.(check string) "breaker closed again" "closed"
    (match Resilience.breaker_state r "S" with
     | `Open -> "open" | `Closed -> "closed" | `Half_open -> "half-open");
  check "subsequent calls flow" true (D.equal_forest (b []) temp_reply)

let test_wrap_invoker_passes_name () =
  let r = Resilience.create ~policy:(quick_policy ())
      ~clock:(Resilience.manual_clock ()) () in
  let invoker = Resilience.wrap_invoker r (fun name _ ->
      if name = "A" then temp_reply else failwith "no") in
  check "A answers" true (D.equal_forest (invoker "A" []) temp_reply);
  (match invoker "B" [] with
   | exception Execute.Invocation_failed { fname = "B"; _ } -> ()
   | _ -> Alcotest.fail "expected a give-up on B");
  check_int "A counted separately" 1 (Resilience.stats r "A").Resilience.calls;
  check_int "B counted separately" 1 (Resilience.stats r "B").Resilience.calls;
  let t = Resilience.total r in
  check_int "total calls" 2 t.Resilience.calls

(* A policy-wrapped honest service is observationally equivalent to the
   bare service. *)
let prop_wrapped_honest_equiv =
  QCheck.Test.make ~count:100 ~name:"wrapped honest service == bare service"
    QCheck.(pair small_int (small_list small_int))
    (fun (seed, params) ->
      let params = List.map (fun i -> D.data (string_of_int i)) params in
      let bare = Oracle.honest_random ~seed base_schema "Get_Temp" in
      let wrapped =
        let r = Resilience.create ~policy:(quick_policy ())
            ~clock:(Resilience.manual_clock ()) () in
        Resilience.wrap_behaviour r ~name:"Get_Temp"
          (Oracle.honest_random ~seed base_schema "Get_Temp")
      in
      D.equal_forest (bare params) (wrapped params))

(* ------------------------------------------------------------------ *)
(* Directory                                                           *)
(* ------------------------------------------------------------------ *)

let test_directory () =
  let dir = Directory.create () in
  Directory.publish dir ~provider:"forecast.com" ~categories:[ "weather" ] "Get_Temp";
  Directory.publish dir ~provider:"timeout.com" ~categories:[ "culture" ] "TimeOut";
  check "published" true (Directory.is_published dir "Get_Temp");
  check "not published" false (Directory.is_published dir "Nope");
  check_int "search" 1 (List.length (Directory.search dir ~category:"weather"));
  Directory.install_standard_predicates dir ~acl_of:(fun f -> f = "Get_Temp");
  check "UDDIF yes" true (Directory.predicate dir "UDDIF" "TimeOut");
  check "InACL no" false (Directory.predicate dir "InACL" "TimeOut");
  check "InACL yes" true (Directory.predicate dir "InACL" "Get_Temp");
  check "unknown predicate fails closed" false
    (Directory.predicate dir "Mystery" "Get_Temp")

let () =
  Alcotest.run "services"
    [ ("registry",
       [ Alcotest.test_case "invoke + accounting" `Quick test_invoke_and_accounting;
         Alcotest.test_case "unknown service" `Quick test_unknown_service;
         Alcotest.test_case "budget" `Quick test_budget;
         Alcotest.test_case "acl" `Quick test_acl;
         Alcotest.test_case "contract checks" `Quick test_contract_checks;
         Alcotest.test_case "declare_all" `Quick test_declare_all
       ]);
      ("oracles",
       [ Alcotest.test_case "scripted" `Quick test_scripted;
         Alcotest.test_case "scripted long run wraps" `Quick test_scripted_long_run;
         Alcotest.test_case "flaky + counting" `Quick test_flaky_and_counting;
         Alcotest.test_case "honest random" `Quick test_honest_random
       ]);
      ("resilience",
       [ Alcotest.test_case "retry recovers" `Quick test_retry_recovers;
         Alcotest.test_case "give-up reports attempts" `Quick test_give_up_attempts;
         Alcotest.test_case "timeout budget" `Quick test_timeout_budget;
         Alcotest.test_case "late success is a timeout" `Quick
           test_late_success_is_timeout;
         Alcotest.test_case "breaker trip + half-open recovery" `Quick
           test_breaker_trip_and_recovery;
         Alcotest.test_case "wrapped invoker" `Quick test_wrap_invoker_passes_name;
         QCheck_alcotest.to_alcotest prop_wrapped_honest_equiv
       ]);
      ("directory", [ Alcotest.test_case "publish/search/predicates" `Quick test_directory ])
    ]
