(* Tests for the schema-evolution engine (lib/analysis/evolution.ml):
   per-label classification against a direct DFA-inclusion oracle, one
   triggering and one clean fixture per AXM04x code, the migration
   advisory over a small corpus, the shared JSON envelope, and the
   widening-soundness property (every v1 instance still validates under
   a purely-widened v2). *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto
module D = Axml_core.Document
module Contract = Axml_core.Contract
module Validate = Axml_core.Validate
module Generate = Axml_core.Generate
module Diagnostic = Axml_analysis.Diagnostic
module Evolution = Axml_analysis.Evolution

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Alcotest.failf "schema parse error: %s" e

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let codes ds =
  List.sort_uniq compare
    (List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) ds)

let has code ds = List.mem code (codes ds)

let severity_of code ds =
  List.find_map
    (fun (d : Diagnostic.t) ->
      if d.Diagnostic.code = code then Some d.Diagnostic.severity else None)
    ds

let diff ?k v1 v2 = Evolution.diff ?k ~v1 ~v2 ()

let label_change (r : Evolution.report) l =
  match
    List.find_opt
      (fun (ld : Evolution.label_diff) -> ld.Evolution.l_label = l)
      r.Evolution.r_labels
  with
  | Some ld -> ld.Evolution.l_presence
  | None -> Alcotest.failf "label %s missing from the diff" l

let verdict_of (r : Evolution.report) l =
  match
    List.find_opt
      (fun (v : Evolution.verdict_lift) -> v.Evolution.v_label = l)
      r.Evolution.r_verdicts
  with
  | Some v -> v
  | None -> Alcotest.failf "no lifted verdict for %s" l

let la = R.sym (Symbol.Label "a")
let lb = R.sym (Symbol.Label "b")
let ff = R.sym (Symbol.Fun "F")

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let test_classify () =
  let open Evolution in
  check "identical" true (classify la la = Identical);
  (* a.(b|eps) vs a.b? — same language, different syntax *)
  check "identical modulo syntax" true
    (classify (R.seq la (R.alt lb R.epsilon)) (R.seq la (R.opt lb)) = Identical);
  check "widened" true (classify la (R.alt la lb) = Widened);
  check "widened by star" true (classify la (R.star la) = Widened);
  check "widened by a call" true (classify la (R.alt la ff) = Widened);
  check "narrowed" true (classify (R.star la) la = Narrowed);
  check "incompatible" true (classify la lb = Incompatible);
  (* incomparable languages in both directions *)
  check "incompatible overlap" true
    (classify (R.alt la lb) (R.alt la ff) = Incompatible)

(* ------------------------------------------------------------------ *)
(* diff fixtures: AXM040 / AXM041 / AXM043 / AXM044                    *)
(* ------------------------------------------------------------------ *)

let v1_text = {|
root r
element r = a*
element a = #data
|}

let test_narrowed_label () =
  (* a* -> a: archived documents with 0 or >1 a's are refused *)
  let r = diff (parse_schema v1_text) (parse_schema {|
root r
element r = a
element a = #data
|}) in
  check "AXM040 fires" true (has "AXM040" r.Evolution.r_diagnostics);
  check "warning severity" true
    (severity_of "AXM040" r.Evolution.r_diagnostics = Some Diagnostic.Warning);
  check "classified narrowed" true
    (label_change r "r" = Evolution.Both Evolution.Narrowed);
  (* the witness names a concrete lost word *)
  let ld =
    List.find
      (fun (ld : Evolution.label_diff) -> ld.Evolution.l_label = "r")
      r.Evolution.r_labels
  in
  check "witness present" true (ld.Evolution.l_witness <> None);
  (* pure widening is clean *)
  let r' = diff (parse_schema v1_text) (parse_schema {|
root r
element r = a* | b
element a = #data
element b = #data
|}) in
  check "clean" false (has "AXM040" r'.Evolution.r_diagnostics)

let test_removed_label () =
  let r = diff (parse_schema {|
root r
element r = a*
element a = #data
element gone = #data
|}) (parse_schema v1_text) in
  check "AXM040 fires" true (has "AXM040" r.Evolution.r_diagnostics);
  check "error severity" true
    (severity_of "AXM040" r.Evolution.r_diagnostics = Some Diagnostic.Error);
  check "presence removed" true (label_change r "gone" = Evolution.Only_v1);
  (* an added label is not a finding *)
  let r' = diff (parse_schema v1_text) (parse_schema {|
root r
element r = a*
element a = #data
element fresh = #data
|}) in
  check "added is clean" true (r'.Evolution.r_diagnostics = []);
  check "presence added" true (label_change r' "fresh" = Evolution.Only_v2)

let test_incompatible_label () =
  let r = diff (parse_schema v1_text) (parse_schema {|
root r
element r = a.a | b
element a = #data
element b = #data
|}) in
  check "AXM040 error" true
    (severity_of "AXM040" r.Evolution.r_diagnostics = Some Diagnostic.Error);
  check "classified incompatible" true
    (label_change r "r" = Evolution.Both Evolution.Incompatible)

let test_verdict_regression_mixed () =
  (* v2 requires at least one a; v1 documents with none cannot rewrite
     safely (no function can produce an a), but those with some land *)
  let r = diff (parse_schema v1_text) (parse_schema {|
root r
element r = a.a*
element a = #data
|}) in
  check "AXM041 fires" true (has "AXM041" r.Evolution.r_diagnostics);
  check "warning severity" true
    (severity_of "AXM041" r.Evolution.r_diagnostics = Some Diagnostic.Warning);
  let v = verdict_of r "r" in
  check "possible only" true
    (v.Evolution.v_verdict = Contract.Possible_only);
  check "not safe at any depth" true (v.Evolution.v_safe_at = None);
  check "possible at depth 0" true (v.Evolution.v_possible_at = Some 0);
  (* under an unchanged schema every verdict is Safe at depth 0 *)
  let id = diff (parse_schema v1_text) (parse_schema v1_text) in
  check "identity is clean" true (id.Evolution.r_diagnostics = []);
  let v = verdict_of id "r" in
  check "identity safe" true (v.Evolution.v_verdict = Contract.Safe);
  check "identity safe at 0" true (v.Evolution.v_safe_at = Some 0)

let test_verdict_regression_impossible () =
  (* v2's r speaks a different alphabet: no v1 document of type r can
     land at all *)
  let r = diff (parse_schema {|
root r
element r = a
element a = #data
|}) (parse_schema {|
root r
element r = b
element a = #data
element b = #data
|}) in
  check "AXM041 fires" true (has "AXM041" r.Evolution.r_diagnostics);
  check "error severity" true
    (severity_of "AXM041" r.Evolution.r_diagnostics = Some Diagnostic.Error);
  let v = verdict_of r "r" in
  check "impossible" true (v.Evolution.v_verdict = Contract.Impossible)

let test_verdict_depth_threshold () =
  (* materializing F (output a) saves documents that kept the call:
     the narrowed v2 drops the F alternative, so safety needs one
     rewriting level — safe_at reports it *)
  let v1 = parse_schema {|
root r
element r = F | a
element a = #data
function F : #data -> a
|} in
  let v2 = parse_schema {|
root r
element r = a
element a = #data
function F : #data -> a
|} in
  let r = Evolution.diff ~k:2 ~v1 ~v2 () in
  let v = verdict_of r "r" in
  check "safe once k >= 1" true (v.Evolution.v_safe_at = Some 1);
  check "no AXM041: still safe within budget" false
    (has "AXM041" r.Evolution.r_diagnostics)

let test_widening_accepts_calls () =
  let r = diff (parse_schema v1_text) (parse_schema {|
root r
element r = a* | F
element a = #data
function F : #data -> a*
|}) in
  check "AXM043 fires" true (has "AXM043" r.Evolution.r_diagnostics);
  check "warning severity" true
    (severity_of "AXM043" r.Evolution.r_diagnostics = Some Diagnostic.Warning);
  let ld =
    List.find
      (fun (ld : Evolution.label_diff) -> ld.Evolution.l_label = "r")
      r.Evolution.r_labels
  in
  check "call named" true (ld.Evolution.l_new_calls = [ "F" ]);
  (* widening by plain labels does not fire it *)
  let r' = diff (parse_schema v1_text) (parse_schema {|
root r
element r = a* | b
element a = #data
element b = #data
|}) in
  check "clean" false (has "AXM043" r'.Evolution.r_diagnostics)

let test_signature_change () =
  let v1 = parse_schema {|
root r
element r = a | F
element a = #data
element b = #data
function F : #data -> a
|} in
  (* output type a -> b: the signature languages disagree *)
  let r = diff v1 (parse_schema {|
root r
element r = a | F
element a = #data
element b = #data
function F : #data -> b
|}) in
  check "AXM044 fires" true (has "AXM044" r.Evolution.r_diagnostics);
  check "error severity" true
    (severity_of "AXM044" r.Evolution.r_diagnostics = Some Diagnostic.Error);
  check "conflict recorded" true (r.Evolution.r_conflicts = [ "F" ]);
  check "verdict lift skipped" true (r.Evolution.r_verdicts = []);
  (* and migrate refuses the pair outright *)
  check "migrate raises" true
    (match
       Evolution.migrate ~v1
         ~v2:(parse_schema {|
root r
element r = a | F
element a = #data
element b = #data
function F : #data -> b
|})
         [ ("d", D.elem "r" [ D.elem "a" [ D.data "x" ] ]) ]
     with
    | _ -> false
    | exception Schema.Schema_error _ -> true)

let test_function_removed_and_flipped () =
  let v1 = parse_schema {|
root r
element r = a | F
element a = #data
function F : #data -> a
function G : #data -> a
|} in
  let r = diff v1 (parse_schema {|
root r
element r = a | F
element a = #data
noninvocable function F : #data -> a
|}) in
  (* G removed (warning), F's invocability flipped (warning) *)
  let axm044 =
    List.filter
      (fun (d : Diagnostic.t) -> d.Diagnostic.code = "AXM044")
      r.Evolution.r_diagnostics
  in
  check_int "two findings" 2 (List.length axm044);
  check "all warnings" true
    (List.for_all
       (fun (d : Diagnostic.t) -> d.Diagnostic.severity = Diagnostic.Warning)
       axm044);
  check "no conflict: languages agree" true (r.Evolution.r_conflicts = []);
  check "lift still runs" true (r.Evolution.r_verdicts <> []);
  (* identical declarations are clean *)
  let r' = diff v1 v1 in
  check "clean" false (has "AXM044" r'.Evolution.r_diagnostics)

let test_positions_attached () =
  let v1, from_positions = Schema_parser.parse_with_positions v1_text in
  let v2, to_positions =
    Schema_parser.parse_with_positions
      "root r\nelement r = a\nelement a = #data"
  in
  let r =
    Evolution.diff ~from_file:"v1.axs" ~from_positions ~to_file:"v2.axs"
      ~to_positions ~v1 ~v2 ()
  in
  let narrowing =
    List.find
      (fun (d : Diagnostic.t) -> d.Diagnostic.code = "AXM040")
      r.Evolution.r_diagnostics
  in
  check "file is the new version" true
    (narrowing.Diagnostic.loc.Diagnostic.file = Some "v2.axs");
  (match narrowing.Diagnostic.loc.Diagnostic.pos with
   | Some p -> check_int "r declared on line 2" 2 p.Diagnostic.line
   | None -> Alcotest.fail "no position threaded");
  let line = Fmt.str "@[<v>%a@]" Diagnostic.pp narrowing in
  check "rendered with file:line:col" true (contains line "v2.axs:2:")

(* ------------------------------------------------------------------ *)
(* Migration advisories: AXM042                                        *)
(* ------------------------------------------------------------------ *)

let mig_v1 = parse_schema {|
root r
element r = (F | a).b*
element a = #data
element b = #data
function F : #data -> a
|}

(* v2 drops the F alternative and requires at least one b *)
let mig_v2 = parse_schema {|
root r
element r = a.b.b*
element a = #data
element b = #data
function F : #data -> a
|}

let test_migration_advisories () =
  let conforms =
    D.elem "r" [ D.elem "a" [ D.data "x" ]; D.elem "b" [ D.data "y" ] ]
  in
  let materialize =
    D.elem "r" [ D.call "F" [ D.data "q" ]; D.elem "b" [ D.data "y" ] ]
  in
  let doomed = D.elem "r" [ D.elem "a" [ D.data "x" ] ] in
  let m =
    Evolution.migrate ~v1:mig_v1 ~v2:mig_v2
      [ ("ok.xml", conforms); ("mat.xml", materialize); ("rip.xml", doomed) ]
  in
  check_int "three advisories" 3 (List.length m.Evolution.g_advisories);
  (match m.Evolution.g_advisories with
   | [ ok; mat; rip ] ->
     check "conforms" true (ok.Evolution.a_advisory = Evolution.Conforms);
     check "conforms needs nothing" true (ok.Evolution.a_calls = []);
     check "materialize" true
       (mat.Evolution.a_advisory = Evolution.Materialize);
     (* the exact call is named, with its path *)
     check "F named at /0" true
       (mat.Evolution.a_calls = [ ([ 0 ], "F") ]);
     check "doomed" true
       (match rip.Evolution.a_advisory with
        | Evolution.Doomed _ -> true
        | _ -> false);
     check "doomed carries AXM042" true (has "AXM042" rip.Evolution.a_diagnostics)
   | _ -> Alcotest.fail "advisory list shape");
  check "not migratable" false m.Evolution.g_migratable;
  check "AXM042 collected" true (has "AXM042" m.Evolution.g_diagnostics);
  check "error severity" true
    (severity_of "AXM042" m.Evolution.g_diagnostics = Some Diagnostic.Error);
  (* the doc's name is the diagnostic's file *)
  let d =
    List.find
      (fun (d : Diagnostic.t) -> d.Diagnostic.code = "AXM042")
      m.Evolution.g_diagnostics
  in
  check "file is the doc" true
    (d.Diagnostic.loc.Diagnostic.file = Some "rip.xml");
  (* the clean corpus migrates *)
  let m' =
    Evolution.migrate ~v1:mig_v1 ~v2:mig_v2
      [ ("ok.xml", conforms); ("mat.xml", materialize) ]
  in
  check "migratable" true m'.Evolution.g_migratable;
  check "no diagnostics" true (m'.Evolution.g_diagnostics = [])

let test_migration_possible () =
  (* F may answer a or b; v2 only keeps a — materializing may land or
     not, depending on the service *)
  let v1 = parse_schema {|
root r
element r = F | a | b
element a = #data
element b = #data
function F : #data -> (a | b)
|} in
  let v2 = parse_schema {|
root r
element r = a
element a = #data
element b = #data
function F : #data -> (a | b)
|} in
  let m =
    Evolution.migrate ~v1 ~v2
      [ ("maybe.xml", D.elem "r" [ D.call "F" [ D.data "q" ] ]) ]
  in
  (match m.Evolution.g_advisories with
   | [ a ] ->
     check "possible" true (a.Evolution.a_advisory = Evolution.Possible);
     check "call still named" true (a.Evolution.a_calls = [ ([ 0 ], "F") ])
   | _ -> Alcotest.fail "advisory list shape");
  check "possible blocks migratable" false m.Evolution.g_migratable

(* ------------------------------------------------------------------ *)
(* JSON envelope and catalog                                           *)
(* ------------------------------------------------------------------ *)

let test_json_reports () =
  let r =
    Evolution.diff ~from_file:"v1.axs" ~to_file:"v2.axs"
      ~v1:(parse_schema v1_text)
      ~v2:(parse_schema "root r\nelement r = a\nelement a = #data")
      ()
  in
  let json = Evolution.report_to_json ~from_file:"v1.axs" ~to_file:"v2.axs" r in
  (match Jsonv.explain json with
   | None -> ()
   | Some why -> Alcotest.failf "diff JSON does not parse: %s" why);
  List.iter
    (fun needle -> check (needle ^ " present") true (contains json needle))
    [ {|"command":"diff"|}; {|"from":"v1.axs"|}; {|"to":"v2.axs"|};
      {|"labels"|}; {|"functions"|}; {|"verdicts"|}; {|"conflicts"|};
      {|"diagnostics"|}; {|"summary"|}; {|"change":"narrowed"|};
      {|"witness"|} ];
  let m =
    Evolution.migrate ~v1:mig_v1 ~v2:mig_v2
      [ ("rip.xml", D.elem "r" [ D.elem "a" [ D.data "x" ] ]) ]
  in
  let json = Evolution.migration_to_json ~from_file:"v1.axs" ~to_file:"v2.axs" m in
  (match Jsonv.explain json with
   | None -> ()
   | Some why -> Alcotest.failf "migrate JSON does not parse: %s" why);
  List.iter
    (fun needle -> check (needle ^ " present") true (contains json needle))
    [ {|"command":"migrate"|}; {|"documents"|}; {|"advisory":"doomed"|};
      {|"migratable":false|}; {|"summary"|} ];
  let result =
    Axml_core.Schema_rewrite.check ~s0:(parse_schema v1_text) ~root:"r"
      ~target:(parse_schema v1_text) ()
  in
  let json = Evolution.compat_to_json ~from_file:"a" ~to_file:"b" ~k:1 result in
  (match Jsonv.explain json with
   | None -> ()
   | Some why -> Alcotest.failf "compat JSON does not parse: %s" why);
  check "compat command" true (contains json {|"command":"compat"|});
  check "compat verdict" true (contains json {|"compatible":true|})

let test_catalog_covers_axm04x () =
  let catalog = List.map (fun (c, _, _) -> c) Diagnostic.rules in
  List.iter
    (fun code -> check (code ^ " catalogued") true (List.mem code catalog))
    [ "AXM040"; "AXM041"; "AXM042"; "AXM043"; "AXM044" ]

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let gen_content : Schema.content QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    map R.sym
      (oneofl
         [ Schema.A_label "a"; Schema.A_label "b"; Schema.A_fun "f";
           Schema.A_fun "g"; Schema.A_data ])
  in
  let rec gen n =
    if n <= 0 then atom
    else
      frequency
        [ (3, atom);
          (1, return R.epsilon);
          (2, map2 R.seq (gen (n / 2)) (gen (n / 2)));
          (2, map2 R.alt (gen (n / 2)) (gen (n / 2)));
          (1, map R.star (gen (n - 1)))
        ]
  in
  gen 6

let arb_content =
  QCheck.make ~print:(Fmt.str "%a" Schema.pp_content) gen_content

let mini_schema top out_f out_g =
  let s = Schema.empty in
  let s = Schema.add_element s "a" (R.sym Schema.A_data) in
  let s = Schema.add_element s "b" (R.sym Schema.A_data) in
  let s = Schema.add_function s (Schema.func "f" ~input:R.epsilon ~output:out_f) in
  let s = Schema.add_function s (Schema.func "g" ~input:R.epsilon ~output:out_g) in
  let s = Schema.add_element s "top" top in
  Schema.with_root s "top"

(* The oracle takes the other route through the automata layer:
   inclusion as emptiness of L1 ∩ co-L2 via explicit complementation
   over the shared alphabet, instead of Dfa.difference. *)
let oracle_classify r1 r2 =
  let d1 = Auto.Dfa.of_regex r1 and d2 = Auto.Dfa.of_regex r2 in
  let alphabet =
    Auto.Sym_set.union d1.Auto.Dfa.alphabet d2.Auto.Dfa.alphabet
  in
  let incl a b =
    Auto.Dfa.is_empty (Auto.Dfa.intersect a (Auto.Dfa.complement ~alphabet b))
  in
  match (incl d1 d2, incl d2 d1) with
  | true, true -> Evolution.Identical
  | true, false -> Evolution.Widened
  | false, true -> Evolution.Narrowed
  | false, false -> Evolution.Incompatible

let prop_classify_matches_oracle =
  QCheck.Test.make ~count:300 ~name:"classify agrees with the inclusion oracle"
    QCheck.(pair arb_content arb_content)
    (fun (c1, c2) ->
      let s = mini_schema (R.sym Schema.A_data) c1 c2 in
      let env = Schema.env_of_schema s in
      let r1 = Schema.compile_content env c1
      and r2 = Schema.compile_content env c2 in
      let got = Evolution.classify r1 r2 and want = oracle_classify r1 r2 in
      if got <> want then
        QCheck.Test.fail_reportf "classify says %s but the oracle says %s"
          (Evolution.change_to_string got)
          (Evolution.change_to_string want)
      else true)

(* Derive v2 from v1 by pointwise widening of every content model. *)
let widen_ops =
  [ (fun r -> r);
    (fun r -> R.opt r);
    (fun r -> R.alt r (R.sym (Schema.A_label "a")));
    (fun r -> R.star r)
  ]

let widen_schema ~pick (v1 : Schema.t) =
  let s =
    List.fold_left
      (fun s l ->
        match Schema.find_element v1 l with
        | None -> s
        | Some c -> Schema.add_element s l ((pick ()) c))
      Schema.empty (Schema.element_names v1)
  in
  let s =
    List.fold_left
      (fun s f ->
        match Schema.find_function v1 f with
        | None -> s
        | Some fn -> Schema.add_function s fn)
      s (Schema.function_names v1)
  in
  match v1.Schema.root with Some r -> Schema.with_root s r | None -> s

let prop_widening_sound =
  QCheck.Test.make ~count:150 ~name:"pure widening keeps every v1 instance valid"
    QCheck.(triple arb_content small_nat (pair arb_content arb_content))
    (fun (top, seed, (out_f, out_g)) ->
      let v1 = mini_schema top out_f out_g in
      let rand = Random.State.make [| seed; 0xE7 |] in
      let pick () =
        List.nth widen_ops (Random.State.int rand (List.length widen_ops))
      in
      let v2 = widen_schema ~pick v1 in
      (* classification never reports a loss *)
      let r = Evolution.diff ~v1 ~v2 () in
      List.iter
        (fun (ld : Evolution.label_diff) ->
          match ld.Evolution.l_presence with
          | Evolution.Both Evolution.Identical | Evolution.Both Evolution.Widened
            -> ()
          | _ ->
            QCheck.Test.fail_reportf "label %s classified %s under pure widening"
              ld.Evolution.l_label
              (match ld.Evolution.l_presence with
               | Evolution.Both c -> Evolution.change_to_string c
               | Evolution.Only_v1 -> "removed"
               | Evolution.Only_v2 -> "added"))
        r.Evolution.r_labels;
      (* and soundness: any v1 instance is a v2 instance (validation is
         per-node, so pointwise inclusion is enough) *)
      match Generate.create ~seed v1 with
      | g ->
        (match Generate.document g with
         | doc ->
           let ctx = Validate.ctx ~env:(Schema.env_of_schema v2) v2 in
           (match Validate.document_violations ctx doc with
            | [] -> true
            | v :: _ ->
              QCheck.Test.fail_reportf
                "a v1 instance violates the widened v2: %a"
                Validate.pp_violation v)
         | exception Generate.Generation_failed _ -> true)
      | exception Generate.Generation_failed _ -> true)

let qcheck_tests =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x40E7 |]))
    [ prop_classify_matches_oracle; prop_widening_sound ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "evolution"
    [ ("classification",
       [ Alcotest.test_case "classify" `Quick test_classify ]);
      ("diff-rules",
       [ Alcotest.test_case "narrowed label (AXM040)" `Quick test_narrowed_label;
         Alcotest.test_case "removed label (AXM040)" `Quick test_removed_label;
         Alcotest.test_case "incompatible label (AXM040)" `Quick
           test_incompatible_label;
         Alcotest.test_case "verdict regression mixed (AXM041)" `Quick
           test_verdict_regression_mixed;
         Alcotest.test_case "verdict regression impossible (AXM041)" `Quick
           test_verdict_regression_impossible;
         Alcotest.test_case "verdict depth threshold" `Quick
           test_verdict_depth_threshold;
         Alcotest.test_case "widening accepts calls (AXM043)" `Quick
           test_widening_accepts_calls;
         Alcotest.test_case "signature change (AXM044)" `Quick
           test_signature_change;
         Alcotest.test_case "removed / flipped function (AXM044)" `Quick
           test_function_removed_and_flipped;
         Alcotest.test_case "source positions" `Quick test_positions_attached
       ]);
      ("migration",
       [ Alcotest.test_case "advisories (AXM042)" `Quick
           test_migration_advisories;
         Alcotest.test_case "possible-only corpus" `Quick
           test_migration_possible
       ]);
      ("reporting",
       [ Alcotest.test_case "json envelope" `Quick test_json_reports;
         Alcotest.test_case "catalog covers AXM04x" `Quick
           test_catalog_covers_axm04x
       ]);
      ("properties", qcheck_tests)
    ]
