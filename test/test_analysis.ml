(* Tests for the static diagnostics engine (lib/analysis): one
   triggering and one clean fixture per rule code, the lint gate wired
   through Enforcement/Peer, and qcheck properties — linting generated
   schemas never raises, and the vacuity verdict (AXM001) agrees with
   the automata-level emptiness check. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto
module D = Axml_core.Document
module Contract = Axml_core.Contract
module Diagnostic = Axml_analysis.Diagnostic
module Lint = Axml_analysis.Lint
module Service = Axml_services.Service
module Registry = Axml_services.Registry
module Oracle = Axml_services.Oracle
module Enforcement = Axml_peer.Enforcement
module Pipeline = Enforcement.Pipeline
module Peer = Axml_peer.Peer

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Alcotest.failf "schema parse error: %s" e

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let codes ds =
  List.sort_uniq compare (List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) ds)

let has code ds = List.mem code (codes ds)

let severity_of code ds =
  List.find_map
    (fun (d : Diagnostic.t) ->
      if d.Diagnostic.code = code then Some d.Diagnostic.severity else None)
    ds

let la = R.sym (Symbol.Label "a")
let lb = R.sym (Symbol.Label "b")
let lc = R.sym (Symbol.Label "c")
let subject = Diagnostic.Element "x"

(* ------------------------------------------------------------------ *)
(* Regex level: AXM001 / AXM002 / AXM003                               *)
(* ------------------------------------------------------------------ *)

let test_vacuous_model () =
  let ds = Lint.lint_compiled ~subject R.empty in
  check "AXM001 fires" true (has "AXM001" ds);
  check "error severity" true (severity_of "AXM001" ds = Some Diagnostic.Error);
  (* a.∅ is still the empty language *)
  check "seq with empty" true (has "AXM001" (Lint.lint_compiled ~subject (R.seq la R.empty)));
  (* vacuity swallows the other regex rules: nothing else is reported *)
  check_int "only AXM001" 1 (List.length ds);
  check "clean" false (has "AXM001" (Lint.lint_compiled ~subject la))

let test_ambiguous_model () =
  (* (a.b | a.c): the first symbol does not decide the branch *)
  let r = R.alt (R.seq la lb) (R.seq la lc) in
  let ds = Lint.lint_compiled ~subject r in
  check "AXM002 fires" true (has "AXM002" ds);
  check "warning severity" true (severity_of "AXM002" ds = Some Diagnostic.Warning);
  (* the factored form a.(b | c) is 1-unambiguous *)
  let clean = Lint.lint_compiled ~subject (R.seq la (R.alt lb lc)) in
  check "clean" false (has "AXM002" clean)

let test_subsumed_branch () =
  (* (a* | a): the second branch adds nothing *)
  let ds = Lint.lint_compiled ~subject (R.alt (R.star la) la) in
  check "AXM003 fires" true (has "AXM003" ds);
  check "warning severity" true (severity_of "AXM003" ds = Some Diagnostic.Warning);
  check "clean" false (has "AXM003" (Lint.lint_compiled ~subject (R.alt la lb)));
  (* only top-level alternatives are inspected *)
  check "nested alt ignored" false
    (has "AXM003" (Lint.lint_compiled ~subject (R.seq (R.alt (R.star la) la) lb)))

(* ------------------------------------------------------------------ *)
(* Schema level: AXM010 / AXM011 / AXM012 / AXM014                     *)
(* ------------------------------------------------------------------ *)

let messy_text = {|
root r
element r = (a.b | a.c).s
element s = d* | d
element a = #data
element b = #data
element c = #data
element d = #data
element orphan = #data
element loop = loop.e
element e = #data
function Unused : #data -> #data
|}

let clean_text = {|
root r
element r = a.(F | b)
element a = #data
element b = #data
function F : #data -> b
|}

let test_schema_rules () =
  let ds = Lint.lint_schema (parse_schema messy_text) in
  check "ambiguity found" true (has "AXM002" ds);
  check "redundancy found" true (has "AXM003" ds);
  check "unreachable found" true (has "AXM010" ds);
  check "no finite document" true (has "AXM011" ds);
  check "unused function" true (has "AXM012" ds);
  let subjects code =
    List.filter_map
      (fun (d : Diagnostic.t) ->
        if d.Diagnostic.code = code then Some d.Diagnostic.loc.Diagnostic.subject
        else None)
      ds
  in
  check "orphan unreachable" true
    (List.mem (Diagnostic.Element "orphan") (subjects "AXM010"));
  check "loop uninhabited" true
    (List.mem (Diagnostic.Element "loop") (subjects "AXM011"));
  check "Unused flagged" true
    (List.mem (Diagnostic.Function "Unused") (subjects "AXM012"));
  (* results come back sorted *)
  let rec sorted = function
    | a :: (b :: _ as tl) -> Diagnostic.compare a b <= 0 && sorted tl
    | _ -> true
  in
  check "sorted" true (sorted ds)

let test_schema_clean () =
  check_int "no findings" 0 (List.length (Lint.lint_schema (parse_schema clean_text)))

let test_missing_root () =
  let s = parse_schema "element a = #data" in
  let ds = Lint.lint_schema s in
  check "AXM014 fires" true (has "AXM014" ds);
  check "hint severity" true (severity_of "AXM014" ds = Some Diagnostic.Hint);
  check "clean" false (has "AXM014" (Lint.lint_schema (parse_schema clean_text)))

let test_schema_positions () =
  let s, positions = Schema_parser.parse_with_positions messy_text in
  let ds = Lint.lint_schema ~file:"messy.axs" ~positions s in
  let orphan =
    List.find
      (fun (d : Diagnostic.t) ->
        d.Diagnostic.code = "AXM010"
        && d.Diagnostic.loc.Diagnostic.subject = Diagnostic.Element "orphan")
      ds
  in
  check "file attached" true (orphan.Diagnostic.loc.Diagnostic.file = Some "messy.axs");
  (match orphan.Diagnostic.loc.Diagnostic.pos with
   | Some p -> check_int "orphan declared on line 9" 9 p.Diagnostic.line
   | None -> Alcotest.fail "no position threaded");
  (* the rendered line carries the position *)
  let line = Fmt.str "@[<v>%a@]" Diagnostic.pp orphan in
  check "rendered with file:line:col" true (contains line "messy.axs:9:")

(* ------------------------------------------------------------------ *)
(* Contract level: AXM020 / AXM021 / AXM022 / AXM023                   *)
(* ------------------------------------------------------------------ *)

(* F's output (a lone <b>) can neither remain in nor materialize into
   the target's content model for r, so any document carrying the call
   is unexchangeable; G is invocable but occurs in no sender content. *)
let doomed_sender = parse_schema {|
root r
element r = a | F
element a = #data
element b = #data
function F : #data -> b
function G : #data -> a
|}

let doomed_target = parse_schema {|
root r
element r = a
element a = #data
element b = #data
function F : #data -> b
|}

let doomed_contract () = Contract.create ~s0:doomed_sender ~target:doomed_target ()

let test_contract_doomed () =
  let ds = Lint.lint_contract (doomed_contract ()) in
  check "never-safe found" true (has "AXM021" ds);
  check "never-safe is an error" true
    (severity_of "AXM021" ds = Some Diagnostic.Error);
  check "incompatible label found" true (has "AXM020" ds);
  check "always-materialize found" true (has "AXM022" ds);
  check "dead invocable found" true (has "AXM023" ds);
  let about name (d : Diagnostic.t) =
    d.Diagnostic.loc.Diagnostic.subject = Diagnostic.Function name
  in
  check "AXM021 blames F" true
    (List.exists (fun d -> d.Diagnostic.code = "AXM021" && about "F" d) ds);
  check "AXM023 blames G" true
    (List.exists (fun d -> d.Diagnostic.code = "AXM023" && about "G" d) ds)

let test_contract_never_safe_warning () =
  (* F may return <a> (fine) or <b> (refused): no safe rewriting of the
     minimal document, but a possible one exists — warning, not error. *)
  let sender = parse_schema {|
root r
element r = F
element a = #data
element b = #data
function F : #data -> (a | b)
|} in
  let target = parse_schema {|
root r
element r = a
element a = #data
element b = #data
function F : #data -> (a | b)
|} in
  let ds = Lint.lint_contract (Contract.create ~s0:sender ~target ()) in
  check "AXM021 fires" true (has "AXM021" ds);
  check "warning severity" true
    (severity_of "AXM021" ds = Some Diagnostic.Warning)

let test_contract_clean () =
  (* identical schemas: every document already conforms *)
  let s = parse_schema clean_text in
  let ds = Lint.lint_contract (Contract.create ~s0:s ~target:s ()) in
  check "no errors" false (Diagnostic.exceeds ~deny:Diagnostic.Warning ds)

(* F's declared output is b*, and a b may hold the invocable call G:
   flattening one F result takes two rewriting levels, one more than
   the contract's k=1 budget (AXM032). G itself is extensional-output
   and must stay unflagged. *)
let depth_gap_sender = parse_schema {|
root r
element r = a.(F | b)
element a = #data
element b = c.(G | a)
element c = #data
function F : #data -> b*
function G : c -> a
|}

let depth_gap_target = parse_schema {|
root r
element r = a.b
element a = #data
element b = c.a
element c = #data
|}

let test_contract_depth_gap () =
  let about name (d : Diagnostic.t) =
    d.Diagnostic.code = "AXM032"
    && d.Diagnostic.loc.Diagnostic.subject = Diagnostic.Function name
  in
  let ds =
    Lint.lint_contract
      (Contract.create ~s0:depth_gap_sender ~target:depth_gap_target ())
  in
  check "AXM032 fires at k=1" true (has "AXM032" ds);
  check "warning severity" true
    (severity_of "AXM032" ds = Some Diagnostic.Warning);
  check "blames F" true (List.exists (about "F") ds);
  check "not G (extensional output)" false (List.exists (about "G") ds);
  (* a k=2 budget covers the two levels: the rule is depth-aware *)
  let ds2 =
    Lint.lint_contract
      (Contract.create ~k:2 ~s0:depth_gap_sender ~target:depth_gap_target ())
  in
  check "clean at k=2" false (has "AXM032" ds2)

let test_contract_depth_unbounded () =
  (* H's output can embed H again: the embeds-a-call relation is
     cyclic, so no finite budget silences the rule *)
  let sender = parse_schema {|
root r
element r = a | H
element a = #data
function H : #data -> (a | H)
|} in
  let target = parse_schema {|
root r
element r = a*
element a = #data
|} in
  let ds = Lint.lint_contract (Contract.create ~k:5 ~s0:sender ~target ()) in
  check "AXM032 fires even at k=5" true (has "AXM032" ds)

(* ------------------------------------------------------------------ *)
(* Document level: AXM030 / AXM031                                     *)
(* ------------------------------------------------------------------ *)

let test_document_rules () =
  let c = doomed_contract () in
  let undeclared = D.elem "r" [ D.call "Nowhere" [] ] in
  let ds = Lint.lint_document c undeclared in
  check "AXM030 fires" true (has "AXM030" ds);
  check "error severity" true (severity_of "AXM030" ds = Some Diagnostic.Error);
  let doomed = D.elem "r" [ D.call "F" [ D.data "x" ] ] in
  let ds = Lint.lint_document c doomed in
  check "AXM031 fires" true (has "AXM031" ds);
  check "node located" true
    (List.exists
       (fun (d : Diagnostic.t) ->
         d.Diagnostic.code = "AXM031"
         && d.Diagnostic.loc.Diagnostic.subject = Diagnostic.Node [ 0 ])
       ds);
  let clean = D.elem "r" [ D.elem "a" [ D.data "x" ] ] in
  check_int "clean document" 0 (List.length (Lint.lint_document c clean))

(* ------------------------------------------------------------------ *)
(* Renderers and catalog                                               *)
(* ------------------------------------------------------------------ *)

let test_json_report () =
  let ds =
    Lint.lint_schema (parse_schema messy_text)
    @ Lint.lint_contract (doomed_contract ())
  in
  let json = Diagnostic.report_to_json ds in
  (match Jsonv.explain json with
   | None -> ()
   | Some why -> Alcotest.failf "report JSON does not parse: %s" why);
  List.iter
    (fun d ->
      match Jsonv.explain (Diagnostic.to_json d) with
      | None -> ()
      | Some why -> Alcotest.failf "diagnostic JSON does not parse: %s" why)
    ds;
  check "summary present" true (contains json "\"summary\"")

let test_rule_catalog () =
  let catalog = List.map (fun (c, _, _) -> c) Diagnostic.rules in
  check "codes unique" true
    (List.length catalog = List.length (List.sort_uniq compare catalog));
  (* every code the fixtures above can produce is catalogued *)
  let produced =
    codes
      (Lint.lint_schema (parse_schema messy_text)
      @ Lint.lint_schema (parse_schema "element a = #data")
      @ Lint.lint_contract (doomed_contract ())
      @ Lint.lint_document (doomed_contract ())
          (D.elem "r" [ D.call "Nowhere" []; D.call "F" [] ]))
  in
  check "eight distinct rules exercised" true (List.length produced >= 8);
  List.iter
    (fun code -> check (code ^ " catalogued") true (List.mem code catalog))
    produced

let test_severity_accounting () =
  let ds = Lint.lint_contract (doomed_contract ()) in
  check "errors exceed error" true (Diagnostic.exceeds ~deny:Diagnostic.Error ds);
  check "errors exceed hint" true (Diagnostic.exceeds ~deny:Diagnostic.Hint ds);
  check "max is error" true (Diagnostic.max_severity ds = Some Diagnostic.Error);
  check_int "no findings, nothing exceeded" 0
    (if Diagnostic.exceeds ~deny:Diagnostic.Hint [] then 1 else 0)

(* ------------------------------------------------------------------ *)
(* The lint gate: Enforcement.Pipeline and Peer                        *)
(* ------------------------------------------------------------------ *)

let make_registry () =
  let reg = Registry.create () in
  Registry.register_all reg
    [ Service.make ~input:(R.sym Schema.A_data)
        ~output:(R.sym (Schema.A_label "b")) "F"
        (Oracle.constant [ D.elem "b" [ D.data "cold" ] ]);
      Service.make ~input:(R.sym Schema.A_data)
        ~output:(R.sym (Schema.A_label "a")) "G"
        (Oracle.constant [ D.elem "a" [ D.data "warm" ] ])
    ];
  reg

let test_pipeline_gate_precludes () =
  let reg = make_registry () in
  let config = { Enforcement.default_config with Enforcement.lint_gate = true } in
  let p =
    Pipeline.create ~config ~s0:doomed_sender ~exchange:doomed_target
      ~invoker:(Registry.invoker reg) ()
  in
  (* the gate's evidence is the contract lint, available up front *)
  check "pipeline lint sees the doom" true (has "AXM021" (Pipeline.lint p));
  let doc = D.elem "r" [ D.call "F" [ D.data "x" ] ] in
  (match Pipeline.enforce p doc with
   | Error (Enforcement.Precluded ds) ->
     check "diagnostics attached" true (ds <> []);
     check "all gate evidence is errors" true
       (List.for_all
          (fun (d : Diagnostic.t) -> d.Diagnostic.severity = Diagnostic.Error)
          ds)
   | Error e -> Alcotest.failf "wrong error: %a" Enforcement.pp_error e
   | Ok _ -> Alcotest.fail "expected preclusion");
  check_int "no service was invoked" 0 (Registry.invocation_count reg);
  let stats = Pipeline.stats p in
  check_int "precluded counted" 1 stats.Pipeline.precluded;
  check_int "one doc seen" 1 stats.Pipeline.docs;
  (* the same pipeline without the gate reaches the rewriter instead *)
  let p' =
    Pipeline.create ~s0:doomed_sender ~exchange:doomed_target
      ~invoker:(Registry.invoker reg) ()
  in
  (match Pipeline.enforce p' doc with
   | Error (Enforcement.Precluded _) -> Alcotest.fail "gate is off"
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "doomed doc cannot be exchanged")

let test_pipeline_gate_per_document () =
  (* a healthy contract still gates statically-doomed documents,
     individually: clean docs pass, a doc calling an undeclared
     function is precluded without reaching enforcement *)
  let reg = make_registry () in
  let s = parse_schema clean_text in
  let config = { Enforcement.default_config with Enforcement.lint_gate = true } in
  let p =
    Pipeline.create ~config ~s0:s ~exchange:s ~invoker:(Registry.invoker reg) ()
  in
  check_int "contract itself is quiet" 0
    (Diagnostic.count Diagnostic.Error (Pipeline.lint p));
  let good = D.elem "r" [ D.elem "a" [ D.data "x" ]; D.elem "b" [ D.data "y" ] ] in
  (match Pipeline.enforce p good with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "clean doc refused: %a" Enforcement.pp_error e);
  let bad = D.elem "r" [ D.elem "a" [ D.data "x" ]; D.call "Ghost" [] ] in
  (match Pipeline.enforce p bad with
   | Error (Enforcement.Precluded ds) -> check "AXM030 evidence" true (has "AXM030" ds)
   | Error e -> Alcotest.failf "wrong error: %a" Enforcement.pp_error e
   | Ok _ -> Alcotest.fail "expected preclusion");
  let stats = Pipeline.stats p in
  check_int "one precluded" 1 stats.Pipeline.precluded;
  check_int "two docs" 2 stats.Pipeline.docs

let test_peer_lint_exchange () =
  let peer = Peer.create ~name:"sender" ~schema:doomed_sender () in
  let ds = Peer.lint_exchange peer ~exchange:doomed_target in
  check "peer surfaces the doom" true (has "AXM021" ds);
  (* served from the cached pipeline: a second call agrees *)
  let ds' = Peer.lint_exchange peer ~exchange:doomed_target in
  check_int "stable across calls" (List.length ds) (List.length ds')

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                   *)
(* ------------------------------------------------------------------ *)

(* Random content models over two labels and two functions, this time
   including the empty regex so the vacuity rule actually triggers. *)
let gen_content : Schema.content QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    map R.sym
      (oneofl
         [ Schema.A_label "a"; Schema.A_label "b"; Schema.A_fun "f";
           Schema.A_fun "g"; Schema.A_data ])
  in
  let rec gen n =
    if n <= 0 then atom
    else
      frequency
        [ (3, atom);
          (1, return R.epsilon);
          (1, return R.empty);
          (2, map2 R.seq (gen (n / 2)) (gen (n / 2)));
          (2, map2 R.alt (gen (n / 2)) (gen (n / 2)));
          (1, map R.star (gen (n - 1)))
        ]
  in
  gen 6

let arb_content =
  QCheck.make ~print:(Fmt.str "%a" Schema.pp_content) gen_content

let mini_schema top out_f out_g =
  let s = Schema.empty in
  let s = Schema.add_element s "a" (R.sym Schema.A_data) in
  let s = Schema.add_element s "b" (R.sym Schema.A_data) in
  let s = Schema.add_function s (Schema.func "f" ~input:R.epsilon ~output:out_f) in
  let s = Schema.add_function s (Schema.func "g" ~input:R.epsilon ~output:out_g) in
  let s = Schema.add_element s "top" top in
  Schema.with_root s "top"

let prop_lint_never_raises =
  QCheck.Test.make ~count:300 ~name:"lint_schema never raises"
    QCheck.(triple arb_content arb_content arb_content)
    (fun (top, out_f, out_g) ->
      let s = mini_schema top out_f out_g in
      let ds = Lint.lint_schema s in
      (* and its report always renders to valid JSON *)
      Jsonv.explain (Diagnostic.report_to_json ds) = None)

let prop_vacuity_matches_automata =
  QCheck.Test.make ~count:300 ~name:"AXM001 agrees with automata emptiness"
    QCheck.(triple arb_content arb_content arb_content)
    (fun (top, out_f, out_g) ->
      let s = mini_schema top out_f out_g in
      let env = Schema.env_of_schema s in
      let r = Schema.compile_content env top in
      let lint_empty = has "AXM001" (Lint.lint_compiled ~subject r) in
      let auto_empty = Auto.Dfa.is_empty (Auto.Dfa.of_regex r) in
      if lint_empty <> auto_empty then
        QCheck.Test.fail_reportf "lint says empty=%b but the DFA says %b"
          lint_empty auto_empty
      else true)

let qcheck_tests =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x11A7 |]))
    [ prop_lint_never_raises; prop_vacuity_matches_automata ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [ ("regex-rules",
       [ Alcotest.test_case "vacuous model" `Quick test_vacuous_model;
         Alcotest.test_case "ambiguous model" `Quick test_ambiguous_model;
         Alcotest.test_case "subsumed branch" `Quick test_subsumed_branch
       ]);
      ("schema-rules",
       [ Alcotest.test_case "messy schema" `Quick test_schema_rules;
         Alcotest.test_case "clean schema" `Quick test_schema_clean;
         Alcotest.test_case "missing root" `Quick test_missing_root;
         Alcotest.test_case "source positions" `Quick test_schema_positions
       ]);
      ("contract-rules",
       [ Alcotest.test_case "doomed contract" `Quick test_contract_doomed;
         Alcotest.test_case "never-safe warning" `Quick test_contract_never_safe_warning;
         Alcotest.test_case "clean contract" `Quick test_contract_clean;
         Alcotest.test_case "depth gap (AXM032)" `Quick test_contract_depth_gap;
         Alcotest.test_case "unbounded depth (AXM032)" `Quick
           test_contract_depth_unbounded
       ]);
      ("document-rules",
       [ Alcotest.test_case "call diagnostics" `Quick test_document_rules ]);
      ("reporting",
       [ Alcotest.test_case "json report" `Quick test_json_report;
         Alcotest.test_case "rule catalog" `Quick test_rule_catalog;
         Alcotest.test_case "severity accounting" `Quick test_severity_accounting
       ]);
      ("gate",
       [ Alcotest.test_case "contract preclusion" `Quick test_pipeline_gate_precludes;
         Alcotest.test_case "per-document preclusion" `Quick test_pipeline_gate_per_document;
         Alcotest.test_case "peer lint" `Quick test_peer_lint_exchange
       ]);
      ("properties", qcheck_tests)
    ]
