(* Tests for the regex + automata toolkit (lib/regex). *)

module R = Axml_regex.Regex
module P = Axml_regex.Regex_parser

module Str_sym = struct
  type t = string
  let compare = String.compare
  let pp = Fmt.string
end

module A = Axml_regex.Automata.Make (Str_sym)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse s =
  match P.parse_result s with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let word s =
  (* "a b c" -> ["a"; "b"; "c"] *)
  String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_simple () =
  let r = parse "a.b.(c | d)*" in
  check_int "size" 8 (R.size r);
  Alcotest.(check string) "print" "a.b.(c | d)*" (R.to_string Fmt.string r)

let test_parse_postfix_chain () =
  let r = parse "a*?" in
  (* opt of star collapses to star via smart constructors *)
  check "still accepts eps" true (R.nullable r)

let test_parse_epsilon () =
  let r = parse "()" in
  check "epsilon" true (R.equal String.equal r R.epsilon)

let test_parse_newspaper () =
  let r = parse "title.date.(Get_Temp | temp).(TimeOut | exhibit*)" in
  let syms = R.symbols r in
  Alcotest.(check (list string)) "symbols"
    [ "title"; "date"; "Get_Temp"; "temp"; "TimeOut"; "exhibit" ]
    syms

let test_parse_errors () =
  let bad = [ "a.(b"; "a || b"; "*a"; "a b"; "a |"; "(" ] in
  List.iter
    (fun s ->
      match P.parse_result s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error _ -> ())
    bad

let test_repeat () =
  let r = R.repeat ~min:2 ~max:(Some 4) (R.sym "a") in
  let d = A.Dfa.of_regex r in
  check "aa" true (A.Dfa.accepts d (word "a a"));
  check "aaa" true (A.Dfa.accepts d (word "a a a"));
  check "aaaa" true (A.Dfa.accepts d (word "a a a a"));
  check "a" false (A.Dfa.accepts d (word "a"));
  check "aaaaa" false (A.Dfa.accepts d (word "a a a a a"));
  let unbounded = R.repeat ~min:1 ~max:None (R.sym "a") in
  let d = A.Dfa.of_regex unbounded in
  check "empty rejected" false (A.Dfa.accepts d []);
  check "a*" true (A.Dfa.accepts d (word "a a a a a a"))

(* ------------------------------------------------------------------ *)
(* Constructions                                                       *)
(* ------------------------------------------------------------------ *)

let test_thompson_basic () =
  let nfa = A.Nfa.thompson (parse "a.b | c*") in
  check "ab" true (A.Nfa.accepts nfa (word "a b"));
  check "eps" true (A.Nfa.accepts nfa []);
  check "ccc" true (A.Nfa.accepts nfa (word "c c c"));
  check "a" false (A.Nfa.accepts nfa (word "a"));
  check "abc" false (A.Nfa.accepts nfa (word "a b c"))

let test_glushkov_basic () =
  let nfa = A.Nfa.glushkov (parse "a.b | c*") in
  check "ab" true (A.Nfa.accepts nfa (word "a b"));
  check "eps" true (A.Nfa.accepts nfa []);
  check "ccc" true (A.Nfa.accepts nfa (word "c c c"));
  check "ba" false (A.Nfa.accepts nfa (word "b a"))

let test_glushkov_no_eps () =
  let nfa = A.Nfa.glushkov (parse "(a | b)*.a.b?") in
  check_int "no eps edges" 0
    (A.Int_map.fold (fun _ s acc -> acc + A.Int_set.cardinal s) nfa.A.Nfa.eps 0)

let test_determinism_check () =
  check "a.(b|c) det" true (A.deterministic_regex (parse "a.(b | c)"));
  check "a.b|a.c nondet" false (A.deterministic_regex (parse "a.b | a.c"));
  check "(a|b)*.a nondet" false (A.deterministic_regex (parse "(a | b)*.a"));
  check "paper schema det" true
    (A.deterministic_regex (parse "title.date.(Get_Temp | temp).(TimeOut | exhibit*)"))

(* ------------------------------------------------------------------ *)
(* DFA operations                                                      *)
(* ------------------------------------------------------------------ *)

let alpha_abc = A.Sym_set.of_list [ "a"; "b"; "c" ]

let test_complement () =
  let d = A.Dfa.of_regex (parse "a.b*") in
  let c = A.Dfa.complement ~alphabet:alpha_abc d in
  check "d: ab" true (A.Dfa.accepts d (word "a b"));
  check "c: ab" false (A.Dfa.accepts c (word "a b"));
  check "c: eps" true (A.Dfa.accepts c []);
  check "c: ba" true (A.Dfa.accepts c (word "b a"));
  check "c: abc" true (A.Dfa.accepts c (word "a b c"));
  check "complete" true (A.Dfa.is_complete c)

let test_product_ops () =
  let d1 = A.Dfa.of_regex (parse "(a | b)*") in
  let d2 = A.Dfa.of_regex (parse "a.(a | b | c)*") in
  let inter = A.Dfa.intersect d1 d2 in
  check "inter: a b" true (A.Dfa.accepts inter (word "a b"));
  check "inter: b a" false (A.Dfa.accepts inter (word "b a"));
  check "inter: a c" false (A.Dfa.accepts inter (word "a c"));
  let u = A.Dfa.union d1 d2 in
  check "union: b a" true (A.Dfa.accepts u (word "b a"));
  check "union: a c" true (A.Dfa.accepts u (word "a c"));
  check "union: c" false (A.Dfa.accepts u (word "c"))

let test_emptiness_witness () =
  let d = A.Dfa.of_regex (parse "a.b.c") in
  check "nonempty" false (A.Dfa.is_empty d);
  Alcotest.(check (option (list string))) "witness"
    (Some [ "a"; "b"; "c" ]) (A.Dfa.shortest_word d);
  let none = A.Dfa.intersect (A.Dfa.of_regex (parse "a.a")) (A.Dfa.of_regex (parse "b")) in
  check "empty intersection" true (A.Dfa.is_empty none);
  Alcotest.(check (option (list string))) "no witness" None (A.Dfa.shortest_word none)

let test_minimize () =
  (* (a|b).(a|b) has a 4-state minimal complete DFA incl. sink:
     q0 -a,b-> q1 -a,b-> q2(final) -a,b-> sink *)
  let d = A.Dfa.of_regex (parse "(a | b).(a | b)") in
  let m = A.Dfa.minimize d in
  check "language preserved aa" true (A.Dfa.accepts m (word "a a"));
  check "language preserved ba" true (A.Dfa.accepts m (word "b a"));
  check "rejects a" false (A.Dfa.accepts m (word "a"));
  check "rejects aaa" false (A.Dfa.accepts m (word "a a a"));
  check_int "minimal size" 4 m.A.Dfa.size

let test_equal_language () =
  let d1 = A.Dfa.of_regex (parse "(a.b)*.a?") in
  let d2 = A.Dfa.of_regex (parse "a?.(b.a?)*" ) in
  (* these two are NOT equal: d2 accepts "b" while d1 does not *)
  check "not equal" false (A.Dfa.equal_language d1 d2);
  let d3 = A.Dfa.of_regex (parse "a.a* | ()") in
  let d4 = A.Dfa.of_regex (parse "a*") in
  check "equal" true (A.Dfa.equal_language d3 d4);
  (match A.Dfa.separating_word d2 d1 with
   | Some w -> check "witness in d2 only" true (A.Dfa.accepts d2 w && not (A.Dfa.accepts d1 w))
   | None -> Alcotest.fail "expected separating word")

let test_nfa_shortest () =
  let nfa = A.Nfa.thompson (parse "a*.b.c | a.a") in
  match A.Nfa.shortest_word nfa with
  | Some w ->
    check_int "length 2" 2 (List.length w);
    check "accepted" true (A.Nfa.accepts nfa w)
  | None -> Alcotest.fail "expected a witness"

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let gen_regex : string R.t QCheck.arbitrary =
  let open QCheck.Gen in
  let sym = oneofl [ "a"; "b"; "c" ] in
  let rec gen n =
    if n <= 0 then map R.sym sym
    else
      frequency
        [ (2, map R.sym sym);
          (1, return R.epsilon);
          (2, map2 R.seq (gen (n / 2)) (gen (n / 2)));
          (2, map2 R.alt (gen (n / 2)) (gen (n / 2)));
          (1, map R.star (gen (n - 1)));
          (1, map R.plus (gen (n - 1)));
          (1, map R.opt (gen (n - 1)))
        ]
  in
  QCheck.make ~print:(R.to_string Fmt.string) (sized_size (int_bound 8) gen)

let gen_word : string list QCheck.arbitrary =
  QCheck.(list_of_size Gen.(int_bound 6) (oneofl [ "a"; "b"; "c" ]))

let prop_thompson_glushkov_agree =
  QCheck.Test.make ~count:500 ~name:"thompson and glushkov accept the same words"
    QCheck.(pair gen_regex gen_word)
    (fun (r, w) ->
      A.Nfa.accepts (A.Nfa.thompson r) w = A.Nfa.accepts (A.Nfa.glushkov r) w)

let prop_dfa_agrees_with_nfa =
  QCheck.Test.make ~count:500 ~name:"subset construction preserves the language"
    QCheck.(pair gen_regex gen_word)
    (fun (r, w) ->
      let nfa = A.Nfa.thompson r in
      A.Nfa.accepts nfa w = A.Dfa.accepts (A.Dfa.of_nfa nfa) w)

let prop_complement_sound =
  QCheck.Test.make ~count:500 ~name:"complement flips membership"
    QCheck.(pair gen_regex gen_word)
    (fun (r, w) ->
      let d = A.Dfa.of_regex r in
      let c = A.Dfa.complement ~alphabet:alpha_abc d in
      A.Dfa.accepts d w <> A.Dfa.accepts c w)

let prop_product_is_intersection =
  QCheck.Test.make ~count:300 ~name:"product computes intersection"
    QCheck.(triple gen_regex gen_regex gen_word)
    (fun (r1, r2, w) ->
      let d1 = A.Dfa.of_regex r1 and d2 = A.Dfa.of_regex r2 in
      A.Dfa.accepts (A.Dfa.intersect d1 d2) w
      = (A.Dfa.accepts d1 w && A.Dfa.accepts d2 w))

let prop_minimize_preserves =
  QCheck.Test.make ~count:300 ~name:"minimization preserves the language"
    QCheck.(pair gen_regex gen_word)
    (fun (r, w) ->
      let d = A.Dfa.of_regex r in
      A.Dfa.accepts d w = A.Dfa.accepts (A.Dfa.minimize d) w)

let prop_minimize_not_larger =
  QCheck.Test.make ~count:300 ~name:"minimization never grows the completed DFA"
    gen_regex
    (fun r ->
      let d = A.Dfa.complete ~alphabet:alpha_abc (A.Dfa.of_regex r) in
      (A.Dfa.minimize d).A.Dfa.size <= d.A.Dfa.size)

let prop_nullable_agrees =
  QCheck.Test.make ~count:500 ~name:"nullable iff automaton accepts the empty word"
    gen_regex
    (fun r -> R.nullable r = A.Nfa.accepts (A.Nfa.glushkov r) [])

let prop_sample_word_in_language =
  QCheck.Test.make ~count:500 ~name:"sampled words belong to the language"
    QCheck.(pair gen_regex (int_bound 1000))
    (fun (r, seed) ->
      let st = Random.State.make [| seed |] in
      match A.sample_word ~rand_int:(fun n -> Random.State.int st n) ~fuel:20 r with
      | None -> true (* sampling may fail on branches leading to Empty *)
      | Some w -> A.Dfa.accepts (A.Dfa.of_regex r) w)

let prop_shortest_word_accepted =
  QCheck.Test.make ~count:300 ~name:"shortest word is accepted when one exists"
    gen_regex
    (fun r ->
      let d = A.Dfa.of_regex r in
      match A.Dfa.shortest_word d with
      | None -> A.Dfa.is_empty d
      | Some w -> A.Dfa.accepts d w)

let prop_parser_print_roundtrip =
  QCheck.Test.make ~count:300 ~name:"printing then parsing preserves the language"
    QCheck.(pair gen_regex gen_word)
    (fun (r, w) ->
      let printed = R.to_string Fmt.string r in
      match P.parse_result printed with
      | Error e -> QCheck.Test.fail_reportf "reparse of %S failed: %s" printed e
      | Ok r' ->
        A.Dfa.accepts (A.Dfa.of_regex r) w = A.Dfa.accepts (A.Dfa.of_regex r') w)

(* ------------------------------------------------------------------ *)
(* Dense kernel parity: the flat int-array tables behind Auto.Dfa.Dense
   must agree with the functional-map DFA on every verdict.            *)
(* ------------------------------------------------------------------ *)

module Interner = Axml_regex.Interner

(* one interner per run: dense codings only need injectivity *)
let test_interner = Interner.create ()
let sym_id s = Interner.intern test_interner s
let dense_of r = A.Dfa.Dense.compile ~sym_id (A.Dfa.of_regex r)

let prop_dense_membership_parity =
  QCheck.Test.make ~count:500 ~name:"dense tables agree with the map DFA"
    QCheck.(pair gen_regex gen_word)
    (fun (r, w) ->
      A.Dfa.accepts (A.Dfa.of_regex r) w
      = A.Dfa.Dense.accepts ~sym_id (dense_of r) w)

let prop_dense_subset_parity =
  QCheck.Test.make ~count:300
    ~name:"subset, separating_word and dense membership cohere"
    QCheck.(pair gen_regex gen_regex)
    (fun (r1, r2) ->
      let d1 = A.Dfa.of_regex r1 and d2 = A.Dfa.of_regex r2 in
      match A.Dfa.separating_word d1 d2 with
      | None -> A.Dfa.subset d1 d2
      | Some w ->
        (not (A.Dfa.subset d1 d2))
        && A.Dfa.Dense.accepts ~sym_id (dense_of r1) w
        && not (A.Dfa.Dense.accepts ~sym_id (dense_of r2) w))

let prop_dense_batch_identical =
  QCheck.Test.make ~count:100
    ~name:"dense verdicts are identical across a word batch"
    QCheck.(pair gen_regex (list_of_size Gen.(int_bound 20) gen_word))
    (fun (r, words) ->
      let d = A.Dfa.of_regex r in
      let dense = dense_of r in
      List.for_all
        (fun w -> A.Dfa.accepts d w = A.Dfa.Dense.accepts ~sym_id dense w)
        words)

(* The interner must hand out consistent ids under concurrent access
   from several domains: same string -> same id everywhere, and
   [to_string] stays the exact inverse. *)
let test_interner_concurrent () =
  let itn = Interner.create () in
  let domains = 4 and per_domain = 250 in
  let shared = List.init 100 (fun i -> Fmt.str "shared-%d" i) in
  let results =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            (* interleave shared vocabulary with domain-private strings
               so insert races and pure lookups both happen *)
            let mine = List.init per_domain (fun i -> Fmt.str "d%d-%d" d i) in
            let all = List.concat [ shared; mine; shared ] in
            List.map (fun s -> (s, Interner.intern itn s)) all))
    |> List.map Domain.join
  in
  (* round-trip: every id maps back to its string *)
  List.iter
    (List.iter (fun (s, id) ->
         Alcotest.(check string) "to_string inverse" s
           (Interner.to_string itn id)))
    results;
  (* agreement: the shared vocabulary got one id per string, across all
     domains *)
  List.iter
    (fun s ->
      let ids =
        List.concat_map
          (List.filter_map (fun (s', id) -> if s = s' then Some id else None))
          results
        |> List.sort_uniq compare
      in
      check_int ("one id for " ^ s) 1 (List.length ids))
    shared;
  check_int "size counts distinct strings"
    (100 + (domains * per_domain))
    (Interner.size itn);
  (* find_opt never invents entries *)
  check "absent string" true (Interner.find_opt itn "never-interned" = None)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_thompson_glushkov_agree;
      prop_dfa_agrees_with_nfa;
      prop_complement_sound;
      prop_product_is_intersection;
      prop_minimize_preserves;
      prop_minimize_not_larger;
      prop_nullable_agrees;
      prop_sample_word_in_language;
      prop_shortest_word_accepted;
      prop_parser_print_roundtrip;
      prop_dense_membership_parity;
      prop_dense_subset_parity;
      prop_dense_batch_identical
    ]

let () =
  Alcotest.run "regex"
    [ ("parser",
       [ Alcotest.test_case "simple" `Quick test_parse_simple;
         Alcotest.test_case "postfix chain" `Quick test_parse_postfix_chain;
         Alcotest.test_case "epsilon" `Quick test_parse_epsilon;
         Alcotest.test_case "newspaper schema" `Quick test_parse_newspaper;
         Alcotest.test_case "errors" `Quick test_parse_errors;
         Alcotest.test_case "repeat bounds" `Quick test_repeat
       ]);
      ("constructions",
       [ Alcotest.test_case "thompson" `Quick test_thompson_basic;
         Alcotest.test_case "glushkov" `Quick test_glushkov_basic;
         Alcotest.test_case "glushkov eps-free" `Quick test_glushkov_no_eps;
         Alcotest.test_case "1-unambiguity" `Quick test_determinism_check
       ]);
      ("dfa",
       [ Alcotest.test_case "complement" `Quick test_complement;
         Alcotest.test_case "products" `Quick test_product_ops;
         Alcotest.test_case "emptiness + witness" `Quick test_emptiness_witness;
         Alcotest.test_case "minimize" `Quick test_minimize;
         Alcotest.test_case "language equality" `Quick test_equal_language;
         Alcotest.test_case "nfa shortest word" `Quick test_nfa_shortest
       ]);
      ("kernel",
       [ Alcotest.test_case "interner under 4 domains" `Quick
           test_interner_concurrent
       ]);
      ("properties", qcheck_tests)
    ]
