(* Integration tests for the axml command-line driver: they run the
   actual binary (declared as a dune dependency) against files on disk
   and check exit codes and outputs. *)

let cli = "../bin/axml_cli.exe"

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

(* Run the CLI; returns (exit code, combined output). *)
let run args =
  let out = Filename.temp_file "axml_cli" ".out" in
  let cmd =
    Fmt.str "%s %s > %s 2>&1" (Filename.quote cli)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let output = read_file out in
  Sys.remove out;
  (code, output)

(* As [run], but with stdout and stderr captured separately — the JSON
   envelope tests assert that stdout alone is one valid JSON value. *)
let run_split args =
  let out = Filename.temp_file "axml_cli" ".out" in
  let err = Filename.temp_file "axml_cli" ".err" in
  let cmd =
    Fmt.str "%s %s > %s 2> %s" (Filename.quote cli)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout, stderr)

let check_json_envelope label s =
  (match Jsonv.explain s with
   | None -> ()
   | Some why -> Alcotest.failf "%s: stdout is not valid JSON: %s" label why);
  check (label ^ ": has diagnostics") true (contains s "\"diagnostics\"");
  check (label ^ ": has summary") true (contains s "\"summary\"")

let dir = Filename.get_temp_dir_name ()
let path name = Filename.concat dir ("axml_test_" ^ name)

let sender_schema = {|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.date
element performance = title.date
function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
|}

let exchange_schema = {|
root newspaper
element newspaper = title.date.temp.(TimeOut | exhibit*)
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.date
element performance = title.date
function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
|}

let strict_schema = {|
root newspaper
element newspaper = title.date.temp.exhibit*
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.date
element performance = title.date
function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
|}

let doc_xml = {|<newspaper xmlns:int="http://www.activexml.com/ns/int">
  <title>The Sun</title><date>04/10/2002</date>
  <int:fun methodName="Get_Temp"><int:params><int:param><city>Paris</city></int:param></int:params></int:fun>
  <int:fun methodName="TimeOut"><int:params><int:param>exhibits</int:param></int:params></int:fun>
</newspaper>
|}

let setup () =
  write_file (path "sender.axs") sender_schema;
  write_file (path "exchange.axs") exchange_schema;
  write_file (path "strict.axs") strict_schema;
  write_file (path "doc.xml") doc_xml

let test_validate_ok () =
  setup ();
  let code, out = run [ "validate"; "-s"; path "sender.axs"; path "doc.xml" ] in
  check_int "exit 0" 0 code;
  check "says valid" true (contains out "valid")

let test_validate_fails () =
  setup ();
  let code, out = run [ "validate"; "-s"; path "exchange.axs"; path "doc.xml" ] in
  check_int "exit 1" 1 code;
  check "explains" true (contains out "newspaper")

let test_check_safe () =
  setup ();
  let code, out =
    run [ "check"; "-f"; path "sender.axs"; "-t"; path "exchange.axs"; path "doc.xml" ]
  in
  check_int "exit 0" 0 code;
  check "says safe" true (contains out "safe");
  let code, _ =
    run [ "check"; "-f"; path "sender.axs"; "-t"; path "strict.axs"; path "doc.xml" ]
  in
  check_int "strict target: exit 1" 1 code;
  let code, _ =
    run [ "check"; "--possible"; "-f"; path "sender.axs"; "-t"; path "strict.axs";
          path "doc.xml" ]
  in
  check_int "but possible: exit 0" 0 code

let test_rewrite () =
  setup ();
  let out_file = path "out.xml" in
  let code, log =
    run [ "rewrite"; "-f"; path "sender.axs"; "-t"; path "exchange.axs";
          "-o"; out_file; path "doc.xml" ]
  in
  check_int "exit 0" 0 code;
  check "one invocation" true (contains log "1 invocation");
  let produced = read_file out_file in
  check "temp materialized" true (contains produced "<temp>");
  check "TimeOut kept" true (contains produced "TimeOut");
  (* the produced document validates against the exchange schema *)
  let code, _ = run [ "validate"; "-s"; path "exchange.axs"; out_file ] in
  check_int "output validates" 0 code

let test_rewrite_rejected () =
  setup ();
  let code, out =
    run [ "rewrite"; "-f"; path "sender.axs"; "-t"; path "strict.axs"; path "doc.xml" ]
  in
  check_int "exit 1" 1 code;
  check "rejected" true (contains out "rejected")

let test_batch () =
  setup ();
  let json_file = path "batch_stats.json" in
  let code, out =
    run [ "batch"; "-f"; path "sender.axs"; "-t"; path "exchange.axs";
          "--stats-json"; json_file;
          path "doc.xml"; path "doc.xml"; path "doc.xml" ]
  in
  check_int "exit 0" 0 code;
  check "per-doc outcome lines" true (contains out "rewritten, 1 invocation");
  check "batch summary" true (contains out "3 docs");
  check "cache summary" true (contains out "hit rate");
  let json = read_file json_file in
  check "json docs" true (contains json "\"docs\": 3");
  check "json rewritten" true (contains json "\"rewritten\": 3");
  check "json cache" true (contains json "\"cache\"");
  check "json hit rate" true (contains json "\"cache_hit_rate\"");
  check "json faults" true (contains json "\"faults\": 0");
  check "json resilience" true (contains json "\"resilience\"");
  (* a rejected document fails the batch *)
  let code, out =
    run [ "batch"; "-f"; path "sender.axs"; "-t"; path "strict.axs";
          path "doc.xml"; path "doc.xml" ]
  in
  check_int "rejections: exit 1" 1 code;
  check "marked rejected" true (contains out "REJECTED")

let test_batch_fault_tolerance () =
  setup ();
  (* every call fails: the batch must finish with per-document fault
     outcomes instead of aborting, and account the breaker activity *)
  let json_file = path "fault_stats.json" in
  let code, out =
    run [ "batch"; "-f"; path "sender.axs"; "-t"; path "exchange.axs";
          "--oracle"; "fail"; "--retries"; "1"; "--breaker-threshold"; "2";
          "--stats-json"; json_file;
          path "doc.xml"; path "doc.xml"; path "doc.xml" ]
  in
  check_int "faults: exit 1" 1 code;
  check "marked as service faults" true (contains out "SERVICE-FAULT");
  let json = read_file json_file in
  check "json faults" true (contains json "\"faults\": 3");
  check "json gave up" true (contains json "\"gave_up\": 1");
  check "json breaker trip" true (contains json "\"trips\": 1");
  (* a flaky service (every 7th call dies) is absorbed by the retries *)
  let json_file = path "flaky_stats.json" in
  let code, _ =
    run ([ "batch"; "-f"; path "sender.axs"; "-t"; path "exchange.axs";
           "--oracle"; "flaky"; "--stats-json"; json_file ]
         @ List.init 7 (fun _ -> path "doc.xml"))
  in
  check_int "flaky absorbed: exit 0" 0 code;
  let json = read_file json_file in
  check "no faults surfaced" true (contains json "\"faults\": 0");
  check "one retry recorded" true (contains json "\"retries\": 1")

let test_batch_stats_json_shape () =
  setup ();
  let json_file = path "shape_stats.json" in
  let code, _ =
    run [ "batch"; "-f"; path "sender.axs"; "-t"; path "exchange.axs";
          "--stats-json"; json_file; path "doc.xml" ]
  in
  check_int "exit 0" 0 code;
  let json = read_file json_file in
  (match Jsonv.explain json with
   | None -> ()
   | Some why -> Alcotest.failf "stats JSON does not parse: %s" why);
  check "names the sender schema" true (contains json "\"sender_schema\"");
  check "names the exchange schema" true (contains json "\"exchange_schema\"");
  check "records the schema path" true (contains json (path "exchange.axs"));
  check "stamps the run" true (contains json "\"timestamp\": \"2")

let test_batch_metrics_out () =
  setup ();
  let prom_file = path "metrics.prom" in
  let code, _ =
    run [ "batch"; "-f"; path "sender.axs"; "-t"; path "exchange.axs";
          "--metrics-out"; prom_file; path "doc.xml"; path "doc.xml" ]
  in
  check_int "exit 0" 0 code;
  let prom = read_file prom_file in
  check "typed counter" true
    (contains prom "# TYPE axml_enforcement_documents_total counter");
  check "labelled sample" true
    (contains prom "axml_enforcement_documents_total{outcome=\"rewritten\"} 2");
  check "histogram exported" true
    (contains prom "# TYPE axml_enforcement_seconds histogram");
  check "+Inf bucket" true
    (contains prom "axml_enforcement_seconds_bucket{le=\"+Inf\"} 2");
  (* a .json suffix switches the dump format *)
  let json_file = path "metrics.json" in
  let code, _ =
    run [ "batch"; "-f"; path "sender.axs"; "-t"; path "exchange.axs";
          "--metrics-out"; json_file; path "doc.xml" ]
  in
  check_int "json variant: exit 0" 0 code;
  let json = read_file json_file in
  (match Jsonv.explain json with
   | None -> ()
   | Some why -> Alcotest.failf "metrics JSON does not parse: %s" why);
  check "execute metrics present" true
    (contains json "axml_execute_invocations_total")

let test_trace () =
  setup ();
  let jsonl_file = path "trace.jsonl" in
  let code, out =
    run [ "trace"; "-f"; path "sender.axs"; "-t"; path "exchange.axs";
          "--jsonl"; jsonl_file; path "doc.xml" ]
  in
  check_int "exit 0" 0 code;
  check "header line" true (contains out "trace:");
  check "validation step" true (contains out "validate newspaper");
  check "cache query" true (contains out "cache safe");
  check "fork choice" true (contains out "fork Get_Temp: invoke");
  check "invocation outcome" true (contains out "invoke Get_Temp: ok");
  check "verdict" true (contains out "decision newspaper: ACCEPT");
  (* every recorded event round-trips as one JSON object per line *)
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (read_file jsonl_file))
  in
  check "events exported" true (List.length lines > 5);
  List.iter
    (fun l ->
      match Jsonv.explain l with
      | None -> ()
      | Some why -> Alcotest.failf "bad JSONL line %S: %s" l why)
    lines;
  (* a rejected document still yields a trace, and the exit code says so *)
  let code, out =
    run [ "trace"; "-f"; path "sender.axs"; "-t"; path "strict.axs";
          path "doc.xml" ]
  in
  check_int "rejection: exit 1" 1 code;
  check "reject verdict traced" true (contains out "REJECT")

let test_compat () =
  setup ();
  let code, out =
    run [ "compat"; "-f"; path "sender.axs"; "-t"; path "exchange.axs" ]
  in
  check_int "compatible: exit 0" 0 code;
  check "says compatible" true (contains out "COMPATIBLE");
  let code, out =
    run [ "compat"; "-f"; path "sender.axs"; "-t"; path "strict.axs" ]
  in
  check_int "incompatible: exit 1" 1 code;
  check "culprit reported" true (contains out "newspaper")

let test_schema_convert () =
  setup ();
  let xml_file = path "schema.xml" in
  let code, _ =
    run [ "schema"; "-s"; path "sender.axs"; "--to"; "xml"; "-o"; xml_file ]
  in
  check_int "convert to xml: exit 0" 0 code;
  check "xml syntax" true (contains (read_file xml_file) "<schema");
  (* the XML form loads back and still certifies the same compat verdict *)
  let code, _ = run [ "compat"; "-f"; xml_file; "-t"; path "exchange.axs" ] in
  check_int "xml schema usable: exit 0" 0 code

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

let messy_schema = {|
root r
element r = (a.b | a.c).s
element s = d* | d
element a = #data
element b = #data
element c = #data
element d = #data
element orphan = #data
element loop = loop.e
element e = #data
function Unused : #data -> #data
|}

let doomed_sender = {|
root r
element r = a | F
element a = #data
element b = #data
function F : #data -> b
function G : #data -> a
|}

let doomed_target = {|
root r
element r = a
element a = #data
element b = #data
function F : #data -> b
|}

let clean_pair_sender = {|
root r
element r = a.(F | b)
element a = #data
element b = #data
function F : #data -> b
|}

let clean_pair_target = {|
root r
element r = a.b
element a = #data
element b = #data
|}

let doomed_doc = {|<r xmlns:int="http://www.activexml.com/ns/int">
  <int:fun methodName="Ghost"><int:params><int:param>x</int:param></int:params></int:fun>
  <int:fun methodName="F"><int:params><int:param>x</int:param></int:params></int:fun>
</r>
|}

let setup_lint () =
  write_file (path "messy.axs") messy_schema;
  write_file (path "noroot.axs") "element a = #data\n";
  write_file (path "doomed_sender.axs") doomed_sender;
  write_file (path "doomed_target.axs") doomed_target;
  write_file (path "clean_sender.axs") clean_pair_sender;
  write_file (path "clean_target.axs") clean_pair_target;
  write_file (path "doomed_doc.xml") doomed_doc

let test_lint_schema () =
  setup_lint ();
  let code, out = run [ "lint"; "-s"; path "messy.axs" ] in
  check_int "errors deny by default: exit 1" 1 code;
  List.iter
    (fun c -> check (c ^ " reported") true (contains out c))
    [ "AXM002"; "AXM003"; "AXM010"; "AXM011"; "AXM012" ];
  check "position rendered" true (contains out "messy.axs:9:");
  check "summary line" true (contains out "error(s)");
  let code, out = run [ "lint"; "-s"; path "noroot.axs" ] in
  check_int "hints alone pass: exit 0" 0 code;
  check "missing root hinted" true (contains out "AXM014");
  (* a quiet schema under the strictest threshold *)
  let code, out = run [ "lint"; "--deny"; "hint"; "-s"; path "clean_sender.axs" ] in
  check_int "clean schema: exit 0" 0 code;
  check "nothing found" true (contains out "0 error(s), 0 warning(s), 0 hint(s)")

let test_lint_contract_json () =
  setup_lint ();
  let code, out =
    run [ "lint"; "--format"; "json"; "-f"; path "doomed_sender.axs";
          "-t"; path "doomed_target.axs"; path "doomed_doc.xml" ]
  in
  check_int "doomed pair: exit 1" 1 code;
  (match Jsonv.explain out with
   | None -> ()
   | Some why -> Alcotest.failf "lint JSON does not parse: %s" why);
  (* contract, schema and document level findings, all in one report *)
  List.iter
    (fun c -> check (c ^ " reported") true (contains out c))
    [ "AXM012"; "AXM020"; "AXM021"; "AXM022"; "AXM023"; "AXM030"; "AXM031" ];
  check "summary object" true (contains out "\"summary\"");
  check "files attributed" true (contains out (path "doomed_doc.xml"))

let test_lint_deny_thresholds () =
  setup_lint ();
  (* identical schemas: nothing at all, even at the hint threshold *)
  let code, _ =
    run [ "lint"; "--deny"; "hint"; "-f"; path "clean_sender.axs";
          "-t"; path "clean_sender.axs" ]
  in
  check_int "identical pair: exit 0" 0 code;
  (* dropping F from the target content leaves one AXM022 hint: visible
     at --deny hint, ignored at --deny warning *)
  let code, out =
    run [ "lint"; "-f"; path "clean_sender.axs"; "-t"; path "clean_target.axs" ]
  in
  check_int "hints don't deny by default: exit 0" 0 code;
  check "materialize hint" true (contains out "AXM022");
  let code, _ =
    run [ "lint"; "--deny"; "warning"; "-f"; path "clean_sender.axs";
          "-t"; path "clean_target.axs" ]
  in
  check_int "deny warning ignores hints: exit 0" 0 code;
  let code, _ =
    run [ "lint"; "--deny"; "hint"; "-f"; path "clean_sender.axs";
          "-t"; path "clean_target.axs" ]
  in
  check_int "deny hint: exit 1" 1 code;
  (* bad usage *)
  let code, _ = run [ "lint"; "-s"; path "messy.axs"; path "doomed_doc.xml" ] in
  check_int "docs with -s: exit 2" 2 code;
  let code, _ = run [ "lint" ] in
  check_int "no schemas: exit 2" 2 code

(* --- schema evolution: diff / migrate / compat --format json ------- *)

(* Mirrors the checked-in newspaper example: v2 narrows newspaper
   (at least one exhibit), widens exhibit (embedded Get_Date survives)
   and flips Get_Date's invocability. *)
let evo_v1_schema = {|
root newspaper
element newspaper = title.date.temp.exhibit*
element title = #data
element date = #data
element temp = #data
element exhibit = title.date
|}

let evo_v2_schema = {|
root newspaper
element newspaper = title.date.temp.exhibit.exhibit*
element title = #data
element date = #data
element temp = #data
element exhibit = title.(Get_Date | date)
noninvocable function Get_Date : title -> date
|}

let evo_sender_schema = {|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
element title = #data
element date = #data
element temp = #data
element exhibit = title.(Get_Date | date)
function Get_Temp : #data -> temp
function Get_Date : title -> date
function TimeOut : #data -> exhibit*
|}

let evo_sun_xml = {|<newspaper xmlns:int="http://www.activexml.com/ns/int">
  <title>The Sun</title><date>04/10/2002</date>
  <int:fun methodName="Get_Temp"><int:params><int:param>Paris</int:param></int:params></int:fun>
  <int:fun methodName="TimeOut"><int:params><int:param>exhibits</int:param></int:params></int:fun>
</newspaper>
|}

let evo_tribune_xml = {|<newspaper xmlns:int="http://www.activexml.com/ns/int">
  <title>The Tribune</title><date>06/10/2002</date>
  <int:fun methodName="Get_Temp"><int:params><int:param>Paris</int:param></int:params></int:fun>
  <exhibit><title>Sculpture</title><date>20/10/2002</date></exhibit>
</newspaper>
|}

let evo_gazette_xml = {|<newspaper xmlns:int="http://www.activexml.com/ns/int">
  <title>The Gazette</title><date>07/10/2002</date><temp>15C</temp>
</newspaper>
|}

let setup_evolution () =
  write_file (path "evo_v1.axs") evo_v1_schema;
  write_file (path "evo_v2.axs") evo_v2_schema;
  write_file (path "evo_sender.axs") evo_sender_schema;
  write_file (path "evo_sun.xml") evo_sun_xml;
  write_file (path "evo_tribune.xml") evo_tribune_xml;
  write_file (path "evo_gazette.xml") evo_gazette_xml

let test_diff_cli () =
  setup_evolution ();
  let code, out =
    run [ "diff"; "-f"; path "evo_v1.axs"; "-t"; path "evo_v2.axs" ]
  in
  check_int "warnings alone: exit 0" 0 code;
  (* the planted changes, with stable codes and file:line:col *)
  List.iter
    (fun c -> check (c ^ " reported") true (contains out c))
    [ "AXM040"; "AXM041"; "AXM043" ];
  check "narrowing located at newspaper's declaration" true
    (contains out (path "evo_v2.axs" ^ ":3:"));
  check "widening located at exhibit's declaration" true
    (contains out (path "evo_v2.axs" ^ ":7:"));
  check "narrowing classified" true (contains out "narrowed");
  check "lost word named" true (contains out "title.date.temp");
  let code, _ =
    run [ "diff"; "--deny"; "warning"; "-f"; path "evo_v1.axs";
          "-t"; path "evo_v2.axs" ]
  in
  check_int "deny warning: exit 1" 1 code;
  (* an unchanged schema diffs clean under the strictest threshold *)
  let code, _ =
    run [ "diff"; "--deny"; "hint"; "-f"; path "evo_v1.axs";
          "-t"; path "evo_v1.axs" ]
  in
  check_int "identity: exit 0" 0 code;
  (* the invocability flip against the sender's declaration *)
  let _, out =
    run [ "diff"; "-f"; path "evo_sender.axs"; "-t"; path "evo_v2.axs" ]
  in
  check "AXM044 reported" true (contains out "AXM044")

let test_diff_cli_json () =
  setup_evolution ();
  let code, out =
    run [ "diff"; "--format"; "json"; "-f"; path "evo_v1.axs";
          "-t"; path "evo_v2.axs" ]
  in
  check_int "exit 0" 0 code;
  (match Jsonv.explain out with
   | None -> ()
   | Some why -> Alcotest.failf "diff JSON does not parse: %s" why);
  List.iter
    (fun needle -> check (needle ^ " present") true (contains out needle))
    [ {|"command":"diff"|}; {|"change":"narrowed"|}; {|"change":"widened"|};
      {|"new_calls":["Get_Date"]|}; {|"witness":"title.date.temp"|};
      {|"verdict":"possible"|}; {|"code":"AXM040"|}; {|"summary"|} ]

let test_migrate_cli () =
  setup_evolution ();
  let code, out =
    run [ "migrate"; "-f"; path "evo_sender.axs"; "-t"; path "evo_v2.axs";
          path "evo_sun.xml"; path "evo_tribune.xml"; path "evo_gazette.xml" ]
  in
  check_int "doomed corpus: exit 1" 1 code;
  (* each document gets its advisory, with the exact calls named *)
  check "sun is possible-only" true (contains out "possible");
  check "sun names Get_Temp" true (contains out "Get_Temp (at /2)");
  check "sun names TimeOut" true (contains out "TimeOut (at /3)");
  check "tribune materializes" true (contains out "materialize");
  check "gazette is doomed" true (contains out "DOOMED");
  check "verdict line" true (contains out "NOT MIGRATABLE");
  (* a corpus of safe documents migrates: exit by advisory *)
  let code, out =
    run [ "migrate"; "-f"; path "evo_sender.axs"; "-t"; path "evo_v2.axs";
          path "evo_tribune.xml" ]
  in
  check_int "clean corpus: exit 0" 0 code;
  check "migratable" true (contains out "MIGRATABLE")

let test_migrate_cli_json () =
  setup_evolution ();
  let code, out =
    run [ "migrate"; "--format"; "json"; "-f"; path "evo_sender.axs";
          "-t"; path "evo_v2.axs";
          path "evo_sun.xml"; path "evo_tribune.xml"; path "evo_gazette.xml" ]
  in
  check_int "exit 1" 1 code;
  (match Jsonv.explain out with
   | None -> ()
   | Some why -> Alcotest.failf "migrate JSON does not parse: %s" why);
  List.iter
    (fun needle -> check (needle ^ " present") true (contains out needle))
    [ {|"command":"migrate"|}; {|"advisory":"possible"|};
      {|"advisory":"materialize"|}; {|"advisory":"doomed"|};
      {|"migratable":false|}; {|"code":"AXM042"|}; {|"summary"|} ]

let test_compat_json () =
  setup_evolution ();
  setup ();
  let code, out =
    run [ "compat"; "--format"; "json"; "-k"; "2"; "-f"; path "sender.axs";
          "-t"; path "exchange.axs" ]
  in
  check_int "compatible pair: exit 0" 0 code;
  (match Jsonv.explain out with
   | None -> ()
   | Some why -> Alcotest.failf "compat JSON does not parse: %s" why);
  check "command tagged" true (contains out {|"command":"compat"|});
  check "compatible" true (contains out {|"compatible":true|});
  check "depth recorded" true (contains out {|"k":2|});
  (* the evolved pair is not whole-schema compatible *)
  let code, out =
    run [ "compat"; "--format"; "json"; "-f"; path "evo_sender.axs";
          "-t"; path "evo_v2.axs" ]
  in
  check_int "evolved pair: exit 1" 1 code;
  check "incompatible" true (contains out {|"compatible":false|})

(* Error paths under --format json: stdout must still carry exactly one
   valid envelope (the error as an AXM000 diagnostic), the human
   message goes to stderr, and the exit code is 2 per LINTING.md. *)
let test_json_error_envelopes () =
  setup ();
  write_file (path "broken.axs") "element = nonsense";
  let check_error_envelope label args =
    let code, stdout, stderr = run_split args in
    check_int (label ^ ": exit 2") 2 code;
    check_json_envelope label stdout;
    check (label ^ ": AXM000 diagnostic") true (contains stdout "AXM000");
    check (label ^ ": message on stderr") true (contains stderr "error:")
  in
  check_error_envelope "diff"
    [ "diff"; "--format"; "json"; "-f"; path "broken.axs";
      "-t"; path "exchange.axs" ];
  check_error_envelope "migrate"
    [ "migrate"; "--format"; "json"; "-f"; path "broken.axs";
      "-t"; path "exchange.axs"; path "doc.xml" ];
  check_error_envelope "lint"
    [ "lint"; "--format"; "json"; "-s"; path "broken.axs" ];
  write_file (path "broken.xml") "<a><b></a>";
  check_error_envelope "batch"
    [ "batch"; "--format"; "json"; "-f"; path "sender.axs";
      "-t"; path "exchange.axs"; path "broken.xml" ]

let test_batch_json () =
  setup ();
  let code, stdout, stderr =
    run_split [ "batch"; "--format"; "json"; "-f"; path "sender.axs";
                "-t"; path "exchange.axs"; path "doc.xml"; path "doc.xml" ]
  in
  check_int "exit 0" 0 code;
  check_json_envelope "batch ok" stdout;
  check "outcomes present" true (contains stdout "\"outcomes\"");
  check "action recorded" true (contains stdout {|"action":"rewritten"|});
  check "stats embedded" true (contains stdout "\"docs\": 2");
  check "outcome lines on stderr" true (contains stderr "rewritten");
  (* an enforcement failure becomes an AXM033 diagnostic and exit 1 *)
  let code, stdout, _ =
    run_split [ "batch"; "--format"; "json"; "-f"; path "sender.axs";
                "-t"; path "strict.axs"; path "doc.xml" ]
  in
  check_int "rejection: exit 1" 1 code;
  check_json_envelope "batch rejected" stdout;
  check "AXM033 diagnostic" true (contains stdout "AXM033");
  check "failed outcome" true (contains stdout {|"ok":false|})

let test_bad_inputs () =
  setup ();
  write_file (path "broken.axs") "element = nonsense";
  let code, out = run [ "validate"; "-s"; path "broken.axs"; path "doc.xml" ] in
  check_int "exit 2" 2 code;
  check "error message" true (contains out "error");
  write_file (path "broken.xml") "<a><b></a>";
  let code, _ = run [ "validate"; "-s"; path "sender.axs"; path "broken.xml" ] in
  check_int "bad xml: exit 2" 2 code;
  let code, _ = run [ "validate"; "-s"; path "sender.axs"; "/nonexistent.xml" ] in
  check "missing file fails" true (code <> 0)

(* A very short spawned soak: too brief for the verdict to be
   meaningful (the breaker cooldown outlives the recovery phase), so we
   assert the harness mechanics — exit code 0/1, a parseable
   BENCH_SOAK.json with the documented fields — not the verdict. The
   @ci alias runs the full --smoke soak with a passing verdict. *)
let test_soak_shape () =
  setup ();
  let json_file = path "soak.json" in
  let code, out =
    run [ "soak"; "--spawn"; "-f"; path "sender.axs"; "-t"; path "exchange.axs";
          "-k"; "2"; "--duration"; "2.4"; "--window"; "0.4"; "--workers"; "1";
          "-o"; json_file ]
  in
  check "exit 0 or 1 (verdict), never a usage/transport error" true
    (code = 0 || code = 1);
  check "printed per-window lines" true (contains out "steady");
  check "printed the verdict" true (contains out "soak ");
  let json = read_file json_file in
  (match Jsonv.explain json with
   | None -> ()
   | Some why -> Alcotest.failf "BENCH_SOAK.json does not parse: %s" why);
  List.iter
    (fun key -> check (key ^ " present") true (contains json key))
    [ "\"schema_version\""; "\"seed\""; "\"windows\""; "\"phases\"";
      "\"verdict\""; "\"resilience\""; "\"heap_high_water_words\"";
      "\"p50\""; "\"p99\""; "\"p999\""; "\"breakers\"" ]

let () =
  Alcotest.run "cli"
    [ ("cli",
       [ Alcotest.test_case "validate ok" `Quick test_validate_ok;
         Alcotest.test_case "validate fails" `Quick test_validate_fails;
         Alcotest.test_case "check" `Quick test_check_safe;
         Alcotest.test_case "rewrite" `Quick test_rewrite;
         Alcotest.test_case "rewrite rejected" `Quick test_rewrite_rejected;
         Alcotest.test_case "batch" `Quick test_batch;
         Alcotest.test_case "batch fault tolerance" `Quick test_batch_fault_tolerance;
         Alcotest.test_case "batch stats json shape" `Quick test_batch_stats_json_shape;
         Alcotest.test_case "batch metrics out" `Quick test_batch_metrics_out;
         Alcotest.test_case "trace" `Quick test_trace;
         Alcotest.test_case "compat" `Quick test_compat;
         Alcotest.test_case "lint schema" `Quick test_lint_schema;
         Alcotest.test_case "lint contract json" `Quick test_lint_contract_json;
         Alcotest.test_case "lint deny thresholds" `Quick test_lint_deny_thresholds;
         Alcotest.test_case "diff" `Quick test_diff_cli;
         Alcotest.test_case "diff json" `Quick test_diff_cli_json;
         Alcotest.test_case "migrate" `Quick test_migrate_cli;
         Alcotest.test_case "migrate json" `Quick test_migrate_cli_json;
         Alcotest.test_case "compat json" `Quick test_compat_json;
         Alcotest.test_case "schema convert" `Quick test_schema_convert;
         Alcotest.test_case "soak shape" `Quick test_soak_shape;
         Alcotest.test_case "json error envelopes" `Quick test_json_error_envelopes;
         Alcotest.test_case "batch json" `Quick test_batch_json;
         Alcotest.test_case "bad inputs" `Quick test_bad_inputs
       ])
    ]
