(* Tests for the networked peer (lib/net): wire codec round-trips,
   framing, the transport-agnostic endpoint, the socket server under
   concurrency and abuse, the persistent repository, and the HTTP
   front. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module D = Axml_core.Document
module Rewriter = Axml_core.Rewriter
module Service = Axml_services.Service
module Registry = Axml_services.Registry
module Oracle = Axml_services.Oracle
module Peer = Axml_peer.Peer
module Enforcement = Axml_peer.Enforcement
module Syntax = Axml_peer.Syntax
module Xml_schema_int = Axml_peer.Xml_schema_int
module Wire = Axml_net.Wire
module Endpoint = Axml_net.Endpoint
module Server = Axml_net.Server
module Client = Axml_net.Client
module Repo = Axml_net.Repo

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Alcotest.failf "schema parse error: %s" e

let common = {|
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.date
|}

let schema_sender =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.(Get_Temp | temp)
function Get_Temp : city -> temp
|} ^ common)

let schema_exchange_text =
  {|
root newspaper
element newspaper = title.date.temp
function Get_Temp : city -> temp
|}
  ^ common

let schema_exchange = parse_schema schema_exchange_text

let fig2a title =
  D.elem "newspaper"
    [ D.elem "title" [ D.data title ];
      D.elem "date" [ D.data "04/10/2002" ];
      D.call "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ] ]

let register_get_temp peer =
  Registry.register (Peer.registry peer)
    (Service.make ~input:(R.sym (Schema.A_label "city"))
       ~output:(R.sym (Schema.A_label "temp")) "Get_Temp"
       (Oracle.constant [ D.elem "temp" [ D.data "15" ] ]))

let make_receiver () = Peer.create ~name:"reader" ~schema:schema_exchange ()

let make_sender () =
  let p = Peer.create ~name:"newspaper.com" ~schema:schema_sender () in
  register_get_temp p;
  p

let with_server ?config ?repo peer f =
  let server = Server.start ?config (Endpoint.create ?repo peer) in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let with_client server f =
  let client = Client.connect ~port:(Server.port server) () in
  Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "axml-test-net-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Filename.quote_command "rm" [ "-rf"; dir ])))
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Wire codec: property-tested round-trips                              *)
(* ------------------------------------------------------------------ *)

let gen_string = QCheck.Gen.(string_size ~gen:char (int_bound 64))

let gen_request : Wire.request QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [ return Wire.Ping;
      map2 (fun s k -> Wire.Open_exchange { schema_xml = s; k }) gen_string
        (int_bound 7);
      map3
        (fun exchange as_name doc_xml -> Wire.Exchange { exchange; as_name; doc_xml })
        (int_bound 0xffff) gen_string gen_string;
      map (fun s -> Wire.Invoke { envelope = s }) gen_string;
      map (fun s -> Wire.Get_wsdl { service = s }) gen_string;
      return Wire.List_services;
      return Wire.List_documents;
      map (fun s -> Wire.Get_document { name = s }) gen_string;
      map (fun s -> Wire.Lint_exchange { schema_xml = s }) gen_string;
      map
        (fun b -> Wire.Get_metrics { format = (if b then Wire.Prometheus else Wire.Json) })
        bool ]

let gen_refusal : Wire.refusal QCheck.Gen.t =
  let open QCheck.Gen in
  map2
    (fun at context -> { Wire.at; context })
    (list_size (int_bound 6) (int_bound 0xffff))
    gen_string

let gen_response : Wire.response QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [ map2 (fun peer protocol -> Wire.Pong { peer; protocol }) gen_string
        (int_bound 0xff);
      map2 (fun id k -> Wire.Exchange_opened { id; k }) (int_bound 0xffff)
        (int_bound 7);
      map2 (fun as_name wire_bytes -> Wire.Accepted { as_name; wire_bytes })
        gen_string (int_bound 0xffffff);
      map (fun refusals -> Wire.Refused { refusals })
        (list_size (int_bound 5) gen_refusal);
      map (fun s -> Wire.Envelope { envelope = s }) gen_string;
      map (fun s -> Wire.Wsdl { wsdl = s }) gen_string;
      map (fun names -> Wire.Names { names }) (list_size (int_bound 8) gen_string);
      map (fun s -> Wire.Document { doc_xml = s }) gen_string;
      map (fun s -> Wire.Report { json = s }) gen_string;
      map2
        (fun b body ->
          Wire.Metrics
            { format = (if b then Wire.Prometheus else Wire.Json); body })
        bool gen_string;
      map2 (fun code reason -> Wire.Error { code; reason }) gen_string gen_string ]

let prop_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: request decode ∘ encode = id"
    (QCheck.make ~print:(Fmt.str "%a" Wire.pp_request) gen_request)
    (fun req -> Wire.decode_request (Wire.encode_request req) = req)

let prop_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"wire: response decode ∘ encode = id"
    (QCheck.make ~print:(Fmt.str "%a" Wire.pp_response) gen_response)
    (fun resp -> Wire.decode_response (Wire.encode_response resp) = resp)

let test_wire_rejects_garbage () =
  (try
     ignore (Wire.decode_request "");
     Alcotest.fail "empty payload decoded"
   with Wire.Wire_error _ -> ());
  (try
     ignore (Wire.decode_request "\xfe");
     Alcotest.fail "unknown tag decoded"
   with Wire.Wire_error _ -> ());
  (* trailing garbage after a valid message must be rejected *)
  try
    ignore (Wire.decode_request (Wire.encode_request Wire.Ping ^ "x"));
    Alcotest.fail "trailing garbage accepted"
  with Wire.Wire_error _ -> ()

let test_wire_framing () =
  let path = Filename.temp_file "axml" ".frames" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out_bin path in
  Wire.write_frame oc "hello";
  Wire.write_frame oc "";
  close_out oc;
  let ic = open_in_bin path in
  check "frame 1" true (Wire.read_frame ic = Some "hello");
  check "frame 2" true (Wire.read_frame ic = Some "");
  check "clean EOF" true (Wire.read_frame ic = None);
  close_in ic;
  (* torn header *)
  let oc = open_out_bin path in
  output_string oc "AXF1\x00\x00";
  close_out oc;
  let ic = open_in_bin path in
  (try
     ignore (Wire.read_frame ic);
     Alcotest.fail "torn header accepted"
   with Wire.Wire_error _ -> ());
  close_in ic;
  (* bad magic *)
  let oc = open_out_bin path in
  output_string oc "HTTP/1.1 200\r\n";
  close_out oc;
  let ic = open_in_bin path in
  (try
     ignore (Wire.read_frame ic);
     Alcotest.fail "bad magic accepted"
   with Wire.Wire_error _ -> ());
  close_in ic;
  (* declared length over the cap *)
  let oc = open_out_bin path in
  output_string oc "AXF1\xff\xff\xff\xff";
  close_out oc;
  let ic = open_in_bin path in
  (try
     ignore (Wire.read_frame ~max_bytes:1024 ic);
     Alcotest.fail "oversized frame accepted"
   with Wire.Wire_error _ -> ());
  close_in ic

(* ------------------------------------------------------------------ *)
(* Endpoint (in-process transport)                                      *)
(* ------------------------------------------------------------------ *)

let open_exchange ?(k = 1) handle schema =
  match
    handle (Wire.Open_exchange { schema_xml = Xml_schema_int.to_string schema; k })
  with
  | Wire.Exchange_opened { id; k = _ } -> id
  | r -> Alcotest.failf "open-exchange: %a" Wire.pp_response r

let test_endpoint_basics () =
  let receiver = make_receiver () in
  let handle = Endpoint.handle (Endpoint.create receiver) in
  (match handle Wire.Ping with
   | Wire.Pong { peer = "reader"; protocol } ->
     check_int "protocol" Wire.protocol_version protocol
   | r -> Alcotest.failf "ping: %a" Wire.pp_response r);
  let id = open_exchange handle schema_exchange in
  let good =
    Syntax.to_xml_string ~pretty:false
      (D.elem "newspaper"
         [ D.elem "title" [ D.data "t" ]; D.elem "date" [ D.data "d" ];
           D.elem "temp" [ D.data "15" ] ])
  in
  (match handle (Wire.Exchange { exchange = id; as_name = "front"; doc_xml = good }) with
   | Wire.Accepted { as_name = "front"; wire_bytes } ->
     check_int "wire bytes" (String.length good) wire_bytes
   | r -> Alcotest.failf "exchange: %a" Wire.pp_response r);
  check "stored" true (Peer.documents receiver = [ "front" ]);
  (match handle (Wire.Get_document { name = "front" }) with
   | Wire.Document { doc_xml } -> check_string "fetch round-trip" good doc_xml
   | r -> Alcotest.failf "get-document: %a" Wire.pp_response r);
  (match handle (Wire.Get_document { name = "nope" }) with
   | Wire.Error { code = "unknown-document"; _ } -> ()
   | r -> Alcotest.failf "unknown document: %a" Wire.pp_response r);
  (match handle (Wire.Exchange { exchange = 999; as_name = "x"; doc_xml = good }) with
   | Wire.Error { code = "unknown-exchange"; _ } -> ()
   | r -> Alcotest.failf "unknown exchange: %a" Wire.pp_response r);
  (* a violating document is refused with located violations *)
  let bad = Syntax.to_xml_string (D.elem "newspaper" [ D.elem "title" [] ]) in
  (match handle (Wire.Exchange { exchange = id; as_name = "bad"; doc_xml = bad }) with
   | Wire.Refused { refusals } -> check "has refusals" true (refusals <> [])
   | r -> Alcotest.failf "bad exchange: %a" Wire.pp_response r);
  check "refused not stored" false (List.mem "bad" (Peer.documents receiver));
  (* malformed schema is a protocol error, not a crash *)
  (match handle (Wire.Open_exchange { schema_xml = "<not-a-schema"; k = 1 }) with
   | Wire.Error { code = "protocol"; _ } -> ()
   | r -> Alcotest.failf "bad schema: %a" Wire.pp_response r);
  (match handle (Wire.Get_metrics { format = Wire.Prometheus }) with
   | Wire.Metrics { body; _ } ->
     check "prometheus body" true (String.length body > 0)
   | r -> Alcotest.failf "metrics: %a" Wire.pp_response r);
  (match handle (Wire.Lint_exchange { schema_xml = Xml_schema_int.to_string schema_exchange }) with
   | Wire.Report { json } -> check "lint json" true (String.length json >= 2)
   | r -> Alcotest.failf "lint: %a" Wire.pp_response r)

let test_endpoint_services () =
  let provider = Peer.create ~name:"timeout.com" ~schema:schema_exchange () in
  Peer.provide provider ~name:"Get_Temp" ~input:(R.sym (Schema.A_label "city"))
    ~output:(R.sym (Schema.A_label "temp"))
    (Peer.Const [ D.elem "temp" [ D.data "15" ] ]);
  let handle = Endpoint.handle (Endpoint.create provider) in
  (match handle Wire.List_services with
   | Wire.Names { names } -> check "provides Get_Temp" true (names = [ "Get_Temp" ])
   | r -> Alcotest.failf "list-services: %a" Wire.pp_response r);
  (match handle (Wire.Get_wsdl { service = "Get_Temp" }) with
   | Wire.Wsdl { wsdl } ->
     let f, _ = Axml_peer.Wsdl.parse_string wsdl in
     check_string "wsdl function" "Get_Temp" f.Schema.f_name
   | r -> Alcotest.failf "wsdl: %a" Wire.pp_response r);
  (match handle (Wire.Get_wsdl { service = "Nope" }) with
   | Wire.Error { code = "unknown-service"; _ } -> ()
   | r -> Alcotest.failf "unknown service: %a" Wire.pp_response r);
  let envelope =
    Axml_peer.Soap.encode
      (Axml_peer.Soap.Request
         { method_name = "Get_Temp";
           params = [ D.elem "city" [ D.data "Paris" ] ] })
  in
  match handle (Wire.Invoke { envelope }) with
  | Wire.Envelope { envelope } ->
    (match Axml_peer.Soap.decode envelope with
     | Axml_peer.Soap.Response { result = [ D.Elem { label = "temp"; _ } ]; _ } -> ()
     | _ -> Alcotest.fail "unexpected invoke result")
  | r -> Alcotest.failf "invoke: %a" Wire.pp_response r

(* Sender and receiver must provably agree on the rewriting depth: the
   receiver refuses a mismatched Open_exchange with a stable error
   code, before even parsing the schema. *)
let test_endpoint_k_mismatch () =
  let receiver = make_receiver () in
  let config = { Peer.default_config with Peer.k = 2 } in
  let handle = Endpoint.handle (Endpoint.create ~config receiver) in
  let agreement = Xml_schema_int.to_string schema_exchange in
  (match handle (Wire.Open_exchange { schema_xml = agreement; k = 2 }) with
   | Wire.Exchange_opened { k = 2; _ } -> ()
   | r -> Alcotest.failf "open at matched k: %a" Wire.pp_response r);
  (match handle (Wire.Open_exchange { schema_xml = agreement; k = 1 }) with
   | Wire.Error { code = "k-mismatch"; _ } -> ()
   | r -> Alcotest.failf "open at k=1: %a" Wire.pp_response r);
  (* the depth check precedes schema parsing: a garbage schema at the
     wrong depth still reports the mismatch, not a parse error *)
  match handle (Wire.Open_exchange { schema_xml = "<not-a-schema"; k = 7 }) with
  | Wire.Error { code = "k-mismatch"; _ } -> ()
  | r -> Alcotest.failf "mismatch before parse: %a" Wire.pp_response r

(* The client's agreement cache must key on structural schema equality
   (a re-parsed copy is the same agreement), and a stale agreement —
   the server lost its exchange table — must be re-opened
   transparently, once. *)
let test_client_agreement_cache () =
  let receiver = make_receiver () in
  let endpoint = Endpoint.create receiver in
  let server = Server.start endpoint in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  with_client server @@ fun client ->
  let sender = make_sender () in
  let send ~exchange as_name =
    match Client.send client ~sender ~exchange ~as_name (fig2a as_name) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "%s: %a" as_name Enforcement.pp_error e
  in
  send ~exchange:schema_exchange "one";
  check_int "one exchange opened" 1 (Endpoint.open_exchanges endpoint);
  (* a structurally equal but physically distinct schema — the caller
     re-parsing the same .axs text for every send — re-uses it *)
  let copy = parse_schema schema_exchange_text in
  check "distinct value, equal structure" true
    (copy != schema_exchange && copy = schema_exchange);
  send ~exchange:copy "two";
  check_int "structural equality: still one exchange" 1
    (Endpoint.open_exchanges endpoint);
  (* server forgot the exchange (restart): the cached id is stale, the
     client re-opens once and the send still succeeds *)
  Endpoint.reset_exchanges endpoint;
  check_int "server lost the table" 0 (Endpoint.open_exchanges endpoint);
  send ~exchange:schema_exchange "three";
  check_int "transparently re-opened" 1 (Endpoint.open_exchanges endpoint);
  check "all three stored" true
    (List.sort compare (Peer.documents receiver) = [ "one"; "three"; "two" ])

(* ------------------------------------------------------------------ *)
(* Server: concurrency, parity, abuse                                   *)
(* ------------------------------------------------------------------ *)

(* N client threads stream exchanges concurrently; every response must
   match its request (the echoed [as_name] proves no cross-talk), and
   every verdict must equal the in-process reference. *)
let test_server_concurrent_clients () =
  let receiver = make_receiver () in
  with_server receiver @@ fun server ->
  (* in-process reference: same sender construction, direct receive *)
  let reference = make_receiver () in
  let threads = 4 and per_thread = 12 in
  let failures = Atomic.make 0 in
  let note_failure fmt =
    Fmt.kstr (fun m -> Atomic.incr failures; Fmt.epr "%s@." m) fmt
  in
  let worker tid =
    let sender = make_sender () in
    let twin = make_sender () in
    with_client server @@ fun client ->
    for i = 1 to per_thread do
      let as_name = Fmt.str "doc-%d-%d" tid i in
      let doc = fig2a as_name in
      match
        ( Client.send client ~sender ~exchange:schema_exchange ~as_name doc,
          Peer.send twin ~receiver:reference ~exchange:schema_exchange ~as_name doc )
      with
      | Ok net, Ok r ->
        if not (D.equal net.Peer.sent r.Peer.sent) then
          note_failure "%s: sent documents differ" as_name;
        if net.Peer.wire_bytes <> r.Peer.wire_bytes then
          note_failure "%s: wire bytes differ" as_name
      | Error e, _ | _, Error e ->
        note_failure "%s: failed: %a" as_name Enforcement.pp_error e
    done
  in
  let ts = List.init threads (fun tid -> Thread.create worker tid) in
  List.iter Thread.join ts;
  check_int "no cross-talk or parity failures" 0 (Atomic.get failures);
  check_int "all documents stored" (threads * per_thread)
    (List.length (Peer.documents receiver))

let test_server_killed_client_and_budget () =
  let receiver = make_receiver () in
  with_server receiver @@ fun server ->
  let port = Server.port server in
  (* a client dying mid-frame must not hurt the server *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  ignore (Unix.write_substring fd "AXF1\x00\x00" 0 6);
  Unix.close fd;
  (* a framed but undecodable payload is answered with a protocol error *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let junk = "\xfegarbage" in
  let frame = Buffer.create 16 in
  Buffer.add_string frame Wire.magic;
  List.iter
    (fun shift ->
      Buffer.add_char frame (Char.chr ((String.length junk lsr shift) land 0xff)))
    [ 24; 16; 8; 0 ];
  Buffer.add_string frame junk;
  let bytes = Buffer.contents frame in
  ignore (Unix.write_substring fd bytes 0 (String.length bytes));
  let ic = Unix.in_channel_of_descr fd in
  (match Wire.read_frame ic with
   | Some payload ->
     (match Wire.decode_response payload with
      | Wire.Error { code = "protocol"; _ } -> ()
      | r -> Alcotest.failf "expected protocol error, got %a" Wire.pp_response r)
   | None -> Alcotest.fail "no response to garbage frame");
  Unix.close fd;
  (* the server is still healthy *)
  with_client server @@ fun client ->
  check_string "healthy after abuse" "reader" (fst (Client.ping client))

let test_server_error_budget_closes () =
  let receiver = make_receiver () in
  let config = { Server.default_config with Server.error_budget = 2 } in
  with_server ~config receiver @@ fun server ->
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (* exhaust the budget with undecodable frames *)
  Wire.write_frame oc "\xfe";
  check "first junk answered" true (Wire.read_frame ic <> None);
  Wire.write_frame oc "\xfe";
  check "second junk answered" true (Wire.read_frame ic <> None);
  (* budget exhausted: the connection is closed *)
  (match Wire.write_frame oc "\xfe"; Wire.read_frame ic with
   | None -> ()
   | Some _ -> Alcotest.fail "connection survived an exhausted error budget"
   | exception Wire.Wire_error _ -> ()
   | exception Sys_error _ -> ())

let test_server_admission_control () =
  (* one in-flight slot, held by a gated service call: the second
     request must be refused as "overloaded", never queued *)
  let gate = Semaphore.Binary.make false in
  let entered = Semaphore.Binary.make false in
  let provider = Peer.create ~name:"gated" ~schema:schema_exchange () in
  Peer.provide provider ~name:"Gated" ~input:(R.sym Schema.A_data)
    ~output:(R.sym Schema.A_data)
    (Peer.Compute
       (fun _ ->
         Semaphore.Binary.release entered;
         Semaphore.Binary.acquire gate;
         [ D.data "done" ]));
  let config = { Server.default_config with Server.max_in_flight = 1 } in
  with_server ~config provider @@ fun server ->
  let slow_result = ref None in
  let slow =
    Thread.create
      (fun () ->
        with_client server @@ fun client ->
        slow_result := Some (Client.call client "Gated" [ D.data "x" ]))
      ()
  in
  Semaphore.Binary.acquire entered;
  (* the slot is held; admission control must refuse the next request *)
  (with_client server @@ fun client ->
   match Client.rpc client Wire.Ping with
   | Wire.Error { code = "overloaded"; _ } -> ()
   | r -> Alcotest.failf "expected overloaded, got %a" Wire.pp_response r);
  Semaphore.Binary.release gate;
  Thread.join slow;
  (match !slow_result with
   | Some [ D.Data "done" ] -> ()
   | _ -> Alcotest.fail "gated call did not complete");
  (* the slot is free again *)
  with_client server @@ fun client ->
  check_string "healthy after overload" "gated" (fst (Client.ping client))

let test_server_graceful_stop () =
  let receiver = make_receiver () in
  let server = Server.start (Endpoint.create receiver) in
  let client = Client.connect ~port:(Server.port server) () in
  check_string "served" "reader" (fst (Client.ping client));
  Server.stop server;
  Server.stop server (* idempotent *);
  check_int "no connections survive stop" 0 (Server.connections server);
  (* the socket is gone: requests fail cleanly *)
  (match Client.rpc client Wire.Ping with
   | exception Client.Net_error _ -> ()
   | Wire.Error _ -> ()
   | r -> Alcotest.failf "request served after stop: %a" Wire.pp_response r);
  Client.close client

(* ------------------------------------------------------------------ *)
(* Repository: journal, snapshot, recovery                              *)
(* ------------------------------------------------------------------ *)

let test_repo_journal_recovery () =
  with_temp_dir @@ fun dir ->
  let peer = make_receiver () in
  let repo = Repo.attach ~dir peer in
  let doc name = D.elem "newspaper" [ D.elem "title" [ D.data name ] ] in
  List.iter
    (fun name ->
      Peer.store peer name (doc name);
      Repo.record_store repo name (doc name))
    [ "a"; "b"; "c" ];
  check_int "journal entries" 3 (Repo.journal_entries repo);
  Repo.close repo;
  let reborn = make_receiver () in
  let repo2 = Repo.attach ~dir reborn in
  check_int "recovered" 3 (Repo.recovered repo2);
  check "document intact" true (D.equal (doc "b") (Peer.fetch reborn "b"));
  Repo.close repo2

let test_repo_torn_tail () =
  with_temp_dir @@ fun dir ->
  let peer = make_receiver () in
  let repo = Repo.attach ~dir peer in
  let doc name = D.elem "newspaper" [ D.elem "title" [ D.data name ] ] in
  Repo.record_store repo "intact" (doc "intact");
  Repo.close repo;
  (* simulate a crash mid-append: half a frame at the tail *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644
      (Filename.concat dir "journal.log")
  in
  output_string oc "AXF1\x00\x00\x01";
  close_out oc;
  let reborn = make_receiver () in
  let repo2 = Repo.attach ~dir reborn in
  check_int "intact prefix recovered" 1 (Repo.recovered repo2);
  check "torn tail truncated, journal usable" true
    (D.equal (doc "intact") (Peer.fetch reborn "intact"));
  (* appending after recovery still works *)
  Repo.record_store repo2 "after" (doc "after");
  Repo.close repo2;
  let third = make_receiver () in
  let repo3 = Repo.attach ~dir third in
  check_int "both records recovered" 2 (Repo.recovered repo3);
  Repo.close repo3

let test_repo_compaction () =
  with_temp_dir @@ fun dir ->
  let peer = make_receiver () in
  let repo = Repo.attach ~auto_compact:2 ~dir peer in
  let doc name = D.elem "newspaper" [ D.elem "title" [ D.data name ] ] in
  List.iter
    (fun name ->
      Peer.store peer name (doc name);
      Repo.record_store repo name (doc name))
    [ "a"; "b"; "c" ];
  (* auto-compacted at 2: snapshot exists, journal restarted *)
  check "snapshot manifest written" true
    (Sys.file_exists (Filename.concat dir "snapshot/MANIFEST"));
  check_int "journal restarted after compaction" 1 (Repo.journal_entries repo);
  Repo.close repo;
  let reborn = make_receiver () in
  let repo2 = Repo.attach ~dir reborn in
  check_int "snapshot + journal recovered" 3 (Repo.recovered repo2);
  check "snapshot document intact" true (D.equal (doc "a") (Peer.fetch reborn "a"));
  Repo.close repo2

let test_repo_odd_names () =
  with_temp_dir @@ fun dir ->
  let peer = make_receiver () in
  let repo = Repo.attach ~dir peer in
  let name = "weird/na me%β.xml" in
  let doc = D.elem "newspaper" [ D.elem "title" [ D.data "x" ] ] in
  Peer.store peer name doc;
  Repo.record_store repo name doc;
  Repo.compact repo (* force the snapshot path through encode_name *);
  Repo.close repo;
  let reborn = make_receiver () in
  let repo2 = Repo.attach ~dir reborn in
  check "odd name round-trips" true (D.equal doc (Peer.fetch reborn name));
  Repo.close repo2

(* A damaged snapshot must not take recovery down with it: garbage
   manifest lines and listed-but-missing files are skipped and counted,
   while every intact snapshot document and the journal suffix come
   back. *)
let test_repo_garbage_manifest () =
  with_temp_dir @@ fun dir ->
  let peer = make_receiver () in
  let repo = Repo.attach ~dir peer in
  let doc name = D.elem "newspaper" [ D.elem "title" [ D.data name ] ] in
  List.iter
    (fun name ->
      Peer.store peer name (doc name);
      Repo.record_store repo name (doc name))
    [ "a"; "b" ];
  Repo.compact repo;
  Repo.record_store repo "c" (doc "c");
  Repo.close repo;
  (* damage the manifest: an undecodable line, plus an entry whose
     snapshot file does not exist *)
  let manifest = Filename.concat dir "snapshot/MANIFEST" in
  let oc = open_out_gen [ Open_append ] 0o644 manifest in
  output_string oc "%zzgarbage\nghost\n";
  close_out oc;
  let reborn = make_receiver () in
  let repo2 = Repo.attach ~dir reborn in
  check_int "intact snapshot + journal suffix recovered" 3
    (Repo.recovered repo2);
  check_int "corrupt entries counted" 2 (Repo.skipped repo2);
  check "snapshot doc intact" true (D.equal (doc "a") (Peer.fetch reborn "a"));
  check "journal suffix intact" true (D.equal (doc "c") (Peer.fetch reborn "c"));
  (* the damaged repository stays writable and compactable: the next
     snapshot rewrites a clean manifest *)
  Repo.record_store repo2 "d" (doc "d");
  Peer.store reborn "d" (doc "d");
  Repo.compact repo2;
  Repo.close repo2;
  let third = make_receiver () in
  let repo3 = Repo.attach ~dir third in
  check_int "clean manifest after recompaction" 0 (Repo.skipped repo3);
  check_int "everything recovered" 4 (Repo.recovered repo3);
  Repo.close repo3

(* ------------------------------------------------------------------ *)
(* HTTP front                                                           *)
(* ------------------------------------------------------------------ *)

let test_http_routes () =
  let receiver = make_receiver () in
  with_server receiver @@ fun server ->
  let port = Server.port server in
  let status, body = Client.http ~port ~meth:"GET" ~path:"/health" () in
  check_int "health status" 200 status;
  check_string "health body" "ok\n" body;
  let status, body = Client.http ~port ~meth:"GET" ~path:"/metrics" () in
  check_int "metrics status" 200 status;
  check "metrics body" true (String.length body > 0);
  let status, body = Client.http ~port ~meth:"GET" ~path:"/metrics.json" () in
  check_int "metrics.json status" 200 status;
  check "json body" true (String.length body > 0 && body.[0] = '{');
  let status, _ = Client.http ~port ~meth:"GET" ~path:"/nope" () in
  check_int "404" 404 status;
  let good =
    Syntax.to_xml_string ~pretty:false
      (D.elem "newspaper"
         [ D.elem "title" [ D.data "t" ]; D.elem "date" [ D.data "d" ];
           D.elem "temp" [ D.data "15" ] ])
  in
  let status, _ =
    Client.http ~port ~meth:"POST" ~path:"/exchange?as=posted" ~body:good ()
  in
  check_int "post accepted" 200 status;
  check "stored via HTTP" true (List.mem "posted" (Peer.documents receiver));
  let status, body =
    Client.http ~port ~meth:"POST" ~path:"/exchange"
      ~body:"<newspaper><title>no</title></newspaper>" ()
  in
  check_int "violating post refused" 422 status;
  check "violation reported" true (String.length body > 0);
  let status, _ =
    Client.http ~port ~meth:"POST" ~path:"/exchange" ~body:"<not-xml" ()
  in
  check_int "malformed post refused" 422 status

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest
    [ prop_request_roundtrip; prop_response_roundtrip ]

let () =
  Alcotest.run "net"
    [ ("wire",
       [ Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
         Alcotest.test_case "framing" `Quick test_wire_framing ]);
      ("wire-properties", qcheck);
      ("endpoint",
       [ Alcotest.test_case "documents and metrics" `Quick test_endpoint_basics;
         Alcotest.test_case "services over the wire" `Quick test_endpoint_services;
         Alcotest.test_case "k-mismatch refused" `Quick test_endpoint_k_mismatch;
         Alcotest.test_case "agreement cache and re-open" `Quick
           test_client_agreement_cache ]);
      ("server",
       [ Alcotest.test_case "concurrent clients, verdict parity" `Quick
           test_server_concurrent_clients;
         Alcotest.test_case "killed client and garbage frames" `Quick
           test_server_killed_client_and_budget;
         Alcotest.test_case "error budget closes the connection" `Quick
           test_server_error_budget_closes;
         Alcotest.test_case "admission control refuses, never queues" `Quick
           test_server_admission_control;
         Alcotest.test_case "graceful stop" `Quick test_server_graceful_stop ]);
      ("repo",
       [ Alcotest.test_case "journal recovery" `Quick test_repo_journal_recovery;
         Alcotest.test_case "torn tail" `Quick test_repo_torn_tail;
         Alcotest.test_case "compaction" `Quick test_repo_compaction;
         Alcotest.test_case "odd repository names" `Quick test_repo_odd_names;
         Alcotest.test_case "garbage manifest" `Quick test_repo_garbage_manifest ]);
      ("http", [ Alcotest.test_case "routes" `Quick test_http_routes ]) ]
