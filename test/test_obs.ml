(* Tests for the observability layer (lib/obs): metrics registry
   semantics, exporter formats, the trace ring buffer, and the
   guarantee that attaching a sink never changes enforcement
   outcomes. *)

module Metrics = Axml_obs.Metrics
module Trace = Axml_obs.Trace
module Schema_parser = Axml_schema.Schema_parser
module D = Axml_core.Document
module Generate = Axml_core.Generate
module Enforcement = Axml_peer.Enforcement
module Pipeline = Enforcement.Pipeline

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------------- counters and gauges ---------------- *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "test_total" in
  check_int "starts at 0" 0 (Metrics.counter_value c);
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  check_int "1 + 4" 5 (Metrics.counter_value c);
  Metrics.inc ~by:0 c;
  check_int "by:0 is a no-op" 5 (Metrics.counter_value c);
  (* same name + labels = same underlying child *)
  let c' = Metrics.counter ~registry:r "test_total" in
  Metrics.inc c';
  check_int "idempotent registration" 6 (Metrics.counter_value c);
  check "negative increment rejected" true
    (match Metrics.inc ~by:(-1) c with
     | () -> false
     | exception Invalid_argument _ -> true)

let test_labels_canonical () =
  let r = Metrics.create () in
  let a = Metrics.counter ~registry:r ~labels:[ ("x", "1"); ("y", "2") ] "lbl_total" in
  let b = Metrics.counter ~registry:r ~labels:[ ("y", "2"); ("x", "1") ] "lbl_total" in
  Metrics.inc a;
  Metrics.inc b;
  check_int "label order does not split children" 2 (Metrics.counter_value a)

let test_type_conflict () =
  let r = Metrics.create () in
  let _ = Metrics.counter ~registry:r "conflict_metric" in
  check "re-registering as a gauge raises" true
    (match Metrics.gauge ~registry:r "conflict_metric" with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_gauge () =
  let r = Metrics.create () in
  let g = Metrics.gauge ~registry:r "g" in
  Metrics.set g 2.5;
  Metrics.add g (-1.0);
  Alcotest.(check (float 1e-9)) "set then add" 1.5 (Metrics.gauge_value g)

(* ---------------- histograms ---------------- *)

let test_histogram_le_semantics () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~buckets:[ 1.0; 2.0; 5.0 ] "h_seconds" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 6.0 ];
  let s = Metrics.histogram_snapshot h in
  check_int "count" 5 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 11.0 s.Metrics.sum;
  (* cumulative buckets, le semantics: a value equal to a bound lands
     in that bound's bucket *)
  (match s.Metrics.buckets with
   | [ (b1, c1); (b2, c2); (b3, c3) ] ->
     Alcotest.(check (float 0.)) "bound 1" 1.0 b1;
     check_int "le 1.0 (0.5 and 1.0)" 2 c1;
     Alcotest.(check (float 0.)) "bound 2" 2.0 b2;
     check_int "le 2.0 (+ 1.5 and 2.0)" 4 c2;
     Alcotest.(check (float 0.)) "bound 5" 5.0 b3;
     check_int "le 5.0 (6.0 overflows to +Inf)" 4 c3
   | bs -> Alcotest.failf "expected 3 buckets, got %d" (List.length bs))

let test_histogram_time_uses_clock () =
  let r = Metrics.create () in
  let now = ref 10.0 in
  Metrics.set_clock r (fun () -> !now);
  let h = Metrics.histogram ~registry:r ~buckets:[ 1.0 ] "timed_seconds" in
  let v = Metrics.time h (fun () -> now := !now +. 0.25; 42) in
  check_int "returns the result" 42 v;
  let s = Metrics.histogram_snapshot h in
  check_int "one observation" 1 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "observed the clock delta" 0.25 s.Metrics.sum

let test_histogram_window_diff () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~buckets:[ 1.0; 2.0 ] "w_seconds" in
  List.iter (Metrics.observe h) [ 0.5; 1.5 ];
  let before = Metrics.histogram_snapshot h in
  List.iter (Metrics.observe h) [ 0.5; 0.5; 5.0 ];
  let after = Metrics.histogram_snapshot h in
  let w = Metrics.diff_histogram_snapshot ~before after in
  check_int "window count" 3 w.Metrics.count;
  Alcotest.(check (float 1e-9)) "window sum" 6.0 w.Metrics.sum;
  (match w.Metrics.buckets with
   | [ (_, c1); (_, c2) ] ->
     check_int "le 1.0 in window" 2 c1;
     check_int "le 2.0 in window" 2 c2
   | _ -> Alcotest.fail "bucket layout preserved");
  (* same-snapshot diff is the empty window *)
  let z = Metrics.diff_histogram_snapshot ~before:after after in
  check_int "empty window" 0 z.Metrics.count;
  (* layouts must match *)
  let other = Metrics.histogram ~registry:r ~buckets:[ 9.0 ] "other_seconds" in
  check "different layouts rejected" true
    (match
       Metrics.diff_histogram_snapshot
         ~before:(Metrics.histogram_snapshot other) after
     with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_snapshot_quantile () =
  let r = Metrics.create () in
  let h =
    Metrics.histogram ~registry:r ~buckets:[ 0.1; 0.2; 0.4; 1.0 ] "q_seconds"
  in
  (* 100 observations spread evenly across the 0.1 and 0.2 buckets *)
  for _ = 1 to 50 do Metrics.observe h 0.05 done;
  for _ = 1 to 50 do Metrics.observe h 0.15 done;
  let s = Metrics.histogram_snapshot h in
  check "p50 at the first bucket bound" true
    (abs_float (Metrics.snapshot_quantile s 0.5 -. 0.1) < 1e-9);
  let p75 = Metrics.snapshot_quantile s 0.75 in
  check "p75 interpolates inside the second bucket" true
    (p75 > 0.1 && p75 <= 0.2);
  check "p100 is the last occupied bound" true
    (abs_float (Metrics.snapshot_quantile s 1.0 -. 0.2) < 1e-9);
  (* ranks past the last finite bound clamp to it *)
  Metrics.observe h 99.0;
  let s = Metrics.histogram_snapshot h in
  check "overflow rank reports the last finite bound" true
    (abs_float (Metrics.snapshot_quantile s 1.0 -. 1.0) < 1e-9);
  check "empty snapshot is nan" true
    (Float.is_nan
       (Metrics.snapshot_quantile
          (Metrics.histogram_snapshot
             (Metrics.histogram ~registry:r ~buckets:[ 1.0 ] "q2_seconds"))
          0.5));
  check "quantile out of range rejected" true
    (match Metrics.snapshot_quantile s 1.5 with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ---------------- exporters ---------------- *)

let populated_registry () =
  let r = Metrics.create () in
  let c =
    Metrics.counter ~registry:r ~help:"help with \\ and\nnewline"
      ~labels:[ ("svc", "we\"ird\\na\nme") ]
      "exp_total"
  in
  Metrics.inc ~by:3 c;
  let h = Metrics.histogram ~registry:r ~buckets:[ 0.1; 1.0 ] "exp_seconds" in
  Metrics.observe h 0.05;
  Metrics.observe h 5.0;
  let g = Metrics.gauge ~registry:r "exp_state" in
  Metrics.set g 2.0;
  r

let test_prometheus_format () =
  let out = Metrics.to_prometheus (populated_registry ()) in
  check "TYPE line" true (contains out "# TYPE exp_total counter");
  check "histogram TYPE" true (contains out "# TYPE exp_seconds histogram");
  check "label value escaped" true
    (contains out "svc=\"we\\\"ird\\\\na\\nme\"");
  check "help escaped" true (contains out "help with \\\\ and\\nnewline");
  check "cumulative +Inf bucket" true
    (contains out "exp_seconds_bucket{le=\"+Inf\"} 2");
  check "sum line" true (contains out "exp_seconds_sum");
  check "count line" true (contains out "exp_seconds_count 2");
  check "gauge sample" true (contains out "exp_state 2")

let test_json_export_valid () =
  let out = Metrics.to_json (populated_registry ()) in
  (match Jsonv.explain out with
   | None -> ()
   | Some e -> Alcotest.failf "invalid JSON: %s\n%s" e out);
  check "metrics array" true (contains out "\"metrics\"");
  check "counter value" true (contains out "\"value\": 3");
  check "+Inf spelled as string" true (contains out "\"le\": \"+Inf\"")

let test_json_string_escaping () =
  check_str "plain" "\"abc\"" (Metrics.json_string "abc");
  check_str "quote and backslash" "\"a\\\"b\\\\c\""
    (Metrics.json_string "a\"b\\c");
  check_str "newline and tab" "\"a\\nb\\tc\"" (Metrics.json_string "a\nb\tc");
  check "control chars escaped" true
    (contains (Metrics.json_string "a\x01b") "\\u0001");
  check "result is valid JSON" true
    (Jsonv.is_valid (Metrics.json_string "we\"ird\\\n\x02"))

(* ---------------- trace ring buffer ---------------- *)

let test_ring_wraparound () =
  let buf = Trace.buffer ~capacity:3 () in
  let now = ref 0.0 in
  let tracer = Trace.create ~clock:(fun () -> now := !now +. 1.0; !now) () in
  Trace.set_clock_every tracer 1;
  Trace.set_sink tracer (Trace.Memory buf);
  for i = 1 to 8 do
    Trace.emit ~tracer (Trace.Note (string_of_int i))
  done;
  check_int "pushed counts everything" 8 (Trace.buffer_pushed buf);
  check_int "capacity" 3 (Trace.buffer_capacity buf);
  let events = Trace.buffer_events buf in
  check_int "retains capacity events" 3 (List.length events);
  let notes =
    List.map
      (fun e -> match e.Trace.kind with Trace.Note s -> s | _ -> "?")
      events
  in
  Alcotest.(check (list string)) "last three, oldest first" [ "6"; "7"; "8" ] notes;
  let seqs = List.map (fun e -> e.Trace.seq) events in
  Alcotest.(check (list int)) "sequence numbers survive" [ 5; 6; 7 ] seqs;
  check "timestamps monotone" true
    (let ts = List.map (fun e -> e.Trace.time_s) events in
     List.sort compare ts = ts);
  Trace.buffer_clear buf;
  check_int "clear resets pushed" 0 (Trace.buffer_pushed buf);
  check_int "clear drops events" 0 (List.length (Trace.buffer_events buf))

let test_with_span_depth_and_errors () =
  let buf = Trace.buffer ~capacity:16 () in
  let tracer = Trace.create ~sink:(Trace.Memory buf) () in
  (try
     Trace.with_span ~tracer "outer" (fun () ->
         Trace.emit ~tracer (Trace.Note "inside");
         failwith "boom")
   with Failure _ -> ());
  let events = Trace.buffer_events buf in
  check_int "open + note + close" 3 (List.length events);
  (match events with
   | [ o; n; c ] ->
     check "opens outer" true
       (match o.Trace.kind with Trace.Span_open { name = "outer"; _ } -> true | _ -> false);
     check_int "note is nested" 1 n.Trace.depth;
     check "span closed despite the raise" true
       (match c.Trace.kind with Trace.Span_close { name = "outer"; _ } -> true | _ -> false);
     check_int "close back at depth 0" 0 c.Trace.depth
   | _ -> Alcotest.fail "unexpected event shape");
  (* detail thunks must not be forced when the tracer is disabled *)
  let disabled = Trace.create () in
  let forced = ref false in
  let v =
    Trace.with_span ~tracer:disabled ~detail:(fun () -> forced := true; "d")
      "quiet" (fun () -> 7)
  in
  check_int "passthrough result" 7 v;
  check "detail not forced on Null" false !forced

let test_event_json () =
  let kinds =
    [ Trace.Span_open { name = "enforce"; detail = "doc \"1\"" };
      Trace.Span_close { name = "enforce"; elapsed_s = 1e-4 };
      Trace.Cache_query { cache = "safe"; hit = true };
      Trace.Validation { subject = "newspaper"; violations = 2 };
      Trace.Fork_choice { fname = "Get_Temp"; choice = "invoke" };
      Trace.Attempt { fname = "f"; number = 1 };
      Trace.Retry { fname = "f"; attempt = 1; backoff_s = 0.01 };
      Trace.Breaker { fname = "f"; transition = "trip" };
      Trace.Invocation { fname = "f"; attempts = 2; ok = false };
      Trace.Decision
        { subject = "doc"; verdict = Trace.Accept; detail = "a\\b\nc" };
      Trace.Note "free\tform" ]
  in
  List.iteri
    (fun i kind ->
      let e = { Trace.seq = i; time_s = 0.5; depth = 1; kind } in
      let json = Trace.event_to_json e in
      match Jsonv.explain json with
      | None -> ()
      | Some err -> Alcotest.failf "event %d: %s\n%s" i err json)
    kinds

(* ---------------- sink parity ---------------- *)

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Alcotest.failf "schema parse error: %s" e

let common = {|
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.(Get_Date | date)
element performance = title.date
function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
function Get_Date : title -> date
|}

let schema_star =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
|} ^ common)

let schema_star2 =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.temp.(TimeOut | exhibit*)
|} ^ common)

(* One enforcement run over [seed]-generated documents with honest
   random services, entirely deterministic in [seed]. *)
let run_batch ~seed sink =
  let g = Generate.create ~seed schema_star in
  let docs = List.init 30 (fun _ -> Generate.document g) in
  let oracle = Generate.create ~seed:(seed + 1) schema_star in
  let invoker fname _params = Generate.output_instance oracle fname in
  let p = Pipeline.create ~s0:schema_star ~exchange:schema_star2 ~invoker () in
  Trace.set_sink Trace.default sink;
  Fun.protect
    ~finally:(fun () -> Trace.set_sink Trace.default Trace.Null)
    (fun () -> fst (Pipeline.enforce_many p docs))

let outcome_equal a b =
  match (a, b) with
  | Ok (d1, r1), Ok (d2, r2) ->
    D.equal d1 d2
    && r1.Enforcement.action = r2.Enforcement.action
    && List.length r1.Enforcement.invocations
       = List.length r2.Enforcement.invocations
  | Error (Enforcement.Rejected _), Error (Enforcement.Rejected _)
  | Error (Enforcement.Attempt_failed _), Error (Enforcement.Attempt_failed _)
  | Error (Enforcement.Service_fault _), Error (Enforcement.Service_fault _) ->
    true
  | _ -> false

let test_sink_parity =
  QCheck.Test.make ~name:"memory sink never changes enforcement outcomes"
    ~count:20
    QCheck.(small_int)
    (fun seed ->
      let plain = run_batch ~seed Trace.Null in
      let traced = run_batch ~seed (Trace.Memory (Trace.buffer ~capacity:64 ())) in
      List.length plain = List.length traced
      && List.for_all2 outcome_equal plain traced)

(* ---------------- suite ---------------- *)

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "label canonicalization" `Quick test_labels_canonical;
          Alcotest.test_case "type conflict" `Quick test_type_conflict;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram le buckets" `Quick
            test_histogram_le_semantics;
          Alcotest.test_case "histogram time + clock" `Quick
            test_histogram_time_uses_clock;
          Alcotest.test_case "histogram window diff" `Quick
            test_histogram_window_diff;
          Alcotest.test_case "snapshot quantile" `Quick
            test_snapshot_quantile ] );
      ( "export",
        [ Alcotest.test_case "prometheus text format" `Quick
            test_prometheus_format;
          Alcotest.test_case "json export is valid" `Quick test_json_export_valid;
          Alcotest.test_case "json string escaping" `Quick
            test_json_string_escaping ] );
      ( "trace",
        [ Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "span depth and errors" `Quick
            test_with_span_depth_and_errors;
          Alcotest.test_case "event json" `Quick test_event_json ] );
      ( "parity",
        [ QCheck_alcotest.to_alcotest test_sink_parity ] ) ]
