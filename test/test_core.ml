(* Tests for the rewriting engine (lib/core): the paper's worked examples
   (Figures 2, 4-8, 10-11), depth-k behaviour, restricted invocations,
   patterns/wildcards, validation, generation, execution — plus qcheck
   properties cross-checking the automata-based engines against a
   brute-force reference implementation of the k-depth left-to-right
   game on star-free (finite-language) signatures. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto
module D = Axml_core.Document
module Contract = Axml_core.Contract
module Rewriter = Axml_core.Rewriter
module Marking = Axml_core.Marking
module Possible = Axml_core.Possible
module Execute = Axml_core.Execute
module Validate = Axml_core.Validate
module Generate = Axml_core.Generate
module Schema_rewrite = Axml_core.Schema_rewrite
module Fork_automaton = Axml_core.Fork_automaton
module Product = Axml_core.Product

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Alcotest.failf "schema parse error: %s" e

(* ------------------------------------------------------------------ *)
(* The paper's running example                                         *)
(* ------------------------------------------------------------------ *)

let common = {|
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.(Get_Date | date)
element performance = title.date
function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
function Get_Date : title -> date
|}

(* schema 'star' of Section 2 *)
let schema_star =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
|} ^ common)

(* schema 'star-star' *)
let schema_star2 =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.temp.(TimeOut | exhibit*)
|} ^ common)

(* schema 'star-star-star' *)
let schema_star3 =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.temp.exhibit*
|} ^ common)

(* the document of Figure 2.a *)
let fig2a =
  D.elem "newspaper"
    [ D.elem "title" [ D.data "The Sun" ];
      D.elem "date" [ D.data "04/10/2002" ];
      D.call "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ];
      D.call "TimeOut" [ D.data "exhibits" ] ]

let honest_exhibit () =
  D.elem "exhibit" [ D.elem "title" [ D.data "Monet" ]; D.elem "date" [ D.data "today" ] ]

(* An honest service oracle for the example. *)
let honest_invoker ?(timeout_returns = `Exhibits) name _params =
  match name with
  | "Get_Temp" -> [ D.elem "temp" [ D.data "15 C" ] ]
  | "Get_Date" -> [ D.elem "date" [ D.data "04/10/2002" ] ]
  | "TimeOut" ->
    (match timeout_returns with
     | `Exhibits -> [ honest_exhibit (); honest_exhibit () ]
     | `Performance ->
       [ D.elem "performance"
           [ D.elem "title" [ D.data "Hamlet" ]; D.elem "date" [ D.data "tonight" ] ] ])
  | other -> Alcotest.failf "unexpected call to %s" other

let newspaper_word =
  [ Symbol.Label "title"; Symbol.Label "date"; Symbol.Fun "Get_Temp";
    Symbol.Fun "TimeOut" ]

let rewriter ?(engine = Rewriter.Lazy) ?(k = 1) target =
  Rewriter.create ~k ~engine ~s0:schema_star ~target ()

let target_regex rw label =
  match Rewriter.element_regex rw label with
  | Some r -> r
  | None -> Alcotest.failf "no content model for %s" label

(* Figure 4: the A_w^1 automaton for the newspaper word. *)
let test_fork_automaton_shape () =
  let rw = rewriter schema_star2 in
  let fork =
    Fork_automaton.build ~env:(Rewriter.env rw) ~k:1 newspaper_word
  in
  let stats = Fork_automaton.stats fork in
  (* base: 5 states; Get_Temp output "temp" Glushkov: 2 states;
     TimeOut output "(exhibit|performance)*": 3 states *)
  check_int "states" 10 stats.Fork_automaton.states;
  check_int "forks" 2 stats.Fork_automaton.forks;
  (* base 4 edges + 1 edge in the temp copy + 6 edges in the
     exhibit-or-performance-star copy + 2 invoke eps + 1 exit eps for the
     temp copy + 3 exit eps for the star copy's three finals *)
  check_int "edges" 17 stats.Fork_automaton.edges

(* Figures 5-6: w safely rewrites into the (**) newspaper type; the
   extracted rewriting invokes Get_Temp and keeps TimeOut. *)
let test_safe_into_star2 () =
  let rw = rewriter schema_star2 in
  let regex = target_regex rw "newspaper" in
  let analysis = Rewriter.word_safe_analysis rw ~target_regex:regex newspaper_word in
  check "safe" true analysis.Marking.safe;
  let items =
    [ D.elem "title" [ D.data "t" ]; D.elem "date" [ D.data "d" ];
      D.call "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ];
      D.call "TimeOut" [ D.data "exhibits" ] ]
  in
  match Execute.run (Execute.Follow_safe analysis) (honest_invoker ?timeout_returns:None) items with
  | Error e -> Alcotest.failf "safe execution failed: %a" Execute.pp_failure e
  | Ok outcome ->
    let names = List.map (fun i -> i.Execute.inv_name) outcome.Execute.invocations in
    Alcotest.(check (list string)) "invoked exactly Get_Temp" [ "Get_Temp" ] names;
    Alcotest.(check (list string)) "materialized word"
      [ "title"; "date"; "temp"; "TimeOut()" ]
      (List.map
         (fun d -> match D.symbol d with
            | Symbol.Label l -> l
            | Symbol.Fun f -> f ^ "()"
            | Symbol.Data -> "#data")
         outcome.Execute.materialized)
    |> fun () ->
    (* keep TimeOut intact: last item unchanged *)
    check "TimeOut kept" true
      (match List.rev outcome.Execute.materialized with
       | D.Call { name = "TimeOut"; _ } :: _ -> true
       | _ -> false)

(* Figures 7-8: no safe rewriting into the (***) newspaper type. *)
let test_unsafe_into_star3 () =
  let rw = rewriter schema_star3 in
  let regex = target_regex rw "newspaper" in
  check "unsafe" false (Rewriter.word_is_safe rw ~target_regex:regex newspaper_word)

(* Figures 10-11: but a possible rewriting exists. *)
let test_possible_into_star3 () =
  let rw = rewriter schema_star3 in
  let regex = target_regex rw "newspaper" in
  let analysis = Rewriter.word_possible_analysis rw ~target_regex:regex newspaper_word in
  check "possible" true analysis.Possible.possible;
  let items =
    [ D.elem "title" [ D.data "t" ]; D.elem "date" [ D.data "d" ];
      D.call "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ];
      D.call "TimeOut" [ D.data "exhibits" ] ]
  in
  (* TimeOut returns only exhibits: the attempt succeeds, both invoked *)
  (match Execute.run (Execute.Follow_possible analysis)
           (honest_invoker ~timeout_returns:`Exhibits) items with
   | Error e -> Alcotest.failf "expected success, got %a" Execute.pp_failure e
   | Ok outcome ->
     let names =
       List.sort compare (List.map (fun i -> i.Execute.inv_name) outcome.Execute.invocations)
     in
     Alcotest.(check (list string)) "both invoked" [ "Get_Temp"; "TimeOut" ] names);
  (* TimeOut returns a performance: the attempt fails (Figure 9c) *)
  let analysis = Rewriter.word_possible_analysis rw ~target_regex:regex newspaper_word in
  (match Execute.run (Execute.Follow_possible analysis)
           (honest_invoker ~timeout_returns:`Performance) items with
   | Error Execute.No_possible_path -> ()
   | Error e -> Alcotest.failf "expected No_possible_path, got %a" Execute.pp_failure e
   | Ok _ -> Alcotest.fail "expected run-time failure")

(* Already-conforming words need no invocation at all. *)
let test_already_instance () =
  let rw = rewriter schema_star in
  let regex = target_regex rw "newspaper" in
  let analysis = Rewriter.word_safe_analysis rw ~target_regex:regex newspaper_word in
  check "safe" true analysis.Marking.safe;
  let items =
    [ D.elem "title" [ D.data "t" ]; D.elem "date" [ D.data "d" ];
      D.call "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ];
      D.call "TimeOut" [ D.data "exhibits" ] ]
  in
  match Execute.run (Execute.Follow_safe analysis)
          (fun name _ -> Alcotest.failf "unexpected call to %s" name) items with
  | Error e -> Alcotest.failf "execution failed: %a" Execute.pp_failure e
  | Ok outcome -> check_int "no invocations" 0 (List.length outcome.Execute.invocations)

(* ------------------------------------------------------------------ *)
(* Tree-level: the full document of Figure 2                           *)
(* ------------------------------------------------------------------ *)

let test_document_instance_of_star () =
  let ctx = Validate.ctx schema_star in
  Alcotest.(check (list string)) "no violations" []
    (List.map (Fmt.str "%a" Validate.pp_violation) (Validate.document_violations ctx fig2a))

let test_document_not_instance_of_star2 () =
  let ctx = Validate.ctx ~env:(Schema.env_of_schemas schema_star schema_star2) schema_star2 in
  check "violations found" true (Validate.document_violations ctx fig2a <> [])

let test_materialize_fig2_into_star2 () =
  let rw = rewriter schema_star2 in
  Alcotest.(check (list string)) "check passes" []
    (List.map (Fmt.str "%a" Rewriter.pp_failure) (Rewriter.check_safe rw fig2a));
  match Rewriter.materialize rw ~invoker:(honest_invoker ?timeout_returns:None) fig2a with
  | Error fs ->
    Alcotest.failf "materialize failed: %a" Fmt.(list Rewriter.pp_failure) fs
  | Ok (doc, invs) ->
    let names = List.map (fun li -> li.Rewriter.invocation.Execute.inv_name) invs in
    Alcotest.(check (list string)) "only Get_Temp" [ "Get_Temp" ] names;
    let ctx =
      Validate.ctx ~env:(Schema.env_of_schemas schema_star schema_star2) schema_star2
    in
    Alcotest.(check (list string)) "result conforms" []
      (List.map (Fmt.str "%a" Validate.pp_violation) (Validate.document_violations ctx doc))

let test_materialize_fig2_into_star3_possible () =
  let rw = rewriter schema_star3 in
  check "not safe" false (Rewriter.is_safe rw fig2a);
  check "possible" true (Rewriter.is_possible rw fig2a);
  match Rewriter.materialize ~mode:Rewriter.Possible_mode rw
          ~invoker:(honest_invoker ~timeout_returns:`Exhibits) fig2a with
  | Error fs ->
    Alcotest.failf "materialize failed: %a" Fmt.(list Rewriter.pp_failure) fs
  | Ok (doc, _) ->
    (* the result still contains Get_Date calls inside returned exhibits?
       No: honest exhibits carry a materialized date, so the document is
       fully extensional here *)
    let ctx =
      Validate.ctx ~env:(Schema.env_of_schemas schema_star schema_star3) schema_star3
    in
    Alcotest.(check (list string)) "result conforms" []
      (List.map (Fmt.str "%a" Validate.pp_violation) (Validate.document_violations ctx doc))

(* Parameters containing calls are rewritten before the call is used
   (the deepest-first phase of Section 4). *)
let test_nested_parameters () =
  let s0 =
    parse_schema
      ({|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
function Get_City : #data -> city
|} ^ common)
  in
  let doc =
    D.elem "newspaper"
      [ D.elem "title" [ D.data "t" ]; D.elem "date" [ D.data "d" ];
        D.call "Get_Temp" [ D.call "Get_City" [ D.data "paris" ] ];
        D.call "TimeOut" [ D.data "x" ] ]
  in
  let rw = Rewriter.create ~k:1 ~s0 ~target:schema_star2 () in
  Alcotest.(check (list string)) "check passes" []
    (List.map (Fmt.str "%a" Rewriter.pp_failure) (Rewriter.check_safe rw doc));
  let invoker name params =
    match name with
    | "Get_City" -> [ D.elem "city" [ D.data "Paris" ] ]
    | "Get_Temp" ->
      (* the parameter must have been materialized into a city element *)
      (match params with
       | [ D.Elem { label = "city"; _ } ] -> [ D.elem "temp" [ D.data "15" ] ]
       | _ -> Alcotest.failf "Get_Temp called with unrewritten params")
    | other -> Alcotest.failf "unexpected call to %s" other
  in
  match Rewriter.materialize rw ~invoker doc with
  | Error fs -> Alcotest.failf "failed: %a" Fmt.(list Rewriter.pp_failure) fs
  | Ok (_, invs) ->
    let names = List.map (fun li -> li.Rewriter.invocation.Execute.inv_name) invs in
    check "Get_City before Get_Temp" true
      (names = [ "Get_City"; "Get_Temp" ])

(* A service breaking its WSDL contract is reported as a typed failure
   naming the offender, not an escaping exception. *)
let test_ill_typed_output () =
  let rw = rewriter schema_star2 in
  let bad_invoker name _ =
    match name with
    | "Get_Temp" -> [ D.elem "city" [ D.data "oops" ] ]  (* wrong type! *)
    | _ -> []
  in
  match Rewriter.materialize rw ~invoker:bad_invoker fig2a with
  | Error [ { Rewriter.reason = Rewriter.Ill_typed_service { fname; _ }; _ } as f ] ->
    Alcotest.(check string) "offender named" "Get_Temp" fname;
    check "classified as fault" true (Rewriter.failure_is_fault f)
  | Error fs ->
    Alcotest.failf "expected Ill_typed_service, got %a"
      Fmt.(list Rewriter.pp_failure) fs
  | Ok _ -> Alcotest.fail "expected a typed failure"

(* Regression: the offender must be the invocation whose output breaks
   its declared type — not simply the most recent one. P answers first
   with a forest that is fine at word level but breaks its output type
   at tree level (the walk continues past it, footnote 5 splices it
   as-is); Q answers later with a word-level-invalid forest where the
   walk actually dies. The principled report blames P, the first
   contract breaker — the old head-of-invocations heuristic blamed Q. *)
let offender_common = {|
element u = #data
element v = u
element w = #data
function P : #data -> v
function Q : #data -> w
|}

let test_ill_typed_offender_identified () =
  let s0 =
    parse_schema ({|
root doc
element doc = (P | v).(Q | w)
|} ^ offender_common)
  in
  let target =
    parse_schema ({|
root doc
element doc = v.w
|} ^ offender_common)
  in
  let rw = Rewriter.create ~k:1 ~s0 ~target () in
  let doc = D.elem "doc" [ D.call "P" [ D.data "x" ]; D.call "Q" [ D.data "y" ] ] in
  Alcotest.(check (list string)) "check passes" []
    (List.map (Fmt.str "%a" Rewriter.pp_failure) (Rewriter.check_safe rw doc));
  let invoker name _ =
    match name with
    | "P" -> [ D.elem "v" [ D.data "not-a-u" ] ]  (* tree-level ill-typed *)
    | "Q" -> [ D.elem "u" [ D.data "z" ] ]        (* word-level ill-typed *)
    | other -> Alcotest.failf "unexpected call to %s" other
  in
  match Rewriter.materialize rw ~invoker doc with
  | Error [ { Rewriter.reason = Rewriter.Ill_typed_service { fname; _ }; _ } ] ->
    Alcotest.(check string) "blames the first contract breaker" "P" fname
  | Error fs ->
    Alcotest.failf "expected Ill_typed_service, got %a"
      Fmt.(list Rewriter.pp_failure) fs
  | Ok _ -> Alcotest.fail "expected a typed failure"

(* A crashing service surfaces as a typed Service_failure, and sibling
   fork options are still explored (resilient backtracking). *)
let test_service_error_typed () =
  let rw = rewriter schema_star2 in
  let invoker name _ =
    match name with
    | "Get_Temp" -> failwith "connection refused"
    | _ -> []
  in
  match Rewriter.materialize rw ~invoker fig2a with
  | Error [ { Rewriter.reason = Rewriter.Service_failure { fname; attempts; _ }; _ } as f ] ->
    Alcotest.(check string) "names the service" "Get_Temp" fname;
    check_int "single attempt" 1 attempts;
    check "classified as fault" true (Rewriter.failure_is_fault f)
  | Error fs ->
    Alcotest.failf "expected Service_failure, got %a"
      Fmt.(list Rewriter.pp_failure) fs
  | Ok _ -> Alcotest.fail "expected a typed failure"

(* A structured give-up report from a resilient invoker keeps its
   attempt count through the typed channel. *)
let test_invocation_failed_attempts () =
  let rw = rewriter schema_star2 in
  let invoker name _ =
    match name with
    | "Get_Temp" ->
      raise (Execute.Invocation_failed
               { fname = "Get_Temp"; attempts = 4; cause = Failure "down" })
    | _ -> []
  in
  match Rewriter.materialize rw ~invoker fig2a with
  | Error [ { Rewriter.reason = Rewriter.Service_failure { fname; attempts; _ }; _ } ] ->
    Alcotest.(check string) "names the service" "Get_Temp" fname;
    check_int "attempts preserved" 4 attempts
  | Error fs ->
    Alcotest.failf "expected Service_failure, got %a"
      Fmt.(list Rewriter.pp_failure) fs
  | Ok _ -> Alcotest.fail "expected a typed failure"

(* SAFE-mode walks that fail with zero invocations are an engine
   invariant breach and must say so instead of silently failing: drive
   Execute.run directly with an analysis that does not match the
   items. *)
let test_zero_invocation_invariant () =
  let rw = rewriter schema_star2 in
  let regex = target_regex rw "newspaper" in
  let analysis = Rewriter.word_safe_analysis rw ~target_regex:regex newspaper_word in
  (* items that do not spell the analyzed word: the walk dies without
     invoking anything *)
  let items = [ D.elem "date" [ D.data "d" ] ] in
  match
    Execute.run (Execute.Follow_safe analysis)
      (fun name _ -> Alcotest.failf "unexpected call to %s" name)
      items
  with
  | Error (Execute.Invariant_violation _) -> ()
  | Error e ->
    Alcotest.failf "expected Invariant_violation, got %a" Execute.pp_failure e
  | Ok _ -> Alcotest.fail "expected failure"

(* ------------------------------------------------------------------ *)
(* Depth-k behaviour                                                   *)
(* ------------------------------------------------------------------ *)

let exhibits_schema =
  parse_schema {|
root listing
element listing = exhibit*
element exhibit = #data
function Get_Exhibits : () -> Get_Exhibit*
function Get_Exhibit : () -> exhibit
|}

let test_depth_k () =
  let word = [ Symbol.Fun "Get_Exhibits" ] in
  let target rw = target_regex rw "listing" in
  let rw1 = Rewriter.create ~k:1 ~s0:exhibits_schema ~target:exhibits_schema () in
  check "k=1 unsafe" false (Rewriter.word_is_safe rw1 ~target_regex:(target rw1) word);
  let rw2 = Rewriter.create ~k:2 ~s0:exhibits_schema ~target:exhibits_schema () in
  check "k=2 safe" true (Rewriter.word_is_safe rw2 ~target_regex:(target rw2) word);
  (* execution at k=2: Get_Exhibits returns three Get_Exhibit calls *)
  let analysis = Rewriter.word_safe_analysis rw2 ~target_regex:(target rw2) word in
  let invoker name _ =
    match name with
    | "Get_Exhibits" -> List.init 3 (fun _ -> D.call "Get_Exhibit" [])
    | "Get_Exhibit" -> [ D.elem "exhibit" [ D.data "e" ] ]
    | other -> Alcotest.failf "unexpected %s" other
  in
  match Execute.run (Execute.Follow_safe analysis) invoker [ D.call "Get_Exhibits" [] ] with
  | Error e -> Alcotest.failf "execution failed: %a" Execute.pp_failure e
  | Ok outcome ->
    check_int "four invocations" 4 (List.length outcome.Execute.invocations);
    check_int "three exhibits" 3 (List.length outcome.Execute.materialized)

(* The recursive search-engine pattern (Section 3): never safe at any
   bounded depth, but always possible. *)
let search_schema =
  parse_schema {|
root results
element results = url*.More?
element url = #data
function More : () -> url*.More?
|}

let test_recursive_never_safe () =
  let word = [ Symbol.Fun "More" ] in
  let target = R.star (R.sym (Symbol.Label "url")) in
  List.iter
    (fun k ->
      let rw = Rewriter.create ~k ~s0:search_schema ~target:search_schema () in
      check (Fmt.str "k=%d unsafe" k) false
        (Rewriter.word_is_safe rw ~target_regex:target word);
      check (Fmt.str "k=%d possible" k) true
        (Rewriter.word_is_possible rw ~target_regex:target word))
    [ 1; 2; 3; 4 ]

(* k = 0 means: no invocation at all; safe iff already an instance. *)
let test_depth_zero () =
  let rw0 = Rewriter.create ~k:0 ~s0:schema_star ~target:schema_star2 () in
  let regex = target_regex rw0 "newspaper" in
  check "not safe at k=0" false (Rewriter.word_is_safe rw0 ~target_regex:regex newspaper_word);
  let conforming =
    [ Symbol.Label "title"; Symbol.Label "date"; Symbol.Label "temp";
      Symbol.Fun "TimeOut" ]
  in
  check "instance is safe at k=0" true
    (Rewriter.word_is_safe rw0 ~target_regex:regex conforming)

(* ------------------------------------------------------------------ *)
(* Restricted invocations (Section 2.1)                                *)
(* ------------------------------------------------------------------ *)

let test_noninvocable () =
  let s0_restricted =
    parse_schema
      ({|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
|}
       ^ {|
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.(Get_Date | date)
element performance = title.date
noninvocable function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
function Get_Date : title -> date
|})
  in
  let rw = Rewriter.create ~k:1 ~s0:s0_restricted ~target:schema_star2 () in
  let regex = target_regex rw "newspaper" in
  (* Get_Temp may not be invoked: no legal rewriting reaches (**) *)
  check "unsafe" false (Rewriter.word_is_safe rw ~target_regex:regex newspaper_word);
  check "not even possible" false
    (Rewriter.word_is_possible rw ~target_regex:regex newspaper_word)

(* ------------------------------------------------------------------ *)
(* Function patterns and wildcards (Section 2.1)                       *)
(* ------------------------------------------------------------------ *)

let pattern_schema_text = {|
root newspaper
element newspaper = title.date.(Forecast | temp).(TimeOut | exhibit*)
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.(Get_Date | date)
element performance = title.date
function Get_Temp : city -> temp
function Paris_Weather : city -> temp
function Bad_Signature : title -> date
function TimeOut : #data -> (exhibit | performance)*
function Get_Date : title -> date
pattern Forecast requires UDDIF InACL : city -> temp
|}

let uddi_predicate pred fname =
  match pred with
  | "UDDIF" -> List.mem fname [ "Get_Temp"; "Paris_Weather"; "Bad_Signature" ]
  | "InACL" -> List.mem fname [ "Get_Temp"; "Paris_Weather" ]
  | _ -> false

let test_pattern_members () =
  let s = parse_schema pattern_schema_text in
  let env = Schema.env_of_schema ~predicate:uddi_predicate s in
  match Schema.find_pattern s "Forecast" with
  | None -> Alcotest.fail "pattern not found"
  | Some p ->
    let members =
      List.sort compare
        (List.map (fun (f : Schema.func) -> f.Schema.f_name)
           (Schema.pattern_members env p))
    in
    (* Bad_Signature fails the signature check, others pass predicates *)
    Alcotest.(check (list string)) "members" [ "Get_Temp"; "Paris_Weather" ] members

let test_pattern_in_target () =
  let s = parse_schema pattern_schema_text in
  let rw =
    Rewriter.create ~k:1 ~predicate:uddi_predicate ~s0:schema_star ~target:s ()
  in
  let regex = target_regex rw "newspaper" in
  (* The document's Get_Temp call matches the Forecast pattern, so the
     word is already an instance: safe with no invocation. *)
  check "safe" true (Rewriter.word_is_safe rw ~target_regex:regex newspaper_word);
  let doc_word_bad =
    [ Symbol.Label "title"; Symbol.Label "date"; Symbol.Fun "Bad_Signature";
      Symbol.Fun "TimeOut" ]
  in
  check "bad signature rejected" false
    (Rewriter.word_is_safe rw ~target_regex:regex doc_word_bad)

let test_wildcards () =
  let s =
    parse_schema {|
root box
element box = #any*
element a = #data
element b = #data
function F : #data -> a
|}
  in
  let rw = Rewriter.create ~k:1 ~s0:s ~target:s () in
  let regex = target_regex rw "box" in
  check "any elements ok" true
    (Rewriter.word_is_safe rw ~target_regex:regex
       [ Symbol.Label "a"; Symbol.Label "b" ]);
  (* a function is not an element: must be invoked *)
  let analysis =
    Rewriter.word_safe_analysis rw ~target_regex:regex [ Symbol.Fun "F" ]
  in
  check "function must be invoked" true analysis.Marking.safe;
  let outcome =
    Execute.run (Execute.Follow_safe analysis)
      (fun _ _ -> [ D.elem "a" [ D.data "x" ] ])
      [ D.call "F" [ D.data "p" ] ]
  in
  (match outcome with
   | Ok o -> check_int "one invocation" 1 (List.length o.Execute.invocations)
   | Error e -> Alcotest.failf "execution failed: %a" Execute.pp_failure e);
  let s_anyfun =
    parse_schema {|
root box
element box = #anyfun*
element a = #data
function F : #data -> a
|}
  in
  let rw = Rewriter.create ~k:1 ~s0:s_anyfun ~target:s_anyfun () in
  let regex = target_regex rw "box" in
  check "anyfun keeps functions" true
    (Rewriter.word_is_safe rw ~target_regex:regex [ Symbol.Fun "F"; Symbol.Fun "F" ])

(* ------------------------------------------------------------------ *)
(* The mixed approach (Section 5)                                      *)
(* ------------------------------------------------------------------ *)

let test_mixed () =
  let rw = rewriter schema_star3 in
  check "not safe alone" false (Rewriter.is_safe rw fig2a);
  (* invoking the cheap TimeOut up-front (it happens to return exhibits)
     makes the remainder safely rewritable *)
  let invoker = honest_invoker ~timeout_returns:`Exhibits in
  Alcotest.(check (list string)) "mixed check passes" []
    (List.map (Fmt.str "%a" Rewriter.pp_failure)
       (Rewriter.check_mixed rw ~eager_calls:(String.equal "TimeOut") ~invoker fig2a));
  match Rewriter.materialize_mixed rw ~eager_calls:(String.equal "TimeOut") ~invoker fig2a with
  | Error fs -> Alcotest.failf "failed: %a" Fmt.(list Rewriter.pp_failure) fs
  | Ok (doc, invs) ->
    check_int "two invocations" 2 (List.length invs);
    let ctx =
      Validate.ctx ~env:(Schema.env_of_schemas schema_star schema_star3) schema_star3
    in
    Alcotest.(check (list string)) "conforms" []
      (List.map (Fmt.str "%a" Validate.pp_violation) (Validate.document_violations ctx doc))

(* ------------------------------------------------------------------ *)
(* Schema-to-schema rewriting (Section 6)                              *)
(* ------------------------------------------------------------------ *)

let test_schema_rewriting () =
  check "(*) into (**)" true
    (Schema_rewrite.compatible ~s0:schema_star ~root:"newspaper" ~target:schema_star2 ());
  check "(*) into (***)" false
    (Schema_rewrite.compatible ~s0:schema_star ~root:"newspaper" ~target:schema_star3 ());
  check "(**) into (*): instance containment" true
    (Schema_rewrite.compatible ~s0:schema_star2 ~root:"newspaper" ~target:schema_star ());
  (* identity is always compatible *)
  check "identity" true
    (Schema_rewrite.compatible ~s0:schema_star ~root:"newspaper" ~target:schema_star ())

let test_schema_rewriting_verdicts () =
  let result =
    Schema_rewrite.check ~s0:schema_star ~root:"newspaper" ~target:schema_star3 ()
  in
  check "incompatible" false result.Schema_rewrite.compatible;
  let bad =
    List.filter (fun v -> not v.Schema_rewrite.safe) result.Schema_rewrite.verdicts
  in
  check "newspaper is the culprit" true
    (List.exists (fun v -> v.Schema_rewrite.label = "newspaper") bad)

(* ------------------------------------------------------------------ *)
(* Validation and generation                                           *)
(* ------------------------------------------------------------------ *)

let test_validate_violations () =
  let ctx = Validate.ctx schema_star in
  let bad =
    D.elem "newspaper"
      [ D.elem "date" [ D.data "d" ];  (* missing title *)
        D.elem "temp" [ D.data "x" ];
        D.call "TimeOut" [ D.data "y" ] ]
  in
  let vs = Validate.violations ctx bad in
  check "violation found" true (vs <> []);
  let bad_params = D.call "Get_Temp" [ D.data "not a city" ] in
  let vs = Validate.violations ctx bad_params in
  check "input violation" true
    (List.exists
       (fun v -> match v.Validate.kind with
          | Validate.Input_mismatch { fname = "Get_Temp"; _ } -> true
          | _ -> false)
       vs)

let test_generated_instances_validate () =
  let ctx = Validate.ctx schema_star in
  for seed = 0 to 24 do
    let g = Generate.create ~seed schema_star in
    let doc = Generate.document g in
    if Validate.document_violations ctx doc <> [] then
      Alcotest.failf "seed %d generated a non-instance: %a" seed D.pp doc
  done

let test_generated_outputs_validate () =
  let ctx = Validate.ctx schema_star in
  for seed = 0 to 24 do
    let g = Generate.create ~seed schema_star in
    let forest = Generate.output_instance g "TimeOut" in
    if Validate.output_instance ctx "TimeOut" forest <> [] then
      Alcotest.fail "generated output is not an output instance"
  done

(* ------------------------------------------------------------------ *)
(* Eager vs lazy engines                                               *)
(* ------------------------------------------------------------------ *)

let test_engines_agree_on_example () =
  List.iter
    (fun target ->
      let rw_eager = rewriter ~engine:Rewriter.Eager target in
      let rw_lazy = rewriter ~engine:Rewriter.Lazy target in
      let regex = target_regex rw_eager "newspaper" in
      check "same verdict" true
        (Rewriter.word_is_safe rw_eager ~target_regex:regex newspaper_word
         = Rewriter.word_is_safe rw_lazy ~target_regex:regex newspaper_word))
    [ schema_star; schema_star2; schema_star3 ]

let test_lazy_explores_less () =
  let rw_eager = rewriter ~engine:Rewriter.Eager schema_star3 in
  let rw_lazy = rewriter ~engine:Rewriter.Lazy schema_star3 in
  let regex = target_regex rw_eager "newspaper" in
  let a_eager = Rewriter.word_safe_analysis rw_eager ~target_regex:regex newspaper_word in
  let a_lazy = Rewriter.word_safe_analysis rw_lazy ~target_regex:regex newspaper_word in
  check "lazy explores no more nodes" true
    (a_lazy.Marking.stats.Marking.explored_nodes
     <= a_eager.Marking.stats.Marking.explored_nodes)

(* ------------------------------------------------------------------ *)
(* Brute-force reference for star-free signatures                      *)
(* ------------------------------------------------------------------ *)

module Exhaustive = Axml_core.Exhaustive

(* Random star-free content models over two labels and two functions. *)
let mini_atoms =
  [ Schema.A_label "a"; Schema.A_label "b"; Schema.A_fun "f"; Schema.A_fun "g" ]

let gen_mini_content : Schema.content QCheck.Gen.t =
  let open QCheck.Gen in
  let atom = map R.sym (oneofl mini_atoms) in
  let rec gen n =
    if n <= 0 then atom
    else
      frequency
        [ (3, atom);
          (1, return R.epsilon);
          (2, map2 R.seq (gen (n / 2)) (gen (n / 2)));
          (2, map2 R.alt (gen (n / 2)) (gen (n / 2)));
          (1, map R.opt (gen (n - 1)))
        ]
  in
  gen 4

let gen_mini_setup =
  let open QCheck.Gen in
  let* out_f = gen_mini_content in
  let* out_g = gen_mini_content in
  let* target = gen_mini_content in
  let* word =
    list_size (int_bound 3)
      (oneofl [ Symbol.Label "a"; Symbol.Label "b"; Symbol.Fun "f"; Symbol.Fun "g" ])
  in
  let* k = int_range 0 2 in
  return (out_f, out_g, target, word, k)

let mini_schema out_f out_g =
  let s = Schema.empty in
  let s = Schema.add_element s "a" (R.sym Schema.A_data) in
  let s = Schema.add_element s "b" (R.sym Schema.A_data) in
  let s = Schema.add_function s (Schema.func "f" ~input:R.epsilon ~output:out_f) in
  let s = Schema.add_function s (Schema.func "g" ~input:R.epsilon ~output:out_g) in
  s

let print_mini (out_f, out_g, target, word, k) =
  Fmt.str "f:()->%a; g:()->%a; target=%a; w=%a; k=%d"
    Schema.pp_content out_f Schema.pp_content out_g Schema.pp_content target
    Fmt.(list ~sep:(any ".") Symbol.pp) word k

let arb_mini = QCheck.make ~print:print_mini gen_mini_setup

let prop_engines_match_reference =
  QCheck.Test.make ~count:400 ~name:"safe & possible match the brute-force game"
    arb_mini
    (fun (out_f, out_g, target, word, k) ->
      let s = mini_schema out_f out_g in
      let env = Schema.env_of_schema s in
      let target_regex = Schema.compile_content env target in
      let outputs = Exhaustive.outputs_of_env env in
      let target_dfa = Auto.Dfa.of_regex target_regex in
      let alphabet =
        Auto.Sym_set.of_list
          [ Symbol.Label "a"; Symbol.Label "b"; Symbol.Fun "f"; Symbol.Fun "g";
            Symbol.Data ]
      in
      let target_dfa = Auto.Dfa.complete ~alphabet target_dfa in
      let ref_safe = Exhaustive.safe ~outputs ~target_dfa ~k word in
      let ref_possible = Exhaustive.possible ~outputs ~target_dfa ~k word in
      let rw_eager = Rewriter.create ~k ~engine:Rewriter.Eager ~s0:s ~target:s () in
      let rw_lazy = Rewriter.create ~k ~engine:Rewriter.Lazy ~s0:s ~target:s () in
      let eager_safe = Rewriter.word_is_safe rw_eager ~target_regex word in
      let lazy_safe = Rewriter.word_is_safe rw_lazy ~target_regex word in
      let possible = Rewriter.word_is_possible rw_eager ~target_regex word in
      if eager_safe <> ref_safe then
        QCheck.Test.fail_reportf "eager safe=%b but reference=%b" eager_safe ref_safe;
      if lazy_safe <> ref_safe then
        QCheck.Test.fail_reportf "lazy safe=%b but reference=%b" lazy_safe ref_safe;
      if possible <> ref_possible then
        QCheck.Test.fail_reportf "possible=%b but reference=%b" possible ref_possible;
      true)

let prop_safe_implies_possible =
  QCheck.Test.make ~count:200 ~name:"safe implies possible"
    arb_mini
    (fun (out_f, out_g, target, word, k) ->
      let s = mini_schema out_f out_g in
      let env = Schema.env_of_schema s in
      let target_regex = Schema.compile_content env target in
      let rw = Rewriter.create ~k ~s0:s ~target:s () in
      QCheck.assume (Rewriter.word_is_safe rw ~target_regex word);
      Rewriter.word_is_possible rw ~target_regex word)

(* Safe executions against adversarial (random output) services always
   succeed and always produce a word in the target language. *)
let prop_safe_execution_robust =
  QCheck.Test.make ~count:200 ~name:"safe execution survives any honest adversary"
    QCheck.(pair arb_mini small_int)
    (fun ((out_f, out_g, target, word, k), seed) ->
      let s = mini_schema out_f out_g in
      let env = Schema.env_of_schema s in
      let target_regex = Schema.compile_content env target in
      let rw = Rewriter.create ~k ~s0:s ~target:s () in
      let analysis = Rewriter.word_safe_analysis rw ~target_regex word in
      QCheck.assume analysis.Marking.safe;
      let rng = Random.State.make [| seed |] in
      let outputs fname =
        match Schema.String_map.find_opt fname env.Schema.env_functions with
        | None -> []
        | Some func ->
          Exhaustive.enum_language (Schema.compile_content env func.Schema.f_output)
      in
      let invoker fname _params =
        let outs = outputs fname in
        let o = List.nth outs (Random.State.int rng (List.length outs)) in
        List.map
          (function
            | Symbol.Label l -> D.elem l [ D.data "v" ]
            | Symbol.Fun f -> D.call f []
            | Symbol.Data -> D.data "v")
          o
      in
      let items =
        List.map
          (function
            | Symbol.Label l -> D.elem l [ D.data "v" ]
            | Symbol.Fun f -> D.call f []
            | Symbol.Data -> D.data "v")
          word
      in
      match Execute.run (Execute.Follow_safe analysis) invoker items with
      | Error _ -> QCheck.Test.fail_report "safe execution failed"
      | Ok outcome ->
        let final_word = D.word outcome.Execute.materialized in
        Auto.Dfa.accepts (Auto.Dfa.of_regex target_regex) final_word)

(* ------------------------------------------------------------------ *)
(* The left-to-right restriction (Section 3)                           *)
(* ------------------------------------------------------------------ *)

(* The paper: "with this restriction, one can miss a successful
   rewriting that is not left-to-right". Witness: in

     w = f.g,   target = a.b | f.c,   f : () -> a,   g : () -> b|c

   the winning strategy must invoke g FIRST and then decide on f --
   impossible left-to-right, trivial in arbitrary order. *)
let test_ltr_restriction_witness () =
  let s =
    parse_schema {|
element a = #data
element b = #data
element c = #data
function f : () -> a
function g : () -> (b | c)
|}
  in
  let env = Schema.env_of_schema s in
  let target =
    R.alt
      (R.seq (R.sym (Symbol.Label "a")) (R.sym (Symbol.Label "b")))
      (R.seq (R.sym (Symbol.Fun "f")) (R.sym (Symbol.Label "c")))
  in
  let word = [ Symbol.Fun "f"; Symbol.Fun "g" ] in
  let rw = Rewriter.create ~k:1 ~s0:s ~target:s () in
  check "engine (left-to-right): unsafe" false
    (Rewriter.word_is_safe rw ~target_regex:target word);
  check "engine (left-to-right): possible" true
    (Rewriter.word_is_possible rw ~target_regex:target word);
  let outputs = Exhaustive.outputs_of_env env in
  let target_dfa = Auto.Dfa.of_regex target in
  check "reference left-to-right agrees: unsafe" false
    (Exhaustive.safe ~outputs ~target_dfa ~k:1 word);
  check "arbitrary order IS safe" true
    (Exhaustive.safe_arbitrary ~outputs ~target_dfa ~k:1 word)

let prop_ltr_implies_arbitrary =
  QCheck.Test.make ~count:100
    ~name:"left-to-right safety implies arbitrary-order safety"
    arb_mini
    (fun (out_f, out_g, target, word, k) ->
      let s = mini_schema out_f out_g in
      let env = Schema.env_of_schema s in
      let target_regex = Schema.compile_content env target in
      let outputs = Exhaustive.outputs_of_env env in
      (* the arbitrary-order game is exponential: keep its input small *)
      let small fname =
        match outputs fname with
        | None -> true
        | Some outs ->
          List.length outs <= 6
          && List.for_all (fun o -> List.length o <= 3) outs
      in
      QCheck.assume (small "f" && small "g" && List.length word <= 2 && k <= 2);
      let rw = Rewriter.create ~k ~s0:s ~target:s () in
      QCheck.assume (Rewriter.word_is_safe rw ~target_regex word);
      let target_dfa = Auto.Dfa.of_regex target_regex in
      Exhaustive.safe_arbitrary ~outputs ~target_dfa ~k word)

(* Monotonicity in the rewriting depth: the player's options only grow
   with k while the adversary's are fixed, so both verdicts are
   monotone — the soundness argument behind the linear minimal-k
   search, which must return exactly the frontier of each verdict. *)
let prop_k_monotone =
  QCheck.Test.make ~count:200
    ~name:"safe/possible are monotone in k; minimal_k is their frontier"
    arb_mini
    (fun (out_f, out_g, target, word, k) ->
      let s = mini_schema out_f out_g in
      let env = Schema.env_of_schema s in
      let target_regex = Schema.compile_content env target in
      let c = Contract.create ~k:3 ~s0:s ~target:s () in
      let safe_at k = Contract.is_safe ~k c ~target_regex word in
      let possible_at k = Contract.is_possible ~k c ~target_regex word in
      if safe_at k && not (safe_at (k + 1)) then
        QCheck.Test.fail_reportf "safe at k=%d but not at k=%d" k (k + 1);
      if possible_at k && not (possible_at (k + 1)) then
        QCheck.Test.fail_reportf "possible at k=%d but not at k=%d" k (k + 1);
      let scan pred =
        let rec go d = if d > 3 then None else if pred d then Some d else go (d + 1) in
        go 0
      in
      let m = Contract.minimal_k ~max_k:3 c ~target_regex word in
      if m.Contract.safe_at <> scan safe_at then
        QCheck.Test.fail_reportf "minimal_k.safe_at disagrees with the scan";
      if m.Contract.possible_at <> scan possible_at then
        QCheck.Test.fail_reportf "minimal_k.possible_at disagrees with the scan";
      true)

(* ------------------------------------------------------------------ *)
(* Cost planning (Figure 3 step 23, Figure 9 step d)                   *)
(* ------------------------------------------------------------------ *)

module Cost = Axml_core.Cost

let example_fee = function
  | "Get_Temp" -> 0.1
  | "TimeOut" -> 1.0
  | _ -> 5.0

let test_cost_safe_worst () =
  (* into schema 2: the strategy invokes Get_Temp and keeps TimeOut *)
  let rw = rewriter schema_star2 in
  let regex = target_regex rw "newspaper" in
  let analysis = Rewriter.word_safe_analysis rw ~target_regex:regex newspaper_word in
  (match Cost.safe_worst_cost analysis ~cost:example_fee with
   | Some c -> Alcotest.(check (float 1e-9)) "worst fee" 0.1 c
   | None -> Alcotest.fail "expected a bound");
  (* counting invocations instead of fees *)
  (match Cost.safe_worst_cost analysis ~cost:(fun _ -> 1.) with
   | Some c -> Alcotest.(check (float 1e-9)) "one invocation" 1.0 c
   | None -> Alcotest.fail "expected a bound");
  (* into schema 1: already an instance, zero cost *)
  let rw1 = rewriter schema_star in
  let regex1 = target_regex rw1 "newspaper" in
  let analysis1 = Rewriter.word_safe_analysis rw1 ~target_regex:regex1 newspaper_word in
  (match Cost.safe_worst_cost analysis1 ~cost:example_fee with
   | Some c -> Alcotest.(check (float 1e-9)) "free" 0.0 c
   | None -> Alcotest.fail "expected a bound");
  (* into schema 3: not safe at all *)
  let rw3 = rewriter schema_star3 in
  let regex3 = target_regex rw3 "newspaper" in
  let analysis3 = Rewriter.word_safe_analysis rw3 ~target_regex:regex3 newspaper_word in
  check "unsafe has no bound" true
    (Cost.safe_worst_cost analysis3 ~cost:example_fee = None)

let test_cost_possible_min () =
  let rw3 = rewriter schema_star3 in
  let regex3 = target_regex rw3 "newspaper" in
  let analysis = Rewriter.word_possible_analysis rw3 ~target_regex:regex3 newspaper_word in
  (* the only hopeful path invokes both functions: 0.1 + 1.0 *)
  (match Cost.possible_min_cost analysis ~cost:example_fee with
   | Some c -> Alcotest.(check (float 1e-9)) "both fees" 1.1 c
   | None -> Alcotest.fail "expected a cost");
  (* into schema 2 the cheap path only invokes Get_Temp *)
  let rw2 = rewriter schema_star2 in
  let regex2 = target_regex rw2 "newspaper" in
  let analysis2 = Rewriter.word_possible_analysis rw2 ~target_regex:regex2 newspaper_word in
  (match Cost.possible_min_cost analysis2 ~cost:example_fee with
   | Some c -> Alcotest.(check (float 1e-9)) "cheap path" 0.1 c
   | None -> Alcotest.fail "expected a cost")

let test_cost_unbounded () =
  (* F returns any number of G handles; the target wants plain data, so
     every returned G must be invoked: the adversary can force an
     unbounded total fee even though the rewriting is SAFE. *)
  let s =
    parse_schema {|
root listing
element listing = a*
element a = #data
function F : () -> G*
function G : () -> a
|}
  in
  let rw = Rewriter.create ~k:2 ~s0:s ~target:s () in
  let target = R.star (R.sym (Symbol.Label "a")) in
  let analysis = Rewriter.word_safe_analysis rw ~target_regex:target [ Symbol.Fun "F" ] in
  check "safe" true analysis.Marking.safe;
  (match Cost.safe_worst_cost analysis ~cost:(fun _ -> 1.) with
   | Some c -> check "unbounded worst case" true (c = Float.infinity)
   | None -> Alcotest.fail "expected a (infinite) bound");
  (* the optimistic cost is finite: F may return zero handles *)
  let poss = Rewriter.word_possible_analysis rw ~target_regex:target [ Symbol.Fun "F" ] in
  (match Cost.possible_min_cost poss ~cost:(fun _ -> 1.) with
   | Some c -> Alcotest.(check (float 1e-9)) "one call suffices optimistically" 1.0 c
   | None -> Alcotest.fail "expected a cost")

let test_cost_keep_is_free () =
  (* when the target accepts the function symbol, keeping it costs 0 *)
  let rw = rewriter schema_star in
  let regex = target_regex rw "newspaper" in
  let analysis = Rewriter.word_safe_analysis rw ~target_regex:regex newspaper_word in
  (match Cost.safe_worst_cost analysis ~cost:example_fee with
   | Some c -> Alcotest.(check (float 1e-9)) "free" 0.0 c
   | None -> Alcotest.fail "expected a bound");
  let poss = Rewriter.word_possible_analysis rw ~target_regex:regex newspaper_word in
  match Cost.possible_min_cost poss ~cost:example_fee with
  | Some c -> Alcotest.(check (float 1e-9)) "free" 0.0 c
  | None -> Alcotest.fail "expected a cost"

(* A scenario where the greedy keep-first order is suboptimal: keeping F
   forces the expensive H to be invoked later, while invoking the cheap F
   up-front lets H stay intensional. *)
let tradeoff_schema =
  parse_schema {|
root doc
element doc = F.a | temp.H
element temp = #data
element a = #data
function F : () -> temp
function H : () -> a
|}

let tradeoff_fee = function "F" -> 1.0 | "H" -> 10.0 | _ -> 0.0

let tradeoff_invoker name _ =
  match name with
  | "F" -> [ D.elem "temp" [ D.data "t" ] ]
  | "H" -> [ D.elem "a" [ D.data "x" ] ]
  | other -> Alcotest.failf "unexpected call to %s" other

let tradeoff_items = [ D.call "F" []; D.call "H" [] ]

let total_fee outcome =
  List.fold_left
    (fun acc i -> acc +. tradeoff_fee i.Execute.inv_name)
    0. outcome.Execute.invocations

let test_cost_guided_execution () =
  let rw = Rewriter.create ~k:1 ~s0:tradeoff_schema ~target:tradeoff_schema () in
  let regex = target_regex rw "doc" in
  let word = D.word tradeoff_items in
  let analysis = Rewriter.word_safe_analysis rw ~target_regex:regex word in
  check "safe" true analysis.Marking.safe;
  (* the best strategy only ever pays for F *)
  (match Cost.safe_worst_cost analysis ~cost:tradeoff_fee with
   | Some c -> Alcotest.(check (float 1e-9)) "worst-case optimum" 1.0 c
   | None -> Alcotest.fail "expected a bound");
  (* greedy keep-first execution keeps F and ends up paying for H *)
  (match Execute.run (Execute.Follow_safe analysis) tradeoff_invoker tradeoff_items with
   | Ok outcome -> Alcotest.(check (float 1e-9)) "greedy pays 10" 10.0 (total_fee outcome)
   | Error e -> Alcotest.failf "execution failed: %a" Execute.pp_failure e);
  (* the cost-guided order follows the optimal plan *)
  let poss = Rewriter.word_possible_analysis rw ~target_regex:regex word in
  (match Cost.possible_min_cost poss ~cost:tradeoff_fee with
   | Some c -> Alcotest.(check (float 1e-9)) "optimal plan" 1.0 c
   | None -> Alcotest.fail "expected a cost");
  let plan = Cost.possible_costs poss ~cost:tradeoff_fee in
  match
    Execute.run ~plan ~fee:tradeoff_fee (Execute.Follow_possible poss)
      tradeoff_invoker tradeoff_items
  with
  | Ok outcome -> Alcotest.(check (float 1e-9)) "guided pays 1" 1.0 (total_fee outcome)
  | Error e -> Alcotest.failf "guided execution failed: %a" Execute.pp_failure e

let prop_safe_worst_at_least_possible_min =
  QCheck.Test.make ~count:200
    ~name:"worst-case safe fee >= optimistic possible fee"
    arb_mini
    (fun (out_f, out_g, target, word, k) ->
      let s = mini_schema out_f out_g in
      let env = Schema.env_of_schema s in
      let target_regex = Schema.compile_content env target in
      let rw = Rewriter.create ~k ~s0:s ~target:s () in
      let analysis = Rewriter.word_safe_analysis rw ~target_regex word in
      QCheck.assume analysis.Marking.safe;
      let fee = function "f" -> 1.0 | "g" -> 3.0 | _ -> 10.0 in
      let worst = Cost.safe_worst_cost analysis ~cost:fee in
      let poss = Rewriter.word_possible_analysis rw ~target_regex word in
      let best = Cost.possible_min_cost poss ~cost:fee in
      match worst, best with
      | Some w, Some b -> b <= w +. 1e-9
      | Some _, None -> QCheck.Test.fail_report "safe but not possible?"
      | None, _ -> QCheck.Test.fail_report "safe analysis lost its verdict")

(* reusable pieces for the schema-level property *)
let mini_schema_base () =
  let s = Schema.empty in
  let s = Schema.add_element s "a" (R.sym Schema.A_data) in
  let s = Schema.add_element s "b" (R.sym Schema.A_data) in
  let s =
    Schema.add_function s
      (Schema.func "f" ~input:R.epsilon ~output:(R.sym (Schema.A_label "a")))
  in
  let s =
    Schema.add_function s
      (Schema.func "g" ~input:R.epsilon
         ~output:(R.alt (R.sym (Schema.A_label "a")) (R.sym (Schema.A_label "b"))))
  in
  s

let gen_mini_content_arb =
  QCheck.make ~print:(Fmt.str "%a" Schema.pp_content) gen_mini_content

(* Schema-level compatibility is sound: when the schemas pass the
   Section 6 test, every randomly generated instance of the sender
   schema is safely rewritable (and materializes into an instance of the
   target). *)
let prop_schema_compat_sound =
  QCheck.Test.make ~count:50
    ~name:"schema compatibility implies every instance rewrites safely"
    QCheck.(pair (pair gen_mini_content_arb gen_mini_content_arb) small_int)
    (fun ((content0, content1), seed) ->
      let make_schema root_content =
        let s = mini_schema_base () in
        Schema.with_root (Schema.add_element s "r" root_content) "r"
      in
      let s0 = make_schema content0 in
      let target = make_schema content1 in
      let compatible =
        Schema_rewrite.compatible ~k:1 ~s0 ~root:"r" ~target ()
      in
      QCheck.assume compatible;
      let g = Generate.create ~seed ~max_depth:16 s0 in
      match Generate.document g with
      | exception Generate.Generation_failed _ -> true
      | doc ->
        let rw = Rewriter.create ~k:1 ~s0 ~target () in
        match Rewriter.check_safe rw doc with
        | [] -> true
        | fs ->
          QCheck.Test.fail_reportf "doc %a not safe: %a" D.pp doc
            Fmt.(list Rewriter.pp_failure) fs)

(* End-to-end tree-level soundness: whenever the static check passes,
   materializing a random instance with honest random services succeeds
   and the result is an instance of the target schema. *)
let prop_tree_materialization_sound =
  QCheck.Test.make ~count:60
    ~name:"tree materialization yields target instances"
    QCheck.(pair (pair gen_mini_content_arb gen_mini_content_arb) small_int)
    (fun ((content0, content1), seed) ->
      let make_schema root_content =
        let s = mini_schema_base () in
        Schema.with_root (Schema.add_element s "r" root_content) "r"
      in
      let s0 = make_schema content0 in
      let target = make_schema content1 in
      let g = Generate.create ~seed ~max_depth:16 s0 in
      match Generate.document g with
      | exception Generate.Generation_failed _ -> true
      | doc ->
        let rw = Rewriter.create ~k:1 ~s0 ~target () in
        QCheck.assume (Rewriter.check_safe rw doc = []);
        let env = Schema.env_of_schemas s0 target in
        let oracle = Generate.create ~seed:(seed + 1) ~env ~max_depth:16 s0 in
        let invoker name _params = Generate.output_instance oracle name in
        (match Rewriter.materialize rw ~invoker doc with
         | Error fs ->
           QCheck.Test.fail_reportf "materialize failed: %a"
             Fmt.(list Rewriter.pp_failure) fs
         | Ok (doc', _) ->
           let ctx = Validate.ctx ~env target in
           (match Validate.document_violations ctx doc' with
            | [] -> true
            | vs ->
              QCheck.Test.fail_reportf "result %a violates: %a" D.pp doc'
                Fmt.(list Validate.pp_violation) vs)))

(* ------------------------------------------------------------------ *)
(* Compiled contracts: memo table, counters, eviction, shims           *)
(* ------------------------------------------------------------------ *)

let contract target = Contract.create ~s0:schema_star ~target ()

let contract_regex c label =
  match Contract.element_regex c label with
  | Some r -> r
  | None -> Alcotest.failf "no content model for %s" label

let test_contract_verdicts () =
  let c2 = contract schema_star2 in
  check "safe into (**)" true
    (Contract.analyze c2 ~context:(Contract.Element "newspaper") newspaper_word
     = Contract.Safe);
  let c3 = contract schema_star3 in
  check "possible-only into (***)" true
    (Contract.analyze c3 ~context:(Contract.Element "newspaper") newspaper_word
     = Contract.Possible_only);
  check "impossible word" true
    (Contract.analyze c3 ~context:(Contract.Element "newspaper")
       [ Symbol.Label "title" ]
     = Contract.Impossible);
  (* input contexts resolve against the function's input type *)
  check "Get_Temp params" true
    (Contract.analyze c2 ~context:(Contract.Input "Get_Temp")
       [ Symbol.Label "city" ]
     = Contract.Safe)

let test_contract_unknown_context () =
  let c = contract schema_star2 in
  (match Contract.analyze c ~context:(Contract.Element "nosuch") [] with
   | _ -> Alcotest.fail "Element nosuch should raise"
   | exception Contract.Unknown_context _ -> ());
  match Contract.analyze c ~context:(Contract.Input "nosuch") [] with
  | _ -> Alcotest.fail "Input nosuch should raise"
  | exception Contract.Unknown_context _ -> ()

let test_contract_counters () =
  let c = contract schema_star3 in
  let s0 = Contract.stats c in
  check_int "fresh: no hits" 0 s0.Contract.hits;
  check_int "fresh: no misses" 0 s0.Contract.misses;
  (* unsafe-but-possible word: analyze computes safe AND possible *)
  ignore (Contract.analyze c ~context:(Contract.Element "newspaper") newspaper_word);
  let s1 = Contract.stats c in
  check_int "cold analyze: 2 misses" 2 s1.Contract.misses;
  check_int "cold analyze: 0 hits" 0 s1.Contract.hits;
  check_int "both analyses share one slot" 1 s1.Contract.entries;
  ignore (Contract.analyze c ~context:(Contract.Element "newspaper") newspaper_word);
  let s2 = Contract.stats c in
  check_int "warm analyze: 2 hits" 2 s2.Contract.hits;
  check_int "warm analyze: no new miss" 2 s2.Contract.misses;
  check "hit rate" true (Contract.hit_rate s2 = 0.5);
  let d = Contract.diff_stats ~before:s1 s2 in
  check_int "diff hits" 2 d.Contract.hits;
  check_int "diff misses" 0 d.Contract.misses;
  Contract.reset_stats c;
  let s3 = Contract.stats c in
  check_int "reset zeroes hits" 0 s3.Contract.hits;
  check_int "reset keeps entries" 1 s3.Contract.entries;
  ignore (Contract.analyze c ~context:(Contract.Element "newspaper") newspaper_word);
  check_int "entries survive reset" 2 (Contract.stats c).Contract.hits;
  Contract.clear c;
  check_int "clear drops entries" 0 (Contract.stats c).Contract.entries;
  ignore (Contract.analyze c ~context:(Contract.Element "newspaper") newspaper_word);
  check_int "cleared cache recomputes" 2 (Contract.stats c).Contract.misses

let test_contract_eviction () =
  let c =
    Contract.create ~cache_capacity:1 ~s0:schema_star ~target:schema_star2 ()
  in
  let regex = contract_regex c "newspaper" in
  let w1 = newspaper_word and w2 = [ Symbol.Label "title" ] in
  ignore (Contract.is_safe c ~target_regex:regex w1);
  ignore (Contract.is_safe c ~target_regex:regex w2);  (* evicts w1 (FIFO) *)
  ignore (Contract.is_safe c ~target_regex:regex w1);  (* miss again, evicts w2 *)
  let s = Contract.stats c in
  check_int "no hits" 0 s.Contract.hits;
  check_int "three misses" 3 s.Contract.misses;
  check_int "two evictions" 2 s.Contract.evictions;
  check_int "bounded residency" 1 s.Contract.entries

let test_rewriter_shims_cached () =
  let rw = rewriter schema_star2 in
  let regex = target_regex rw "newspaper" in
  let a1 = Rewriter.word_safe_analysis rw ~target_regex:regex newspaper_word in
  let a2 = Rewriter.word_safe_analysis rw ~target_regex:regex newspaper_word in
  check "same analysis object returned" true (a1 == a2);
  let s = Contract.stats (Rewriter.contract rw) in
  check_int "shim hit recorded" 1 s.Contract.hits;
  check "word_is_safe agrees" true
    (Rewriter.word_is_safe rw ~target_regex:regex newspaper_word);
  let p1 = Rewriter.word_possible_analysis rw ~target_regex:regex newspaper_word in
  let p2 = Rewriter.word_possible_analysis rw ~target_regex:regex newspaper_word in
  check "possible analysis cached too" true (p1 == p2)

let test_unified_check_report () =
  let rw = rewriter schema_star2 in
  let r = Rewriter.check rw fig2a in
  check "ok" true r.Rewriter.ok;
  check "no failures" true (r.Rewriter.failures = []);
  check "cold check computes" true (r.Rewriter.cache.Contract.misses > 0);
  let r2 = Rewriter.check rw fig2a in
  check "warm check misses nothing" true (r2.Rewriter.cache.Contract.misses = 0);
  check "warm check hits" true (r2.Rewriter.cache.Contract.hits > 0);
  check "check_safe shim" true (Rewriter.check_safe rw fig2a = []);
  check "is_safe shim" true (Rewriter.is_safe rw fig2a);
  let rw3 = rewriter schema_star3 in
  let r3 = Rewriter.check ~mode:Rewriter.Check_possible rw3 fig2a in
  check "possible into (***)" true r3.Rewriter.ok;
  check "is_possible shim" true (Rewriter.is_possible rw3 fig2a);
  let r3s = Rewriter.check ~mode:Rewriter.Check_safe rw3 fig2a in
  check "not safe into (***)" false r3s.Rewriter.ok;
  check "failures reported" true (r3s.Rewriter.failures <> []);
  check "shim equals report failures" true
    (Rewriter.check_safe rw3 fig2a = r3s.Rewriter.failures)

let test_check_mixed_mode () =
  let rw = rewriter schema_star3 in
  (* star3 needs TimeOut pre-fired to be checkable safely *)
  let r =
    Rewriter.check
      ~mode:(Rewriter.Check_mixed
               { eager_calls = (fun n -> n = "TimeOut" || n = "Get_Temp");
                 invoker = honest_invoker ~timeout_returns:`Exhibits })
      rw fig2a
  in
  check "mixed check passes" true r.Rewriter.ok;
  check "shim agrees" true
    (Rewriter.check_mixed rw
       ~eager_calls:(fun n -> n = "TimeOut" || n = "Get_Temp")
       ~invoker:(honest_invoker ~timeout_returns:`Exhibits) fig2a
     = [])

let test_shared_contract () =
  let c = contract schema_star2 in
  let rw1 = Rewriter.of_contract c in
  let rw2 = Rewriter.of_contract c in
  check "contract is shared" true (Rewriter.contract rw1 == Rewriter.contract rw2);
  ignore (Rewriter.check rw1 fig2a);
  let r = Rewriter.check rw2 fig2a in
  check "second rewriter rides the shared cache" true
    (r.Rewriter.cache.Contract.misses = 0 && r.Rewriter.cache.Contract.hits > 0)

let prop_contract_cache_transparent =
  QCheck.Test.make ~count:200
    ~name:"cached contract verdicts equal fresh-engine verdicts"
    arb_mini
    (fun (out_f, out_g, target, word, k) ->
      let s = mini_schema out_f out_g in
      let env = Schema.env_of_schema s in
      let target_regex = Schema.compile_content env target in
      let shared = Contract.create ~k ~s0:s ~target:s () in
      let cold_safe = Contract.is_safe shared ~target_regex word in
      let cold_possible = Contract.is_possible shared ~target_regex word in
      let warm_safe = Contract.is_safe shared ~target_regex word in
      let warm_possible = Contract.is_possible shared ~target_regex word in
      let fresh = Rewriter.create ~k ~s0:s ~target:s () in
      let fresh_safe = Rewriter.word_is_safe fresh ~target_regex word in
      let fresh_possible = Rewriter.word_is_possible fresh ~target_regex word in
      if cold_safe <> fresh_safe || warm_safe <> fresh_safe then
        QCheck.Test.fail_reportf "safe: cold=%b warm=%b fresh=%b" cold_safe
          warm_safe fresh_safe;
      if cold_possible <> fresh_possible || warm_possible <> fresh_possible then
        QCheck.Test.fail_reportf "possible: cold=%b warm=%b fresh=%b"
          cold_possible warm_possible fresh_possible;
      let st = Contract.stats shared in
      if st.Contract.hits < 2 then
        QCheck.Test.fail_reportf "expected warm lookups to hit, stats: %a"
          Contract.pp_stats st;
      true)

let prop_contract_check_parity =
  QCheck.Test.make ~count:60
    ~name:"warm contract checks match fresh-engine checks on random documents"
    QCheck.(pair (pair gen_mini_content_arb gen_mini_content_arb) small_int)
    (fun ((content0, content1), seed) ->
      let make_schema root_content =
        let s = mini_schema_base () in
        Schema.with_root (Schema.add_element s "r" root_content) "r"
      in
      let s0 = make_schema content0 in
      let target = make_schema content1 in
      let g = Generate.create ~seed ~max_depth:16 s0 in
      match Generate.document g with
      | exception Generate.Generation_failed _ -> true
      | doc ->
        let shared = Rewriter.of_contract (Contract.create ~k:1 ~s0 ~target ()) in
        let cold = Rewriter.check shared doc in
        let warm = Rewriter.check shared doc in
        let fresh = Rewriter.check (Rewriter.create ~k:1 ~s0 ~target ()) doc in
        if cold.Rewriter.failures <> fresh.Rewriter.failures
           || warm.Rewriter.failures <> fresh.Rewriter.failures then
          QCheck.Test.fail_reportf "cached failures diverge on %a" D.pp doc;
        if warm.Rewriter.cache.Contract.misses <> 0 then
          QCheck.Test.fail_reportf "re-checking the same document missed: %a"
            Contract.pp_stats warm.Rewriter.cache;
        true)

(* ------------------------------------------------------------------ *)
(* Analysis-cache accounting: FIFO reference model, domain safety      *)
(* ------------------------------------------------------------------ *)

(* One declared element [a = #data]; the analyzed words are a^i, so a
   word is identified by its length and the target regex [star a]
   accepts everything — the analyses themselves are trivial, the cache
   bookkeeping is the subject. *)
let cache_schema =
  Schema.with_root
    (Schema.add_element Schema.empty "a" (R.sym Schema.A_data))
    "a"

let cache_regex = R.star (R.sym (Symbol.Label "a"))
let cache_word len = List.init len (fun _ -> Symbol.Label "a")

let run_cache_op c = function
  | len, `Safe -> ignore (Contract.safe_analysis c ~target_regex:cache_regex (cache_word len))
  | len, `Possible ->
    ignore (Contract.possible_analysis c ~target_regex:cache_regex (cache_word len))

(* Exact sequential reference: a FIFO of resident keys, each holding
   the set of kinds already computed (both kinds of one word share the
   slot, as in the implementation). *)
let cache_reference ~capacity ops =
  let resident = ref [] in  (* oldest first: (len, kinds) *)
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
  List.iter
    (fun (len, kind) ->
      match List.assoc_opt len !resident with
      | Some kinds when List.mem kind !kinds -> incr hits
      | Some kinds -> incr misses; kinds := kind :: !kinds
      | None ->
        incr misses;
        if List.length !resident >= capacity then begin
          resident := List.tl !resident;
          incr evictions
        end;
        resident := !resident @ [ (len, ref [ kind ]) ])
    ops;
  (!hits, !misses, !evictions, List.length !resident)

let arb_cache_ops =
  QCheck.(
    pair
      (int_range 1 4)  (* capacity *)
      (small_list (pair (int_range 0 5) (oneofl [ `Safe; `Possible ]))))

let prop_cache_fifo_model =
  QCheck.Test.make ~count:300
    ~name:"cache counters match the FIFO reference model (sequential)"
    arb_cache_ops
    (fun (capacity, ops) ->
      let c =
        Contract.create ~cache_capacity:capacity ~s0:cache_schema
          ~target:cache_schema ()
      in
      List.iter
        (fun op ->
          run_cache_op c op;
          (* residency never exceeds capacity, at any point *)
          if (Contract.stats c).Contract.entries > capacity then
            QCheck.Test.fail_reportf "residency exceeded capacity %d: %a"
              capacity Contract.pp_stats (Contract.stats c))
        ops;
      let st = Contract.stats c in
      let hits, misses, evictions, entries = cache_reference ~capacity ops in
      if st.Contract.hits <> hits || st.Contract.misses <> misses
         || st.Contract.evictions <> evictions || st.Contract.entries <> entries
      then
        QCheck.Test.fail_reportf
          "model (%d/%d/%d/%d) <> cache %a (capacity %d)" hits misses
          evictions entries Contract.pp_stats st capacity;
      (* entry creations - residents = evictions, so the eviction count
         is never below the distinct-words floor *)
      if st.Contract.evictions
         < max 0
             (List.length (List.sort_uniq compare (List.map fst ops)) - capacity)
      then QCheck.Test.fail_reportf "too few evictions: %a" Contract.pp_stats st;
      true)

(* Concurrent access: [jobs] domains replay the same op list against
   one shared contract. With capacity >= distinct words nothing is
   ever evicted, and because uncached analyses are computed under the
   cache lock, each (word, kind) is computed exactly once process-wide
   — so the counters are deterministic even under interleaving. *)
let prop_cache_domain_safe =
  QCheck.Test.make ~count:60
    ~name:"cache counters stay exact under concurrent domains"
    QCheck.(
      pair (oneofl [ 2; 4 ])
        (small_list (pair (int_range 0 5) (oneofl [ `Safe; `Possible ]))))
    (fun (jobs, ops) ->
      let c =
        Contract.create ~cache_capacity:64 ~s0:cache_schema
          ~target:cache_schema ()
      in
      let domains =
        Array.init jobs (fun _ ->
            Domain.spawn (fun () -> List.iter (run_cache_op c) ops))
      in
      Array.iter Domain.join domains;
      let st = Contract.stats c in
      let distinct_words =
        List.length (List.sort_uniq compare (List.map fst ops))
      in
      let distinct_pairs = List.length (List.sort_uniq compare ops) in
      let total = jobs * List.length ops in
      if st.Contract.evictions <> 0 then
        QCheck.Test.fail_reportf "unexpected evictions: %a" Contract.pp_stats st;
      if st.Contract.entries <> distinct_words then
        QCheck.Test.fail_reportf "expected %d entries: %a" distinct_words
          Contract.pp_stats st;
      if st.Contract.misses <> distinct_pairs then
        QCheck.Test.fail_reportf "expected %d misses (one per (word, kind)): %a"
          distinct_pairs Contract.pp_stats st;
      if st.Contract.hits <> total - distinct_pairs then
        QCheck.Test.fail_reportf "expected %d hits: %a" (total - distinct_pairs)
          Contract.pp_stats st;
      true)

(* Verdicts computed at different depths through one contract must
   never alias in the analysis cache: f needs two levels (its output is
   the call g, whose output is an a), so the k=1 and k=2 answers
   differ for the same (regex, word) pair. *)
let test_contract_k_no_alias () =
  let s = Schema.empty in
  let s = Schema.add_element s "a" (R.sym Schema.A_data) in
  let s =
    Schema.add_function s
      (Schema.func "f" ~input:R.epsilon ~output:(R.sym (Schema.A_fun "g")))
  in
  let s =
    Schema.add_function s
      (Schema.func "g" ~input:R.epsilon ~output:(R.sym (Schema.A_label "a")))
  in
  let env = Schema.env_of_schema s in
  let target_regex = Schema.compile_content env (R.sym (Schema.A_label "a")) in
  let c = Contract.create ~k:1 ~s0:s ~target:s () in
  let word = [ Symbol.Fun "f" ] in
  check "unsafe at k=1" false (Contract.is_safe ~k:1 c ~target_regex word);
  check "safe at k=2" true (Contract.is_safe ~k:2 c ~target_regex word);
  check "still unsafe at k=1 (no aliasing)" false
    (Contract.is_safe ~k:1 c ~target_regex word);
  check "safe again at k=2 (cache hit, same verdict)" true
    (Contract.is_safe ~k:2 c ~target_regex word);
  let m = Contract.minimal_k ~max_k:4 c ~target_regex word in
  check "minimal safe depth is 2" true (m.Contract.safe_at = Some 2);
  check "minimal possible depth is 2" true (m.Contract.possible_at = Some 2)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_engines_match_reference;
      prop_safe_implies_possible;
      prop_safe_execution_robust;
      prop_safe_worst_at_least_possible_min;
      prop_ltr_implies_arbitrary;
      prop_k_monotone;
      prop_schema_compat_sound;
      prop_tree_materialization_sound;
      prop_contract_cache_transparent;
      prop_contract_check_parity;
      prop_cache_fifo_model;
      prop_cache_domain_safe
    ]

let () =
  Alcotest.run "core"
    [ ("paper-example",
       [ Alcotest.test_case "fork automaton of Fig. 4" `Quick test_fork_automaton_shape;
         Alcotest.test_case "safe into (**) [Fig. 5-6]" `Quick test_safe_into_star2;
         Alcotest.test_case "unsafe into (***) [Fig. 7-8]" `Quick test_unsafe_into_star3;
         Alcotest.test_case "possible into (***) [Fig. 10-11]" `Quick test_possible_into_star3;
         Alcotest.test_case "instance needs nothing" `Quick test_already_instance
       ]);
      ("tree-level",
       [ Alcotest.test_case "Fig. 2 doc is instance of (*)" `Quick test_document_instance_of_star;
         Alcotest.test_case "Fig. 2 doc not instance of (**)" `Quick test_document_not_instance_of_star2;
         Alcotest.test_case "materialize into (**)" `Quick test_materialize_fig2_into_star2;
         Alcotest.test_case "materialize into (***) possibly" `Quick test_materialize_fig2_into_star3_possible;
         Alcotest.test_case "nested parameters" `Quick test_nested_parameters;
         Alcotest.test_case "ill-typed service output" `Quick test_ill_typed_output;
         Alcotest.test_case "ill-typed offender identified" `Quick
           test_ill_typed_offender_identified;
         Alcotest.test_case "service error is typed" `Quick test_service_error_typed;
         Alcotest.test_case "give-up report keeps attempts" `Quick
           test_invocation_failed_attempts;
         Alcotest.test_case "zero-invocation invariant breach" `Quick
           test_zero_invocation_invariant
       ]);
      ("depth",
       [ Alcotest.test_case "k=1 vs k=2" `Quick test_depth_k;
         Alcotest.test_case "recursive: never safe, always possible" `Quick test_recursive_never_safe;
         Alcotest.test_case "k=0" `Quick test_depth_zero
       ]);
      ("restrictions",
       [ Alcotest.test_case "non-invocable functions" `Quick test_noninvocable ]);
      ("patterns",
       [ Alcotest.test_case "pattern members" `Quick test_pattern_members;
         Alcotest.test_case "pattern in target schema" `Quick test_pattern_in_target;
         Alcotest.test_case "wildcards" `Quick test_wildcards
       ]);
      ("mixed", [ Alcotest.test_case "mixed approach" `Quick test_mixed ]);
      ("schema-rewriting",
       [ Alcotest.test_case "compatibility verdicts" `Quick test_schema_rewriting;
         Alcotest.test_case "per-label report" `Quick test_schema_rewriting_verdicts
       ]);
      ("validation",
       [ Alcotest.test_case "violations" `Quick test_validate_violations;
         Alcotest.test_case "generated instances validate" `Quick test_generated_instances_validate;
         Alcotest.test_case "generated outputs validate" `Quick test_generated_outputs_validate
       ]);
      ("left-to-right",
       [ Alcotest.test_case "restriction witness" `Quick test_ltr_restriction_witness ]);
      ("cost",
       [ Alcotest.test_case "safe worst-case fee" `Quick test_cost_safe_worst;
         Alcotest.test_case "possible minimal fee" `Quick test_cost_possible_min;
         Alcotest.test_case "unbounded adversary" `Quick test_cost_unbounded;
         Alcotest.test_case "keeping is free" `Quick test_cost_keep_is_free;
         Alcotest.test_case "cost-guided execution" `Quick test_cost_guided_execution
       ]);
      ("engines",
       [ Alcotest.test_case "eager = lazy on the example" `Quick test_engines_agree_on_example;
         Alcotest.test_case "lazy explores less" `Quick test_lazy_explores_less
       ]);
      ("contract",
       [ Alcotest.test_case "verdicts" `Quick test_contract_verdicts;
         Alcotest.test_case "unknown contexts" `Quick test_contract_unknown_context;
         Alcotest.test_case "hit/miss counters" `Quick test_contract_counters;
         Alcotest.test_case "FIFO eviction" `Quick test_contract_eviction;
         Alcotest.test_case "word shims are cached" `Quick test_rewriter_shims_cached;
         Alcotest.test_case "unified check report" `Quick test_unified_check_report;
         Alcotest.test_case "mixed check mode" `Quick test_check_mixed_mode;
         Alcotest.test_case "shared contract" `Quick test_shared_contract;
         Alcotest.test_case "no aliasing across k" `Quick test_contract_k_no_alias
       ]);
      ("properties", qcheck_tests)
    ]
