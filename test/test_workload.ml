(* Tests for the workload engine (lib/workload): seeded mixes are
   deterministic and schema-valid, schedules slice time correctly, the
   scheduled oracle follows its fault timeline, and a short in-process
   soak produces a passing verdict and well-formed JSON. *)

module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module D = Axml_core.Document
module Validate = Axml_core.Validate
module Metrics = Axml_obs.Metrics
module Oracle = Axml_services.Oracle
module Resilience = Axml_services.Resilience
module Mix = Axml_workload.Mix
module Schedule = Axml_workload.Schedule
module Soak = Axml_workload.Soak

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let schema =
  match
    Schema_parser.parse_result
      {|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
element title = #data
element date = #data
element temp = #data
element exhibit = title.(Get_Date | date)
function Get_Temp : #data -> temp
function Get_Date : title -> date
function TimeOut : #data -> exhibit*
|}
  with
  | Ok s -> s
  | Error e -> failwith e

let take n stream = List.init n (fun _ -> Mix.next stream)

let items_equal (a : Mix.item) (b : Mix.item) =
  a.Mix.seq = b.Mix.seq
  && a.Mix.doc_name = b.Mix.doc_name
  && a.Mix.profile_name = b.Mix.profile_name
  && D.equal a.Mix.doc b.Mix.doc

(* ---------------- mixes ---------------- *)

let test_stream_deterministic () =
  let a = take 50 (Mix.stream ~seed:7 ~schema Mix.steady) in
  let b = take 50 (Mix.stream ~seed:7 ~schema Mix.steady) in
  check "same seed, item-for-item identical" true
    (List.for_all2 items_equal a b)

let prop_stream_deterministic =
  QCheck.Test.make ~count:50
    ~name:"any seed reproduces its stream" QCheck.small_int
    (fun seed ->
      let a = take 10 (Mix.stream ~seed ~schema Mix.steady) in
      let b = take 10 (Mix.stream ~seed ~schema Mix.steady) in
      List.for_all2 items_equal a b)

let test_stream_seed_sensitivity () =
  let a = take 20 (Mix.stream ~seed:1 ~schema Mix.steady) in
  let b = take 20 (Mix.stream ~seed:2 ~schema Mix.steady) in
  check "different seeds diverge" false (List.for_all2 items_equal a b)

let test_stream_documents_validate () =
  let ctx = Validate.ctx schema in
  List.iter
    (fun mix ->
      List.iter
        (fun (it : Mix.item) ->
          match Validate.document_violations ctx it.Mix.doc with
          | [] -> ()
          | v :: _ ->
            Alcotest.failf "generated %s is not an instance: %a"
              it.Mix.doc_name Validate.pp_violation v)
        (take 50 (Mix.stream ~seed:11 ~schema mix)))
    [ Mix.steady; Mix.flash_crowd ]

let test_stream_names_and_profiles () =
  let s = Mix.stream ~seed:3 ~schema Mix.steady in
  let items = take 200 s in
  check_str "names are stable per position" "w-000000"
    (List.hd items).Mix.doc_name;
  check_int "drawn counts" 200 (Mix.drawn s);
  let profiles = List.map (fun p -> p.Mix.name) (Mix.profiles Mix.steady) in
  check "every item names a profile of the mix" true
    (List.for_all
       (fun (it : Mix.item) -> List.mem it.Mix.profile_name profiles)
       items);
  (* with weights 3:1 over 200 draws, both profiles must appear *)
  check "weighted picking reaches every profile" true
    (List.for_all
       (fun p ->
         List.exists (fun (it : Mix.item) -> it.Mix.profile_name = p) items)
       profiles)

let test_stream_threaded_determinism () =
  let reference = take 60 (Mix.stream ~seed:5 ~schema Mix.steady) in
  let s = Mix.stream ~seed:5 ~schema Mix.steady in
  let results = Array.make 60 None in
  let worker () =
    for _ = 1 to 15 do
      let it = Mix.next s in
      results.(it.Mix.seq) <- Some it
    done
  in
  let threads = List.init 4 (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  List.iteri
    (fun i r ->
      match results.(i) with
      | None -> Alcotest.failf "sequence number %d never handed out" i
      | Some it ->
        if not (items_equal r it) then
          Alcotest.failf "item %d differs across threads" i)
    reference

let test_mix_validation () =
  check "empty mix rejected" true
    (match Mix.v [] with
     | _ -> false
     | exception Invalid_argument _ -> true);
  check "weight 0 rejected" true
    (match Mix.profile ~weight:0 "p" with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ---------------- schedules ---------------- *)

let test_phase_at () =
  let p name d = Schedule.phase ~duration_s:d ~mix:Mix.steady name in
  let t = Schedule.v [ p "a" 1.; p "b" 2. ] in
  let name_at e = (snd (Schedule.phase_at t e)).Schedule.name in
  check_str "first phase" "a" (name_at 0.);
  check_str "still first" "a" (name_at 0.99);
  check_str "second phase" "b" (name_at 1.5);
  check_str "past the end clamps to the last" "b" (name_at 100.);
  check_int "index moves" 1 (fst (Schedule.phase_at t 1.5));
  check "total" true (abs_float (Schedule.total_s t -. 3.) < 1e-9)

let test_fault_timeline () =
  let p name ?fault d =
    Schedule.phase ~duration_s:d ~mix:Mix.steady ?fault name
  in
  let t =
    Schedule.v [ p "a" 1.; p "b" ~fault:Schedule.Dead 2.; p "c" 1. ]
  in
  (match Schedule.fault_timeline t with
   | [ (0., Schedule.Healthy); (1., Schedule.Dead); (3., Schedule.Healthy) ] ->
     ()
   | _ -> Alcotest.fail "timeline offsets are phase starts")

let test_default_schedule () =
  let t = Schedule.default ~workers:2 ~total_s:10. () in
  check "durations sum to total" true
    (abs_float (Schedule.total_s t -. 10.) < 1e-6);
  let names = List.map (fun p -> p.Schedule.name) t.Schedule.phases in
  List.iter
    (fun n -> check (n ^ " present") true (List.mem n names))
    [ "warmup"; "steady"; "churn"; "flash"; "brownout-slow"; "brownout-dead";
      "recovery" ];
  check_int "flash crowd concurrency" 8 (Schedule.max_workers t);
  let churnless = Schedule.default ~workers:2 ~churn:false ~total_s:10. () in
  check "no churn phase when disabled" false
    (List.exists
       (fun p -> p.Schedule.exchange = `Churned)
       churnless.Schedule.phases);
  check "durations still sum to total" true
    (abs_float (Schedule.total_s churnless -. 10.) < 1e-6);
  let dead =
    List.find (fun p -> p.Schedule.name = "brownout-dead") t.Schedule.phases
  in
  check "brownout-dead kills services" true (dead.Schedule.fault = Schedule.Dead);
  check "brownout-dead is expected degraded" true dead.Schedule.expect_degraded

let test_schedule_validation () =
  check "zero duration rejected" true
    (match Schedule.phase ~duration_s:0. ~mix:Mix.steady "p" with
     | _ -> false
     | exception Invalid_argument _ -> true);
  check "empty schedule rejected" true
    (match Schedule.v [] with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* ---------------- the scheduled oracle ---------------- *)

let test_oracle_scheduled () =
  let clock = Resilience.manual_clock () in
  let a = Oracle.constant [ D.data "a" ]
  and b = Oracle.constant [ D.data "b" ]
  and c = Oracle.constant [ D.data "c" ] in
  let beh = Oracle.scheduled ~clock [ (0., a); (10., b); (20., c) ] in
  let tag () =
    match beh [] with [ d ] -> D.equal d | _ -> fun _ -> false
  in
  check "at 0 the first entry is active" true (tag () (D.data "a"));
  clock.Resilience.sleep 10.;
  check "after the switch point" true (tag () (D.data "b"));
  clock.Resilience.sleep 5.;
  check "between switch points" true (tag () (D.data "b"));
  clock.Resilience.sleep 5.;
  check "last entry sticks" true (tag () (D.data "c"));
  clock.Resilience.sleep 100.;
  check "forever" true (tag () (D.data "c"))

let test_oracle_scheduled_validation () =
  check "empty timeline rejected" true
    (try
       let _ : Axml_services.Service.behaviour = Oracle.scheduled [] in
       false
     with Invalid_argument _ -> true);
  check "timeline must start at 0" true
    (try
       let _ : Axml_services.Service.behaviour =
         Oracle.scheduled [ (5., Oracle.echo) ]
       in
       false
     with Invalid_argument _ -> true)

(* ---------------- a short in-process soak ---------------- *)

(* No sockets here (the CLI and CI cover the served path): the send
   callback simulates a peer whose flash-crowd requests cost 10x, so the
   structural verdict must pass and the report must be well-formed. *)
let test_soak_inprocess () =
  let registry = Metrics.create () in
  let resilience = Resilience.create () in
  let p name ?(workers = 2) ?(degraded = false) ~mix d =
    Schedule.phase ~duration_s:d ~workers ~think_s:0.0005 ~mix
      ~expect_degraded:degraded name
  in
  let schedule =
    Schedule.v ~seed:42
      [ p "steady" ~mix:Mix.steady 0.4;
        p "flash" ~workers:4 ~degraded:true ~mix:Mix.flash_crowd 0.3 ]
  in
  let send ~worker:_ ~(phase : Schedule.phase) (_ : Mix.item) =
    Unix.sleepf
      (if phase.Schedule.name = "flash" then 0.003 else 0.0003);
    Soak.Accepted
  in
  let config = Soak.config ~window_s:0.2 schedule in
  let windows_seen = ref 0 in
  let report =
    Soak.run ~registry
      ~on_window:(fun _ -> incr windows_seen)
      ~config ~resilience ~schema ~send ()
  in
  check "windows recorded" true (List.length report.Soak.windows >= 3);
  check_int "on_window fired per window" (List.length report.Soak.windows)
    !windows_seen;
  List.iter
    (fun name ->
      match
        List.find_opt (fun s -> s.Soak.s_name = name) report.Soak.phases
      with
      | None -> Alcotest.failf "phase %s missing from the report" name
      | Some s ->
        check (name ^ " recorded requests") true (s.Soak.s_requests > 0);
        check (name ^ " accepted everything") true
          (s.Soak.s_error_rate = 0.))
    [ "steady"; "flash" ];
  check "verdict passes" true report.Soak.verdict.Soak.pass;
  let flash_check =
    List.find
      (fun c -> c.Soak.check = "flash-p99-moved")
      report.Soak.verdict.Soak.checks
  in
  check "flash moved the p99" true flash_check.Soak.ok;
  check "10x slowdown is visible in the detail" true
    (contains flash_check.Soak.detail "factor");
  check "heap high water recorded" true
    (report.Soak.heap_high_water_words > 0);
  let json = Soak.report_to_json report in
  (match Jsonv.explain json with
   | None -> ()
   | Some why -> Alcotest.failf "report JSON does not parse: %s" why);
  List.iter
    (fun key -> check (key ^ " in JSON") true (contains json key))
    [ "\"schema_version\""; "\"windows\""; "\"phases\""; "\"verdict\"";
      "\"resilience\""; "\"heap_high_water_words\""; "\"p999\"" ];
  (* the soak metric families live in the passed registry *)
  let prom = Metrics.to_prometheus registry in
  check "latency family registered" true
    (contains prom "axml_soak_latency_seconds");
  check "request counters labeled by phase" true
    (contains prom "axml_soak_requests_total")

(* The structural verdict is deterministic: grading the same aggregates
   twice yields the same checks (exercised indirectly by running the
   JSON through the checker twice in CI; here we assert the skip logic). *)
let test_soak_verdict_skips () =
  let registry = Metrics.create () in
  let resilience = Resilience.create () in
  let schedule =
    Schedule.v
      [ Schedule.phase ~duration_s:0.2 ~workers:1 ~mix:Mix.steady "warmup" ]
  in
  let send ~worker:_ ~phase:_ (_ : Mix.item) = Soak.Accepted in
  let report =
    Soak.run ~registry
      ~config:(Soak.config ~window_s:0.1 schedule)
      ~resilience ~schema ~send ()
  in
  (* no steady/flash/fault phases: those checks must self-skip, and the
     verdict must still pass *)
  check "verdict passes without optional phases" true
    report.Soak.verdict.Soak.pass;
  List.iter
    (fun c ->
      if c.Soak.check <> "error-budget" then
        check (c.Soak.check ^ " skipped") true
          (contains c.Soak.detail "skipped"))
    report.Soak.verdict.Soak.checks

(* ---------------- suite ---------------- *)

let () =
  Alcotest.run "workload"
    [ ( "mix",
        [ Alcotest.test_case "stream determinism" `Quick
            test_stream_deterministic;
          QCheck_alcotest.to_alcotest prop_stream_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick
            test_stream_seed_sensitivity;
          Alcotest.test_case "documents validate" `Quick
            test_stream_documents_validate;
          Alcotest.test_case "names and profiles" `Quick
            test_stream_names_and_profiles;
          Alcotest.test_case "threaded determinism" `Quick
            test_stream_threaded_determinism;
          Alcotest.test_case "constructor validation" `Quick
            test_mix_validation ] );
      ( "schedule",
        [ Alcotest.test_case "phase_at" `Quick test_phase_at;
          Alcotest.test_case "fault timeline" `Quick test_fault_timeline;
          Alcotest.test_case "default schedule" `Quick test_default_schedule;
          Alcotest.test_case "validation" `Quick test_schedule_validation ] );
      ( "oracle",
        [ Alcotest.test_case "scheduled timeline" `Quick test_oracle_scheduled;
          Alcotest.test_case "scheduled validation" `Quick
            test_oracle_scheduled_validation ] );
      ( "soak",
        [ Alcotest.test_case "in-process soak" `Quick test_soak_inprocess;
          Alcotest.test_case "verdict skip logic" `Quick
            test_soak_verdict_skips ] ) ]
