(* Tests for the XML substrate (lib/xml). *)

module T = Axml_xml.Xml_tree
module P = Axml_xml.Xml_parser
module Pr = Axml_xml.Xml_print
module Ns = Axml_xml.Xml_ns
module Path = Axml_xml.Xml_path

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let parse s =
  match P.parse_result s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse failed: %s" e

let elem_of = function
  | T.Element e -> e
  | _ -> Alcotest.fail "expected an element"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_basic () =
  let t = parse "<a x=\"1\"><b>hello</b><c/></a>" in
  let a = elem_of t in
  check_str "name" "a" a.T.name;
  Alcotest.(check (option string)) "attr" (Some "1") (T.attr_value a "x");
  check_int "children" 2 (List.length a.T.children);
  (match T.child_element a "b" with
   | Some b -> check_str "text" "hello" (T.text_content b)
   | None -> Alcotest.fail "no <b>")

let test_parse_prolog_comment_pi () =
  let t =
    parse
      "<?xml version=\"1.0\"?>\n<!-- header -->\n<root><?phase two?>ok<!-- x --></root>"
  in
  let r = elem_of t in
  check_str "text keeps only data" "ok" (T.text_content r)

let test_parse_entities () =
  let t = parse "<a>&lt;b&gt; &amp; &quot;c&quot; &#65;&#x42;</a>" in
  check_str "decoded" "<b> & \"c\" AB" (T.text_content (elem_of t))

let test_parse_cdata () =
  let t = parse "<a><![CDATA[<raw> & stuff]]></a>" in
  check_str "cdata" "<raw> & stuff" (T.text_content (elem_of t))

let test_parse_doctype () =
  let t = parse "<!DOCTYPE html [ <!ENTITY x \"y\"> ]><a>z</a>" in
  check_str "after doctype" "z" (T.text_content (elem_of t))

let test_parse_nested_deep () =
  let depth = 500 in
  let doc =
    String.concat "" (List.init depth (fun _ -> "<d>"))
    ^ "x"
    ^ String.concat "" (List.init depth (fun _ -> "</d>"))
  in
  let t = parse doc in
  check_int "depth" (depth + 1) (T.depth t)

(* Regression: the parser, printer and tree traversals must all survive
   documents nested far beyond the call-stack budget (they use explicit
   work lists, one heap cell per level). *)
let test_deep_100k () =
  let depth = 100_000 in
  let doc =
    String.concat "" (List.init depth (fun _ -> "<d>"))
    ^ "x"
    ^ String.concat "" (List.init depth (fun _ -> "</d>"))
  in
  let t = parse doc in
  check_int "depth" (depth + 1) (T.depth t);
  check_int "count" (depth + 1) (T.count_nodes t);
  let printed = Pr.to_string t in
  let t2 = parse printed in
  check "reparse equal" true (T.equal t t2);
  check "strip_layout is total" true (T.equal t (T.strip_layout t));
  let nodes = T.fold (fun acc _ -> acc + 1) 0 t in
  check_int "fold visits all" (depth + 1) nodes

let test_parse_errors () =
  let bad =
    [ "<a>"; "<a></b>"; "<a x=1></a>"; "text only"; "<a></a><b></b>";
      "<a><b></a></b>"; "<a>&unknown;</a>"; "" ]
  in
  List.iter
    (fun s ->
      match P.parse_result s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error _ -> ())
    bad

let contains_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let test_error_position () =
  match P.parse_result "<a>\n  <b>\n</a>" with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e -> check "mentions line 3" true (contains_substring e "line 3")

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let doc = "<a x=\"1&amp;2\"><b>t&lt;ext</b><c/><d>mixed <e/> tail</d></a>" in
  let t = parse doc in
  let printed = Pr.to_string t in
  let t2 = parse printed in
  check "roundtrip equal" true (T.equal t t2)

let test_pretty_roundtrip () =
  let t = parse "<a><b>hello</b><c><d/></c></a>" in
  let printed = Pr.to_pretty_string ~xml_decl:true t in
  let t2 = T.strip_layout (parse printed) in
  check "pretty roundtrip equal" true (T.equal (T.strip_layout t) t2)

let test_escaping () =
  let t = T.element ~attrs:[ T.attr "k" "a\"b<c" ] "x" [ T.text "1<2&3" ] in
  check_str "escaped" "<x k=\"a&quot;b&lt;c\">1&lt;2&amp;3</x>" (Pr.to_string t)

(* "]]>" cannot appear inside one CDATA section: the printer must split
   it across two adjacent sections and the parser must coalesce them
   back into a single node. *)
let test_cdata_split () =
  let t = T.element "x" [ T.cdata "a]]>b" ] in
  let printed = Pr.to_string t in
  check_str "split form" "<x><![CDATA[a]]]]><![CDATA[>b]]></x>" printed;
  (match parse printed with
   | T.Element { children = [ T.Cdata s ]; _ } -> check_str "coalesced" "a]]>b" s
   | _ -> Alcotest.fail "expected a single CDATA child");
  (* pathological shapes: terminators at the edges, stacked brackets *)
  List.iter
    (fun s ->
      let printed = Pr.to_string (T.element "x" [ T.cdata s ]) in
      match parse printed with
      | T.Element { children = [ T.Cdata s' ]; _ } -> check_str s s s'
      | T.Element { children = []; _ } when s = "" -> ()
      | _ -> Alcotest.failf "no single CDATA child for %S" s)
    [ "]]>"; "]]>]]>"; "]]"; "]"; "x]]"; "]]>x"; "a]b]>c" ]

(* A literal U+000D would be normalized away by any conforming parser,
   so the printer must say it as "&#13;" (and the other C0 controls as
   their numeric references). *)
let test_cr_roundtrip () =
  let t = T.element "x" [ T.text "a\rb\r\nc" ] in
  let printed = Pr.to_string t in
  check_str "cr escaped" "<x>a&#13;b&#13;\nc</x>" printed;
  (match parse printed with
   | T.Element { children = [ T.Text s ]; _ } -> check_str "cr preserved" "a\rb\r\nc" s
   | _ -> Alcotest.fail "expected one text child");
  (* literal CR in the input is line-end normalization fodder *)
  (match parse "<x>a\rb\r\nc</x>" with
   | T.Element { children = [ T.Text s ]; _ } -> check_str "normalized" "a\nb\nc" s
   | _ -> Alcotest.fail "expected one text child")

let test_control_chars_roundtrip () =
  let s = "a\001b\x1fc\td" in
  let t = T.element "x" [ T.text s ] in
  (match parse (Pr.to_string t) with
   | T.Element { children = [ T.Text s' ]; _ } -> check_str "controls" s s'
   | _ -> Alcotest.fail "expected one text child")

let test_attr_whitespace_roundtrip () =
  let v = "a\tb\nc\rd\"e" in
  let t = T.element ~attrs:[ T.attr "k" v ] "x" [] in
  let printed = Pr.to_string t in
  check_str "attr refs" "<x k=\"a&#9;b&#10;c&#13;d&quot;e\"/>" printed;
  let e = elem_of (parse printed) in
  Alcotest.(check (option string)) "attr back" (Some v) (T.attr_value e "k")

(* ------------------------------------------------------------------ *)
(* Namespaces                                                          *)
(* ------------------------------------------------------------------ *)

let axml_ns = "http://www.activexml.com/ns/int"

let test_namespaces () =
  let doc =
    "<newspaper xmlns:int=\"" ^ axml_ns ^ "\">\
     <title>The Sun</title>\
     <int:fun methodName=\"Get_Temp\"/>\
     </newspaper>"
  in
  let t = parse doc in
  let found = ref [] in
  Ns.iter_elements
    (fun env e ->
      if Ns.element_is env ~uri:axml_ns ~local:"fun" e then
        found := e :: !found)
    t;
  check_int "one call node" 1 (List.length !found);
  (match !found with
   | [ e ] -> Alcotest.(check (option string)) "method" (Some "Get_Temp")
                (T.attr_value e "methodName")
   | _ -> Alcotest.fail "unexpected")

let test_default_namespace () =
  let t = parse "<a xmlns=\"urn:one\"><b/><c xmlns=\"urn:two\"><d/></c></a>" in
  let seen = ref [] in
  Ns.iter_elements
    (fun env e -> seen := (e.T.name, fst (Ns.expanded_name env e)) :: !seen)
    t;
  let lookup name = List.assoc name !seen in
  Alcotest.(check (option string)) "a" (Some "urn:one") (lookup "a");
  Alcotest.(check (option string)) "b" (Some "urn:one") (lookup "b");
  Alcotest.(check (option string)) "c" (Some "urn:two") (lookup "c");
  Alcotest.(check (option string)) "d" (Some "urn:two") (lookup "d")

(* ------------------------------------------------------------------ *)
(* Path queries                                                        *)
(* ------------------------------------------------------------------ *)

let library_doc =
  parse
    "<library><shelf id=\"1\"><book><title>A</title></book>\
     <book><title>B</title></book></shelf>\
     <shelf id=\"2\"><book><title>C</title></book></shelf></library>"

let test_path_child () =
  let titles = Path.select_strings "/library/shelf/book/title" library_doc in
  Alcotest.(check (list string)) "titles" [ "A"; "B"; "C" ] titles

let test_path_descendant () =
  let titles = Path.select_strings "//title" library_doc in
  Alcotest.(check (list string)) "titles" [ "A"; "B"; "C" ] titles;
  let books = Path.select "//book" library_doc in
  check_int "books" 3 (List.length books)

let test_path_wildcard () =
  let shelves = Path.select "/library/*" library_doc in
  check_int "shelves" 2 (List.length shelves)

let test_path_text () =
  let texts = Path.select_strings "//title/text()" library_doc in
  Alcotest.(check (list string)) "texts" [ "A"; "B"; "C" ] texts

let test_path_no_match () =
  check_int "nothing" 0 (List.length (Path.select "/library/magazine" library_doc));
  check_int "wrong root" 0 (List.length (Path.select "/nope/shelf" library_doc))

let pred_doc =
  parse
    "<store><book id=\"b1\" lang=\"en\"><title>A</title></book>\
     <book id=\"b2\" lang=\"fr\"><title>B</title></book>\
     <book id=\"b3\" lang=\"en\"><title>C</title></book></store>"

let test_path_position_pred () =
  let titles = Path.select_strings "/store/book[2]/title" pred_doc in
  Alcotest.(check (list string)) "second book" [ "B" ] titles;
  let titles = Path.select_strings "/store/book[1]/title" pred_doc in
  Alcotest.(check (list string)) "first book" [ "A" ] titles;
  check_int "out of range" 0 (List.length (Path.select "/store/book[9]" pred_doc))

let test_path_attr_pred () =
  let en = Path.select_strings "/store/book[@lang='en']/title" pred_doc in
  Alcotest.(check (list string)) "english books" [ "A"; "C" ] en;
  let b2 = Path.select_strings "//book[@id='b2']/title" pred_doc in
  Alcotest.(check (list string)) "by id" [ "B" ] b2;
  check_int "no match" 0 (List.length (Path.select "/store/book[@lang='de']" pred_doc))

let test_path_pred_combination () =
  (* position applies after the attribute filter, per predicate order *)
  let t = Path.select_strings "/store/book[@lang='en'][2]/title" pred_doc in
  Alcotest.(check (list string)) "second english book" [ "C" ] t

let test_path_pred_errors () =
  List.iter
    (fun p ->
      match Path.parse p with
      | exception Path.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected %s to be rejected" p)
    [ "/a[0]"; "/a[x]"; "/a[@k=v]"; "/a[@=1]"; "/a[1" ]

let test_path_errors () =
  (match Path.parse "relative/path" with
   | exception Path.Parse_error _ -> ()
   | _ -> Alcotest.fail "expected parse error");
  (match Path.parse "//" with
   | exception Path.Parse_error _ -> ()
   | _ -> Alcotest.fail "expected parse error")

(* ------------------------------------------------------------------ *)
(* QCheck: print/parse roundtrip over random trees                     *)
(* ------------------------------------------------------------------ *)

let gen_tree : T.t QCheck.arbitrary =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c"; "data"; "item" ] in
  let attr_gen =
    map2 (fun k v -> T.attr k v) (oneofl [ "x"; "y" ])
      (oneofl [ "1"; "two"; "<&\">"; "" ])
  in
  let text_gen = oneofl [ "hello"; "a<b"; "x & y"; "plain" ] in
  let rec gen n =
    if n <= 0 then map T.text text_gen
    else
      frequency
        [ (1, map T.text text_gen);
          (3,
           map3
             (fun name attrs children -> T.element ~attrs name children)
             name
             (list_size (int_bound 2) attr_gen)
             (list_size (int_bound 3) (gen (n / 2))))
        ]
  in
  let root =
    map3
      (fun name attrs children -> T.element ~attrs name children)
      name
      (list_size (int_bound 2) attr_gen)
      (list_size (int_bound 4) (gen 3))
  in
  QCheck.make ~print:Pr.to_string root

let prop_print_parse_roundtrip =
  QCheck.Test.make ~count:300 ~name:"print then parse is the identity"
    gen_tree
    (fun t ->
      match P.parse_result (Pr.to_string t) with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
      | Ok t' ->
        (* adjacent text nodes merge on reparse; normalize both sides by
           comparing the serialized forms *)
        String.equal (Pr.to_string t) (Pr.to_string t'))

let prop_count_nodes_positive =
  QCheck.Test.make ~count:200 ~name:"node count and depth are consistent"
    gen_tree
    (fun t -> T.count_nodes t >= 1 && T.depth t >= 1 && T.depth t <= T.count_nodes t)

(* Adversarial content: CDATA terminators, carriage returns, C0
   controls, quotes — everything the escaping rules exist for. Adjacent
   CDATA children are separated by an empty element because the parser
   (correctly) coalesces adjacent sections into one node. *)
let gen_adversarial : T.t QCheck.arbitrary =
  let open QCheck.Gen in
  let nasty =
    oneofl
      [ "]]>"; "]]"; "]"; "a]]>b"; "]]>]]>"; "\r"; "\r\n"; "a\rb";
        "\001"; "\x1f"; "a\tb\nc"; "&"; "<"; ">"; "\""; "'"; "&amp;";
        "&#13;"; "plain"; "" ]
  in
  let attr_gen = map (fun v -> T.attr "k" v) nasty in
  let leaf =
    frequency [ (2, map T.text nasty); (2, map T.cdata nasty) ]
  in
  let separate_cdata children =
    (* an empty text node prints to nothing, so it must not be allowed
       to "separate" two CDATA nodes (the printed sections would be
       adjacent and coalesce on reparse) *)
    let children = List.filter (function T.Text "" -> false | _ -> true) children in
    let rec fix = function
      | (T.Cdata _ as a) :: (T.Cdata _ :: _ as rest) ->
        a :: T.element "sep" [] :: fix rest
      | n :: rest -> n :: fix rest
      | [] -> []
    in
    fix children
  in
  let rec gen n =
    if n <= 0 then leaf
    else
      frequency
        [ (2, leaf);
          (3,
           map2
             (fun attrs children ->
               T.element ~attrs "e" (separate_cdata children))
             (list_size (int_bound 1) attr_gen)
             (list_size (int_bound 3) (gen (n / 2))))
        ]
  in
  let root =
    map
      (fun children -> T.element "root" (separate_cdata children))
      (list_size (int_bound 4) (gen 3))
  in
  QCheck.make ~print:Pr.to_string root

let prop_adversarial_roundtrip =
  QCheck.Test.make ~count:500 ~name:"adversarial print/parse roundtrip"
    gen_adversarial
    (fun t ->
      match P.parse_result (Pr.to_string t) with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
      | Ok t' ->
        (* adjacent/empty text nodes merge on reparse; compare the
           serialized forms, which are invariant under that merge *)
        String.equal (Pr.to_string t) (Pr.to_string t'))

(* Schema-driven documents (the workload generator's output) must
   survive the full Document -> XML -> string -> XML -> Document trip. *)
let roundtrip_schema =
  match
    Axml_schema.Schema_parser.parse_result
      {|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
element title = #data
element date = #data
element temp = #data
element exhibit = title.(Get_Date | date)
function Get_Temp : #data -> temp
function Get_Date : title -> date
function TimeOut : #data -> exhibit*
|}
  with
  | Ok s -> s
  | Error e -> failwith e

let prop_generated_roundtrip =
  QCheck.Test.make ~count:100 ~name:"generated documents roundtrip via XML"
    QCheck.small_int
    (fun seed ->
      let stream =
        Axml_workload.Mix.stream ~seed ~schema:roundtrip_schema
          Axml_workload.Mix.steady
      in
      List.for_all
        (fun (item : Axml_workload.Mix.item) ->
          let doc = item.doc in
          let xml = Axml_peer.Syntax.to_xml doc in
          let doc' = Axml_peer.Syntax.of_xml_string (Pr.to_string xml) in
          Axml_core.Document.equal doc doc')
        (List.init 3 (fun _ -> Axml_workload.Mix.next stream)))

let () =
  Alcotest.run "xml"
    [ ("parser",
       [ Alcotest.test_case "basic" `Quick test_parse_basic;
         Alcotest.test_case "prolog/comment/pi" `Quick test_parse_prolog_comment_pi;
         Alcotest.test_case "entities" `Quick test_parse_entities;
         Alcotest.test_case "cdata" `Quick test_parse_cdata;
         Alcotest.test_case "doctype skipped" `Quick test_parse_doctype;
         Alcotest.test_case "deep nesting" `Quick test_parse_nested_deep;
         Alcotest.test_case "100k-deep regression" `Quick test_deep_100k;
         Alcotest.test_case "errors" `Quick test_parse_errors;
         Alcotest.test_case "error positions" `Quick test_error_position
       ]);
      ("printing",
       [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
         Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
         Alcotest.test_case "escaping" `Quick test_escaping;
         Alcotest.test_case "cdata ]]> split" `Quick test_cdata_split;
         Alcotest.test_case "carriage returns" `Quick test_cr_roundtrip;
         Alcotest.test_case "control characters" `Quick test_control_chars_roundtrip;
         Alcotest.test_case "attribute whitespace" `Quick test_attr_whitespace_roundtrip
       ]);
      ("namespaces",
       [ Alcotest.test_case "int:fun detection" `Quick test_namespaces;
         Alcotest.test_case "default namespace" `Quick test_default_namespace
       ]);
      ("paths",
       [ Alcotest.test_case "child axis" `Quick test_path_child;
         Alcotest.test_case "descendant axis" `Quick test_path_descendant;
         Alcotest.test_case "wildcard" `Quick test_path_wildcard;
         Alcotest.test_case "text()" `Quick test_path_text;
         Alcotest.test_case "no match" `Quick test_path_no_match;
         Alcotest.test_case "position predicate" `Quick test_path_position_pred;
         Alcotest.test_case "attribute predicate" `Quick test_path_attr_pred;
         Alcotest.test_case "predicate combination" `Quick test_path_pred_combination;
         Alcotest.test_case "predicate errors" `Quick test_path_pred_errors;
         Alcotest.test_case "parse errors" `Quick test_path_errors
       ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_print_parse_roundtrip; prop_count_nodes_positive;
           prop_adversarial_roundtrip; prop_generated_roundtrip ])
    ]
