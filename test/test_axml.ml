(* Tests for the Active XML layer (lib/axml): wire syntax, SOAP, XML
   Schema_int, WSDL_int, policies, the Schema Enforcement module, and
   peer-to-peer exchanges. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto
module D = Axml_core.Document
module Validate = Axml_core.Validate
module Contract = Axml_core.Contract
module Rewriter = Axml_core.Rewriter
module Service = Axml_services.Service
module Registry = Axml_services.Registry
module Oracle = Axml_services.Oracle
module Resilience = Axml_services.Resilience
module Syntax = Axml_peer.Syntax
module Soap = Axml_peer.Soap
module Xml_schema_int = Axml_peer.Xml_schema_int
module Wsdl = Axml_peer.Wsdl
module Policy = Axml_peer.Policy
module Enforcement = Axml_peer.Enforcement
module Peer = Axml_peer.Peer

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Alcotest.failf "schema parse error: %s" e

let common = {|
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.(Get_Date | date)
element performance = title.date
function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
function Get_Date : title -> date
|}

let schema_star =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
|} ^ common)

let schema_star2 =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.temp.(TimeOut | exhibit*)
|} ^ common)

let schema_star3 =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.temp.exhibit*
|} ^ common)

let fig2a =
  D.elem "newspaper"
    [ D.elem "title" [ D.data "The Sun" ];
      D.elem "date" [ D.data "04/10/2002" ];
      D.call "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ];
      D.call "TimeOut" [ D.data "exhibits" ] ]

(* ------------------------------------------------------------------ *)
(* Wire syntax                                                         *)
(* ------------------------------------------------------------------ *)

let test_syntax_roundtrip () =
  let xml = Syntax.to_xml_string fig2a in
  let back = Syntax.of_xml_string xml in
  check "roundtrip" true (D.equal fig2a back)

(* The example document of Section 7, as literal XML. *)
let paper_xml = {|<?xml version="1.0"?>
<newspaper xmlns:int="http://www.activexml.com/ns/int">
  <title> The Sun </title>
  <date> 04/10/2002 </date>
  <int:fun endpointURL="http://www.forecast.com/soap"
           methodName="Get_Temp"
           namespaceURI="urn:xmethods-weather">
    <int:params>
      <int:param><city>Paris</city></int:param>
    </int:params>
  </int:fun>
  <int:fun endpointURL="http://www.timeout.com/paris"
           methodName="TimeOut"
           namespaceURI="urn:timeout-program">
    <int:params>
      <int:param>exhibits</int:param>
    </int:params>
  </int:fun>
</newspaper>|}

let test_paper_xml_parses () =
  let doc = Syntax.of_xml_string paper_xml in
  (match doc with
   | D.Elem { label = "newspaper"; children } ->
     check_int "four children" 4 (List.length children);
     (match children with
      | [ _; _; D.Call { name = "Get_Temp"; params = [ D.Elem { label = "city"; _ } ] };
          D.Call { name = "TimeOut"; params = [ D.Data _ ] } ] -> ()
      | _ -> Alcotest.failf "unexpected structure: %a" D.pp doc)
   | _ -> Alcotest.fail "expected a newspaper element")

let test_syntax_custom_prefix_ns () =
  (* a different prefix bound to the int namespace must still be a call *)
  let xml = {|<doc xmlns:axml="http://www.activexml.com/ns/int">
      <axml:fun methodName="F"/></doc>|} in
  match Syntax.of_xml_string xml with
  | D.Elem { children = [ D.Call { name = "F"; params = [] } ]; _ } -> ()
  | d -> Alcotest.failf "unexpected: %a" D.pp d

let test_syntax_errors () =
  let no_method = {|<doc xmlns:int="http://www.activexml.com/ns/int">
      <int:fun endpointURL="x"/></doc>|} in
  (match Syntax.of_xml_string no_method with
   | exception Syntax.Syntax_error _ -> ()
   | _ -> Alcotest.fail "expected Syntax_error");
  let bad_params = {|<doc xmlns:int="http://www.activexml.com/ns/int">
      <int:fun methodName="F"><int:params><bogus/></int:params></int:fun></doc>|} in
  (match Syntax.of_xml_string bad_params with
   | exception Syntax.Syntax_error _ -> ()
   | _ -> Alcotest.fail "expected Syntax_error")

(* ------------------------------------------------------------------ *)
(* SOAP                                                                *)
(* ------------------------------------------------------------------ *)

let test_soap_roundtrip () =
  let params = [ D.elem "city" [ D.data "Paris" ]; D.call "F" [ D.data "x" ] ] in
  (match Soap.decode (Soap.encode (Soap.Request { method_name = "Get_Temp"; params })) with
   | Soap.Request { method_name = "Get_Temp"; params = p } ->
     check "params preserved" true (D.equal_forest params p)
   | _ -> Alcotest.fail "bad request roundtrip");
  (match Soap.decode (Soap.encode (Soap.Response { method_name = "M"; result = [] })) with
   | Soap.Response { method_name = "M"; result = [] } -> ()
   | _ -> Alcotest.fail "bad response roundtrip");
  (match Soap.decode (Soap.encode (Soap.Fault { code = "Server"; reason = "boom" })) with
   | Soap.Fault { code = "Server"; reason = "boom" } -> ()
   | _ -> Alcotest.fail "bad fault roundtrip")

let test_soap_garbage () =
  (match Soap.decode "not xml at all <" with
   | exception Soap.Protocol_error _ -> ()
   | _ -> Alcotest.fail "expected Protocol_error");
  (match Soap.decode "<root/>" with
   | exception Soap.Protocol_error _ -> ()
   | _ -> Alcotest.fail "expected Protocol_error")

let test_soap_versioning () =
  let msg = Soap.Request { method_name = "M"; params = [] } in
  (* the current version is stamped on every envelope *)
  check "wire declares current version" true
    (Soap.wire_version (Soap.encode msg) = Some Soap.protocol_version);
  (* older versions up to the current one still decode *)
  (match Soap.decode (Soap.encode ~version:1 msg) with
   | Soap.Request { method_name = "M"; _ } -> ()
   | _ -> Alcotest.fail "version-1 envelope refused");
  (* an envelope without the attribute is the historical version 1 *)
  let legacy =
    Fmt.str
      {|<soap:Envelope xmlns:soap=%S xmlns:int=%S><soap:Body><int:request method="M"><int:args/></int:request></soap:Body></soap:Envelope>|}
      Soap.soap_ns Syntax.axml_ns
  in
  check "legacy envelope is version 1" true (Soap.wire_version legacy = Some 1);
  (match Soap.decode legacy with
   | Soap.Request { method_name = "M"; params = [] } -> ()
   | _ -> Alcotest.fail "legacy envelope refused");
  (* a future version is a typed refusal, not a generic decode error *)
  let future = Soap.encode ~version:99 msg in
  check "future version visible pre-flight" true
    (Soap.wire_version future = Some 99);
  (match Soap.decode future with
   | exception Soap.Unsupported_version { got = 99; supported } ->
     check_int "supported version" Soap.protocol_version supported
   | _ -> Alcotest.fail "expected Unsupported_version");
  (* bytes that are not XML at all have no version to report *)
  check "non-XML has no version" true (Soap.wire_version "not xml <" = None)

(* ------------------------------------------------------------------ *)
(* XML Schema_int                                                      *)
(* ------------------------------------------------------------------ *)

let newspaper_xml_schema = {|
<schema root="newspaper">
  <element name="newspaper">
    <complexType>
      <sequence>
        <element ref="title"/>
        <element ref="date"/>
        <choice>
          <function ref="Get_Temp"/>
          <element ref="temp"/>
        </choice>
        <choice>
          <function ref="TimeOut"/>
          <element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/>
        </choice>
      </sequence>
    </complexType>
  </element>
  <element name="title"><data/></element>
  <element name="date"><data/></element>
  <element name="temp"><data/></element>
  <element name="city"><data/></element>
  <element name="exhibit">
    <sequence>
      <element ref="title"/>
      <choice><function ref="Get_Date"/><element ref="date"/></choice>
    </sequence>
  </element>
  <element name="performance">
    <sequence><element ref="title"/><element ref="date"/></sequence>
  </element>
  <function name="Get_Temp" endpointURL="http://www.forecast.com/soap"
            namespaceURI="urn:xmethods-weather">
    <params><param><element ref="city"/></param></params>
    <return><element ref="temp"/></return>
  </function>
  <function name="TimeOut">
    <params><param><data/></param></params>
    <return>
      <choice minOccurs="0" maxOccurs="unbounded">
        <element ref="exhibit"/>
        <element ref="performance"/>
      </choice>
    </return>
  </function>
  <function name="Get_Date">
    <params><param><element ref="title"/></param></params>
    <return><element ref="date"/></return>
  </function>
</schema>
|}

let content_language_equal env c1 c2 =
  Auto.Dfa.equal_language
    (Auto.Dfa.of_regex (Schema.compile_content env c1))
    (Auto.Dfa.of_regex (Schema.compile_content env c2))

let test_xml_schema_int_parse () =
  let s = Xml_schema_int.of_string newspaper_xml_schema in
  Alcotest.(check (option string)) "root" (Some "newspaper") s.Schema.root;
  let env = Schema.env_of_schema s in
  let envt = Schema.env_of_schema schema_star in
  List.iter
    (fun label ->
      match Schema.find_element s label, Schema.find_element schema_star label with
      | Some c1, Some c2 ->
        let d1 = Auto.Dfa.of_regex (Schema.compile_content env c1) in
        let d2 = Auto.Dfa.of_regex (Schema.compile_content envt c2) in
        if not (Auto.Dfa.equal_language d1 d2) then
          Alcotest.failf "content of %s differs" label
      | _ -> Alcotest.failf "element %s missing" label)
    [ "newspaper"; "title"; "exhibit"; "performance" ];
  (match Schema.find_function s "Get_Temp" with
   | Some f ->
     Alcotest.(check (option string)) "endpoint"
       (Some "http://www.forecast.com/soap") f.Schema.f_endpoint
   | None -> Alcotest.fail "Get_Temp missing")

let test_xml_schema_int_roundtrip () =
  let s = Xml_schema_int.of_string newspaper_xml_schema in
  let s2 = Xml_schema_int.of_string (Xml_schema_int.to_string s) in
  let env = Schema.env_of_schema s in
  List.iter
    (fun label ->
      match Schema.find_element s label, Schema.find_element s2 label with
      | Some c1, Some c2 ->
        if not (content_language_equal env c1 c2) then
          Alcotest.failf "roundtrip changed the content of %s" label
      | _ -> Alcotest.failf "element %s lost in roundtrip" label)
    (Schema.element_names s);
  List.iter
    (fun fname ->
      match Schema.find_function s fname, Schema.find_function s2 fname with
      | Some f1, Some f2 ->
        if not (content_language_equal env f1.Schema.f_output f2.Schema.f_output)
        then Alcotest.failf "roundtrip changed the output of %s" fname
      | _ -> Alcotest.failf "function %s lost in roundtrip" fname)
    (Schema.function_names s)

let test_xml_schema_int_all () =
  let s =
    Xml_schema_int.of_string
      {|
<schema>
  <element name="mix"><all>
    <element ref="a"/><element ref="b"/><element ref="c"/>
  </all></element>
  <element name="a"><data/></element>
  <element name="b"><data/></element>
  <element name="c"><data/></element>
</schema>|}
  in
  let env = Schema.env_of_schema s in
  let dfa =
    Auto.Dfa.of_regex
      (Schema.compile_content env (Option.get (Schema.find_element s "mix")))
  in
  let w l = List.map (fun x -> Symbol.Label x) l in
  check "cab accepted" true (Auto.Dfa.accepts dfa (w [ "c"; "a"; "b" ]));
  check "abc accepted" true (Auto.Dfa.accepts dfa (w [ "a"; "b"; "c" ]));
  check "ab rejected" false (Auto.Dfa.accepts dfa (w [ "a"; "b" ]));
  check "aabc rejected" false (Auto.Dfa.accepts dfa (w [ "a"; "a"; "b"; "c" ]))

let test_xml_schema_int_errors () =
  let bad = [
    {|<schema><element name="x"><bogus/></element></schema>|};
    {|<schema><element><data/></element></schema>|};
    {|<schema><element name="x"><element ref="nope"/></element></schema>|};
    {|<notaschema/>|};
  ] in
  List.iter
    (fun text ->
      match Xml_schema_int.of_string text with
      | exception Xml_schema_int.Schema_syntax_error _ -> ()
      | _ -> Alcotest.failf "expected rejection of %s" text)
    bad

(* ------------------------------------------------------------------ *)
(* WSDL_int                                                            *)
(* ------------------------------------------------------------------ *)

let test_wsdl_roundtrip () =
  let service =
    Service.make ~endpoint:"http://www.forecast.com/soap"
      ~namespace:"urn:xmethods-weather"
      ~input:(R.sym (Schema.A_label "city"))
      ~output:(R.sym (Schema.A_label "temp"))
      "Get_Temp" (Oracle.constant [])
  in
  let descriptor = Wsdl.describe_string ~types:schema_star service in
  let f, types = Wsdl.parse_string descriptor in
  Alcotest.(check string) "name" "Get_Temp" f.Schema.f_name;
  check "city type carried" true (Option.is_some (Schema.find_element types "city"));
  (* import into a fresh schema *)
  let s = Wsdl.import Schema.empty (f, types) in
  check "imported" true (Option.is_some (Schema.find_function s "Get_Temp"));
  (* conflicting import is rejected *)
  let conflicting =
    Schema.add_function Schema.empty
      (Schema.func "Get_Temp" ~input:R.epsilon ~output:R.epsilon)
  in
  match Wsdl.import conflicting (f, types) with
  | exception Wsdl.Wsdl_error _ -> ()
  | _ -> Alcotest.fail "expected a signature conflict"

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)
(* ------------------------------------------------------------------ *)

let test_policy_extensional () =
  let projected = Policy.extensional schema_star in
  let env = Schema.env_of_schema projected in
  let envt = Schema.env_of_schema schema_star3 in
  let c1 = Option.get (Schema.find_element projected "newspaper") in
  let c2 = Option.get (Schema.find_element schema_star3 "newspaper") in
  let d1 = Auto.Dfa.of_regex (Schema.compile_content env c1) in
  let d2 = Auto.Dfa.of_regex (Schema.compile_content envt c2) in
  (* dropping all functions from the 'star' schema's newspaper type gives
     exactly the fully-extensional 'star-star-star' type *)
  check "extensional = fully materialized" true (Auto.Dfa.equal_language d1 d2)

let test_policy_restrict () =
  let projected = Policy.restrict_functions ~trust:(String.equal "TimeOut") schema_star in
  let env = Schema.env_of_schema projected in
  let envt = Schema.env_of_schema schema_star2 in
  let c1 = Option.get (Schema.find_element projected "newspaper") in
  let c2 = Option.get (Schema.find_element schema_star2 "newspaper") in
  check "trusting TimeOut only = schema 2" true
    (Auto.Dfa.equal_language
       (Auto.Dfa.of_regex (Schema.compile_content env c1))
       (Auto.Dfa.of_regex (Schema.compile_content envt c2)));
  (* the exhibit type still mentions Get_Date, which is untrusted *)
  let c = Option.get (Schema.find_element projected "exhibit") in
  let dfa = Auto.Dfa.of_regex (Schema.compile_content env c) in
  check "Get_Date erased from exhibit" false
    (Auto.Dfa.accepts dfa [ Symbol.Label "title"; Symbol.Fun "Get_Date" ]);
  check "date fine" true
    (Auto.Dfa.accepts dfa [ Symbol.Label "title"; Symbol.Label "date" ])

let test_policy_inconsistent () =
  let only_f =
    parse_schema {|
element root = F
function F : () -> ()
|}
  in
  match Policy.extensional only_f with
  | exception Policy.Empty_content "root" -> ()
  | _ -> Alcotest.fail "expected Empty_content"

let test_policy_preserve () =
  let s = Policy.preserve_functions ~keep:(String.equal "TimeOut") schema_star in
  match Schema.find_function s "TimeOut", Schema.find_function s "Get_Temp" with
  | Some t, Some g ->
    check "TimeOut frozen" false t.Schema.f_invocable;
    check "Get_Temp untouched" true g.Schema.f_invocable
  | _ -> Alcotest.fail "functions lost"

(* ------------------------------------------------------------------ *)
(* Schema Enforcement module                                           *)
(* ------------------------------------------------------------------ *)

let make_registry () =
  let reg = Registry.create () in
  Registry.register_all reg
    [ Service.make ~input:(R.sym (Schema.A_label "city"))
        ~output:(R.sym (Schema.A_label "temp")) "Get_Temp"
        (Oracle.constant [ D.elem "temp" [ D.data "15" ] ]);
      Service.make ~input:(R.sym Schema.A_data)
        ~output:
          (R.star
             (R.alt (R.sym (Schema.A_label "exhibit"))
                (R.sym (Schema.A_label "performance"))))
        "TimeOut"
        (Oracle.constant
           [ D.elem "exhibit"
               [ D.elem "title" [ D.data "Monet" ]; D.elem "date" [ D.data "now" ] ] ]);
      Service.make ~input:(R.sym (Schema.A_label "title"))
        ~output:(R.sym (Schema.A_label "date")) "Get_Date"
        (Oracle.constant [ D.elem "date" [ D.data "today" ] ])
    ];
  reg

let test_enforce_conformed () =
  let reg = make_registry () in
  match
    Enforcement.enforce ~s0:schema_star ~exchange:schema_star
      ~invoker:(Registry.invoker reg) fig2a
  with
  | Ok (doc, report) ->
    check "unchanged" true (D.equal doc fig2a);
    check "conformed" true (report.Enforcement.action = Enforcement.Conformed);
    check_int "no calls" 0 (Registry.invocation_count reg)
  | Error e -> Alcotest.failf "unexpected: %a" Enforcement.pp_error e

let test_enforce_rewritten () =
  let reg = make_registry () in
  match
    Enforcement.enforce ~s0:schema_star ~exchange:schema_star2
      ~invoker:(Registry.invoker reg) fig2a
  with
  | Ok (doc, report) ->
    check "rewritten" true (report.Enforcement.action = Enforcement.Rewritten);
    check_int "one call" 1 (Registry.invocation_count reg);
    let env = Schema.env_of_schemas schema_star schema_star2 in
    let ctx = Validate.ctx ~env schema_star2 in
    check "conforms" true (Validate.document_violations ctx doc = [])
  | Error e -> Alcotest.failf "unexpected: %a" Enforcement.pp_error e

let test_enforce_rejected () =
  let reg = make_registry () in
  match
    Enforcement.enforce ~s0:schema_star ~exchange:schema_star3
      ~invoker:(Registry.invoker reg) fig2a
  with
  | Error (Enforcement.Rejected _) ->
    check_int "no side effects before rejection" 0 (Registry.invocation_count reg)
  | Error e -> Alcotest.failf "wrong error: %a" Enforcement.pp_error e
  | Ok _ -> Alcotest.fail "expected rejection"

let test_enforce_possible_fallback () =
  let reg = make_registry () in
  let config = { Enforcement.default_config with Enforcement.fallback_possible = true } in
  match
    Enforcement.enforce ~config ~s0:schema_star ~exchange:schema_star3
      ~invoker:(Registry.invoker reg) fig2a
  with
  | Ok (doc, report) ->
    check "possible" true (report.Enforcement.action = Enforcement.Rewritten_possible);
    let env = Schema.env_of_schemas schema_star schema_star3 in
    let ctx = Validate.ctx ~env schema_star3 in
    check "conforms" true (Validate.document_violations ctx doc = [])
  | Error e -> Alcotest.failf "unexpected: %a" Enforcement.pp_error e

let test_enforce_possible_fails_at_runtime () =
  let reg = make_registry () in
  (* make TimeOut return a performance: the attempt must fail *)
  Registry.register reg
    (Service.make ~input:(R.sym Schema.A_data)
       ~output:
         (R.star
            (R.alt (R.sym (Schema.A_label "exhibit"))
               (R.sym (Schema.A_label "performance"))))
       "TimeOut"
       (Oracle.constant
          [ D.elem "performance"
              [ D.elem "title" [ D.data "Hamlet" ]; D.elem "date" [ D.data "8pm" ] ] ]));
  let config = { Enforcement.default_config with Enforcement.fallback_possible = true } in
  match
    Enforcement.enforce ~config ~s0:schema_star ~exchange:schema_star3
      ~invoker:(Registry.invoker reg) fig2a
  with
  | Error (Enforcement.Attempt_failed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Enforcement.pp_error e
  | Ok _ -> Alcotest.fail "expected a run-time failure"

(* A fully extensional exchange schema and a TimeOut service whose
   exhibits embed a Get_Date call: flattening a TimeOut result needs a
   second rewriting level. *)
let schema_extensional =
  parse_schema
    {|
root newspaper
element newspaper = title.date.temp.exhibit*
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.date
element performance = title.date
|}

let make_deep_registry () =
  let reg = make_registry () in
  Registry.register reg
    (Service.make ~input:(R.sym Schema.A_data)
       ~output:
         (R.star
            (R.alt (R.sym (Schema.A_label "exhibit"))
               (R.sym (Schema.A_label "performance"))))
       "TimeOut"
       (Oracle.constant
          [ D.elem "exhibit"
              [ D.elem "title" [ D.data "Monet" ];
                D.call "Get_Date" [ D.elem "title" [ D.data "Monet" ] ] ] ]));
  reg

(* The k=1 enforcement gap and its closure: at depth 1 a materialized
   TimeOut result is spliced as-is (footnote 5), so the embedded
   Get_Date survives enforcement and an extensional receiver would
   refuse the document; from k=2 on, the returned forest is re-enforced
   against the remaining budget and ships extensional. *)
let test_enforce_deep_k_gap () =
  let enforce ~k =
    let reg = make_deep_registry () in
    let config =
      { Enforcement.default_config with
        Enforcement.k; fallback_possible = true }
    in
    ( Enforcement.enforce ~config ~s0:schema_star ~exchange:schema_extensional
        ~invoker:(Registry.invoker reg) fig2a,
      reg )
  in
  (match enforce ~k:1 with
   | Ok (doc, _), _ ->
     check "k=1: embedded call survives (the gap)" false
       (D.calls_with_paths doc = [])
   | Error e, _ -> Alcotest.failf "k=1 unexpectedly refused: %a" Enforcement.pp_error e);
  match enforce ~k:2 with
  | Ok (doc, _), reg ->
    check "k=2: fully extensional" true (D.calls_with_paths doc = []);
    check_int "k=2: TimeOut, Get_Temp and the embedded Get_Date" 3
      (Registry.invocation_count reg);
    let env = Schema.env_of_schemas schema_star schema_extensional in
    let ctx = Validate.ctx ~env schema_extensional in
    check "k=2: receiver-side validation passes" true
      (Validate.document_violations ctx doc = [])
  | Error e, _ -> Alcotest.failf "k=2 refused: %a" Enforcement.pp_error e

(* ------------------------------------------------------------------ *)
(* Batch enforcement pipelines                                         *)
(* ------------------------------------------------------------------ *)

module Pipeline = Enforcement.Pipeline

let test_enforce_prebuilt_rewriter () =
  let reg = make_registry () in
  let rw = Rewriter.create ~s0:schema_star ~target:schema_star2 () in
  let fresh =
    Enforcement.enforce ~s0:schema_star ~exchange:schema_star2
      ~invoker:(Registry.invoker reg) fig2a
  in
  let reused =
    Enforcement.enforce ~rewriter:rw ~s0:schema_star ~exchange:schema_star2
      ~invoker:(Registry.invoker reg) fig2a
  in
  (match fresh, reused with
   | Ok (d1, r1), Ok (d2, r2) ->
     check "same document" true (D.equal d1 d2);
     check "same action" true (r1.Enforcement.action = r2.Enforcement.action)
   | _ -> Alcotest.fail "both enforcements should succeed");
  (* the prebuilt contract actually did the analysis *)
  check "contract cache used" true
    ((Contract.stats (Rewriter.contract rw)).Contract.misses > 0)

let test_pipeline_batch () =
  let reg = make_registry () in
  let p =
    Pipeline.create ~s0:schema_star ~exchange:schema_star2
      ~invoker:(Registry.invoker reg) ()
  in
  let results, batch = Pipeline.enforce_many p [ fig2a; fig2a; fig2a ] in
  check_int "three results" 3 (List.length results);
  List.iter
    (function
      | Ok (_, report) ->
        check "rewritten" true (report.Enforcement.action = Enforcement.Rewritten)
      | Error e -> Alcotest.failf "unexpected: %a" Enforcement.pp_error e)
    results;
  check_int "batch docs" 3 batch.Pipeline.docs;
  check_int "batch rewritten" 3 batch.Pipeline.rewritten;
  check_int "batch rejected" 0 batch.Pipeline.rejected;
  check_int "batch invocations" 3 batch.Pipeline.invocations;
  check "repeated docs hit the cache" true (batch.Pipeline.cache.Contract.hits > 0);
  check "throughput measured" true (batch.Pipeline.docs_per_s >= 0.);
  (* batch stats are deltas: a second batch restarts the counters *)
  let _, batch2 = Pipeline.enforce_many p [ fig2a ] in
  check_int "second batch: 1 doc" 1 batch2.Pipeline.docs;
  check_int "second batch: all cached" 0 batch2.Pipeline.cache.Contract.misses;
  (* while the cumulative stats keep the running total *)
  check_int "cumulative docs" 4 (Pipeline.stats p).Pipeline.docs;
  Pipeline.reset_stats p;
  check_int "reset" 0 (Pipeline.stats p).Pipeline.docs

let test_pipeline_outcome_counters () =
  let reg = make_registry () in
  (* star -> star3 without fallback: every doc is rejected *)
  let p =
    Pipeline.create ~s0:schema_star ~exchange:schema_star3
      ~invoker:(Registry.invoker reg) ()
  in
  let results, batch = Pipeline.enforce_many p [ fig2a; fig2a ] in
  check "all rejected" true
    (List.for_all (function Error (Enforcement.Rejected _) -> true | _ -> false)
       results);
  check_int "rejected counted" 2 batch.Pipeline.rejected;
  check_int "nothing conformed" 0 batch.Pipeline.conformed;
  (* with the fallback the same stream is rewritten possibly *)
  let config =
    { Enforcement.default_config with Enforcement.fallback_possible = true }
  in
  let p' =
    Pipeline.create ~config ~s0:schema_star ~exchange:schema_star3
      ~invoker:(Registry.invoker reg) ()
  in
  let _, batch' = Pipeline.enforce_many p' [ fig2a; fig2a ] in
  check_int "possible rewrites counted" 2 batch'.Pipeline.rewritten_possible;
  (* and an already-conforming stream counts as conformed *)
  let p'' =
    Pipeline.create ~s0:schema_star ~exchange:schema_star
      ~invoker:(Registry.invoker reg) ()
  in
  let _, batch'' = Pipeline.enforce_many p'' [ fig2a ] in
  check_int "conformed counted" 1 batch''.Pipeline.conformed

let test_pipeline_min_k_stats () =
  let reg = make_registry () in
  (* off by default: the stats stay all-zero *)
  let p =
    Pipeline.create ~s0:schema_star ~exchange:schema_star2
      ~invoker:(Registry.invoker reg) ()
  in
  let _, batch = Pipeline.enforce_many p [ fig2a ] in
  check_int "off by default" 0 batch.Pipeline.min_k.Pipeline.measured;
  check "off by default: empty distribution" true
    (batch.Pipeline.min_k.Pipeline.distribution = []);
  (* on: one statically-conforming doc (depth 0) and two needing one
     materialization level each *)
  let conformed =
    D.elem "newspaper"
      [ D.elem "title" [ D.data "t" ];
        D.elem "date" [ D.data "d" ];
        D.elem "temp" [ D.data "15" ] ]
  in
  let config =
    { Enforcement.default_config with Enforcement.track_min_k = true }
  in
  let p' =
    Pipeline.create ~config ~s0:schema_star ~exchange:schema_star2
      ~invoker:(Registry.invoker reg) ()
  in
  let _, batch' = Pipeline.enforce_many p' [ fig2a; conformed; fig2a ] in
  let m = batch'.Pipeline.min_k in
  check_int "three measured" 3 m.Pipeline.measured;
  check_int "none over budget" 0 m.Pipeline.unbounded;
  check "distribution: one at 0, two at 1" true
    (m.Pipeline.distribution = [ (0, 1); (1, 2) ])

let test_pipeline_seq () =
  let reg = make_registry () in
  let p =
    Pipeline.create ~s0:schema_star ~exchange:schema_star2
      ~invoker:(Registry.invoker reg) ()
  in
  let stream = Pipeline.enforce_seq p (List.to_seq [ fig2a; fig2a ]) in
  check_int "lazy: nothing enforced yet" 0 (Pipeline.stats p).Pipeline.docs;
  let forced = List.of_seq stream in
  check_int "consumed: both enforced" 2 (Pipeline.stats p).Pipeline.docs;
  check "both ok" true (List.for_all Result.is_ok forced)

let test_pipeline_of_contract () =
  let reg = make_registry () in
  let c = Contract.create ~s0:schema_star ~target:schema_star2 () in
  (* pre-warm the contract through a rewriter view *)
  ignore (Rewriter.check (Rewriter.of_contract c) fig2a);
  let p = Pipeline.of_contract ~invoker:(Registry.invoker reg) c in
  check "shares the contract" true (Pipeline.contract p == c);
  let _, batch = Pipeline.enforce_many p [ fig2a ] in
  check_int "pre-warmed: no misses" 0 batch.Pipeline.cache.Contract.misses;
  check "pre-warmed: hits" true (batch.Pipeline.cache.Contract.hits > 0)

(* A pipeline config with a deterministic (manual-clock, jitter-free)
   resilience guard. *)
let resilient_config ?(fallback = false) ?(retries = 3) ?(threshold = 5) () =
  let guard =
    Resilience.create
      ~policy:
        (Resilience.policy ~max_retries:retries ~backoff_s:0.001 ~jitter:0.
           ~breaker_threshold:threshold ())
      ~clock:(Resilience.manual_clock ()) ()
  in
  { Enforcement.default_config with
    Enforcement.resilience = Some guard; fallback_possible = fallback }

let test_pipeline_flaky_recovers () =
  let reg = make_registry () in
  (* every second Get_Temp call throws; retries absorb the faults *)
  Registry.register reg
    (Service.make ~input:(R.sym (Schema.A_label "city"))
       ~output:(R.sym (Schema.A_label "temp")) "Get_Temp"
       (Oracle.flaky ~period:2
          (Oracle.constant [ D.elem "temp" [ D.data "15" ] ])));
  let p =
    Pipeline.create ~config:(resilient_config ()) ~s0:schema_star
      ~exchange:schema_star2 ~invoker:(Registry.invoker reg) ()
  in
  let results, batch = Pipeline.enforce_many p [ fig2a; fig2a; fig2a; fig2a ] in
  check "all rewritten despite the flaky service" true
    (List.for_all Result.is_ok results);
  check_int "no faults surfaced" 0 batch.Pipeline.faults;
  check "retries recorded" true (batch.Pipeline.resilience.Resilience.retries > 0);
  check_int "every doc's call eventually succeeded" 4
    batch.Pipeline.resilience.Resilience.successes;
  check_int "nothing gave up" 0 batch.Pipeline.resilience.Resilience.gave_up

let test_pipeline_survives_dead_service () =
  let reg = make_registry () in
  Registry.register reg
    (Service.make ~input:(R.sym (Schema.A_label "city"))
       ~output:(R.sym (Schema.A_label "temp")) "Get_Temp"
       (Oracle.failing "weather service down"));
  let p =
    Pipeline.create
      ~config:(resilient_config ~retries:1 ~threshold:2 ())
      ~s0:schema_star ~exchange:schema_star2 ~invoker:(Registry.invoker reg) ()
  in
  let docs = [ fig2a; fig2a; fig2a; fig2a ] in
  let results, batch = Pipeline.enforce_many p docs in
  check_int "the batch still produced every outcome" 4 (List.length results);
  List.iter
    (function
      | Error (Enforcement.Service_fault fs) ->
        check "classified as a fault" true
          (List.for_all Rewriter.failure_is_fault fs)
      | Error e -> Alcotest.failf "wrong error: %a" Enforcement.pp_error e
      | Ok _ -> Alcotest.fail "expected a service fault")
    results;
  (match results with
   | Error (Enforcement.Service_fault (f :: _)) :: _ ->
     (match f.Rewriter.reason with
      | Rewriter.Service_failure { fname = "Get_Temp"; attempts = 2; _ } -> ()
      | r -> Alcotest.failf "wrong reason: %a" Rewriter.pp_reason r)
   | _ -> Alcotest.fail "expected a Service_failure on the first document");
  check_int "faults counted" 4 batch.Pipeline.faults;
  check_int "faults are not rejections" 0 batch.Pipeline.rejected;
  let r = batch.Pipeline.resilience in
  check "gave up at least once" true (r.Resilience.gave_up >= 1);
  check_int "breaker tripped" 1 r.Resilience.trips;
  check "later docs short-circuited" true (r.Resilience.short_circuited > 0)

let test_pipeline_ill_typed_service_fault () =
  let reg = make_registry () in
  Registry.register reg
    (Service.make ~input:(R.sym (Schema.A_label "city"))
       ~output:(R.sym (Schema.A_label "temp")) "Get_Temp"
       (Oracle.constant [ D.elem "bogus" [] ]));
  let p =
    Pipeline.create ~config:(resilient_config ()) ~s0:schema_star
      ~exchange:schema_star2 ~invoker:(Registry.invoker reg) ()
  in
  let results, batch = Pipeline.enforce_many p [ fig2a ] in
  (match results with
   | [ Error (Enforcement.Service_fault [ f ]) ] ->
     (match f.Rewriter.reason with
      | Rewriter.Ill_typed_service { fname = "Get_Temp"; _ } -> ()
      | r -> Alcotest.failf "wrong reason: %a" Rewriter.pp_reason r)
   | _ -> Alcotest.fail "expected an ill-typed service fault");
  check_int "fault counted" 1 batch.Pipeline.faults

let test_pipeline_fault_skips_possible_fallback () =
  (* a broken service is not evidence that the document needs a possible
     rewriting: the fault must surface as-is even with the fallback on *)
  let reg = make_registry () in
  Registry.register reg
    (Service.make ~input:(R.sym (Schema.A_label "city"))
       ~output:(R.sym (Schema.A_label "temp")) "Get_Temp"
       (Oracle.failing "down"));
  let p =
    Pipeline.create
      ~config:(resilient_config ~fallback:true ~retries:0 ())
      ~s0:schema_star ~exchange:schema_star2 ~invoker:(Registry.invoker reg) ()
  in
  let results, batch = Pipeline.enforce_many p [ fig2a ] in
  (match results with
   | [ Error (Enforcement.Service_fault _) ] -> ()
   | [ Error e ] -> Alcotest.failf "wrong error: %a" Enforcement.pp_error e
   | _ -> Alcotest.fail "expected a service fault");
  check_int "no possible rewriting attempted" 0 batch.Pipeline.rewritten_possible;
  check_int "no attempt failure either" 0 batch.Pipeline.attempt_failed

let test_peer_exchange_pipeline_cached () =
  let sender = Peer.create ~name:"newspaper.com" ~schema:schema_star () in
  Registry.register_all (Peer.registry sender)
    [ Service.make ~input:(R.sym (Schema.A_label "city"))
        ~output:(R.sym (Schema.A_label "temp")) "Get_Temp"
        (Oracle.constant [ D.elem "temp" [ D.data "15" ] ]) ];
  let receiver = Peer.create ~name:"reader" ~schema:schema_star2 () in
  let p1 = Peer.exchange_pipeline sender ~exchange:schema_star2 in
  let p2 = Peer.exchange_pipeline sender ~exchange:schema_star2 in
  check "pipeline cached per exchange schema" true (p1 == p2);
  (* repeated sends of the same agreement ride one contract cache *)
  (match
     Peer.send sender ~receiver ~exchange:schema_star2 ~as_name:"a" fig2a
   with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "send failed: %a" Enforcement.pp_error e);
  let after_one = (Pipeline.stats p1).Pipeline.cache in
  (match
     Peer.send sender ~receiver ~exchange:schema_star2 ~as_name:"b" fig2a
   with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "send failed: %a" Enforcement.pp_error e);
  let after_two = (Pipeline.stats p1).Pipeline.cache in
  check_int "second send: pure cache hits"
    after_one.Contract.misses after_two.Contract.misses;
  check "second send: hits grew" true
    (after_two.Contract.hits > after_one.Contract.hits);
  check_int "pipeline counted both sends" 2 (Pipeline.stats p1).Pipeline.docs;
  (* changing the enforcement config invalidates the compiled pipeline *)
  Peer.set_enforcement sender
    { Enforcement.default_config with Enforcement.fallback_possible = true };
  let p3 = Peer.exchange_pipeline sender ~exchange:schema_star2 in
  check "invalidated after set_enforcement" true (p3 != p1)

(* ------------------------------------------------------------------ *)
(* Peers                                                               *)
(* ------------------------------------------------------------------ *)

let test_peer_call_through_soap () =
  let provider = Peer.create ~name:"timeout.com" ~schema:schema_star () in
  Peer.store provider "exhibits"
    (D.elem "listing" [ D.elem "exhibit"
                          [ D.elem "title" [ D.data "Monet" ];
                            D.elem "date" [ D.data "now" ] ] ]);
  Peer.provide provider ~name:"List_Exhibits" ~input:(R.sym Schema.A_data)
    ~output:(R.star (R.sym (Schema.A_label "exhibit")))
    (Peer.Repository_path { doc = "exhibits"; path = "/listing/exhibit" });
  let client = Peer.create ~name:"newspaper.com" ~schema:schema_star () in
  Peer.connect client ~provider;
  let result = Peer.call client "List_Exhibits" [ D.data "all" ] in
  (match result with
   | [ D.Elem { label = "exhibit"; _ } ] -> ()
   | _ -> Alcotest.failf "unexpected result: %a" D.pp_forest result);
  check "WSDL imported" true
    (Option.is_some (Schema.find_function (Peer.schema client) "List_Exhibits"))

let test_peer_serve_enforces_output () =
  (* the provider's repository holds an intensional document; serving a
     request whose output type is extensional forces materialization *)
  let provider = Peer.create ~name:"newspaper.com" ~schema:schema_star () in
  Registry.register_all (Peer.registry provider)
    [ Service.make ~input:(R.sym (Schema.A_label "city"))
        ~output:(R.sym (Schema.A_label "temp")) "Get_Temp"
        (Oracle.constant [ D.elem "temp" [ D.data "15" ] ]) ];
  Peer.store provider "front-page" fig2a;
  Peer.provide provider ~name:"Temperature" ~input:(R.sym Schema.A_data)
    ~output:(R.sym (Schema.A_label "temp"))
    (Peer.Compute
       (fun _ ->
         Peer.select provider ~doc:"front-page" ~path:"/newspaper/*"
         |> List.filter (fun d ->
                match D.symbol d with
                | Symbol.Fun "Get_Temp" | Symbol.Label "temp" -> true
                | _ -> false)));
  let client = Peer.create ~name:"reader" ~schema:schema_star () in
  Peer.connect client ~provider;
  match Peer.call client "Temperature" [ D.data "q" ] with
  | [ D.Elem { label = "temp"; _ } ] -> ()
  | other -> Alcotest.failf "expected a materialized temp, got %a" D.pp_forest other

let test_peer_send_document () =
  let sender = Peer.create ~name:"newspaper.com" ~schema:schema_star () in
  Registry.register_all (Peer.registry sender)
    [ Service.make ~input:(R.sym (Schema.A_label "city"))
        ~output:(R.sym (Schema.A_label "temp")) "Get_Temp"
        (Oracle.constant [ D.elem "temp" [ D.data "15" ] ]) ];
  let receiver = Peer.create ~name:"reader" ~schema:schema_star2 () in
  match
    Peer.send sender ~receiver ~exchange:schema_star2 ~as_name:"front-page" fig2a
  with
  | Ok outcome ->
    check "bytes counted" true (outcome.Peer.wire_bytes > 0);
    let stored = Peer.fetch receiver "front-page" in
    let env = Schema.env_of_schemas schema_star schema_star2 in
    let ctx = Validate.ctx ~env schema_star2 in
    check "stored copy conforms" true (Validate.document_violations ctx stored = [])
  | Error e -> Alcotest.failf "send failed: %a" Enforcement.pp_error e

let test_peer_version_mismatch_fault () =
  let provider = Peer.create ~name:"p" ~schema:schema_star () in
  let wire =
    Soap.encode ~version:99
      (Soap.Request { method_name = "Get_Temp"; params = [] })
  in
  match Soap.decode (Peer.handle_wire provider wire) with
  | Soap.Fault { code = "VersionMismatch"; _ } -> ()
  | _ -> Alcotest.fail "expected a VersionMismatch fault"

let test_peer_configure () =
  let peer = Peer.create ~name:"p" ~schema:schema_star () in
  let d = Peer.default_config in
  let c = Peer.current_config peer in
  check_int "default k" d.Peer.k c.Peer.k;
  check_int "default jobs" d.Peer.jobs c.Peer.jobs;
  check "no fallback by default" false c.Peer.fallback_possible;
  (* compiled artifacts are cached while the config is stable... *)
  let p1 = Peer.exchange_pipeline peer ~exchange:schema_star2 in
  check "pipeline cached" true (p1 == Peer.exchange_pipeline peer ~exchange:schema_star2);
  (* ...and configure replaces the whole record atomically and
     invalidates them *)
  Peer.configure peer { d with Peer.k = 3; jobs = 4; fallback_possible = true };
  let c = Peer.current_config peer in
  check_int "k applied" 3 c.Peer.k;
  check_int "jobs applied" 4 c.Peer.jobs;
  check "fallback applied" true c.Peer.fallback_possible;
  check "configure invalidates compiled pipelines" true
    (p1 != Peer.exchange_pipeline peer ~exchange:schema_star2);
  (* the deprecated shims are views over configure: each touches its own
     field and preserves the rest *)
  Peer.set_jobs peer 2;
  let c = Peer.current_config peer in
  check_int "set_jobs only touches jobs" 3 c.Peer.k;
  check_int "set_jobs applied" 2 c.Peer.jobs;
  check "set_jobs keeps fallback" true c.Peer.fallback_possible;
  Peer.set_resilience peer (Some (Resilience.create ()));
  let c = Peer.current_config peer in
  check_int "set_resilience keeps jobs" 2 c.Peer.jobs;
  check "set_resilience installs the guard" true
    (Option.is_some c.Peer.resilience);
  check "set_resilience keeps fallback" true c.Peer.fallback_possible

let test_peer_unknown_service_fault () =
  let provider = Peer.create ~name:"p" ~schema:schema_star () in
  let client = Peer.create ~name:"c" ~schema:schema_star () in
  Peer.connect client ~provider;
  (* call directly through the wire: unknown method must fault *)
  let wire = Soap.encode (Soap.Request { method_name = "Nope"; params = [] }) in
  match Soap.decode (Peer.handle_wire provider wire) with
  | Soap.Fault { code = "Client"; _ } -> ()
  | _ -> Alcotest.fail "expected a fault"

(* ------------------------------------------------------------------ *)
(* Negotiation                                                         *)
(* ------------------------------------------------------------------ *)

module Negotiation = Axml_peer.Negotiation

let test_negotiation_first_fit () =
  let proposals =
    [ { Negotiation.name = "too strict"; schema = schema_star3 };
      { Negotiation.name = "fits"; schema = schema_star2 };
      { Negotiation.name = "also fits, but later"; schema = schema_star } ]
  in
  match Negotiation.negotiate ~s0:schema_star ~root:"newspaper" proposals with
  | Ok agreement ->
    Alcotest.(check string) "first fit wins" "fits"
      agreement.Negotiation.chosen.Negotiation.name;
    check_int "one rejection" 1 (List.length agreement.Negotiation.rejected);
    (match agreement.Negotiation.rejected with
     | [ r ] -> Alcotest.(check string) "rejected name" "too strict" r.Negotiation.proposal
     | _ -> Alcotest.fail "unexpected rejections")
  | Error _ -> Alcotest.fail "expected an agreement"

let test_negotiation_no_agreement () =
  let proposals =
    [ { Negotiation.name = "only the strict one"; schema = schema_star3 } ]
  in
  match Negotiation.negotiate ~s0:schema_star ~root:"newspaper" proposals with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error rejections ->
    check_int "one rejection" 1 (List.length rejections);
    check "reports the culprit label" true
      (List.exists
         (fun r ->
           List.exists
             (fun (v : Axml_core.Schema_rewrite.label_verdict) ->
               v.Axml_core.Schema_rewrite.label = "newspaper")
             r.Negotiation.verdicts)
         rejections)

(* ------------------------------------------------------------------ *)
(* XML Schema_int roundtrip on random schemas                          *)
(* ------------------------------------------------------------------ *)

let gen_content : Schema.content QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    map R.sym
      (oneofl
         [ Schema.A_label "a"; Schema.A_label "b"; Schema.A_fun "f";
           Schema.A_data ])
  in
  let rec gen n =
    if n <= 0 then atom
    else
      frequency
        [ (3, atom);
          (2, map2 R.seq (gen (n / 2)) (gen (n / 2)));
          (2, map2 R.alt (gen (n / 2)) (gen (n / 2)));
          (1, map R.star (gen (n - 1)));
          (1, map R.plus (gen (n - 1)));
          (1, map R.opt (gen (n - 1)))
        ]
  in
  gen 5

let arb_random_schema =
  let gen =
    let open QCheck.Gen in
    let* root_content = gen_content in
    let* out_f = gen_content in
    let s = Schema.empty in
    let s = Schema.add_element s "r" root_content in
    let s = Schema.add_element s "a" (R.sym Schema.A_data) in
    let s = Schema.add_element s "b" (R.sym Schema.A_data) in
    let s = Schema.add_function s (Schema.func "f" ~input:R.epsilon ~output:out_f) in
    return (Schema.with_root s "r")
  in
  QCheck.make ~print:(Fmt.str "%a" Schema.pp) gen

let prop_xml_schema_int_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"XML Schema_int printing/parsing preserves every content language"
    arb_random_schema
    (fun s ->
      let s2 =
        try Xml_schema_int.of_string (Xml_schema_int.to_string s)
        with Xml_schema_int.Schema_syntax_error m ->
          QCheck.Test.fail_reportf "reparse failed: %s" m
      in
      let env = Schema.env_of_schema s in
      List.for_all
        (fun label ->
          match Schema.find_element s label, Schema.find_element s2 label with
          | Some c1, Some c2 -> content_language_equal env c1 c2
          | _ -> false)
        (Schema.element_names s)
      && (match Schema.find_function s "f", Schema.find_function s2 "f" with
          | Some f1, Some f2 ->
            content_language_equal env f1.Schema.f_output f2.Schema.f_output
          | _ -> false))

(* ------------------------------------------------------------------ *)
(* Parallel batch enforcement                                          *)
(* ------------------------------------------------------------------ *)

module Generate = Axml_core.Generate

(* Results rendered for exact comparison: the document wire syntax on
   success, the printed error otherwise. *)
let render_result = function
  | Ok (doc, (report : Enforcement.report)) ->
    Printf.sprintf "%s#%d"
      (Syntax.to_xml_string ~pretty:false doc)
      (List.length report.Enforcement.invocations)
  | Error e -> Fmt.str "%a" Enforcement.pp_error e

let prop_parallel_matches_sequential =
  QCheck.Test.make ~count:25
    ~name:
      "enforce_parallel returns sequential results in input order (honest \
       services)"
    QCheck.(pair (oneofl [ 1; 2; 4 ]) small_int)
    (fun (jobs, seed) ->
      let g = Generate.create ~seed schema_star in
      let docs = List.init 24 (fun _ -> Generate.document g) in
      let config =
        { Enforcement.default_config with
          Enforcement.fallback_possible = true }
      in
      let sequential =
        let p =
          Pipeline.create ~config ~s0:schema_star ~exchange:schema_star2
            ~invoker:(Registry.invoker (make_registry ())) ()
        in
        fst (Pipeline.enforce_many p docs)
      in
      let p =
        Pipeline.create ~config ~s0:schema_star ~exchange:schema_star2
          ~invoker:(Registry.invoker (make_registry ())) ()
      in
      let parallel, batch = Pipeline.enforce_parallel p ~jobs docs in
      if batch.Pipeline.docs <> 24 then
        QCheck.Test.fail_reportf "batch counted %d docs" batch.Pipeline.docs;
      List.iteri
        (fun i (s, q) ->
          let s = render_result s and q = render_result q in
          if not (String.equal s q) then
            QCheck.Test.fail_reportf
              "jobs=%d: result %d diverges:@.sequential: %s@.parallel:   %s"
              jobs i s q)
        (List.combine sequential parallel);
      true)

(* The executor config routes enforce_many through the parallel path. *)
let test_parallel_executor_config () =
  let config =
    { Enforcement.default_config with
      Enforcement.executor = Enforcement.Parallel { jobs = 2 } }
  in
  let p =
    Pipeline.create ~config ~s0:schema_star ~exchange:schema_star2
      ~invoker:(Registry.invoker (make_registry ())) ()
  in
  let results, batch = Pipeline.enforce_many p [ fig2a; fig2a; fig2a; fig2a ] in
  check_int "four results" 4 (List.length results);
  check "all rewritten" true
    (List.for_all
       (function
         | Ok (_, r) -> r.Enforcement.action = Enforcement.Rewritten
         | Error _ -> false)
       results);
  check_int "batch docs" 4 batch.Pipeline.docs;
  (* only Get_Temp is materialized (TimeOut may stay intensional under
     the exchange schema): one invocation per document *)
  check_int "batch invocations" 4 batch.Pipeline.invocations;
  (* the merged cache view spans the shared contract and the clones *)
  check "cache activity merged" true
    (batch.Pipeline.cache.Contract.misses > 0
     || batch.Pipeline.cache.Contract.hits > 0)

(* A breaker tripped by whichever domain fails first is observed by the
   other: with a permanently-dead service, two domains and a threshold
   of 2, most of the batch must be short-circuited rather than
   attempted. *)
let test_parallel_breaker_shared () =
  let reg = make_registry () in
  Registry.register reg
    (Service.make ~input:(R.sym (Schema.A_label "city"))
       ~output:(R.sym (Schema.A_label "temp")) "Get_Temp"
       (Oracle.failing "permanently down"));
  let guard =
    Resilience.create
      ~policy:
        (Resilience.policy ~max_retries:0 ~breaker_threshold:2
           ~breaker_cooldown_s:3600. ())
      ()
  in
  let config =
    { Enforcement.default_config with Enforcement.resilience = Some guard }
  in
  let p =
    Pipeline.create ~config ~s0:schema_star ~exchange:schema_star2
      ~invoker:(Registry.invoker reg) ()
  in
  let docs = List.init 12 (fun _ -> fig2a) in
  let results, batch = Pipeline.enforce_parallel p ~jobs:2 docs in
  check "every document faulted" true
    (List.for_all
       (function Error (Enforcement.Service_fault _) -> true | _ -> false)
       results);
  let r = Resilience.stats guard "Get_Temp" in
  check "breaker tripped" true (r.Resilience.trips >= 1);
  check "other domains short-circuited" true (r.Resilience.short_circuited > 0);
  check "attempts stopped after the trip" true
    (r.Resilience.attempts < List.length docs);
  check_int "faults counted" 12 batch.Pipeline.faults

let axml_qcheck =
  List.map QCheck_alcotest.to_alcotest
    [ prop_xml_schema_int_roundtrip; prop_parallel_matches_sequential ]

(* ------------------------------------------------------------------ *)
(* Persistent storage                                                  *)
(* ------------------------------------------------------------------ *)

module Storage = Axml_peer.Storage

let test_storage_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "axml_store_test" in
  (* fresh directory *)
  if Sys.file_exists dir then begin
    let rec rm path =
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    in
    rm dir
  end;
  let peer = Peer.create ~name:"publisher" ~schema:schema_star () in
  Peer.store peer "front-page" fig2a;
  Peer.store peer "weird name/with:stuff" (D.elem "title" [ D.data "x" ]);
  Storage.save_peer ~dir peer;
  let loaded = Storage.load_peer ~dir ~name:"publisher-copy" () in
  Alcotest.(check (list string)) "documents"
    [ "front-page"; "weird name/with:stuff" ]
    (Peer.documents loaded);
  check "front page intact" true (D.equal fig2a (Peer.fetch loaded "front-page"));
  (* the reloaded schema still validates the reloaded document *)
  let ctx = Validate.ctx (Peer.schema loaded) in
  check "still an instance" true
    (Validate.violations ctx (Peer.fetch loaded "front-page") = [])

let test_storage_name_codec () =
  List.iter
    (fun name ->
      Alcotest.(check string) name name (Storage.decode_name (Storage.encode_name name)))
    [ "plain"; "with space"; "a/b:c%d"; ""; "\xc3\xa9t\xc3\xa9" ]

let test_storage_errors () =
  (match Storage.load_peer ~dir:"/nonexistent-dir-xyz" ~name:"x" () with
   | exception Storage.Storage_error _ -> ()
   | _ -> Alcotest.fail "expected Storage_error")

let test_peer_select_with_predicates () =
  let peer = Peer.create ~name:"library" ~schema:schema_star () in
  Peer.store peer "listing"
    (D.elem "listing"
       [ D.elem "exhibit" [ D.elem "title" [ D.data "Monet" ];
                            D.elem "date" [ D.data "june" ] ];
         D.elem "exhibit" [ D.elem "title" [ D.data "Picasso" ];
                            D.elem "date" [ D.data "july" ] ] ]);
  (match Peer.select peer ~doc:"listing" ~path:"/listing/exhibit[2]/title" with
   | [ D.Elem { label = "title"; children = [ D.Data "Picasso" ] } ] -> ()
   | other -> Alcotest.failf "unexpected: %a" D.pp_forest other);
  check_int "all exhibits" 2
    (List.length (Peer.select peer ~doc:"listing" ~path:"//exhibit"))

let test_peer_three_hop () =
  (* source -> aggregator -> client: the aggregator's provided service
     calls the source through its own registry, so a client call crosses
     two SOAP hops *)
  let source = Peer.create ~name:"source" ~schema:schema_star () in
  Peer.provide source ~name:"Raw_Temp" ~input:(R.sym Schema.A_data)
    ~output:(R.sym (Schema.A_label "temp"))
    (Peer.Const [ D.elem "temp" [ D.data "15" ] ]);
  let aggregator = Peer.create ~name:"aggregator" ~schema:schema_star () in
  Peer.connect aggregator ~provider:source;
  Peer.provide aggregator ~name:"Nice_Temp" ~input:(R.sym Schema.A_data)
    ~output:(R.sym (Schema.A_label "temp"))
    (Peer.Compute (fun params -> Peer.call aggregator "Raw_Temp" params));
  let client = Peer.create ~name:"client" ~schema:schema_star () in
  Peer.connect client ~provider:aggregator;
  match Peer.call client "Nice_Temp" [ D.data "q" ] with
  | [ D.Elem { label = "temp"; children = [ D.Data "15" ] } ] ->
    check_int "aggregator accounted one upstream call" 1
      (Axml_services.Registry.invocation_count (Peer.registry aggregator))
  | other -> Alcotest.failf "unexpected: %a" D.pp_forest other

let () =
  Alcotest.run "axml"
    [ ("syntax",
       [ Alcotest.test_case "roundtrip" `Quick test_syntax_roundtrip;
         Alcotest.test_case "paper XML parses" `Quick test_paper_xml_parses;
         Alcotest.test_case "custom prefix" `Quick test_syntax_custom_prefix_ns;
         Alcotest.test_case "errors" `Quick test_syntax_errors
       ]);
      ("soap",
       [ Alcotest.test_case "roundtrip" `Quick test_soap_roundtrip;
         Alcotest.test_case "garbage" `Quick test_soap_garbage;
         Alcotest.test_case "versioning" `Quick test_soap_versioning
       ]);
      ("xml-schema-int",
       [ Alcotest.test_case "parse newspaper schema" `Quick test_xml_schema_int_parse;
         Alcotest.test_case "roundtrip" `Quick test_xml_schema_int_roundtrip;
         Alcotest.test_case "all compositor" `Quick test_xml_schema_int_all;
         Alcotest.test_case "errors" `Quick test_xml_schema_int_errors
       ]);
      ("wsdl", [ Alcotest.test_case "roundtrip + import" `Quick test_wsdl_roundtrip ]);
      ("policy",
       [ Alcotest.test_case "extensional" `Quick test_policy_extensional;
         Alcotest.test_case "restrict" `Quick test_policy_restrict;
         Alcotest.test_case "inconsistent" `Quick test_policy_inconsistent;
         Alcotest.test_case "preserve" `Quick test_policy_preserve
       ]);
      ("enforcement",
       [ Alcotest.test_case "conformed" `Quick test_enforce_conformed;
         Alcotest.test_case "rewritten" `Quick test_enforce_rewritten;
         Alcotest.test_case "rejected" `Quick test_enforce_rejected;
         Alcotest.test_case "possible fallback" `Quick test_enforce_possible_fallback;
         Alcotest.test_case "possible run-time failure" `Quick test_enforce_possible_fails_at_runtime;
         Alcotest.test_case "prebuilt rewriter" `Quick test_enforce_prebuilt_rewriter;
         Alcotest.test_case "deep result: k=1 gap, closed at k=2" `Quick
           test_enforce_deep_k_gap
       ]);
      ("pipeline",
       [ Alcotest.test_case "batch stats" `Quick test_pipeline_batch;
         Alcotest.test_case "outcome counters" `Quick test_pipeline_outcome_counters;
         Alcotest.test_case "minimal-k stats" `Quick test_pipeline_min_k_stats;
         Alcotest.test_case "lazy stream" `Quick test_pipeline_seq;
         Alcotest.test_case "from a shared contract" `Quick test_pipeline_of_contract;
         Alcotest.test_case "flaky service recovers" `Quick test_pipeline_flaky_recovers;
         Alcotest.test_case "survives a dead service" `Quick test_pipeline_survives_dead_service;
         Alcotest.test_case "ill-typed service fault" `Quick test_pipeline_ill_typed_service_fault;
         Alcotest.test_case "fault skips possible fallback" `Quick test_pipeline_fault_skips_possible_fallback;
         Alcotest.test_case "peer pipeline caching" `Quick test_peer_exchange_pipeline_cached;
         Alcotest.test_case "parallel executor config" `Quick test_parallel_executor_config;
         Alcotest.test_case "parallel shares the breaker" `Quick test_parallel_breaker_shared
       ]);
      ("storage",
       [ Alcotest.test_case "save/load roundtrip" `Quick test_storage_roundtrip;
         Alcotest.test_case "name codec" `Quick test_storage_name_codec;
         Alcotest.test_case "errors" `Quick test_storage_errors
       ]);
      ("negotiation",
       [ Alcotest.test_case "first fit" `Quick test_negotiation_first_fit;
         Alcotest.test_case "no agreement" `Quick test_negotiation_no_agreement
       ]);
      ("properties", axml_qcheck);
      ("peers",
       [ Alcotest.test_case "call through SOAP" `Quick test_peer_call_through_soap;
         Alcotest.test_case "serve enforces output" `Quick test_peer_serve_enforces_output;
         Alcotest.test_case "send document" `Quick test_peer_send_document;
         Alcotest.test_case "unknown service fault" `Quick test_peer_unknown_service_fault;
         Alcotest.test_case "version mismatch fault" `Quick test_peer_version_mismatch_fault;
         Alcotest.test_case "configure" `Quick test_peer_configure;
         Alcotest.test_case "select with predicates" `Quick test_peer_select_with_predicates;
         Alcotest.test_case "three-hop call" `Quick test_peer_three_hop
       ])
    ]
