(* The benchmark harness: one experiment per figure / complexity claim of
   the paper (see DESIGN.md section 3 and EXPERIMENTS.md for the index).
   The paper has no numeric evaluation tables; its experimental artifacts
   are the worked automata examples (Figures 2, 4-8, 10-12) and the
   complexity statements of Sections 4-5 — each gets an experiment here
   that regenerates the artifact and/or measures the claimed shape.

   Run with:  dune exec bench/main.exe            (all experiments)
              dune exec bench/main.exe -- e7 e10  (a selection)       *)

open Bechamel
open Toolkit

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto
module D = Axml_core.Document
module Rewriter = Axml_core.Rewriter
module Marking = Axml_core.Marking
module Possible = Axml_core.Possible
module Execute = Axml_core.Execute
module Generate = Axml_core.Generate
module Fork_automaton = Axml_core.Fork_automaton
module Schema_rewrite = Axml_core.Schema_rewrite
module Service = Axml_services.Service
module Registry = Axml_services.Registry
module Oracle = Axml_services.Oracle
module Enforcement = Axml_peer.Enforcement
module Peer = Axml_peer.Peer
module Policy = Axml_peer.Policy

(* ------------------------------------------------------------------ *)
(* Measurement helper                                                  *)
(* ------------------------------------------------------------------ *)

let measure_ns ?(quota = 0.25) name (f : unit -> 'a) : float =
  let test =
    Test.make ~name (Staged.stage (fun () -> ignore (Sys.opaque_identity (f ()))))
  in
  let elt = List.hd (Test.elements test) in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) () in
  let b = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let est = Analyze.one ols Instance.monotonic_clock b in
  match Analyze.OLS.estimates est with
  | Some (v :: _) -> v
  | Some [] | None -> Float.nan

let pp_ns ppf ns =
  if Float.is_nan ns then Fmt.string ppf "n/a"
  else if ns < 1e3 then Fmt.pf ppf "%.0f ns" ns
  else if ns < 1e6 then Fmt.pf ppf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Fmt.pf ppf "%.2f ms" (ns /. 1e6)
  else Fmt.pf ppf "%.2f s" (ns /. 1e9)

let section id title =
  Fmt.pr "@.==========================================================@.";
  Fmt.pr "%s  %s@." (String.uppercase_ascii id) title;
  Fmt.pr "==========================================================@."

let expectation fmt = Fmt.pr ("paper expectation: " ^^ fmt ^^ "@.")

(* ------------------------------------------------------------------ *)
(* Shared fixtures: the paper's running example                        *)
(* ------------------------------------------------------------------ *)

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Fmt.failwith "schema error: %s" e

let common = {|
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.(Get_Date | date)
element performance = title.date
function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
function Get_Date : title -> date
|}

let schema_star =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
|} ^ common)

let schema_star2 =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.temp.(TimeOut | exhibit*)
|} ^ common)

let schema_star3 =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.temp.exhibit*
|} ^ common)

let fig2a =
  D.elem "newspaper"
    [ D.elem "title" [ D.data "The Sun" ];
      D.elem "date" [ D.data "04/10/2002" ];
      D.call "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ];
      D.call "TimeOut" [ D.data "exhibits" ] ]

let newspaper_word = D.word (D.children fig2a)

let example_services () =
  [ Service.make "Get_Temp" ~cost:0.1 ~input:(R.sym (Schema.A_label "city"))
      ~output:(R.sym (Schema.A_label "temp"))
      (Oracle.constant [ D.elem "temp" [ D.data "15 C" ] ]);
    Service.make "TimeOut" ~cost:1.0 ~input:(R.sym Schema.A_data)
      ~output:
        (R.star
           (R.alt (R.sym (Schema.A_label "exhibit"))
              (R.sym (Schema.A_label "performance"))))
      (Oracle.constant
         [ D.elem "exhibit"
             [ D.elem "title" [ D.data "Monet" ]; D.elem "date" [ D.data "now" ] ] ]);
    Service.make "Get_Date" ~input:(R.sym (Schema.A_label "title"))
      ~output:(R.sym (Schema.A_label "date"))
      (Oracle.constant [ D.elem "date" [ D.data "today" ] ])
  ]

let example_registry () =
  let reg = Registry.create () in
  Registry.register_all reg (example_services ());
  reg

let rewriter ?(engine = Rewriter.Lazy) ?(k = 1) target =
  Rewriter.create ~k ~engine ~s0:schema_star ~target ()

let newspaper_regex rw = Option.get (Rewriter.element_regex rw "newspaper")

(* ------------------------------------------------------------------ *)
(* E1 (Figure 2): the document before / after the Get_Temp call        *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "e1" "Figure 2: a document before and after materializing Get_Temp";
  expectation "the Get_Temp node is replaced by a <temp> element; TimeOut stays";
  let reg = example_registry () in
  let rw = rewriter schema_star2 in
  match Rewriter.materialize rw ~invoker:(Registry.invoker reg) fig2a with
  | Error _ -> Fmt.pr "UNEXPECTED: materialization failed@."
  | Ok (doc, invs) ->
    Fmt.pr "before: %a@." D.pp fig2a;
    Fmt.pr "after : %a@." D.pp doc;
    Fmt.pr "invoked: %a@."
      Fmt.(list ~sep:comma string)
      (List.map (fun li -> li.Rewriter.invocation.Execute.inv_name) invs);
    let t =
      measure_ns "e1" (fun () ->
          Rewriter.materialize rw ~invoker:(Registry.invoker reg) fig2a)
    in
    Fmt.pr "end-to-end materialization latency: %a@." pp_ns t

(* ------------------------------------------------------------------ *)
(* E2 (Figure 4): the A_w^1 fork automaton                             *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "e2" "Figure 4: the A_w^1 automaton for title.date.Get_Temp.TimeOut";
  expectation
    "two fork nodes (q2 for Get_Temp, q3 for TimeOut); copies of the output \
     automata spliced around the function edges";
  let rw = rewriter schema_star2 in
  let fork = Fork_automaton.build ~env:(Rewriter.env rw) ~k:1 newspaper_word in
  let s = Fork_automaton.stats fork in
  Fmt.pr "measured: %d states, %d edges, %d forks@." s.Fork_automaton.states
    s.Fork_automaton.edges s.Fork_automaton.forks;
  Array.iter
    (fun (f : Fork_automaton.fork) ->
      Fmt.pr "  fork at state %d for %s (round %d)@." f.Fork_automaton.fork_node
        f.Fork_automaton.fname f.Fork_automaton.round)
    fork.Fork_automaton.forks;
  let t =
    measure_ns "e2" (fun () ->
        Fork_automaton.build ~env:(Rewriter.env rw) ~k:1 newspaper_word)
  in
  Fmt.pr "construction latency: %a@." pp_ns t

(* ------------------------------------------------------------------ *)
(* E3 (Figures 5-6): safe rewriting into schema (**)                   *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "e3" "Figures 5-6: safe rewriting of the newspaper word into (**)";
  expectation "SAFE; the extracted sequence invokes Get_Temp and keeps TimeOut";
  let rw = rewriter schema_star2 in
  let regex = newspaper_regex rw in
  let analysis = Rewriter.word_safe_analysis rw ~target_regex:regex newspaper_word in
  Fmt.pr "verdict: %s@." (if analysis.Marking.safe then "SAFE" else "UNSAFE");
  Fmt.pr "product: %d nodes discovered, %d marked@."
    analysis.Marking.stats.Marking.discovered_nodes
    analysis.Marking.stats.Marking.marked_nodes;
  let reg = example_registry () in
  (match
     Execute.run (Execute.Follow_safe analysis) (Registry.invoker reg)
       (D.children fig2a)
   with
   | Ok outcome ->
     Fmt.pr "rewriting sequence: %a@."
       Fmt.(list ~sep:comma string)
       (List.map (fun i -> i.Execute.inv_name) outcome.Execute.invocations)
   | Error e -> Fmt.pr "UNEXPECTED: execution failed: %a@." Execute.pp_failure e);
  let t =
    measure_ns "e3" (fun () ->
        Rewriter.word_safe_analysis rw ~target_regex:regex newspaper_word)
  in
  Fmt.pr "safe-analysis latency: %a@." pp_ns t

(* ------------------------------------------------------------------ *)
(* E4 (Figures 7-8): no safe rewriting into schema (***)               *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "e4" "Figures 7-8: safe rewriting into (***) fails";
  expectation
    "UNSAFE: both fork options of the TimeOut fork are marked (a performance \
     may come back)";
  let rw = rewriter schema_star3 in
  let regex = newspaper_regex rw in
  let analysis = Rewriter.word_safe_analysis rw ~target_regex:regex newspaper_word in
  Fmt.pr "verdict: %s@." (if analysis.Marking.safe then "SAFE" else "UNSAFE");
  Fmt.pr "product: %d nodes discovered, %d marked, %d pruned@."
    analysis.Marking.stats.Marking.discovered_nodes
    analysis.Marking.stats.Marking.marked_nodes
    analysis.Marking.stats.Marking.pruned;
  let t =
    measure_ns "e4" (fun () ->
        Rewriter.word_safe_analysis rw ~target_regex:regex newspaper_word)
  in
  Fmt.pr "safe-analysis latency: %a@." pp_ns t

(* ------------------------------------------------------------------ *)
(* E5 (Figures 10-11): possible rewriting into (***)                   *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "e5" "Figures 10-11: possible rewriting into (***)";
  expectation
    "POSSIBLE; succeeds when TimeOut actually returns exhibits, fails (with \
     backtracking) when it returns a performance";
  let rw = rewriter schema_star3 in
  let regex = newspaper_regex rw in
  let analysis = Rewriter.word_possible_analysis rw ~target_regex:regex newspaper_word in
  Fmt.pr "verdict: %s@."
    (if analysis.Possible.possible then "POSSIBLE" else "IMPOSSIBLE");
  Fmt.pr "product: %d nodes, %d live@."
    analysis.Possible.stats.Possible.discovered_nodes
    analysis.Possible.stats.Possible.live_nodes;
  let attempt behaviour =
    let reg = Registry.create () in
    Registry.register_all reg (example_services ());
    Registry.register reg
      (Service.make "TimeOut" ~input:(R.sym Schema.A_data)
         ~output:
           (R.star
              (R.alt (R.sym (Schema.A_label "exhibit"))
                 (R.sym (Schema.A_label "performance"))))
         behaviour);
    let analysis =
      Rewriter.word_possible_analysis rw ~target_regex:regex newspaper_word
    in
    Execute.run (Execute.Follow_possible analysis) (Registry.invoker reg)
      (D.children fig2a)
  in
  let exhibits =
    Oracle.constant
      [ D.elem "exhibit"
          [ D.elem "title" [ D.data "Monet" ]; D.elem "date" [ D.data "now" ] ] ]
  in
  let performances =
    Oracle.constant
      [ D.elem "performance"
          [ D.elem "title" [ D.data "Hamlet" ]; D.elem "date" [ D.data "8pm" ] ] ]
  in
  Fmt.pr "with exhibit-only TimeOut    : %s@."
    (match attempt exhibits with Ok _ -> "succeeded" | Error _ -> "failed");
  Fmt.pr "with performance-only TimeOut: %s@."
    (match attempt performances with
     | Ok _ -> "succeeded"
     | Error _ -> "failed (as expected)");
  let t =
    measure_ns "e5" (fun () ->
        Rewriter.word_possible_analysis rw ~target_regex:regex newspaper_word)
  in
  Fmt.pr "possible-analysis latency: %a@." pp_ns t

(* ------------------------------------------------------------------ *)
(* E6 (Section 4): polynomial scaling in deterministic schema size     *)
(* ------------------------------------------------------------------ *)

(* A deterministic newspaper-like schema family with [n] leading
   mandatory elements, and a word of matching length ending in the two
   function calls. *)
let sized_schema n =
  let labels = List.init n (fun i -> Fmt.str "s%d" i) in
  let decls =
    String.concat "\n"
      (List.map (fun l -> Fmt.str "element %s = #data" l) labels)
  in
  let chain = String.concat "." labels in
  parse_schema
    (Fmt.str
       {|
root newspaper
element newspaper = %s.(Get_Temp | temp).(TimeOut | exhibit*)
%s
|}
       chain decls
    ^ common)

let sized_word n =
  List.init n (fun i -> Symbol.Label (Fmt.str "s%d" i))
  @ [ Symbol.Fun "Get_Temp"; Symbol.Fun "TimeOut" ]

let e6 () =
  section "e6"
    "Section 4 complexity: safe rewriting is polynomial for deterministic \
     (1-unambiguous) schemas";
  expectation
    "latency grows polynomially (roughly linearly here) with the schema and \
     word size";
  Fmt.pr "%6s %14s %14s %10s@." "n" "lazy" "eager" "product";
  List.iter
    (fun n ->
      let target = sized_schema n in
      let rw_lazy =
        Rewriter.create ~k:1 ~engine:Rewriter.Lazy ~s0:target ~target ()
      in
      let rw_eager =
        Rewriter.create ~k:1 ~engine:Rewriter.Eager ~s0:target ~target ()
      in
      let regex = Option.get (Rewriter.element_regex rw_lazy "newspaper") in
      let word = sized_word n in
      let a = Rewriter.word_safe_analysis rw_eager ~target_regex:regex word in
      let t_lazy =
        measure_ns (Fmt.str "e6-lazy-%d" n) (fun () ->
            Rewriter.word_safe_analysis rw_lazy ~target_regex:regex word)
      in
      let t_eager =
        measure_ns (Fmt.str "e6-eager-%d" n) (fun () ->
            Rewriter.word_safe_analysis rw_eager ~target_regex:regex word)
      in
      Fmt.pr "%6d %a %a %10d@." n pp_ns t_lazy pp_ns t_eager
        a.Marking.stats.Marking.discovered_nodes)
    [ 2; 4; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* E7 (Section 4): exponential complement blow-up for nondeterministic *)
(* regular expressions                                                 *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "e7"
    "Section 4 complexity: complementation blows up only for \
     nondeterministic content models";
  expectation
    "complement DFA size stays linear for the deterministic family and grows \
     as 2^n for the nondeterministic family (a|b)*.a.(a|b)^n";
  let a = R.sym (Symbol.Label "a") and b = R.sym (Symbol.Label "b") in
  let alphabet = Auto.Sym_set.of_list [ Symbol.Label "a"; Symbol.Label "b" ] in
  let det_family n = R.seq (R.seq_list (List.init n (fun _ -> a))) b in
  let nondet_family n =
    R.seq
      (R.seq (R.star (R.alt a b)) a)
      (R.seq_list (List.init n (fun _ -> R.alt a b)))
  in
  Fmt.pr "%4s %16s %18s %14s %14s@." "n" "det complement" "nondet complement"
    "det time" "nondet time";
  List.iter
    (fun n ->
      let size family =
        let dfa = Auto.Dfa.of_regex (family n) in
        (Auto.Dfa.complement ~alphabet dfa).Auto.Dfa.size
      in
      let t family name =
        measure_ns name (fun () ->
            Auto.Dfa.complement ~alphabet (Auto.Dfa.of_regex (family n)))
      in
      Fmt.pr "%4d %16d %18d %a %a@." n (size det_family) (size nondet_family)
        pp_ns
        (t det_family (Fmt.str "e7-det-%d" n))
        pp_ns
        (t nondet_family (Fmt.str "e7-nondet-%d" n)))
    [ 2; 4; 6; 8; 10; 12 ]

(* ------------------------------------------------------------------ *)
(* E8 (Section 4): |A_w^k| = O((|s0| + |w|)^k)                         *)
(* ------------------------------------------------------------------ *)

let deep_schema =
  parse_schema
    {|
root listing
element listing = exhibit*
element exhibit = #data
function F : () -> exhibit*.F?.exhibit*
|}

let e8 () =
  section "e8" "Section 4: the size of A_w^k versus k and |w|";
  expectation
    "states grow geometrically with k (each round re-expands the F inside \
     F's own output) and linearly with |w|";
  let env =
    Rewriter.env (Rewriter.create ~k:1 ~s0:deep_schema ~target:deep_schema ())
  in
  Fmt.pr "-- growing k (|w| = 1):@.";
  Fmt.pr "%4s %10s %10s %10s %14s@." "k" "states" "edges" "forks" "build time";
  List.iter
    (fun k ->
      let fork = Fork_automaton.build ~env ~k [ Symbol.Fun "F" ] in
      let s = Fork_automaton.stats fork in
      let t =
        measure_ns (Fmt.str "e8-k%d" k) (fun () ->
            Fork_automaton.build ~env ~k [ Symbol.Fun "F" ])
      in
      Fmt.pr "%4d %10d %10d %10d %a@." k s.Fork_automaton.states
        s.Fork_automaton.edges s.Fork_automaton.forks pp_ns t)
    [ 1; 2; 3; 4; 5; 6 ];
  Fmt.pr "-- growing |w| (k = 2):@.";
  Fmt.pr "%4s %10s %10s %10s %14s@." "|w|" "states" "edges" "forks" "build time";
  List.iter
    (fun n ->
      let word = List.init n (fun _ -> Symbol.Fun "F") in
      let fork = Fork_automaton.build ~env ~k:2 word in
      let s = Fork_automaton.stats fork in
      let t =
        measure_ns (Fmt.str "e8-w%d" n) (fun () ->
            Fork_automaton.build ~env ~k:2 word)
      in
      Fmt.pr "%4d %10d %10d %10d %a@." n s.Fork_automaton.states
        s.Fork_automaton.edges s.Fork_automaton.forks pp_ns t)
    [ 1; 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* E9 (Section 4): generated word length <= |w| * x^k                  *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "e9" "Section 4: materialized size versus answer size x and depth k";
  expectation "the materialized word length stays under |w| * x^k";
  let fanout_schema =
    parse_schema
      {|
root listing
element listing = exhibit*
element exhibit = #data
function G : () -> exhibit*.G?
|}
  in
  Fmt.pr "%4s %4s %12s %14s %14s@." "x" "k" "length" "bound |w|*x^k" "time";
  List.iter
    (fun (x, k) ->
      let depth = ref 0 in
      let service =
        Service.make "G" ~input:R.epsilon
          ~output:
            (R.seq
               (R.star (R.sym (Schema.A_label "exhibit")))
               (R.opt (R.sym (Schema.A_fun "G"))))
          (fun _ ->
            incr depth;
            let items =
              List.init x (fun i ->
                  D.elem "exhibit" [ D.data (Fmt.str "d%d-%d" !depth i) ])
            in
            if !depth < k then items @ [ D.call "G" [] ] else items)
      in
      let reg = Registry.create () in
      Registry.register reg service;
      let target = Policy.extensional fanout_schema in
      let doc = D.elem "listing" [ D.call "G" [] ] in
      let config =
        { Enforcement.default_config with Enforcement.k; fallback_possible = true }
      in
      let run () =
        depth := 0;
        Registry.reset_accounting reg;
        Enforcement.enforce ~config ~s0:fanout_schema ~exchange:target
          ~invoker:(Registry.invoker reg) doc
      in
      match run () with
      | Ok (materialized, _) ->
        let len = List.length (D.children materialized) in
        let bound = int_of_float (float_of_int x ** float_of_int k) in
        let t = measure_ns (Fmt.str "e9-%d-%d" x k) run in
        Fmt.pr "%4d %4d %12d %14d %a@." x k len bound pp_ns t
      | Error _ -> Fmt.pr "%4d %4d %12s@." x k "FAILED")
    [ (2, 1); (2, 2); (2, 4); (4, 2); (4, 3); (8, 2) ]

(* ------------------------------------------------------------------ *)
(* E10 (Figure 12 / Section 7): lazy versus eager engine               *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "e10" "Figure 12: the lazy (pruned) engine versus the eager one";
  expectation
    "identical verdicts; the lazy engine explores fewer product nodes (sink \
     pruning + marked-node pruning) and is faster, most visibly on unsafe \
     inputs";
  Fmt.pr "%28s %8s %10s %10s %12s %12s@." "case" "verdict" "eager-exp"
    "lazy-exp" "eager-time" "lazy-time";
  let cases =
    [ ("newspaper -> (*)", schema_star, newspaper_word);
      ("newspaper -> (**)", schema_star2, newspaper_word);
      ("newspaper -> (***)", schema_star3, newspaper_word);
      ( "long word -> (**)",
        schema_star2,
        newspaper_word
        @ List.concat (List.init 8 (fun _ -> [ Symbol.Label "exhibit" ])) )
    ]
  in
  List.iter
    (fun (name, target, word) ->
      let rw_eager = rewriter ~engine:Rewriter.Eager target in
      let rw_lazy = rewriter ~engine:Rewriter.Lazy target in
      let regex = newspaper_regex rw_eager in
      let a_eager = Rewriter.word_safe_analysis rw_eager ~target_regex:regex word in
      let a_lazy = Rewriter.word_safe_analysis rw_lazy ~target_regex:regex word in
      assert (a_eager.Marking.safe = a_lazy.Marking.safe);
      let t_eager =
        measure_ns (name ^ "-eager") (fun () ->
            Rewriter.word_safe_analysis rw_eager ~target_regex:regex word)
      in
      let t_lazy =
        measure_ns (name ^ "-lazy") (fun () ->
            Rewriter.word_safe_analysis rw_lazy ~target_regex:regex word)
      in
      Fmt.pr "%28s %8s %10d %10d %a %a@." name
        (if a_eager.Marking.safe then "SAFE" else "UNSAFE")
        a_eager.Marking.stats.Marking.explored_nodes
        a_lazy.Marking.stats.Marking.explored_nodes pp_ns t_eager pp_ns t_lazy)
    cases

(* ------------------------------------------------------------------ *)
(* E11 (Section 5): possible rewriting is cheaper than safe            *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "e11" "Section 5: possible versus safe rewriting cost";
  expectation
    "possible rewriting works on the product with A itself (no \
     complementation, no game): the analysis is cheaper than the safe one";
  Fmt.pr "%6s %14s %14s@." "n" "safe" "possible";
  List.iter
    (fun n ->
      let target = sized_schema n in
      let rw = Rewriter.create ~k:1 ~engine:Rewriter.Eager ~s0:target ~target () in
      let regex = Option.get (Rewriter.element_regex rw "newspaper") in
      let word = sized_word n in
      let t_safe =
        measure_ns (Fmt.str "e11-safe-%d" n) (fun () ->
            Rewriter.word_safe_analysis rw ~target_regex:regex word)
      in
      let t_poss =
        measure_ns (Fmt.str "e11-poss-%d" n) (fun () ->
            Rewriter.word_possible_analysis rw ~target_regex:regex word)
      in
      Fmt.pr "%6d %a %a@." n pp_ns t_safe pp_ns t_poss)
    [ 4; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* E12 (Section 5): the mixed approach                                 *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section "e12" "Section 5: the mixed approach (invoke cheap calls first)";
  expectation
    "invoking the side-effect-free TimeOut up-front replaces its signature \
     automaton by the concrete answer: the unsafe newspaper -> (***) case \
     becomes safe, and A_w^k shrinks";
  let rw = rewriter schema_star3 in
  let reg = example_registry () in
  Fmt.pr "plain safe check: %s@."
    (if Rewriter.is_safe rw fig2a then "SAFE" else "UNSAFE");
  let failures =
    Rewriter.check_mixed rw ~eager_calls:(String.equal "TimeOut")
      ~invoker:(Registry.invoker reg) fig2a
  in
  Fmt.pr "mixed check (TimeOut eager): %s@."
    (if failures = [] then "SAFE" else "UNSAFE");
  let doc' =
    match
      Rewriter.pre_materialize rw ~eager_calls:(String.equal "TimeOut")
        ~invoker:(Registry.invoker reg) fig2a
    with
    | Ok (doc', _) -> doc'
    | Error f -> Fmt.failwith "pre-materialization failed: %a" Rewriter.pp_failure f
  in
  let env = Rewriter.env rw in
  let before =
    Fork_automaton.stats (Fork_automaton.build ~env ~k:1 newspaper_word)
  in
  let after =
    Fork_automaton.stats
      (Fork_automaton.build ~env ~k:1 (D.word (D.children doc')))
  in
  Fmt.pr
    "A_w^1 before: %d states / %d edges; after pre-materialization: %d / %d@."
    before.Fork_automaton.states before.Fork_automaton.edges
    after.Fork_automaton.states after.Fork_automaton.edges;
  let t =
    measure_ns "e12" (fun () ->
        Rewriter.materialize_mixed rw ~eager_calls:(String.equal "TimeOut")
          ~invoker:(Registry.invoker reg) fig2a)
  in
  Fmt.pr "mixed materialization latency: %a@." pp_ns t

(* ------------------------------------------------------------------ *)
(* E13 (Section 6): schema-to-schema compatibility                     *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "e13" "Section 6: schema-level safe rewriting";
  expectation
    "(*) rewrites safely into (**) but not into (***); the check costs one \
     representative-document test per reachable label";
  let pairs =
    [ ("(*) -> (**)", schema_star, schema_star2);
      ("(*) -> (***)", schema_star, schema_star3);
      ("(**) -> (*)", schema_star2, schema_star);
      ("(***) -> (*)", schema_star3, schema_star)
    ]
  in
  List.iter
    (fun (name, s0, target) ->
      let result = Schema_rewrite.check ~s0 ~root:"newspaper" ~target () in
      let t =
        measure_ns name (fun () ->
            Schema_rewrite.check ~s0 ~root:"newspaper" ~target ())
      in
      Fmt.pr "%16s: %-12s (%d labels checked, %a)@." name
        (if result.Schema_rewrite.compatible then "COMPATIBLE" else "INCOMPATIBLE")
        (List.length result.Schema_rewrite.verdicts)
        pp_ns t)
    pairs;
  Fmt.pr "-- scaling with schema size:@.";
  Fmt.pr "%6s %10s %14s@." "n" "labels" "time";
  List.iter
    (fun n ->
      let s = sized_schema n in
      let result = Schema_rewrite.check ~s0:s ~root:"newspaper" ~target:s () in
      let t =
        measure_ns (Fmt.str "e13-%d" n) (fun () ->
            Schema_rewrite.check ~s0:s ~root:"newspaper" ~target:s ())
      in
      Fmt.pr "%6d %10d %a@." n
        (List.length result.Schema_rewrite.verdicts)
        pp_ns t)
    [ 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* E14 (Section 7): enforcement-module throughput between peers        *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "e14" "Section 7: Schema Enforcement module throughput";
  expectation
    "per-document cost is dominated by rewriting only when calls must be \
     fired; validation-only exchanges are cheapest";
  let g = Generate.create ~seed:42 schema_star in
  let docs = Array.init 32 (fun _ -> Generate.document g) in
  let idx = ref 0 in
  let next_doc () =
    let d = docs.(!idx mod Array.length docs) in
    incr idx;
    d
  in
  let scenario name exchange config =
    let sender = Peer.create ~name:"bench-sender" ~schema:schema_star () in
    Peer.set_enforcement sender config;
    Registry.register_all (Peer.registry sender) (example_services ());
    let receiver = Peer.create ~name:"bench-receiver" ~schema:schema_star () in
    let t =
      measure_ns ~quota:0.4 name (fun () ->
          match
            Peer.send sender ~receiver ~exchange ~as_name:"bench" (next_doc ())
          with
          | Ok _ -> ()
          | Error _ -> ())
    in
    Fmt.pr "%36s %a  (%.0f docs/s)@." name pp_ns t (1e9 /. t)
  in
  scenario "exchange = (*) (validate only)" schema_star Enforcement.default_config;
  scenario "exchange = (**) (safe rewrite)" schema_star2 Enforcement.default_config;
  scenario "exchange = extensional (possible)"
    (Policy.extensional schema_star)
    { Enforcement.default_config with Enforcement.fallback_possible = true }

(* ------------------------------------------------------------------ *)
(* E15 (Fig. 3 step 23 / Fig. 9 step d): cost-minimal rewriting plans  *)
(* ------------------------------------------------------------------ *)

module Cost = Axml_core.Cost

let e15 () =
  section "e15"
    "Figure 3 step 23 / Figure 9 step d: minimizing the invocation cost";
  expectation
    "the extracted rewriting should pick the path with minimal fees; the \
     greedy keep-first order can be arbitrarily worse than the optimal plan";
  (* the paper example: strategy invokes only Get_Temp (fee 0.1) *)
  let fee = function "Get_Temp" -> 0.1 | "TimeOut" -> 1.0 | _ -> 5.0 in
  let rw = rewriter schema_star2 in
  let regex = newspaper_regex rw in
  let analysis = Rewriter.word_safe_analysis rw ~target_regex:regex newspaper_word in
  (match Cost.safe_worst_cost analysis ~cost:fee with
   | Some c -> Fmt.pr "newspaper -> (**): guaranteed worst-case fee %.2f@." c
   | None -> Fmt.pr "UNEXPECTED: unsafe@.");
  let poss = Rewriter.word_possible_analysis rw ~target_regex:regex newspaper_word in
  (match Cost.possible_min_cost poss ~cost:fee with
   | Some c -> Fmt.pr "newspaper -> (**): optimistic minimal fee %.2f@." c
   | None -> Fmt.pr "UNEXPECTED: impossible@.");
  (* a tradeoff case: keeping the cheap F forces the expensive H later *)
  let tradeoff =
    parse_schema {|
root doc
element doc = F.a | temp.H
element temp = #data
element a = #data
function F : () -> temp
function H : () -> a
|}
  in
  let tfee = function "F" -> 1.0 | "H" -> 10.0 | _ -> 0.0 in
  let invoker name _ =
    match name with
    | "F" -> [ D.elem "temp" [ D.data "t" ] ]
    | "H" -> [ D.elem "a" [ D.data "x" ] ]
    | _ -> []
  in
  let items = [ D.call "F" []; D.call "H" [] ] in
  let rw = Rewriter.create ~k:1 ~s0:tradeoff ~target:tradeoff () in
  let regex = Option.get (Rewriter.element_regex rw "doc") in
  let word = D.word items in
  let total outcome =
    List.fold_left (fun acc i -> acc +. tfee i.Execute.inv_name) 0.
      outcome.Execute.invocations
  in
  let analysis = Rewriter.word_safe_analysis rw ~target_regex:regex word in
  (match Execute.run (Execute.Follow_safe analysis) invoker items with
   | Ok o -> Fmt.pr "tradeoff case, greedy keep-first execution: fee %.1f@." (total o)
   | Error _ -> Fmt.pr "greedy execution failed@.");
  let poss = Rewriter.word_possible_analysis rw ~target_regex:regex word in
  let plan = Cost.possible_costs poss ~cost:tfee in
  (match Execute.run ~plan ~fee:tfee (Execute.Follow_possible poss) invoker items with
   | Ok o -> Fmt.pr "tradeoff case, cost-guided execution   : fee %.1f@." (total o)
   | Error _ -> Fmt.pr "guided execution failed@.");
  let t_plan =
    measure_ns "e15-plan" (fun () ->
        let poss = Rewriter.word_possible_analysis rw ~target_regex:regex word in
        Cost.possible_costs poss ~cost:tfee)
  in
  Fmt.pr "planning overhead (analysis + Dijkstra): %a@." pp_ns t_plan

(* ------------------------------------------------------------------ *)
(* E16 (Section 3): how restrictive is left-to-right?                  *)
(* ------------------------------------------------------------------ *)

module Exhaustive = Axml_core.Exhaustive

let e16 () =
  section "e16" "Section 3: the cost of the left-to-right restriction";
  expectation
    "\"one can miss a successful rewriting that is not left-to-right\" — but \
     \"in all the real-life examples ... left-to-right rewritings were not \
     limiting\"; the gap should exist yet be rare on random inputs";
  (* the hand-crafted witness *)
  let witness_schema =
    parse_schema {|
element a = #data
element b = #data
element c = #data
function f : () -> a
function g : () -> (b | c)
|}
  in
  let env = Schema.env_of_schema witness_schema in
  let target =
    R.alt
      (R.seq (R.sym (Symbol.Label "a")) (R.sym (Symbol.Label "b")))
      (R.seq (R.sym (Symbol.Fun "f")) (R.sym (Symbol.Label "c")))
  in
  let word = [ Symbol.Fun "f"; Symbol.Fun "g" ] in
  let outputs = Exhaustive.outputs_of_env env in
  let target_dfa = Auto.Dfa.of_regex target in
  Fmt.pr "witness (w=f.g, target=a.b|f.c): left-to-right %s, arbitrary %s@."
    (if Exhaustive.safe ~outputs ~target_dfa ~k:1 word then "SAFE" else "UNSAFE")
    (if Exhaustive.safe_arbitrary ~outputs ~target_dfa ~k:1 word then "SAFE"
     else "UNSAFE");
  (* random sampling of small star-free setups *)
  let rng = Random.State.make [| 2003 |] in
  let labels = [ Symbol.Label "a"; Symbol.Label "b" ] in
  let funs = [ "f"; "g" ] in
  let random_starfree () =
    let rec gen depth =
      if depth <= 0 || Random.State.int rng 3 = 0 then
        match Random.State.int rng 4 with
        | 0 -> R.sym (Symbol.Label "a")
        | 1 -> R.sym (Symbol.Label "b")
        | 2 -> R.sym (Symbol.Fun "f")
        | _ -> R.sym (Symbol.Fun "g")
      else if Random.State.int rng 2 = 0 then R.seq (gen (depth - 1)) (gen (depth - 1))
      else R.alt (gen (depth - 1)) (gen (depth - 1))
    in
    gen 3
  in
  let trials = 1000 in
  let small lang = List.length lang <= 6 && List.for_all (fun o -> List.length o <= 3) lang in
  let done_ = ref 0 and ltr_safe = ref 0 and arb_safe = ref 0 and gap = ref 0 in
  while !done_ < trials do
    let out_f = Exhaustive.enum_language (random_starfree ()) in
    let out_g = Exhaustive.enum_language (random_starfree ()) in
    if small out_f && small out_g then begin
      incr done_;
      let outputs name =
        if name = "f" then Some out_f
        else if name = "g" then Some out_g
        else None
      in
      let target_dfa = Auto.Dfa.of_regex (random_starfree ()) in
      let wlen = 1 + Random.State.int rng 2 in
      let word =
        List.init wlen (fun _ ->
            if Random.State.int rng 2 = 0 then
              List.nth labels (Random.State.int rng 2)
            else Symbol.Fun (List.nth funs (Random.State.int rng 2)))
      in
      let ltr = Exhaustive.safe ~outputs ~target_dfa ~k:1 word in
      let arb = Exhaustive.safe_arbitrary ~outputs ~target_dfa ~k:1 word in
      if ltr then incr ltr_safe;
      if arb then incr arb_safe;
      if arb && not ltr then incr gap;
      assert (not (ltr && not arb))  (* LTR-safe implies arbitrary-safe *)
    end
  done;
  Fmt.pr
    "random sample (%d small setups, k=1): left-to-right safe %d, arbitrary \
     safe %d, gap %d (%.2f%%)@."
    trials !ltr_safe !arb_safe !gap
    (100. *. float_of_int !gap /. float_of_int trials)

(* ------------------------------------------------------------------ *)
(* E17 (Section 7): cold vs warm-contract enforcement throughput       *)
(* ------------------------------------------------------------------ *)

module Contract = Axml_core.Contract
module Pipeline = Enforcement.Pipeline

let e17 () =
  section "e17" "Section 7: cold vs warm-contract enforcement throughput";
  expectation
    "the enforcement module guards a path, not a document: compiling the \
     (s0, exchange) contract once and memoizing the word analyses should \
     dominate per-document recompilation on a stream";
  let n = 1000 in
  let g = Generate.create ~seed:2003 schema_star in
  let docs = List.init n (fun _ -> Generate.document g) in
  let invoker = Registry.invoker (example_registry ()) in
  (* cold: the schema pair is compiled from scratch for every document.
     Wall clock, not [Sys.time]: CPU time is quantized at ~10 ms (see
     the note in e19) and blind to any service wait, and the warm arm
     below reports wall-clock [elapsed_s] — the ratio must compare like
     with like. *)
  let cold_failures = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun doc ->
      match
        Enforcement.enforce ~s0:schema_star ~exchange:schema_star2 ~invoker doc
      with
      | Ok _ -> ()
      | Error _ -> incr cold_failures)
    docs;
  let cold_s = Unix.gettimeofday () -. t0 in
  (* warm: one pipeline, one contract, one memo table for the stream *)
  let p =
    Pipeline.create ~s0:schema_star ~exchange:schema_star2 ~invoker ()
  in
  let results, stats = Pipeline.enforce_many p docs in
  let warm_failures =
    List.length (List.filter Result.is_error results)
  in
  let warm_s = stats.Pipeline.elapsed_s in
  let cold_rate = float_of_int n /. cold_s in
  let speedup = cold_s /. warm_s in
  Fmt.pr "cold (per-document compile): %8.3f s  (%7.0f docs/s), %d failure(s)@."
    cold_s cold_rate !cold_failures;
  Fmt.pr "warm (one pipeline):         %8.3f s  (%7.0f docs/s), %d failure(s)@."
    warm_s stats.Pipeline.docs_per_s warm_failures;
  Fmt.pr "speedup: %.1fx@." speedup;
  Fmt.pr "contract cache: %a@." Contract.pp_stats stats.Pipeline.cache;
  let oc = open_out "BENCH_E17.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e17\",\n\
    \  \"docs\": %d,\n\
    \  \"cold_s\": %.6f,\n\
    \  \"warm_s\": %.6f,\n\
    \  \"cold_docs_per_s\": %.1f,\n\
    \  \"warm_docs_per_s\": %.1f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"cold_failures\": %d,\n\
    \  \"warm_failures\": %d,\n\
    \  \"cache\": { \"hits\": %d, \"misses\": %d, \"evictions\": %d, \
     \"entries\": %d },\n\
    \  \"cache_hit_rate\": %.4f\n\
     }\n"
    n cold_s warm_s cold_rate stats.Pipeline.docs_per_s speedup !cold_failures
    warm_failures stats.Pipeline.cache.Contract.hits
    stats.Pipeline.cache.Contract.misses stats.Pipeline.cache.Contract.evictions
    stats.Pipeline.cache.Contract.entries stats.Pipeline.cache_hit_rate;
  close_out oc;
  Fmt.pr "machine-readable results written to BENCH_E17.json@."

(* ------------------------------------------------------------------ *)
(* E18: fault-tolerant batch enforcement under misbehaving services    *)
(* ------------------------------------------------------------------ *)

module Resilience = Axml_services.Resilience

let fault_s0 = parse_schema {|
root doc
element doc = (F_flaky | F_fail | F_ill | temp)
element temp = #data
function F_flaky : () -> temp
function F_fail : () -> temp
function F_ill : () -> temp
|}

let fault_exchange = parse_schema {|
root doc
element doc = temp
element temp = #data
function F_flaky : () -> temp
function F_fail : () -> temp
function F_ill : () -> temp
|}

let e18 () =
  section "e18" "fault-tolerant batch enforcement under misbehaving services";
  expectation
    "a 1k-document batch against flaky (period 7), failing, and ill-typed \
     services completes without aborting: misbehaviour costs the affected \
     documents only, and the retry/breaker activity surfaces in the batch \
     stats";
  let n = 1000 in
  let temp_reply = [ D.elem "temp" [ D.data "21C" ] ] in
  let flaky = Oracle.flaky ~period:7 (Oracle.constant temp_reply) in
  let invoker name params =
    match name with
    | "F_flaky" -> flaky params
    | "F_fail" -> failwith "service permanently down"
    | "F_ill" -> [ D.elem "bogus" [] ]  (* outside the declared temp output *)
    | other -> Fmt.failwith "unknown service %s" other
  in
  (* manual clock: backoff sleeps and breaker cooldowns advance virtual
     time, so the run is deterministic and does not actually sleep *)
  let resilience =
    Resilience.create
      ~policy:(Resilience.policy ~max_retries:3 ~breaker_threshold:5 ())
      ~clock:(Resilience.manual_clock ()) ()
  in
  let config =
    { Enforcement.default_config with Enforcement.resilience = Some resilience }
  in
  let pipeline =
    Pipeline.create ~config ~s0:fault_s0 ~exchange:fault_exchange ~invoker ()
  in
  let fnames = [| "F_flaky"; "F_fail"; "F_ill" |] in
  let docs = List.init n (fun i -> D.elem "doc" [ D.call fnames.(i mod 3) [] ]) in
  let results, stats = Pipeline.enforce_many pipeline docs in
  assert (List.length results = n);  (* the batch never aborts *)
  Fmt.pr "%a@." Pipeline.pp_stats stats;
  let first_matching pred =
    List.find_map
      (function
        | Error (Enforcement.Service_fault fs) -> List.find_opt pred fs
        | _ -> None)
      results
  in
  let is_ill f =
    match f.Rewriter.reason with Rewriter.Ill_typed_service _ -> true | _ -> false
  in
  let is_down f =
    match f.Rewriter.reason with Rewriter.Service_failure _ -> true | _ -> false
  in
  (match first_matching is_ill with
   | Some f -> Fmt.pr "sample ill-typed outcome : %a@." Rewriter.pp_failure f
   | None -> Fmt.pr "UNEXPECTED: no ill-typed outcome@.");
  (match first_matching is_down with
   | Some f -> Fmt.pr "sample give-up outcome   : %a@." Rewriter.pp_failure f
   | None -> Fmt.pr "UNEXPECTED: no service-failure outcome@.");
  let r = stats.Pipeline.resilience in
  let oc = open_out "BENCH_E18.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e18\",\n\
    \  \"docs\": %d,\n\
    \  \"rewritten\": %d,\n\
    \  \"rejected\": %d,\n\
    \  \"faults\": %d,\n\
    \  \"invocations\": %d,\n\
    \  \"elapsed_s\": %.6f,\n\
    \  \"docs_per_s\": %.1f,\n\
    \  \"cache_hit_rate\": %.4f,\n\
    \  \"resilience\": { \"calls\": %d, \"attempts\": %d, \"retries\": %d, \
     \"successes\": %d, \"gave_up\": %d, \"timeouts\": %d, \"trips\": %d, \
     \"short_circuited\": %d }\n\
     }\n"
    stats.Pipeline.docs stats.Pipeline.rewritten stats.Pipeline.rejected
    stats.Pipeline.faults stats.Pipeline.invocations stats.Pipeline.elapsed_s
    stats.Pipeline.docs_per_s stats.Pipeline.cache_hit_rate r.Resilience.calls
    r.Resilience.attempts r.Resilience.retries r.Resilience.successes
    r.Resilience.gave_up r.Resilience.timeouts r.Resilience.trips
    r.Resilience.short_circuited;
  close_out oc;
  Fmt.pr "machine-readable results written to BENCH_E18.json@."

(* ------------------------------------------------------------------ *)
(* E19: observability overhead — tracing sinks vs the null sink        *)
(* ------------------------------------------------------------------ *)

module Trace = Axml_obs.Trace

let e19 () =
  section "e19" "observability: decision-tracing overhead per sink";
  expectation
    "instrumentation must be safe to leave on: with the null sink the \
     per-event guard is a single load, and even a memory ring buffer \
     should stay within a few percent of the null-sink baseline";
  let n = 1000 and passes = 10 and exhibits = 40 in
  (* Realistically-sized newspapers (Figure 2 with a fat exhibit
     listing): each needs one Get_Temp invocation, and the validation /
     rewriting work per document scales with the listing while the
     trace stays a dozen events — the amortization an operator sees. *)
  let exhibit i =
    D.elem "exhibit"
      [ D.elem "title" [ D.data ("expo " ^ string_of_int i) ];
        D.elem "date" [ D.data "04/10/2002" ] ]
  in
  let doc j =
    D.elem "newspaper"
      (D.elem "title" [ D.data ("The Sun #" ^ string_of_int j) ]
       :: D.elem "date" [ D.data "04/10/2002" ]
       :: D.call "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ]
       :: List.init exhibits exhibit)
  in
  let docs = List.init n doc in
  let invoker = Registry.invoker (example_registry ()) in
  (* one shared pipeline: every arm sees the same warm contract cache *)
  let p = Pipeline.create ~s0:schema_star ~exchange:schema_star2 ~invoker () in
  let one_pass sink =
    Gc.full_major ();  (* same heap state for every sample *)
    Trace.set_sink Trace.default sink;
    (* wall clock, not [Sys.time]: its ~10 ms tick would quantize a
       50 ms sample into the very percentages we are measuring *)
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> Trace.set_sink Trace.default Trace.Null)
      (fun () ->
        let results, _ = Pipeline.enforce_many p docs in
        assert (not (List.exists Result.is_error results)));
    Unix.gettimeofday () -. t0
  in
  ignore (one_pass Trace.Null);  (* warm-up: caches, minor heap sizing *)
  let mem_buf = Trace.buffer ~capacity:4096 () in
  let devnull = open_out "/dev/null" in
  let arms = [| Trace.Null; Trace.Memory mem_buf; Trace.Jsonl devnull |] in
  (* interleave the arms — alternating the order each round — and keep
     per-arm minima, so drift (GC state, scheduling, machine load)
     cannot masquerade as sink overhead *)
  let best = Array.make (Array.length arms) infinity in
  for round = 1 to passes do
    let order =
      if round land 1 = 0 then [ 0; 1; 2 ] else [ 2; 1; 0 ]
    in
    List.iter
      (fun i -> best.(i) <- Float.min best.(i) (one_pass arms.(i)))
      order
  done;
  close_out devnull;
  let null_s = best.(0) and mem_s = best.(1) and jsonl_s = best.(2) in
  let total = n in
  let overhead arm_s = 100. *. (arm_s -. null_s) /. null_s in
  let rate s = float_of_int total /. s in
  Fmt.pr "null sink   : %8.3f s  (%7.0f docs/s)  baseline@." null_s
    (rate null_s);
  Fmt.pr "memory ring : %8.3f s  (%7.0f docs/s)  %+.1f%%@." mem_s (rate mem_s)
    (overhead mem_s);
  Fmt.pr "jsonl sink  : %8.3f s  (%7.0f docs/s)  %+.1f%%@." jsonl_s
    (rate jsonl_s) (overhead jsonl_s);
  Fmt.pr "memory ring kept the last %d of %d events@."
    (List.length (Trace.buffer_events mem_buf))
    (Trace.buffer_pushed mem_buf);
  let oc = open_out "BENCH_E19.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e19\",\n\
    \  \"docs\": %d,\n\
    \  \"passes\": %d,\n\
    \  \"null_s\": %.6f,\n\
    \  \"memory_s\": %.6f,\n\
    \  \"jsonl_s\": %.6f,\n\
    \  \"null_docs_per_s\": %.1f,\n\
    \  \"memory_docs_per_s\": %.1f,\n\
    \  \"jsonl_docs_per_s\": %.1f,\n\
    \  \"memory_overhead_pct\": %.2f,\n\
    \  \"jsonl_overhead_pct\": %.2f,\n\
    \  \"events_pushed\": %d,\n\
    \  \"events_retained\": %d\n\
     }\n"
    n passes null_s mem_s jsonl_s (rate null_s) (rate mem_s) (rate jsonl_s)
    (overhead mem_s) (overhead jsonl_s)
    (Trace.buffer_pushed mem_buf)
    (List.length (Trace.buffer_events mem_buf));
  close_out oc;
  Fmt.pr "machine-readable results written to BENCH_E19.json@."

(* ------------------------------------------------------------------ *)
(* E20: static analysis — lint throughput over synthetic schemas       *)
(* ------------------------------------------------------------------ *)

module Lint = Axml_analysis.Lint
module Diagnostic = Axml_analysis.Diagnostic

(* A deterministic pseudo-random schema with [n] elements: content
   models mix sequences, alternations, stars and calls over the earlier
   declarations and a fixed pool of functions — the shape a grown
   service repository schema takes, with enough rot (unreachable and
   ambiguous declarations) for every rule to do real work. *)
let synthetic_schema rng n =
  let label i = "e" ^ string_of_int i in
  let atom i =
    match Random.State.int rng 4 with
    | 0 -> R.sym Schema.A_data
    | 1 | 2 -> R.sym (Schema.A_label (label (Random.State.int rng i)))
    | _ -> R.sym (Schema.A_fun ("F" ^ string_of_int (Random.State.int rng 8)))
  in
  let rec content depth i =
    if depth = 0 then atom i
    else
      match Random.State.int rng 5 with
      | 0 -> R.seq (content (depth - 1) i) (content (depth - 1) i)
      | 1 -> R.alt (content (depth - 1) i) (content (depth - 1) i)
      | 2 -> R.star (content (depth - 1) i)
      | 3 -> R.opt (content (depth - 1) i)
      | _ -> atom i
  in
  let s = Schema.add_element Schema.empty (label 0) (R.sym Schema.A_data) in
  let s =
    List.fold_left
      (fun s i -> Schema.add_element s (label i) (content 3 i))
      s
      (List.init (n - 1) (fun i -> i + 1))
  in
  let s =
    List.fold_left
      (fun s j ->
        Schema.add_function s
          (Schema.func
             ("F" ^ string_of_int j)
             ~input:(R.sym Schema.A_data)
             ~output:(R.sym (Schema.A_label (label (Random.State.int rng n))))))
      s
      (List.init 8 Fun.id)
  in
  Schema.with_root s (label (n - 1))

let e20 () =
  section "e20" "static analysis: lint throughput";
  expectation
    "every rule reuses the compile-time automata of Sections 4-6, so a \
     full schema lint should stay in the milliseconds even for \
     hundreds of declarations and grow roughly linearly with them; \
     contract lint is dominated by the Section 6 schema-rewriting \
     check, and a pipeline re-serves its cached verdict for free";
  let sizes = [ 10; 40; 160 ] in
  let rows =
    List.map
      (fun n ->
        (* same seed per size: the schema, and so the measurement, is
           reproducible run to run *)
        let rng = Random.State.make [| 0xE20; n |] in
        let s = synthetic_schema rng n in
        let ns = measure_ns (Fmt.str "lint %d elements" n) (fun () -> Lint.lint_schema s) in
        let ds = Lint.lint_schema s in
        let count sev = Diagnostic.count sev ds in
        Fmt.pr
          "%4d elements: %a per lint  (%7.0f schemas/s, %.1f us/element)  \
           %d errors %d warnings %d hints@."
          n pp_ns ns (1e9 /. ns)
          (ns /. 1e3 /. float_of_int n)
          (count Diagnostic.Error) (count Diagnostic.Warning)
          (count Diagnostic.Hint);
        (n, ns, count Diagnostic.Error, count Diagnostic.Warning,
         count Diagnostic.Hint))
      sizes
  in
  (* contract- and document-level passes on the paper's example *)
  let contract =
    Axml_core.Contract.create ~s0:schema_star ~target:schema_star2 ()
  in
  let contract_ns =
    measure_ns "lint contract" (fun () -> Lint.lint_contract contract)
  in
  let doc_ns =
    measure_ns "lint document" (fun () -> Lint.lint_document contract fig2a)
  in
  Fmt.pr "contract lint (star -> star2): %a@." pp_ns contract_ns;
  Fmt.pr "document lint (Figure 2a)    : %a@." pp_ns doc_ns;
  (* the pipeline memoizes its contract lint with the compiled artifacts *)
  let p =
    Pipeline.create ~s0:schema_star ~exchange:schema_star2
      ~invoker:(Registry.invoker (example_registry ())) ()
  in
  let t0 = Unix.gettimeofday () in
  ignore (Pipeline.lint p);
  let first_s = Unix.gettimeofday () -. t0 in
  let cached_ns = measure_ns "cached pipeline lint" (fun () -> Pipeline.lint p) in
  Fmt.pr "pipeline lint: first force %.3f ms, cached read %a@."
    (first_s *. 1e3) pp_ns cached_ns;
  let oc = open_out "BENCH_E20.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e20\",\n\
    \  \"schemas\": [\n%s\n  ],\n\
    \  \"contract_lint_ns\": %.0f,\n\
    \  \"document_lint_ns\": %.0f,\n\
    \  \"pipeline_lint_first_ms\": %.3f,\n\
    \  \"pipeline_lint_cached_ns\": %.0f\n\
     }\n"
    (String.concat ",\n"
       (List.map
          (fun (n, ns, e, w, h) ->
            Printf.sprintf
              "    {\"elements\": %d, \"lint_ns\": %.0f, \
               \"schemas_per_s\": %.1f, \"errors\": %d, \"warnings\": %d, \
               \"hints\": %d}"
              n ns (1e9 /. ns) e w h)
          rows))
    contract_ns doc_ns (first_s *. 1e3) cached_ns;
  close_out oc;
  Fmt.pr "machine-readable results written to BENCH_E20.json@."

(* ------------------------------------------------------------------ *)
(* E21: multicore batch enforcement — domain-scaling curve             *)
(* ------------------------------------------------------------------ *)

module Syntax = Axml_peer.Syntax

let e21 () =
  section "e21" "multicore batch enforcement: domain-scaling curve";
  expectation
    "per-document enforcement is embarrassingly parallel and, on a real \
     exchange path, service-latency-bound (Section 7 guards a \
     communication path to remote services): sharding a 1k-doc stream \
     across domains overlaps the service waits, so wall-clock throughput \
     should reach 2x or better by 4 domains — with results byte-identical \
     to the sequential run, in input order";
  let n = 1000 in
  let g = Generate.create ~seed:2003 schema_star in
  let docs = List.init n (fun _ -> Generate.document g) in
  (* the example services behind a simulated 1 ms network round-trip:
     deterministic replies, realistic latency. [Registry.invoke] and the
     oracle behaviours are thread-safe, so one registry serves every
     domain. *)
  let delay_s = 0.001 in
  let base = Registry.invoker (example_registry ()) in
  let invoker name params =
    Unix.sleepf delay_s;
    base name params
  in
  let render results =
    String.concat "\n"
      (List.map
         (function
           | Ok (doc, _) -> Syntax.to_xml_string ~pretty:false doc
           | Error e -> Fmt.str "%a" Enforcement.pp_error e)
         results)
  in
  let fresh_pipeline () =
    Pipeline.create ~s0:schema_star ~exchange:schema_star2 ~invoker ()
  in
  (* the sequential enforce_many run is the byte-identity reference *)
  let reference =
    let results, _ = Pipeline.enforce_many (fresh_pipeline ()) docs in
    render results
  in
  let arms =
    List.map
      (fun jobs ->
        let p = fresh_pipeline () in
        let results, batch = Pipeline.enforce_parallel p ~jobs docs in
        (jobs, batch, String.equal (render results) reference))
      [ 1; 2; 4; 8 ]
  in
  let elapsed (b : Pipeline.stats) = b.Pipeline.elapsed_s in
  let base_s =
    match arms with (_, b, _) :: _ -> elapsed b | [] -> assert false
  in
  List.iter
    (fun (jobs, batch, identical) ->
      Fmt.pr
        "jobs %d: %8.3f s  (%7.0f docs/s)  speedup %.2fx  %s@."
        jobs (elapsed batch) batch.Pipeline.docs_per_s
        (base_s /. elapsed batch)
        (if identical then "output = sequential" else "OUTPUT MISMATCH"))
    arms;
  (match arms with
   | (_, b, _) :: _ ->
     Fmt.pr "cache (jobs 1): %a@." Contract.pp_stats b.Pipeline.cache
   | [] -> ());
  let oc = open_out "BENCH_E21.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e21\",\n\
    \  \"docs\": %d,\n\
    \  \"service_delay_s\": %.4f,\n\
    \  \"arms\": [\n%s\n  ],\n\
    \  \"speedup_at_4_jobs\": %.2f,\n\
    \  \"all_outputs_identical\": %b\n\
     }\n"
    n delay_s
    (String.concat ",\n"
       (List.map
          (fun (jobs, batch, identical) ->
            Printf.sprintf
              "    {\"jobs\": %d, \"elapsed_s\": %.6f, \"docs_per_s\": %.1f, \
               \"speedup\": %.2f, \"invocations\": %d, \"identical\": %b}"
              jobs (elapsed batch) batch.Pipeline.docs_per_s
              (base_s /. elapsed batch) batch.Pipeline.invocations identical)
          arms))
    (List.fold_left
       (fun acc (jobs, batch, _) ->
         if jobs = 4 then base_s /. elapsed batch else acc)
       0. arms)
    (List.for_all (fun (_, _, identical) -> identical) arms);
  close_out oc;
  Fmt.pr "machine-readable results written to BENCH_E21.json@."

(* ------------------------------------------------------------------ *)
(* E22: networked vs in-process exchange on a 1k-doc stream            *)
(* ------------------------------------------------------------------ *)

module Server = Axml_net.Server
module Endpoint = Axml_net.Endpoint
module Client = Axml_net.Client

let e22 () =
  section "e22" "networked vs in-process exchange: 1k-doc stream over loopback";
  expectation
    "the endpoint layer adds framing, a socket round-trip and one XML \
     re-parse per document on top of the identical enforcement path, so \
     over loopback the networked stream should stay within a small \
     constant factor of in-process — with verdicts byte-identical — and \
     sharding the stream over 2 and 4 connections should hold throughput \
     steady (client and server share this process's runtime lock, so the \
     arms measure protocol pipelining, not parallel speedup)";
  let n = 1000 in
  let g = Generate.create ~seed:2003 schema_star in
  let docs = Array.init n (fun i -> (Printf.sprintf "doc-%d" i, Generate.document g)) in
  let make_sender () =
    let p = Peer.create ~name:"newspaper.com" ~schema:schema_star () in
    Registry.register_all (Peer.registry p) (example_services ());
    p
  in
  let render = function
    | Ok (o : Peer.exchange_outcome) ->
      Printf.sprintf "ok %d %s" o.Peer.wire_bytes
        (Syntax.to_xml_string ~pretty:false o.Peer.sent)
    | Error e -> Fmt.str "refused %a" Enforcement.pp_error e
  in
  (* in-process reference: one sender, one receiver, same stream *)
  let reference = Array.make n "" in
  let in_process_s =
    let sender = make_sender () in
    let receiver = Peer.create ~name:"reader" ~schema:schema_star2 () in
    let t0 = Unix.gettimeofday () in
    Array.iteri
      (fun i (as_name, doc) ->
        reference.(i) <-
          render (Peer.send sender ~receiver ~exchange:schema_star2 ~as_name doc))
      docs;
    Unix.gettimeofday () -. t0
  in
  let accepted =
    Array.fold_left
      (fun acc v -> if String.length v > 2 && String.sub v 0 2 = "ok" then acc + 1 else acc)
      0 reference
  in
  Fmt.pr "in-process: %8.3f s  (%7.0f docs/s)  %d/%d accepted@."
    in_process_s (float_of_int n /. in_process_s) accepted n;
  (* networked arms: the same stream sharded over C connections, each
     with its own client and sender peer (senders enforce locally;
     pipelines are per-peer, so threads never share compiled state) *)
  let networked connections =
    let receiver = Peer.create ~name:"reader" ~schema:schema_star2 () in
    let server = Server.start (Endpoint.create receiver) in
    let got = Array.make n "" in
    let worker tid () =
      let sender = make_sender () in
      let client = Client.connect ~port:(Server.port server) () in
      let i = ref tid in
      while !i < n do
        let as_name, doc = docs.(!i) in
        got.(!i) <-
          render (Client.send client ~sender ~exchange:schema_star2 ~as_name doc);
        i := !i + connections
      done;
      Client.close client
    in
    let t0 = Unix.gettimeofday () in
    let ts = List.init connections (fun tid -> Thread.create (worker tid) ()) in
    List.iter Thread.join ts;
    let elapsed = Unix.gettimeofday () -. t0 in
    Server.stop server;
    (elapsed, got = reference)
  in
  let arms =
    List.map
      (fun connections ->
        let elapsed, identical = networked connections in
        Fmt.pr
          "%d connection%s: %8.3f s  (%7.0f docs/s)  %.2fx in-process  %s@."
          connections (if connections = 1 then " " else "s")
          elapsed (float_of_int n /. elapsed) (elapsed /. in_process_s)
          (if identical then "verdicts = in-process" else "VERDICT MISMATCH");
        (connections, elapsed, identical))
      [ 1; 2; 4 ]
  in
  let oc = open_out "BENCH_E22.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e22\",\n\
    \  \"docs\": %d,\n\
    \  \"accepted\": %d,\n\
    \  \"in_process_s\": %.6f,\n\
    \  \"in_process_docs_per_s\": %.1f,\n\
    \  \"arms\": [\n%s\n  ],\n\
    \  \"all_verdicts_identical\": %b\n\
     }\n"
    n accepted in_process_s
    (float_of_int n /. in_process_s)
    (String.concat ",\n"
       (List.map
          (fun (connections, elapsed, identical) ->
            Printf.sprintf
              "    {\"connections\": %d, \"elapsed_s\": %.6f, \
               \"docs_per_s\": %.1f, \"overhead_vs_in_process\": %.2f, \
               \"identical\": %b}"
              connections elapsed (float_of_int n /. elapsed)
              (elapsed /. in_process_s) identical)
          arms))
    (List.for_all (fun (_, _, identical) -> identical) arms);
  close_out oc;
  Fmt.pr "machine-readable results written to BENCH_E22.json@."

(* ------------------------------------------------------------------ *)
(* E23: verdict cost and outcome growth in the rewriting depth k       *)
(* ------------------------------------------------------------------ *)

(* A fully extensional exchange schema: the receiver accepts no calls
   at all, so any call left in an enforced document is a depth gap. *)
let schema_extensional =
  parse_schema
    {|
root newspaper
element newspaper = title.date.temp.exhibit*
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.date
element performance = title.date
|}

(* The example services, except that TimeOut answers intensionally: its
   exhibits carry an embedded Get_Date call (legal under the sender's
   exhibit type). Flattening one such result needs a second rewriting
   level — exactly the k=1 enforcement gap. *)
let deep_registry () =
  let reg = example_registry () in
  Registry.register reg
    (Service.make "TimeOut" ~cost:1.0 ~input:(R.sym Schema.A_data)
       ~output:
         (R.star
            (R.alt (R.sym (Schema.A_label "exhibit"))
               (R.sym (Schema.A_label "performance"))))
       (Oracle.constant
          [ D.elem "exhibit"
              [ D.elem "title" [ D.data "Monet" ];
                D.call "Get_Date" [ D.elem "title" [ D.data "Monet" ] ] ] ]));
  reg

let e23 () =
  section "e23" "k-bounded enforcement: verdict cost and outcomes at k = 1, 2, 3";
  expectation
    "the safety verdict splices function outputs one level deeper per \
     unit of k (Definition 7), so static-analysis latency grows with k \
     but stays polynomial; on a stream whose TimeOut service answers \
     with intensional exhibits, k=1 leaves the embedded Get_Date in the \
     enforced output (the depth gap a fully extensional receiver then \
     refuses) while k>=2 re-enforces materialized results against the \
     remaining budget and ships extensional documents — the residual-call \
     count must drop to zero from k=2 on";
  let n = 300 in
  let ks = [ 1; 2; 3 ] in
  (* static verdict cost: the safe-rewriting analysis of the Figure-2
     word against the extensional target, per depth *)
  let verdicts =
    List.map
      (fun k ->
        let rw =
          Rewriter.create ~k ~s0:schema_star ~target:schema_extensional ()
        in
        let regex = Option.get (Rewriter.element_regex rw "newspaper") in
        let ns =
          measure_ns
            (Printf.sprintf "e23-k%d" k)
            (fun () ->
              Rewriter.word_safe_analysis rw ~target_regex:regex newspaper_word)
        in
        Fmt.pr "verdict latency at k=%d: %a@." k pp_ns ns;
        (k, ns))
      ks
  in
  (* dynamic arms: the same generated stream enforced at each depth,
     with minimal-k tracking on *)
  let g = Generate.create ~seed:2304 schema_star in
  let docs = List.init n (fun _ -> Generate.document g) in
  let residual_calls results =
    List.fold_left
      (fun acc -> function
        | Ok (doc, _) when D.calls_with_paths doc <> [] -> acc + 1
        | _ -> acc)
      0 results
  in
  let arms =
    List.map
      (fun k ->
        let config =
          (* possible rewriting on: TimeOut's performance branch rules
             out a safe verdict, and the depth gap only shows once the
             call is actually invoked *)
          { Enforcement.default_config with
            Enforcement.k; track_min_k = true; fallback_possible = true }
        in
        let p =
          Pipeline.create ~config ~s0:schema_star ~exchange:schema_extensional
            ~invoker:(Registry.invoker (deep_registry ())) ()
        in
        let results, stats = Pipeline.enforce_many p docs in
        let residual = residual_calls results in
        let ok =
          List.length (List.filter (function Ok _ -> true | _ -> false) results)
        in
        Fmt.pr
          "k=%d: %8.3f s  (%7.0f docs/s)  %d/%d accepted, %d rejected, %d \
           invocation(s), %d residual intensional result(s)@."
          k stats.Pipeline.elapsed_s stats.Pipeline.docs_per_s ok n
          stats.Pipeline.rejected stats.Pipeline.invocations residual;
        let m = stats.Pipeline.min_k in
        Fmt.pr "  minimal k: measured %d, over budget %d, distribution %a@."
          m.Pipeline.measured m.Pipeline.unbounded
          Fmt.(list ~sep:sp (pair ~sep:(any ":") int int))
          m.Pipeline.distribution;
        (k, stats, ok, residual))
      ks
  in
  let gap_closed =
    List.for_all (fun (k, _, _, residual) -> k < 2 || residual = 0) arms
  in
  let gap_shown =
    List.exists (fun (k, _, _, residual) -> k = 1 && residual > 0) arms
  in
  Fmt.pr "depth gap at k=1: %s; closed from k=2 on: %s@."
    (if gap_shown then "reproduced" else "NOT REPRODUCED")
    (if gap_closed then "yes" else "NO — residual calls above budget");
  let oc = open_out "BENCH_E23.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e23\",\n\
    \  \"docs\": %d,\n\
    \  \"verdict_ns\": { %s },\n\
    \  \"arms\": [\n%s\n  ],\n\
    \  \"gap_at_k1\": %b,\n\
    \  \"gap_closed_at_k2\": %b\n\
     }\n"
    n
    (String.concat ", "
       (List.map (fun (k, ns) -> Printf.sprintf "\"k%d\": %.1f" k ns) verdicts))
    (String.concat ",\n"
       (List.map
          (fun (k, (stats : Pipeline.stats), ok, residual) ->
            let m = stats.Pipeline.min_k in
            Printf.sprintf
              "    {\"k\": %d, \"elapsed_s\": %.6f, \"docs_per_s\": %.1f, \
               \"accepted\": %d, \"rejected\": %d, \"invocations\": %d, \
               \"residual_intensional\": %d, \"min_k\": {\"measured\": %d, \
               \"over_budget\": %d, \"distribution\": {%s}}}"
              k stats.Pipeline.elapsed_s stats.Pipeline.docs_per_s ok
              stats.Pipeline.rejected stats.Pipeline.invocations residual
              m.Pipeline.measured m.Pipeline.unbounded
              (String.concat ", "
                 (List.map
                    (fun (d, c) -> Printf.sprintf "\"%d\": %d" d c)
                    m.Pipeline.distribution)))
          arms))
    gap_shown gap_closed;
  close_out oc;
  Fmt.pr "machine-readable results written to BENCH_E23.json@."

(* ------------------------------------------------------------------ *)
(* E24: schema evolution — diff and corpus-migration throughput        *)
(* ------------------------------------------------------------------ *)

module Evolution = Axml_analysis.Evolution

(* Evolve a synthetic schema into a plausible v2: rebuild it element by
   element keeping most content models, widening some and replacing a
   few outright, so the diff has all four classifications to do and the
   verdict lift finds genuine regressions. Functions and root carry
   over verbatim (a signature conflict would skip the lift). *)
let evolve rng (v1 : Schema.t) =
  let widen r =
    match Random.State.int rng 3 with
    | 0 -> R.opt r
    | 1 -> R.star r
    | _ -> R.alt r (R.sym (Schema.A_label "e0"))
  in
  let mutate r =
    let roll = Random.State.int rng 100 in
    if roll < 60 then r
    else if roll < 85 then widen r
    else R.sym Schema.A_data
  in
  let s =
    List.fold_left
      (fun s l ->
        match Schema.find_element v1 l with
        | None -> s
        | Some c -> Schema.add_element s l (mutate c))
      Schema.empty (Schema.element_names v1)
  in
  let s =
    List.fold_left
      (fun s f ->
        match Schema.find_function v1 f with
        | None -> s
        | Some fn -> Schema.add_function s fn)
      s (Schema.function_names v1)
  in
  match v1.Schema.root with Some r -> Schema.with_root s r | None -> s

let e24 () =
  section "e24" "schema evolution: diff and corpus-migration throughput";
  expectation
    "per-label classification is DFA inclusion over already-small \
     Glushkov automata and the verdict lift builds one merged contract \
     for the whole pair (the Section 6 g_l reduction, batched), so a \
     full diff should stay in the milliseconds and grow roughly \
     linearly with the declaration count; migration advice is one \
     validation plus two bounded rewriting checks per document, so a \
     corpus moves at thousands of documents per second";
  let sizes = [ 10; 40; 160 ] in
  let diff_rows =
    List.map
      (fun n ->
        let rng = Random.State.make [| 0xE24; n |] in
        let v1 = synthetic_schema rng n in
        let v2 = evolve rng v1 in
        let ns =
          measure_ns
            (Fmt.str "diff %d elements" n)
            (fun () -> Evolution.diff ~v1 ~v2 ())
        in
        let r = Evolution.diff ~v1 ~v2 () in
        let count c =
          List.length
            (List.filter
               (fun (l : Evolution.label_diff) ->
                 l.Evolution.l_presence = Evolution.Both c)
               r.Evolution.r_labels)
        in
        let id = count Evolution.Identical
        and wi = count Evolution.Widened
        and na = count Evolution.Narrowed
        and inc = count Evolution.Incompatible in
        let ds = List.length r.Evolution.r_diagnostics in
        Fmt.pr
          "%4d elements: %a per diff  (%7.0f diffs/s)  %d identical %d \
           widened %d narrowed %d incompatible, %d finding(s)@."
          n pp_ns ns (1e9 /. ns) id wi na inc ds;
        (n, ns, id, wi, na, inc, ds))
      sizes
  in
  (* corpus migration: archived sender-schema issues moving to the
     checked-in exchange v2 (one widened label, one narrowed label, one
     invocability flip — the examples/ pair, inlined) *)
  let v1 =
    Schema_parser.parse
      "root newspaper\n\
       element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)\n\
       element title = #data\n\
       element date = #data\n\
       element temp = #data\n\
       element exhibit = title.(Get_Date | date)\n\
       function Get_Temp : #data -> temp\n\
       function Get_Date : title -> date\n\
       function TimeOut : #data -> exhibit*\n"
  in
  let v2 =
    Schema_parser.parse
      "root newspaper\n\
       element newspaper = title.date.temp.exhibit.exhibit*\n\
       element title = #data\n\
       element date = #data\n\
       element temp = #data\n\
       element exhibit = title.(Get_Date | date)\n\
       noninvocable function Get_Date : title -> date\n"
  in
  let n_docs = 200 in
  let g = Generate.create ~seed:2400 v1 in
  let corpus =
    List.init n_docs (fun i ->
        (Printf.sprintf "doc%03d.xml" i, Generate.document g))
  in
  let migrate_ns =
    measure_ns ~quota:0.5 "migrate corpus" (fun () ->
        Evolution.migrate ~k:2 ~v1 ~v2 corpus)
  in
  let m = Evolution.migrate ~k:2 ~v1 ~v2 corpus in
  let mix a =
    List.length
      (List.filter
         (fun (d : Evolution.doc_advisory) ->
           match (d.Evolution.a_advisory, a) with
           | Evolution.Conforms, `Conforms
           | Evolution.Materialize, `Materialize
           | Evolution.Possible, `Possible
           | Evolution.Doomed _, `Doomed -> true
           | _ -> false)
         m.Evolution.g_advisories)
  in
  let conforms = mix `Conforms
  and materialize = mix `Materialize
  and possible = mix `Possible
  and doomed = mix `Doomed in
  let docs_per_s = float_of_int n_docs /. (migrate_ns /. 1e9) in
  Fmt.pr
    "%4d documents: %a per corpus  (%7.0f docs/s)  %d conform %d \
     materialize %d possible %d doomed — %s@."
    n_docs pp_ns migrate_ns docs_per_s conforms materialize possible doomed
    (if m.Evolution.g_migratable then "migratable" else "NOT migratable");
  let oc = open_out "BENCH_E24.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"e24\",\n\
    \  \"diffs\": [\n%s\n  ],\n\
    \  \"migration\": {\"docs\": %d, \"migrate_ns\": %.0f, \
     \"docs_per_s\": %.1f, \"conforms\": %d, \"materialize\": %d, \
     \"possible\": %d, \"doomed\": %d, \"migratable\": %b}\n\
     }\n"
    (String.concat ",\n"
       (List.map
          (fun (n, ns, id, wi, na, inc, ds) ->
            Printf.sprintf
              "    {\"elements\": %d, \"diff_ns\": %.0f, \
               \"diffs_per_s\": %.1f, \"identical\": %d, \"widened\": %d, \
               \"narrowed\": %d, \"incompatible\": %d, \"diagnostics\": %d}"
              n ns (1e9 /. ns) id wi na inc ds)
          diff_rows))
    n_docs migrate_ns docs_per_s conforms materialize possible doomed
    m.Evolution.g_migratable;
  close_out oc;
  Fmt.pr "machine-readable results written to BENCH_E24.json@."

(* ------------------------------------------------------------------ *)
(* SOAK — the adversarial workload engine, in process                  *)
(* ------------------------------------------------------------------ *)

module Mix = Axml_workload.Mix
module Schedule = Axml_workload.Schedule
module Soak = Axml_workload.Soak

let esoak () =
  section "soak"
    "adversarial workload engine: mix generator cost and a short \
     in-process soak trajectory";
  expectation
    "drawing a seeded document from a mix costs microseconds (generation \
     must never be the bottleneck of a soak run — the enforcement under \
     test must be); and a 3s in-process trajectory through the default \
     schedule shows the brownout dynamics the served soak (`axml soak`) \
     grades: the dead-service phase trips the shared breaker, recovery \
     closes it again. Latency grading (flash p99 vs steady) needs the \
     queueing of a real served peer and is asserted by the @ci soak \
     smoke, not here";
  List.iter
    (fun (name, mix) ->
      let stream = Mix.stream ~seed:2003 ~schema:schema_star mix in
      let ns = measure_ns ("soak-gen-" ^ name) (fun () -> Mix.next stream) in
      let sample =
        List.init 200 (fun _ -> (Mix.next stream).Mix.doc)
      in
      let avg f =
        float_of_int (List.fold_left (fun acc d -> acc + f d) 0 sample)
        /. 200.
      in
      Fmt.pr
        "mix %-12s draw %a  (%8.0f docs/s)  avg %5.1f word symbols, %4.2f \
         embedded call(s)@."
        name pp_ns ns (1e9 /. ns)
        (avg (fun d -> List.length (D.word (D.children d))))
        (avg (fun d -> List.length (D.calls_with_paths d))))
    [ ("steady", Mix.steady); ("flash-crowd", Mix.flash_crowd) ];
  (* the trajectory: enforcement pipelines stand in for the served peer,
     so the run exercises the same engine the wire path uses without
     sockets; BENCH_SOAK.json (the graded, served run) is produced by
     `axml soak`, not here *)
  let registry = Axml_obs.Metrics.create () in
  let resilience =
    Resilience.create
      ~policy:
        (Resilience.policy ~max_retries:1 ~backoff_s:0.005
           ~breaker_threshold:3 ~breaker_cooldown_s:0.3 ())
      ~seed:2003 ()
  in
  let schedule = Schedule.default ~workers:2 ~total_s:3. () in
  let reg = Registry.create () in
  let origin = Unix.gettimeofday () in
  let fnames = Schema.function_names schema_star in
  List.iter
    (fun fname ->
      match Schema.find_function schema_star fname with
      | None -> ()
      | Some f ->
        let honest = Oracle.honest_random ~seed:2003 schema_star fname in
        let entries =
          List.map
            (fun (t, fault) ->
              ( t,
                match fault with
                | Schedule.Healthy -> honest
                | Schedule.Flaky period -> Oracle.flaky ~period honest
                | Schedule.Slow delay_s -> Oracle.timing_out ~delay_s honest
                | Schedule.Dead -> Oracle.failing fname ))
            (Schedule.fault_timeline schedule)
        in
        Registry.register reg
          (Service.make ~input:f.Schema.f_input ~output:f.Schema.f_output
             fname
             (Oracle.scheduled ~origin entries)))
    fnames;
  let config =
    { Enforcement.default_config with
      Enforcement.k = 2;
      fallback_possible = true;
      resilience = Some resilience }
  in
  let pipeline exchange =
    Pipeline.create ~config ~s0:schema_star ~exchange
      ~invoker:(Registry.invoker reg) ()
  in
  (* schema_star2 only forces Get_Temp's materialization: honest services
     always satisfy it, so healthy phases enforce cleanly and every
     error in the trajectory is injected, not schema luck (TimeOut's
     performance branch against the fully extensional schema_star3 would
     gamble on possible rewriting and lose ~a fifth of the time) *)
  let primary = pipeline schema_star2 and churned = pipeline schema_star in
  let send ~worker:_ ~(phase : Schedule.phase) (item : Mix.item) =
    let p =
      match phase.Schedule.exchange with
      | `Primary -> primary
      | `Churned -> churned
    in
    match Pipeline.enforce p item.Mix.doc with
    | Ok _ -> Soak.Accepted
    | Error (Enforcement.Service_fault _) -> Soak.Fault
    | Error _ -> Soak.Refused
  in
  let report =
    Soak.run ~registry
      ~config:(Soak.config ~window_s:0.25 ~services:fnames schedule)
      ~resilience ~schema:schema_star ~send ()
  in
  List.iter
    (fun (s : Soak.phase_summary) ->
      Fmt.pr
        "phase %-14s %6d req  p50 %a  p99 %a  error rate %.3f%s@."
        s.Soak.s_name s.Soak.s_requests pp_ns (s.Soak.s_p50 *. 1e9) pp_ns
        (s.Soak.s_p99 *. 1e9) s.Soak.s_error_rate
        (if s.Soak.s_expect_degraded then "  (degraded by design)" else ""))
    report.Soak.phases;
  List.iter
    (fun (c : Soak.check) ->
      if List.mem c.Soak.check [ "breaker-tripped"; "breakers-recovered" ]
      then
        Fmt.pr "check %-19s %-4s %s@." c.Soak.check
          (if c.Soak.ok then "ok" else "FAIL")
          c.Soak.detail)
    report.Soak.verdict.Soak.checks;
  Fmt.pr "breaker trips %d, heap high water %d words@."
    report.Soak.resilience.Resilience.trips report.Soak.heap_high_water_words;
  let oc = open_out "BENCH_SOAK_INPROC.json" in
  output_string oc (Soak.report_to_json report);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "machine-readable results written to BENCH_SOAK_INPROC.json@."

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20); ("e21", e21);
    ("e22", e22); ("e23", e23); ("e24", e24); ("soak", esoak) ]

let () =
  let selected =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  Fmt.pr "Exchanging Intensional XML Data (SIGMOD 2003) — experiment harness@.";
  Fmt.pr "(see EXPERIMENTS.md for the paper-artifact index)@.";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Fmt.epr "unknown experiment %S (known: %s)@." name
          (String.concat ", " (List.map fst experiments)))
    selected;
  Fmt.pr "@.All selected experiments done.@."
