(* E25: the automata-kernel micro-benchmark (see BENCHMARKS.md).

   Measures the three inner loops the dense kernel rebuilt — DFA
   membership, the marking game, and language inclusion — on small /
   medium / large automata, so a kernel regression is caught here
   per-PR instead of showing up end-to-end in E17.

   Membership pits the functional-map DFA (`Auto.Dfa.accepts`, string
   labels, balanced-tree dispatch) against the compiled dense tables
   (`Auto.Dfa.Dense.accepts_ids`, int-array rows indexed by interned
   symbol ids); the two are property-tested equal in test_regex.ml, so
   this file only measures. Marking runs the full Section 7 lazy game
   (Fork_automaton.build + Product.create + Marking.analyze_lazy) on the
   paper's newspaper example at growing depth k; subset runs the
   map-side simulation check that lint and evolution depend on.

   Run with:  dune exec bench/kernel_bench.exe            (full, ~10 s)
              dune exec bench/kernel_bench.exe -- --smoke (CI, ~2 s)
              ... [-o FILE]   write the JSON report (default
                              BENCH_E25.json; "-" for stdout only)     *)

open Bechamel
open Toolkit

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module Symbol = Axml_schema.Symbol
module Sym_id = Axml_schema.Sym_id
module Auto = Axml_schema.Auto
module D = Axml_core.Document
module Fork_automaton = Axml_core.Fork_automaton
module Product = Axml_core.Product
module Marking = Axml_core.Marking

let measure_ns ?(quota = 0.25) name (f : unit -> 'a) : float =
  let test =
    Test.make ~name (Staged.stage (fun () -> ignore (Sys.opaque_identity (f ()))))
  in
  let elt = List.hd (Test.elements test) in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) () in
  let b = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let est = Analyze.one ols Instance.monotonic_clock b in
  match Analyze.OLS.estimates est with
  | Some (v :: _) -> v
  | Some [] | None -> Float.nan

let pp_ns ppf ns =
  if Float.is_nan ns then Fmt.string ppf "n/a"
  else if ns < 1e3 then Fmt.pf ppf "%.0f ns" ns
  else if ns < 1e6 then Fmt.pf ppf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Fmt.pf ppf "%.2f ms" (ns /. 1e6)
  else Fmt.pf ppf "%.2f s" (ns /. 1e9)

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

(* Membership: a chain of n blocks  (a_i | b_i) . c_i*  over 3n distinct
   labels. The Glushkov DFA has ~2n+1 states and a 3n-symbol alphabet,
   so growing n stresses exactly what the dense tables flatten: state
   count and per-state dispatch width. *)

let lbl i = R.sym (Symbol.Label (Printf.sprintf "s%03d" i))

let block i =
  R.seq (R.alt (lbl (3 * i)) (lbl ((3 * i) + 1))) (R.star (lbl ((3 * i) + 2)))

let chain n =
  List.init n block |> List.fold_left (fun acc b -> R.seq acc b) R.epsilon

(* An in-language word: pick a_i, then two repeats of c_i — 3n symbols,
   visiting every block. *)
let chain_word n =
  List.concat_map
    (fun i ->
      [ Symbol.Label (Printf.sprintf "s%03d" (3 * i));
        Symbol.Label (Printf.sprintf "s%03d" ((3 * i) + 2));
        Symbol.Label (Printf.sprintf "s%03d" ((3 * i) + 2)) ])
    (List.init n (fun i -> i))

(* Marking: small = the paper's running example (Figure 2) at k = 1,
   the exact Section 4 instance.  Medium and large use a feed schema
   whose function output mentions the function itself, so each extra
   rewriting round re-splices copies (the geometric growth measured in
   E8) — that is where the game actually earns its keep. *)

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Fmt.failwith "schema error: %s" e

let common = {|
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.(Get_Date | date)
element performance = title.date
function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
function Get_Date : title -> date
|}

let schema_sender =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
|} ^ common)

let schema_target =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.temp.exhibit*
|} ^ common)

let newspaper_word =
  [ Symbol.Label "title"; Symbol.Label "date"; Symbol.Fun "Get_Temp";
    Symbol.Fun "TimeOut" ]

let feed_decls = {|
element item = #data
function Feed : #data -> (Feed | item)*
|}

let schema_feed_sender =
  parse_schema ({|
root doc
element doc = Feed*
|} ^ feed_decls)

let schema_feed_target =
  parse_schema ({|
root doc
element doc = item*
|} ^ feed_decls)

let env_of sender target root =
  let env = Schema.env_of_schemas sender target in
  let content =
    match Schema.find_element target root with
    | Some c -> c
    | None -> Fmt.failwith "fixture schema lost its root element"
  in
  (env, Auto.Nfa.glushkov (Schema.compile_content env content))

let newspaper_env = env_of schema_sender schema_target "newspaper"
let feed_env = env_of schema_feed_sender schema_feed_target "doc"

(* ------------------------------------------------------------------ *)
(* The three loops                                                     *)
(* ------------------------------------------------------------------ *)

type row = { label : string; meta : (string * float) list }

let json_of_rows rows =
  rows
  |> List.map (fun { label; meta } ->
         meta
         |> List.map (fun (k, v) ->
                if Float.is_integer v && Float.abs v < 1e15 then
                  Printf.sprintf "\"%s\": %.0f" k v
                else Printf.sprintf "\"%s\": %.2f" k v)
         |> String.concat ", "
         |> Printf.sprintf "    \"%s\": { %s }" label)
  |> String.concat ",\n"

let membership ~quota =
  Fmt.pr "-- membership: map DFA vs dense tables (ns / word)@.";
  Fmt.pr "%8s %7s %6s %5s %12s %12s %9s@." "size" "states" "width" "|w|"
    "map" "dense" "speedup";
  List.map
    (fun (label, n) ->
      let dfa = Auto.Dfa.of_regex (chain n) in
      let dense = Auto.Dfa.Dense.compile ~sym_id:Sym_id.of_symbol dfa in
      let word = chain_word n in
      let ids = Sym_id.of_word word in
      assert (Auto.Dfa.accepts dfa word);
      assert (Auto.Dfa.Dense.accepts_ids dense ids);
      let map_ns =
        measure_ns ~quota (Fmt.str "e25-mem-map-%s" label) (fun () ->
            Auto.Dfa.accepts dfa word)
      in
      let dense_ns =
        measure_ns ~quota (Fmt.str "e25-mem-dense-%s" label) (fun () ->
            Auto.Dfa.Dense.accepts_ids dense ids)
      in
      let states = float_of_int (Auto.Dfa.Dense.size dense) in
      let width = float_of_int (Auto.Dfa.Dense.width dense) in
      Fmt.pr "%8s %7.0f %6.0f %5d %a  %a  %.1fx@." label states width
        (List.length word) pp_ns map_ns pp_ns dense_ns (map_ns /. dense_ns);
      { label;
        meta =
          [ ("states", states); ("width", width);
            ("word_len", float_of_int (List.length word)); ("map_ns", map_ns);
            ("dense_ns", dense_ns); ("speedup", map_ns /. dense_ns) ] })
    [ ("small", 4); ("medium", 16); ("large", 64) ]

let marking ~quota ~smoke =
  Fmt.pr "-- marking: lazy game over A_w^k x target (ns / decision)@.";
  Fmt.pr "%8s %3s %4s %8s %7s %12s %12s@." "size" "k" "|w|" "states" "forks"
    "lazy" "eager";
  List.map
    (fun (label, (env, target_nfa), k, word) ->
      let build () =
        let fork = Fork_automaton.build ~env ~k word in
        Product.create ~fork ~target:target_nfa
      in
      let fork = Fork_automaton.build ~env ~k word in
      let s = Fork_automaton.stats fork in
      let lazy_ns =
        measure_ns ~quota (Fmt.str "e25-mark-lazy-%s" label) (fun () ->
            Marking.analyze_lazy (build ()))
      in
      let eager_ns =
        if smoke then Float.nan
        else
          measure_ns ~quota (Fmt.str "e25-mark-eager-%s" label) (fun () ->
              Marking.analyze_eager (build ()))
      in
      Fmt.pr "%8s %3d %4d %8d %7d %a  %a@." label k (List.length word)
        s.Fork_automaton.states s.Fork_automaton.forks pp_ns lazy_ns pp_ns
        eager_ns;
      { label;
        meta =
          ([ ("k", float_of_int k);
             ("word_len", float_of_int (List.length word));
             ("fork_states", float_of_int s.Fork_automaton.states);
             ("forks", float_of_int s.Fork_automaton.forks);
             ("lazy_ns", lazy_ns) ]
          @ if smoke then [] else [ ("eager_ns", eager_ns) ]) })
    [ ("small", newspaper_env, 1, newspaper_word);
      ("medium", feed_env, 2, [ Symbol.Fun "Feed"; Symbol.Fun "Feed" ]);
      ("large", feed_env, 3,
       [ Symbol.Fun "Feed"; Symbol.Fun "Feed"; Symbol.Fun "Feed" ]) ]

let subset ~quota =
  Fmt.pr "-- subset: map-side language inclusion (ns / check)@.";
  Fmt.pr "%8s %7s %12s@." "size" "states" "ns";
  List.map
    (fun (label, n) ->
      let d = Auto.Dfa.of_regex (chain n) in
      let wide = Auto.Dfa.of_regex (R.star (chain n)) in
      assert (Auto.Dfa.subset d wide);
      let ns =
        measure_ns ~quota (Fmt.str "e25-subset-%s" label) (fun () ->
            Auto.Dfa.subset d wide)
      in
      let states = float_of_int (Auto.Dfa.Dense.size
          (Auto.Dfa.Dense.compile ~sym_id:Sym_id.of_symbol d)) in
      Fmt.pr "%8s %7.0f %a@." label states pp_ns ns;
      { label; meta = [ ("states", states); ("ns", ns) ] })
    [ ("small", 4); ("medium", 16); ("large", 64) ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let smoke = ref false in
  let out = ref "BENCH_E25.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest -> smoke := true; parse rest
    | "-o" :: file :: rest -> out := file; parse rest
    | arg :: _ -> Fmt.failwith "unknown argument %s" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  let quota = if !smoke then 0.05 else 0.25 in
  Fmt.pr "E25  automata kernel: membership / marking / subset%s@."
    (if !smoke then " (smoke)" else "");
  let mem = membership ~quota in
  let mark = marking ~quota ~smoke:!smoke in
  let sub = subset ~quota in
  let json =
    Printf.sprintf
      "{\n\
      \  \"experiment\": \"e25\",\n\
      \  \"smoke\": %b,\n\
      \  \"membership\": {\n%s\n  },\n\
      \  \"marking\": {\n%s\n  },\n\
      \  \"subset\": {\n%s\n  }\n\
       }\n"
      !smoke (json_of_rows mem) (json_of_rows mark) (json_of_rows sub)
  in
  if !out <> "-" then begin
    let oc = open_out_bin !out in
    output_string oc json;
    close_out oc;
    Fmt.pr "wrote %s@." !out
  end;
  (* the CI smoke also sanity-gates the kernel's reason to exist: dense
     membership must never lose to the map representation it replaced *)
  List.iter
    (fun { label; meta } ->
      let speedup = List.assoc "speedup" meta in
      if speedup < 1.0 then
        Fmt.failwith "dense membership slower than map on %s (%.2fx)" label
          speedup)
    mem
