(* Schema negotiation (Section 6 + the "negotiator" of the conclusion):
   before any data flows, the sender checks — at the schema level, no
   document in hand — which of the receiver's preference-ordered
   proposals ALL its documents can be safely rewritten into, then
   exchanges under the agreed schema.

   Run with:  dune exec examples/negotiation.exe *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module D = Axml_core.Document
module Service = Axml_services.Service
module Registry = Axml_services.Registry
module Oracle = Axml_services.Oracle
module Negotiation = Axml_peer.Negotiation
module Enforcement = Axml_peer.Enforcement

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Fmt.failwith "schema error: %s" e

let common = {|
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.date
element performance = title.date
function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
|}

let sender_schema =
  parse_schema
    ({|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
|} ^ common)

(* The receiver's proposals, most restrictive first. *)
let proposals =
  [ { Negotiation.name = "fully-extensional (exhibits only)";
      schema =
        parse_schema
          ({|
root newspaper
element newspaper = title.date.temp.exhibit*
|} ^ common) };
    { Negotiation.name = "temperature materialized";
      schema =
        parse_schema
          ({|
root newspaper
element newspaper = title.date.temp.(TimeOut | exhibit*)
|} ^ common) };
    { Negotiation.name = "anything goes";
      schema = sender_schema }
  ]

let () =
  Fmt.pr "Negotiating an exchange schema for newspaper documents...@.";
  match Negotiation.negotiate ~s0:sender_schema ~root:"newspaper" proposals with
  | Error rejections ->
    Fmt.pr "no agreement possible:@.";
    List.iter (Fmt.pr "  %a@." Negotiation.pp_rejection) rejections
  | Ok agreement ->
    List.iter
      (fun r -> Fmt.pr "rejected %a@." Negotiation.pp_rejection r)
      agreement.Negotiation.rejected;
    Fmt.pr "AGREED on: %s@." agreement.Negotiation.chosen.Negotiation.name;
    (* now exchange a document under the agreed schema *)
    let reg = Registry.create () in
    Registry.register_all reg
      [ Service.make "Get_Temp" ~input:(R.sym (Schema.A_label "city"))
          ~output:(R.sym (Schema.A_label "temp"))
          (Oracle.constant [ D.elem "temp" [ D.data "15 C" ] ]) ];
    let doc =
      D.elem "newspaper"
        [ D.elem "title" [ D.data "The Sun" ];
          D.elem "date" [ D.data "04/10/2002" ];
          D.call "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ];
          D.call "TimeOut" [ D.data "exhibits" ] ]
    in
    (match
       Enforcement.enforce ~s0:sender_schema
         ~exchange:agreement.Negotiation.chosen.Negotiation.schema
         ~invoker:(Registry.invoker reg) doc
     with
     | Ok (sent, _) ->
       Fmt.pr "@.exchanged document: %a@." D.pp sent
     | Error e -> Fmt.pr "enforcement failed: %a@." Enforcement.pp_error e)
