(* The full newspaper scenario: one publisher peer, four receivers with
   the four materialization policies of the paper's introduction
   (performance, capabilities, security, functionalities). Each policy is
   expressed as a *different exchange schema*, derived from the
   publisher's schema with the [Policy] combinators — the paper's central
   idea that schemas control materialization.

   Run with:  dune exec examples/newspaper.exe *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module D = Axml_core.Document
module Service = Axml_services.Service
module Registry = Axml_services.Registry
module Oracle = Axml_services.Oracle
module Peer = Axml_peer.Peer
module Policy = Axml_peer.Policy
module Enforcement = Axml_peer.Enforcement

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Fmt.failwith "schema error: %s" e

let publisher_schema =
  parse_schema
    {|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.date
element performance = title.date
function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
|}

let front_page =
  D.elem "newspaper"
    [ D.elem "title" [ D.data "The Sun" ];
      D.elem "date" [ D.data "04/10/2002" ];
      D.call "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ];
      D.call "TimeOut" [ D.data "exhibits" ] ]

let services =
  [ Service.make "Get_Temp" ~cost:0.1
      ~endpoint:"http://www.forecast.com/soap" ~namespace:"urn:xmethods-weather"
      ~input:(R.sym (Schema.A_label "city"))
      ~output:(R.sym (Schema.A_label "temp"))
      (Oracle.constant [ D.elem "temp" [ D.data "15 C" ] ]);
    Service.make "TimeOut" ~cost:1.0
      ~endpoint:"http://www.timeout.com/paris" ~namespace:"urn:timeout-program"
      ~input:(R.sym Schema.A_data)
      ~output:
        (R.star
           (R.alt (R.sym (Schema.A_label "exhibit"))
              (R.sym (Schema.A_label "performance"))))
      (Oracle.scripted
         [ [ D.elem "exhibit"
               [ D.elem "title" [ D.data "Monet at Orsay" ];
                 D.elem "date" [ D.data "June 2003" ] ];
             D.elem "exhibit"
               [ D.elem "title" [ D.data "Picasso retrospective" ];
                 D.elem "date" [ D.data "July 2003" ] ] ] ])
  ]

let make_publisher () =
  let p = Peer.create ~name:"newspaper.com" ~schema:publisher_schema () in
  Registry.register_all (Peer.registry p) services;
  Peer.store p "front-page" front_page;
  p

let scenario ~name ~why ~exchange ?(enforcement = Enforcement.default_config)
    ~receiver_schema () =
  Fmt.pr "@.--- %s ---@.%s@." name why;
  let publisher = make_publisher () in
  Peer.set_enforcement publisher enforcement;
  let receiver = Peer.create ~name:"receiver" ~schema:receiver_schema () in
  match Peer.send publisher ~receiver ~exchange ~as_name:"front-page" front_page with
  | Error e -> Fmt.pr "exchange REFUSED: %a@." Enforcement.pp_error e
  | Ok outcome ->
    let invoked =
      List.map
        (fun li -> li.Axml_core.Rewriter.invocation.Axml_core.Execute.inv_name)
        outcome.Peer.report.Enforcement.invocations
    in
    Fmt.pr "action: %s@."
      (match outcome.Peer.report.Enforcement.action with
       | Enforcement.Conformed -> "sent as-is (already conforms)"
       | Enforcement.Rewritten -> "safely rewritten before sending"
       | Enforcement.Rewritten_possible -> "rewritten (possible mode)");
    Fmt.pr "invoked before sending: %a@." Fmt.(list ~sep:comma string) invoked;
    Fmt.pr "wire size: %d bytes, remaining embedded calls: %d@."
      outcome.Peer.wire_bytes (D.count_calls outcome.Peer.sent);
    Fmt.pr "publisher fees paid: %.2f@."
      (Registry.total_cost (Peer.registry publisher))

let () =
  Fmt.pr "Publisher document: %a@." D.pp front_page;

  (* CAPABILITIES: the receiver is a plain browser, it cannot invoke
     anything — the exchange schema forbids every function node. *)
  scenario ~name:"capabilities: plain browser"
    ~why:"The reader's browser cannot handle intensional parts: the \
          exchange schema is the extensional projection, so the sender \
          must materialize everything. No SAFE rewriting exists (TimeOut \
          may return performances), so the sender enables the \
          possible-rewriting fallback and the attempt succeeds when \
          TimeOut actually returns exhibits."
    ~exchange:(Policy.extensional publisher_schema)
    ~enforcement:
      { Enforcement.default_config with Enforcement.fallback_possible = true }
    ~receiver_schema:(Policy.extensional publisher_schema) ();

  (* SECURITY: the receiver only trusts the TimeOut service. *)
  scenario ~name:"security: trusted-services list"
    ~why:"The receiver refuses documents with calls to services outside \
          its trust list {TimeOut}: Get_Temp must be materialized away."
    ~exchange:(Policy.restrict_functions ~trust:(String.equal "TimeOut") publisher_schema)
    ~receiver_schema:publisher_schema ();

  (* PERFORMANCE: the sender is overloaded and delegates everything. *)
  scenario ~name:"performance: overloaded sender"
    ~why:"The sender keeps every call intensional (smaller file, zero \
          fees) and lets the receiver materialize on demand."
    ~exchange:publisher_schema ~receiver_schema:publisher_schema ();

  (* FUNCTIONALITIES: the origin of the temperature is what is requested
     (UDDI-registry style): Get_Temp must NOT be materialized. *)
  scenario ~name:"functionalities: provenance must be preserved"
    ~why:"The receiver wants the temperature *service*, not a stale \
          value: Get_Temp is marked non-invocable, so no rewriting may \
          fire it."
    ~exchange:(Policy.preserve_functions ~keep:(String.equal "Get_Temp") publisher_schema)
    ~receiver_schema:publisher_schema ();

  Fmt.pr "@.Done.@."
