(* Quickstart: the paper's newspaper example, end to end.

   Build an intensional document with two embedded service calls, agree
   on an exchange schema that requires the temperature to be
   materialized, and let the Schema Enforcement module figure out which
   calls to invoke.

   Run with:  dune exec examples/quickstart.exe *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module D = Axml_core.Document
module Service = Axml_services.Service
module Registry = Axml_services.Registry
module Oracle = Axml_services.Oracle
module Syntax = Axml_peer.Syntax
module Enforcement = Axml_peer.Enforcement

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Fmt.failwith "schema error: %s" e

(* The sender's schema: the temperature may be intensional (a Get_Temp
   call) or materialized; same for the culture listing. *)
let sender_schema =
  parse_schema
    {|
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit*)
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.date
element performance = title.date
function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
|}

(* The agreed exchange schema: the receiver insists on a concrete
   temperature but is happy to call TimeOut itself later. *)
let exchange_schema =
  parse_schema
    {|
root newspaper
element newspaper = title.date.temp.(TimeOut | exhibit*)
element title = #data
element date = #data
element temp = #data
element city = #data
element exhibit = title.date
element performance = title.date
function Get_Temp : city -> temp
function TimeOut : #data -> (exhibit | performance)*
|}

(* The document of Figure 2.a. *)
let front_page =
  D.elem "newspaper"
    [ D.elem "title" [ D.data "The Sun" ];
      D.elem "date" [ D.data "04/10/2002" ];
      D.call "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ];
      D.call "TimeOut" [ D.data "exhibits" ] ]

(* Simulated Web services. *)
let registry =
  let reg = Registry.create () in
  Registry.register_all reg
    [ Service.make "Get_Temp"
        ~input:(R.sym (Schema.A_label "city"))
        ~output:(R.sym (Schema.A_label "temp"))
        (Oracle.constant [ D.elem "temp" [ D.data "15 C" ] ]);
      Service.make "TimeOut" ~input:(R.sym Schema.A_data)
        ~output:
          (R.star
             (R.alt
                (R.sym (Schema.A_label "exhibit"))
                (R.sym (Schema.A_label "performance"))))
        (Oracle.constant
           [ D.elem "exhibit"
               [ D.elem "title" [ D.data "Monet at Orsay" ];
                 D.elem "date" [ D.data "June 2003" ] ] ])
    ];
  reg

let () =
  Fmt.pr "=== The document to send (intensional) ===@.%s@."
    (Syntax.to_xml_string front_page);
  match
    Enforcement.enforce ~s0:sender_schema ~exchange:exchange_schema
      ~invoker:(Registry.invoker registry) front_page
  with
  | Error e -> Fmt.epr "enforcement failed: %a@." Enforcement.pp_error e
  | Ok (sent, report) ->
    Fmt.pr "=== Enforcement decision ===@.";
    (match report.Enforcement.action with
     | Enforcement.Conformed -> Fmt.pr "already conforms, nothing invoked@."
     | Enforcement.Rewritten ->
       Fmt.pr "safe rewriting found; invoked:@.";
       List.iter
         (fun li ->
           Fmt.pr "  - %s at %a@." li.Axml_core.Rewriter.invocation.Axml_core.Execute.inv_name
             D.pp_path li.Axml_core.Rewriter.at)
         report.Enforcement.invocations
     | Enforcement.Rewritten_possible -> Fmt.pr "a possible rewriting succeeded@.");
    Fmt.pr "@.=== The document as actually sent ===@.%s@."
      (Syntax.to_xml_string sent);
    Fmt.pr "(total service fees: %.2f, invocations: %d)@."
      (Registry.total_cost registry)
      (Registry.invocation_count registry)
