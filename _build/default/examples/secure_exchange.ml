(* Security-oriented exchange (the Security and Capabilities motivations
   of the introduction, with the function patterns of Section 2.1):

   - the exchange schema uses a *function pattern* Forecast whose
     predicates are answered by a UDDI-like directory (UDDIF) and an
     access-control service (InACL);
   - the receiver accepts a weather call only if it is published in the
     directory AND the receiver may call it;
   - everything else must be materialized by the sender — and the
     sender's own registry enforces ACLs and a spending budget.

   Run with:  dune exec examples/secure_exchange.exe *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module D = Axml_core.Document
module Service = Axml_services.Service
module Registry = Axml_services.Registry
module Oracle = Axml_services.Oracle
module Directory = Axml_services.Directory
module Enforcement = Axml_peer.Enforcement

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Fmt.failwith "schema error: %s" e

(* The sender may embed any of two concrete weather services. *)
let sender_schema =
  parse_schema
    {|
root report
element report = city.(Good_Weather | Shady_Weather | temp)
element city = #data
element temp = #data
function Good_Weather : city -> temp
function Shady_Weather : city -> temp
|}

(* The receiver's schema: a weather call may remain intensional only if
   it matches the Forecast pattern (directory-published + ACL-cleared). *)
let receiver_schema =
  parse_schema
    {|
root report
element report = city.(Forecast | temp)
element city = #data
element temp = #data
function Good_Weather : city -> temp
function Shady_Weather : city -> temp
pattern Forecast requires UDDIF InACL : city -> temp
|}

let directory =
  let dir = Directory.create () in
  Directory.publish dir ~provider:"forecast.com" ~categories:[ "weather" ]
    "Good_Weather";
  (* Shady_Weather is NOT published *)
  Directory.install_standard_predicates dir
    ~acl_of:(fun f -> f = "Good_Weather");
  dir

let registry =
  let reg = Registry.create ~principal:"newspaper.com" () in
  Registry.register_all reg
    [ Service.make "Good_Weather" ~cost:0.5
        ~input:(R.sym (Schema.A_label "city"))
        ~output:(R.sym (Schema.A_label "temp"))
        (Oracle.constant [ D.elem "temp" [ D.data "21 C" ] ]);
      Service.make "Shady_Weather" ~cost:0.1 ~acl:[ "newspaper.com" ]
        ~input:(R.sym (Schema.A_label "city"))
        ~output:(R.sym (Schema.A_label "temp"))
        (Oracle.constant [ D.elem "temp" [ D.data "19 C (allegedly)" ] ]) ];
  reg

let exchange doc =
  match
    Enforcement.enforce
      ~predicate:(Directory.predicate directory)
      ~s0:sender_schema ~exchange:receiver_schema
      ~invoker:(Registry.invoker registry) doc
  with
  | Ok (sent, report) ->
    Fmt.pr "  -> %s: %a@."
      (match report.Enforcement.action with
       | Enforcement.Conformed -> "accepted as-is"
       | Enforcement.Rewritten -> "materialized where required"
       | Enforcement.Rewritten_possible -> "rewritten (possible)")
      D.pp sent
  | Error e -> Fmt.pr "  -> REFUSED: %a@." Enforcement.pp_error e

let () =
  let report call =
    D.elem "report" [ D.elem "city" [ D.data "Paris" ]; call ]
  in
  Fmt.pr "A call to the published, ACL-cleared Good_Weather may stay \
          intensional:@.";
  exchange (report (D.call "Good_Weather" [ D.elem "city" [ D.data "Paris" ] ]));

  Fmt.pr "@.A call to the unpublished Shady_Weather does NOT match the \
          Forecast pattern: the sender must invoke it before sending:@.";
  exchange (report (D.call "Shady_Weather" [ D.elem "city" [ D.data "Paris" ] ]));

  Fmt.pr "@.Budgets guard the sender against expensive materialization: \
          with a 0.05 budget the Good_Weather call cannot be afforded \
          (but it can stay intensional anyway):@.";
  Registry.set_budget registry (Some 0.05);
  exchange (report (D.call "Good_Weather" [ D.elem "city" [ D.data "Paris" ] ]));
  Registry.set_budget registry None;

  Fmt.pr "@.ACLs on the sender's side: a stranger peer cannot fire \
          Shady_Weather at all:@.";
  Registry.set_principal registry "stranger";
  (try exchange (report (D.call "Shady_Weather" [ D.elem "city" [ D.data "Paris" ] ]))
   with Registry.Access_denied { service; principal } ->
     Fmt.pr "  -> Access_denied: %s may not call %s@." principal service);
  Fmt.pr "@.Total fees paid by the sender: %.2f@." (Registry.total_cost registry)
