examples/secure_exchange.mli:
