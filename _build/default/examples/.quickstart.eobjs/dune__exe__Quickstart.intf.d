examples/quickstart.mli:
