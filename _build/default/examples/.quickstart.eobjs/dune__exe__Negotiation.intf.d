examples/negotiation.mli:
