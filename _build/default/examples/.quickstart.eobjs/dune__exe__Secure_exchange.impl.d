examples/secure_exchange.ml: Axml_core Axml_peer Axml_regex Axml_schema Axml_services Fmt
