examples/newspaper.mli:
