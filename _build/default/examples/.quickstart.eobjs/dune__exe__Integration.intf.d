examples/integration.mli:
