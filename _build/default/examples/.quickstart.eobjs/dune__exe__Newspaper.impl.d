examples/newspaper.ml: Axml_core Axml_peer Axml_regex Axml_schema Axml_services Fmt List String
