(* Data integration with intensional documents (the paper's conclusion:
   "the control of whether to materialize data or not provides some
   flexible form of integration, that is a hybrid of the warehouse model
   (all is materialized) and the mediator model (nothing is)").

   A portal integrates two sources (news and weather) into one report
   document. Three integration styles are *the same document* under
   three exchange schemas:

   - WAREHOUSE: the extensional projection — every source call is fired
     at integration time; biggest wire size, freshest-at-build-time;
   - MEDIATOR: the full intensional schema — nothing is fired; tiny
     document, data fetched by the consumer on demand;
   - HYBRID: materialize the cheap-and-stable part (headlines), keep the
     volatile part (weather) intensional.

   Run with:  dune exec examples/integration.exe *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module D = Axml_core.Document
module Service = Axml_services.Service
module Registry = Axml_services.Registry
module Oracle = Axml_services.Oracle
module Peer = Axml_peer.Peer
module Policy = Axml_peer.Policy
module Enforcement = Axml_peer.Enforcement

let parse_schema text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Fmt.failwith "schema error: %s" e

let portal_schema =
  parse_schema
    {|
root report
element report = (Latest_News | headline*).(Get_Weather | weather)
element headline = #data
element weather = #data
element city = #data
function Latest_News : #data -> headline*
function Get_Weather : city -> weather
|}

(* The integrated view: both parts intensional. *)
let report =
  D.elem "report"
    [ D.call "Latest_News" [ D.data "front" ];
      D.call "Get_Weather" [ D.elem "city" [ D.data "Paris" ] ] ]

let sources () =
  let calls = ref [] in
  let reg = Registry.create () in
  Registry.register_all reg
    [ Service.make "Latest_News" ~cost:0.05 ~input:(R.sym Schema.A_data)
        ~output:(R.star (R.sym (Schema.A_label "headline")))
        (fun _ ->
          calls := "Latest_News" :: !calls;
          [ D.elem "headline" [ D.data "Intensional XML ships" ];
            D.elem "headline" [ D.data "Automata everywhere" ] ]);
      Service.make "Get_Weather" ~cost:0.4
        ~input:(R.sym (Schema.A_label "city"))
        ~output:(R.sym (Schema.A_label "weather"))
        (fun _ ->
          calls := "Get_Weather" :: !calls;
          [ D.elem "weather" [ D.data "15 C, clear" ] ])
    ];
  (reg, calls)

let style name exchange =
  let reg, _calls = sources () in
  let config =
    { Enforcement.default_config with Enforcement.fallback_possible = true }
  in
  match
    Enforcement.enforce ~config ~s0:portal_schema ~exchange
      ~invoker:(Registry.invoker reg) report
  with
  | Error e -> Fmt.pr "%-10s FAILED: %a@." name Enforcement.pp_error e
  | Ok (doc, _report) ->
    let wire = Axml_peer.Syntax.to_xml_string ~pretty:false doc in
    Fmt.pr "%-10s calls fired: %-2d  fees: %.2f  wire: %4d bytes  remaining calls: %d@."
      name
      (Registry.invocation_count reg)
      (Registry.total_cost reg)
      (String.length wire)
      (D.count_calls doc)

let () =
  Fmt.pr "The integrated report (as stored by the portal):@.%a@.@." D.pp report;

  (* WAREHOUSE: everything materialized *)
  style "warehouse" (Policy.extensional portal_schema);

  (* MEDIATOR: nothing materialized *)
  style "mediator" portal_schema;

  (* HYBRID: headlines materialized, weather left intensional *)
  style "hybrid"
    (Policy.restrict_functions ~trust:(String.equal "Get_Weather") portal_schema);

  Fmt.pr
    "@.The three styles are one document under three exchange schemas — \
     the materialization spectrum of the paper's conclusion.@."
