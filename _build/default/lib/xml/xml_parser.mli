(** Hand-written XML parser covering the subset the Active XML layer
    needs: prolog, elements, attributes, character data with entity
    references, CDATA sections, comments, processing instructions.
    DOCTYPE declarations are skipped. *)

type position = { line : int; column : int }

exception Error of { pos : position; message : string }

val parse : string -> Xml_tree.t
(** Parse a whole document and return its root element. Leading and
    trailing comments, processing instructions and whitespace are
    allowed. @raise Error with a line/column position otherwise. *)

val parse_result : string -> (Xml_tree.t, string) result
