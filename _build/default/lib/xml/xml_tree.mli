(** XML node trees — the carrier syntax for intensional documents
    (Section 7 of the paper). Names are kept as written
    (["prefix:local"]); namespace resolution is the separate pass
    {!Xml_ns}. *)

type attribute = { name : string; value : string }

type t =
  | Element of element
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of { target : string; content : string }

and element = { name : string; attrs : attribute list; children : t list }

(** {1 Construction} *)

val element : ?attrs:attribute list -> string -> t list -> t
val text : string -> t
val cdata : string -> t
val comment : string -> t
val pi : string -> string -> t
val attr : string -> string -> attribute

(** {1 Access} *)

val attr_value : element -> string -> string option
val has_attr : element -> string -> bool

val child_elements : element -> element list
(** Direct children that are elements. *)

val child_element : element -> string -> element option
(** First direct child element with that (as-written) name. *)

val children_named : element -> string -> element list

val text_content : element -> string
(** Concatenated character data of the direct children. *)

(** {1 Utilities} *)

val is_whitespace : string -> bool

val strip_layout : t -> t
(** Drop whitespace-only text nodes, comments and processing
    instructions, recursively. *)

val equal : t -> t -> bool
(** Structural equality; attribute order is irrelevant. *)

val count_nodes : t -> int
val depth : t -> int
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Prefix-order fold over every node. *)
