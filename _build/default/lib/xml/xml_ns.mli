(** XML namespace resolution — the mechanism the paper uses to mark
    intensional call nodes (elements in the
    [http://www.activexml.com/ns/int] namespace, Section 7). *)

type env
(** Prefix-to-URI bindings in scope; [""] is the default namespace. *)

val empty_env : env

val split_name : string -> string option * string
(** ["prefix:local"] to [(Some "prefix", "local")]. *)

val extend : env -> Xml_tree.element -> env
(** Add the [xmlns] / [xmlns:p] declarations of an element. *)

val expanded_name : env -> Xml_tree.element -> string option * string
(** Namespace URI (if any) and local name of an element under [env];
    the element's own declarations are taken into account. *)

val expanded_attr_name : env -> Xml_tree.attribute -> string option * string
(** Attributes without a prefix have no namespace (per the XML spec). *)

val iter_elements : (env -> Xml_tree.element -> unit) -> Xml_tree.t -> unit
(** Walk the tree with the namespace environment in force at each
    element. *)

val element_is : env -> uri:string -> local:string -> Xml_tree.element -> bool
