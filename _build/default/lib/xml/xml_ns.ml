(* XML namespace resolution (the mechanism the paper uses to mark
   intensional call nodes: elements in the
   http://www.activexml.com/ns/int namespace, Section 7).

   An environment maps prefixes to URIs; [""] is the default namespace. *)

module String_map = Map.Make (String)

type env = string String_map.t

let empty_env : env = String_map.empty

(* Split "prefix:local" into (Some prefix, local) or (None, name). *)
let split_name name =
  match String.index_opt name ':' with
  | None -> (None, name)
  | Some i ->
    (Some (String.sub name 0 i), String.sub name (i + 1) (String.length name - i - 1))

(* Extend [env] with the xmlns declarations of [element]. *)
let extend env (element : Xml_tree.element) =
  List.fold_left
    (fun env (a : Xml_tree.attribute) ->
      if String.equal a.name "xmlns" then String_map.add "" a.value env
      else
        match split_name a.name with
        | Some "xmlns", prefix -> String_map.add prefix a.value env
        | _ -> env)
    env element.attrs

(* Namespace URI and local name of an element under [env].
   Elements without a prefix take the default namespace (if any). *)
let expanded_name env (element : Xml_tree.element) =
  let env = extend env element in
  match split_name element.name with
  | None, local -> (String_map.find_opt "" env, local)
  | Some prefix, local -> (String_map.find_opt prefix env, local)

(* Attributes without a prefix have no namespace (per the XML spec). *)
let expanded_attr_name env (attr : Xml_tree.attribute) =
  match split_name attr.name with
  | None, local -> (None, local)
  | Some prefix, local -> (String_map.find_opt prefix env, local)

(* Walk the tree, calling [f env element] on every element with the
   namespace environment in force at that element. *)
let iter_elements f tree =
  let rec go env (node : Xml_tree.t) =
    match node with
    | Element e ->
      let env = extend env e in
      f env e;
      List.iter (go env) e.children
    | Text _ | Cdata _ | Comment _ | Pi _ -> ()
  in
  go empty_env tree

(* Does [element] (under [env]) live in namespace [uri] with local name
   [local]? *)
let element_is env ~uri ~local element =
  match expanded_name env element with
  | Some u, l -> String.equal u uri && String.equal l local
  | None, _ -> false
