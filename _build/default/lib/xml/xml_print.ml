(* Serialization of XML trees, compact or indented. *)

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun (a : Xml_tree.attribute) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf a.name;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr a.value);
      Buffer.add_char buf '"')
    attrs

let rec add_compact buf (node : Xml_tree.t) =
  match node with
  | Text s -> Buffer.add_string buf (escape_text s)
  | Cdata s ->
    Buffer.add_string buf "<![CDATA[";
    Buffer.add_string buf s;
    Buffer.add_string buf "]]>"
  | Comment s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Pi { target; content } ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf target;
    if content <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf content
    end;
    Buffer.add_string buf "?>"
  | Element e ->
    Buffer.add_char buf '<';
    Buffer.add_string buf e.name;
    add_attrs buf e.attrs;
    if e.children = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      List.iter (add_compact buf) e.children;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.name;
      Buffer.add_char buf '>'
    end

let to_string node =
  let buf = Buffer.create 256 in
  add_compact buf node;
  Buffer.contents buf

(* Indented output: safe only for "data-oriented" XML where surrounding
   whitespace is not significant (always true for this system's trees). *)
let rec add_pretty buf indent (node : Xml_tree.t) =
  let pad () = Buffer.add_string buf (String.make (2 * indent) ' ') in
  match node with
  | Text s ->
    pad ();
    Buffer.add_string buf (escape_text s);
    Buffer.add_char buf '\n'
  | Cdata _ | Comment _ | Pi _ ->
    pad ();
    add_compact buf node;
    Buffer.add_char buf '\n'
  | Element e ->
    pad ();
    Buffer.add_char buf '<';
    Buffer.add_string buf e.name;
    add_attrs buf e.attrs;
    (match e.children with
     | [] -> Buffer.add_string buf "/>\n"
     | [ Text s ] ->
       Buffer.add_char buf '>';
       Buffer.add_string buf (escape_text s);
       Buffer.add_string buf "</";
       Buffer.add_string buf e.name;
       Buffer.add_string buf ">\n"
     | children ->
       Buffer.add_string buf ">\n";
       List.iter (add_pretty buf (indent + 1)) children;
       pad ();
       Buffer.add_string buf "</";
       Buffer.add_string buf e.name;
       Buffer.add_string buf ">\n")

let to_pretty_string ?(xml_decl = false) node =
  let buf = Buffer.create 256 in
  if xml_decl then Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  add_pretty buf 0 node;
  Buffer.contents buf

let pp ppf node = Fmt.string ppf (to_string node)
