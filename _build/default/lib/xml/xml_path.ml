(* A small path query language over XML trees, used by the Active XML
   peer to define declarative services over its repository (Section 7:
   "Web services, defined declaratively as queries ... on top of the
   repository documents").

   Grammar:  path  ::= step+
             step  ::= ("/" | "//") test pred*
             test  ::= name | "*" | "text()"
             pred  ::= "[" digits "]" | "[@" name "=" "'"value"'" "]"

   Predicates select by 1-based position within each context node's
   matches, or by attribute value.

   "/" selects direct children, "//" selects descendants-or-self. The
   query is evaluated against the root node; "/name" requires the root
   element itself to be named [name] for the first step, matching the
   usual document-node convention. *)

type test = Name of string | Any | Text

type axis = Child | Descendant

type pred =
  | Position of int                          (* [n], 1-based *)
  | Attr_equals of { name : string; value : string }  (* [@a='v'] *)

type step = { axis : axis; test : test; preds : pred list }

type t = step list

exception Parse_error of string

let parse_test s =
  if String.equal s "*" then Any
  else if String.equal s "text()" then Text
  else if String.length s = 0 then raise (Parse_error "empty step")
  else Name s

let parse_pred text =
  (* text without the surrounding brackets *)
  if String.length text = 0 then raise (Parse_error "empty predicate")
  else if text.[0] = '@' then begin
    match String.index_opt text '=' with
    | None -> raise (Parse_error "attribute predicate needs '='")
    | Some eq ->
      let name = String.sub text 1 (eq - 1) in
      let value = String.sub text (eq + 1) (String.length text - eq - 1) in
      let value =
        let n = String.length value in
        if n >= 2
           && ((value.[0] = '\'' && value.[n - 1] = '\'')
               || (value.[0] = '"' && value.[n - 1] = '"'))
        then String.sub value 1 (n - 2)
        else raise (Parse_error "attribute value must be quoted")
      in
      if name = "" then raise (Parse_error "attribute predicate needs a name");
      Attr_equals { name; value }
  end
  else
    match int_of_string_opt text with
    | Some n when n >= 1 -> Position n
    | Some _ | None -> raise (Parse_error ("bad predicate [" ^ text ^ "]"))

let parse path : t =
  if String.length path = 0 || path.[0] <> '/' then
    raise (Parse_error "a path must start with '/'");
  let n = String.length path in
  let steps = ref [] in
  let i = ref 0 in
  while !i < n do
    let axis =
      if !i + 1 < n && path.[!i] = '/' && path.[!i + 1] = '/' then begin
        i := !i + 2;
        Descendant
      end
      else begin
        incr i;
        Child
      end
    in
    let start = !i in
    while !i < n && path.[!i] <> '/' && path.[!i] <> '[' do incr i done;
    let test = parse_test (String.sub path start (!i - start)) in
    let preds = ref [] in
    while !i < n && path.[!i] = '[' do
      let close =
        match String.index_from_opt path !i ']' with
        | Some c -> c
        | None -> raise (Parse_error "unterminated predicate")
      in
      preds := parse_pred (String.sub path (!i + 1) (close - !i - 1)) :: !preds;
      i := close + 1
    done;
    steps := { axis; test; preds = List.rev !preds } :: !steps
  done;
  List.rev !steps

let matches test (node : Xml_tree.t) =
  match test, node with
  | Name n, Element e -> String.equal e.name n
  | Any, Element _ -> true
  | Text, (Text _ | Cdata _) -> true
  | (Name _ | Any | Text), _ -> false

let rec descendants_or_self (node : Xml_tree.t) =
  node
  :: (match node with
      | Element e -> List.concat_map descendants_or_self e.children
      | Text _ | Cdata _ | Comment _ | Pi _ -> [])

let children_of (node : Xml_tree.t) =
  match node with
  | Element e -> e.children
  | Text _ | Cdata _ | Comment _ | Pi _ -> []

(* Evaluate [steps] against [root]. For the first Child step the root
   itself is the candidate (document-node convention). *)
let satisfies_pred matched i (pred : pred) =
  match pred with
  | Position n -> i + 1 = n
  | Attr_equals { name; value } ->
    (match matched with
     | Xml_tree.Element e ->
       (match Xml_tree.attr_value e name with
        | Some v -> String.equal v value
        | None -> false)
     | _ -> false)

let select_steps steps root : Xml_tree.t list =
  let initial =
    match steps with
    | { axis = Child; _ } :: _ -> [ `Self root ]
    | _ -> [ `Node root ]
  in
  let apply candidates { axis; test; preds } =
    candidates
    |> List.concat_map (fun c ->
           let pool =
             match c, axis with
             | `Self node, Child -> [ node ]  (* root element matches itself *)
             | `Node node, Child -> children_of node
             | (`Self node | `Node node), Descendant -> descendants_or_self node
           in
           let matched = List.filter (matches test) pool in
           (* predicates apply in order; positions are relative to the
              matches surviving the previous predicates, per context *)
           let filtered =
             List.fold_left
               (fun ms pred ->
                 List.filteri (fun i m -> satisfies_pred m i pred) ms)
               matched preds
           in
           List.map (fun n -> `Node n) filtered)
  in
  List.fold_left apply initial steps
  |> List.map (function `Node n | `Self n -> n)

let select path root = select_steps (parse path) root

(* Convenience: string values of selected nodes (text of elements,
   contents of text nodes). *)
let select_strings path root =
  select path root
  |> List.map (function
       | Xml_tree.Element e -> Xml_tree.text_content e
       | Xml_tree.Text s | Xml_tree.Cdata s -> s
       | Xml_tree.Comment _ | Xml_tree.Pi _ -> "")
