lib/xml/xml_print.ml: Buffer Fmt List String Xml_tree
