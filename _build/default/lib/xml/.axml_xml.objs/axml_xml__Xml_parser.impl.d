lib/xml/xml_parser.ml: Buffer Char Fmt List Result String Xml_tree
