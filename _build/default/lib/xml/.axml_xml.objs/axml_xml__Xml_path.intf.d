lib/xml/xml_path.mli: Xml_tree
