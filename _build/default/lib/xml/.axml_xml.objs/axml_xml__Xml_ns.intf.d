lib/xml/xml_ns.mli: Xml_tree
