lib/xml/xml_print.mli: Fmt Xml_tree
