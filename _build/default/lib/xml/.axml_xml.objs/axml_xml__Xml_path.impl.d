lib/xml/xml_path.ml: List String Xml_tree
