lib/xml/xml_ns.ml: List Map String Xml_tree
