lib/xml/xml_tree.ml: List Option String
