(** A small path query language over XML trees, used by Active XML
    peers to define declarative services over their repositories
    (Section 7).

    Grammar: [path ::= step+], [step ::= ("/" | "//") test pred*],
    [test ::= name | "*" | "text()"],
    [pred ::= "[" digits "]" | "[@" name "=" "\'" value "\'" "]"].
    ["/"] selects direct children, ["//"] descendants-or-self; for the
    first child step the root element itself is the candidate
    (document-node convention). Predicates select by 1-based position
    within each context node\'s matches, or by attribute value. *)

type test = Name of string | Any | Text
type axis = Child | Descendant

type pred =
  | Position of int
  | Attr_equals of { name : string; value : string }

type step = { axis : axis; test : test; preds : pred list }
type t = step list

exception Parse_error of string

val parse : string -> t
val select : string -> Xml_tree.t -> Xml_tree.t list
val select_steps : t -> Xml_tree.t -> Xml_tree.t list

val select_strings : string -> Xml_tree.t -> string list
(** String values of selected nodes (text content of elements, contents
    of text nodes). *)
