(** Serialization of XML trees. *)

val escape_text : string -> string
val escape_attr : string -> string

val to_string : Xml_tree.t -> string
(** Compact, single-line serialization. *)

val to_pretty_string : ?xml_decl:bool -> Xml_tree.t -> string
(** Indented serialization; safe for data-oriented XML where
    surrounding whitespace is insignificant (always true for this
    system's trees). *)

val pp : Xml_tree.t Fmt.t
