(* The XML node tree used as carrier syntax for intensional documents
   (Section 7 of the paper). Names are kept as written ("prefix:local");
   namespace resolution is a separate pass in [Xml_ns]. *)

type attribute = { name : string; value : string }

type t =
  | Element of element
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of { target : string; content : string }

and element = { name : string; attrs : attribute list; children : t list }

let element ?(attrs = []) name children = Element { name; attrs; children }
let text s = Text s
let cdata s = Cdata s
let comment s = Comment s
let pi target content = Pi { target; content }
let attr name value = { name; value }

let attr_value element name =
  List.find_map
    (fun (a : attribute) -> if String.equal a.name name then Some a.value else None)
    element.attrs

let has_attr element name = Option.is_some (attr_value element name)

(* Direct children that are elements. *)
let child_elements element =
  List.filter_map
    (function Element e -> Some e | Text _ | Cdata _ | Comment _ | Pi _ -> None)
    element.children

let child_element element name =
  List.find_opt (fun e -> String.equal e.name name) (child_elements element)

let children_named element name =
  List.filter (fun e -> String.equal e.name name) (child_elements element)

(* Concatenated character data of the direct children. *)
let text_content element =
  element.children
  |> List.filter_map (function
       | Text s | Cdata s -> Some s
       | Element _ | Comment _ | Pi _ -> None)
  |> String.concat ""

let is_whitespace s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

(* Remove whitespace-only text nodes and comments/PIs, recursively;
   documents compare structurally after this normalization. *)
let rec strip_layout node =
  match node with
  | Element e ->
    let children =
      e.children
      |> List.filter (function
           | Text s -> not (is_whitespace s)
           | Comment _ | Pi _ -> false
           | Element _ | Cdata _ -> true)
      |> List.map strip_layout
    in
    Element { e with children }
  | Text _ | Cdata _ | Comment _ | Pi _ -> node

let rec equal n1 n2 =
  match n1, n2 with
  | Element e1, Element e2 ->
    String.equal e1.name e2.name
    && List.length e1.attrs = List.length e2.attrs
    && List.for_all
         (fun (a : attribute) ->
           match attr_value e2 a.name with
           | Some v -> String.equal v a.value
           | None -> false)
         e1.attrs
    && List.length e1.children = List.length e2.children
    && List.for_all2 equal e1.children e2.children
  | Text s1, Text s2 | Cdata s1, Cdata s2 | Comment s1, Comment s2 ->
    String.equal s1 s2
  | Pi p1, Pi p2 -> String.equal p1.target p2.target && String.equal p1.content p2.content
  | (Element _ | Text _ | Cdata _ | Comment _ | Pi _), _ -> false

let rec count_nodes = function
  | Element e -> 1 + List.fold_left (fun acc c -> acc + count_nodes c) 0 e.children
  | Text _ | Cdata _ | Comment _ | Pi _ -> 1

let rec depth = function
  | Element e -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 e.children
  | Text _ | Cdata _ | Comment _ | Pi _ -> 1

(* Fold over every node of the tree, prefix order. *)
let rec fold f acc node =
  let acc = f acc node in
  match node with
  | Element e -> List.fold_left (fold f) acc e.children
  | Text _ | Cdata _ | Comment _ | Pi _ -> acc
