(* Hand-written XML parser covering the subset the Active XML layer needs:
   prolog, elements, attributes, character data with entity references,
   CDATA sections, comments and processing instructions. DOCTYPE
   declarations are skipped. Positions are tracked for error reporting. *)

type position = { line : int; column : int }

exception Error of { pos : position; message : string }

type cursor = {
  input : string;
  mutable offset : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
}

let make_cursor input = { input; offset = 0; line = 1; bol = 0 }

let position cur = { line = cur.line; column = cur.offset - cur.bol + 1 }

let fail cur message = raise (Error { pos = position cur; message })

let eof cur = cur.offset >= String.length cur.input

let peek cur = if eof cur then '\000' else cur.input.[cur.offset]

let peek2 cur =
  if cur.offset + 1 >= String.length cur.input then '\000'
  else cur.input.[cur.offset + 1]

let advance cur =
  if not (eof cur) then begin
    if cur.input.[cur.offset] = '\n' then begin
      cur.line <- cur.line + 1;
      cur.bol <- cur.offset + 1
    end;
    cur.offset <- cur.offset + 1
  end

let advance_n cur n = for _ = 1 to n do advance cur done

let looking_at cur prefix =
  let n = String.length prefix in
  cur.offset + n <= String.length cur.input
  && String.sub cur.input cur.offset n = prefix

let skip_whitespace cur =
  while (not (eof cur))
        && (match peek cur with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance cur
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name cur =
  if not (is_name_start (peek cur)) then
    fail cur (Fmt.str "expected a name, found %C" (peek cur));
  let start = cur.offset in
  while (not (eof cur)) && is_name_char (peek cur) do advance cur done;
  String.sub cur.input start (cur.offset - start)

(* Decode a single entity reference starting at '&'. *)
let read_entity cur =
  advance cur; (* '&' *)
  let start = cur.offset in
  while (not (eof cur)) && peek cur <> ';' do advance cur done;
  if eof cur then fail cur "unterminated entity reference";
  let body = String.sub cur.input start (cur.offset - start) in
  advance cur; (* ';' *)
  match body with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    if String.length body > 1 && body.[0] = '#' then begin
      let code =
        try
          if body.[1] = 'x' || body.[1] = 'X' then
            int_of_string ("0x" ^ String.sub body 2 (String.length body - 2))
          else int_of_string (String.sub body 1 (String.length body - 1))
        with Failure _ -> fail cur (Fmt.str "bad character reference &%s;" body)
      in
      if code < 0x80 then String.make 1 (Char.chr code)
      else begin
        (* UTF-8 encode *)
        let buf = Buffer.create 4 in
        if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else if code < 0x10000 then begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        Buffer.contents buf
      end
    end
    else fail cur (Fmt.str "unknown entity &%s;" body)

let read_quoted cur =
  let quote = peek cur in
  if quote <> '"' && quote <> '\'' then fail cur "expected a quoted value";
  advance cur;
  let buf = Buffer.create 16 in
  while (not (eof cur)) && peek cur <> quote do
    if peek cur = '&' then Buffer.add_string buf (read_entity cur)
    else begin
      Buffer.add_char buf (peek cur);
      advance cur
    end
  done;
  if eof cur then fail cur "unterminated attribute value";
  advance cur;
  Buffer.contents buf

let read_attributes cur =
  let attrs = ref [] in
  let continue = ref true in
  while !continue do
    skip_whitespace cur;
    match peek cur with
    | '>' | '/' | '?' | '\000' -> continue := false
    | _ ->
      let name = read_name cur in
      skip_whitespace cur;
      if peek cur <> '=' then fail cur (Fmt.str "expected '=' after attribute %s" name);
      advance cur;
      skip_whitespace cur;
      let value = read_quoted cur in
      attrs := Xml_tree.attr name value :: !attrs
  done;
  List.rev !attrs

let read_until cur terminator what =
  let start = cur.offset in
  let tlen = String.length terminator in
  let rec scan () =
    if eof cur then fail cur (Fmt.str "unterminated %s" what)
    else if looking_at cur terminator then begin
      let body = String.sub cur.input start (cur.offset - start) in
      advance_n cur tlen;
      body
    end
    else begin
      advance cur;
      scan ()
    end
  in
  scan ()

let skip_doctype cur =
  (* skip until the matching '>' allowing one level of [...] *)
  let depth = ref 1 in
  while !depth > 0 do
    if eof cur then fail cur "unterminated DOCTYPE";
    (match peek cur with
     | '<' -> incr depth
     | '>' -> decr depth
     | _ -> ());
    advance cur
  done

let rec read_node cur : Xml_tree.t option =
  if eof cur then None
  else if looking_at cur "<!--" then begin
    advance_n cur 4;
    let body = read_until cur "-->" "comment" in
    Some (Xml_tree.comment body)
  end
  else if looking_at cur "<![CDATA[" then begin
    advance_n cur 9;
    let body = read_until cur "]]>" "CDATA section" in
    Some (Xml_tree.cdata body)
  end
  else if looking_at cur "<!DOCTYPE" then begin
    advance_n cur 9;
    skip_doctype cur;
    read_node cur
  end
  else if looking_at cur "<?" then begin
    advance_n cur 2;
    let target = read_name cur in
    skip_whitespace cur;
    let content = read_until cur "?>" "processing instruction" in
    Some (Xml_tree.pi target (String.trim content))
  end
  else if looking_at cur "</" then None (* caller handles the close tag *)
  else if peek cur = '<' then Some (read_element cur)
  else begin
    (* character data *)
    let buf = Buffer.create 32 in
    while (not (eof cur)) && peek cur <> '<' do
      if peek cur = '&' then Buffer.add_string buf (read_entity cur)
      else begin
        Buffer.add_char buf (peek cur);
        advance cur
      end
    done;
    Some (Xml_tree.text (Buffer.contents buf))
  end

and read_element cur : Xml_tree.t =
  advance cur; (* '<' *)
  let name = read_name cur in
  let attrs = read_attributes cur in
  skip_whitespace cur;
  if peek cur = '/' && peek2 cur = '>' then begin
    advance_n cur 2;
    Xml_tree.element ~attrs name []
  end
  else if peek cur = '>' then begin
    advance cur;
    let children = ref [] in
    let rec loop () =
      if eof cur then fail cur (Fmt.str "unterminated element <%s>" name)
      else if looking_at cur "</" then begin
        advance_n cur 2;
        let close = read_name cur in
        skip_whitespace cur;
        if peek cur <> '>' then fail cur "malformed close tag";
        advance cur;
        if not (String.equal close name) then
          fail cur (Fmt.str "mismatched close tag </%s> for <%s>" close name)
      end
      else
        match read_node cur with
        | Some node -> children := node :: !children; loop ()
        | None -> loop ()
    in
    loop ();
    Xml_tree.element ~attrs name (List.rev !children)
  end
  else fail cur (Fmt.str "malformed start tag <%s>" name)

(* [parse input] parses a whole document and returns its root element.
   Leading/trailing comments, PIs and whitespace are allowed. *)
let parse input : Xml_tree.t =
  let cur = make_cursor input in
  let root = ref None in
  let rec loop () =
    skip_whitespace cur;
    if not (eof cur) then begin
      (match read_node cur with
       | Some (Xml_tree.Element _ as e) ->
         (match !root with
          | None -> root := Some e
          | Some _ -> fail cur "multiple root elements")
       | Some (Xml_tree.Text s) when Xml_tree.is_whitespace s -> ()
       | Some (Xml_tree.Comment _ | Xml_tree.Pi _) -> ()
       | Some (Xml_tree.Text _ | Xml_tree.Cdata _) ->
         fail cur "character data outside the root element"
       | None -> fail cur "unexpected close tag");
      loop ()
    end
  in
  loop ();
  match !root with
  | Some e -> e
  | None -> fail cur "no root element"

let parse_result input =
  match parse input with
  | tree -> Ok tree
  | exception Error { pos; message } ->
    Result.error (Fmt.str "line %d, column %d: %s" pos.line pos.column message)
