(* WSDL_int descriptors (Section 7): self-contained XML descriptions of a
   service's intensional signature. A descriptor is an XML Schema_int
   document holding the <function> declaration plus the (transitively)
   referenced element types, so the receiving peer can type-check calls
   without any other context. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module T = Axml_xml.Xml_tree
module Service = Axml_services.Service

exception Wsdl_error of string

(* Element labels referenced transitively by [contents] in [types]. *)
let referenced_labels (types : Schema.t) contents =
  let seen = ref Schema.String_set.empty in
  let rec visit_content c =
    List.iter
      (fun atom ->
        match atom with
        | Schema.A_label l -> visit_label l
        | Schema.A_fun _ | Schema.A_pattern _ | Schema.A_data
        | Schema.A_any_element | Schema.A_any_fun -> ())
      (Schema.atoms_of_content c)
  and visit_label l =
    if not (Schema.String_set.mem l !seen) then begin
      seen := Schema.String_set.add l !seen;
      match Schema.find_element types l with
      | Some c -> visit_content c
      | None -> ()
    end
  in
  List.iter visit_content contents;
  Schema.String_set.elements !seen

(* The WSDL_int document of [service], with element types drawn from
   [types]. *)
let describe ~(types : Schema.t) (service : Service.t) : T.t =
  let decl = Service.declaration service in
  let labels =
    referenced_labels types [ decl.Schema.f_input; decl.Schema.f_output ]
  in
  let schema =
    List.fold_left
      (fun s l ->
        match Schema.find_element types l with
        | Some c -> Schema.add_element s l c
        | None -> raise (Wsdl_error (Fmt.str "type %S is not declared" l)))
      Schema.empty labels
  in
  let schema = Schema.add_function schema decl in
  Xml_schema_int.to_xml schema

let describe_string ?(pretty = true) ~types service =
  let xml = describe ~types service in
  if pretty then Axml_xml.Xml_print.to_pretty_string ~xml_decl:true xml
  else Axml_xml.Xml_print.to_string xml

(* Parse a WSDL_int descriptor back into the function declaration plus
   the element types it carries. *)
let parse (tree : T.t) : Schema.func * Schema.t =
  let schema =
    try Xml_schema_int.of_xml tree
    with Xml_schema_int.Schema_syntax_error m -> raise (Wsdl_error m)
  in
  match Schema.function_names schema with
  | [ name ] ->
    (match Schema.find_function schema name with
     | Some f -> (f, schema)
     | None -> assert false)
  | [] -> raise (Wsdl_error "descriptor declares no function")
  | _ -> raise (Wsdl_error "descriptor declares several functions")

let parse_string input =
  match Axml_xml.Xml_parser.parse_result input with
  | Ok tree -> parse tree
  | Error e -> raise (Wsdl_error ("malformed XML: " ^ e))

(* Import a parsed descriptor into a schema: add the function and any
   missing element types (existing declarations win). *)
let import (schema : Schema.t) (f, types) =
  let schema =
    List.fold_left
      (fun s l ->
        match Schema.find_element s l, Schema.find_element types l with
        | Some _, _ -> s
        | None, Some c -> Schema.add_element s l c
        | None, None -> s)
      schema (Schema.element_names types)
  in
  match Schema.find_function schema f.Schema.f_name with
  | Some existing ->
    if R.equal (fun a b -> a = b) existing.Schema.f_input f.Schema.f_input
       && R.equal (fun a b -> a = b) existing.Schema.f_output f.Schema.f_output
    then schema
    else
      raise
        (Wsdl_error
           (Fmt.str "function %S is already declared with another signature"
              f.Schema.f_name))
  | None -> Schema.add_function schema f
