(* Exchange-schema negotiation — the "negotiator" extension sketched in
   the paper's conclusion: before exchanging data, two peers agree on an
   intensional exchange schema. The sender walks the receiver's
   preference-ordered proposals and picks the first one that all its
   documents can be safely rewritten into (the schema-level test of
   Section 6). *)

module Schema = Axml_schema.Schema
module Schema_rewrite = Axml_core.Schema_rewrite

type proposal = {
  name : string;         (* a human-readable tag, e.g. "fully-materialized" *)
  schema : Schema.t;
}

type rejection = {
  proposal : string;
  verdicts : Schema_rewrite.label_verdict list;  (* why it was rejected *)
}

type agreement = {
  chosen : proposal;
  rejected : rejection list;  (* the proposals tried before, in order *)
}

(* [negotiate ~s0 ~root proposals] returns the first compatible proposal
   together with the reasons the earlier ones failed, or the full
   rejection list when none fits. *)
let negotiate ?k ?engine ?predicate ~(s0 : Schema.t) ~root
    (proposals : proposal list) : (agreement, rejection list) result =
  let rec go rejected = function
    | [] -> Error (List.rev rejected)
    | p :: rest ->
      let result =
        Schema_rewrite.check ?k ?engine ?predicate ~s0 ~root ~target:p.schema ()
      in
      if result.Schema_rewrite.compatible then
        Ok { chosen = p; rejected = List.rev rejected }
      else
        let bad =
          List.filter (fun v -> not v.Schema_rewrite.safe) result.Schema_rewrite.verdicts
        in
        go ({ proposal = p.name; verdicts = bad } :: rejected) rest
  in
  go [] proposals

let pp_rejection ppf r =
  Fmt.pf ppf "%s: %a" r.proposal
    Fmt.(
      list ~sep:(any "; ")
        (fun ppf (v : Schema_rewrite.label_verdict) ->
          Fmt.pf ppf "%s (%s)" v.Schema_rewrite.label
            (Option.value ~default:"?" v.Schema_rewrite.reason)))
    r.verdicts
