(** SOAP-style envelopes for peer-to-peer exchanges: every call between
    peers serializes its (possibly intensional) parameters and results
    through this wire format. *)

val soap_ns : string

exception Protocol_error of string

type message =
  | Request of { method_name : string; params : Axml_core.Document.forest }
  | Response of { method_name : string; result : Axml_core.Document.forest }
  | Fault of { code : string; reason : string }

val encode : message -> string
val decode : string -> message
(** @raise Protocol_error on malformed envelopes. *)
