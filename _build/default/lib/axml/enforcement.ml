(* The Schema Enforcement module (Section 7): the component that sits on
   every peer's communication path and guarantees that exchanged data
   matches the agreed (WSDL_int / exchange) schema. Its three steps:
     (i)   verify that the data conforms to the schema;
     (ii)  if not, try to rewrite it into the required structure —
           safely if it can, optionally falling back to a possible
           rewriting, optionally pre-firing cheap calls (mixed);
     (iii) if this fails, report an error. *)

module Schema = Axml_schema.Schema
module Document = Axml_core.Document
module Validate = Axml_core.Validate
module Rewriter = Axml_core.Rewriter
module Execute = Axml_core.Execute

type config = {
  k : int;
  engine : Rewriter.engine;
  fallback_possible : bool;
    (* when the safe rewriting does not exist, attempt a possible one *)
  eager_calls : (string -> bool) option;
    (* mixed approach: services to invoke up-front (Section 5) *)
}

let default_config = {
  k = 1;
  engine = Rewriter.Lazy;
  fallback_possible = false;
  eager_calls = None;
}

type action =
  | Conformed            (* step (i): already an instance, nothing to do *)
  | Rewritten            (* step (ii): safe rewriting *)
  | Rewritten_possible   (* step (ii): possible rewriting that succeeded *)

type report = {
  action : action;
  invocations : Rewriter.located_invocation list;
}

type error =
  | Rejected of Rewriter.failure list       (* step (iii) *)
  | Attempt_failed of Rewriter.failure list (* a possible rewriting failed at run time *)

let pp_error ppf = function
  | Rejected fs ->
    Fmt.pf ppf "rejected: %a" Fmt.(list ~sep:(any "; ") Rewriter.pp_failure) fs
  | Attempt_failed fs ->
    Fmt.pf ppf "attempt failed: %a" Fmt.(list ~sep:(any "; ") Rewriter.pp_failure) fs

(* Enforce [exchange] on [doc]. [s0] is the local schema (it brings the
   WSDL declarations of the functions the document may embed). *)
let enforce ?(config = default_config) ?predicate ~s0 ~exchange
    ~(invoker : Execute.invoker) (doc : Document.t) :
    (Document.t * report, error) result =
  let env = Schema.env_of_schemas ?predicate s0 exchange in
  (* step (i): validation *)
  let ctx = Validate.ctx ~env exchange in
  if Validate.document_violations ctx doc = [] then
    Ok (doc, { action = Conformed; invocations = [] })
  else begin
    (* step (ii): rewriting *)
    let rw =
      Rewriter.create ~k:config.k ~engine:config.engine ?predicate ~s0
        ~target:exchange ()
    in
    let doc, pre_invocations =
      match config.eager_calls with
      | Some eager -> Rewriter.pre_materialize rw ~eager_calls:eager ~invoker doc
      | None -> (doc, [])
    in
    match Rewriter.materialize ~mode:Rewriter.Safe rw ~invoker doc with
    | Ok (doc', invs) ->
      Ok (doc', { action = Rewritten; invocations = pre_invocations @ invs })
    | Error safe_failures ->
      if not config.fallback_possible then Error (Rejected safe_failures)
      else begin
        match Rewriter.materialize ~mode:Rewriter.Possible_mode rw ~invoker doc with
        | Ok (doc', invs) ->
          Ok (doc',
              { action = Rewritten_possible;
                invocations = pre_invocations @ invs })
        | Error fs ->
          let runtime =
            List.exists
              (fun f ->
                match f.Rewriter.reason with
                | Rewriter.Execution_failed _ -> true
                | _ -> false)
              fs
          in
          if runtime then Error (Attempt_failed fs) else Error (Rejected fs)
      end
  end
