(** WSDL_int descriptors (Section 7): self-contained XML descriptions of
    a service's intensional signature — the function declaration plus
    the transitively referenced element types, so the receiving peer can
    type-check calls without any other context. *)

exception Wsdl_error of string

val referenced_labels :
  Axml_schema.Schema.t -> Axml_schema.Schema.content list -> string list

val describe :
  types:Axml_schema.Schema.t -> Axml_services.Service.t -> Axml_xml.Xml_tree.t
(** @raise Wsdl_error when a referenced element type is missing from
    [types]. *)

val describe_string :
  ?pretty:bool -> types:Axml_schema.Schema.t -> Axml_services.Service.t -> string

val parse :
  Axml_xml.Xml_tree.t -> Axml_schema.Schema.func * Axml_schema.Schema.t
(** The function declaration and the element types it carries. *)

val parse_string : string -> Axml_schema.Schema.func * Axml_schema.Schema.t

val import :
  Axml_schema.Schema.t ->
  Axml_schema.Schema.func * Axml_schema.Schema.t ->
  Axml_schema.Schema.t
(** Add the function and any missing element types to a schema; existing
    element declarations win. @raise Wsdl_error on a signature
    conflict. *)
