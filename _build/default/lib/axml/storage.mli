(** Persistent storage for intensional documents: a peer's schema and
    repository serialize to a directory ([schema.axml] in XML Schema_int
    syntax, one intensional XML file per document, plus a [MANIFEST]).
    Repository names are percent-encoded into file names, so arbitrary
    names round-trip. *)

exception Storage_error of string

val encode_name : string -> string
val decode_name : string -> string

val save_peer : dir:string -> Peer.t -> unit
(** Creates [dir] (and [dir]/docs) as needed. Services and registry
    contents are NOT persisted — they are live code. *)

val load_peer :
  ?enforcement:Enforcement.config -> dir:string -> name:string -> unit -> Peer.t
(** @raise Storage_error on missing or malformed state. *)

val save_document : path:string -> Axml_core.Document.t -> unit
val load_document : path:string -> Axml_core.Document.t
