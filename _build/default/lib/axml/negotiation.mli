(** Exchange-schema negotiation — the "negotiator" extension sketched in
    the paper's conclusion: the sender walks the receiver's
    preference-ordered proposals and picks the first one that {e all}
    its documents can be safely rewritten into (the schema-level test of
    Section 6). *)

type proposal = {
  name : string;
  schema : Axml_schema.Schema.t;
}

type rejection = {
  proposal : string;
  verdicts : Axml_core.Schema_rewrite.label_verdict list;  (** why *)
}

type agreement = {
  chosen : proposal;
  rejected : rejection list;  (** proposals tried before, in order *)
}

val negotiate :
  ?k:int -> ?engine:Axml_core.Rewriter.engine ->
  ?predicate:(string -> string -> bool) ->
  s0:Axml_schema.Schema.t -> root:string ->
  proposal list -> (agreement, rejection list) result

val pp_rejection : rejection Fmt.t
