(* An ActiveXML peer (Section 7): a repository of intensional documents,
   a set of provided Web services defined declaratively over the
   repository, a registry of remote services it can call, and the Schema
   Enforcement module on every communication path.

   Peers talk through the SOAP wire format of [Soap] even in-process, so
   every exchange exercises the full serialize / parse / validate path. *)

module Schema = Axml_schema.Schema
module Document = Axml_core.Document
module Validate = Axml_core.Validate
module Rewriter = Axml_core.Rewriter
module Registry = Axml_services.Registry
module Service = Axml_services.Service

exception Peer_error of string

type query =
  | Const of Document.forest
  | Repository_doc of string
      (* return the named repository document *)
  | Repository_path of { doc : string; path : string }
      (* path query over a repository document *)
  | Compute of (Document.forest -> Document.forest)

type provided = {
  p_name : string;
  p_input : Schema.content;
  p_output : Schema.content;
  p_body : query;
  p_cost : float;
}

type t = {
  name : string;
  mutable schema : Schema.t;  (* the peer's own schema, incl. known WSDLs *)
  repository : (string, Document.t) Hashtbl.t;
  registry : Registry.t;      (* remote services this peer can invoke *)
  provided : (string, provided) Hashtbl.t;
  mutable enforcement : Enforcement.config;
  mutable trusted_peers : string list;
}

let create ?(enforcement = Enforcement.default_config) ~name ~schema () = {
  name;
  schema;
  repository = Hashtbl.create 8;
  registry = Registry.create ~principal:name ();
  provided = Hashtbl.create 8;
  enforcement;
  trusted_peers = [];
}

let schema t = t.schema
let registry t = t.registry
let set_enforcement t config = t.enforcement <- config

(* ------------------------------------------------------------------ *)
(* Repository                                                          *)
(* ------------------------------------------------------------------ *)

let store t name doc = Hashtbl.replace t.repository name doc

let fetch t name =
  match Hashtbl.find_opt t.repository name with
  | Some doc -> doc
  | None -> raise (Peer_error (Fmt.str "peer %s: no document named %S" t.name name))

let documents t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.repository [] |> List.sort compare

(* Path queries over repository documents go through the XML view of the
   document, so intensional nodes traverse as ordinary <int:fun>
   elements. *)
let select t ~doc ~path : Document.forest =
  let xml = Syntax.to_xml (fetch t doc) in
  Axml_xml.Xml_path.select path xml
  |> List.concat_map (Syntax.xml_to_node Axml_xml.Xml_ns.empty_env)

(* ------------------------------------------------------------------ *)
(* Provided services                                                   *)
(* ------------------------------------------------------------------ *)

let provide t ?(cost = 0.) ~name ~input ~output body =
  Hashtbl.replace t.provided name
    { p_name = name; p_input = input; p_output = output; p_body = body;
      p_cost = cost };
  (* the provided service becomes part of the peer's schema (its WSDL) *)
  match Schema.find_function t.schema name with
  | Some _ -> ()
  | None ->
    t.schema <-
      Schema.add_function t.schema
        (Schema.func name ~endpoint:("axml://" ^ t.name) ~input ~output)

let provided_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.provided [] |> List.sort compare

let eval_query t (q : query) (params : Document.forest) : Document.forest =
  match q with
  | Const forest -> forest
  | Repository_doc name -> [ fetch t name ]
  | Repository_path { doc; path } -> select t ~doc ~path
  | Compute f -> f params

(* Serve one call locally, running the Schema Enforcement module on both
   the parameters and the result (Section 7: "before an ActiveXML
   service returns its answer, the module performs the same three steps
   on the returned data"). *)
let serve t ~method_name (params : Document.forest) : Document.forest =
  match Hashtbl.find_opt t.provided method_name with
  | None -> raise (Peer_error (Fmt.str "peer %s provides no service %S" t.name method_name))
  | Some p ->
    (* (i)-(iii) on the parameters, against tau_in *)
    let params =
      let wrapper_name = "#params" in
      let s_in =
        Schema.with_root (Schema.add_element t.schema wrapper_name p.p_input)
          wrapper_name
      in
      let wrapper = Document.elem wrapper_name params in
      let ctx = Validate.ctx ~env:(Schema.env_of_schema s_in) s_in in
      if Validate.violations ctx wrapper = [] then params
      else begin
        let rw =
          Rewriter.create ~k:t.enforcement.Enforcement.k
            ~engine:t.enforcement.Enforcement.engine ~s0:s_in ~target:s_in ()
        in
        match
          Rewriter.materialize rw ~invoker:(Registry.invoker t.registry) wrapper
        with
        | Ok (Document.Elem { children; _ }, _) -> children
        | Ok _ -> raise (Peer_error "parameter enforcement changed the wrapper")
        | Error fs ->
          raise
            (Peer_error
               (Fmt.str "peer %s: parameters of %s rejected: %a" t.name method_name
                  Fmt.(list ~sep:(any "; ") Rewriter.pp_failure)
                  fs))
      end
    in
    let result = eval_query t p.p_body params in
    (* (i)-(iii) on the result, against tau_out *)
    let wrapper_name = "#result" in
    let s_out =
      Schema.with_root (Schema.add_element t.schema wrapper_name p.p_output)
        wrapper_name
    in
    let wrapper = Document.elem wrapper_name result in
    let ctx = Validate.ctx ~env:(Schema.env_of_schema s_out) s_out in
    if Validate.violations ctx wrapper = [] then result
    else begin
      let rw =
        Rewriter.create ~k:t.enforcement.Enforcement.k
          ~engine:t.enforcement.Enforcement.engine ~s0:s_out ~target:s_out ()
      in
      match
        Rewriter.materialize rw ~invoker:(Registry.invoker t.registry) wrapper
      with
      | Ok (Document.Elem { children; _ }, _) -> children
      | Ok _ -> raise (Peer_error "result enforcement changed the wrapper")
      | Error fs ->
        raise
          (Peer_error
             (Fmt.str "peer %s: result of %s rejected: %a" t.name method_name
                Fmt.(list ~sep:(any "; ") Rewriter.pp_failure)
                fs))
    end

(* The SOAP endpoint of the peer: a request envelope in, a response (or
   fault) envelope out. *)
let handle_wire t (wire : string) : string =
  match Soap.decode wire with
  | Soap.Request { method_name; params } ->
    (try Soap.encode (Soap.Response { method_name; result = serve t ~method_name params })
     with
     | Peer_error m -> Soap.encode (Soap.Fault { code = "Client"; reason = m })
     | e ->
       Soap.encode
         (Soap.Fault { code = "Server"; reason = Printexc.to_string e }))
  | Soap.Response _ | Soap.Fault _ ->
    Soap.encode (Soap.Fault { code = "Client"; reason = "expected a request" })

(* ------------------------------------------------------------------ *)
(* Connecting peers                                                    *)
(* ------------------------------------------------------------------ *)

(* Make every service provided by [provider] callable from [t]: the
   proxy serializes through SOAP so the exchange is a faithful
   simulation of the wire protocol. Also imports the provider's WSDL
   declarations (function signature + referenced element types) into
   [t]'s schema. *)
let connect t ~(provider : t) =
  Hashtbl.iter
    (fun name (p : provided) ->
      let behaviour params =
        let wire = Soap.encode (Soap.Request { method_name = name; params }) in
        match Soap.decode (handle_wire provider wire) with
        | Soap.Response { result; _ } -> result
        | Soap.Fault { reason; _ } ->
          raise (Peer_error (Fmt.str "remote fault from %s: %s" provider.name reason))
        | Soap.Request _ -> raise (Peer_error "protocol violation")
      in
      let service =
        Service.make
          ~endpoint:("axml://" ^ provider.name)
          ~namespace:"urn:axml:peer" ~cost:p.p_cost ~input:p.p_input
          ~output:p.p_output name behaviour
      in
      Registry.register t.registry service;
      (* import the WSDL declaration *)
      (match Schema.find_function t.schema name with
       | Some _ -> ()
       | None ->
         t.schema <-
           Schema.add_function t.schema (Service.declaration service)))
    provider.provided;
  (* element types used by the provider's signatures *)
  List.iter
    (fun l ->
      match Schema.find_element t.schema l, Schema.find_element provider.schema l with
      | None, Some c -> t.schema <- Schema.add_element t.schema l c
      | Some _, _ | None, None -> ())
    (Schema.element_names provider.schema)

(* Call a connected service by name, through the registry (and thus
   through SOAP). *)
let call t name params = Registry.invoke t.registry name params

(* ------------------------------------------------------------------ *)
(* Document exchange                                                   *)
(* ------------------------------------------------------------------ *)

type exchange_outcome = {
  sent : Document.t;             (* what went on the wire *)
  report : Enforcement.report;   (* the sender-side enforcement report *)
  wire_bytes : int;
}

(* Send [doc] to [receiver] under the agreed [exchange] schema: the
   sender's enforcement module materializes what must be materialized,
   the document crosses the (simulated) wire in XML, and the receiver
   validates before storing it under [as_name]. *)
let send t ~(receiver : t) ~exchange ?predicate ~as_name doc :
    (exchange_outcome, Enforcement.error) result =
  match
    Enforcement.enforce ~config:t.enforcement ?predicate ~s0:t.schema ~exchange
      ~invoker:(Registry.invoker t.registry) doc
  with
  | Error e -> Error e
  | Ok (doc', report) ->
    let wire = Syntax.to_xml_string ~pretty:false doc' in
    let received = Syntax.of_xml_string wire in
    (* receiver-side validation: never trust the sender *)
    let env = Schema.env_of_schemas ?predicate receiver.schema exchange in
    let ctx = Validate.ctx ~env exchange in
    (match Validate.document_violations ctx received with
     | [] ->
       store receiver as_name received;
       Ok { sent = doc'; report; wire_bytes = String.length wire }
     | violations ->
       Error
         (Enforcement.Rejected
            (List.map
               (fun v ->
                 { Rewriter.at = v.Validate.at;
                   reason =
                     Rewriter.Unsafe_word
                       { context = Fmt.str "%a" Validate.pp_violation_kind v.Validate.kind;
                         word = [] } })
               violations)))
