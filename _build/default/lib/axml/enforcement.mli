(** The Schema Enforcement module (Section 7): the component on every
    peer's communication path that guarantees exchanged data matches the
    agreed schema. Its three steps: (i) verify; (ii) if needed, rewrite —
    safely, optionally falling back to a possible rewriting, optionally
    pre-firing cheap calls (mixed); (iii) otherwise report an error. *)

type config = {
  k : int;
  engine : Axml_core.Rewriter.engine;
  fallback_possible : bool;
    (** attempt a possible rewriting when no safe one exists *)
  eager_calls : (string -> bool) option;
    (** mixed approach: services to invoke up-front (Section 5) *)
}

val default_config : config
(** [k = 1], lazy engine, no fallback, no eager calls. *)

type action =
  | Conformed           (** already an instance, nothing invoked *)
  | Rewritten           (** safe rewriting *)
  | Rewritten_possible  (** possible rewriting that succeeded *)

type report = {
  action : action;
  invocations : Axml_core.Rewriter.located_invocation list;
}

type error =
  | Rejected of Axml_core.Rewriter.failure list
  | Attempt_failed of Axml_core.Rewriter.failure list
    (** a possible rewriting failed at run time *)

val pp_error : error Fmt.t

val enforce :
  ?config:config -> ?predicate:(string -> string -> bool) ->
  s0:Axml_schema.Schema.t -> exchange:Axml_schema.Schema.t ->
  invoker:Axml_core.Execute.invoker -> Axml_core.Document.t ->
  (Axml_core.Document.t * report, error) result
