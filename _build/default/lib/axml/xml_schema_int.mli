(** XML Schema_int (Section 7): the XML syntax for intensional schemas —
    XML Schema restricted to the constructs the paper uses, extended
    with [<function>] and [<functionPattern>] declarations and
    references.

    Particles: [<element ref>], [<function ref>],
    [<functionPattern ref>], [<data/>], [<any/>], [<anyFunction/>], and
    the compositors [<sequence>], [<choice>], [<all>] (compiled through
    permutations, at most 5 children); every particle takes [minOccurs]
    (default 1) and [maxOccurs] (default 1, or ["unbounded"]).
    [<complexType>] wrappers are accepted and transparent. Functions and
    patterns declare their signature with [<params><param>…] and
    [<return>…]. *)

exception Schema_syntax_error of string

val of_xml : Axml_xml.Xml_tree.t -> Axml_schema.Schema.t
(** @raise Schema_syntax_error (also on well-formedness violations). *)

val of_string : string -> Axml_schema.Schema.t

val to_xml : Axml_schema.Schema.t -> Axml_xml.Xml_tree.t
(** Inverse up to language equivalence of every content model
    (property-tested). *)

val to_string : ?pretty:bool -> Axml_schema.Schema.t -> string
