(** The XML wire syntax of intensional documents (Section 7): embedded
    calls are elements in the [http://www.activexml.com/ns/int]
    namespace:

    {v
<int:fun endpointURL="..." methodName="Get_Temp" namespaceURI="...">
  <int:params>
    <int:param><city>Paris</city></int:param>
  </int:params>
</int:fun>
    v}

    Every call node carries its own namespace declaration, so any
    subtree extracted by a query remains a well-formed intensional
    fragment. *)

val axml_ns : string

exception Syntax_error of string

type locator = string -> (string * string) option
(** [(endpointURL, namespaceURI)] of a function, for serialization. *)

val default_locator : locator
(** Everything local. *)

val to_xml : ?locate:locator -> Axml_core.Document.t -> Axml_xml.Xml_tree.t
val to_xml_string : ?locate:locator -> ?pretty:bool -> Axml_core.Document.t -> string

val of_xml : Axml_xml.Xml_tree.t -> Axml_core.Document.t
(** @raise Syntax_error on malformed intensional markup. *)

val of_xml_string : string -> Axml_core.Document.t

(**/**)

(* shared with Soap and Peer for forest-level conversion *)
val node_to_xml : locate:locator -> Axml_core.Document.t -> Axml_xml.Xml_tree.t
val xml_to_node : Axml_xml.Xml_ns.env -> Axml_xml.Xml_tree.t -> Axml_core.Document.t list
