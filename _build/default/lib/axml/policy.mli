(** Policy combinators: derive exchange schemas encoding the
    materialization policies of the paper's introduction. The paper's
    insight is that performance, capabilities, security and
    functionalities all reduce to {e which} function symbols the
    exchange schema still allows; these combinators compute such schemas
    from a base schema. *)

exception Empty_content of string
(** A content model became unsatisfiable: the policy is inconsistent
    with the schema (the offending label is reported). *)

val filter_atoms :
  drop:(Axml_schema.Schema.atom -> bool) ->
  Axml_schema.Schema.t -> Axml_schema.Schema.t
(** Replace the selected atoms by the empty language in every content
    model (the alternatives containing them disappear). *)

val extensional : Axml_schema.Schema.t -> Axml_schema.Schema.t
(** CAPABILITIES / SECURITY: no function node may remain — the sender
    must fully materialize. *)

val restrict_functions :
  trust:(string -> bool) -> Axml_schema.Schema.t -> Axml_schema.Schema.t
(** SECURITY: only calls to trusted functions (or patterns, by name) may
    remain in exchanged documents. *)

val preserve_functions :
  keep:(string -> bool) -> Axml_schema.Schema.t -> Axml_schema.Schema.t
(** FUNCTIONALITIES: the listed functions must NOT be materialized —
    they are marked non-invocable, so no legal rewriting fires them. *)

val delegate_functions :
  keep:(string -> bool) -> Axml_schema.Schema.t -> Axml_schema.Schema.t
(** PERFORMANCE: same mechanism as {!preserve_functions} — freeze the
    expensive services on the sender's side and delegate them. *)
