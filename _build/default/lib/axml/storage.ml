(* Persistent storage for intensional documents (Section 1: the
   ActiveXML system "provides persistent storage for intensional
   documents with embedded calls to Web services").

   A peer's state is a directory:

     <dir>/schema.axml          the peer schema, in XML Schema_int syntax
     <dir>/docs/<name>.xml      one intensional document per entry
     <dir>/MANIFEST             one repository entry name per line

   Document file names are percent-encoded so arbitrary repository names
   round-trip safely. *)

module Document = Axml_core.Document

exception Storage_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Storage_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Name encoding                                                       *)
(* ------------------------------------------------------------------ *)

let is_safe_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '.'

let encode_name name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      if is_safe_char c then Buffer.add_char buf c
      else Buffer.add_string buf (Fmt.str "%%%02X" (Char.code c)))
    name;
  Buffer.contents buf

let decode_name encoded =
  let buf = Buffer.create (String.length encoded) in
  let n = String.length encoded in
  let rec go i =
    if i < n then begin
      if encoded.[i] = '%' && i + 2 < n then begin
        (match int_of_string_opt ("0x" ^ String.sub encoded (i + 1) 2) with
         | Some code -> Buffer.add_char buf (Char.chr code)
         | None -> fail "bad escape in stored name %S" encoded);
        go (i + 3)
      end
      else begin
        Buffer.add_char buf encoded.[i];
        go (i + 1)
      end
    end
  in
  go 0;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* File helpers                                                        *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out_bin path in
  (try output_string oc contents
   with e -> close_out_noerr oc; raise e);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let ensure_dir path =
  if not (Sys.file_exists path) then Sys.mkdir path 0o755
  else if not (Sys.is_directory path) then fail "%s exists and is not a directory" path

(* ------------------------------------------------------------------ *)
(* Save / load                                                         *)
(* ------------------------------------------------------------------ *)

let docs_dir dir = Filename.concat dir "docs"
let schema_file dir = Filename.concat dir "schema.axml"
let manifest_file dir = Filename.concat dir "MANIFEST"

(* Save the peer's schema and repository under [dir]. *)
let save_peer ~dir (peer : Peer.t) =
  ensure_dir dir;
  ensure_dir (docs_dir dir);
  write_file (schema_file dir) (Xml_schema_int.to_string (Peer.schema peer));
  let names = Peer.documents peer in
  List.iter
    (fun name ->
      let doc = Peer.fetch peer name in
      write_file
        (Filename.concat (docs_dir dir) (encode_name name ^ ".xml"))
        (Syntax.to_xml_string doc))
    names;
  write_file (manifest_file dir) (String.concat "\n" names ^ "\n")

(* Load a peer saved by [save_peer]; [name] is the new peer's name. *)
let load_peer ?enforcement ~dir ~name () : Peer.t =
  if not (Sys.file_exists (schema_file dir)) then
    fail "%s does not contain a stored peer (no schema.axml)" dir;
  let schema =
    try Xml_schema_int.of_string (read_file (schema_file dir))
    with Xml_schema_int.Schema_syntax_error m -> fail "stored schema: %s" m
  in
  let peer = Peer.create ?enforcement ~name ~schema () in
  let manifest =
    if Sys.file_exists (manifest_file dir) then
      read_file (manifest_file dir)
      |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> "")
    else []
  in
  List.iter
    (fun doc_name ->
      let path = Filename.concat (docs_dir dir) (encode_name doc_name ^ ".xml") in
      if not (Sys.file_exists path) then
        fail "manifest mentions %S but %s is missing" doc_name path;
      let doc =
        try Syntax.of_xml_string (read_file path)
        with Syntax.Syntax_error m -> fail "stored document %S: %s" doc_name m
      in
      Peer.store peer doc_name doc)
    manifest;
  peer

(* Standalone document save/load, for ad-hoc use. *)
let save_document ~path doc = write_file path (Syntax.to_xml_string doc)

let load_document ~path =
  try Syntax.of_xml_string (read_file path)
  with Syntax.Syntax_error m -> fail "%s: %s" path m
