(* XML Schema_int (Section 7): the XML syntax for intensional schemas —
   XML Schema restricted to the constructs the paper uses, extended with
   <function> and <functionPattern> declarations and references.

     <schema root="newspaper">
       <element name="newspaper">
         <sequence>
           <element ref="title"/>
           <element ref="date"/>
           <choice>
             <functionPattern ref="Forecast"/>
             <element ref="temp"/>
           </choice>
           <choice>
             <function ref="TimeOut"/>
             <element ref="exhibit" minOccurs="0" maxOccurs="unbounded"/>
           </choice>
         </sequence>
       </element>
       <element name="title"><data/></element>
       <function name="Get_Temp" endpointURL="..." namespaceURI="...">
         <params><param><element ref="city"/></param></params>
         <return><element ref="temp"/></return>
       </function>
       <functionPattern id="Forecast" predicates="UDDIF InACL">
         <params><param><element ref="city"/></param></params>
         <return><element ref="temp"/></return>
       </functionPattern>
     </schema>

   Particles: element / function / functionPattern references, <data/>,
   <any/>, <anyFunction/>, and the compositors <sequence>, <choice>,
   <all>; every particle takes minOccurs (default 1) and maxOccurs
   (default 1, or "unbounded"). <complexType> wrappers are accepted and
   transparent, as in the paper's examples. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module T = Axml_xml.Xml_tree

exception Schema_syntax_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Schema_syntax_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let occurs (e : T.element) =
  let min =
    match T.attr_value e "minOccurs" with
    | None -> 1
    | Some v ->
      (try int_of_string v with Failure _ -> fail "bad minOccurs %S" v)
  in
  let max =
    match T.attr_value e "maxOccurs" with
    | None -> Some 1
    | Some "unbounded" -> None
    | Some v ->
      (try Some (int_of_string v) with Failure _ -> fail "bad maxOccurs %S" v)
  in
  (min, max)

let with_occurs e regex =
  let min, max = occurs e in
  R.repeat ~min ~max regex

(* All permutations of a list (for <all>; guarded small). *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let rec particle (node : T.t) : Schema.content option =
  match node with
  | T.Text s when T.is_whitespace s -> None
  | T.Comment _ | T.Pi _ -> None
  | T.Text _ | T.Cdata _ -> fail "unexpected character data in a content model"
  | T.Element e ->
    let ref_name what =
      match T.attr_value e "ref" with
      | Some r -> r
      | None -> fail "<%s> inside a content model needs a ref attribute" what
    in
    let base =
      match e.T.name with
      | "element" -> R.sym (Schema.A_label (ref_name "element"))
      | "function" -> R.sym (Schema.A_fun (ref_name "function"))
      | "functionPattern" -> R.sym (Schema.A_pattern (ref_name "functionPattern"))
      | "data" -> R.sym Schema.A_data
      | "any" -> R.sym Schema.A_any_element
      | "anyFunction" -> R.sym Schema.A_any_fun
      | "empty" -> R.epsilon
      | "sequence" -> R.seq_list (particles e.T.children)
      | "choice" ->
        (match particles e.T.children with
         | [] -> fail "<choice> needs at least one alternative"
         | ps -> R.alt_list ps)
      | "all" ->
        let ps = particles e.T.children in
        if List.length ps > 5 then
          fail "<all> supports at most 5 children (compiled via permutations)";
        R.alt_list (List.map R.seq_list (permutations ps))
      | other -> fail "unknown content particle <%s>" other
    in
    Some (with_occurs e base)

and particles children = List.filter_map particle children

(* The single content particle of a declaration, looking through an
   optional <complexType> wrapper; a missing particle means empty
   content. *)
let content_of (e : T.element) : Schema.content =
  let children =
    match T.child_element e "complexType" with
    | Some ct -> ct.T.children
    | None -> e.T.children
  in
  match particles children with
  | [] -> R.epsilon
  | [ p ] -> p
  | ps -> R.seq_list ps  (* tolerate an implicit sequence *)

let signature_of (e : T.element) : Schema.content * Schema.content =
  let input =
    match T.child_element e "params" with
    | None -> R.epsilon
    | Some params ->
      R.seq_list
        (List.filter_map
           (function
             | T.Element pe when pe.T.name = "param" ->
               (match particles pe.T.children with
                | [ p ] -> Some p
                | [] -> fail "<param> needs a content particle"
                | ps -> Some (R.seq_list ps))
             | T.Text s when T.is_whitespace s -> None
             | T.Comment _ | T.Pi _ -> None
             | _ -> fail "<params> may only contain <param> elements")
           params.T.children)
  in
  let output =
    match T.child_element e "return", T.child_element e "result" with
    | Some r, _ | None, Some r ->
      (match particles r.T.children with
       | [] -> R.epsilon
       | [ p ] -> p
       | ps -> R.seq_list ps)
    | None, None -> R.epsilon
  in
  (input, output)

let bool_attr e name default =
  match T.attr_value e name with
  | None -> default
  | Some "true" -> true
  | Some "false" -> false
  | Some v -> fail "bad boolean attribute %s=%S" name v

let of_xml (tree : T.t) : Schema.t =
  let root_elem =
    match tree with
    | T.Element e when e.T.name = "schema" -> e
    | T.Element e -> fail "expected a <schema> root, found <%s>" e.T.name
    | _ -> fail "expected a <schema> root element"
  in
  let schema = ref Schema.empty in
  (match T.attr_value root_elem "root" with
   | Some r -> schema := Schema.with_root !schema r
   | None -> ());
  List.iter
    (fun node ->
      match node with
      | T.Element e ->
        (match e.T.name with
         | "element" ->
           let name =
             match T.attr_value e "name" with
             | Some n -> n
             | None -> fail "top-level <element> needs a name"
           in
           schema := Schema.add_element !schema name (content_of e)
         | "function" ->
           let name =
             match T.attr_value e "name", T.attr_value e "methodName" with
             | Some n, _ -> n
             | None, Some n -> n
             | None, None -> fail "top-level <function> needs a name"
           in
           let input, output = signature_of e in
           let invocable = bool_attr e "invocable" true in
           schema :=
             Schema.add_function !schema
               (Schema.func ~invocable
                  ?endpoint:(T.attr_value e "endpointURL")
                  ?namespace:(T.attr_value e "namespaceURI")
                  name ~input ~output)
         | "functionPattern" ->
           let name =
             match T.attr_value e "id", T.attr_value e "name" with
             | Some n, _ -> n
             | None, Some n -> n
             | None, None -> fail "top-level <functionPattern> needs an id"
           in
           let input, output = signature_of e in
           let invocable = bool_attr e "invocable" true in
           let predicates =
             match T.attr_value e "predicates" with
             | None -> []
             | Some p ->
               String.split_on_char ' ' p |> List.filter (fun s -> s <> "")
           in
           schema :=
             Schema.add_pattern !schema
               (Schema.pattern ~invocable ~predicates name ~input ~output)
         | other -> fail "unknown top-level declaration <%s>" other)
      | T.Text s when T.is_whitespace s -> ()
      | T.Comment _ | T.Pi _ -> ()
      | _ -> fail "unexpected content at the top level of the schema")
    root_elem.T.children;
  (try Schema.check !schema
   with Schema.Schema_error e -> fail "%a" Schema.pp_error e);
  !schema

let of_string input =
  match Axml_xml.Xml_parser.parse_result input with
  | Ok tree -> of_xml tree
  | Error e -> fail "malformed XML: %s" e

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let atom_particle = function
  | Schema.A_label l -> T.element ~attrs:[ T.attr "ref" l ] "element" []
  | Schema.A_fun f -> T.element ~attrs:[ T.attr "ref" f ] "function" []
  | Schema.A_pattern p -> T.element ~attrs:[ T.attr "ref" p ] "functionPattern" []
  | Schema.A_data -> T.element "data" []
  | Schema.A_any_element -> T.element "any" []
  | Schema.A_any_fun -> T.element "anyFunction" []

let with_attr name value (node : T.t) =
  match node with
  | T.Element e -> T.Element { e with attrs = e.T.attrs @ [ T.attr name value ] }
  | other -> other

let rec content_to_particle (c : Schema.content) : T.t =
  match c with
  | R.Empty -> fail "cannot serialize an empty-language content model"
  | R.Epsilon -> T.element "empty" []
  | R.Sym a -> atom_particle a
  | R.Seq _ ->
    let rec flatten = function
      | R.Seq (a, b) -> flatten a @ flatten b
      | r -> [ content_to_particle r ]
    in
    T.element "sequence" (flatten c)
  | R.Alt _ ->
    let rec flatten = function
      | R.Alt (a, b) -> flatten a @ flatten b
      | r -> [ content_to_particle r ]
    in
    T.element "choice" (flatten c)
  | R.Star r -> wrap_occurs "0" "unbounded" r
  | R.Plus r -> wrap_occurs "1" "unbounded" r
  | R.Opt r -> wrap_occurs "0" "1" r

and wrap_occurs min max (r : Schema.content) : T.t =
  match r with
  | R.Sym a ->
    atom_particle a |> with_attr "minOccurs" min |> with_attr "maxOccurs" max
  | _ ->
    T.element
      ~attrs:[ T.attr "minOccurs" min; T.attr "maxOccurs" max ]
      "sequence"
      [ content_to_particle r ]

let signature_children input output =
  let params =
    match (input : Schema.content) with
    | R.Epsilon -> []
    | _ ->
      let rec split = function
        | R.Seq (a, b) -> split a @ split b
        | r -> [ r ]
      in
      [ T.element "params"
          (List.map
             (fun p -> T.element "param" [ content_to_particle p ])
             (split input)) ]
  in
  let ret =
    match (output : Schema.content) with
    | R.Epsilon -> []
    | _ -> [ T.element "return" [ content_to_particle output ] ]
  in
  params @ ret

let to_xml (s : Schema.t) : T.t =
  let decls = ref [] in
  Schema.String_map.iter
    (fun name content ->
      let body =
        match (content : Schema.content) with
        | R.Epsilon -> []
        | c -> [ content_to_particle c ]
      in
      decls := T.element ~attrs:[ T.attr "name" name ] "element" body :: !decls)
    s.Schema.elements;
  Schema.String_map.iter
    (fun name (f : Schema.func) ->
      let attrs =
        [ T.attr "name" name ]
        @ (match f.Schema.f_endpoint with
           | Some e -> [ T.attr "endpointURL" e ]
           | None -> [])
        @ (match f.Schema.f_namespace with
           | Some n -> [ T.attr "namespaceURI" n ]
           | None -> [])
        @ (if f.Schema.f_invocable then [] else [ T.attr "invocable" "false" ])
      in
      decls :=
        T.element ~attrs "function"
          (signature_children f.Schema.f_input f.Schema.f_output)
        :: !decls)
    s.Schema.functions;
  Schema.String_map.iter
    (fun name (p : Schema.pattern) ->
      let attrs =
        [ T.attr "id" name ]
        @ (if p.Schema.p_predicates = [] then []
           else [ T.attr "predicates" (String.concat " " p.Schema.p_predicates) ])
        @ (if p.Schema.p_invocable then [] else [ T.attr "invocable" "false" ])
      in
      decls :=
        T.element ~attrs "functionPattern"
          (signature_children p.Schema.p_input p.Schema.p_output)
        :: !decls)
    s.Schema.patterns;
  let attrs =
    match s.Schema.root with
    | Some r -> [ T.attr "root" r ]
    | None -> []
  in
  T.element ~attrs "schema" (List.rev !decls)

let to_string ?(pretty = true) s =
  let xml = to_xml s in
  if pretty then Axml_xml.Xml_print.to_pretty_string ~xml_decl:true xml
  else Axml_xml.Xml_print.to_string xml
