(* The XML wire syntax of intensional documents (Section 7): embedded
   calls are elements in the http://www.activexml.com/ns/int namespace,

     <int:fun endpointURL="..." methodName="Get_Temp" namespaceURI="...">
       <int:params>
         <int:param><city>Paris</city></int:param>
       </int:params>
     </int:fun>

   [to_xml] and [of_xml] convert between [Axml_core.Document.t] and this
   representation. *)

module D = Axml_core.Document
module T = Axml_xml.Xml_tree
module Ns = Axml_xml.Xml_ns

let axml_ns = "http://www.activexml.com/ns/int"

exception Syntax_error of string

(* How to find the locator attributes of a function (its endpoint and
   SOAP namespace); by default everything is local. *)
type locator = string -> (string * string) option

let default_locator : locator = fun _ -> None

(* ------------------------------------------------------------------ *)
(* Document -> XML                                                     *)
(* ------------------------------------------------------------------ *)

let rec node_to_xml ~locate (doc : D.t) : T.t =
  match doc with
  | D.Data value -> T.text value
  | D.Elem { label; children } ->
    T.element label (List.map (node_to_xml ~locate) children)
  | D.Call { name; params } ->
    let endpoint, namespace =
      match locate name with
      | Some (e, n) -> (e, n)
      | None -> ("local:", "urn:axml:local")
    in
    let params =
      List.map
        (fun p -> T.element "int:param" [ node_to_xml ~locate p ])
        params
    in
    (* every call node carries its own namespace declaration, so any
       subtree extracted by a query stays a well-formed intensional
       fragment *)
    T.element
      ~attrs:
        [ T.attr "xmlns:int" axml_ns;
          T.attr "endpointURL" endpoint;
          T.attr "methodName" name;
          T.attr "namespaceURI" namespace ]
      "int:fun"
      (if params = [] then [] else [ T.element "int:params" params ])

let to_xml ?(locate = default_locator) (doc : D.t) : T.t = node_to_xml ~locate doc

let to_xml_string ?locate ?(pretty = true) doc =
  let xml = to_xml ?locate doc in
  if pretty then Axml_xml.Xml_print.to_pretty_string ~xml_decl:true xml
  else Axml_xml.Xml_print.to_string xml

(* ------------------------------------------------------------------ *)
(* XML -> Document                                                     *)
(* ------------------------------------------------------------------ *)

let is_layout = function
  | T.Text s -> T.is_whitespace s
  | T.Comment _ | T.Pi _ -> true
  | T.Element _ | T.Cdata _ -> false

let rec xml_to_node env (node : T.t) : D.t list =
  match node with
  | T.Text s -> if T.is_whitespace s then [] else [ D.data s ]
  | T.Cdata s -> [ D.data s ]
  | T.Comment _ | T.Pi _ -> []
  | T.Element e ->
    let inner_env = Ns.extend env e in
    if is_call env e then [ call_of_element inner_env e ]
    else begin
      let _, local = Ns.expanded_name env e in
      let children = List.concat_map (xml_to_node inner_env) e.T.children in
      [ D.elem local children ]
    end

and is_call env (e : T.element) =
  match Ns.expanded_name env e with
  | Some uri, "fun" -> String.equal uri axml_ns
  | _ -> false

and call_of_element env (e : T.element) : D.t =
  let name =
    match T.attr_value e "methodName" with
    | Some n -> n
    | None -> raise (Syntax_error "int:fun element without a methodName attribute")
  in
  let params =
    match
      List.find_map
        (function
          | T.Element pe when snd (Ns.expanded_name env pe) = "params"
                              && is_int_ns env pe -> Some pe
          | _ -> None)
        e.T.children
    with
    | None -> []
    | Some params_elem ->
      List.concat_map
        (function
          | T.Element pe when snd (Ns.expanded_name env pe) = "param"
                              && is_int_ns env pe ->
            let env = Ns.extend env pe in
            List.concat_map (xml_to_node env) pe.T.children
          | node when is_layout node -> []
          | _ -> raise (Syntax_error "int:params may only contain int:param elements"))
        params_elem.T.children
  in
  (* any non-params child of int:fun is an error (layout aside) *)
  List.iter
    (fun child ->
      match child with
      | T.Element ce when snd (Ns.expanded_name env ce) = "params" && is_int_ns env ce -> ()
      | node when is_layout node -> ()
      | _ -> raise (Syntax_error "unexpected content inside int:fun"))
    e.T.children;
  D.call name params

and is_int_ns env (e : T.element) =
  match Ns.expanded_name env e with
  | Some uri, _ -> String.equal uri axml_ns
  | None, _ -> false

let of_xml (tree : T.t) : D.t =
  match xml_to_node Ns.empty_env tree with
  | [ doc ] -> doc
  | [] -> raise (Syntax_error "the document is empty")
  | _ -> raise (Syntax_error "the document has several roots")

let of_xml_string input =
  match Axml_xml.Xml_parser.parse_result input with
  | Ok tree -> of_xml tree
  | Error e -> raise (Syntax_error e)
