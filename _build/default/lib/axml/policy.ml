(* Policy combinators: derive exchange schemas that encode the
   materialization policies of the paper's introduction. The insight of
   the paper is that all four considerations — performance, capabilities,
   security, functionalities — reduce to *which* function symbols the
   exchange schema still allows; these combinators compute such schemas
   from a base schema. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema

exception Empty_content of string

(* Rewrite every content model, replacing the atoms selected by [drop]
   with the empty language (so the alternatives that contained them
   simply disappear). Raises [Empty_content] when a content model would
   become unsatisfiable — the policy is then inconsistent with the
   schema. *)
let filter_atoms ~drop (s : Schema.t) : Schema.t =
  let rewrite_content name c =
    let c' = R.subst (fun a -> if drop a then R.empty else R.sym a) c in
    if R.is_empty_language c' then raise (Empty_content name);
    c'
  in
  let elements = Schema.String_map.mapi rewrite_content s.Schema.elements in
  { s with Schema.elements }

(* CAPABILITIES / SECURITY (receiver cannot or will not invoke anything):
   the exchange schema accepts no function node at all, forcing the
   sender to fully materialize. *)
let extensional s =
  filter_atoms s ~drop:(function
    | Schema.A_fun _ | Schema.A_pattern _ | Schema.A_any_fun -> true
    | Schema.A_label _ | Schema.A_data | Schema.A_any_element -> false)

(* SECURITY (trusted-services list): only calls to functions accepted by
   [trust] may remain in exchanged documents; everything else must be
   materialized away by the sender. Patterns are kept only if [trust]
   accepts the pattern name itself. *)
let restrict_functions ~trust s =
  filter_atoms s ~drop:(function
    | Schema.A_fun f -> not (trust f)
    | Schema.A_pattern p -> not (trust p)
    | Schema.A_any_fun -> true
    | Schema.A_label _ | Schema.A_data | Schema.A_any_element -> false)

(* FUNCTIONALITIES (the origin of the information is what is requested,
   e.g. a UDDI-like registry): the listed functions must NOT be
   materialized — mark them non-invocable so no legal rewriting fires
   them. *)
let preserve_functions ~keep s =
  let functions =
    Schema.String_map.mapi
      (fun name (f : Schema.func) ->
        if keep name then { f with Schema.f_invocable = false } else f)
      s.Schema.functions
  in
  { s with Schema.functions }

(* PERFORMANCE (sender overloaded: delegate work to the receiver): keep
   the schema as-is — every function may stay intensional — but mark the
   listed expensive services non-invocable on the sender's side so the
   rewriting never fires them. Same mechanism, different motivation. *)
let delegate_functions = preserve_functions
