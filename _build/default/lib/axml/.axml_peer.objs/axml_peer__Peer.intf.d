lib/axml/peer.mli: Axml_core Axml_schema Axml_services Enforcement
