lib/axml/enforcement.ml: Axml_core Axml_schema Fmt List
