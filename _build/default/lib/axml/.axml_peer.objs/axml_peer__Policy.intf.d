lib/axml/policy.mli: Axml_schema
