lib/axml/xml_schema_int.ml: Axml_regex Axml_schema Axml_xml Fmt List String
