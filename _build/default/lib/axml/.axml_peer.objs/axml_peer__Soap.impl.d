lib/axml/soap.ml: Axml_core Axml_xml List Syntax
