lib/axml/policy.ml: Axml_regex Axml_schema
