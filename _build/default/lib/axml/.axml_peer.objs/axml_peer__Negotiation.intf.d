lib/axml/negotiation.mli: Axml_core Axml_schema Fmt
