lib/axml/peer.ml: Axml_core Axml_schema Axml_services Axml_xml Enforcement Fmt Hashtbl List Printexc Soap String Syntax
