lib/axml/enforcement.mli: Axml_core Axml_schema Fmt
