lib/axml/syntax.ml: Axml_core Axml_xml List String
