lib/axml/negotiation.ml: Axml_core Axml_schema Fmt List Option
