lib/axml/soap.mli: Axml_core
