lib/axml/storage.ml: Axml_core Buffer Char Filename Fmt List Peer String Syntax Sys Xml_schema_int
