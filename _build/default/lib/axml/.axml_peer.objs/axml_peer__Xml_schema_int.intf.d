lib/axml/xml_schema_int.mli: Axml_schema Axml_xml
