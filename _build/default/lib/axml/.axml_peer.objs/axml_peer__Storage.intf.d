lib/axml/storage.mli: Axml_core Enforcement Peer
