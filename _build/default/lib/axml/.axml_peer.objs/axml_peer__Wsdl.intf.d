lib/axml/wsdl.mli: Axml_schema Axml_services Axml_xml
