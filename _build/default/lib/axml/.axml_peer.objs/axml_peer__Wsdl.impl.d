lib/axml/wsdl.ml: Axml_regex Axml_schema Axml_services Axml_xml Fmt List Xml_schema_int
