lib/axml/syntax.mli: Axml_core Axml_xml
