(** A simulated Web service: the in-process stand-in for the paper's
    SOAP services (see DESIGN.md, "Substitutions"). A service has the
    WSDL-style typed signature the rewriting algorithms rely on, plus
    the operational attributes driving the materialization policies of
    the introduction: invocation cost (fees), side effects (security),
    and an access-control list. *)

type behaviour = Axml_core.Document.forest -> Axml_core.Document.forest
(** What the service computes: parameters in, result forest out. *)

type t = {
  name : string;
  input : Axml_schema.Schema.content;   (** tau_in *)
  output : Axml_schema.Schema.content;  (** tau_out *)
  endpoint : string;
  namespace : string;
  cost : float;          (** fee per invocation *)
  side_effects : bool;
  acl : string list;     (** principals allowed to call; [[]] = everyone *)
  behaviour : behaviour;
}

val make :
  ?endpoint:string -> ?namespace:string -> ?cost:float ->
  ?side_effects:bool -> ?acl:string list ->
  input:Axml_schema.Schema.content -> output:Axml_schema.Schema.content ->
  string -> behaviour -> t

val declaration : ?invocable:bool -> t -> Axml_schema.Schema.func
(** The schema-level (WSDL) declaration of this service. *)

val allows : t -> string -> bool
val pp : t Fmt.t
