(* A UDDI-like service directory plus boolean predicate services — the
   infrastructure behind function patterns (Section 2.1): a pattern's
   predicates ("UDDIF", "InACL", ...) are implemented as services that
   take a function name and answer true/false. *)

type entry = {
  name : string;
  provider : string;
  categories : string list;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  predicates : (string, string -> bool) Hashtbl.t;
}

let create () = { entries = Hashtbl.create 16; predicates = Hashtbl.create 8 }

let publish t ?(provider = "unknown") ?(categories = []) name =
  Hashtbl.replace t.entries name { name; provider; categories }

let is_published t name = Hashtbl.mem t.entries name

let find t name = Hashtbl.find_opt t.entries name

let search t ~category =
  Hashtbl.fold
    (fun _ e acc -> if List.mem category e.categories then e :: acc else acc)
    t.entries []
  |> List.sort compare

(* Register a boolean predicate service under [pname]. *)
let register_predicate t pname pred = Hashtbl.replace t.predicates pname pred

(* The standard predicates of the paper's example: UDDIF (is the service
   registered here?) and InACL (does [principal] have access?). *)
let install_standard_predicates t ~acl_of =
  register_predicate t "UDDIF" (is_published t);
  register_predicate t "InACL" acl_of

(* The predicate oracle to plug into [Schema.env_of_schema ~predicate].
   Unknown predicates reject every function (fail closed). *)
let predicate t pname fname =
  match Hashtbl.find_opt t.predicates pname with
  | Some pred -> pred fname
  | None -> false
