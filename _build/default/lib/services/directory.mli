(** A UDDI-like service directory plus boolean predicate services — the
    infrastructure behind function patterns (Section 2.1): a pattern's
    predicates ("UDDIF", "InACL", ...) are services that take a function
    name and answer true/false. *)

type entry = {
  name : string;
  provider : string;
  categories : string list;
}

type t

val create : unit -> t
val publish : t -> ?provider:string -> ?categories:string list -> string -> unit
val is_published : t -> string -> bool
val find : t -> string -> entry option
val search : t -> category:string -> entry list

val register_predicate : t -> string -> (string -> bool) -> unit

val install_standard_predicates : t -> acl_of:(string -> bool) -> unit
(** The paper's example predicates: [UDDIF] (is the service published
    here?) and [InACL]. *)

val predicate : t -> string -> string -> bool
(** The oracle to plug into [Schema.env_of_schema ~predicate]; unknown
    predicates reject every function (fail closed). *)
