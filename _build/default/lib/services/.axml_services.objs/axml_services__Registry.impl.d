lib/services/registry.ml: Axml_core Axml_schema Hashtbl List Service
