lib/services/oracle.ml: Array Axml_core Axml_schema Service
