lib/services/service.mli: Axml_core Axml_schema Fmt
