lib/services/directory.mli:
