lib/services/service.ml: Axml_core Axml_schema Fmt List
