lib/services/directory.ml: Hashtbl List
