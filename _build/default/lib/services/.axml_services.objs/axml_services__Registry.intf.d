lib/services/registry.mli: Axml_core Axml_schema Service
