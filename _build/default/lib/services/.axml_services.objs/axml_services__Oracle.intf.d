lib/services/oracle.mli: Axml_core Axml_schema Service
