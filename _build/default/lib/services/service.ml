(* A simulated Web service: the in-process stand-in for the SOAP
   services of the paper (see DESIGN.md, "Substitutions"). A service has
   the WSDL-style typed signature the rewriting algorithms rely on, plus
   the operational attributes that drive the materialization policies of
   the introduction: invocation cost (fees), side effects (security), and
   an access-control tag. *)

module Schema = Axml_schema.Schema
module Document = Axml_core.Document

type behaviour = Document.forest -> Document.forest

type t = {
  name : string;
  input : Schema.content;   (* tau_in *)
  output : Schema.content;  (* tau_out *)
  endpoint : string;        (* simulated endpointURL *)
  namespace : string;       (* simulated namespaceURI *)
  cost : float;             (* fee per invocation *)
  side_effects : bool;
  acl : string list;        (* principals allowed to call; [] = everyone *)
  behaviour : behaviour;
}

let make ?(endpoint = "local:") ?(namespace = "urn:axml:local") ?(cost = 0.)
    ?(side_effects = false) ?(acl = []) ~input ~output name behaviour =
  { name; input; output; endpoint; namespace; cost; side_effects; acl; behaviour }

(* The schema-level declaration of this service (its WSDL entry). *)
let declaration ?(invocable = true) t =
  Schema.func ~invocable ~endpoint:t.endpoint ~namespace:t.namespace t.name
    ~input:t.input ~output:t.output

let allows t principal = t.acl = [] || List.mem principal t.acl

let pp ppf t =
  Fmt.pf ppf "%s : %a -> %a [cost %.2f%s]" t.name Schema.pp_content t.input
    Schema.pp_content t.output t.cost
    (if t.side_effects then ", side-effects" else "")
