(* Document schemas for intensional XML (Definition 2), extended with the
   richer features of Section 2.1: function patterns, wildcards and the
   invocable / non-invocable partition.

   Content models are regular expressions over [atom]s; compiling a
   schema resolves atoms to the word alphabet [Symbol.t] relative to an
   environment (the finite sets of known labels and functions), expanding
   patterns and wildcards into the alternation of their members — exactly
   how the paper's implementation treats them. *)

module R = Axml_regex.Regex
module String_map = Map.Make (String)
module String_set = Set.Make (String)

type atom =
  | A_label of string        (* an element type *)
  | A_fun of string          (* a specific function (Web service) *)
  | A_pattern of string      (* a function pattern (Section 2.1) *)
  | A_data                   (* the "data" keyword *)
  | A_any_element            (* wildcard: any known element *)
  | A_any_fun                (* wildcard: any known function *)

type content = atom R.t

type func = {
  f_name : string;
  f_input : content;   (* tau_in *)
  f_output : content;  (* tau_out *)
  f_invocable : bool;  (* Section 2.1, "Restricted service invocations" *)
  f_endpoint : string option;   (* locator attributes of the XML syntax *)
  f_namespace : string option;
}

type pattern = {
  p_name : string;
  p_predicates : string list;
    (* names of boolean predicate services, e.g. ["UDDIF"; "InACL"];
       a function matches if every predicate accepts its name *)
  p_input : content;
  p_output : content;
  p_invocable : bool;
}

type t = {
  elements : content String_map.t;  (* tau on labels *)
  functions : func String_map.t;    (* tau_in / tau_out on function names *)
  patterns : pattern String_map.t;
  root : string option;             (* distinguished root label, if any *)
}

type error =
  | Undeclared_name of string            (* used in a content model, never declared *)
  | Duplicate_declaration of string
  | Pattern_in_signature of string       (* patterns may not appear in signatures *)
  | Nondeterministic_content of string   (* label whose model is not 1-unambiguous *)
  | Incompatible_function of string      (* same name, different definitions, on merge *)

exception Schema_error of error

let pp_error ppf = function
  | Undeclared_name n -> Fmt.pf ppf "name %S is used but never declared" n
  | Duplicate_declaration n -> Fmt.pf ppf "name %S is declared twice" n
  | Pattern_in_signature n ->
    Fmt.pf ppf "function pattern %S appears inside a function signature" n
  | Nondeterministic_content l ->
    Fmt.pf ppf "content model of %S is not deterministic (1-unambiguous)" l
  | Incompatible_function f ->
    Fmt.pf ppf "function %S has different definitions in the two schemas" f

let pp_atom ppf = function
  | A_label l -> Fmt.string ppf l
  | A_fun f -> Fmt.string ppf f
  | A_pattern p -> Fmt.pf ppf "%s" p
  | A_data -> Fmt.string ppf "#data"
  | A_any_element -> Fmt.string ppf "#any"
  | A_any_fun -> Fmt.string ppf "#anyfun"

let pp_content ppf c = R.pp pp_atom ppf c

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let empty = {
  elements = String_map.empty;
  functions = String_map.empty;
  patterns = String_map.empty;
  root = None;
}

let declared_names s =
  String_set.union
    (String_set.of_seq (Seq.map fst (String_map.to_seq s.elements)))
    (String_set.union
       (String_set.of_seq (Seq.map fst (String_map.to_seq s.functions)))
       (String_set.of_seq (Seq.map fst (String_map.to_seq s.patterns))))

let add_element s name content =
  if String_set.mem name (declared_names s) then
    raise (Schema_error (Duplicate_declaration name));
  { s with elements = String_map.add name content s.elements }

let add_function s (f : func) =
  if String_set.mem f.f_name (declared_names s) then
    raise (Schema_error (Duplicate_declaration f.f_name));
  { s with functions = String_map.add f.f_name f s.functions }

let add_pattern s (p : pattern) =
  if String_set.mem p.p_name (declared_names s) then
    raise (Schema_error (Duplicate_declaration p.p_name));
  { s with patterns = String_map.add p.p_name p s.patterns }

let with_root s root = { s with root = Some root }

let find_element s name = String_map.find_opt name s.elements
let find_function s name = String_map.find_opt name s.functions
let find_pattern s name = String_map.find_opt name s.patterns

let element_names s = List.map fst (String_map.bindings s.elements)
let function_names s = List.map fst (String_map.bindings s.functions)
let pattern_names s = List.map fst (String_map.bindings s.patterns)

let func ?(invocable = true) ?endpoint ?namespace name ~input ~output = {
  f_name = name;
  f_input = input;
  f_output = output;
  f_invocable = invocable;
  f_endpoint = endpoint;
  f_namespace = namespace;
}

let pattern ?(invocable = true) ?(predicates = []) name ~input ~output = {
  p_name = name;
  p_predicates = predicates;
  p_input = input;
  p_output = output;
  p_invocable = invocable;
}

(* ------------------------------------------------------------------ *)
(* Resolution of raw string regexes into atoms                          *)
(* ------------------------------------------------------------------ *)

(* Names in a parsed content model resolve against the declarations of
   the schema under construction: declared functions and patterns win,
   anything else is an element label. Keywords: #data, #any, #anyfun. *)
let resolve_content ~functions ~patterns (raw : string R.t) : content =
  R.map
    (fun name ->
      if String.equal name "#data" then A_data
      else if String.equal name "#any" then A_any_element
      else if String.equal name "#anyfun" then A_any_fun
      else if String_set.mem name functions then A_fun name
      else if String_set.mem name patterns then A_pattern name
      else A_label name)
    raw

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

let atoms_of_content c = R.symbols c

(* Every label / function / pattern mentioned in a content model must be
   declared; signatures must not mention patterns (they would make
   pattern membership self-referential). *)
let check_declared s =
  let check_atom ~in_signature = function
    | A_label l ->
      if not (String_map.mem l s.elements) then
        raise (Schema_error (Undeclared_name l))
    | A_fun f ->
      if not (String_map.mem f s.functions) then
        raise (Schema_error (Undeclared_name f))
    | A_pattern p ->
      if in_signature then raise (Schema_error (Pattern_in_signature p));
      if not (String_map.mem p s.patterns) then
        raise (Schema_error (Undeclared_name p))
    | A_data | A_any_element | A_any_fun -> ()
  in
  String_map.iter
    (fun _ c -> List.iter (check_atom ~in_signature:false) (atoms_of_content c))
    s.elements;
  String_map.iter
    (fun _ (f : func) ->
      List.iter (check_atom ~in_signature:true) (atoms_of_content f.f_input);
      List.iter (check_atom ~in_signature:true) (atoms_of_content f.f_output))
    s.functions;
  String_map.iter
    (fun _ (p : pattern) ->
      List.iter (check_atom ~in_signature:true) (atoms_of_content p.p_input);
      List.iter (check_atom ~in_signature:true) (atoms_of_content p.p_output))
    s.patterns;
  (match s.root with
   | Some r when not (String_map.mem r s.elements) ->
     raise (Schema_error (Undeclared_name r))
   | Some _ | None -> ())

(* ------------------------------------------------------------------ *)
(* Compilation: atoms -> Symbol.t, with patterns/wildcards expanded     *)
(* ------------------------------------------------------------------ *)

(* The environment a schema compiles against: the finite universe of
   labels and functions (typically the union of the exchange schema, the
   sender schema s0 and the registry) plus the oracle deciding pattern
   membership predicates (the paper implements these as boolean Web
   services; tests plug in plain OCaml functions). *)
type env = {
  env_labels : String_set.t;
  env_functions : func String_map.t;
  env_patterns : pattern String_map.t;
  predicate : string -> string -> bool;
    (* [predicate pred_name fun_name]: does the predicate service accept
       this function? Default accepts everything. *)
}

let env_of_schema ?(predicate = fun _ _ -> true) s = {
  env_labels = String_set.of_list (element_names s);
  env_functions = s.functions;
  env_patterns = s.patterns;
  predicate;
}

(* Merge two schemas into one environment. Common functions must agree
   (the paper's simplifying assumption in Section 4, justified by WSDL
   descriptions being unique per provider); element types may freely
   differ — the whole point of rewriting is that the sender's and the
   receiver's element structures disagree — and the receiving side's
   (right argument's) version wins where both declare a label. *)
let merge s0 s =
  let elements =
    String_map.union (fun _ _ c -> Some c) s0.elements s.elements
  in
  let functions =
    String_map.union
      (fun name (f0 : func) (f : func) ->
        if R.equal (fun a b -> a = b) f0.f_input f.f_input
           && R.equal (fun a b -> a = b) f0.f_output f.f_output
        then
          (* a call is legal only if both parties allow it: invocability
             is the conjunction of the two declarations *)
          Some { f with f_invocable = f0.f_invocable && f.f_invocable }
        else raise (Schema_error (Incompatible_function name)))
      s0.functions s.functions
  in
  let patterns =
    String_map.union (fun _ _ p -> Some p) s0.patterns s.patterns
  in
  { elements; functions; patterns; root = s.root }

let env_of_schemas ?predicate s0 s = env_of_schema ?predicate (merge s0 s)

(* Compile a signature content (no patterns allowed) to a symbol regex. *)
let rec compile_signature env (c : content) : Symbol.t R.t =
  let expand = function
    | A_label l -> R.sym (Symbol.Label l)
    | A_fun f -> R.sym (Symbol.Fun f)
    | A_data -> R.sym Symbol.Data
    | A_any_element ->
      R.alt_list
        (List.map (fun l -> R.sym (Symbol.Label l))
           (String_set.elements env.env_labels))
    | A_any_fun ->
      R.alt_list
        (List.map (fun (f, _) -> R.sym (Symbol.Fun f))
           (String_map.bindings env.env_functions))
    | A_pattern p -> raise (Schema_error (Pattern_in_signature p))
  in
  flatten_atoms expand c

and flatten_atoms expand (c : content) : Symbol.t R.t =
  match c with
  | Empty -> R.empty
  | Epsilon -> R.epsilon
  | Sym a -> expand a
  | Seq (c1, c2) -> R.seq (flatten_atoms expand c1) (flatten_atoms expand c2)
  | Alt (c1, c2) -> R.alt (flatten_atoms expand c1) (flatten_atoms expand c2)
  | Star c1 -> R.star (flatten_atoms expand c1)
  | Plus c1 -> R.plus (flatten_atoms expand c1)
  | Opt c1 -> R.opt (flatten_atoms expand c1)

(* Signature equality: language equivalence of input and output types. *)
let signatures_match env ~(required_input : content) ~(required_output : content)
    (f : func) =
  let dfa c = Auto.Dfa.of_regex (compile_signature env c) in
  Auto.Dfa.equal_language (dfa required_input) (dfa f.f_input)
  && Auto.Dfa.equal_language (dfa required_output) (dfa f.f_output)

(* A function [f] belongs to pattern [p] if its name satisfies every
   predicate of [p] and its signature matches (Section 2.1). *)
let pattern_members env (p : pattern) : func list =
  String_map.fold
    (fun _ f acc ->
      let predicates_ok =
        List.for_all (fun pred -> env.predicate pred f.f_name) p.p_predicates
      in
      if predicates_ok
         && signatures_match env ~required_input:p.p_input
              ~required_output:p.p_output f
      then f :: acc
      else acc)
    env.env_functions []

(* Compile a full content model (patterns allowed) to a symbol regex. *)
let compile_content env (c : content) : Symbol.t R.t =
  let expand = function
    | A_label l -> R.sym (Symbol.Label l)
    | A_fun f -> R.sym (Symbol.Fun f)
    | A_data -> R.sym Symbol.Data
    | A_any_element ->
      R.alt_list
        (List.map (fun l -> R.sym (Symbol.Label l))
           (String_set.elements env.env_labels))
    | A_any_fun ->
      R.alt_list
        (List.map (fun (f, _) -> R.sym (Symbol.Fun f))
           (String_map.bindings env.env_functions))
    | A_pattern pname ->
      (match String_map.find_opt pname env.env_patterns with
       | None -> raise (Schema_error (Undeclared_name pname))
       | Some p ->
         R.alt_list
           (List.map (fun (f : func) -> R.sym (Symbol.Fun f.f_name))
              (pattern_members env p)))
  in
  flatten_atoms expand c

(* The content model of a label, compiled; [None] if the label is not
   declared. *)
let compiled_element env s name =
  Option.map (compile_content env) (find_element s name)

(* tau_out of a function or pattern-member function, compiled. *)
let compiled_output env name =
  match String_map.find_opt name env.env_functions with
  | Some f -> Some (compile_content env f.f_output)
  | None -> None

let compiled_input env name =
  match String_map.find_opt name env.env_functions with
  | Some f -> Some (compile_content env f.f_input)
  | None -> None

let is_invocable env name =
  match String_map.find_opt name env.env_functions with
  | Some f -> f.f_invocable
  | None -> false

(* Determinism check (XML Schema's 1-unambiguity; the paper relies on it
   for the polynomial complexity bound). *)
let check_deterministic env s =
  String_map.iter
    (fun name c ->
      if not (Auto.deterministic_regex (compile_content env c)) then
        raise (Schema_error (Nondeterministic_content name)))
    s.elements

(* Full validity check; call after construction. *)
let check ?(deterministic = false) s =
  check_declared s;
  if deterministic then check_deterministic (env_of_schema s) s

(* All symbols a schema can ever mention, used to close alphabets. *)
let alphabet env s =
  let add_content acc c =
    R.fold_symbols
      (fun acc a ->
        match a with
        | A_label l -> Auto.Sym_set.add (Symbol.Label l) acc
        | A_fun f -> Auto.Sym_set.add (Symbol.Fun f) acc
        | A_data -> Auto.Sym_set.add Symbol.Data acc
        | A_any_element ->
          String_set.fold
            (fun l acc -> Auto.Sym_set.add (Symbol.Label l) acc)
            env.env_labels acc
        | A_any_fun ->
          String_map.fold
            (fun f _ acc -> Auto.Sym_set.add (Symbol.Fun f) acc)
            env.env_functions acc
        | A_pattern pname ->
          (match String_map.find_opt pname env.env_patterns with
           | None -> acc
           | Some p ->
             List.fold_left
               (fun acc (f : func) -> Auto.Sym_set.add (Symbol.Fun f.f_name) acc)
               acc (pattern_members env p)))
      acc c
  in
  let acc =
    String_map.fold
      (fun name c acc -> add_content (Auto.Sym_set.add (Symbol.Label name) acc) c)
      s.elements Auto.Sym_set.empty
  in
  let acc =
    String_map.fold
      (fun name (f : func) acc ->
        add_content (add_content (Auto.Sym_set.add (Symbol.Fun name) acc) f.f_input)
          f.f_output)
      s.functions acc
  in
  acc

let pp ppf s =
  Fmt.pf ppf "@[<v>";
  (match s.root with
   | Some r -> Fmt.pf ppf "root %s@," r
   | None -> ());
  String_map.iter
    (fun name c -> Fmt.pf ppf "element %s = %a@," name pp_content c)
    s.elements;
  String_map.iter
    (fun name (f : func) ->
      Fmt.pf ppf "function%s %s : %a -> %a@,"
        (if f.f_invocable then "" else " (non-invocable)")
        name pp_content f.f_input pp_content f.f_output)
    s.functions;
  String_map.iter
    (fun name (p : pattern) ->
      Fmt.pf ppf "pattern%s %s%a : %a -> %a@,"
        (if p.p_invocable then "" else " (non-invocable)")
        name
        Fmt.(list ~sep:nop (fun ppf pr -> Fmt.pf ppf " [%s]" pr))
        p.p_predicates pp_content p.p_input pp_content p.p_output)
    s.patterns;
  Fmt.pf ppf "@]"
