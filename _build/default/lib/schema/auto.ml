(* The automata toolkit instantiated at the schema alphabet; every layer
   above (validation, rewriting, enforcement) shares this instance. *)

include Axml_regex.Automata.Make (Symbol)
