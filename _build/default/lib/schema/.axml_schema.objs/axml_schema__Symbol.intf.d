lib/schema/symbol.mli: Fmt
