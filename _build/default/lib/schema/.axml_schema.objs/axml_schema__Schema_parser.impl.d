lib/schema/schema_parser.ml: Axml_regex Fmt List Result Schema String
