lib/schema/auto.ml: Axml_regex Symbol
