lib/schema/symbol.ml: Fmt String
