lib/schema/schema.ml: Auto Axml_regex Fmt List Map Option Seq Set String Symbol
