lib/schema/schema_parser.mli: Schema
