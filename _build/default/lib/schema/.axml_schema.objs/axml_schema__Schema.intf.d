lib/schema/schema.mli: Auto Axml_regex Fmt Map Set Symbol
