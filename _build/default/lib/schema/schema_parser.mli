(** A compact textual syntax for schemas, mirroring the paper's
    notation:

    {v
root newspaper
element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit* )
element title = #data
function Get_Temp : city -> temp
noninvocable function TimeOut : #data -> (exhibit | performance)*
pattern Forecast requires UDDIF InACL : city -> temp
    v}

    Lines starting with ['#'] and blank lines are ignored. Names used in
    content models resolve to functions or patterns when declared as
    such anywhere in the file, otherwise to element labels. The
    XML-syntax schemas of Section 7 are handled by
    [Axml_peer.Xml_schema_int]. *)

exception Parse_error of { line : int; message : string }

val parse : string -> Schema.t
(** @raise Parse_error (line 0 carries whole-schema errors). *)

val parse_result : string -> (Schema.t, string) result
