(** Document schemas for intensional XML (Definition 2), extended with
    the richer features of Section 2.1: function patterns, wildcards and
    the invocable / non-invocable partition.

    Content models are regular expressions over {!atom}s. Compiling a
    schema resolves atoms to the word alphabet {!Symbol.t} relative to
    an {!env} — the finite sets of known labels and functions — with
    patterns and wildcards expanded into the alternation of their
    members, exactly how the paper's implementation treats them. *)

module String_map : Map.S with type key = string
module String_set : Set.S with type elt = string

type atom =
  | A_label of string    (** an element type *)
  | A_fun of string      (** a specific function (Web service) *)
  | A_pattern of string  (** a function pattern (Section 2.1) *)
  | A_data               (** the "data" keyword *)
  | A_any_element        (** wildcard: any known element *)
  | A_any_fun            (** wildcard: any known function *)

type content = atom Axml_regex.Regex.t

type func = {
  f_name : string;
  f_input : content;           (** tau_in *)
  f_output : content;          (** tau_out *)
  f_invocable : bool;          (** may a legal rewriting fire it? *)
  f_endpoint : string option;  (** locator attributes of the XML syntax *)
  f_namespace : string option;
}

type pattern = {
  p_name : string;
  p_predicates : string list;
    (** names of boolean predicate services (e.g. ["UDDIF"; "InACL"]);
        a function matches if every predicate accepts its name *)
  p_input : content;
  p_output : content;
  p_invocable : bool;
}

type t = {
  elements : content String_map.t;
  functions : func String_map.t;
  patterns : pattern String_map.t;
  root : string option;  (** distinguished root label, if any *)
}

type error =
  | Undeclared_name of string
  | Duplicate_declaration of string
  | Pattern_in_signature of string
  | Nondeterministic_content of string
  | Incompatible_function of string

exception Schema_error of error

val pp_error : error Fmt.t
val pp_atom : atom Fmt.t
val pp_content : content Fmt.t
val pp : t Fmt.t

(** {1 Construction} *)

val empty : t

val add_element : t -> string -> content -> t
(** @raise Schema_error on duplicate declarations (also the others). *)

val add_function : t -> func -> t
val add_pattern : t -> pattern -> t
val with_root : t -> string -> t

val func :
  ?invocable:bool -> ?endpoint:string -> ?namespace:string ->
  string -> input:content -> output:content -> func

val pattern :
  ?invocable:bool -> ?predicates:string list ->
  string -> input:content -> output:content -> pattern

(** {1 Access} *)

val find_element : t -> string -> content option
val find_function : t -> string -> func option
val find_pattern : t -> string -> pattern option
val element_names : t -> string list
val function_names : t -> string list
val pattern_names : t -> string list
val declared_names : t -> String_set.t
val atoms_of_content : content -> atom list

val resolve_content :
  functions:String_set.t -> patterns:String_set.t ->
  string Axml_regex.Regex.t -> content
(** Map raw identifiers from a parsed regex to atoms: declared function
    and pattern names win, [#data] / [#any] / [#anyfun] are keywords,
    anything else is an element label. *)

(** {1 Well-formedness} *)

val check : ?deterministic:bool -> t -> unit
(** Every name used must be declared; signatures must not mention
    patterns; with [~deterministic:true], every content model must be
    1-unambiguous. @raise Schema_error otherwise. *)

val check_declared : t -> unit

(** {1 Compilation environment} *)

type env = {
  env_labels : String_set.t;
  env_functions : func String_map.t;
  env_patterns : pattern String_map.t;
  predicate : string -> string -> bool;
    (** [predicate pred_name fun_name]: does the predicate service
        accept this function? (The paper implements predicates as
        boolean Web services.) Defaults to accepting everything. *)
}

val env_of_schema : ?predicate:(string -> string -> bool) -> t -> env

val merge : t -> t -> t
(** Merge the sender schema with the exchange schema. Common functions
    must agree on their signatures (the paper's Section 4 assumption);
    their invocability is the conjunction of the two declarations.
    Element types may differ freely; the right argument wins.
    @raise Schema_error on a signature conflict. *)

val env_of_schemas :
  ?predicate:(string -> string -> bool) -> t -> t -> env
(** [env_of_schema] of the {!merge}. *)

(** {1 Compilation} *)

val compile_content : env -> content -> Symbol.t Axml_regex.Regex.t
(** Resolve atoms to word symbols; patterns and wildcards expand to the
    alternation of their members. *)

val compile_signature : env -> content -> Symbol.t Axml_regex.Regex.t
(** As {!compile_content} but patterns are forbidden
    (@raise Schema_error). *)

val signatures_match :
  env -> required_input:content -> required_output:content -> func -> bool
(** Language equivalence of both types. *)

val pattern_members : env -> pattern -> func list
(** The functions belonging to a pattern: predicates accept their name
    and their signature matches (Section 2.1). *)

val compiled_element : env -> t -> string -> Symbol.t Axml_regex.Regex.t option
val compiled_input : env -> string -> Symbol.t Axml_regex.Regex.t option
val compiled_output : env -> string -> Symbol.t Axml_regex.Regex.t option
val is_invocable : env -> string -> bool

val check_deterministic : env -> t -> unit

val alphabet : env -> t -> Auto.Sym_set.t
(** Every word symbol the schema can mention, for closing automaton
    alphabets. *)
