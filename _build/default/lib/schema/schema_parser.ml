(* A compact textual syntax for schemas, mirroring the paper's notation:

     root newspaper
     element newspaper = title.date.(Get_Temp | temp).(TimeOut | exhibit* )
     element title = #data
     function Get_Temp : city -> temp
     noninvocable function TimeOut : #data -> (exhibit | performance)*
     pattern Forecast requires UDDIF InACL : city -> temp

   Lines starting with '#' (after trimming) and blank lines are ignored.
   Names used in content models resolve to functions or patterns when
   declared as such anywhere in the file, otherwise to element labels.
   The XML-syntax schemas of Section 7 are handled separately by the
   Active XML layer (Xml_schema_int). *)

module R = Axml_regex.Regex

exception Parse_error of { line : int; message : string }

let fail line message = raise (Parse_error { line; message })

type raw_decl =
  | D_root of string
  | D_element of string * string                          (* name, regex text *)
  | D_function of { name : string; input : string; output : string; invocable : bool }
  | D_pattern of { name : string; predicates : string list;
                   input : string; output : string; invocable : bool }

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* Find the first occurrence of "->" at top level of a signature text. *)
let split_arrow line text =
  let n = String.length text in
  let rec find i =
    if i + 1 >= n then fail line "expected '->' in signature"
    else if text.[i] = '-' && text.[i + 1] = '>' then i
    else find (i + 1)
  in
  let i = find 0 in
  (String.trim (String.sub text 0 i), String.trim (String.sub text (i + 2) (n - i - 2)))

let split_colon line text =
  match String.index_opt text ':' with
  | None -> fail line "expected ':' before the signature"
  | Some i ->
    (String.trim (String.sub text 0 i),
     String.trim (String.sub text (i + 1) (String.length text - i - 1)))

let parse_decl lineno line : raw_decl option =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then None
  else begin
    let invocable, rest =
      match split_words trimmed with
      | "noninvocable" :: rest -> (false, String.concat " " rest)
      | _ -> (true, trimmed)
    in
    match split_words rest with
    | "root" :: [ name ] -> Some (D_root name)
    | "root" :: _ -> fail lineno "root takes exactly one name"
    | "element" :: _ ->
      let after = String.trim (String.sub rest 7 (String.length rest - 7)) in
      (match String.index_opt after '=' with
       | None -> fail lineno "element declaration needs '='"
       | Some i ->
         let name = String.trim (String.sub after 0 i) in
         let body = String.trim (String.sub after (i + 1) (String.length after - i - 1)) in
         if name = "" then fail lineno "element declaration needs a name";
         Some (D_element (name, body)))
    | "function" :: _ ->
      let after = String.trim (String.sub rest 8 (String.length rest - 8)) in
      let name, signature = split_colon lineno after in
      let input, output = split_arrow lineno signature in
      if name = "" then fail lineno "function declaration needs a name";
      Some (D_function { name; input; output; invocable })
    | "pattern" :: _ ->
      let after = String.trim (String.sub rest 7 (String.length rest - 7)) in
      let head, signature = split_colon lineno after in
      let input, output = split_arrow lineno signature in
      let name, predicates =
        match split_words head with
        | name :: "requires" :: preds when preds <> [] -> (name, preds)
        | [ name ] -> (name, [])
        | _ -> fail lineno "malformed pattern head (use: pattern NAME [requires P..] : IN -> OUT)"
      in
      Some (D_pattern { name; predicates; input; output; invocable })
    | word :: _ -> fail lineno (Fmt.str "unknown declaration %S" word)
    | [] -> None
  end

let parse_regex lineno text =
  match Axml_regex.Regex_parser.parse_result text with
  | Ok r -> r
  | Error e -> fail lineno (Fmt.str "bad regular expression %S: %s" text e)

(* [parse input] parses a whole schema file. *)
let parse input : Schema.t =
  let lines = String.split_on_char '\n' input in
  let decls =
    List.concat
      (List.mapi
         (fun i line ->
           match parse_decl (i + 1) line with
           | Some d -> [ (i + 1, d) ]
           | None -> [])
         lines)
  in
  (* Pass 1: which names are functions / patterns? *)
  let functions, patterns =
    List.fold_left
      (fun (fs, ps) (_, d) ->
        match d with
        | D_function { name; _ } -> (Schema.String_set.add name fs, ps)
        | D_pattern { name; _ } -> (fs, Schema.String_set.add name ps)
        | D_root _ | D_element _ -> (fs, ps))
      (Schema.String_set.empty, Schema.String_set.empty)
      decls
  in
  let resolve lineno text =
    Schema.resolve_content ~functions ~patterns (parse_regex lineno text)
  in
  (* Pass 2: build the schema. *)
  let schema =
    List.fold_left
      (fun s (lineno, d) ->
        try
          match d with
          | D_root name -> Schema.with_root s name
          | D_element (name, body) -> Schema.add_element s name (resolve lineno body)
          | D_function { name; input; output; invocable } ->
            Schema.add_function s
              (Schema.func ~invocable name
                 ~input:(resolve lineno input)
                 ~output:(resolve lineno output))
          | D_pattern { name; predicates; input; output; invocable } ->
            Schema.add_pattern s
              (Schema.pattern ~invocable ~predicates name
                 ~input:(resolve lineno input)
                 ~output:(resolve lineno output))
        with Schema.Schema_error e ->
          fail lineno (Fmt.str "%a" Schema.pp_error e))
      Schema.empty decls
  in
  (try Schema.check schema
   with Schema.Schema_error e -> fail 0 (Fmt.str "%a" Schema.pp_error e));
  schema

let parse_result input =
  match parse input with
  | s -> Ok s
  | exception Parse_error { line; message } ->
    Result.error (Fmt.str "line %d: %s" line message)
