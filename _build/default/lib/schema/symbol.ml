(* The word alphabet of the paper's model: children of a node form a word
   over labels and function names (Definition 3); atomic data values are
   abstracted by the single letter [Data], matching the keyword "data" of
   Definition 2. *)

type t =
  | Label of string
  | Fun of string
  | Data

let compare s1 s2 =
  match s1, s2 with
  | Label a, Label b -> String.compare a b
  | Fun a, Fun b -> String.compare a b
  | Data, Data -> 0
  | Label _, (Fun _ | Data) -> -1
  | Fun _, Data -> -1
  | Fun _, Label _ -> 1
  | Data, (Label _ | Fun _) -> 1

let equal s1 s2 = compare s1 s2 = 0

let pp ppf = function
  | Label l -> Fmt.string ppf l
  | Fun f -> Fmt.pf ppf "%s()" f
  | Data -> Fmt.string ppf "#data"

let to_string = Fmt.to_to_string pp
