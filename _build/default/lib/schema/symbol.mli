(** The word alphabet of the paper's model: the children of a node form
    a word over element labels and function names (Definition 3); atomic
    data values are abstracted by the single letter {!Data}, matching
    the keyword "data" of Definition 2. *)

type t =
  | Label of string  (** an element *)
  | Fun of string    (** an embedded service call *)
  | Data             (** an atomic data value *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
