(* Parser for the paper's textual regular-expression notation, e.g.
   [title.date.(Get_Temp | temp).(TimeOut | exhibit* )].

   Symbols are identifiers; [.] is concatenation, [|] alternation, and
   [*], [+], [?] the usual postfix operators. [()] denotes the empty word.
   The schema layer maps identifiers to labels / function names / data. *)

exception Error of { pos : int; message : string }

let error pos message = raise (Error { pos; message })

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Bar
  | Dot
  | Tstar
  | Tplus
  | Topt
  | Eof

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %S" s
  | Lparen -> Fmt.string ppf "'('"
  | Rparen -> Fmt.string ppf "')'"
  | Bar -> Fmt.string ppf "'|'"
  | Dot -> Fmt.string ppf "'.'"
  | Tstar -> Fmt.string ppf "'*'"
  | Tplus -> Fmt.string ppf "'+'"
  | Topt -> Fmt.string ppf "'?'"
  | Eof -> Fmt.string ppf "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '#'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '-'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let push tk pos = tokens := (tk, pos) :: !tokens in
  while !i < n do
    let c = input.[!i] in
    let pos = !i in
    (match c with
     | ' ' | '\t' | '\n' | '\r' -> incr i
     | '(' -> push Lparen pos; incr i
     | ')' -> push Rparen pos; incr i
     | '|' -> push Bar pos; incr i
     | '.' -> push Dot pos; incr i
     | '*' -> push Tstar pos; incr i
     | '+' -> push Tplus pos; incr i
     | '?' -> push Topt pos; incr i
     | c when is_ident_start c ->
       let start = !i in
       while !i < n && is_ident_char input.[!i] do incr i done;
       push (Ident (String.sub input start (!i - start))) start
     | c -> error pos (Fmt.str "unexpected character %C" c))
  done;
  push Eof n;
  List.rev !tokens

(* Recursive-descent parser over the token list. *)
type stream = { mutable toks : (token * int) list }

let peek st =
  match st.toks with
  | [] -> (Eof, 0)
  | tk :: _ -> tk

let advance st =
  match st.toks with
  | [] -> ()
  | _ :: rest -> st.toks <- rest

let expect st tk =
  let got, pos = peek st in
  if got = tk then advance st
  else error pos (Fmt.str "expected %a but found %a" pp_token tk pp_token got)

let rec parse_alt st =
  let left = parse_seq st in
  match peek st with
  | Bar, _ ->
    advance st;
    Regex.alt left (parse_alt st)
  | _ -> left

and parse_seq st =
  let left = parse_postfix st in
  match peek st with
  | Dot, _ ->
    advance st;
    Regex.seq left (parse_seq st)
  | _ -> left

and parse_postfix st =
  let atom = parse_atom st in
  let rec apply acc =
    match peek st with
    | Tstar, _ -> advance st; apply (Regex.star acc)
    | Tplus, _ -> advance st; apply (Regex.plus acc)
    | Topt, _ -> advance st; apply (Regex.opt acc)
    | _ -> acc
  in
  apply atom

and parse_atom st =
  match peek st with
  | Ident name, _ -> advance st; Regex.sym name
  | Lparen, _ ->
    advance st;
    (match peek st with
     | Rparen, _ -> advance st; Regex.epsilon
     | _ ->
       let r = parse_alt st in
       expect st Rparen;
       r)
  | tk, pos -> error pos (Fmt.str "expected a symbol or '(' but found %a" pp_token tk)

(* [parse input] parses [input] into a regular expression over string
   symbols, raising [Error] on malformed input. *)
let parse input =
  let st = { toks = tokenize input } in
  let r = parse_alt st in
  (match peek st with
   | Eof, _ -> ()
   | tk, pos -> error pos (Fmt.str "trailing input starting with %a" pp_token tk));
  r

let parse_result input =
  match parse input with
  | r -> Ok r
  | exception Error { pos; message } -> Result.error (Fmt.str "at offset %d: %s" pos message)
