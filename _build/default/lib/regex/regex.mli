(** Regular expressions over an arbitrary symbol type.

    These are the regular expressions of the paper's schemas
    (Definition 2): content models of element types and input/output
    types of function signatures. The type is polymorphic in the symbol
    so that the same machinery serves plain-string tests and the schema
    alphabet. *)

type 'a t =
  | Empty          (** the empty language *)
  | Epsilon        (** the empty word *)
  | Sym of 'a
  | Seq of 'a t * 'a t
  | Alt of 'a t * 'a t
  | Star of 'a t
  | Plus of 'a t
  | Opt of 'a t

(** {1 Smart constructors}

    They perform the obvious algebraic simplifications (e.g.
    [seq Empty r = Empty], [alt r r = r], [star (star r) = star r]),
    which keeps derived automata small. *)

val empty : 'a t
val epsilon : 'a t
val sym : 'a -> 'a t
val seq : 'a t -> 'a t -> 'a t
val alt : 'a t -> 'a t -> 'a t
val star : 'a t -> 'a t
val plus : 'a t -> 'a t
val opt : 'a t -> 'a t
val seq_list : 'a t list -> 'a t
val alt_list : 'a t list -> 'a t

val repeat : min:int -> max:int option -> 'a t -> 'a t
(** XML-Schema style occurrence bounds; [max = None] means unbounded.
    @raise Invalid_argument when [max < min]. *)

(** {1 Queries} *)

val nullable : 'a t -> bool
(** Does the language contain the empty word? *)

val is_empty_language : 'a t -> bool
(** Is the language empty (no word at all)? *)

val size : 'a t -> int
(** Number of AST nodes. *)

val symbols : 'a t -> 'a list
(** Symbol occurrences, left to right (with repetitions). *)

val fold_symbols : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

(** {1 Transformations} *)

val map : ('a -> 'b) -> 'a t -> 'b t

val subst : ('a -> 'b t) -> 'a t -> 'b t
(** Substitute a whole expression for each symbol, simplifying as it
    goes; [subst (fun _ -> Empty)] erases symbols together with the
    alternatives that depended on them. *)

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** Structural equality (not language equivalence). *)

(** {1 Printing}

    Minimal parentheses, in the paper's notation:
    [a.b.(c | d)*]. *)

val pp : 'a Fmt.t -> 'a t Fmt.t
val to_string : 'a Fmt.t -> 'a t -> string
