lib/regex/regex.mli: Fmt
