lib/regex/regex_parser.ml: Fmt List Regex Result String
