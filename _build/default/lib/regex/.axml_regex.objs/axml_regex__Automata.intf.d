lib/regex/automata.mli: Fmt Map Regex Set
