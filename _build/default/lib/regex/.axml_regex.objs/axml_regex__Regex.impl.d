lib/regex/regex.ml: Fmt List
