lib/regex/automata.ml: Array Fmt Int List Map Option Queue Regex Set
