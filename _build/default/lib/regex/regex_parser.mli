(** Parser for the paper's textual regular-expression notation, e.g.
    [title.date.(Get_Temp | temp).(TimeOut | exhibit* )].

    Symbols are identifiers (which may start with ['#'], as in [#data]);
    [.] is concatenation, [|] alternation, [*], [+], [?] the usual
    postfix operators, and [()] the empty word. *)

exception Error of { pos : int; message : string }

val parse : string -> string Regex.t
(** @raise Error on malformed input, with a character offset. *)

val parse_result : string -> (string Regex.t, string) result
(** Exception-free variant; the error string embeds the offset. *)
