(* Regular expressions over an arbitrary symbol type.

   These are the regular expressions of the paper's schemas (Definition 2):
   content models of element types and input/output types of function
   signatures. The type is polymorphic in the symbol so that the same
   machinery serves plain-string tests and the schema symbol alphabet. *)

type 'a t =
  | Empty                    (* the empty language (no word at all) *)
  | Epsilon                  (* the empty word *)
  | Sym of 'a
  | Seq of 'a t * 'a t
  | Alt of 'a t * 'a t
  | Star of 'a t
  | Plus of 'a t
  | Opt of 'a t

(* Smart constructors performing the obvious simplifications; they keep
   automata small and make [equal] more useful in tests. *)

let empty = Empty
let epsilon = Epsilon
let sym a = Sym a

let seq r1 r2 =
  match r1, r2 with
  | Empty, _ | _, Empty -> Empty
  | Epsilon, r | r, Epsilon -> r
  | _ -> Seq (r1, r2)

let alt r1 r2 =
  match r1, r2 with
  | Empty, r | r, Empty -> r
  | Epsilon, Opt r | Opt r, Epsilon -> Opt r
  | Epsilon, Star r | Star r, Epsilon -> Star r
  | _ -> if r1 = r2 then r1 else Alt (r1, r2)

let star = function
  | Empty | Epsilon -> Epsilon
  | Star r -> Star r
  | Plus r -> Star r
  | Opt r -> Star r
  | r -> Star r

let plus = function
  | Empty -> Empty
  | Epsilon -> Epsilon
  | Star r -> Star r
  | r -> Plus r

let opt = function
  | Empty -> Epsilon
  | Epsilon -> Epsilon
  | Star r -> Star r
  | Opt r -> Opt r
  | r -> Opt r

let seq_list rs = List.fold_right seq rs Epsilon
let alt_list rs = List.fold_right alt rs Empty

(* [repeat ~min ~max r]: XML-Schema style occurrence bounds.
   [max = None] means unbounded. *)
let repeat ~min ~max r =
  let rec prefix n = if n <= 0 then Epsilon else seq r (prefix (n - 1)) in
  match max with
  | None -> seq (prefix min) (star r)
  | Some max ->
    if max < min then invalid_arg "Regex.repeat: max < min"
    else
      let rec optional n = if n <= 0 then Epsilon else opt (seq r (optional (n - 1))) in
      seq (prefix min) (optional (max - min))

let rec nullable = function
  | Empty -> false
  | Epsilon -> true
  | Sym _ -> false
  | Seq (r1, r2) -> nullable r1 && nullable r2
  | Alt (r1, r2) -> nullable r1 || nullable r2
  | Star _ -> true
  | Plus r -> nullable r
  | Opt _ -> true

let rec is_empty_language = function
  | Empty -> true
  | Epsilon | Sym _ -> false
  | Seq (r1, r2) -> is_empty_language r1 || is_empty_language r2
  | Alt (r1, r2) -> is_empty_language r1 && is_empty_language r2
  | Star _ | Opt _ -> false
  | Plus r -> is_empty_language r

let rec size = function
  | Empty | Epsilon | Sym _ -> 1
  | Seq (r1, r2) | Alt (r1, r2) -> 1 + size r1 + size r2
  | Star r | Plus r | Opt r -> 1 + size r

let rec map f = function
  | Empty -> Empty
  | Epsilon -> Epsilon
  | Sym a -> Sym (f a)
  | Seq (r1, r2) -> Seq (map f r1, map f r2)
  | Alt (r1, r2) -> Alt (map f r1, map f r2)
  | Star r -> Star (map f r)
  | Plus r -> Plus (map f r)
  | Opt r -> Opt (map f r)

(* Substitute a whole expression for each symbol, simplifying as we go;
   [subst (fun _ -> Empty)] erases symbols together with the alternatives
   that depended on them. *)
let rec subst f = function
  | Empty -> Empty
  | Epsilon -> Epsilon
  | Sym a -> f a
  | Seq (r1, r2) -> seq (subst f r1) (subst f r2)
  | Alt (r1, r2) -> alt (subst f r1) (subst f r2)
  | Star r -> star (subst f r)
  | Plus r -> plus (subst f r)
  | Opt r -> opt (subst f r)

let rec fold_symbols f acc = function
  | Empty | Epsilon -> acc
  | Sym a -> f acc a
  | Seq (r1, r2) | Alt (r1, r2) -> fold_symbols f (fold_symbols f acc r1) r2
  | Star r | Plus r | Opt r -> fold_symbols f acc r

let symbols r = List.rev (fold_symbols (fun acc a -> a :: acc) [] r)

let rec equal eq r1 r2 =
  match r1, r2 with
  | Empty, Empty | Epsilon, Epsilon -> true
  | Sym a, Sym b -> eq a b
  | Seq (a1, a2), Seq (b1, b2) | Alt (a1, a2), Alt (b1, b2) ->
    equal eq a1 b1 && equal eq a2 b2
  | Star a, Star b | Plus a, Plus b | Opt a, Opt b -> equal eq a b
  | (Empty | Epsilon | Sym _ | Seq _ | Alt _ | Star _ | Plus _ | Opt _), _ -> false

(* Pretty-printing with minimal parentheses: alternation < concatenation
   < postfix operators, as in the paper's notation [a.b.(c | d)*]. *)
let pp pp_sym ppf r =
  let rec go prec ppf r =
    match r with
    | Empty -> Fmt.string ppf "<empty>"
    | Epsilon -> Fmt.string ppf "()"
    | Sym a -> pp_sym ppf a
    | Alt (r1, r2) ->
      let doc ppf () = Fmt.pf ppf "%a | %a" (go 0) r1 (go 0) r2 in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
    | Seq (r1, r2) ->
      let doc ppf () = Fmt.pf ppf "%a.%a" (go 1) r1 (go 1) r2 in
      if prec > 1 then Fmt.parens doc ppf () else doc ppf ()
    | Star r -> Fmt.pf ppf "%a*" (go 2) r
    | Plus r -> Fmt.pf ppf "%a+" (go 2) r
    | Opt r -> Fmt.pf ppf "%a?" (go 2) r
  in
  go 0 ppf r

let to_string pp_sym r = Fmt.str "%a" (pp pp_sym) r
