(** Invocation-cost planning — Figure 3 step 23 and Figure 9 step (d):
    "to minimize the rewriting cost, chose a path with minimal
    number/cost of function invocations". *)

type fn = string -> float
(** The fee of invoking a function (e.g. [Service.cost] via the
    registry); [fun _ -> 1.] counts invocations. *)

val edge_weight : Fork_automaton.t -> cost:fn -> int -> float
(** Fee paid when taking the given A_w^k edge: the service fee on a
    fork's invoke option, [0.] elsewhere. *)

val possible_costs : Possible.t -> cost:fn -> int -> float
(** Per product node, the minimal total fee of reaching acceptance
    ([infinity] when none is reachable), by Dijkstra on the product. *)

val possible_min_cost : Possible.t -> cost:fn -> float option
(** Cheapest total fee of a successful rewriting, assuming services
    cooperate; [None] when the rewriting is impossible. *)

val safe_worst_cost : Marking.t -> cost:fn -> float option
(** [None] when the word is not safely rewritable; otherwise the
    guaranteed worst-case fee bound of the rewriter's best strategy,
    over all honest service behaviours. [Some infinity] when the
    adversary can force unboundedly many paid invocations (e.g. a
    starred output whose every element must be invoked). *)
