lib/core/generate.ml: Array Axml_regex Axml_schema Document Fmt List Random
