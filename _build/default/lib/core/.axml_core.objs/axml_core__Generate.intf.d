lib/core/generate.mli: Axml_regex Axml_schema Document
