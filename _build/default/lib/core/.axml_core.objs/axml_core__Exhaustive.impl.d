lib/core/exhaustive.ml: Axml_regex Axml_schema Hashtbl List
