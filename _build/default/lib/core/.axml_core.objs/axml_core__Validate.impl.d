lib/core/validate.ml: Axml_regex Axml_schema Document Fmt Hashtbl List Option String
