lib/core/possible.ml: Bitvec Hashtbl List Product Queue
