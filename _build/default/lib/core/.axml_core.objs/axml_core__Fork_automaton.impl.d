lib/core/fork_automaton.ml: Array Axml_regex Axml_schema Fmt Hashtbl List Option Vec
