lib/core/document.ml: Axml_schema Fmt List String
