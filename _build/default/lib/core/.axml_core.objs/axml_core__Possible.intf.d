lib/core/possible.mli: Bitvec Product
