lib/core/schema_rewrite.mli: Axml_schema Rewriter
