lib/core/exhaustive.mli: Axml_regex Axml_schema
