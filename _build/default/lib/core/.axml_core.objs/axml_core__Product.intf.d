lib/core/product.mli: Axml_schema Fork_automaton
