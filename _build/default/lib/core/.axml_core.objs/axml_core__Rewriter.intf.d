lib/core/rewriter.mli: Axml_regex Axml_schema Document Execute Fmt Marking Possible Product
