lib/core/fork_automaton.mli: Axml_schema Fmt
