lib/core/execute.ml: Axml_schema Document Float Fork_automaton Hashtbl List Marking Option Possible Product
