lib/core/product.ml: Axml_schema Fork_automaton Hashtbl List Map Vec
