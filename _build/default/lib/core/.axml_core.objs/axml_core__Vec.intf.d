lib/core/vec.mli:
