lib/core/document.mli: Axml_schema Fmt
