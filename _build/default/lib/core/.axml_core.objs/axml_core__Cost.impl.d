lib/core/cost.ml: Array Axml_schema Bitvec Float Fork_automaton Hashtbl List Marking Option Possible Product Queue Set
