lib/core/schema_rewrite.ml: Axml_regex Axml_schema Fmt List Queue Rewriter
