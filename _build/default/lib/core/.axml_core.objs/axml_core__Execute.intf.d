lib/core/execute.mli: Document Marking Possible
