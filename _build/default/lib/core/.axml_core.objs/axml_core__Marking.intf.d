lib/core/marking.mli: Bitvec Product
