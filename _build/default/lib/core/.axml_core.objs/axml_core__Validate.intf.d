lib/core/validate.mli: Axml_schema Document Fmt
