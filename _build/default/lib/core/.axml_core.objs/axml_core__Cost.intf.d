lib/core/cost.mli: Fork_automaton Marking Possible
