lib/core/marking.ml: Array Bitvec Fork_automaton Hashtbl List Product Queue Vec
