lib/core/bitvec.ml: Bytes Char
