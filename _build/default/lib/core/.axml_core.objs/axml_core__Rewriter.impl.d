lib/core/rewriter.ml: Axml_regex Axml_schema Document Execute Fmt Fork_automaton Hashtbl List Marking Option Possible Product String
