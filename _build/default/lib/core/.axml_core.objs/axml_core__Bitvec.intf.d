lib/core/bitvec.mli:
