(** The full rewriting engine of Sections 3-5: given a document (or a
    word) of the sender schema [s0] and an agreed exchange schema
    [target], decide safe / possible rewritability and materialize the
    document accordingly.

    The tree algorithm follows Section 4: parameters of function nodes
    are rewritten against their [tau_in] before the function may fire
    (deepest first); every node's children word is rewritten against the
    content model of its type; forests returned by invoked services are
    spliced in as-is (footnote 5). *)

type engine =
  | Eager  (** the literal algorithm of Figure 3 *)
  | Lazy   (** the pruned on-the-fly variant of Section 7 *)

type t

val create :
  ?k:int -> ?engine:engine -> ?predicate:(string -> string -> bool) ->
  s0:Axml_schema.Schema.t -> target:Axml_schema.Schema.t -> unit -> t
(** [k] is the rewriting depth (Definition 7, default 1); [predicate]
    answers function-pattern predicates.
    @raise Axml_schema.Schema.Schema_error when [s0] and [target]
    disagree on a common function signature. *)

val env : t -> Axml_schema.Schema.env

val element_regex : t -> string -> Axml_schema.Symbol.t Axml_regex.Regex.t option
(** Compiled content model of a label in the {e target} schema. *)

val input_regex : t -> string -> Axml_schema.Symbol.t Axml_regex.Regex.t option
(** Compiled input type of a function, from the merged environment. *)

(** {1 Word level} *)

val word_product :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> Product.t

val word_safe_analysis :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> Marking.t

val word_possible_analysis :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> Possible.t

val word_is_safe :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> bool

val word_is_possible :
  t -> target_regex:Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t list -> bool

(** {1 Tree-level verdicts} *)

type reason =
  | Unknown_element of string
  | Unknown_function of string
  | Unsafe_word of { context : string; word : Axml_schema.Symbol.t list }
  | Impossible_word of { context : string; word : Axml_schema.Symbol.t list }
  | Root_mismatch of { expected : string; found : string }
  | Execution_failed of { context : string }

type failure = { at : Document.path; reason : reason }

val pp_reason : reason Fmt.t
val pp_failure : failure Fmt.t

type mode = Safe | Possible_mode

val check_safe : t -> Document.t -> failure list
(** Static check, no invocation; [[]] means every node's children word
    safely rewrites. *)

val check_possible : t -> Document.t -> failure list
val is_safe : t -> Document.t -> bool
val is_possible : t -> Document.t -> bool

(** {1 Materialization} *)

type located_invocation = { at : Document.path; invocation : Execute.invocation }

exception Failed of failure

val materialize :
  ?mode:mode -> t -> invoker:Execute.invoker -> Document.t ->
  (Document.t * located_invocation list, failure list) result
(** In [Safe] mode success is guaranteed once the check passes
    ([Execute.Ill_typed_output] means a service broke its contract); in
    [Possible_mode] a run-time failure surfaces as
    [Execution_failed]. *)

(** {1 The mixed approach (Section 5)} *)

val pre_materialize :
  t -> eager_calls:(string -> bool) -> invoker:Execute.invoker ->
  Document.t -> Document.t * located_invocation list
(** Invoke up-front every call whose function satisfies [eager_calls]
    (recursively, budget-bounded), splicing actual results: the concrete
    answers replace the signature automata, shrinking A_w^k. *)

val materialize_mixed :
  t -> eager_calls:(string -> bool) -> invoker:Execute.invoker ->
  Document.t ->
  (Document.t * located_invocation list, failure list) result

val check_mixed :
  t -> eager_calls:(string -> bool) -> invoker:Execute.invoker ->
  Document.t -> failure list
