(* Intensional documents (Definition 1): ordered labeled trees whose nodes
   are either data nodes (elements and atomic values) or function nodes
   (embedded service calls). The children of a function node are its call
   parameters; invoking the call replaces the node by the returned forest
   (Definition 4, footnote 3). *)

module Symbol = Axml_schema.Symbol

type t =
  | Elem of { label : string; children : t list }
  | Data of string
  | Call of { name : string; params : t list }

type forest = t list

let elem label children = Elem { label; children }
let data value = Data value
let call name params = Call { name; params }

(* The letter a node contributes to its parent's children word. *)
let symbol = function
  | Elem { label; _ } -> Symbol.Label label
  | Data _ -> Symbol.Data
  | Call { name; _ } -> Symbol.Fun name

let word (forest : forest) : Symbol.t list = List.map symbol forest

let children = function
  | Elem { children; _ } -> children
  | Call { params; _ } -> params
  | Data _ -> []

let rec count_nodes = function
  | Elem { children; _ } ->
    1 + List.fold_left (fun acc c -> acc + count_nodes c) 0 children
  | Call { params; _ } ->
    1 + List.fold_left (fun acc c -> acc + count_nodes c) 0 params
  | Data _ -> 1

let rec count_calls = function
  | Elem { children; _ } ->
    List.fold_left (fun acc c -> acc + count_calls c) 0 children
  | Call { params; _ } ->
    1 + List.fold_left (fun acc c -> acc + count_calls c) 0 params
  | Data _ -> 0

(* A document is extensional when it embeds no service call. *)
let is_extensional doc = count_calls doc = 0

let rec depth = function
  | Elem { children; _ } -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children
  | Call { params; _ } -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 params
  | Data _ -> 1

let rec equal d1 d2 =
  match d1, d2 with
  | Elem e1, Elem e2 ->
    String.equal e1.label e2.label
    && List.length e1.children = List.length e2.children
    && List.for_all2 equal e1.children e2.children
  | Data v1, Data v2 -> String.equal v1 v2
  | Call c1, Call c2 ->
    String.equal c1.name c2.name
    && List.length c1.params = List.length c2.params
    && List.for_all2 equal c1.params c2.params
  | (Elem _ | Data _ | Call _), _ -> false

let equal_forest f1 f2 =
  List.length f1 = List.length f2 && List.for_all2 equal f1 f2

(* ------------------------------------------------------------------ *)
(* Paths: addresses of nodes, as child-index sequences from the root.  *)
(* ------------------------------------------------------------------ *)

type path = int list

let pp_path ppf path = Fmt.pf ppf "/%a" Fmt.(list ~sep:(any "/") int) path

let get doc path =
  let rec go node = function
    | [] -> Some node
    | i :: rest ->
      (match List.nth_opt (children node) i with
       | Some child -> go child rest
       | None -> None)
  in
  go doc path

(* Replace the node at [path] by a forest (the semantics of invoking a
   call node: the returned trees are plugged in place of the node). The
   path must not be empty — a root node cannot be replaced by a forest. *)
let splice doc path replacement =
  let rec go node = function
    | [] -> invalid_arg "Document.splice: empty path"
    | [ i ] ->
      let kids = children node in
      if i < 0 || i >= List.length kids then invalid_arg "Document.splice: bad path";
      let kids =
        List.concat (List.mapi (fun j c -> if j = i then replacement else [ c ]) kids)
      in
      rebuild node kids
    | i :: rest ->
      let kids = children node in
      (match List.nth_opt kids i with
       | None -> invalid_arg "Document.splice: bad path"
       | Some child ->
         let kids = List.mapi (fun j c -> if j = i then go child rest else c) kids in
         rebuild node kids)
  and rebuild node kids =
    match node with
    | Elem e -> Elem { e with children = kids }
    | Call c -> Call { c with params = kids }
    | Data _ -> invalid_arg "Document.splice: path descends into a data leaf"
  in
  go doc path

(* All function nodes, in document order, with their paths. *)
let calls_with_paths doc =
  let rec go path acc node =
    let acc =
      match node with
      | Call { name; _ } -> (List.rev path, name) :: acc
      | Elem _ | Data _ -> acc
    in
    List.fold_left
      (fun (i, acc) child ->
        (i + 1, go (i :: path) acc child))
      (0, acc) (children node)
    |> snd
  in
  List.rev (go [] [] doc)

(* The nesting depth of calls inside call parameters: 0 when no call has
   a call in its parameters. Used by the bottom-up parameter phase. *)
let rec call_nesting = function
  | Data _ -> 0
  | Elem { children; _ } ->
    List.fold_left (fun acc c -> max acc (call_nesting c)) 0 children
  | Call { params; _ } ->
    let inner =
      List.fold_left (fun acc c -> max acc (call_nesting c)) 0 params
    in
    let has_inner_call = List.exists (fun p -> count_calls p > 0) params in
    if has_inner_call then 1 + inner else inner

(* ------------------------------------------------------------------ *)
(* Printing: a compact term-like form used in tests and logs.          *)
(* ------------------------------------------------------------------ *)

let rec pp ppf = function
  | Data v -> Fmt.pf ppf "%S" v
  | Elem { label; children = [] } -> Fmt.pf ppf "%s[]" label
  | Elem { label; children } ->
    Fmt.pf ppf "@[<hv 2>%s[%a]@]" label Fmt.(list ~sep:comma pp) children
  | Call { name; params = [] } -> Fmt.pf ppf "@%s()" name
  | Call { name; params } ->
    Fmt.pf ppf "@[<hv 2>@%s(%a)@]" name Fmt.(list ~sep:comma pp) params

let pp_forest ppf forest = Fmt.(list ~sep:comma pp) ppf forest
let to_string doc = Fmt.str "%a" pp doc
