(* Schema validation (Definition 3): a document is an instance of a
   schema when every data node's children word is in the language of its
   label's content model and every function node's parameter word is in
   the language of its input type.

   A [ctx] caches the compiled DFA of every content model so repeated
   validations (the enforcement module validates every exchanged
   document) cost one automaton construction per type. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto

type violation_kind =
  | Unknown_label of string
  | Unknown_function of string
  | Content_mismatch of { label : string; word : Symbol.t list }
  | Input_mismatch of { fname : string; word : Symbol.t list }
  | Root_mismatch of { expected : string; found : string }

type violation = { at : Document.path; kind : violation_kind }

let pp_word = Fmt.(list ~sep:(any ".") Symbol.pp)

let pp_violation_kind ppf = function
  | Unknown_label l -> Fmt.pf ppf "element type %S is not declared" l
  | Unknown_function f -> Fmt.pf ppf "function %S is not declared" f
  | Content_mismatch { label; word } ->
    Fmt.pf ppf "children of <%s> form %a, outside its content model" label pp_word word
  | Input_mismatch { fname; word } ->
    Fmt.pf ppf "parameters of %s() form %a, outside its input type" fname pp_word word
  | Root_mismatch { expected; found } ->
    Fmt.pf ppf "root is <%s> but the schema requires <%s>" found expected

let pp_violation ppf v =
  Fmt.pf ppf "%a: %a" Document.pp_path v.at pp_violation_kind v.kind

type ctx = {
  env : Schema.env;
  schema : Schema.t;
  element_dfas : (string, Auto.Dfa.t option) Hashtbl.t;
  input_dfas : (string, Auto.Dfa.t option) Hashtbl.t;
  output_dfas : (string, Auto.Dfa.t option) Hashtbl.t;
}

let ctx ?env schema =
  let env = match env with Some e -> e | None -> Schema.env_of_schema schema in
  { env; schema;
    element_dfas = Hashtbl.create 16;
    input_dfas = Hashtbl.create 16;
    output_dfas = Hashtbl.create 16 }

let memo table key compute =
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
    let v = compute () in
    Hashtbl.add table key v;
    v

let element_dfa ctx label =
  memo ctx.element_dfas label (fun () ->
      Option.map
        (fun c -> Auto.Dfa.of_regex (Schema.compile_content ctx.env c))
        (Schema.find_element ctx.schema label))

(* Input/output types are looked up in the environment: the validating
   peer knows the WSDL of every function, including ones declared only by
   the other party's schema. *)
let input_dfa ctx fname =
  memo ctx.input_dfas fname (fun () ->
      Option.map
        (fun (f : Schema.func) ->
          Auto.Dfa.of_regex (Schema.compile_content ctx.env f.Schema.f_input))
        (Schema.String_map.find_opt fname ctx.env.Schema.env_functions))

let output_dfa ctx fname =
  memo ctx.output_dfas fname (fun () ->
      Option.map
        (fun (f : Schema.func) ->
          Auto.Dfa.of_regex (Schema.compile_content ctx.env f.Schema.f_output))
        (Schema.String_map.find_opt fname ctx.env.Schema.env_functions))

(* Collect the violations of [doc] against the schema, prefix order. *)
let violations ctx (doc : Document.t) : violation list =
  let acc = ref [] in
  let push at kind = acc := { at; kind } :: !acc in
  let rec visit path node =
    (match node with
     | Document.Data _ -> ()
     | Document.Elem { label; children } ->
       (match element_dfa ctx label with
        | None -> push (List.rev path) (Unknown_label label)
        | Some dfa ->
          let word = Document.word children in
          if not (Auto.Dfa.accepts dfa word) then
            push (List.rev path) (Content_mismatch { label; word }))
     | Document.Call { name; params } ->
       (match input_dfa ctx name with
        | None -> push (List.rev path) (Unknown_function name)
        | Some dfa ->
          let word = Document.word params in
          if not (Auto.Dfa.accepts dfa word) then
            push (List.rev path) (Input_mismatch { fname = name; word })));
    List.iteri (fun i child -> visit (i :: path) child) (Document.children node)
  in
  visit [] doc;
  List.rev !acc

let instance_of ctx doc = violations ctx doc = []

(* As [violations], additionally requiring the schema's distinguished
   root label (Definition 6 context). *)
let document_violations ctx doc =
  let root_violations =
    match ctx.schema.Schema.root, doc with
    | Some expected, Document.Elem { label; _ } when not (String.equal label expected) ->
      [ { at = []; kind = Root_mismatch { expected; found = label } } ]
    | Some expected, (Document.Data _ | Document.Call _) ->
      [ { at = []; kind = Root_mismatch { expected; found = "(not an element)" } } ]
    | _ -> []
  in
  root_violations @ violations ctx doc

(* Output-instance check (Definition 3, second part): the forest a
   service returned, against its declared output type. *)
let output_instance ctx fname (forest : Document.forest) : violation list =
  match output_dfa ctx fname with
  | None -> [ { at = []; kind = Unknown_function fname } ]
  | Some dfa ->
    let word = Document.word forest in
    let word_ok =
      if Auto.Dfa.accepts dfa word then []
      else [ { at = []; kind = Content_mismatch { label = fname ^ "() output"; word } } ]
    in
    word_ok
    @ List.concat (List.mapi (fun i tree ->
          List.map (fun v -> { v with at = i :: v.at }) (violations ctx tree))
        forest)

let input_instance ctx fname (forest : Document.forest) : violation list =
  match input_dfa ctx fname with
  | None -> [ { at = []; kind = Unknown_function fname } ]
  | Some dfa ->
    let word = Document.word forest in
    let word_ok =
      if Auto.Dfa.accepts dfa word then []
      else [ { at = []; kind = Input_mismatch { fname; word } } ]
    in
    word_ok
    @ List.concat (List.mapi (fun i tree ->
          List.map (fun v -> { v with at = i :: v.at }) (violations ctx tree))
        forest)
