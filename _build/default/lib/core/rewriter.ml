(* The full rewriting engine of Sections 3-5: given a document (or a
   word) of the sender schema [s0] and an agreed exchange schema
   [target], decide safe / possible rewritability and materialize the
   document accordingly.

   Tree algorithm (Section 4): parameters of function nodes are handled
   before the functions themselves (the recursion below materializes a
   node's interior — parameter subtrees included — before rewriting its
   children word, which yields exactly the paper's deepest-first order),
   and every node's children word is rewritten against the content model
   of its type; forests returned by invoked services are spliced in as-is
   (footnote 5: since s0 and the exchange schema agree on function
   signatures, returned data needs no further rewriting). *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto

type engine = Eager | Lazy

type t = {
  env : Schema.env;
  s0 : Schema.t;
  target : Schema.t;
  k : int;
  engine : engine;
  element_regexes : (string, Symbol.t R.t option) Hashtbl.t;
  input_regexes : (string, Symbol.t R.t option) Hashtbl.t;
}

let create ?(k = 1) ?(engine = Lazy) ?predicate ~s0 ~target () =
  let env = Schema.env_of_schemas ?predicate s0 target in
  { env; s0; target; k; engine;
    element_regexes = Hashtbl.create 16;
    input_regexes = Hashtbl.create 16 }

let env t = t.env

let memo table key compute =
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
    let v = compute () in
    Hashtbl.add table key v;
    v

(* Content model of element [label] in the *target* schema. *)
let element_regex t label =
  memo t.element_regexes label (fun () ->
      Option.map (Schema.compile_content t.env) (Schema.find_element t.target label))

(* Input type of function [fname], from the merged environment (the WSDL
   of every known service). *)
let input_regex t fname =
  memo t.input_regexes fname (fun () ->
      Option.map
        (fun (f : Schema.func) -> Schema.compile_content t.env f.Schema.f_input)
        (Schema.String_map.find_opt fname t.env.Schema.env_functions))

(* ------------------------------------------------------------------ *)
(* Word-level interface                                                *)
(* ------------------------------------------------------------------ *)

let word_product t ~target_regex word =
  let fork = Fork_automaton.build ~env:t.env ~k:t.k word in
  let nfa = Auto.Nfa.glushkov target_regex in
  Product.create ~fork ~target:nfa

let word_safe_analysis t ~target_regex word =
  let p = word_product t ~target_regex word in
  match t.engine with
  | Eager -> Marking.analyze_eager p
  | Lazy -> Marking.analyze_lazy p

let word_possible_analysis t ~target_regex word =
  Possible.analyze (word_product t ~target_regex word)

let word_is_safe t ~target_regex word =
  (word_safe_analysis t ~target_regex word).Marking.safe

let word_is_possible t ~target_regex word =
  (word_possible_analysis t ~target_regex word).Possible.possible

(* ------------------------------------------------------------------ *)
(* Tree-level verdicts                                                 *)
(* ------------------------------------------------------------------ *)

type reason =
  | Unknown_element of string
  | Unknown_function of string
  | Unsafe_word of { context : string; word : Symbol.t list }
  | Impossible_word of { context : string; word : Symbol.t list }
  | Root_mismatch of { expected : string; found : string }
  | Execution_failed of { context : string }

type failure = { at : Document.path; reason : reason }

let pp_word = Fmt.(list ~sep:(any ".") Symbol.pp)

let pp_reason ppf = function
  | Unknown_element l ->
    Fmt.pf ppf "element type %S is not part of the exchange schema" l
  | Unknown_function f -> Fmt.pf ppf "function %S has no known signature" f
  | Unsafe_word { context; word } ->
    Fmt.pf ppf "children of %s (%a) cannot be safely rewritten" context pp_word word
  | Impossible_word { context; word } ->
    Fmt.pf ppf "children of %s (%a) cannot possibly be rewritten" context pp_word word
  | Root_mismatch { expected; found } ->
    Fmt.pf ppf "root is <%s> but the exchange schema requires <%s>" found expected
  | Execution_failed { context } ->
    Fmt.pf ppf "a possible rewriting of the children of %s failed at run time" context

let pp_failure ppf f =
  Fmt.pf ppf "%a: %a" Document.pp_path f.at pp_reason f.reason

type mode = Safe | Possible_mode

let root_failures t doc =
  match t.target.Schema.root, (doc : Document.t) with
  | Some expected, Document.Elem { label; _ } when not (String.equal label expected) ->
    [ { at = []; reason = Root_mismatch { expected; found = label } } ]
  | Some expected, (Document.Data _ | Document.Call _) ->
    [ { at = []; reason = Root_mismatch { expected; found = "(not an element)" } } ]
  | _ -> []

(* Static check: no invocation happens; every node's children word is
   analyzed against its type. Returns the failures ([] = verdict holds). *)
let check mode t (doc : Document.t) : failure list =
  let acc = ref [] in
  let push at reason = acc := { at; reason } :: !acc in
  let rec visit path (node : Document.t) =
    (match node with
     | Document.Data _ -> ()
     | Document.Elem { label; children } ->
       (match element_regex t label with
        | None -> push (List.rev path) (Unknown_element label)
        | Some regex -> check_word path ("<" ^ label ^ ">") regex children)
     | Document.Call { name; params } ->
       (match input_regex t name with
        | None -> push (List.rev path) (Unknown_function name)
        | Some regex -> check_word path (name ^ "()") regex params));
    List.iteri (fun i child -> visit (i :: path) child) (Document.children node)
  and check_word path context regex forest =
    let word = Document.word forest in
    match mode with
    | Safe ->
      if not (word_is_safe t ~target_regex:regex word) then
        push (List.rev path) (Unsafe_word { context; word })
    | Possible_mode ->
      if not (word_is_possible t ~target_regex:regex word) then
        push (List.rev path) (Impossible_word { context; word })
  in
  visit [] doc;
  root_failures t doc @ List.rev !acc

let check_safe t doc = check Safe t doc
let check_possible t doc = check Possible_mode t doc

let is_safe t doc = check_safe t doc = []
let is_possible t doc = check_possible t doc = []

(* ------------------------------------------------------------------ *)
(* Materialization                                                     *)
(* ------------------------------------------------------------------ *)

type located_invocation = { at : Document.path; invocation : Execute.invocation }

exception Failed of failure

(* Materialize [doc] so that it conforms to the exchange schema,
   invoking services through [invoker]. In [Safe] mode the rewriting is
   guaranteed (exception [Failed] means the document is not safely
   rewritable; [Execute.Ill_typed_output] means a service broke its
   WSDL contract). In [Possible_mode] a run-time failure surfaces as
   [Failed { reason = Execution_failed _; _ }]. *)
let materialize ?(mode = Safe) t ~(invoker : Execute.invoker) (doc : Document.t) :
    (Document.t * located_invocation list, failure list) result =
  match root_failures t doc with
  | _ :: _ as fs -> Error fs
  | [] ->
  let invocations = ref [] in
  let rec interior path (node : Document.t) : Document.t =
    match node with
    | Document.Data v -> Document.Data v
    | Document.Elem { label; children } ->
      (match element_regex t label with
       | None -> raise (Failed { at = List.rev path; reason = Unknown_element label })
       | Some regex ->
         Document.elem label (forest path ("<" ^ label ^ ">") regex children))
    | Document.Call { name; params } ->
      (match input_regex t name with
       | None -> raise (Failed { at = List.rev path; reason = Unknown_function name })
       | Some regex ->
         Document.call name (forest path (name ^ "()") regex params))
  and forest path context regex (children : Document.forest) : Document.forest =
    (* deepest-first: materialize interiors (and hence parameters of
       function children) before rewriting this children word *)
    let children = List.mapi (fun i c -> interior (i :: path) c) children in
    let word = Document.word children in
    let strategy =
      match mode with
      | Safe ->
        let analysis = word_safe_analysis t ~target_regex:regex word in
        if not analysis.Marking.safe then
          raise (Failed { at = List.rev path; reason = Unsafe_word { context; word } });
        Execute.Follow_safe analysis
      | Possible_mode ->
        let analysis = word_possible_analysis t ~target_regex:regex word in
        if not analysis.Possible.possible then
          raise
            (Failed { at = List.rev path; reason = Impossible_word { context; word } });
        Execute.Follow_possible analysis
    in
    match Execute.run strategy invoker children with
    | Some outcome ->
      List.iter
        (fun inv ->
          invocations := { at = List.rev path; invocation = inv } :: !invocations)
        outcome.Execute.invocations;
      outcome.Execute.materialized
    | None ->
      raise (Failed { at = List.rev path; reason = Execution_failed { context } })
  in
  match interior [] doc with
  | doc' -> Ok (doc', List.rev !invocations)
  | exception Failed f -> Error [ f ]

(* ------------------------------------------------------------------ *)
(* The mixed approach (Section 5)                                      *)
(* ------------------------------------------------------------------ *)

(* Invoke up-front every call whose function satisfies [eager_calls]
   (e.g. side-effect-free or cheap services), splice the actual results,
   then run the safe analysis on what remains. The actual outputs replace
   the "full signature automaton" by concrete words, shrinking A_w^k. *)
let pre_materialize t ~eager_calls ~(invoker : Execute.invoker) doc =
  let invocations = ref [] in
  let budget = ref (max 1 (t.k * 64)) in
  let rec node_forest path (node : Document.t) : Document.forest =
    match node with
    | Document.Data v -> [ Document.Data v ]
    | Document.Elem { label; children } ->
      [ Document.elem label (forest path children) ]
    | Document.Call { name; params } ->
      let params = forest path params in
      if eager_calls name && Schema.is_invocable t.env name && !budget > 0 then begin
        decr budget;
        let returned = invoker name params in
        invocations :=
          { at = List.rev path;
            invocation = { Execute.inv_name = name; inv_params = params;
                           inv_result = returned } }
          :: !invocations;
        forest path returned
      end
      else [ Document.call name params ]
  and forest path children =
    List.concat (List.mapi (fun i c -> node_forest (i :: path) c) children)
  in
  match node_forest [] doc with
  | [ doc' ] -> (doc', List.rev !invocations)
  | _ -> invalid_arg "pre_materialize: the root call returned a non-singleton forest"

let materialize_mixed t ~eager_calls ~invoker doc =
  let doc', pre = pre_materialize t ~eager_calls ~invoker doc in
  match materialize ~mode:Safe t ~invoker doc' with
  | Ok (doc'', invs) -> Ok (doc'', pre @ invs)
  | Error fs -> Error fs

let check_mixed t ~eager_calls ~invoker doc =
  let doc', _pre = pre_materialize t ~eager_calls ~invoker doc in
  check_safe t doc'
