(** Brute-force reference semantics for the rewriting games, usable when
    every output type has a finite language (star-free signatures).

    The automata engines are property-tested against {!safe} and
    {!possible}; {!safe_arbitrary} plays the game with NO left-to-right
    restriction, exhibiting the paper's Section 3 remark that the
    restriction "can miss a successful rewriting". *)

exception Not_star_free

val enum_language :
  Axml_schema.Symbol.t Axml_regex.Regex.t -> Axml_schema.Symbol.t list list
(** The finite language of a star-free regex. @raise Not_star_free. *)

val outputs_of_env :
  Axml_schema.Schema.env ->
  string -> Axml_schema.Symbol.t list list option
(** Memoized finite output sets of the environment's functions; [None]
    for non-invocable functions, unknown names and empty output
    languages. *)

val safe :
  outputs:(string -> Axml_schema.Symbol.t list list option) ->
  target_dfa:Axml_schema.Auto.Dfa.t -> k:int ->
  Axml_schema.Symbol.t list -> bool
(** The k-depth left-to-right SAFE game, by exhaustive search —
    reference for [Marking]. *)

val possible :
  outputs:(string -> Axml_schema.Symbol.t list list option) ->
  target_dfa:Axml_schema.Auto.Dfa.t -> k:int ->
  Axml_schema.Symbol.t list -> bool
(** Existential variant — reference for [Possible]. *)

val safe_arbitrary :
  outputs:(string -> Axml_schema.Symbol.t list list option) ->
  target_dfa:Axml_schema.Auto.Dfa.t -> k:int ->
  Axml_schema.Symbol.t list -> bool
(** The k-depth game with invocations in ANY order: the rewriter may
    probe a right sibling before committing on a left one. Implied by
    {!safe}; strictly more permissive in general. *)
