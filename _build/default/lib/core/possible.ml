(* POSSIBLE rewriting (Figure 9): does *some* choice of invocations and
   some choice of service outputs turn the word into the target language?
   In automata terms: is the intersection of A_w^k with the target
   language non-empty — i.e. can the initial product node reach a node
   where the word is complete and inside the language?

   All edges are existential here (no adversary), so the analysis is a
   plain backward reachability from the good-accepting nodes: [live]
   nodes are those with some outgoing path to acceptance (step 5 of
   Figure 9). The extracted rewriting only *may* succeed; execution
   (Execute) backtracks when a call's actual return value falls off every
   live path, as prescribed by step (c) of Figure 9. *)

type stats = { discovered_nodes : int; live_nodes : int }

type t = {
  product : Product.t;
  live : Bitvec.t;
  possible : bool;
  stats : stats;
}

let is_live t nid = Bitvec.get t.live nid

let analyze p =
  (* forward exploration of the full reachable product *)
  let seen = Bitvec.create () in
  let rev : (int, int list ref) Hashtbl.t = Hashtbl.create 256 in
  let accepting = ref [] in
  let frontier = Queue.create () in
  let discover nid =
    if not (Bitvec.get seen nid) then begin
      Bitvec.set seen nid;
      if Product.good_accepting p nid then accepting := nid :: !accepting;
      Queue.add nid frontier
    end
  in
  discover (Product.initial p);
  while not (Queue.is_empty frontier) do
    let nid = Queue.take frontier in
    (* skip expanding dead subsets: nothing reachable from them accepts *)
    if not (Product.subset_is_dead p nid) then
      List.iter
        (fun (_, tgt) ->
          let l =
            match Hashtbl.find_opt rev tgt with
            | Some l -> l
            | None ->
              let l = ref [] in
              Hashtbl.add rev tgt l;
              l
          in
          l := nid :: !l;
          discover tgt)
        (Product.succ p nid)
  done;
  (* backward reachability from accepting nodes *)
  let live = Bitvec.create () in
  let nlive = ref 0 in
  let back = Queue.create () in
  let mark_live nid =
    if not (Bitvec.get live nid) then begin
      Bitvec.set live nid;
      incr nlive;
      Queue.add nid back
    end
  in
  List.iter mark_live !accepting;
  while not (Queue.is_empty back) do
    let nid = Queue.take back in
    match Hashtbl.find_opt rev nid with
    | None -> ()
    | Some preds -> List.iter mark_live !preds
  done;
  { product = p;
    live;
    possible = Bitvec.get live (Product.initial p);
    stats = { discovered_nodes = Product.node_count p; live_nodes = !nlive } }
