(* A growable bit vector; reads beyond the current size are false. *)

type t = { mutable data : Bytes.t }

let create () = { data = Bytes.make 16 '\000' }

let ensure t i =
  let needed = (i / 8) + 1 in
  if needed > Bytes.length t.data then begin
    let bigger = Bytes.make (max needed (2 * Bytes.length t.data)) '\000' in
    Bytes.blit t.data 0 bigger 0 (Bytes.length t.data);
    t.data <- bigger
  end

let get t i =
  let byte = i / 8 in
  if byte >= Bytes.length t.data then false
  else Char.code (Bytes.get t.data byte) land (1 lsl (i mod 8)) <> 0

let set t i =
  ensure t i;
  let byte = i / 8 in
  Bytes.set t.data byte
    (Char.chr (Char.code (Bytes.get t.data byte) lor (1 lsl (i mod 8))))

let clear t i =
  ensure t i;
  let byte = i / 8 in
  Bytes.set t.data byte
    (Char.chr (Char.code (Bytes.get t.data byte) land lnot (1 lsl (i mod 8)) land 0xff))
