(* Brute-force reference semantics for the rewriting games, usable when
   every output type has a FINITE language (star-free signatures).

   Two purposes:

   - Cross-checking: the automata-based engines (Marking, Possible) are
     property-tested against [safe] / [possible] below on random
     star-free instances.

   - Exploring the paper's left-to-right restriction (Section 3): the
     paper notes that "one can miss a successful rewriting that is not
     left-to-right". [safe_arbitrary] plays the game with NO ordering
     restriction — the rewriter may invoke any pending occurrence at any
     time, in particular probing a right sibling before committing on a
     left one. [safe ... => safe_arbitrary ...] always holds; the
     converse fails on witnesses like

       w = f.g,  target = a.b | f.c,  f: () -> a,  g: () -> b|c

     where the winning strategy must see g's answer before deciding
     whether to invoke f. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto

exception Not_star_free

(* Enumerate the (finite) language of a star-free regex.
   @raise Not_star_free on starred expressions. *)
let rec enum_language (r : Symbol.t R.t) : Symbol.t list list =
  match r with
  | R.Empty -> []
  | R.Epsilon -> [ [] ]
  | R.Sym a -> [ [ a ] ]
  | R.Seq (r1, r2) ->
    let l1 = enum_language r1 and l2 = enum_language r2 in
    List.concat_map (fun w1 -> List.map (fun w2 -> w1 @ w2) l2) l1
  | R.Alt (r1, r2) -> enum_language r1 @ enum_language r2
  | R.Opt r1 -> [] :: enum_language r1
  | R.Star _ | R.Plus _ -> raise Not_star_free

(* The finite output sets of every invocable function of [env], or
   [None] for functions that can never be fired. *)
let outputs_of_env (env : Schema.env) : string -> Symbol.t list list option =
  let cache : (string, Symbol.t list list option) Hashtbl.t = Hashtbl.create 8 in
  fun fname ->
    match Hashtbl.find_opt cache fname with
    | Some v -> v
    | None ->
      let v =
        match Schema.String_map.find_opt fname env.Schema.env_functions with
        | None -> None
        | Some f ->
          if not f.Schema.f_invocable then None
          else
            let words =
              enum_language (Schema.compile_content env f.Schema.f_output)
            in
            (match List.sort_uniq compare words with
             | [] -> None  (* empty output language: the call never returns *)
             | ws -> Some ws)
      in
      Hashtbl.add cache fname v;
      v

type item = Symbol.t * int  (* symbol, remaining depth budget *)

let items_of_word ~k word = List.map (fun s -> (s, k)) word

let in_language dfa items =
  Auto.Dfa.accepts dfa (List.map fst items)

(* Completion alphabet: the target's own letters plus everything the
   word and the reachable outputs may contain. *)
let closure_alphabet ~outputs ~(target_dfa : Auto.Dfa.t) word =
  let add acc sym = Auto.Sym_set.add sym acc in
  let add_word acc w = List.fold_left add acc w in
  let rec add_outputs acc fuel w =
    if fuel <= 0 then acc
    else
      List.fold_left
        (fun acc sym ->
          match sym with
          | Symbol.Fun f ->
            (match outputs f with
             | Some outs ->
               List.fold_left
                 (fun acc o -> add_outputs (add_word acc o) (fuel - 1) o)
                 acc outs
             | None -> acc)
          | Symbol.Label _ | Symbol.Data -> acc)
        (add_word acc w) w
  in
  add_outputs target_dfa.Auto.Dfa.alphabet 8 word

(* ------------------------------------------------------------------ *)
(* The k-depth LEFT-TO-RIGHT game (the paper's restriction)            *)
(* ------------------------------------------------------------------ *)

(* [decide ~universal]: process items left to right with the target DFA;
   at each invocable occurrence, either keep the letter or invoke —
   invoking quantifies over the outputs (universally for SAFE,
   existentially for POSSIBLE). *)
let decide ~universal ~outputs ~target_dfa ~k word =
  let dfa =
    Auto.Dfa.complete ~alphabet:(closure_alphabet ~outputs ~target_dfa word)
      target_dfa
  in
  let step st sym =
    match Auto.Dfa.step dfa st sym with
    | Some st' -> st'
    | None -> assert false (* complete *)
  in
  let memo : (item list * int, bool) Hashtbl.t = Hashtbl.create 64 in
  let rec go items st =
    match Hashtbl.find_opt memo (items, st) with
    | Some v -> v
    | None ->
      let v =
        match items with
        | [] -> Auto.Dfa.is_final dfa st
        | (sym, budget) :: rest ->
          let keep = go rest (step st sym) in
          keep
          ||
          (match sym with
           | Symbol.Fun f when budget > 0 ->
             (match outputs f with
              | None -> false
              | Some outs ->
                let branch o =
                  go (List.map (fun s -> (s, budget - 1)) o @ rest) st
                in
                if universal then List.for_all branch outs
                else List.exists branch outs)
           | Symbol.Fun _ | Symbol.Label _ | Symbol.Data -> false)
      in
      Hashtbl.add memo (items, st) v;
      v
  in
  go (items_of_word ~k word) dfa.Auto.Dfa.start

let safe ~outputs ~target_dfa ~k word =
  decide ~universal:true ~outputs ~target_dfa ~k word

let possible ~outputs ~target_dfa ~k word =
  decide ~universal:false ~outputs ~target_dfa ~k word

(* ------------------------------------------------------------------ *)
(* The k-depth ARBITRARY-ORDER game (no left-to-right restriction)     *)
(* ------------------------------------------------------------------ *)

(* safe_arbitrary(w): w in R, or SOME invocable occurrence exists such
   that EVERY output leads to a safely-rewritable word. Memoized on the
   whole item word; budgets strictly decrease so the recursion
   terminates. Exponential — intended for small words and signatures. *)
let safe_arbitrary ~outputs ~target_dfa ~k word =
  let dfa =
    Auto.Dfa.complete ~alphabet:(closure_alphabet ~outputs ~target_dfa word)
      target_dfa
  in
  let memo : (item list, bool) Hashtbl.t = Hashtbl.create 64 in
  let rec go items =
    match Hashtbl.find_opt memo items with
    | Some v -> v
    | None ->
      (* break the (impossible) cycle defensively *)
      Hashtbl.add memo items false;
      let v =
        in_language dfa items
        ||
        let rec try_positions prefix = function
          | [] -> false
          | ((sym, budget) as it) :: rest ->
            (match sym with
             | Symbol.Fun f when budget > 0 ->
               (match outputs f with
                | Some outs ->
                  let branch o =
                    go
                      (List.rev_append prefix
                         (List.map (fun s -> (s, budget - 1)) o @ rest))
                  in
                  List.for_all branch outs
                | None -> false)
             | Symbol.Fun _ | Symbol.Label _ | Symbol.Data -> false)
            || try_positions (it :: prefix) rest
        in
        try_positions [] items
      in
      Hashtbl.replace memo items v;
      v
  in
  go (items_of_word ~k word)
