(** POSSIBLE rewriting (Figure 9): does {e some} choice of invocations
    and {e some} service outputs turn the word into the target language?
    In automata terms, can the initial product node reach a node where
    the word is complete and inside the language.

    All edges are existential (no adversary), so the analysis is a plain
    backward reachability from the good-accepting nodes. The extracted
    rewriting only {e may} succeed; {!Execute} backtracks when a call's
    actual return value falls off every live path (Figure 9, step c). *)

type stats = { discovered_nodes : int; live_nodes : int }

type t = {
  product : Product.t;
  live : Bitvec.t;
  possible : bool;  (** is the initial node live? *)
  stats : stats;
}

val is_live : t -> int -> bool
(** Has this node an outgoing path to acceptance? *)

val analyze : Product.t -> t
