(** Executing a word-level rewriting against real services (steps 19-23
    of Figure 3 and 7-10 of Figure 9).

    The materializer walks the concrete children forest left-to-right,
    tracking the corresponding product node. At every function
    occurrence the strategy decides between the fork options:
    - {!Follow_safe} follows only unmarked nodes; the game guarantees
      the walk cannot get stuck, whatever honest services return;
    - {!Follow_possible} follows only live nodes and backtracks when a
      call's actual return leaves every live path.

    A call fires at most once per occurrence: results are cached, so
    backtracking re-examines recorded outputs instead of re-firing side
    effects. *)

type invoker = string -> Document.forest -> Document.forest
(** [invoker name params] performs the service call. *)

type invocation = {
  inv_name : string;
  inv_params : Document.forest;
  inv_result : Document.forest;
}

type strategy =
  | Follow_safe of Marking.t
  | Follow_possible of Possible.t

exception Ill_typed_output of { fname : string; returned : Document.forest }
(** A service broke its WSDL contract during a safe execution. *)

type outcome = {
  materialized : Document.forest;
  invocations : invocation list;  (** chronological *)
}

val run :
  ?plan:(int -> float) -> ?fee:(string -> float) ->
  strategy -> invoker -> Document.forest -> outcome option
(** [None] means a possible-rewriting attempt failed at run time (it
    cannot happen in safe mode with honest services —
    @raise Ill_typed_output there instead).

    [plan] optionally estimates, per product node, the remaining
    invocation fees (e.g. [Cost.possible_costs]); alternatives are then
    tried cheapest first — the cost minimization of Figure 3 step 23 /
    Figure 9 step (d) — instead of the default keep-first greedy order.
    [fee] prices an invoke option's immediate cost. *)
