(** Schema-to-schema safe rewriting (Section 6): can EVERY document of
    the sender schema, rooted at a given label, be safely rewritten into
    the exchange schema?

    Implements the paper's reduction: testing all elements of type [l]
    is the same as testing the single-function word [g_l] — a fresh
    invocable function whose output type is [tau_0 l] — with one extra
    depth level; one test per label reachable from the root. *)

type label_verdict = {
  label : string;
  safe : bool;
  reason : string option;  (** when not safe *)
}

type result = {
  compatible : bool;
  verdicts : label_verdict list;  (** one per reachable label *)
}

val reachable_labels :
  Axml_schema.Schema.env -> Axml_schema.Schema.t -> string -> string list
(** Labels reachable from the root through content models and through
    the input/output types of the functions and patterns they mention. *)

val check :
  ?k:int -> ?engine:Rewriter.engine ->
  ?predicate:(string -> string -> bool) ->
  s0:Axml_schema.Schema.t -> root:string ->
  target:Axml_schema.Schema.t -> unit -> result

val compatible :
  ?k:int -> ?engine:Rewriter.engine ->
  ?predicate:(string -> string -> bool) ->
  s0:Axml_schema.Schema.t -> root:string ->
  target:Axml_schema.Schema.t -> unit -> bool
