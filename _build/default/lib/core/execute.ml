(* Executing a word-level rewriting against real services (steps 19-23 of
   Figure 3 and steps 7-10 of Figure 9).

   The materializer walks the concrete children forest left-to-right
   while tracking the corresponding product node. At every function
   occurrence the strategy decides between the two fork options:
     - SAFE mode follows only unmarked nodes; the game guarantees the
       walk cannot get stuck, whatever the services return;
     - POSSIBLE mode follows only live nodes and *backtracks* when a
       call's actual return value leaves every live path (Figure 9c).
   A call is invoked at most once per occurrence: its result is cached,
   so backtracking re-examines recorded outputs rather than re-firing
   side effects. Invocations are reported in chronological order.

   When a service returns a forest that is not an output instance of its
   declared type, the walk cannot step; SAFE mode reports this as
   [Ill_typed_output] (it is a service contract violation, not a
   rewriting failure). *)

module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto

type invoker = string -> Document.forest -> Document.forest

type invocation = {
  inv_name : string;
  inv_params : Document.forest;
  inv_result : Document.forest;
}

type strategy =
  | Follow_safe of Marking.t
  | Follow_possible of Possible.t

exception Ill_typed_output of { fname : string; returned : Document.forest }

type outcome = {
  materialized : Document.forest;
  invocations : invocation list;
}

let product_of = function
  | Follow_safe m -> m.Marking.product
  | Follow_possible pos -> pos.Possible.product

let good_of = function
  | Follow_safe m -> fun nid -> not (Marking.is_marked m nid)
  | Follow_possible pos -> fun nid -> Possible.is_live pos nid

(* [run strategy invoker items] materializes the forest [items]; [None]
   means a possible rewriting attempt failed (never happens in SAFE mode
   with honest services).

   [plan] optionally estimates, per product node, the remaining
   invocation fees (e.g. [Cost.possible_costs]); when given, the
   alternatives at each choice point are tried cheapest-estimate first
   instead of the default keep-first order — the cost minimization of
   Figure 3 step 23 / Figure 9 step d. [fee] prices an invoke option's
   immediate cost (default free). *)
let run ?plan ?(fee = fun _ -> 0.) strategy invoker (items : Document.forest) :
    outcome option =
  let p = product_of strategy in
  let good = good_of strategy in
  let fork = Product.fork p in
  let invocations = ref [] in
  let cache : (int, (int * Document.t) list) Hashtbl.t = Hashtbl.create 8 in
  let counter = ref 0 in
  let wrap forest =
    List.map (fun d -> incr counter; (!counter, d)) forest
  in
  let step nid eid =
    match List.assoc_opt eid (Product.succ p nid) with
    | Some tgt -> tgt
    | None -> assert false
  in
  let invoke_once id fname params =
    match Hashtbl.find_opt cache id with
    | Some wrapped -> wrapped
    | None ->
      let returned = invoker fname params in
      invocations := { inv_name = fname; inv_params = params; inv_result = returned }
                     :: !invocations;
      let wrapped = wrap returned in
      Hashtbl.add cache id wrapped;
      wrapped
  in
  (* [process items nid stop k]: consume [items] from product node [nid];
     when exhausted, require [stop q] and call [k emitted nid_end].
     Returns true as soon as one alternative succeeds. *)
  let rec process items nid stop k =
    match items with
    | [] -> stop (Product.node p nid).Product.q && k [] nid
    | (id, item) :: rest ->
      let sym = Document.symbol item in
      let q = (Product.node p nid).Product.q in
      let edges = Fork_automaton.out_edges fork q in
      (* 1. keep moves: follow an edge labeled with this symbol *)
      let keep_moves =
        List.filter
          (fun eid ->
            match (Fork_automaton.edge fork eid).Fork_automaton.label with
            | Some s -> Symbol.equal s sym
            | None -> false)
          edges
      in
      let try_keep eid =
        let tgt = step nid eid in
        good tgt
        && process rest tgt stop (fun emitted nid' -> k (item :: emitted) nid')
      in
      (* 2. invoke moves: only for function occurrences with a fork here *)
      let invoke_moves =
        match sym with
        | Symbol.Fun _ ->
          List.filter_map
            (fun eid ->
              match Fork_automaton.fork_of_edge fork eid with
              | Some f when eid = f.Fork_automaton.keep_edge -> Some f
              | Some _ | None -> None)
            keep_moves
        | Symbol.Label _ | Symbol.Data -> []
      in
      let try_invoke (f : Fork_automaton.fork) =
        let invoke_tgt = step nid f.Fork_automaton.invoke_edge in
        good invoke_tgt
        && begin
          let params = Document.children item in
          let wrapped = invoke_once id f.Fork_automaton.fname params in
          let in_copy q = Auto.Int_set.mem q f.Fork_automaton.copy_finals in
          process wrapped invoke_tgt in_copy (fun inner nid_end ->
              let q_end = (Product.node p nid_end).Product.q in
              match Fork_automaton.exit_edge fork f q_end with
              | None -> false
              | Some exit_eid ->
                let exit_tgt = step nid_end exit_eid in
                good exit_tgt
                && process rest exit_tgt stop (fun emitted nid' ->
                       k (inner @ emitted) nid'))
        end
      in
      (match plan with
       | None ->
         (* default greedy order: prefer not invoking — fewer side
            effects, and free *)
         List.exists try_keep keep_moves
         || List.exists try_invoke invoke_moves
       | Some estimate ->
         (* cost-guided order: cheapest estimated remainder first *)
         let candidates =
           List.map
             (fun eid -> (estimate (step nid eid), `Keep eid))
             keep_moves
           @ List.map
               (fun (f : Fork_automaton.fork) ->
                 ( fee f.Fork_automaton.fname
                   +. estimate (step nid f.Fork_automaton.invoke_edge),
                   `Invoke f ))
               invoke_moves
         in
         let ordered =
           List.sort (fun (c1, _) (c2, _) -> Float.compare c1 c2) candidates
         in
         List.exists
           (fun (_, move) ->
             match move with
             | `Keep eid -> try_keep eid
             | `Invoke f -> try_invoke f)
           ordered)
  in
  let result = ref None in
  let top_stop q = q = fork.Fork_automaton.final in
  let initial = Product.initial p in
  let ok =
    good initial
    && process (wrap items) initial top_stop (fun emitted nid ->
           if Product.good_accepting p nid then begin
             result := Some emitted;
             true
           end
           else false)
  in
  if ok then
    Option.map
      (fun materialized ->
        { materialized; invocations = List.rev !invocations })
      !result
  else begin
    (match strategy with
     | Follow_safe _ ->
       (* A safe verdict cannot fail unless a service broke its
          contract: find the offending cached invocation for reporting. *)
       let offender =
         List.find_opt (fun _ -> true) !invocations
       in
       (match offender with
        | Some inv ->
          raise (Ill_typed_output { fname = inv.inv_name; returned = inv.inv_result })
        | None -> ())
     | Follow_possible _ -> ());
    None
  end
