(* The marking game of Figure 3 (steps 15-18), deciding SAFE rewriting.

   A product node is *marked* ("bad") when the adversary — the services,
   which choose actual output words — can force the completed word out of
   the target language no matter which invoke/keep choices the rewriter
   makes:
     - a node where the word is complete but not in the language is
       marked (the accepting states of A_w^k x complement(R));
     - a non-fork successor marked => the node is marked (the adversary
       picks the letter);
     - a fork whose BOTH options are marked => the node is marked (the
       rewriter has no good choice left).
   A safe rewriting exists iff the initial node is unmarked; the
   rewriter's strategy is "always move to an unmarked node".

   Two exploration policies build the same fixpoint:
     - [analyze_eager]: materialize every reachable product node first,
       then propagate marks — the literal algorithm of Figure 3;
     - [analyze_lazy]: the optimized variant of Section 7 (Figure 12) —
       construct on demand, mark complement-sink nodes immediately
       (empty subsets), never expand nodes already known marked, and stop
       as soon as the initial node is marked. *)

type kind =
  | Plain                       (* adversary edge *)
  | Keep_half of int            (* rewriter fork, "do not invoke" option; pair id *)
  | Invoke_half of int          (* rewriter fork, "invoke" option; pair id *)

type pair = { owner : int; mutable keep_marked : bool; mutable invoke_marked : bool }

type stats = {
  explored_nodes : int;         (* product nodes whose successors were computed *)
  discovered_nodes : int;       (* product nodes created *)
  marked_nodes : int;
  pruned : int;                 (* nodes never expanded thanks to pruning *)
}

type t = {
  product : Product.t;
  marked : Bitvec.t;
  safe : bool;
  stats : stats;
}

let is_marked t nid = Bitvec.get t.marked nid

type builder = {
  p : Product.t;
  marks : Bitvec.t;
  rev : (int, (int * kind) list ref) Hashtbl.t;
  pairs : pair Vec.t;
  pair_ids : (int * int, int) Hashtbl.t;  (* (node, fork id) -> pair id *)
  work : int Queue.t;                     (* freshly marked nodes to propagate *)
  mutable nmarked : int;
}

let new_builder p = {
  p;
  marks = Bitvec.create ();
  rev = Hashtbl.create 256;
  pairs = Vec.create ~dummy:{ owner = 0; keep_marked = false; invoke_marked = false };
  pair_ids = Hashtbl.create 64;
  work = Queue.create ();
  nmarked = 0;
}

let rev_list b nid =
  match Hashtbl.find_opt b.rev nid with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add b.rev nid l;
    l

let rec mark b nid =
  if not (Bitvec.get b.marks nid) then begin
    Bitvec.set b.marks nid;
    b.nmarked <- b.nmarked + 1;
    Queue.add nid b.work;
    drain b
  end

(* Apply the game rule for one incoming edge of a marked node. *)
and apply_rule b (pred, kind) =
  match kind with
  | Plain -> mark b pred
  | Keep_half pid ->
    let pair = Vec.get b.pairs pid in
    if not pair.keep_marked then begin
      pair.keep_marked <- true;
      if pair.invoke_marked then mark b pair.owner
    end
  | Invoke_half pid ->
    let pair = Vec.get b.pairs pid in
    if not pair.invoke_marked then begin
      pair.invoke_marked <- true;
      if pair.keep_marked then mark b pair.owner
    end

and drain b =
  while not (Queue.is_empty b.work) do
    let nid = Queue.take b.work in
    match Hashtbl.find_opt b.rev nid with
    | None -> ()
    | Some preds -> List.iter (apply_rule b) !preds
  done

(* Register the product edge [pred --kind--> tgt]; if the target is
   already marked the rule fires immediately. *)
let register_edge b pred kind tgt =
  let l = rev_list b tgt in
  l := (pred, kind) :: !l;
  if Bitvec.get b.marks tgt then apply_rule b (pred, kind)

let pair_id b nid fid =
  match Hashtbl.find_opt b.pair_ids (nid, fid) with
  | Some pid -> pid
  | None ->
    let pid =
      Vec.push b.pairs { owner = nid; keep_marked = false; invoke_marked = false }
    in
    Hashtbl.add b.pair_ids (nid, fid) pid;
    pid

(* Expand one node: compute successors and register reverse edges with
   their game kinds. *)
let expand b nid =
  let fork = Product.fork b.p in
  List.iter
    (fun (eid, tgt) ->
      let kind =
        match Fork_automaton.fork_of_edge fork eid with
        | None -> Plain
        | Some f ->
          let fid =
            (* recover the fork index from the edge tables *)
            fork.Fork_automaton.fork_of_edge.(eid)
          in
          let pid = pair_id b nid fid in
          if eid = f.Fork_automaton.keep_edge then Keep_half pid
          else Invoke_half pid
      in
      register_edge b nid kind tgt)
    (Product.succ b.p nid)

let finish b ~explored ~pruned =
  let discovered = Product.node_count b.p in
  { product = b.p;
    marked = b.marks;
    safe = not (Bitvec.get b.marks (Product.initial b.p));
    stats = { explored_nodes = explored; discovered_nodes = discovered;
              marked_nodes = b.nmarked; pruned } }

(* ------------------------------------------------------------------ *)
(* Eager: Figure 3 verbatim                                            *)
(* ------------------------------------------------------------------ *)

let analyze_eager p =
  let b = new_builder p in
  let seen = Bitvec.create () in
  let frontier = Queue.create () in
  let discover nid =
    if not (Bitvec.get seen nid) then begin
      Bitvec.set seen nid;
      if Product.bad_accepting p nid then mark b nid;
      Queue.add nid frontier
    end
  in
  discover (Product.initial p);
  let explored = ref 0 in
  while not (Queue.is_empty frontier) do
    let nid = Queue.take frontier in
    incr explored;
    expand b nid;
    List.iter (fun (_, tgt) -> discover tgt) (Product.succ p nid)
  done;
  finish b ~explored:!explored ~pruned:0

(* ------------------------------------------------------------------ *)
(* Lazy: Section 7's pruned construction                               *)
(* ------------------------------------------------------------------ *)

let analyze_lazy p =
  let b = new_builder p in
  let seen = Bitvec.create () in
  let frontier = Queue.create () in
  let initial = Product.initial p in
  let discover nid =
    if not (Bitvec.get seen nid) then begin
      Bitvec.set seen nid;
      (* sink rule: an empty subset is the complement's accepting sink —
         mark immediately, and never expand (pruning idea 1) *)
      if Product.subset_is_dead p nid then mark b nid
      else if Product.bad_accepting p nid then mark b nid;
      Queue.add nid frontier
    end
  in
  discover initial;
  let explored = ref 0 in
  let pruned = ref 0 in
  (try
     while not (Queue.is_empty frontier) do
       if Bitvec.get b.marks initial then raise Exit;
       let nid = Queue.take frontier in
       if Bitvec.get b.marks nid then
         (* pruning idea 2: no point exploring beyond a marked node *)
         incr pruned
       else begin
         incr explored;
         expand b nid;
         List.iter (fun (_, tgt) -> discover tgt) (Product.succ p nid)
       end
     done
   with Exit -> ());
  finish b ~explored:!explored ~pruned:!pruned
