(** A growable bit vector; reads beyond the current size are [false]. *)

type t

val create : unit -> t
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
