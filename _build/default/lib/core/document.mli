(** Intensional documents (Definition 1): ordered labeled trees whose
    nodes are either data nodes (elements and atomic values) or function
    nodes (embedded service calls). The children of a function node are
    its call parameters; invoking the call replaces the node by the
    returned forest (Definition 4, footnote 3). *)

type t =
  | Elem of { label : string; children : t list }
  | Data of string
  | Call of { name : string; params : t list }

type forest = t list

val elem : string -> t list -> t
val data : string -> t
val call : string -> t list -> t

val symbol : t -> Axml_schema.Symbol.t
(** The letter a node contributes to its parent's children word. *)

val word : forest -> Axml_schema.Symbol.t list

val children : t -> t list
(** Children of an element, parameters of a call, [[]] for data. *)

val count_nodes : t -> int
val count_calls : t -> int
val is_extensional : t -> bool
(** No embedded call anywhere. *)

val depth : t -> int
val equal : t -> t -> bool
val equal_forest : forest -> forest -> bool

(** {1 Paths} — node addresses as child-index sequences from the root *)

type path = int list

val pp_path : path Fmt.t
val get : t -> path -> t option

val splice : t -> path -> forest -> t
(** Replace the node at [path] by a forest (the semantics of invoking a
    call node). @raise Invalid_argument on an empty or dangling path. *)

val calls_with_paths : t -> (path * string) list
(** Every function node, in document order. *)

val call_nesting : t -> int
(** Nesting depth of calls inside call parameters; [0] when no call has
    a call among its parameters. *)

(** {1 Printing} — a compact term-like form: [newspaper[title["x"], @F(p)]] *)

val pp : t Fmt.t
val pp_forest : forest Fmt.t
val to_string : t -> string
