(** The marking game of Figure 3 (steps 15-18), deciding SAFE rewriting.

    A product node is {e marked} ("bad") when the adversary — the
    services, which pick actual output words — can force the completed
    word out of the target language whatever invoke/keep choices the
    rewriter makes:
    - word complete but outside the language: marked;
    - some non-fork successor marked: marked (adversary's letter);
    - both options of some fork pair marked: marked (no good choice).

    A safe rewriting exists iff the initial node is unmarked; the
    rewriter's winning strategy is "always move to an unmarked node"
    (followed by {!Execute}). *)

type stats = {
  explored_nodes : int;    (** nodes whose successors were computed *)
  discovered_nodes : int;  (** nodes created *)
  marked_nodes : int;
  pruned : int;            (** nodes never expanded thanks to pruning *)
}

type t = {
  product : Product.t;
  marked : Bitvec.t;
  safe : bool;  (** is the initial node unmarked? *)
  stats : stats;
}

val is_marked : t -> int -> bool

val analyze_eager : Product.t -> t
(** The literal algorithm of Figure 3: materialize every reachable
    product node, then solve the game. *)

val analyze_lazy : Product.t -> t
(** The optimized variant of Section 7 (Figure 12): construct on demand,
    mark complement-sink nodes immediately (empty subsets), never expand
    nodes already known marked, stop as soon as the initial node is
    marked. Same verdicts as {!analyze_eager} (property-tested). *)
