(* Tests for the simulated Web-service substrate (lib/services). *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module D = Axml_core.Document
module Validate = Axml_core.Validate
module Service = Axml_services.Service
module Registry = Axml_services.Registry
module Oracle = Axml_services.Oracle
module Directory = Axml_services.Directory

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let city = R.sym (Schema.A_label "city")
let temp = R.sym (Schema.A_label "temp")

let get_temp_service ?(cost = 0.) ?(acl = []) behaviour =
  Service.make ~cost ~acl ~input:city ~output:temp "Get_Temp" behaviour

let temp_reply = [ D.elem "temp" [ D.data "15" ] ]

let base_schema =
  match
    Axml_schema.Schema_parser.parse_result
      {|
element city = #data
element temp = #data
function Get_Temp : city -> temp
|}
  with
  | Ok s -> s
  | Error e -> Alcotest.failf "schema: %s" e

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_invoke_and_accounting () =
  let reg = Registry.create () in
  Registry.register reg (get_temp_service ~cost:2.5 (Oracle.constant temp_reply));
  let result = Registry.invoke reg "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ] in
  check "result" true (D.equal_forest result temp_reply);
  ignore (Registry.invoke reg "Get_Temp" []);
  check_int "count" 2 (Registry.invocation_count reg);
  Alcotest.(check (float 0.001)) "cost" 5.0 (Registry.total_cost reg);
  check_int "log entries" 2 (List.length (Registry.log reg));
  Registry.reset_accounting reg;
  check_int "reset" 0 (Registry.invocation_count reg)

let test_unknown_service () =
  let reg = Registry.create () in
  match Registry.invoke reg "Nope" [] with
  | exception Registry.Unknown_service "Nope" -> ()
  | _ -> Alcotest.fail "expected Unknown_service"

let test_budget () =
  let reg = Registry.create () in
  Registry.register reg (get_temp_service ~cost:3. (Oracle.constant temp_reply));
  Registry.set_budget reg (Some 5.);
  ignore (Registry.invoke reg "Get_Temp" []);
  (match Registry.invoke reg "Get_Temp" [] with
   | exception Registry.Budget_exhausted _ -> ()
   | _ -> Alcotest.fail "expected Budget_exhausted");
  check_int "only one call went through" 1 (Registry.invocation_count reg)

let test_acl () =
  let reg = Registry.create ~principal:"mallory" () in
  Registry.register reg (get_temp_service ~acl:[ "alice" ] (Oracle.constant temp_reply));
  (match Registry.invoke reg "Get_Temp" [] with
   | exception Registry.Access_denied { principal = "mallory"; _ } -> ()
   | _ -> Alcotest.fail "expected Access_denied");
  Registry.set_principal reg "alice";
  check "alice may call" true
    (D.equal_forest (Registry.invoke reg "Get_Temp" []) temp_reply)

let test_contract_checks () =
  let reg = Registry.create () in
  Registry.register reg
    (get_temp_service (Oracle.ill_typed [ D.elem "city" [ D.data "oops" ] ]));
  let ctx = Validate.ctx base_schema in
  Registry.set_check reg ~ctx Registry.Check_both;
  (* bad input *)
  (match Registry.invoke reg "Get_Temp" [ D.data "not a city" ] with
   | exception Registry.Contract_violation { what = `Input; _ } -> ()
   | _ -> Alcotest.fail "expected input violation");
  (* good input, bad output *)
  (match Registry.invoke reg "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ] with
   | exception Registry.Contract_violation { what = `Output; _ } -> ()
   | _ -> Alcotest.fail "expected output violation");
  (* trust mode lets everything through *)
  Registry.set_check reg Registry.Trust;
  ignore (Registry.invoke reg "Get_Temp" [ D.data "whatever" ])

let test_declare_all () =
  let reg = Registry.create () in
  Registry.register reg (get_temp_service (Oracle.constant temp_reply));
  let s =
    Schema.add_element
      (Schema.add_element Schema.empty "city" (R.sym Schema.A_data))
      "temp" (R.sym Schema.A_data)
  in
  let s = Registry.declare_all reg s in
  check "declared" true (Option.is_some (Schema.find_function s "Get_Temp"))

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)
(* ------------------------------------------------------------------ *)

let test_scripted () =
  let b = Oracle.scripted [ [ D.data "1" ]; [ D.data "2" ] ] in
  Alcotest.(check string) "first" "1"
    (match b [] with [ D.Data v ] -> v | _ -> "?");
  Alcotest.(check string) "second" "2"
    (match b [] with [ D.Data v ] -> v | _ -> "?");
  Alcotest.(check string) "wraps around" "1"
    (match b [] with [ D.Data v ] -> v | _ -> "?")

let test_flaky_and_counting () =
  let inner, count = Oracle.counting (Oracle.constant temp_reply) in
  let b = Oracle.flaky ~period:3 inner in
  ignore (b []);
  ignore (b []);
  (match b [] with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "expected the third call to fail");
  check_int "two successful calls counted" 2 (count ())

let test_honest_random () =
  let ctx = Validate.ctx base_schema in
  let b = Oracle.honest_random ~seed:5 base_schema "Get_Temp" in
  for _ = 1 to 10 do
    let forest = b [] in
    if Validate.output_instance ctx "Get_Temp" forest <> [] then
      Alcotest.fail "random output is not an output instance"
  done

(* ------------------------------------------------------------------ *)
(* Directory                                                           *)
(* ------------------------------------------------------------------ *)

let test_directory () =
  let dir = Directory.create () in
  Directory.publish dir ~provider:"forecast.com" ~categories:[ "weather" ] "Get_Temp";
  Directory.publish dir ~provider:"timeout.com" ~categories:[ "culture" ] "TimeOut";
  check "published" true (Directory.is_published dir "Get_Temp");
  check "not published" false (Directory.is_published dir "Nope");
  check_int "search" 1 (List.length (Directory.search dir ~category:"weather"));
  Directory.install_standard_predicates dir ~acl_of:(fun f -> f = "Get_Temp");
  check "UDDIF yes" true (Directory.predicate dir "UDDIF" "TimeOut");
  check "InACL no" false (Directory.predicate dir "InACL" "TimeOut");
  check "InACL yes" true (Directory.predicate dir "InACL" "Get_Temp");
  check "unknown predicate fails closed" false
    (Directory.predicate dir "Mystery" "Get_Temp")

let () =
  Alcotest.run "services"
    [ ("registry",
       [ Alcotest.test_case "invoke + accounting" `Quick test_invoke_and_accounting;
         Alcotest.test_case "unknown service" `Quick test_unknown_service;
         Alcotest.test_case "budget" `Quick test_budget;
         Alcotest.test_case "acl" `Quick test_acl;
         Alcotest.test_case "contract checks" `Quick test_contract_checks;
         Alcotest.test_case "declare_all" `Quick test_declare_all
       ]);
      ("oracles",
       [ Alcotest.test_case "scripted" `Quick test_scripted;
         Alcotest.test_case "flaky + counting" `Quick test_flaky_and_counting;
         Alcotest.test_case "honest random" `Quick test_honest_random
       ]);
      ("directory", [ Alcotest.test_case "publish/search/predicates" `Quick test_directory ])
    ]
