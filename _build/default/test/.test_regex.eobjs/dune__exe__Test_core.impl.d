test/test_core.ml: Alcotest Axml_core Axml_regex Axml_schema Float Fmt List Printexc QCheck QCheck_alcotest Random String
