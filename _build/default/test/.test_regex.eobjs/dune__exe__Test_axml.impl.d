test/test_axml.ml: Alcotest Array Axml_core Axml_peer Axml_regex Axml_schema Axml_services Filename Fmt List Option QCheck QCheck_alcotest String Sys
