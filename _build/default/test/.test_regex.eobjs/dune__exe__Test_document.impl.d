test/test_document.ml: Alcotest Axml_core Axml_schema List
