test/test_regex.ml: Alcotest Axml_regex Fmt Gen List QCheck QCheck_alcotest Random String
