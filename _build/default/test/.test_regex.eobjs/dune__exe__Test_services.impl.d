test/test_services.ml: Alcotest Axml_core Axml_regex Axml_schema Axml_services List Option
