test/test_document.mli:
