test/test_axml.mli:
