test/test_xml.ml: Alcotest Axml_xml List QCheck QCheck_alcotest String
