test/test_cli.ml: Alcotest Filename Fmt List String Sys
