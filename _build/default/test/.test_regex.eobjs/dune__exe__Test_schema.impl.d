test/test_schema.ml: Alcotest Axml_regex Axml_schema List Option String
