(* Tests for the schema layer (lib/schema): construction,
   well-formedness, the textual parser, merging, compilation of
   patterns/wildcards, determinism checks, and the alphabet closure. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse text =
  match Schema_parser.parse_result text with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse error: %s" e

let expect_parse_error text fragment =
  match Schema_parser.parse_result text with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" text
  | Error e ->
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
      scan 0
    in
    if not (contains e fragment) then
      Alcotest.failf "error %S does not mention %S" e fragment

(* ------------------------------------------------------------------ *)
(* Construction and well-formedness                                    *)
(* ------------------------------------------------------------------ *)

let test_duplicate_declaration () =
  let s = Schema.add_element Schema.empty "a" (R.sym Schema.A_data) in
  (match Schema.add_element s "a" R.epsilon with
   | exception Schema.Schema_error (Schema.Duplicate_declaration "a") -> ()
   | _ -> Alcotest.fail "expected Duplicate_declaration");
  (* an element and a function may not share a name either *)
  match Schema.add_function s (Schema.func "a" ~input:R.epsilon ~output:R.epsilon) with
  | exception Schema.Schema_error (Schema.Duplicate_declaration "a") -> ()
  | _ -> Alcotest.fail "expected Duplicate_declaration"

let test_undeclared_name () =
  let s = Schema.add_element Schema.empty "a" (R.sym (Schema.A_label "ghost")) in
  match Schema.check s with
  | exception Schema.Schema_error (Schema.Undeclared_name "ghost") -> ()
  | _ -> Alcotest.fail "expected Undeclared_name"

let test_pattern_in_signature_rejected () =
  let s = Schema.add_element Schema.empty "a" (R.sym Schema.A_data) in
  let s =
    Schema.add_pattern s
      (Schema.pattern "P" ~input:(R.sym (Schema.A_label "a"))
         ~output:(R.sym (Schema.A_label "a")))
  in
  let s =
    Schema.add_function s
      (Schema.func "f" ~input:(R.sym (Schema.A_pattern "P")) ~output:R.epsilon)
  in
  match Schema.check s with
  | exception Schema.Schema_error (Schema.Pattern_in_signature _) -> ()
  | _ -> Alcotest.fail "expected Pattern_in_signature"

let test_determinism_check () =
  let det = parse {|
element a = #data
element b = #data
element r = a.(b | a)
|} in
  Schema.check ~deterministic:true det;
  let nondet = parse {|
element a = #data
element b = #data
element r = a.b | a.a
|} in
  match Schema.check ~deterministic:true nondet with
  | exception Schema.Schema_error (Schema.Nondeterministic_content "r") -> ()
  | _ -> Alcotest.fail "expected Nondeterministic_content"

(* ------------------------------------------------------------------ *)
(* Textual parser                                                      *)
(* ------------------------------------------------------------------ *)

let test_parser_full () =
  let s = parse {|
# a comment
root r

element r = a.(f | b)*.(P | #data)
element a = #data
element b = #data
noninvocable function f : a -> b
pattern P requires UDDIF : a -> b
|} in
  Alcotest.(check (option string)) "root" (Some "r") s.Schema.root;
  check_int "elements" 3 (List.length (Schema.element_names s));
  (match Schema.find_function s "f" with
   | Some f -> check "noninvocable" false f.Schema.f_invocable
   | None -> Alcotest.fail "f missing");
  match Schema.find_pattern s "P" with
  | Some p -> Alcotest.(check (list string)) "predicates" [ "UDDIF" ] p.Schema.p_predicates
  | None -> Alcotest.fail "P missing"

let test_parser_errors () =
  expect_parse_error "element = x" "name";
  expect_parse_error "element a" "'='";
  expect_parse_error "function f : a" "->";
  expect_parse_error "pattern : a -> b" "pattern";
  expect_parse_error "wibble wobble" "unknown declaration";
  expect_parse_error "root a b" "root";
  expect_parse_error "element a = ((b)" "expression";
  expect_parse_error "element a = ghost.b\nelement b = #data" "ghost"

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)
(* ------------------------------------------------------------------ *)

let test_merge_agreeing_functions () =
  let s0 = parse {|
element a = #data
element b = f | a
function f : a -> a
|} in
  let s1 = parse {|
element a = #data
element b = a
noninvocable function f : a -> a
|} in
  let merged = Schema.merge s0 s1 in
  (* element b: the right side wins *)
  (match Schema.find_element merged "b" with
   | Some c -> check "right element wins" true (c = R.sym (Schema.A_label "a"))
   | None -> Alcotest.fail "b lost");
  (* invocability is the conjunction *)
  match Schema.find_function merged "f" with
  | Some f -> check "conjunction" false f.Schema.f_invocable
  | None -> Alcotest.fail "f lost"

let test_merge_conflicting_functions () =
  let s0 = parse {|
element a = #data
function f : a -> a
|} in
  let s1 = parse {|
element a = #data
function f : a -> a.a
|} in
  match Schema.merge s0 s1 with
  | exception Schema.Schema_error (Schema.Incompatible_function "f") -> ()
  | _ -> Alcotest.fail "expected Incompatible_function"

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let pattern_schema = parse {|
element city = #data
element temp = #data
element r = P | temp
function Good : city -> temp
function Bad_sig : temp -> temp
function Unlisted : city -> temp
pattern P requires Reg : city -> temp
|}

let registry_pred pred fname =
  pred = "Reg" && List.mem fname [ "Good"; "Bad_sig" ]

let test_pattern_expansion () =
  let env = Schema.env_of_schema ~predicate:registry_pred pattern_schema in
  let compiled =
    Schema.compile_content env (Option.get (Schema.find_element pattern_schema "r"))
  in
  let dfa = Auto.Dfa.of_regex compiled in
  check "Good matches" true (Auto.Dfa.accepts dfa [ Symbol.Fun "Good" ]);
  check "Bad_sig fails the signature check" false
    (Auto.Dfa.accepts dfa [ Symbol.Fun "Bad_sig" ]);
  check "Unlisted fails the predicate" false
    (Auto.Dfa.accepts dfa [ Symbol.Fun "Unlisted" ]);
  check "temp alternative intact" true (Auto.Dfa.accepts dfa [ Symbol.Label "temp" ])

let test_wildcard_expansion () =
  let s = parse {|
element a = #data
element b = #data
element r = #any.#anyfun
function f : () -> a
function g : () -> b
|} in
  let env = Schema.env_of_schema s in
  let dfa =
    Auto.Dfa.of_regex (Schema.compile_content env (Option.get (Schema.find_element s "r")))
  in
  check "a f" true (Auto.Dfa.accepts dfa [ Symbol.Label "a"; Symbol.Fun "f" ]);
  check "r g" true (Auto.Dfa.accepts dfa [ Symbol.Label "r"; Symbol.Fun "g" ]);
  check "f a wrong order" false (Auto.Dfa.accepts dfa [ Symbol.Fun "f"; Symbol.Label "a" ]);
  check "data is not an element" false
    (Auto.Dfa.accepts dfa [ Symbol.Data; Symbol.Fun "f" ])

let test_alphabet_closure () =
  let env = Schema.env_of_schema ~predicate:registry_pred pattern_schema in
  let alphabet = Schema.alphabet env pattern_schema in
  check "contains pattern members" true
    (Auto.Sym_set.mem (Symbol.Fun "Good") alphabet);
  check "contains labels" true (Auto.Sym_set.mem (Symbol.Label "city") alphabet);
  check "contains data" true (Auto.Sym_set.mem Symbol.Data alphabet)

let test_signature_equivalence_not_structural () =
  (* signatures match up to language equivalence, not syntax *)
  let s = parse {|
element a = #data
element r = P
function f : () -> a.a*
pattern P : () -> a+
|} in
  let env = Schema.env_of_schema s in
  match Schema.find_pattern s "P" with
  | None -> Alcotest.fail "P missing"
  | Some p ->
    let members = Schema.pattern_members env p in
    Alcotest.(check (list string)) "a.a* equals a+" [ "f" ]
      (List.map (fun (f : Schema.func) -> f.Schema.f_name) members)

let () =
  Alcotest.run "schema"
    [ ("well-formedness",
       [ Alcotest.test_case "duplicate declarations" `Quick test_duplicate_declaration;
         Alcotest.test_case "undeclared names" `Quick test_undeclared_name;
         Alcotest.test_case "patterns in signatures" `Quick test_pattern_in_signature_rejected;
         Alcotest.test_case "determinism" `Quick test_determinism_check
       ]);
      ("parser",
       [ Alcotest.test_case "full schema" `Quick test_parser_full;
         Alcotest.test_case "errors" `Quick test_parser_errors
       ]);
      ("merge",
       [ Alcotest.test_case "agreeing functions" `Quick test_merge_agreeing_functions;
         Alcotest.test_case "conflicting functions" `Quick test_merge_conflicting_functions
       ]);
      ("compilation",
       [ Alcotest.test_case "pattern expansion" `Quick test_pattern_expansion;
         Alcotest.test_case "wildcard expansion" `Quick test_wildcard_expansion;
         Alcotest.test_case "alphabet closure" `Quick test_alphabet_closure;
         Alcotest.test_case "signature equivalence" `Quick test_signature_equivalence_not_structural
       ])
    ]
