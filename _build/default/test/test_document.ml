(* Tests for the intensional document model (lib/core/document). *)

module D = Axml_core.Document
module Symbol = Axml_schema.Symbol

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let doc =
  D.elem "newspaper"
    [ D.elem "title" [ D.data "The Sun" ];
      D.elem "date" [ D.data "04/10/2002" ];
      D.call "Get_Temp" [ D.elem "city" [ D.data "Paris" ] ];
      D.call "TimeOut" [ D.data "exhibits"; D.call "Nested" [] ] ]

let test_symbols_and_words () =
  Alcotest.(check (list string)) "children word"
    [ "title"; "date"; "Get_Temp()"; "TimeOut()" ]
    (List.map Symbol.to_string (D.word (D.children doc)));
  check "data symbol" true (D.symbol (D.data "x") = Symbol.Data)

let test_counts () =
  check_int "nodes" 11 (D.count_nodes doc);
  check_int "calls" 3 (D.count_calls doc);
  check "not extensional" false (D.is_extensional doc);
  check "extensional" true (D.is_extensional (D.elem "a" [ D.data "x" ]));
  check_int "depth" 4 (D.depth doc)

let test_get () =
  (match D.get doc [ 0; 0 ] with
   | Some (D.Data "The Sun") -> ()
   | _ -> Alcotest.fail "expected the title text");
  (match D.get doc [ 2; 0 ] with
   | Some (D.Elem { label = "city"; _ }) -> ()
   | _ -> Alcotest.fail "expected the city parameter");
  check "dangling path" true (D.get doc [ 9 ] = None);
  check "path through a leaf" true (D.get doc [ 0; 0; 0 ] = None);
  check "empty path is the root" true (D.get doc [] = Some doc)

let test_splice () =
  (* replace the Get_Temp call by its materialized result *)
  let doc' = D.splice doc [ 2 ] [ D.elem "temp" [ D.data "15" ] ] in
  (match D.get doc' [ 2 ] with
   | Some (D.Elem { label = "temp"; _ }) -> ()
   | _ -> Alcotest.fail "expected the temp element");
  check_int "same arity" 4 (List.length (D.children doc'));
  (* splice a forest of two nodes: the arity grows *)
  let doc'' = D.splice doc [ 2 ] [ D.data "a"; D.data "b" ] in
  check_int "arity grows" 5 (List.length (D.children doc''));
  (* splice an empty forest: the node disappears *)
  let doc''' = D.splice doc [ 2 ] [] in
  check_int "arity shrinks" 3 (List.length (D.children doc'''));
  (* deep splice *)
  let deep = D.splice doc [ 3; 1 ] [ D.data "done" ] in
  (match D.get deep [ 3; 1 ] with
   | Some (D.Data "done") -> ()
   | _ -> Alcotest.fail "expected the spliced data");
  (* errors *)
  (match D.splice doc [] [ D.data "x" ] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty path must be rejected");
  match D.splice doc [ 42 ] [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dangling path must be rejected"

let test_calls_with_paths () =
  let calls = D.calls_with_paths doc in
  Alcotest.(check (list (pair (list int) string))) "calls in document order"
    [ ([ 2 ], "Get_Temp"); ([ 3 ], "TimeOut"); ([ 3; 1 ], "Nested") ]
    calls

let test_call_nesting () =
  check_int "nested call in params" 1 (D.call_nesting doc);
  check_int "flat" 0
    (D.call_nesting (D.elem "a" [ D.call "f" [ D.data "x" ] ]));
  check_int "double nesting" 2
    (D.call_nesting (D.call "f" [ D.call "g" [ D.call "h" [] ] ]))

let test_equality () =
  check "equal to itself" true (D.equal doc doc);
  check "label matters" false
    (D.equal (D.elem "a" []) (D.elem "b" []));
  check "child order matters" false
    (D.equal
       (D.elem "a" [ D.data "1"; D.data "2" ])
       (D.elem "a" [ D.data "2"; D.data "1" ]));
  check "call name matters" false (D.equal (D.call "f" []) (D.call "g" []))

let test_printing () =
  Alcotest.(check string) "term form" "a[\"x\", @f(\"y\")]"
    (D.to_string (D.elem "a" [ D.data "x"; D.call "f" [ D.data "y" ] ]))

let () =
  Alcotest.run "document"
    [ ("model",
       [ Alcotest.test_case "symbols and words" `Quick test_symbols_and_words;
         Alcotest.test_case "counts" `Quick test_counts;
         Alcotest.test_case "get" `Quick test_get;
         Alcotest.test_case "splice" `Quick test_splice;
         Alcotest.test_case "calls with paths" `Quick test_calls_with_paths;
         Alcotest.test_case "call nesting" `Quick test_call_nesting;
         Alcotest.test_case "equality" `Quick test_equality;
         Alcotest.test_case "printing" `Quick test_printing
       ])
    ]
