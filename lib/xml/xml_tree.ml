(* The XML node tree used as carrier syntax for intensional documents
   (Section 7 of the paper). Names are kept as written ("prefix:local");
   namespace resolution is a separate pass in [Xml_ns]. *)

type attribute = { name : string; value : string }

type t =
  | Element of element
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of { target : string; content : string }

and element = { name : string; attrs : attribute list; children : t list }

let element ?(attrs = []) name children = Element { name; attrs; children }
let text s = Text s
let cdata s = Cdata s
let comment s = Comment s
let pi target content = Pi { target; content }
let attr name value = { name; value }

let attr_value element name =
  List.find_map
    (fun (a : attribute) -> if String.equal a.name name then Some a.value else None)
    element.attrs

let has_attr element name = Option.is_some (attr_value element name)

(* Direct children that are elements. *)
let child_elements element =
  List.filter_map
    (function Element e -> Some e | Text _ | Cdata _ | Comment _ | Pi _ -> None)
    element.children

let child_element element name =
  List.find_opt (fun e -> String.equal e.name name) (child_elements element)

let children_named element name =
  List.filter (fun e -> String.equal e.name name) (child_elements element)

(* Concatenated character data of the direct children. *)
let text_content element =
  element.children
  |> List.filter_map (function
       | Text s | Cdata s -> Some s
       | Element _ | Comment _ | Pi _ -> None)
  |> String.concat ""

let is_whitespace s = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

(* The traversals below all use explicit work lists rather than
   recursion: intensional documents can nest arbitrarily deep (a chain
   of singleton elements 100k levels down is a legitimate stress input)
   and one stack frame per level overflows long before the heap runs
   out. *)

let keep_in_layout = function
  | Text s -> not (is_whitespace s)
  | Comment _ | Pi _ -> false
  | Element _ | Cdata _ -> true

(* Remove whitespace-only text nodes and comments/PIs, recursively;
   documents compare structurally after this normalization. *)
let strip_layout node =
  (* a frame is an element whose kept children are being rebuilt;
     [todo] are children still to process, [built] the processed ones
     in reverse *)
  let rec go stack todo built =
    match todo with
    | node :: todo -> (
      match node with
      | Element e ->
        let kept = List.filter keep_in_layout e.children in
        go ((e, todo, built) :: stack) kept []
      | Text _ | Cdata _ | Comment _ | Pi _ ->
        go stack todo (node :: built))
    | [] -> (
      match stack with
      | (e, todo', built') :: stack ->
        let rebuilt = Element { e with children = List.rev built } in
        go stack todo' (rebuilt :: built')
      | [] -> (
        match built with
        | [ node ] -> node
        | _ -> assert false))
  in
  go [] [ node ] []

let equal n1 n2 =
  let shallow_equal n1 n2 =
    match n1, n2 with
    | Element e1, Element e2 ->
      String.equal e1.name e2.name
      && List.length e1.attrs = List.length e2.attrs
      && List.for_all
           (fun (a : attribute) ->
             match attr_value e2 a.name with
             | Some v -> String.equal v a.value
             | None -> false)
           e1.attrs
      && List.length e1.children = List.length e2.children
    | Text s1, Text s2 | Cdata s1, Cdata s2 | Comment s1, Comment s2 ->
      String.equal s1 s2
    | Pi p1, Pi p2 ->
      String.equal p1.target p2.target && String.equal p1.content p2.content
    | (Element _ | Text _ | Cdata _ | Comment _ | Pi _), _ -> false
  in
  let rec go = function
    | [] -> true
    | (n1, n2) :: rest ->
      shallow_equal n1 n2
      && (match n1, n2 with
          | Element e1, Element e2 ->
            go (List.rev_append (List.combine e1.children e2.children) rest)
          | _ -> go rest)
  in
  go [ (n1, n2) ]

let count_nodes node =
  let rec go acc = function
    | [] -> acc
    | Element e :: rest -> go (acc + 1) (List.rev_append e.children rest)
    | (Text _ | Cdata _ | Comment _ | Pi _) :: rest -> go (acc + 1) rest
  in
  go 0 [ node ]

let depth node =
  let rec go acc = function
    | [] -> acc
    | (d, Element e) :: rest ->
      go (max acc (d + 1)) (List.rev_append (List.map (fun c -> (d + 1, c)) e.children) rest)
    | (d, (Text _ | Cdata _ | Comment _ | Pi _)) :: rest -> go (max acc (d + 1)) rest
  in
  go 0 [ (0, node) ]

(* Fold over every node of the tree, prefix order. *)
let fold f acc node =
  let rec go acc = function
    | [] -> acc
    | node :: rest ->
      let acc = f acc node in
      (match node with
       | Element e -> go acc (e.children @ rest)
       | Text _ | Cdata _ | Comment _ | Pi _ -> go acc rest)
  in
  go acc [ node ]
