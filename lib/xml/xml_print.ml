(* Serialization of XML trees, compact or indented.

   The printer is the inverse of [Xml_parser.parse] on parsed trees:
   every string a node can carry serializes to markup that reads back as
   the same node. Three cases need care:

   - "]]>" cannot appear inside one CDATA section; it is split across
     two adjacent sections (the parser coalesces them back).
   - A literal U+000D in character data would be normalized to "\n" by
     any conforming parser, so it is emitted as "&#13;" (likewise the
     other C0 controls, which are not legal literally).
   - In attribute values, tab/newline/CR would be normalized to spaces;
     they are emitted as numeric character references. *)

let add_char_ref buf c = Buffer.add_string buf (Fmt.str "&#%d;" (Char.code c))

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '\t' | '\n' -> Buffer.add_char buf c
      | '\000' .. '\031' -> add_char_ref buf c
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\000' .. '\031' -> add_char_ref buf c
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Emit [s] as CDATA, splitting every "]]>" across a section boundary:
   "a]]>b" becomes "<![CDATA[a]]]]><![CDATA[>b]]>". *)
let add_cdata buf s =
  Buffer.add_string buf "<![CDATA[";
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if
      !i + 2 < n
      && s.[!i] = ']' && s.[!i + 1] = ']' && s.[!i + 2] = '>'
    then begin
      Buffer.add_string buf "]]]]><![CDATA[>";
      i := !i + 3
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_string buf "]]>"

let add_attrs buf attrs =
  List.iter
    (fun (a : Xml_tree.attribute) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf a.name;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr a.value);
      Buffer.add_char buf '"')
    attrs

let add_leaf buf (node : Xml_tree.t) =
  match node with
  | Text s -> Buffer.add_string buf (escape_text s)
  | Cdata s -> add_cdata buf s
  | Comment s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Pi { target; content } ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf target;
    if content <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf content
    end;
    Buffer.add_string buf "?>"
  | Element _ -> invalid_arg "add_leaf"

(* Work items for the iterative tree walks: a node still to print, or
   literal text (a close tag, indentation) to append after its subtree.
   An explicit work list instead of recursion keeps printing of very
   deep documents off the call stack. *)
type item = Node of Xml_tree.t | Lit of string

let push_children children tail =
  List.rev_append (List.rev_map (fun c -> Node c) children) tail

let add_compact buf (node : Xml_tree.t) =
  let rec go = function
    | [] -> ()
    | Lit s :: rest ->
      Buffer.add_string buf s;
      go rest
    | Node (Element e) :: rest ->
      Buffer.add_char buf '<';
      Buffer.add_string buf e.name;
      add_attrs buf e.attrs;
      if e.children = [] then begin
        Buffer.add_string buf "/>";
        go rest
      end
      else begin
        Buffer.add_char buf '>';
        go (push_children e.children (Lit ("</" ^ e.name ^ ">") :: rest))
      end
    | Node leaf :: rest ->
      add_leaf buf leaf;
      go rest
  in
  go [ Node node ]

let to_string node =
  let buf = Buffer.create 256 in
  add_compact buf node;
  Buffer.contents buf

(* Indented output: safe only for "data-oriented" XML where surrounding
   whitespace is not significant (always true for this system's trees). *)
type pretty_item = Pnode of int * Xml_tree.t | Plit of string

let add_pretty buf (node : Xml_tree.t) =
  let pad indent = String.make (2 * indent) ' ' in
  let rec go = function
    | [] -> ()
    | Plit s :: rest ->
      Buffer.add_string buf s;
      go rest
    | Pnode (indent, Element e) :: rest ->
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '<';
      Buffer.add_string buf e.name;
      add_attrs buf e.attrs;
      (match e.children with
       | [] ->
         Buffer.add_string buf "/>\n";
         go rest
       | [ Text s ] ->
         Buffer.add_char buf '>';
         Buffer.add_string buf (escape_text s);
         Buffer.add_string buf "</";
         Buffer.add_string buf e.name;
         Buffer.add_string buf ">\n";
         go rest
       | children ->
         Buffer.add_string buf ">\n";
         let close = Plit (pad indent ^ "</" ^ e.name ^ ">\n") in
         let items =
           List.rev_append
             (List.rev_map (fun c -> Pnode (indent + 1, c)) children)
             (close :: rest)
         in
         go items)
    | Pnode (indent, leaf) :: rest ->
      Buffer.add_string buf (pad indent);
      (match leaf with
       | Text s -> Buffer.add_string buf (escape_text s)
       | _ -> add_leaf buf leaf);
      Buffer.add_char buf '\n';
      go rest
  in
  go [ Pnode (0, node) ]

let to_pretty_string ?(xml_decl = false) node =
  let buf = Buffer.create 256 in
  if xml_decl then Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  add_pretty buf node;
  Buffer.contents buf

let pp ppf node = Fmt.string ppf (to_string node)
