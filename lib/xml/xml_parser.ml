(* Hand-written XML parser covering the subset the Active XML layer needs:
   prolog, elements, attributes, character data with entity references,
   CDATA sections, comments and processing instructions. DOCTYPE
   declarations are skipped. Positions are tracked for error reporting. *)

type position = { line : int; column : int }

exception Error of { pos : position; message : string }

type cursor = {
  input : string;
  mutable offset : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
}

let make_cursor input = { input; offset = 0; line = 1; bol = 0 }

let position cur = { line = cur.line; column = cur.offset - cur.bol + 1 }

let fail cur message = raise (Error { pos = position cur; message })

let eof cur = cur.offset >= String.length cur.input

let peek cur = if eof cur then '\000' else cur.input.[cur.offset]

let peek2 cur =
  if cur.offset + 1 >= String.length cur.input then '\000'
  else cur.input.[cur.offset + 1]

let advance cur =
  if not (eof cur) then begin
    if cur.input.[cur.offset] = '\n' then begin
      cur.line <- cur.line + 1;
      cur.bol <- cur.offset + 1
    end;
    cur.offset <- cur.offset + 1
  end

let advance_n cur n = for _ = 1 to n do advance cur done

let looking_at cur prefix =
  let n = String.length prefix in
  cur.offset + n <= String.length cur.input
  && String.sub cur.input cur.offset n = prefix

let skip_whitespace cur =
  while (not (eof cur))
        && (match peek cur with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance cur
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name cur =
  if not (is_name_start (peek cur)) then
    fail cur (Fmt.str "expected a name, found %C" (peek cur));
  let start = cur.offset in
  while (not (eof cur)) && is_name_char (peek cur) do advance cur done;
  String.sub cur.input start (cur.offset - start)

(* Decode a single entity reference starting at '&'. *)
let read_entity cur =
  advance cur; (* '&' *)
  let start = cur.offset in
  while (not (eof cur)) && peek cur <> ';' do advance cur done;
  if eof cur then fail cur "unterminated entity reference";
  let body = String.sub cur.input start (cur.offset - start) in
  advance cur; (* ';' *)
  match body with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    if String.length body > 1 && body.[0] = '#' then begin
      let code =
        try
          if body.[1] = 'x' || body.[1] = 'X' then
            int_of_string ("0x" ^ String.sub body 2 (String.length body - 2))
          else int_of_string (String.sub body 1 (String.length body - 1))
        with Failure _ -> fail cur (Fmt.str "bad character reference &%s;" body)
      in
      if code < 0x80 then String.make 1 (Char.chr code)
      else begin
        (* UTF-8 encode *)
        let buf = Buffer.create 4 in
        if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else if code < 0x10000 then begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        Buffer.contents buf
      end
    end
    else fail cur (Fmt.str "unknown entity &%s;" body)

let read_quoted cur =
  let quote = peek cur in
  if quote <> '"' && quote <> '\'' then fail cur "expected a quoted value";
  advance cur;
  let buf = Buffer.create 16 in
  while (not (eof cur)) && peek cur <> quote do
    if peek cur = '&' then Buffer.add_string buf (read_entity cur)
    else begin
      Buffer.add_char buf (peek cur);
      advance cur
    end
  done;
  if eof cur then fail cur "unterminated attribute value";
  advance cur;
  Buffer.contents buf

let read_attributes cur =
  let attrs = ref [] in
  let continue = ref true in
  while !continue do
    skip_whitespace cur;
    match peek cur with
    | '>' | '/' | '?' | '\000' -> continue := false
    | _ ->
      let name = read_name cur in
      skip_whitespace cur;
      if peek cur <> '=' then fail cur (Fmt.str "expected '=' after attribute %s" name);
      advance cur;
      skip_whitespace cur;
      let value = read_quoted cur in
      attrs := Xml_tree.attr name value :: !attrs
  done;
  List.rev !attrs

let read_until cur terminator what =
  let start = cur.offset in
  let tlen = String.length terminator in
  let rec scan () =
    if eof cur then fail cur (Fmt.str "unterminated %s" what)
    else if looking_at cur terminator then begin
      let body = String.sub cur.input start (cur.offset - start) in
      advance_n cur tlen;
      body
    end
    else begin
      advance cur;
      scan ()
    end
  in
  scan ()

let skip_doctype cur =
  (* skip until the matching '>' allowing one level of [...] *)
  let depth = ref 1 in
  while !depth > 0 do
    if eof cur then fail cur "unterminated DOCTYPE";
    (match peek cur with
     | '<' -> incr depth
     | '>' -> decr depth
     | _ -> ());
    advance cur
  done

(* A leaf token at the cursor: comment, CDATA section(s), processing
   instruction or character data. [None] when the cursor sits on a tag
   (open or close), a DOCTYPE, or at end of input.

   Adjacent CDATA sections coalesce into one node: the printer splits
   "]]>" across two sections (the only way to say it in CDATA), so
   reading them back as a single node is what makes print-then-parse
   the identity. Character data undergoes the spec's line-end
   normalization ("\r\n" and bare "\r" become "\n"); a literal U+000D
   survives only as "&#13;", which the printer emits. *)
let try_leaf cur : Xml_tree.t option =
  if eof cur then None
  else if looking_at cur "<!--" then begin
    advance_n cur 4;
    let body = read_until cur "-->" "comment" in
    Some (Xml_tree.comment body)
  end
  else if looking_at cur "<![CDATA[" then begin
    let buf = Buffer.create 32 in
    let rec sections () =
      advance_n cur 9;
      Buffer.add_string buf (read_until cur "]]>" "CDATA section");
      if looking_at cur "<![CDATA[" then sections ()
    in
    sections ();
    Some (Xml_tree.cdata (Buffer.contents buf))
  end
  else if looking_at cur "<?" then begin
    advance_n cur 2;
    let target = read_name cur in
    skip_whitespace cur;
    let content = read_until cur "?>" "processing instruction" in
    Some (Xml_tree.pi target (String.trim content))
  end
  else if peek cur = '<' then None
  else begin
    (* character data *)
    let buf = Buffer.create 32 in
    while (not (eof cur)) && peek cur <> '<' do
      match peek cur with
      | '&' -> Buffer.add_string buf (read_entity cur)
      | '\r' ->
        advance cur;
        if peek cur = '\n' then advance cur;
        Buffer.add_char buf '\n'
      | c ->
        Buffer.add_char buf c;
        advance cur
    done;
    Some (Xml_tree.text (Buffer.contents buf))
  end

(* Parse one element, iteratively: an explicit stack of open elements
   replaces the call-stack recursion, so nesting depth is bounded by the
   heap — a 100k-deep document parses without exhausting the stack. *)
let read_element cur : Xml_tree.t =
  (* each frame: (name, attrs, children collected so far, reversed) *)
  let stack : (string * Xml_tree.attribute list * Xml_tree.t list ref) list ref
    = ref []
  in
  let result = ref None in
  let emit node =
    match !stack with
    | (_, _, kids) :: _ -> kids := node :: !kids
    | [] -> result := Some node
  in
  let rec loop () =
    match !result with
    | Some _ -> ()
    | None ->
      if eof cur then begin
        match !stack with
        | (name, _, _) :: _ -> fail cur (Fmt.str "unterminated element <%s>" name)
        | [] -> fail cur "expected an element"
      end
      else if looking_at cur "<!DOCTYPE" then begin
        advance_n cur 9;
        skip_doctype cur;
        loop ()
      end
      else if looking_at cur "</" then begin
        advance_n cur 2;
        let close = read_name cur in
        skip_whitespace cur;
        if peek cur <> '>' then fail cur "malformed close tag";
        advance cur;
        (match !stack with
         | (name, attrs, kids) :: rest ->
           if not (String.equal close name) then
             fail cur (Fmt.str "mismatched close tag </%s> for <%s>" close name);
           stack := rest;
           emit (Xml_tree.element ~attrs name (List.rev !kids))
         | [] -> fail cur (Fmt.str "unexpected close tag </%s>" close));
        loop ()
      end
      else
        match try_leaf cur with
        | Some node ->
          emit node;
          loop ()
        | None ->
          (* an open tag *)
          advance cur; (* '<' *)
          let name = read_name cur in
          let attrs = read_attributes cur in
          skip_whitespace cur;
          if peek cur = '/' && peek2 cur = '>' then begin
            advance_n cur 2;
            emit (Xml_tree.element ~attrs name [])
          end
          else if peek cur = '>' then begin
            advance cur;
            stack := (name, attrs, ref []) :: !stack
          end
          else fail cur (Fmt.str "malformed start tag <%s>" name);
          loop ()
  in
  loop ();
  match !result with
  | Some node -> node
  | None -> fail cur "expected an element"

let rec read_node cur : Xml_tree.t option =
  if eof cur then None
  else if looking_at cur "<!DOCTYPE" then begin
    advance_n cur 9;
    skip_doctype cur;
    read_node cur
  end
  else if looking_at cur "</" then None (* caller handles the close tag *)
  else
    match try_leaf cur with
    | Some node -> Some node
    | None -> Some (read_element cur)

(* [parse input] parses a whole document and returns its root element.
   Leading/trailing comments, PIs and whitespace are allowed. *)
let parse input : Xml_tree.t =
  let cur = make_cursor input in
  let root = ref None in
  let rec loop () =
    skip_whitespace cur;
    if not (eof cur) then begin
      (match read_node cur with
       | Some (Xml_tree.Element _ as e) ->
         (match !root with
          | None -> root := Some e
          | Some _ -> fail cur "multiple root elements")
       | Some (Xml_tree.Text s) when Xml_tree.is_whitespace s -> ()
       | Some (Xml_tree.Comment _ | Xml_tree.Pi _) -> ()
       | Some (Xml_tree.Text _ | Xml_tree.Cdata _) ->
         fail cur "character data outside the root element"
       | None -> fail cur "unexpected close tag");
      loop ()
    end
  in
  loop ();
  match !root with
  | Some e -> e
  | None -> fail cur "no root element"

let parse_result input =
  match parse input with
  | tree -> Ok tree
  | exception Error { pos; message } ->
    Result.error (Fmt.str "line %d, column %d: %s" pos.line pos.column message)
