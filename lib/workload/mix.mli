(** Seeded traffic mixes: deterministic streams of generated documents
    whose size, depth and call density follow a weighted profile
    distribution over a schema.

    A {e profile} names one shape of document (how fat, how deep, how
    intensional); a {e mix} weights several profiles against each other;
    a {e stream} draws documents from a mix with one seeded PRNG per
    profile plus a seeded profile picker, so the [i]-th item of a stream
    is a pure function of [(seed, schema, mix)] — the reproducibility
    the soak harness and its tests rely on. *)

(** {1 Profiles} *)

type profile = private {
  name : string;          (** label carried into stream items and stats *)
  weight : int;           (** relative pick weight within a mix *)
  call_probability : float;
      (** call density: how often generation keeps a function symbol
          when the content model also offers its materialized
          alternative (see {!Axml_core.Generate.create}) *)
  fuel : int;             (** star-unrolling budget — the size knob *)
  max_depth : int;        (** hard recursion cutoff for generation *)
}

val profile :
  ?weight:int -> ?call_probability:float -> ?fuel:int -> ?max_depth:int ->
  string -> profile
(** [profile name] with defaults [weight = 1], [call_probability = 0.5],
    [fuel = 4], [max_depth = 24].
    @raise Invalid_argument when [weight < 1]. *)

(** {1 Mixes} *)

type t
(** A weighted set of profiles. *)

val v : profile list -> t
(** @raise Invalid_argument on an empty profile list. *)

val profiles : t -> profile list

val steady : t
(** The everyday mix: mostly regular documents ([fuel = 3]), a quarter
    chatty ones with higher call density. *)

val flash_crowd : t
(** The flash-crowd mix: call-dense documents with a raised size budget
    ([fuel] 5–6 — schemas whose stars are reachable without calls also
    fatten). Each request costs more than a steady one; combined with
    the schedule's worker multiplier this is what makes a flash crowd
    move the p99 of a served peer. *)

(** {1 Streams} *)

type item = {
  seq : int;           (** 0-based position in the stream *)
  doc_name : string;   (** a stable per-item name, e.g. ["w-000042"] *)
  profile_name : string;
  doc : Axml_core.Document.t;
}

type stream

val stream :
  ?seed:int -> ?env:Axml_schema.Schema.env -> schema:Axml_schema.Schema.t ->
  t -> stream
(** A fresh stream over [schema]. Equal [(seed, schema, mix)] yield
    item-for-item identical streams (default seed [2003]). *)

val next : stream -> item
(** Draw the next item. Thread-safe: concurrent callers each receive a
    distinct item, and the {e sequence} of items handed out is the same
    deterministic stream regardless of which thread draws which.
    @raise Axml_core.Generate.Generation_failed if the schema cannot be
    sampled (no root, empty content model, unbounded recursion). *)

val drawn : stream -> int
(** Items handed out so far. *)
