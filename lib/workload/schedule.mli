(** Phase schedules for adversarial soak runs: what the environment does
    to the peer, minute by minute.

    A schedule is an ordered list of {e phases}. Each phase fixes the
    offered load (worker count and think time), the document shape
    ({!Mix.t}), the behaviour of the environment's services (the
    {!fault} injected on every declared service for the phase), and
    which exchange agreement is in force (schema churn). The canonical
    {!default} schedule plays the adversarial function player of the
    rewriting games: warm-up → steady state → schema churn → flash
    crowd → brownout (slow, then dead services) → recovery. *)

(** {1 Faults} *)

type fault =
  | Healthy               (** services answer honestly *)
  | Flaky of int          (** every [n]-th call fails *)
  | Slow of float         (** every call burns the given seconds first *)
  | Dead                  (** every call fails *)

val fault_label : fault -> string
(** Stable lowercase rendering: ["healthy"], ["flaky"], ["slow"],
    ["dead"] (metrics label / JSON field). *)

(** {1 Phases} *)

type phase = {
  name : string;
  duration_s : float;
  workers : int;         (** closed-loop client concurrency *)
  think_s : float;       (** per-worker pause between requests *)
  mix : Mix.t;
  fault : fault;         (** injected on every service for the phase *)
  exchange : [ `Primary | `Churned ];
      (** which exchange schema the phase's documents are sent under —
          [`Churned] is the mid-run agreement flip *)
  expect_degraded : bool;
      (** the verdict treats latency/error excursions here as the point
          of the phase, not as a regression *)
}

val phase :
  ?workers:int -> ?think_s:float -> ?fault:fault ->
  ?exchange:[ `Primary | `Churned ] -> ?expect_degraded:bool ->
  duration_s:float -> mix:Mix.t -> string -> phase
(** [phase ~duration_s ~mix name] with defaults [workers = 1],
    [think_s = 0.], [fault = Healthy], [exchange = `Primary],
    [expect_degraded = false].
    @raise Invalid_argument when [duration_s <= 0.] or [workers < 1]. *)

(** {1 Schedules} *)

type t = { seed : int; phases : phase list }

val v : ?seed:int -> phase list -> t
(** @raise Invalid_argument on an empty phase list. *)

val total_s : t -> float
(** Sum of the phase durations. *)

val max_workers : t -> int

val phase_at : t -> float -> int * phase
(** [phase_at t elapsed] is the (index, phase) active at [elapsed]
    seconds into the run; past the end it stays on the last phase. *)

val fault_timeline : t -> (float * fault) list
(** One entry per phase: (start offset, fault) — the timeline
    {!Axml_services.Oracle.scheduled} consumes. *)

val default :
  ?seed:int -> ?workers:int -> ?churn:bool -> total_s:float -> unit -> t
(** The canonical adversarial schedule, scaled to [total_s] seconds:

    - [warmup] (10%): [workers] clients, steady mix;
    - [steady] (25%): the baseline window the verdict compares against;
    - [churn] (10%, when [churn], else folded into [steady]): same
      traffic under the churned exchange agreement;
    - [flash] (20%): [4 * workers] (at least 8) clients, no think time,
      {!Mix.flash_crowd} documents;
    - [brownout-slow] (10%): every service burns 50 ms per call;
    - [brownout-dead] (10%): every service fails — the resilience
      breaker is expected to trip;
    - [recovery] (15%): services honest again; breakers must close.
      Marked degraded (the breaker cooldown bleeds into its first
      seconds); the verdict grades it through the dedicated
      recovery-p99 and breakers-recovered checks instead of the error
      budget.

    [workers] defaults to 2. [seed] (default 2003) seeds every stream
    drawn from the schedule. *)
