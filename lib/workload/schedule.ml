(* Phase schedules: the timeline of load, faults and agreement churn a
   soak run plays against a served peer. *)

type fault =
  | Healthy
  | Flaky of int
  | Slow of float
  | Dead

let fault_label = function
  | Healthy -> "healthy"
  | Flaky _ -> "flaky"
  | Slow _ -> "slow"
  | Dead -> "dead"

type phase = {
  name : string;
  duration_s : float;
  workers : int;
  think_s : float;
  mix : Mix.t;
  fault : fault;
  exchange : [ `Primary | `Churned ];
  expect_degraded : bool;
}

let phase ?(workers = 1) ?(think_s = 0.) ?(fault = Healthy)
    ?(exchange = `Primary) ?(expect_degraded = false) ~duration_s ~mix name =
  if duration_s <= 0. then
    invalid_arg "Schedule.phase: duration_s must be positive";
  if workers < 1 then invalid_arg "Schedule.phase: workers must be >= 1";
  { name; duration_s; workers; think_s; mix; fault; exchange; expect_degraded }

type t = { seed : int; phases : phase list }

let v ?(seed = 2003) phases =
  if phases = [] then
    invalid_arg "Schedule.v: a schedule needs at least one phase";
  { seed; phases }

let total_s t = List.fold_left (fun acc p -> acc +. p.duration_s) 0. t.phases
let max_workers t = List.fold_left (fun acc p -> max acc p.workers) 1 t.phases

let phase_at t elapsed =
  let rec go i start = function
    | [ p ] -> (i, p)
    | p :: rest ->
      if elapsed < start +. p.duration_s then (i, p)
      else go (i + 1) (start +. p.duration_s) rest
    | [] -> assert false
  in
  go 0 0. t.phases

let fault_timeline t =
  List.rev @@ fst
  @@ List.fold_left
       (fun (acc, start) p ->
         ((start, p.fault) :: acc, start +. p.duration_s))
       ([], 0.) t.phases

let default ?(seed = 2003) ?(workers = 2) ?(churn = true) ~total_s () =
  if total_s <= 0. then invalid_arg "Schedule.default: total_s must be > 0";
  let part f = f *. total_s in
  let flash_workers = max 8 (4 * workers) in
  let steady name ?(frac = 0.25) ?exchange () =
    phase ~workers ~think_s:0.002 ~duration_s:(part frac) ~mix:Mix.steady
      ?exchange name
  in
  let phases =
    [ phase ~workers ~think_s:0.002 ~duration_s:(part 0.10) ~mix:Mix.steady
        "warmup";
      (if churn then steady "steady" () else steady "steady" ~frac:0.35 ());
    ]
    @ (if churn then [ steady "churn" ~frac:0.10 ~exchange:`Churned () ]
       else [])
    @ [ phase ~workers:flash_workers ~think_s:0. ~duration_s:(part 0.20)
          ~mix:Mix.flash_crowd ~expect_degraded:true "flash";
        phase ~workers ~think_s:0.002 ~duration_s:(part 0.10) ~mix:Mix.steady
          ~fault:(Slow 0.05) ~expect_degraded:true "brownout-slow";
        phase ~workers ~think_s:0.002 ~duration_s:(part 0.10) ~mix:Mix.steady
          ~fault:Dead ~expect_degraded:true "brownout-dead";
        (* the breaker's cooldown bleeds into recovery: its first seconds
           still short-circuit, so excursions here are expected — the
           verdict's recovery-p99 and breakers-recovered checks grade the
           ramp instead of the error budget *)
        phase ~workers ~think_s:0.002 ~duration_s:(part 0.15) ~mix:Mix.steady
          ~expect_degraded:true "recovery";
      ]
  in
  v ~seed phases
