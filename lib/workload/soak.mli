(** The soak harness: hold a phase-scheduled adversarial workload
    against a peer, watch it through {!Axml_obs.Metrics} windows, and
    emit a deterministic structural verdict.

    {!run} spawns one closed-loop worker thread per unit of scheduled
    concurrency; each active worker draws documents from its phase's
    {!Mix.stream} and pushes them through the caller-supplied [send]
    callback (typically an {!Axml_net} client talking to a peer served
    by a {e separate process}). A coordinator thread slices the run into
    fixed windows, measuring per-window p50/p99/p999 latency (histogram
    snapshot diffs), throughput, heap high-water marks, breaker states
    and {!Axml_services.Resilience} counter deltas. At the end the
    per-phase aggregates are graded into a {!verdict}: structural checks
    (did the flash crowd move the p99, did the brownout trip a breaker,
    did the breakers recover, did healthy phases stay inside the error
    budget) that are stable across runs for a fixed seed even though raw
    latencies are not. *)

(** {1 Outcomes}

    How one request ended, as classified by the [send] callback. *)

type outcome =
  | Accepted          (** exchange succeeded *)
  | Refused           (** receiver rejected the document (enforcement) *)
  | Overloaded        (** admission control turned the exchange away *)
  | Fault             (** service/enforcement fault (e.g. breaker open) *)
  | Transport_error   (** connection-level failure *)

val outcome_label : outcome -> string
(** Stable lowercase label (metrics / JSON): ["accepted"], ["refused"],
    ["overloaded"], ["fault"], ["transport_error"]. *)

(** {1 Configuration} *)

type config = {
  schedule : Schedule.t;
  window_s : float;          (** observation window length *)
  error_budget : float;      (** max error rate on non-degraded phases *)
  flash_factor : float;      (** flash p99 must be >= this x steady p99 *)
  recovery_factor : float;   (** recovery p99 must be <= this x steady p99 *)
  steady_phase : string;     (** baseline phase name *)
  flash_phase : string;
  recovery_phase : string;
  services : string list;    (** service names whose breakers to poll *)
}

val config :
  ?window_s:float -> ?error_budget:float -> ?flash_factor:float ->
  ?recovery_factor:float -> ?steady_phase:string -> ?flash_phase:string ->
  ?recovery_phase:string -> ?services:string list -> Schedule.t -> config
(** Defaults: [window_s = 1.0], [error_budget = 0.01],
    [flash_factor = 1.1], [recovery_factor = 10.0], phase names
    ["steady"] / ["flash"] / ["recovery"], [services = []]. *)

(** {1 Reports} *)

type window = {
  w_index : int;
  w_start_s : float;        (** offset from run start *)
  w_end_s : float;
  w_phase : string;         (** phase active at the window midpoint *)
  w_requests : int;
  w_p50 : float;            (** seconds; [nan] on an empty window *)
  w_p99 : float;
  w_p999 : float;
  w_rate : float;           (** requests per second *)
  w_heap_words : int;       (** [Gc.quick_stat] live heap at window end *)
  w_trips : int;            (** breaker trips within the window *)
  w_retries : int;
  w_short_circuited : int;
  w_breakers : (string * Axml_services.Resilience.breaker_state) list;
      (** per-service breaker state at window end *)
}

type phase_summary = {
  s_name : string;
  s_expect_degraded : bool;
  s_requests : int;
  s_outcomes : (string * int) list;  (** outcome label -> count *)
  s_p50 : float;
  s_p99 : float;
  s_p999 : float;
  s_error_rate : float;     (** non-[Accepted] fraction *)
}

type check = {
  check : string;  (** stable check identifier *)
  ok : bool;
  detail : string;
}

type verdict = { pass : bool; checks : check list }

type report = {
  seed : int;
  total_s : float;          (** actual wall-clock run duration *)
  windows : window list;
  phases : phase_summary list;
  resilience : Axml_services.Resilience.stats;
      (** guard counter deltas over the whole run *)
  heap_high_water_words : int;
  verdict : verdict;
}

val report_to_json : report -> string
(** The full time series + verdict as one JSON object (the BENCH_SOAK
    payload; field meanings are documented in BENCHMARKS.md). *)

(** {1 Running} *)

val run :
  ?registry:Axml_obs.Metrics.t ->
  ?on_window:(window -> unit) ->
  ?env:Axml_schema.Schema.env ->
  config:config ->
  resilience:Axml_services.Resilience.t ->
  schema:Axml_schema.Schema.t ->
  send:(worker:int -> phase:Schedule.phase -> Mix.item -> outcome) ->
  unit -> report
(** Run the schedule to completion. [send] is called concurrently from
    up to [Schedule.max_workers] threads and must be thread-safe; it
    receives the active phase (so it can honour [phase.exchange] churn)
    and classifies each exchange into an {!outcome} — any other
    exception it lets escape aborts the run and re-raises. [resilience]
    is the guard shared with the environment's services: its counters
    and breaker states are what the windows record. [schema] is the
    sender schema documents are generated from. Metrics are registered
    in [registry] (default {!Axml_obs.Metrics.default}) under
    [axml_soak_*]; [on_window] fires after each window is recorded. *)
