(* Seeded traffic mixes: weighted document-shape profiles over a schema,
   drawn as a deterministic stream. Each profile owns its own seeded
   generator and the profile picker is its own seeded PRNG, so the i-th
   item of a stream depends only on (seed, schema, mix) — never on
   timing or on which thread draws it. *)

module Schema = Axml_schema.Schema
module Generate = Axml_core.Generate

type profile = {
  name : string;
  weight : int;
  call_probability : float;
  fuel : int;
  max_depth : int;
}

let profile ?(weight = 1) ?(call_probability = 0.5) ?(fuel = 4)
    ?(max_depth = 24) name =
  if weight < 1 then invalid_arg "Mix.profile: weight must be >= 1";
  { name; weight; call_probability; fuel; max_depth }

type t = { profiles : profile list }

let v profiles =
  if profiles = [] then invalid_arg "Mix.v: a mix needs at least one profile";
  { profiles }

let profiles t = t.profiles

let steady =
  v
    [ profile ~weight:3 ~call_probability:0.5 ~fuel:3 "regular";
      profile ~weight:1 ~call_probability:0.8 ~fuel:4 "chatty" ]

let flash_crowd =
  v
    [ profile ~weight:1 ~call_probability:0.6 ~fuel:5 "fat";
      profile ~weight:1 ~call_probability:0.9 ~fuel:6 "fat-chatty" ]

type item = {
  seq : int;
  doc_name : string;
  profile_name : string;
  doc : Axml_core.Document.t;
}

type stream = {
  picker : Random.State.t;
  gens : (profile * Generate.t) array;
  total_weight : int;
  mutable seq : int;
  lock : Mutex.t;
}

let stream ?(seed = 2003) ?env ~schema mix =
  let gens =
    Array.of_list
      (List.mapi
         (fun i p ->
           ( p,
             Generate.create
               ~seed:(seed + (31 * (i + 1)))
               ~max_depth:p.max_depth ~call_probability:p.call_probability
               ~fuel:p.fuel ?env schema ))
         mix.profiles)
  in
  { picker = Random.State.make [| seed; 0x6d17 |];
    gens;
    total_weight =
      Array.fold_left (fun acc (p, _) -> acc + p.weight) 0 gens;
    seq = 0;
    lock = Mutex.create () }

let next s =
  Mutex.protect s.lock @@ fun () ->
  let seq = s.seq in
  s.seq <- seq + 1;
  let r = Random.State.int s.picker s.total_weight in
  let rec pick i acc =
    let p, g = s.gens.(i) in
    if r < acc + p.weight || i = Array.length s.gens - 1 then (p, g)
    else pick (i + 1) (acc + p.weight)
  in
  let p, g = pick 0 0 in
  { seq;
    doc_name = Printf.sprintf "w-%06d" seq;
    profile_name = p.name;
    doc = Generate.document g }

let drawn s = Mutex.protect s.lock (fun () -> s.seq)
