(* The soak harness: closed-loop worker threads replay a phase schedule
   against a caller-supplied send callback while a coordinator thread
   slices the run into metric windows and grades the result. *)

module Metrics = Axml_obs.Metrics
module Resilience = Axml_services.Resilience
module Schema = Axml_schema.Schema

type outcome = Accepted | Refused | Overloaded | Fault | Transport_error

let outcome_label = function
  | Accepted -> "accepted"
  | Refused -> "refused"
  | Overloaded -> "overloaded"
  | Fault -> "fault"
  | Transport_error -> "transport_error"

let all_outcomes = [ Accepted; Refused; Overloaded; Fault; Transport_error ]

type config = {
  schedule : Schedule.t;
  window_s : float;
  error_budget : float;
  flash_factor : float;
  recovery_factor : float;
  steady_phase : string;
  flash_phase : string;
  recovery_phase : string;
  services : string list;
}

let config ?(window_s = 1.0) ?(error_budget = 0.01) ?(flash_factor = 1.1)
    ?(recovery_factor = 10.0) ?(steady_phase = "steady")
    ?(flash_phase = "flash") ?(recovery_phase = "recovery") ?(services = [])
    schedule =
  if window_s <= 0. then invalid_arg "Soak.config: window_s must be positive";
  { schedule; window_s; error_budget; flash_factor; recovery_factor;
    steady_phase; flash_phase; recovery_phase; services }

type window = {
  w_index : int;
  w_start_s : float;
  w_end_s : float;
  w_phase : string;
  w_requests : int;
  w_p50 : float;
  w_p99 : float;
  w_p999 : float;
  w_rate : float;
  w_heap_words : int;
  w_trips : int;
  w_retries : int;
  w_short_circuited : int;
  w_breakers : (string * Resilience.breaker_state) list;
}

type phase_summary = {
  s_name : string;
  s_expect_degraded : bool;
  s_requests : int;
  s_outcomes : (string * int) list;
  s_p50 : float;
  s_p99 : float;
  s_p999 : float;
  s_error_rate : float;
}

type check = { check : string; ok : bool; detail : string }
type verdict = { pass : bool; checks : check list }

type report = {
  seed : int;
  total_s : float;
  windows : window list;
  phases : phase_summary list;
  resilience : Resilience.stats;
  heap_high_water_words : int;
  verdict : verdict;
}

(* Finer than Metrics.default_buckets: soak quantiles interpolate inside
   buckets, so resolution bounds the p99/p999 estimation error. *)
let soak_buckets =
  [ 0.00005; 0.0001; 0.00025; 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025;
    0.05; 0.1; 0.25; 0.5; 1.0; 2.0; 4.0 ]

let dedup_names phases =
  List.rev
  @@ List.fold_left
       (fun acc (p : Schedule.phase) ->
         if List.mem p.Schedule.name acc then acc else p.Schedule.name :: acc)
       [] phases

(* {2 Verdict} *)

let skip check why = { check; ok = true; detail = "skipped: " ^ why }

let fmt_ms v = Printf.sprintf "%.2fms" (v *. 1000.)

let grade (cfg : config) ~phases ~(resilience : Resilience.stats)
    ~final_breakers =
  let find name = List.find_opt (fun s -> s.s_name = name) phases in
  let p99_of name =
    match find name with
    | Some s when s.s_requests > 0 && not (Float.is_nan s.s_p99) ->
      Some s.s_p99
    | _ -> None
  in
  let steady = p99_of cfg.steady_phase in
  let baseline =
    match find cfg.steady_phase with
    | Some s when s.s_requests > 0 ->
      { check = "steady-baseline"; ok = true;
        detail =
          Printf.sprintf "%d requests, p99 %s" s.s_requests (fmt_ms s.s_p99) }
    | Some _ ->
      { check = "steady-baseline"; ok = false;
        detail = "steady phase recorded no requests" }
    | None -> skip "steady-baseline" "no steady phase in the schedule"
  in
  let ratio_check check name ~against ~ok_when =
    match (steady, p99_of name) with
    | _, None when find name = None ->
      skip check (Printf.sprintf "no %s phase in the schedule" name)
    | None, _ -> skip check "no steady baseline"
    | _, None ->
      { check; ok = false;
        detail = Printf.sprintf "%s phase recorded no latency data" name }
    | Some st, Some p ->
      { check; ok = ok_when ~phase:p ~limit:(against *. st);
        detail =
          Printf.sprintf "%s p99 %s vs steady %s (factor %.2f, budget %.2f)"
            name (fmt_ms p) (fmt_ms st) (p /. st) against }
  in
  let flash =
    ratio_check "flash-p99-moved" cfg.flash_phase ~against:cfg.flash_factor
      ~ok_when:(fun ~phase ~limit -> phase >= limit)
  in
  let recovery =
    ratio_check "recovery-p99" cfg.recovery_phase ~against:cfg.recovery_factor
      ~ok_when:(fun ~phase ~limit -> phase <= limit)
  in
  let has_faults =
    List.exists
      (fun (p : Schedule.phase) ->
        match p.Schedule.fault with
        | Schedule.Dead | Schedule.Flaky _ -> true
        | Schedule.Healthy | Schedule.Slow _ -> false)
      cfg.schedule.Schedule.phases
  in
  let tripped =
    if not has_faults then skip "breaker-tripped" "no fault phase scheduled"
    else
      { check = "breaker-tripped"; ok = resilience.Resilience.trips > 0;
        detail =
          Printf.sprintf "%d trips, %d short-circuited calls"
            resilience.Resilience.trips resilience.Resilience.short_circuited }
  in
  let recovered =
    match final_breakers with
    | [] -> skip "breakers-recovered" "no services polled"
    | bs ->
      let open_ones = List.filter (fun (_, st) -> st = `Open) bs in
      { check = "breakers-recovered"; ok = open_ones = [];
        detail =
          (if open_ones = [] then "all breakers closed or half-open"
           else
             "still open: " ^ String.concat ", " (List.map fst open_ones)) }
  in
  let budget =
    let healthy =
      List.filter (fun s -> not s.s_expect_degraded && s.s_requests > 0) phases
    in
    match healthy with
    | [] -> skip "error-budget" "no healthy phase recorded requests"
    | _ ->
      let worst =
        List.fold_left
          (fun acc s -> if s.s_error_rate > acc.s_error_rate then s else acc)
          (List.hd healthy) healthy
      in
      { check = "error-budget"; ok = worst.s_error_rate <= cfg.error_budget;
        detail =
          Printf.sprintf "worst healthy phase %s: error rate %.4f (budget %.4f)"
            worst.s_name worst.s_error_rate cfg.error_budget }
  in
  let checks = [ baseline; flash; tripped; recovered; budget; recovery ] in
  { pass = List.for_all (fun c -> c.ok) checks; checks }

(* {2 JSON} *)

let js = Metrics.json_string
let jf v = if Float.is_nan v then "null" else Printf.sprintf "%.9g" v

let breaker_label = function
  | `Closed -> "closed"
  | `Open -> "open"
  | `Half_open -> "half_open"

let report_to_json r =
  let b = Buffer.create 8192 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let comma_sep f = function
    | [] -> ()
    | x :: rest ->
      f x;
      List.iter (fun x -> Buffer.add_char b ','; f x) rest
  in
  pr "{\"schema_version\":1,";
  pr "\"seed\":%d,\"total_s\":%s,\"heap_high_water_words\":%d," r.seed
    (jf r.total_s) r.heap_high_water_words;
  let s = r.resilience in
  pr
    "\"resilience\":{\"calls\":%d,\"attempts\":%d,\"retries\":%d,\
     \"successes\":%d,\"gave_up\":%d,\"timeouts\":%d,\"trips\":%d,\
     \"short_circuited\":%d},"
    s.Resilience.calls s.Resilience.attempts s.Resilience.retries
    s.Resilience.successes s.Resilience.gave_up s.Resilience.timeouts
    s.Resilience.trips s.Resilience.short_circuited;
  pr "\"verdict\":{\"pass\":%b,\"checks\":[" r.verdict.pass;
  comma_sep
    (fun c ->
      pr "{\"check\":%s,\"ok\":%b,\"detail\":%s}" (js c.check) c.ok
        (js c.detail))
    r.verdict.checks;
  pr "]},\"phases\":[";
  comma_sep
    (fun p ->
      pr
        "{\"name\":%s,\"expect_degraded\":%b,\"requests\":%d,\
         \"error_rate\":%s,\"p50\":%s,\"p99\":%s,\"p999\":%s,\"outcomes\":{"
        (js p.s_name) p.s_expect_degraded p.s_requests (jf p.s_error_rate)
        (jf p.s_p50) (jf p.s_p99) (jf p.s_p999);
      comma_sep (fun (o, n) -> pr "%s:%d" (js o) n) p.s_outcomes;
      pr "}}")
    r.phases;
  pr "],\"windows\":[";
  comma_sep
    (fun w ->
      pr
        "{\"index\":%d,\"start_s\":%s,\"end_s\":%s,\"phase\":%s,\
         \"requests\":%d,\"rate\":%s,\"p50\":%s,\"p99\":%s,\"p999\":%s,\
         \"heap_words\":%d,\"trips\":%d,\"retries\":%d,\
         \"short_circuited\":%d,\"breakers\":{"
        w.w_index (jf w.w_start_s) (jf w.w_end_s) (js w.w_phase) w.w_requests
        (jf w.w_rate) (jf w.w_p50) (jf w.w_p99) (jf w.w_p999) w.w_heap_words
        w.w_trips w.w_retries w.w_short_circuited;
      comma_sep
        (fun (name, st) -> pr "%s:%s" (js name) (js (breaker_label st)))
        w.w_breakers;
      pr "}}")
    r.windows;
  pr "]}";
  Buffer.contents b

(* {2 Running} *)

let quantiles snap =
  ( Metrics.snapshot_quantile snap 0.5,
    Metrics.snapshot_quantile snap 0.99,
    Metrics.snapshot_quantile snap 0.999 )

let run ?(registry = Metrics.default) ?on_window ?env ~config:cfg ~resilience
    ~schema ~send () =
  let schedule = cfg.schedule in
  let phases = Array.of_list schedule.Schedule.phases in
  let streams =
    Array.mapi
      (fun i (p : Schedule.phase) ->
        Mix.stream
          ~seed:(schedule.Schedule.seed + (1000 * (i + 1)))
          ?env ~schema p.Schedule.mix)
      phases
  in
  let hist_all =
    Metrics.histogram ~registry ~buckets:soak_buckets
      ~help:"Soak request latency (all phases)" "axml_soak_latency_seconds"
  in
  let phase_hist =
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun (p : Schedule.phase) ->
        if not (Hashtbl.mem tbl p.Schedule.name) then
          Hashtbl.add tbl p.Schedule.name
            (Metrics.histogram ~registry ~buckets:soak_buckets
               ~labels:[ ("phase", p.Schedule.name) ]
               ~help:"Soak request latency per phase"
               "axml_soak_phase_latency_seconds"))
      phases;
    Hashtbl.find tbl
  in
  let req_counter =
    let tbl = Hashtbl.create 32 in
    Array.iter
      (fun (p : Schedule.phase) ->
        List.iter
          (fun o ->
            let key = (p.Schedule.name, o) in
            if not (Hashtbl.mem tbl key) then
              Hashtbl.add tbl key
                (Metrics.counter ~registry
                   ~labels:
                     [ ("phase", p.Schedule.name);
                       ("outcome", outcome_label o) ]
                   ~help:"Soak requests by phase and outcome"
                   "axml_soak_requests_total"))
          all_outcomes)
      phases;
    fun name o -> Hashtbl.find tbl (name, o)
  in
  let workers_gauge =
    Metrics.gauge ~registry ~help:"Scheduled worker concurrency"
      "axml_soak_workers"
  in
  let heap_gauge =
    Metrics.gauge ~registry ~help:"Live heap words at the last window edge"
      "axml_soak_heap_words"
  in
  (* Baselines, in case the registry already carries soak families. *)
  let base_phase =
    List.map
      (fun name -> (name, Metrics.histogram_snapshot (phase_hist name)))
      (dedup_names schedule.Schedule.phases)
  in
  let base_count =
    List.concat_map
      (fun name ->
        List.map
          (fun o -> ((name, o), Metrics.counter_value (req_counter name o)))
          all_outcomes)
      (dedup_names schedule.Schedule.phases)
  in
  let stats0 = Resilience.total resilience in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. Schedule.total_s schedule in
  let failure = Atomic.make None in
  let worker wid =
    try
      while Unix.gettimeofday () < deadline && Atomic.get failure = None do
        let idx, phase = Schedule.phase_at schedule (Unix.gettimeofday () -. t0) in
        if wid >= phase.Schedule.workers then Unix.sleepf 0.005
        else begin
          let item = Mix.next streams.(idx) in
          let st = Unix.gettimeofday () in
          let outcome = send ~worker:wid ~phase item in
          let dt = Unix.gettimeofday () -. st in
          Metrics.observe hist_all dt;
          Metrics.observe (phase_hist phase.Schedule.name) dt;
          Metrics.inc (req_counter phase.Schedule.name outcome);
          if phase.Schedule.think_s > 0. then Unix.sleepf phase.Schedule.think_s
        end
      done
    with exn -> ignore (Atomic.compare_and_set failure None (Some exn))
  in
  let threads =
    List.init (Schedule.max_workers schedule) (fun wid ->
        Thread.create worker wid)
  in
  let high_water = ref 0 in
  let poll_breakers () =
    List.map (fun s -> (s, Resilience.breaker_state resilience s)) cfg.services
  in
  let rec window_loop i prev_hist prev_stats acc =
    let edge = min deadline (t0 +. (float_of_int (i + 1) *. cfg.window_s)) in
    let now = Unix.gettimeofday () in
    if now < edge then Unix.sleepf (edge -. now);
    let now = Unix.gettimeofday () in
    let hist = Metrics.histogram_snapshot hist_all in
    let stats = Resilience.total resilience in
    let win_hist = Metrics.diff_histogram_snapshot ~before:prev_hist hist in
    let win_stats = Resilience.diff_stats ~before:prev_stats stats in
    let w_start_s = float_of_int i *. cfg.window_s in
    let w_end_s = now -. t0 in
    let _, phase = Schedule.phase_at schedule ((w_start_s +. w_end_s) /. 2.) in
    Metrics.set workers_gauge (float_of_int phase.Schedule.workers);
    let heap = (Gc.quick_stat ()).Gc.heap_words in
    if heap > !high_water then high_water := heap;
    Metrics.set heap_gauge (float_of_int heap);
    let p50, p99, p999 = quantiles win_hist in
    let span = w_end_s -. w_start_s in
    let w =
      { w_index = i;
        w_start_s;
        w_end_s;
        w_phase = phase.Schedule.name;
        w_requests = win_hist.Metrics.count;
        w_p50 = p50;
        w_p99 = p99;
        w_p999 = p999;
        w_rate =
          (if span > 0. then float_of_int win_hist.Metrics.count /. span
           else 0.);
        w_heap_words = heap;
        w_trips = win_stats.Resilience.trips;
        w_retries = win_stats.Resilience.retries;
        w_short_circuited = win_stats.Resilience.short_circuited;
        w_breakers = poll_breakers () }
    in
    Option.iter (fun f -> f w) on_window;
    let acc = w :: acc in
    if now >= deadline || Atomic.get failure <> None then List.rev acc
    else window_loop (i + 1) hist stats acc
  in
  let windows =
    window_loop 0 (Metrics.histogram_snapshot hist_all) stats0 []
  in
  List.iter Thread.join threads;
  (match Atomic.get failure with Some exn -> raise exn | None -> ());
  let total_s = Unix.gettimeofday () -. t0 in
  let summaries =
    List.map
      (fun name ->
        let base = List.assoc name base_phase in
        let snap =
          Metrics.diff_histogram_snapshot ~before:base
            (Metrics.histogram_snapshot (phase_hist name))
        in
        let outcomes =
          List.map
            (fun o ->
              let v =
                Metrics.counter_value (req_counter name o)
                - List.assoc (name, o) base_count
              in
              (outcome_label o, v))
            all_outcomes
        in
        let requests = List.fold_left (fun acc (_, n) -> acc + n) 0 outcomes in
        let errors = requests - List.assoc (outcome_label Accepted) outcomes in
        let p50, p99, p999 = quantiles snap in
        { s_name = name;
          s_expect_degraded =
            List.exists
              (fun (p : Schedule.phase) ->
                p.Schedule.name = name && p.Schedule.expect_degraded)
              schedule.Schedule.phases;
          s_requests = requests;
          s_outcomes = outcomes;
          s_p50 = p50;
          s_p99 = p99;
          s_p999 = p999;
          s_error_rate =
            (if requests = 0 then 0.
             else float_of_int errors /. float_of_int requests) })
      (dedup_names schedule.Schedule.phases)
  in
  let resilience_delta =
    Resilience.diff_stats ~before:stats0 (Resilience.total resilience)
  in
  let verdict =
    grade cfg ~phases:summaries ~resilience:resilience_delta
      ~final_breakers:(poll_breakers ())
  in
  { seed = schedule.Schedule.seed;
    total_s;
    windows;
    phases = summaries;
    resilience = resilience_delta;
    heap_high_water_words = !high_water;
    verdict }
