(** A thread-safe string interner (string <-> dense int).

    Lookups are lock-free: the mapping is published as an immutable
    snapshot through an atomic, so the hot paths of the dense automata
    kernel never take a lock on a hit. Inserts are serialized behind a
    mutex and publish a fresh snapshot (copy-on-write) — cheap because
    the vocabulary is the label/function namespace of the loaded
    schemas, which stabilizes almost immediately. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** [intern t s] returns the id of [s], allocating the next dense id on
    first sight. Ids are stable for the lifetime of [t] and start at 0. *)

val find_opt : t -> string -> int option
(** The id of an already-interned string, without inserting. *)

val mem : t -> string -> bool

val to_string : t -> int -> string
(** Inverse of {!intern}.
    @raise Invalid_argument on an id never handed out. *)

val size : t -> int
(** Number of distinct strings interned so far. *)

val global : t
(** The process-wide instance: every [Contract] and its per-domain
    clones code symbols through this one interner, so dense symbol ids
    agree across domains by construction. *)
