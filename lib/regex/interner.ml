(* A process-wide string interner: string <-> dense int, built for the
   dense automata kernel. Reads are lock-free — the (table, names)
   snapshot is immutable once published through the atomic, so [intern]
   hits and [to_string] never contend, even across domains. Inserts
   copy-on-write behind a mutex; the vocabulary (labels and function
   names of the loaded schemas) is tiny and stabilizes after the first
   few documents, so the copy cost is paid a handful of times per
   process. A [Contract] and its per-domain clones share the global
   instance, so symbol ids agree across domains by construction. *)

type snapshot = {
  ids : (string, int) Hashtbl.t;  (* frozen once published *)
  names : string array;           (* names.(i) is the string with id i *)
}

type t = {
  lock : Mutex.t;                 (* serializes inserts *)
  snap : snapshot Atomic.t;
}

let create () =
  { lock = Mutex.create ();
    snap = Atomic.make { ids = Hashtbl.create 64; names = [||] } }

let find_opt t s = Hashtbl.find_opt (Atomic.get t.snap).ids s

let size t = Array.length (Atomic.get t.snap).names

let intern t s =
  match find_opt t s with
  | Some id -> id
  | None ->
    Mutex.protect t.lock (fun () ->
        (* re-check against the latest snapshot: another domain may have
           inserted [s] between our optimistic read and the lock *)
        let cur = Atomic.get t.snap in
        match Hashtbl.find_opt cur.ids s with
        | Some id -> id
        | None ->
          let id = Array.length cur.names in
          let ids = Hashtbl.copy cur.ids in
          Hashtbl.add ids s id;
          let names = Array.make (id + 1) s in
          Array.blit cur.names 0 names 0 id;
          Atomic.set t.snap { ids; names };
          id)

let to_string t id =
  let names = (Atomic.get t.snap).names in
  if id < 0 || id >= Array.length names then
    invalid_arg (Printf.sprintf "Interner.to_string: unknown id %d" id);
  names.(id)

let mem t s = Option.is_some (find_opt t s)

(* The default process-wide instance the schema layer codes symbols
   through. *)
let global = create ()
