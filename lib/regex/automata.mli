(** Finite-state automata over an arbitrary ordered symbol alphabet —
    everything the paper's algorithms need (Sections 4 and 5): Thompson
    and Glushkov constructions, subset determinization, completion,
    complementation, products, minimization, emptiness and witness
    extraction.

    The rewriting engine instantiates {!Make} with the schema symbol
    alphabet; tests also instantiate it with plain strings. *)

module type SYMBOL = sig
  type t
  val compare : t -> t -> int
  val pp : t Fmt.t
end

module Make (Sym : SYMBOL) : sig
  module Sym_set : Set.S with type elt = Sym.t
  module Sym_map : Map.S with type key = Sym.t
  module Int_set : Set.S with type elt = int
  module Int_map : Map.S with type key = int

  val pp_sym : Sym.t Fmt.t

  (** Nondeterministic automata with epsilon moves. The representation
      is exposed because the fork-automaton construction of Figure 3
      splices Glushkov automata state by state. *)
  module Nfa : sig
    type t = {
      size : int;  (** states are [0 .. size - 1] *)
      start : int;
      finals : Int_set.t;
      eps : Int_set.t Int_map.t;
      delta : Int_set.t Sym_map.t Int_map.t;
    }

    (** Imperative construction helper. *)
    module Builder : sig
      type nfa = t
      type t

      val create : unit -> t
      val fresh_state : t -> int
      val add_eps : t -> int -> int -> unit
      val add_edge : t -> int -> Sym.t -> int -> unit
      val freeze : t -> start:int -> finals:Int_set.t -> nfa
    end

    val eps_successors : t -> int -> Int_set.t
    val successors : t -> int -> Sym.t -> Int_set.t

    val eps_closure : t -> Int_set.t -> Int_set.t
    (** Saturate a state set under epsilon moves. *)

    val step_set : t -> Int_set.t -> Sym.t -> Int_set.t
    (** One subset-simulation step: symbol move then epsilon closure. *)

    val accepts : t -> Sym.t list -> bool
    val accepts_empty_word : t -> bool
    val alphabet : t -> Sym_set.t
    val count_edges : t -> int

    val thompson : Sym.t Regex.t -> t
    (** Thompson construction (epsilon-rich, linear size). *)

    val glushkov : Sym.t Regex.t -> t
    (** Glushkov construction: no epsilon moves; one state per symbol
        occurrence plus the start. Deterministic exactly when the regex
        is 1-unambiguous — the XML Schema condition the paper relies on
        for its polynomial bound. *)

    val reachable : t -> Int_set.t
    val is_empty : t -> bool

    val shortest_word : t -> Sym.t list option
    (** A shortest accepted word, or [None] for the empty language. *)

    val pp : t Fmt.t
  end

  (** Deterministic automata. A missing transition means "reject";
      {!Dfa.complete} makes the function total. *)
  module Dfa : sig
    type t = {
      size : int;
      start : int;
      finals : Int_set.t;
      delta : int Sym_map.t Int_map.t;
      alphabet : Sym_set.t;
    }

    val step : t -> int -> Sym.t -> int option
    val is_final : t -> int -> bool
    val accepts : t -> Sym.t list -> bool
    val count_edges : t -> int

    val of_nfa : ?alphabet:Sym_set.t -> Nfa.t -> t
    (** Subset construction. *)

    val of_regex : ?alphabet:Sym_set.t -> Sym.t Regex.t -> t
    (** [of_nfa] of the Glushkov automaton. *)

    val complete : alphabet:Sym_set.t -> t -> t
    (** Make the transition function total over the union of [alphabet]
        and the automaton's own alphabet, adding a sink state when
        needed — the "deterministic and complete" requirement of
        Figure 3 step (c). *)

    val is_complete : t -> bool

    val complement : alphabet:Sym_set.t -> t -> t
    (** Complete, then flip accepting states. *)

    val product : keep_final:(bool -> bool -> bool) -> t -> t -> t
    (** Pairwise product over the union alphabet; [keep_final] decides
        acceptance of a pair from the components' acceptance. *)

    val intersect : t -> t -> t
    val union : t -> t -> t
    val difference : t -> t -> t

    val reachable : t -> Int_set.t
    val is_empty : t -> bool
    val shortest_word : t -> Sym.t list option

    val minimize : t -> t
    (** Moore partition refinement; the result is complete over the
        input's alphabet and minimal. *)

    val subset : t -> t -> bool
    (** Language inclusion: is every word of the first language accepted
        by the second? Emptiness of {!difference} — the primitive the
        schema-evolution classifier is built on. *)

    val equal_language : t -> t -> bool
    val separating_word : t -> t -> Sym.t list option
    (** A word accepted by the first but not the second, if any. *)

    (** Flat [int array] transition tables for the hot membership loop.
        Functional maps stay the construction representation; a finished
        DFA is frozen into dense tables indexed by an external dense
        symbol coding (see {!Axml_schema.Sym_id}), and stepping then
        costs two array loads and no allocation. State [-1] is the
        absorbing reject state. *)
    module Dense : sig
      type dense

      val compile : sym_id:(Sym.t -> int) -> t -> dense
      (** Freeze a DFA. [sym_id] must be injective and non-negative on
          the DFA's alphabet (interner-backed codings are). *)

      val start : dense -> int
      val size : dense -> int
      val width : dense -> int
      val is_final : dense -> int -> bool

      val step_id : dense -> int -> int -> int
      (** [step_id d state id]: one transition by dense symbol id.
          Unknown symbols and missing transitions yield [-1]. *)

      val step : sym_id:(Sym.t -> int) -> dense -> int -> Sym.t -> int

      val accepts_ids : dense -> int array -> bool
      (** Membership of a word of dense symbol ids — allocation-free. *)

      val accepts : sym_id:(Sym.t -> int) -> dense -> Sym.t list -> bool
    end

    val pp : t Fmt.t
  end

  val deterministic_regex : Sym.t Regex.t -> bool
  (** 1-unambiguity: is the Glushkov automaton deterministic? *)

  val sample_word :
    rand_int:(int -> int) -> fuel:int -> Sym.t Regex.t -> Sym.t list option
  (** Random word from the language; [fuel] bounds star unrollings so
      sampling always terminates. [None] only on empty-language
      branches. *)
end
