(* Finite-state automata over an arbitrary ordered symbol alphabet.

   This module provides everything the paper's algorithms need (Sections 4
   and 5): Thompson and Glushkov constructions, subset determinization,
   completion, complementation, products, minimization, emptiness and
   witness extraction. The rewriting engine instantiates [Make] with the
   schema symbol alphabet; tests also instantiate it with plain strings. *)

module type SYMBOL = sig
  type t
  val compare : t -> t -> int
  val pp : t Fmt.t
end

module Make (Sym : SYMBOL) = struct
  module Sym_set = Set.Make (Sym)
  module Sym_map = Map.Make (Sym)
  module Int_set = Set.Make (Int)
  module Int_map = Map.Make (Int)

  let pp_sym = Sym.pp

  (* ------------------------------------------------------------------ *)
  (* Nondeterministic automata with epsilon moves                        *)
  (* ------------------------------------------------------------------ *)

  module Nfa = struct
    type t = {
      size : int;  (* states are [0 .. size - 1] *)
      start : int;
      finals : Int_set.t;
      eps : Int_set.t Int_map.t;
      delta : Int_set.t Sym_map.t Int_map.t;
    }

    module Builder = struct
      type nfa = t

      type t = {
        mutable size : int;
        mutable eps : Int_set.t Int_map.t;
        mutable delta : Int_set.t Sym_map.t Int_map.t;
      }

      let create () = { size = 0; eps = Int_map.empty; delta = Int_map.empty }

      let fresh_state b =
        let s = b.size in
        b.size <- s + 1;
        s

      let add_eps b src dst =
        let cur = Option.value ~default:Int_set.empty (Int_map.find_opt src b.eps) in
        b.eps <- Int_map.add src (Int_set.add dst cur) b.eps

      let add_edge b src sym dst =
        let row = Option.value ~default:Sym_map.empty (Int_map.find_opt src b.delta) in
        let cur = Option.value ~default:Int_set.empty (Sym_map.find_opt sym row) in
        b.delta <- Int_map.add src (Sym_map.add sym (Int_set.add dst cur) row) b.delta

      let freeze b ~start ~finals : nfa =
        { size = b.size; start; finals; eps = b.eps; delta = b.delta }
    end

    let eps_successors nfa s =
      Option.value ~default:Int_set.empty (Int_map.find_opt s nfa.eps)

    let successors nfa s sym =
      match Int_map.find_opt s nfa.delta with
      | None -> Int_set.empty
      | Some row -> Option.value ~default:Int_set.empty (Sym_map.find_opt sym row)

    let eps_closure nfa states =
      let rec saturate frontier acc =
        if Int_set.is_empty frontier then acc
        else
          let next =
            Int_set.fold
              (fun s nxt -> Int_set.union nxt (eps_successors nfa s))
              frontier Int_set.empty
          in
          let fresh = Int_set.diff next acc in
          saturate fresh (Int_set.union acc fresh)
      in
      saturate states states

    (* One step of the subset simulation: symbol move then eps closure. *)
    let step_set nfa states sym =
      let moved =
        Int_set.fold
          (fun s acc -> Int_set.union acc (successors nfa s sym))
          states Int_set.empty
      in
      eps_closure nfa moved

    let accepts nfa word =
      let init = eps_closure nfa (Int_set.singleton nfa.start) in
      let final =
        List.fold_left (fun states sym -> step_set nfa states sym) init word
      in
      not (Int_set.is_empty (Int_set.inter final nfa.finals))

    let alphabet nfa =
      Int_map.fold
        (fun _ row acc -> Sym_map.fold (fun sym _ acc -> Sym_set.add sym acc) row acc)
        nfa.delta Sym_set.empty

    let count_edges nfa =
      let labelled =
        Int_map.fold
          (fun _ row acc ->
            Sym_map.fold (fun _ dsts acc -> acc + Int_set.cardinal dsts) row acc)
          nfa.delta 0
      in
      let eps =
        Int_map.fold (fun _ dsts acc -> acc + Int_set.cardinal dsts) nfa.eps 0
      in
      labelled + eps

    (* Thompson construction: one fresh start/final pair per operator. *)
    let thompson regex =
      let b = Builder.create () in
      let rec compile r =
        let entry = Builder.fresh_state b and exit = Builder.fresh_state b in
        (match (r : Sym.t Regex.t) with
         | Empty -> ()
         | Epsilon -> Builder.add_eps b entry exit
         | Sym a -> Builder.add_edge b entry a exit
         | Seq (r1, r2) ->
           let e1, x1 = compile r1 and e2, x2 = compile r2 in
           Builder.add_eps b entry e1;
           Builder.add_eps b x1 e2;
           Builder.add_eps b x2 exit
         | Alt (r1, r2) ->
           let e1, x1 = compile r1 and e2, x2 = compile r2 in
           Builder.add_eps b entry e1;
           Builder.add_eps b entry e2;
           Builder.add_eps b x1 exit;
           Builder.add_eps b x2 exit
         | Star r1 ->
           let e1, x1 = compile r1 in
           Builder.add_eps b entry exit;
           Builder.add_eps b entry e1;
           Builder.add_eps b x1 e1;
           Builder.add_eps b x1 exit
         | Plus r1 ->
           let e1, x1 = compile r1 in
           Builder.add_eps b entry e1;
           Builder.add_eps b x1 e1;
           Builder.add_eps b x1 exit
         | Opt r1 ->
           let e1, x1 = compile r1 in
           Builder.add_eps b entry exit;
           Builder.add_eps b entry e1;
           Builder.add_eps b x1 exit);
        (entry, exit)
      in
      let start, final = compile regex in
      Builder.freeze b ~start ~finals:(Int_set.singleton final)

    (* Glushkov construction. States are 0 (initial) plus one state per
       symbol occurrence; there are no epsilon moves, so the result is
       deterministic exactly when the regex is 1-unambiguous — the
       determinism XML Schema requires and the paper relies on for its
       polynomial bound (Section 4, "Complexity"). *)
    let glushkov regex =
      (* Linearize: collect positions 1..m with their symbols. *)
      let positions = ref [] in
      let counter = ref 0 in
      let rec linearize (r : Sym.t Regex.t) : (Sym.t * int) Regex.t =
        match r with
        | Empty -> Empty
        | Epsilon -> Epsilon
        | Sym a ->
          incr counter;
          positions := (!counter, a) :: !positions;
          Sym (a, !counter)
        | Seq (r1, r2) ->
          let l1 = linearize r1 in
          let l2 = linearize r2 in
          Seq (l1, l2)
        | Alt (r1, r2) ->
          let l1 = linearize r1 in
          let l2 = linearize r2 in
          Alt (l1, l2)
        | Star r1 -> Star (linearize r1)
        | Plus r1 -> Plus (linearize r1)
        | Opt r1 -> Opt (linearize r1)
      in
      let lin = linearize regex in
      let m = !counter in
      let sym_of = Array.make (m + 1) None in
      List.iter (fun (i, a) -> sym_of.(i) <- Some a) !positions;
      let follow = Array.make (m + 1) Int_set.empty in
      let add_follow src dsts =
        Int_set.iter
          (fun p -> follow.(p) <- Int_set.union follow.(p) dsts)
          src
      in
      (* Returns (nullable, first, last) and fills [follow]. *)
      let rec analyze (r : (Sym.t * int) Regex.t) =
        match r with
        | Empty -> (false, Int_set.empty, Int_set.empty)
        | Epsilon -> (true, Int_set.empty, Int_set.empty)
        | Sym (_, i) -> (false, Int_set.singleton i, Int_set.singleton i)
        | Seq (r1, r2) ->
          let n1, f1, l1 = analyze r1 in
          let n2, f2, l2 = analyze r2 in
          add_follow l1 f2;
          let first = if n1 then Int_set.union f1 f2 else f1 in
          let last = if n2 then Int_set.union l1 l2 else l2 in
          (n1 && n2, first, last)
        | Alt (r1, r2) ->
          let n1, f1, l1 = analyze r1 in
          let n2, f2, l2 = analyze r2 in
          (n1 || n2, Int_set.union f1 f2, Int_set.union l1 l2)
        | Star r1 | Plus r1 ->
          let n1, f1, l1 = analyze r1 in
          add_follow l1 f1;
          let nullable = (match r with Star _ -> true | _ -> n1) in
          (nullable, f1, l1)
        | Opt r1 ->
          let _, f1, l1 = analyze r1 in
          (true, f1, l1)
      in
      let nullable, first, last = analyze lin in
      let b = Builder.create () in
      (* state i corresponds to position i; state 0 is the start *)
      for _ = 0 to m do ignore (Builder.fresh_state b) done;
      let symbol_at p =
        match sym_of.(p) with
        | Some a -> a
        | None -> assert false
      in
      Int_set.iter (fun p -> Builder.add_edge b 0 (symbol_at p) p) first;
      for p = 1 to m do
        Int_set.iter (fun q -> Builder.add_edge b p (symbol_at q) q) follow.(p)
      done;
      let finals = if nullable then Int_set.add 0 last else last in
      Builder.freeze b ~start:0 ~finals

    (* Reachability over all edges (symbols and epsilon). *)
    let reachable nfa =
      let rec explore frontier seen =
        if Int_set.is_empty frontier then seen
        else
          let next =
            Int_set.fold
              (fun s acc ->
                let acc = Int_set.union acc (eps_successors nfa s) in
                match Int_map.find_opt s nfa.delta with
                | None -> acc
                | Some row ->
                  Sym_map.fold (fun _ dsts acc -> Int_set.union acc dsts) row acc)
              frontier Int_set.empty
          in
          let fresh = Int_set.diff next seen in
          explore fresh (Int_set.union seen fresh)
      in
      explore (Int_set.singleton nfa.start) (Int_set.singleton nfa.start)

    let is_empty nfa =
      Int_set.is_empty (Int_set.inter (reachable nfa) nfa.finals)

    (* BFS for a shortest accepted word. *)
    let shortest_word nfa =
      let start = eps_closure nfa (Int_set.singleton nfa.start) in
      let accepting states =
        not (Int_set.is_empty (Int_set.inter states nfa.finals))
      in
      if accepting start then Some []
      else begin
        let module Key = struct
          type t = Int_set.t
          let compare = Int_set.compare
        end in
        let module Seen = Set.Make (Key) in
        let alphabet = alphabet nfa in
        let queue = Queue.create () in
        Queue.add (start, []) queue;
        let seen = ref (Seen.singleton start) in
        let result = ref None in
        (try
           while not (Queue.is_empty queue) do
             let states, path = Queue.take queue in
             Sym_set.iter
               (fun sym ->
                 let next = step_set nfa states sym in
                 if not (Int_set.is_empty next) && not (Seen.mem next !seen) then begin
                   if accepting next then begin
                     result := Some (List.rev (sym :: path));
                     raise Exit
                   end;
                   seen := Seen.add next !seen;
                   Queue.add (next, sym :: path) queue
                 end)
               alphabet
           done
         with Exit -> ());
        !result
      end

    let accepts_empty_word nfa =
      let init = eps_closure nfa (Int_set.singleton nfa.start) in
      not (Int_set.is_empty (Int_set.inter init nfa.finals))

    let pp ppf nfa =
      Fmt.pf ppf "@[<v>NFA: %d states, start %d, finals {%a}@,"
        nfa.size nfa.start
        Fmt.(list ~sep:comma int) (Int_set.elements nfa.finals);
      Int_map.iter
        (fun s dsts ->
          Int_set.iter (fun d -> Fmt.pf ppf "  %d --eps--> %d@," s d) dsts)
        nfa.eps;
      Int_map.iter
        (fun s row ->
          Sym_map.iter
            (fun sym dsts ->
              Int_set.iter (fun d -> Fmt.pf ppf "  %d --%a--> %d@," s pp_sym sym d) dsts)
            row)
        nfa.delta;
      Fmt.pf ppf "@]"
  end

  (* ------------------------------------------------------------------ *)
  (* Deterministic automata                                              *)
  (* ------------------------------------------------------------------ *)

  module Dfa = struct
    type t = {
      size : int;
      start : int;
      finals : Int_set.t;
      delta : int Sym_map.t Int_map.t;  (* partial: missing entry = reject *)
      alphabet : Sym_set.t;
    }

    let step dfa state sym =
      match Int_map.find_opt state dfa.delta with
      | None -> None
      | Some row -> Sym_map.find_opt sym row

    let is_final dfa state = Int_set.mem state dfa.finals

    let accepts dfa word =
      let rec run state = function
        | [] -> is_final dfa state
        | sym :: rest ->
          (match step dfa state sym with
           | None -> false
           | Some next -> run next rest)
      in
      run dfa.start word

    let count_edges dfa =
      Int_map.fold (fun _ row acc -> acc + Sym_map.cardinal row) dfa.delta 0

    (* Subset construction. *)
    let of_nfa ?alphabet nfa =
      let alpha =
        match alphabet with
        | Some a -> Sym_set.union a (Nfa.alphabet nfa)
        | None -> Nfa.alphabet nfa
      in
      let module Key_map = Map.Make (struct
        type t = Int_set.t
        let compare = Int_set.compare
      end) in
      let ids = ref Key_map.empty in
      let next_id = ref 0 in
      let finals = ref Int_set.empty in
      let delta = ref Int_map.empty in
      let queue = Queue.create () in
      let intern states =
        match Key_map.find_opt states !ids with
        | Some id -> id
        | None ->
          let id = !next_id in
          incr next_id;
          ids := Key_map.add states id !ids;
          if not (Int_set.is_empty (Int_set.inter states nfa.Nfa.finals)) then
            finals := Int_set.add id !finals;
          Queue.add (states, id) queue;
          id
      in
      let start_set = Nfa.eps_closure nfa (Int_set.singleton nfa.Nfa.start) in
      let start = intern start_set in
      while not (Queue.is_empty queue) do
        let states, id = Queue.take queue in
        let row =
          Sym_set.fold
            (fun sym row ->
              let next = Nfa.step_set nfa states sym in
              if Int_set.is_empty next then row
              else Sym_map.add sym (intern next) row)
            alpha Sym_map.empty
        in
        if not (Sym_map.is_empty row) then delta := Int_map.add id row !delta
      done;
      { size = !next_id; start; finals = !finals; delta = !delta; alphabet = alpha }

    let of_regex ?alphabet regex = of_nfa ?alphabet (Nfa.glushkov regex)

    (* Make the transition function total over [alphabet] (adding a sink
       state if needed) — the "deterministic and complete" requirement of
       Figure 3 step (c). *)
    let complete ~alphabet dfa =
      let alpha = Sym_set.union alphabet dfa.alphabet in
      let missing =
        Int_map.cardinal dfa.delta < dfa.size
        || Int_map.exists (fun _ row -> Sym_map.cardinal row < Sym_set.cardinal alpha)
             dfa.delta
      in
      if not missing then { dfa with alphabet = alpha }
      else begin
        let sink = dfa.size in
        let full_row target =
          Sym_set.fold (fun sym row -> Sym_map.add sym target row) alpha Sym_map.empty
        in
        let used_sink = ref false in
        let delta = ref Int_map.empty in
        for s = 0 to dfa.size - 1 do
          let row =
            Option.value ~default:Sym_map.empty (Int_map.find_opt s dfa.delta)
          in
          let row =
            Sym_set.fold
              (fun sym row ->
                if Sym_map.mem sym row then row
                else begin
                  used_sink := true;
                  Sym_map.add sym sink row
                end)
              alpha row
          in
          delta := Int_map.add s row !delta
        done;
        if !used_sink then begin
          delta := Int_map.add sink (full_row sink) !delta;
          { size = dfa.size + 1; start = dfa.start; finals = dfa.finals;
            delta = !delta; alphabet = alpha }
        end
        else { dfa with delta = !delta; alphabet = alpha }
      end

    let is_complete dfa =
      let ok = ref true in
      for s = 0 to dfa.size - 1 do
        match Int_map.find_opt s dfa.delta with
        | None -> if not (Sym_set.is_empty dfa.alphabet) then ok := false
        | Some row ->
          Sym_set.iter
            (fun sym -> if not (Sym_map.mem sym row) then ok := false)
            dfa.alphabet
      done;
      !ok

    (* Complement over [alphabet]: complete then flip finals. *)
    let complement ~alphabet dfa =
      let dfa = complete ~alphabet dfa in
      let finals = ref Int_set.empty in
      for s = 0 to dfa.size - 1 do
        if not (Int_set.mem s dfa.finals) then finals := Int_set.add s !finals
      done;
      { dfa with finals = !finals }

    (* Pairwise product; [keep_final a b] decides acceptance of a pair.
       Both automata are completed over the union alphabet first so the
       product is itself complete. *)
    let product ~keep_final dfa1 dfa2 =
      let alpha = Sym_set.union dfa1.alphabet dfa2.alphabet in
      let dfa1 = complete ~alphabet:alpha dfa1 in
      let dfa2 = complete ~alphabet:alpha dfa2 in
      let module Pair_map = Map.Make (struct
        type t = int * int
        let compare = compare
      end) in
      let ids = ref Pair_map.empty in
      let next_id = ref 0 in
      let finals = ref Int_set.empty in
      let delta = ref Int_map.empty in
      let queue = Queue.create () in
      let intern ((s1, s2) as pair) =
        match Pair_map.find_opt pair !ids with
        | Some id -> id
        | None ->
          let id = !next_id in
          incr next_id;
          ids := Pair_map.add pair id !ids;
          if keep_final (is_final dfa1 s1) (is_final dfa2 s2) then
            finals := Int_set.add id !finals;
          Queue.add (pair, id) queue;
          id
      in
      let start = intern (dfa1.start, dfa2.start) in
      while not (Queue.is_empty queue) do
        let (s1, s2), id = Queue.take queue in
        let row =
          Sym_set.fold
            (fun sym row ->
              match step dfa1 s1 sym, step dfa2 s2 sym with
              | Some n1, Some n2 -> Sym_map.add sym (intern (n1, n2)) row
              | _ -> row)
            alpha Sym_map.empty
        in
        if not (Sym_map.is_empty row) then delta := Int_map.add id row !delta
      done;
      { size = !next_id; start; finals = !finals; delta = !delta; alphabet = alpha }

    let intersect dfa1 dfa2 = product ~keep_final:( && ) dfa1 dfa2
    let union dfa1 dfa2 = product ~keep_final:( || ) dfa1 dfa2

    let difference dfa1 dfa2 =
      product ~keep_final:(fun f1 f2 -> f1 && not f2) dfa1 dfa2

    let reachable dfa =
      let rec explore frontier seen =
        if Int_set.is_empty frontier then seen
        else
          let next =
            Int_set.fold
              (fun s acc ->
                match Int_map.find_opt s dfa.delta with
                | None -> acc
                | Some row -> Sym_map.fold (fun _ d acc -> Int_set.add d acc) row acc)
              frontier Int_set.empty
          in
          let fresh = Int_set.diff next seen in
          explore fresh (Int_set.union seen fresh)
      in
      explore (Int_set.singleton dfa.start) (Int_set.singleton dfa.start)

    let is_empty dfa =
      Int_set.is_empty (Int_set.inter (reachable dfa) dfa.finals)

    let shortest_word dfa =
      if is_final dfa dfa.start then Some []
      else begin
        let queue = Queue.create () in
        Queue.add (dfa.start, []) queue;
        let seen = ref (Int_set.singleton dfa.start) in
        let result = ref None in
        (try
           while not (Queue.is_empty queue) do
             let state, path = Queue.take queue in
             match Int_map.find_opt state dfa.delta with
             | None -> ()
             | Some row ->
               Sym_map.iter
                 (fun sym next ->
                   if not (Int_set.mem next !seen) then begin
                     if is_final dfa next then begin
                       result := Some (List.rev (sym :: path));
                       raise Exit
                     end;
                     seen := Int_set.add next !seen;
                     Queue.add (next, sym :: path) queue
                   end)
                 row
           done
         with Exit -> ());
        !result
      end

    (* Moore partition-refinement minimization. The input is completed
       first; the result is complete over the same alphabet. *)
    let minimize dfa =
      let dfa = complete ~alphabet:dfa.alphabet dfa in
      let reach = reachable dfa in
      (* class of each state: start with final / non-final *)
      let cls = Array.make dfa.size 0 in
      Int_set.iter (fun s -> cls.(s) <- 1) dfa.finals;
      let nclasses = ref 2 in
      let changed = ref true in
      let alpha = Sym_set.elements dfa.alphabet in
      while !changed do
        changed := false;
        (* signature of a state: its class plus the classes of successors *)
        let module Sig_map = Map.Make (struct
          type t = int * int list
          let compare = compare
        end) in
        let sigs = ref Sig_map.empty in
        let next_cls = Array.make dfa.size (-1) in
        let counter = ref 0 in
        Int_set.iter
          (fun s ->
            let succ_classes =
              List.map
                (fun sym ->
                  match step dfa s sym with
                  | Some d -> cls.(d)
                  | None -> -1)
                alpha
            in
            let key = (cls.(s), succ_classes) in
            let id =
              match Sig_map.find_opt key !sigs with
              | Some id -> id
              | None ->
                let id = !counter in
                incr counter;
                sigs := Sig_map.add key id !sigs;
                id
            in
            next_cls.(s) <- id)
          reach;
        if !counter <> !nclasses then changed := true;
        Int_set.iter
          (fun s -> if next_cls.(s) <> cls.(s) then changed := true)
          reach;
        Int_set.iter (fun s -> cls.(s) <- next_cls.(s)) reach;
        nclasses := !counter
      done;
      let size = !nclasses in
      let finals = ref Int_set.empty in
      Int_set.iter
        (fun s -> if is_final dfa s then finals := Int_set.add cls.(s) !finals)
        reach;
      let delta = ref Int_map.empty in
      Int_set.iter
        (fun s ->
          let row =
            List.fold_left
              (fun row sym ->
                match step dfa s sym with
                | Some d -> Sym_map.add sym cls.(d) row
                | None -> row)
              Sym_map.empty alpha
          in
          if not (Sym_map.is_empty row) then delta := Int_map.add cls.(s) row !delta)
        reach;
      { size; start = cls.(dfa.start); finals = !finals; delta = !delta;
        alphabet = dfa.alphabet }

    (* Language inclusion via emptiness of the difference. *)
    let subset dfa1 dfa2 = is_empty (difference dfa1 dfa2)

    (* Language equivalence via inclusion both ways. *)
    let equal_language dfa1 dfa2 = subset dfa1 dfa2 && subset dfa2 dfa1

    (* A word accepted by [dfa1] but not [dfa2], if any. *)
    let separating_word dfa1 dfa2 =
      shortest_word (difference dfa1 dfa2)

    (* Flat transition tables for the hot membership loop. Functional
       maps remain the construction representation (everything above is
       untouched); [Dense.compile] freezes a finished DFA into int
       arrays indexed by an external dense symbol coding [sym_id], and
       stepping then costs two array loads and no allocation. A missing
       transition and an unknown symbol both step to the reject state
       [-1], which is absorbing. *)
    module Dense = struct
      type dense = {
        size : int;
        width : int;          (* columns: distinct alphabet symbols *)
        start : int;
        cols : int array;     (* dense symbol id -> column, -1 = not in alphabet *)
        trans : int array;    (* state * width + column -> state, -1 = reject *)
        accept : Bytes.t;     (* bit per state *)
        syms : Sym.t array;   (* column -> symbol (diagnostics, inverse of cols) *)
      }

      let compile ~sym_id (dfa : t) =
        let syms = Array.of_list (Sym_set.elements dfa.alphabet) in
        let width = Array.length syms in
        let max_id =
          Array.fold_left (fun m s -> max m (sym_id s)) (-1) syms
        in
        let cols = Array.make (max_id + 1) (-1) in
        Array.iteri
          (fun col s ->
            let id = sym_id s in
            if id < 0 then invalid_arg "Dense.compile: negative symbol id";
            cols.(id) <- col)
          syms;
        let trans = Array.make (max 1 (dfa.size * width)) (-1) in
        Int_map.iter
          (fun s row ->
            Sym_map.iter
              (fun sym d -> trans.((s * width) + cols.(sym_id sym)) <- d)
              row)
          dfa.delta;
        let accept = Bytes.make ((dfa.size / 8) + 1) '\000' in
        Int_set.iter
          (fun s ->
            let b = s / 8 in
            Bytes.set accept b
              (Char.chr (Char.code (Bytes.get accept b) lor (1 lsl (s mod 8)))))
          dfa.finals;
        { size = dfa.size; width; start = dfa.start; cols; trans; accept; syms }

      let start d = d.start
      let size d = d.size
      let width d = d.width

      let is_final d s =
        s >= 0
        && Char.code (Bytes.get d.accept (s / 8)) land (1 lsl (s mod 8)) <> 0

      (* One step by dense symbol id; [-1] (reject) is absorbing. *)
      let step_id d s id =
        if s < 0 then -1
        else
          let cols = d.cols in
          let col = if id >= 0 && id < Array.length cols then cols.(id) else -1 in
          if col < 0 then -1 else d.trans.((s * d.width) + col)

      let step ~sym_id d s sym = step_id d s (sym_id sym)

      let accepts_ids d (ids : int array) =
        let s = ref d.start in
        let n = Array.length ids in
        let i = ref 0 in
        while !s >= 0 && !i < n do
          s := step_id d !s ids.(!i);
          incr i
        done;
        is_final d !s

      let accepts ~sym_id d word =
        let rec run s = function
          | [] -> is_final d s
          | sym :: rest -> if s < 0 then false else run (step ~sym_id d s sym) rest
        in
        run d.start word
    end

    let pp ppf dfa =
      Fmt.pf ppf "@[<v>DFA: %d states, start %d, finals {%a}@,"
        dfa.size dfa.start
        Fmt.(list ~sep:comma int) (Int_set.elements dfa.finals);
      Int_map.iter
        (fun s row ->
          Sym_map.iter
            (fun sym d -> Fmt.pf ppf "  %d --%a--> %d@," s pp_sym sym d)
            row)
        dfa.delta;
      Fmt.pf ppf "@]"
  end

  (* A regular expression is deterministic (1-unambiguous) iff its
     Glushkov automaton is deterministic — the XML Schema condition the
     paper leans on to avoid the exponential complement blow-up. *)
  let deterministic_regex regex =
    let nfa = Nfa.glushkov regex in
    let ok = ref true in
    Int_map.iter
      (fun _ row ->
        Sym_map.iter
          (fun _ dsts -> if Int_set.cardinal dsts > 1 then ok := false)
          row)
      nfa.Nfa.delta;
    !ok

  (* Random word sampling from a regex, used by oracles and generators.
     [fuel] bounds the number of star unrollings so sampling terminates. *)
  let sample_word ~rand_int ~fuel regex =
    let budget = ref fuel in
    let rec go (r : Sym.t Regex.t) =
      match r with
      | Empty -> None
      | Epsilon -> Some []
      | Sym a -> Some [ a ]
      | Seq (r1, r2) ->
        (match go r1, go r2 with
         | Some w1, Some w2 -> Some (w1 @ w2)
         | _ -> None)
      | Alt (r1, r2) ->
        let first, second = if rand_int 2 = 0 then (r1, r2) else (r2, r1) in
        (match go first with
         | Some w -> Some w
         | None -> go second)
      | Star r1 ->
        if !budget <= 0 then Some []
        else begin
          let n = rand_int 3 in
          let rec loop n acc =
            if n <= 0 then Some (List.concat (List.rev acc))
            else begin
              decr budget;
              match go r1 with
              | Some w -> loop (n - 1) (w :: acc)
              | None -> Some (List.concat (List.rev acc))
            end
          in
          loop n []
        end
      | Plus r1 ->
        (match go r1 with
         | None -> None
         | Some w ->
           (match go (Star r1) with
            | Some rest -> Some (w @ rest)
            | None -> Some w))
      | Opt r1 ->
        if rand_int 2 = 0 then Some []
        else (match go r1 with Some w -> Some w | None -> Some [])
    in
    go regex
end
