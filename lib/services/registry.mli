(** The service registry: name resolution, invocation with full
    accounting (counts, fees, logs), spending budgets, ACLs, optional
    contract checking of inputs/outputs against the declared types, and
    the [Execute.invoker] the rewriting engine consumes. *)

exception Unknown_service of string
exception Access_denied of { service : string; principal : string }
exception Contract_violation of {
  service : string;
  what : [ `Input | `Output ];
  violations : Axml_core.Validate.violation list;
}
exception Budget_exhausted of { service : string; budget : float }

type record = {
  seq : int;
  service : string;
  params : Axml_core.Document.forest;
  result : Axml_core.Document.forest;
  cost : float;
}

type check_mode =
  | Trust  (** never check — the paper's default; types come from WSDL *)
  | Check_input
  | Check_output
  | Check_both

type t

val create : ?principal:string -> unit -> t
val register : t -> Service.t -> unit
val register_all : t -> Service.t list -> unit
val find : t -> string -> Service.t option
val names : t -> string list

val set_check : t -> ?ctx:Axml_core.Validate.ctx -> check_mode -> unit
val set_budget : t -> float option -> unit
val set_principal : t -> string -> unit

val declare_all : t -> Axml_schema.Schema.t -> Axml_schema.Schema.t
(** Extend a schema with the WSDL declarations of every registered
    service (existing declarations win). *)

val invocation_count : t -> int
val total_cost : t -> float
val log : t -> record list
(** Chronological. *)

val reset_accounting : t -> unit

val invoke : t -> string -> Axml_core.Document.forest -> Axml_core.Document.forest
(** Safe to call from several domains concurrently: the budget gate,
    contract checks and accounting are serialized behind an internal
    mutex; the service behaviour runs outside it (and must itself be
    thread-safe to be used with a parallel pipeline).
    @raise Unknown_service, Access_denied, Budget_exhausted,
    Contract_violation as applicable. *)

val invoker : t -> Axml_core.Execute.invoker
