(* Service behaviours for tests, benchmarks and simulations:
   scripted replies, honest random output instances ("the adversary picks
   any output instance of f", Definition 4), and misbehaving services for
   failure injection. *)

module Schema = Axml_schema.Schema
module Document = Axml_core.Document
module Generate = Axml_core.Generate

(* Always return the same forest. *)
let constant forest : Service.behaviour = fun _params -> forest

(* Return the scripted replies in order; loops back to the start when
   exhausted (real services answer every call). *)
let scripted (replies : Document.forest list) : Service.behaviour =
  if replies = [] then invalid_arg "Oracle.scripted: no replies";
  let replies = Array.of_list replies in
  let i = ref 0 in
  fun _params ->
    let r = replies.(!i) in
    (* wrap in place: an unbounded counter would eventually overflow on
       long benchmark runs *)
    i := (!i + 1) mod Array.length replies;
    r

(* An honest random service: every call returns a fresh random output
   instance of [fname]'s declared type. *)
let honest_random ?(seed = 7) ?env schema fname : Service.behaviour =
  let g = Generate.create ~seed ?env schema in
  fun _params -> Generate.output_instance g fname

(* Echo a parameter back (handy for identity-style services). *)
let echo : Service.behaviour = fun params -> params

(* Failure injection. *)
let ill_typed forest : Service.behaviour = fun _params -> forest

let failing message : Service.behaviour = fun _params -> failwith message

(* Burn [delay_s] of (possibly virtual) time before answering like
   [inner]: exercises wall-clock timeout budgets without real sleeping
   when given a manual clock. *)
let timing_out ?(clock = Resilience.wall_clock) ~delay_s (inner : Service.behaviour) :
    Service.behaviour =
  fun params ->
    clock.Resilience.sleep delay_s;
    inner params

(* Fails every [period]-th call, otherwise behaves like [inner]. *)
let flaky ~period (inner : Service.behaviour) : Service.behaviour =
  let count = ref 0 in
  fun params ->
    incr count;
    if !count mod period = 0 then failwith "flaky service failure"
    else inner params

(* Count invocations of [inner] (for side-effect assertions). *)
let counting (inner : Service.behaviour) =
  let count = ref 0 in
  let behaviour params = incr count; inner params in
  (behaviour, fun () -> !count)
