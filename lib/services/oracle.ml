(* Service behaviours for tests, benchmarks and simulations:
   scripted replies, honest random output instances ("the adversary picks
   any output instance of f", Definition 4), and misbehaving services for
   failure injection.

   All built-ins are thread-safe — parallel enforcement pipelines call
   behaviours from several domains at once, so the stateful ones keep
   their state in [Atomic]s (or behind a mutex where the state is a
   whole generator). *)

module Schema = Axml_schema.Schema
module Document = Axml_core.Document
module Generate = Axml_core.Generate

(* Always return the same forest. *)
let constant forest : Service.behaviour = fun _params -> forest

(* Return the scripted replies in order; loops back to the start when
   exhausted (real services answer every call). *)
let scripted (replies : Document.forest list) : Service.behaviour =
  if replies = [] then invalid_arg "Oracle.scripted: no replies";
  let replies = Array.of_list replies in
  let n = Array.length replies in
  let i = Atomic.make 0 in
  fun _params ->
    (* wrap in place: an unbounded counter would eventually overflow on
       long benchmark runs. CAS loop so concurrent callers each consume
       a distinct script position. *)
    let rec claim () =
      let cur = Atomic.get i in
      if Atomic.compare_and_set i cur ((cur + 1) mod n) then cur
      else claim ()
    in
    replies.(claim ())

(* An honest random service: every call returns a fresh random output
   instance of [fname]'s declared type. The generator is one mutable
   PRNG stream, so calls are serialized behind a mutex. *)
let honest_random ?(seed = 7) ?env schema fname : Service.behaviour =
  let g = Generate.create ~seed ?env schema in
  let lock = Mutex.create () in
  fun _params ->
    Mutex.protect lock (fun () -> Generate.output_instance g fname)

(* Echo a parameter back (handy for identity-style services). *)
let echo : Service.behaviour = fun params -> params

(* Failure injection. *)
let ill_typed forest : Service.behaviour = fun _params -> forest

let failing message : Service.behaviour = fun _params -> failwith message

(* Burn [delay_s] of (possibly virtual) time before answering like
   [inner]: exercises wall-clock timeout budgets without real sleeping
   when given a manual clock. *)
let timing_out ?(clock = Resilience.wall_clock) ~delay_s (inner : Service.behaviour) :
    Service.behaviour =
  fun params ->
    clock.Resilience.sleep delay_s;
    inner params

(* A behaviour that follows a timeline: entries [(offset_s, b)] switch
   the active behaviour as the clock passes [origin + offset_s]. This is
   what the soak harness uses to drive brownouts and recoveries — the
   service itself degrades on schedule, and the resilience guard's
   breaker is expected to react. Reading the clock and picking the
   active entry is pure w.r.t. the oracle's own state, so no lock is
   needed; the inner behaviours keep their own thread-safety story. *)
let scheduled ?(clock = Resilience.wall_clock) ?origin entries :
    Service.behaviour =
  if entries = [] then invalid_arg "Oracle.scheduled: empty timeline";
  let entries =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) entries
  in
  (match entries with
   | (t0, _) :: _ when t0 > 0. ->
     invalid_arg "Oracle.scheduled: the timeline must start at offset 0"
   | _ -> ());
  let origin =
    match origin with Some t -> t | None -> clock.Resilience.now ()
  in
  fun params ->
    let elapsed = clock.Resilience.now () -. origin in
    let rec active current = function
      | (t, b) :: rest when t <= elapsed -> active b rest
      | _ -> current
    in
    let b = active (snd (List.hd entries)) (List.tl entries) in
    b params

(* Fails every [period]-th call, otherwise behaves like [inner]. *)
let flaky ~period (inner : Service.behaviour) : Service.behaviour =
  let count = Atomic.make 0 in
  fun params ->
    if (Atomic.fetch_and_add count 1 + 1) mod period = 0 then
      failwith "flaky service failure"
    else inner params

(* Count invocations of [inner] (for side-effect assertions). *)
let counting (inner : Service.behaviour) =
  let count = Atomic.make 0 in
  let behaviour params = Atomic.incr count; inner params in
  (behaviour, fun () -> Atomic.get count)
