(* Invocation policies for the live exchange path: the paper's Schema
   Enforcement module materializes documents by calling real Web
   services (Sec. 3.1, Fig. 3 steps 19-23), and real services time out,
   crash and flap. This module wraps any [Service.behaviour] (or a whole
   [Execute.invoker]) with per-service policies:

     - bounded retries with exponential backoff + jitter,
     - a wall-clock timeout budget covering all attempts and sleeps,
     - a per-service circuit breaker with half-open probing,

   and keeps per-service counters so batch pipelines can report retry /
   breaker activity. Giving up is reported through the engine's
   structured channel, [Execute.Invocation_failed], which the executor
   turns into a typed [Service_error] failure instead of a crash. *)

module Document = Axml_core.Document
module Execute = Axml_core.Execute
module Metrics = Axml_obs.Metrics
module Trace = Axml_obs.Trace

(* ------------------------------------------------------------------ *)
(* Clocks                                                              *)
(* ------------------------------------------------------------------ *)

(* Injectable so tests and benches run deterministically and without
   actually sleeping. *)
type clock = {
  now : unit -> float;
  sleep : float -> unit;
}

let wall_clock = { now = Unix.gettimeofday; sleep = Unix.sleepf }

let manual_clock ?(start = 0.) () =
  let t = ref start in
  { now = (fun () -> !t); sleep = (fun d -> if d > 0. then t := !t +. d) }

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

type policy = {
  max_retries : int;
  backoff_s : float;
  backoff_factor : float;
  max_backoff_s : float;
  jitter : float;
  timeout_s : float option;
  breaker_threshold : int;
  breaker_cooldown_s : float;
}

let default_policy = {
  max_retries = 2;
  backoff_s = 0.05;
  backoff_factor = 2.0;
  max_backoff_s = 2.0;
  jitter = 0.1;
  timeout_s = None;
  breaker_threshold = 5;
  breaker_cooldown_s = 5.0;
}

let policy ?(max_retries = default_policy.max_retries)
    ?(backoff_s = default_policy.backoff_s)
    ?(backoff_factor = default_policy.backoff_factor)
    ?(max_backoff_s = default_policy.max_backoff_s)
    ?(jitter = default_policy.jitter) ?timeout_s
    ?(breaker_threshold = default_policy.breaker_threshold)
    ?(breaker_cooldown_s = default_policy.breaker_cooldown_s) () =
  if max_retries < 0 then invalid_arg "Resilience.policy: max_retries < 0";
  if breaker_threshold < 1 then
    invalid_arg "Resilience.policy: breaker_threshold < 1";
  { max_retries; backoff_s; backoff_factor; max_backoff_s; jitter; timeout_s;
    breaker_threshold; breaker_cooldown_s }

(* ------------------------------------------------------------------ *)
(* Failure causes                                                      *)
(* ------------------------------------------------------------------ *)

exception Circuit_open of { fname : string; retry_at_s : float }
exception Timed_out of { fname : string; elapsed_s : float; budget_s : float }

let () =
  Printexc.register_printer (function
    | Circuit_open { fname; retry_at_s } ->
      Some
        (Printf.sprintf "circuit breaker open for service %s (retry at t=%.3fs)"
           fname retry_at_s)
    | Timed_out { fname; elapsed_s; budget_s } ->
      Some
        (Printf.sprintf
           "service %s exceeded its timeout budget (%.3fs elapsed, %.3fs \
            allowed)"
           fname elapsed_s budget_s)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

type stats = {
  calls : int;            (* guarded invocations entered *)
  attempts : int;         (* physical behaviour calls *)
  retries : int;          (* attempts beyond the first, per call *)
  successes : int;
  gave_up : int;          (* calls that exhausted their policy *)
  timeouts : int;         (* calls abandoned on budget exhaustion *)
  trips : int;            (* closed/half-open -> open transitions *)
  short_circuited : int;  (* calls rejected by an open breaker *)
}

let zero_stats = {
  calls = 0; attempts = 0; retries = 0; successes = 0; gave_up = 0;
  timeouts = 0; trips = 0; short_circuited = 0;
}

let add_stats a b = {
  calls = a.calls + b.calls;
  attempts = a.attempts + b.attempts;
  retries = a.retries + b.retries;
  successes = a.successes + b.successes;
  gave_up = a.gave_up + b.gave_up;
  timeouts = a.timeouts + b.timeouts;
  trips = a.trips + b.trips;
  short_circuited = a.short_circuited + b.short_circuited;
}

let diff_stats ~before after = {
  calls = after.calls - before.calls;
  attempts = after.attempts - before.attempts;
  retries = after.retries - before.retries;
  successes = after.successes - before.successes;
  gave_up = after.gave_up - before.gave_up;
  timeouts = after.timeouts - before.timeouts;
  trips = after.trips - before.trips;
  short_circuited = after.short_circuited - before.short_circuited;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "calls %d; attempts %d; retries %d; successes %d; gave up %d; timeouts \
     %d; breaker trips %d; short-circuited %d"
    s.calls s.attempts s.retries s.successes s.gave_up s.timeouts s.trips
    s.short_circuited

(* ------------------------------------------------------------------ *)
(* The guard                                                           *)
(* ------------------------------------------------------------------ *)

type breaker = Closed of int (* consecutive failures *) | Open_until of float | Half_open

type breaker_state = [ `Closed | `Open | `Half_open ]

(* Registry children for one guarded service, created once per service
   name; the per-guard [stats] window stays in [st] (the public
   accessors below are views over it), while these feed the
   process-wide registry. *)
type registry_handles = {
  mc_calls : Metrics.counter;
  mc_attempts : Metrics.counter;
  mc_retries : Metrics.counter;
  mc_successes : Metrics.counter;
  mc_gave_up : Metrics.counter;
  mc_timeouts : Metrics.counter;
  mc_trips : Metrics.counter;
  mc_short : Metrics.counter;
  mg_breaker : Metrics.gauge;
}

let registry_handles fname =
  let c help name =
    Metrics.counter ~help ~labels:[ ("service", fname) ] name
  in
  { mc_calls = c "Guarded invocations entered" "axml_resilience_calls_total";
    mc_attempts = c "Physical behaviour calls" "axml_resilience_attempts_total";
    mc_retries = c "Attempts beyond the first" "axml_resilience_retries_total";
    mc_successes = c "Guarded invocations that succeeded" "axml_resilience_successes_total";
    mc_gave_up = c "Calls that exhausted their policy" "axml_resilience_gave_up_total";
    mc_timeouts = c "Calls abandoned on budget exhaustion" "axml_resilience_timeouts_total";
    mc_trips = c "Closed/half-open to open transitions" "axml_resilience_breaker_trips_total";
    mc_short = c "Calls rejected by an open breaker" "axml_resilience_short_circuits_total";
    mg_breaker =
      Metrics.gauge ~help:"Breaker state: 0 closed, 1 half-open, 2 open"
        ~labels:[ ("service", fname ) ] "axml_resilience_breaker_state" }

type entry = {
  e_name : string;
  mutable st : stats;
  mutable breaker : breaker;
  m : registry_handles;
}

type t = {
  pol : policy;
  clock : clock;
  rng : Random.State.t;
  services : (string, entry) Hashtbl.t;
  lock : Mutex.t;
    (* guards [services], every entry's [st]/[breaker], and [rng].
       Behaviour calls and sleeps happen OUTSIDE the lock: only the
       (cheap) bookkeeping transitions are serialized, so a slow
       service on one domain never blocks another domain's guard.
       This is what makes one guard shareable by all the worker
       domains of a parallel pipeline — and why a breaker tripped by
       one domain short-circuits the others. *)
}

let create ?(policy = default_policy) ?(clock = wall_clock) ?(seed = 0x5e51) () =
  { pol = policy; clock; rng = Random.State.make [| seed |];
    services = Hashtbl.create 8; lock = Mutex.create () }

let locked t f = Mutex.protect t.lock f

(* Caller holds [t.lock]. *)
let entry t fname =
  match Hashtbl.find_opt t.services fname with
  | Some e -> e
  | None ->
    let e =
      { e_name = fname; st = zero_stats; breaker = Closed 0;
        m = registry_handles fname }
    in
    Hashtbl.add t.services fname e;
    e

let stats t fname =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.services fname with
  | Some e -> e.st
  | None -> zero_stats

let total t =
  locked t @@ fun () ->
  Hashtbl.fold (fun _ e acc -> add_stats acc e.st) t.services zero_stats

let reset_stats t =
  locked t @@ fun () ->
  Hashtbl.iter (fun _ e -> e.st <- zero_stats) t.services

let breaker_state t fname : breaker_state =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.services fname with
  | None | Some { breaker = Closed _; _ } -> `Closed
  | Some ({ breaker = Open_until until; _ } as e) ->
    if t.clock.now () >= until then begin
      (* cooldown elapsed: next call will be the half-open probe *)
      e.breaker <- Half_open;
      `Half_open
    end
    else `Open
  | Some { breaker = Half_open; _ } -> `Half_open

let bump e f = e.st <- f e.st

(* Record a failed attempt on the breaker; returns true when this
   failure trips the circuit open. *)
let breaker_trip t e =
  e.breaker <- Open_until (t.clock.now () +. t.pol.breaker_cooldown_s);
  bump e (fun s -> { s with trips = s.trips + 1 });
  Metrics.inc e.m.mc_trips;
  Metrics.set e.m.mg_breaker 2.;
  if Trace.enabled Trace.default then
    Trace.emit (Breaker { fname = e.e_name; transition = "trip" })

let breaker_fail t e =
  match e.breaker with
  | Half_open ->
    (* the probe failed: straight back to open *)
    breaker_trip t e;
    true
  | Closed n ->
    let n = n + 1 in
    if n >= t.pol.breaker_threshold then begin
      breaker_trip t e;
      true
    end
    else begin
      e.breaker <- Closed n;
      false
    end
  | Open_until _ -> false (* shouldn't attempt while open *)

let breaker_success e =
  (match e.breaker with
   | Closed _ -> ()
   | Half_open | Open_until _ ->
     if Trace.enabled Trace.default then
       Trace.emit (Breaker { fname = e.e_name; transition = "close" }));
  e.breaker <- Closed 0;
  Metrics.set e.m.mg_breaker 0.

(* Caller holds [t.lock] ([t.rng] is guarded state). *)
let jittered t base =
  if t.pol.jitter <= 0. then base
  else
    let spread = base *. t.pol.jitter in
    base +. (Random.State.float t.rng (2. *. spread)) -. spread

(* [guard t ~name behaviour params] runs [behaviour params] under the
   policy. On give-up it raises [Execute.Invocation_failed] so the
   executor (or any caller) receives a structured report.

   Locking discipline: every stats bump and breaker transition happens
   in a short [locked] section; the behaviour call and the backoff
   sleep do not hold the lock. [Mutex.protect] releases the lock when
   a section raises, so the give-up raises may happen inside one. *)
let guard t ~name behaviour params =
  let start = t.clock.now () in
  let e =
    locked t @@ fun () ->
    let e = entry t name in
    bump e (fun s -> { s with calls = s.calls + 1 });
    Metrics.inc e.m.mc_calls;
    (* breaker gate *)
    (match e.breaker with
     | Open_until until when t.clock.now () < until ->
       bump e (fun s -> { s with short_circuited = s.short_circuited + 1 });
       Metrics.inc e.m.mc_short;
       if Trace.enabled Trace.default then
         Trace.emit (Breaker { fname = name; transition = "short-circuit" });
       raise
         (Execute.Invocation_failed
            { fname = name; attempts = 0;
              cause = Circuit_open { fname = name; retry_at_s = until } })
     | Open_until _ ->
       e.breaker <- Half_open;
       Metrics.set e.m.mg_breaker 1.;
       if Trace.enabled Trace.default then
         Trace.emit (Breaker { fname = name; transition = "half-open" })
     | Closed _ | Half_open -> ());
    e
  in
  let deadline =
    match t.pol.timeout_s with None -> infinity | Some b -> start +. b
  in
  let over_budget () = t.clock.now () > deadline in
  let give_up ~attempts ~timed_out cause =
    locked t (fun () ->
        bump e (fun s ->
            { s with
              gave_up = s.gave_up + 1;
              timeouts = (if timed_out then s.timeouts + 1 else s.timeouts) }));
    Metrics.inc e.m.mc_gave_up;
    if timed_out then Metrics.inc e.m.mc_timeouts;
    raise (Execute.Invocation_failed { fname = name; attempts; cause })
  in
  let rec attempt n backoff =
    locked t (fun () ->
        bump e (fun s ->
            { s with
              attempts = s.attempts + 1;
              retries = (if n > 1 then s.retries + 1 else s.retries) }));
    Metrics.inc e.m.mc_attempts;
    if n > 1 then Metrics.inc e.m.mc_retries;
    if Trace.enabled Trace.default then
      Trace.emit (Attempt { fname = name; number = n });
    match behaviour params with
    | result ->
      if over_budget () then begin
        (* the call answered too late: the budget is the contract *)
        locked t (fun () -> ignore (breaker_fail t e));
        give_up ~attempts:n ~timed_out:true
          (Timed_out
             { fname = name; elapsed_s = t.clock.now () -. start;
               budget_s = deadline -. start })
      end
      else begin
        locked t (fun () ->
            breaker_success e;
            bump e (fun s -> { s with successes = s.successes + 1 }));
        Metrics.inc e.m.mc_successes;
        result
      end
    | exception ((Stack_overflow | Out_of_memory) as fatal) -> raise fatal
    | exception (Execute.Invocation_failed _ as inner) ->
      (* an already-guarded inner invoker gave up: pass the report on *)
      raise inner
    | exception cause ->
      let tripped = locked t (fun () -> breaker_fail t e) in
      if tripped || n > t.pol.max_retries then
        give_up ~attempts:n ~timed_out:false cause
      else if over_budget () then
        give_up ~attempts:n ~timed_out:true
          (Timed_out
             { fname = name; elapsed_s = t.clock.now () -. start;
               budget_s = deadline -. start })
      else begin
        let pause =
          locked t (fun () ->
              Float.min (jittered t backoff) (deadline -. t.clock.now ()))
        in
        if Trace.enabled Trace.default then
          Trace.emit (Retry { fname = name; attempt = n; backoff_s = Float.max pause 0. });
        if pause > 0. then t.clock.sleep pause;
        if over_budget () then
          give_up ~attempts:n ~timed_out:true
            (Timed_out
               { fname = name; elapsed_s = t.clock.now () -. start;
                 budget_s = deadline -. start })
        else
          attempt (n + 1)
            (Float.min (backoff *. t.pol.backoff_factor) t.pol.max_backoff_s)
      end
  in
  attempt 1 t.pol.backoff_s

let wrap_behaviour t ~name (behaviour : Service.behaviour) : Service.behaviour =
  fun params -> guard t ~name behaviour params

let wrap_service t (service : Service.t) =
  { service with Service.behaviour = wrap_behaviour t ~name:service.Service.name service.Service.behaviour }

let wrap_invoker t (invoker : Execute.invoker) : Execute.invoker =
  fun name params -> guard t ~name (invoker name) params
