(* The service registry: name -> service resolution, invocation with
   full accounting (invocation count, fees, side effects), optional
   contract checking of inputs and outputs against the declared types,
   and fault injection for the failure tests. *)

module Schema = Axml_schema.Schema
module Document = Axml_core.Document
module Validate = Axml_core.Validate

exception Unknown_service of string
exception Access_denied of { service : string; principal : string }
exception Contract_violation of { service : string; what : [ `Input | `Output ];
                                  violations : Validate.violation list }
exception Budget_exhausted of { service : string; budget : float }

type record = {
  seq : int;
  service : string;
  params : Document.forest;
  result : Document.forest;
  cost : float;
}

type check_mode =
  | Trust            (* never check (the paper's default: types come from WSDL) *)
  | Check_input
  | Check_output
  | Check_both

type t = {
  services : (string, Service.t) Hashtbl.t;
  lock : Mutex.t;
    (* guards the accounting fields and the contract checks below, so
       [invoke] is safe to call from several domains concurrently
       (parallel pipelines do); behaviours run outside the lock *)
  mutable log : record list;  (* newest first *)
  mutable invocation_count : int;
  mutable total_cost : float;
  mutable budget : float option;   (* spending cap, if any *)
  mutable check : check_mode;
  mutable check_ctx : Validate.ctx option;  (* schema for contract checks *)
  mutable principal : string;  (* the caller identity for ACL checks *)
}

let create ?(principal = "anonymous") () = {
  services = Hashtbl.create 16;
  lock = Mutex.create ();
  log = [];
  invocation_count = 0;
  total_cost = 0.;
  budget = None;
  check = Trust;
  check_ctx = None;
  principal;
}

let register t (service : Service.t) =
  Hashtbl.replace t.services service.Service.name service

let register_all t services = List.iter (register t) services

let find t name = Hashtbl.find_opt t.services name

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.services [] |> List.sort compare

let set_check t ?ctx mode =
  t.check <- mode;
  (match ctx with Some c -> t.check_ctx <- Some c | None -> ())

let set_budget t budget = t.budget <- budget
let set_principal t principal = t.principal <- principal

(* Declarations of every registered service, to extend a schema with
   (the "WSDL description for each service being used" of Section 4). *)
let declare_all t schema =
  Hashtbl.fold
    (fun name service schema ->
      match Schema.find_function schema name with
      | Some _ -> schema  (* already declared *)
      | None -> Schema.add_function schema (Service.declaration service))
    t.services schema

let invocation_count t = t.invocation_count
let total_cost t = t.total_cost
let log t = List.rev t.log

let reset_accounting t =
  t.log <- [];
  t.invocation_count <- 0;
  t.total_cost <- 0.

(* Invoke [name]: the registry is an [Execute.invoker]. The budget
   gate and contract checks run under the lock (the check contexts
   memoize DFAs mutably), the behaviour itself does not — a slow
   service never serializes the other domains. *)
let invoke t name params =
  match find t name with
  | None -> raise (Unknown_service name)
  | Some service ->
    if not (Service.allows service t.principal) then
      raise (Access_denied { service = name; principal = t.principal });
    Mutex.protect t.lock (fun () ->
        (match t.budget with
         | Some budget when t.total_cost +. service.Service.cost > budget ->
           raise (Budget_exhausted { service = name; budget })
         | Some _ | None -> ());
        (match t.check, t.check_ctx with
         | (Check_input | Check_both), Some ctx ->
           (match Validate.input_instance ctx name params with
            | [] -> ()
            | violations ->
              raise
                (Contract_violation { service = name; what = `Input; violations }))
         | _ -> ()));
    let result = service.Service.behaviour params in
    Mutex.protect t.lock (fun () ->
        (match t.check, t.check_ctx with
         | (Check_output | Check_both), Some ctx ->
           (match Validate.output_instance ctx name result with
            | [] -> ()
            | violations ->
              raise
                (Contract_violation { service = name; what = `Output; violations }))
         | _ -> ());
        t.invocation_count <- t.invocation_count + 1;
        t.total_cost <- t.total_cost +. service.Service.cost;
        t.log <-
          { seq = t.invocation_count; service = name; params; result;
            cost = service.Service.cost }
          :: t.log);
    result

let invoker t : Axml_core.Execute.invoker = fun name params -> invoke t name params
