(** Invocation policies for the live exchange path.

    The paper's Schema Enforcement module materializes documents by
    calling real Web services (Sec. 3.1, Fig. 3 steps 19-23) — and real
    services time out, crash and flap. A {!t} wraps any
    {!Service.behaviour} (or a whole [Execute.invoker]) with a
    per-service policy:

    - bounded retries with exponential backoff and jitter;
    - an optional wall-clock timeout budget covering {e all} attempts
      and backoff sleeps of one guarded call;
    - a per-service circuit breaker: after [breaker_threshold]
      consecutive failures the service is short-circuited for
      [breaker_cooldown_s] seconds, then a single half-open probe
      decides between closing the circuit and re-opening it.

    Giving up never raises an unstructured exception: the guard raises
    [Execute.Invocation_failed] carrying the service name, the number of
    physical attempts, and the final cause ({!Circuit_open},
    {!Timed_out}, or the behaviour's own exception). The executor turns
    this into a typed [Service_error] failure.

    {b Domain safety.} One guard may be shared by several domains (a
    parallel enforcement pipeline does exactly this): every stats bump
    and breaker transition is serialized behind an internal mutex,
    while behaviour calls and backoff sleeps run outside it. Breaker
    state is therefore global across domains — a circuit tripped by
    one worker short-circuits the others until the cooldown elapses.
    The wrapped behaviour itself must be thread-safe if it touches
    shared mutable state. *)

(** {1 Clocks} *)

type clock = {
  now : unit -> float;
  sleep : float -> unit;
}
(** Injectable time source, so tests and benches are deterministic and
    never actually sleep. *)

val wall_clock : clock
(** [Unix.gettimeofday] / [Unix.sleepf]. *)

val manual_clock : ?start:float -> unit -> clock
(** A virtual clock starting at [start] (default [0.]); [sleep d]
    advances it by [d] instantly. *)

(** {1 Policies} *)

type policy = {
  max_retries : int;        (** extra attempts after the first (default 2) *)
  backoff_s : float;        (** first backoff pause (default 0.05) *)
  backoff_factor : float;   (** backoff growth per retry (default 2.0) *)
  max_backoff_s : float;    (** backoff ceiling (default 2.0) *)
  jitter : float;           (** +/- fraction of each pause (default 0.1) *)
  timeout_s : float option; (** wall-clock budget per guarded call,
                                covering all attempts and sleeps
                                (default [None] = unbounded) *)
  breaker_threshold : int;  (** consecutive failures that trip the
                                breaker (default 5) *)
  breaker_cooldown_s : float; (** open duration before the half-open
                                  probe (default 5.0) *)
}

val default_policy : policy

val policy :
  ?max_retries:int -> ?backoff_s:float -> ?backoff_factor:float ->
  ?max_backoff_s:float -> ?jitter:float -> ?timeout_s:float ->
  ?breaker_threshold:int -> ?breaker_cooldown_s:float -> unit -> policy
(** @raise Invalid_argument when [max_retries < 0] or
    [breaker_threshold < 1]. *)

(** {1 Failure causes}

    Carried as the [cause] of [Execute.Invocation_failed]; both have
    registered [Printexc] printers. *)

exception Circuit_open of { fname : string; retry_at_s : float }
(** The call was rejected without attempting: the breaker is open until
    [retry_at_s] (in the guard's clock). [attempts = 0] in the report. *)

exception Timed_out of { fname : string; elapsed_s : float; budget_s : float }
(** The wall-clock budget ran out — including when the last attempt
    {e succeeded} but answered past the deadline (a late answer on a
    live exchange path is a failure). *)

(** {1 Counters} *)

type stats = {
  calls : int;            (** guarded invocations entered *)
  attempts : int;         (** physical behaviour calls *)
  retries : int;          (** attempts beyond each call's first *)
  successes : int;
  gave_up : int;          (** calls that exhausted their policy *)
  timeouts : int;         (** give-ups caused by budget exhaustion *)
  trips : int;            (** closed/half-open to open transitions *)
  short_circuited : int;  (** calls rejected by an open breaker *)
}

val zero_stats : stats
(** All counters at zero. *)

val add_stats : stats -> stats -> stats
(** Pointwise sum, e.g. to aggregate several services. *)

val diff_stats : before:stats -> stats -> stats
(** Counter deltas: the guard activity between two snapshots. *)

val pp_stats : stats Fmt.t
(** One-line human rendering of the counters. *)

(** {1 Guards} *)

type t
(** Shared policy + per-service breakers and counters. *)

val create : ?policy:policy -> ?clock:clock -> ?seed:int -> unit -> t
(** [seed] drives the jitter PRNG (deterministic by default). *)

val guard :
  t -> name:string -> (Axml_core.Document.forest -> Axml_core.Document.forest) ->
  Axml_core.Document.forest -> Axml_core.Document.forest
(** [guard t ~name behaviour params] runs [behaviour params] under the
    policy.
    @raise Axml_core.Execute.Invocation_failed on give-up. *)

val wrap_behaviour : t -> name:string -> Service.behaviour -> Service.behaviour
(** [wrap_behaviour t ~name b] is [b] guarded under [name]'s policy
    and breaker — a drop-in replacement wherever a
    {!Service.behaviour} is expected. *)

val wrap_service : t -> Service.t -> Service.t
(** A service equal to the original except that its behaviour is
    guarded (under the service's own name); the declared signature and
    metadata are untouched. *)

val wrap_invoker : t -> Axml_core.Execute.invoker -> Axml_core.Execute.invoker
(** Guards a whole invoker: each function name invoked through it gets
    its own breaker and counters in [t]. This is what
    [Axml_peer.Enforcement] applies when a [resilience] guard is
    configured. *)

(** {1 Introspection} *)

val stats : t -> string -> stats
(** Counters of one service ([zero_stats] if never guarded). *)

val total : t -> stats
(** Sum over all guarded services. *)

val reset_stats : t -> unit
(** Reset counters; breaker states are kept. *)

type breaker_state = [ `Closed | `Open | `Half_open ]

val breaker_state : t -> string -> breaker_state
(** Current breaker state of a service (consults the clock: an open
    breaker whose cooldown has elapsed reports [`Half_open]). *)
