(** Service behaviours for tests, benchmarks and simulations: scripted
    replies, honest random output instances ("the adversary picks any
    output instance of f", Definition 4), and misbehaving services for
    failure injection.

    All built-ins are thread-safe: parallel enforcement pipelines call
    behaviours from several domains concurrently, so the stateful ones
    ({!scripted}, {!flaky}, {!counting}) use atomics and
    {!honest_random} serializes its generator behind a mutex. A
    hand-rolled behaviour used with a parallel pipeline must offer the
    same guarantee. *)

val constant : Axml_core.Document.forest -> Service.behaviour

val scripted : Axml_core.Document.forest list -> Service.behaviour
(** Replies in order, looping back to the start when exhausted.
    @raise Invalid_argument on an empty script. *)

val honest_random :
  ?seed:int -> ?env:Axml_schema.Schema.env -> Axml_schema.Schema.t ->
  string -> Service.behaviour
(** Every call returns a fresh random output instance of the named
    function's declared type. *)

val echo : Service.behaviour

(** {1 Failure injection} *)

val ill_typed : Axml_core.Document.forest -> Service.behaviour
(** Always returns the given (presumably contract-violating) forest. *)

val failing : string -> Service.behaviour
(** Raises [Failure] on every call. *)

val flaky : period:int -> Service.behaviour -> Service.behaviour
(** Fails every [period]-th call. *)

val timing_out :
  ?clock:Resilience.clock -> delay_s:float -> Service.behaviour ->
  Service.behaviour
(** Burns [delay_s] on the clock (default {!Resilience.wall_clock})
    before answering like the inner behaviour — for exercising timeout
    budgets; pair with {!Resilience.manual_clock} to avoid real
    sleeps. *)

val scheduled :
  ?clock:Resilience.clock -> ?origin:float ->
  (float * Service.behaviour) list -> Service.behaviour
(** [scheduled entries] follows a fault-injection timeline: each entry
    [(offset_s, b)] makes [b] the active behaviour once the clock passes
    [origin +. offset_s] (sorted internally; [origin] defaults to the
    clock's value at creation). This is how a soak run drives the
    adversarial environment — a service that is honest during warm-up,
    slow during a brownout, dead at its bottom, and honest again for
    recovery — while the {!Resilience} breaker reacts on its own
    schedule.
    @raise Invalid_argument on an empty timeline or one whose earliest
    entry is after offset [0] (the behaviour before the first switch
    point would be undefined). *)

val counting : Service.behaviour -> Service.behaviour * (unit -> int)
(** Count the calls that reach the inner behaviour. *)
