(** Process-wide metrics registry.

    One registry holds a set of {e metric families} — a family is a
    (name, type, help) triple — and each family holds one {e child} per
    distinct label set. Three metric types are supported:

    - {b counters}: monotonically increasing integers ([inc]);
    - {b gauges}: floats that go up and down ([set] / [add]);
    - {b histograms}: cumulative-bucket latency/size distributions
      ([observe] / [time]).

    Registration (creating a family or child) takes a mutex; after that,
    every update is a single [Atomic] operation, so instrumented hot
    paths stay lock-free and the registry is safe to share across
    domains on OCaml 5. Reads ([value] accessors and the exporters) are
    lock-free too and may observe a metric mid-update only in the sense
    of seeing a slightly stale value, never a torn one (the histogram
    [sum] is a CAS loop over a float bit pattern).

    Time is injectable: [time] and every timestamp derive from the
    registry's clock (default [Unix.gettimeofday]), so tests and
    benchmarks can substitute a manual clock with [set_clock].

    Exporters produce the Prometheus text exposition format
    ([to_prometheus]) and a JSON rendering of the same data ([to_json]);
    both order families and children deterministically so exports are
    diffable. *)

(** {1 Registries} *)

type t
(** A metrics registry: a mutable collection of metric families. *)

val create : ?clock:(unit -> float) -> unit -> t
(** [create ()] is a fresh, empty registry. [clock] (seconds, arbitrary
    epoch; default [Unix.gettimeofday]) is used by {!time}. *)

val default : t
(** The process-wide default registry. Library instrumentation
    (contract caches, resilience guards, the enforcement pipeline)
    registers here; [?registry] arguments default to it. *)

val set_clock : t -> (unit -> float) -> unit
(** [set_clock t now] replaces the registry's clock. Affects every
    {!time} call on histograms of [t], including ones created before. *)

val now : t -> float
(** [now t] reads the registry's current clock. *)

val reset : t -> unit
(** [reset t] zeroes every child of every family of [t] (counts, sums,
    buckets, gauge values). Families and children remain registered, so
    handles stay valid. Meant for tests and for benchmarks that isolate
    phases; production code should never reset. *)

(** {1 Labels}

    Labels are [(key, value)] pairs. Keys must match
    [[a-zA-Z_][a-zA-Z0-9_]*]; values are arbitrary strings (escaped on
    export). Label lists are sorted by key at registration, so the
    order given does not matter. Registering the same family name with
    two different metric types, or an invalid metric/label name, raises
    [Invalid_argument]. *)

type labels = (string * string) list

(** {1 Counters} *)

type counter
(** A handle on one counter child (one family + one label set). *)

val counter : ?registry:t -> ?help:string -> ?labels:labels -> string -> counter
(** [counter name] registers (or looks up) the counter family [name] and
    returns the child for [labels] (default: no labels). Idempotent:
    the same name and labels yield a handle on the same underlying
    value. [help] is kept from the first registration. *)

val inc : ?by:int -> counter -> unit
(** [inc c] adds [by] (default 1) atomically. [by] must be [>= 0]:
    counters are monotone; negative increments raise
    [Invalid_argument]. *)

val counter_value : counter -> int
(** Current value — for tests and thin compatibility views. *)

(** {1 Gauges} *)

type gauge
(** A handle on one gauge child. *)

val gauge : ?registry:t -> ?help:string -> ?labels:labels -> string -> gauge
(** Registers (or looks up) a gauge family and returns the child for
    [labels]. Same idempotence rules as {!counter}. *)

val set : gauge -> float -> unit
(** [set g v] stores [v] atomically. *)

val add : gauge -> float -> unit
(** [add g d] adds [d] (possibly negative) with a CAS loop. *)

val gauge_value : gauge -> float
(** Current value. *)

(** {1 Histograms} *)

type histogram
(** A handle on one histogram child: bucket counts, sum and count. *)

val default_buckets : float list
(** Latency-oriented upper bounds in seconds:
    [5us; 25us; 100us; 500us; 2.5ms; 10ms; 50ms; 250ms; 1s]. A [+Inf]
    bucket is always appended implicitly. *)

val histogram :
  ?registry:t -> ?help:string -> ?buckets:float list -> ?labels:labels ->
  string -> histogram
(** Registers (or looks up) a histogram family with the given bucket
    upper bounds (sorted and deduplicated; default {!default_buckets}).
    [buckets] is fixed by the first registration of the family. *)

val observe : histogram -> float -> unit
(** [observe h v] records [v]: increments the first bucket whose upper
    bound is [>= v] (or the implicit [+Inf] bucket), the total count,
    and adds [v] to the sum — each a single atomic update. *)

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f ()] and observes its wall-clock duration in
    seconds, measured with the owning registry's clock. The duration is
    observed even if [f] raises. *)

type histogram_snapshot = {
  buckets : (float * int) list;
      (** [(upper_bound, cumulative_count)] per declared bucket, in
          increasing bound order; the implicit [+Inf] bucket is not
          listed — its cumulative count is [count]. *)
  count : int;  (** Total number of observations. *)
  sum : float;  (** Sum of all observed values. *)
}

val histogram_snapshot : histogram -> histogram_snapshot
(** A consistent-enough snapshot of a histogram child (buckets, count
    and sum are read independently; see the module preamble). *)

(** {2 Windowed views}

    A histogram child accumulates forever; a {e window} is the pointwise
    difference of two snapshots of the same child, taken at the window's
    edges. The soak harness ([Axml_workload.Soak]) builds its per-window
    latency distributions this way. *)

val diff_histogram_snapshot :
  before:histogram_snapshot -> histogram_snapshot -> histogram_snapshot
(** [diff_histogram_snapshot ~before after] is the window of
    observations recorded between the two snapshots: per-bucket
    cumulative counts, total count and sum are subtracted pointwise
    (clamped at zero, in case the reads raced an in-flight update).
    @raise Invalid_argument when the snapshots have different bucket
    layouts — they must come from the same family. *)

val snapshot_quantile : histogram_snapshot -> float -> float
(** [snapshot_quantile snap q] estimates the [q]-quantile (e.g. [0.5],
    [0.99], [0.999]) of the observations in [snap] by linear
    interpolation inside the first bucket whose cumulative count reaches
    [q * count]. The estimate is bounded by the declared bucket bounds: a
    rank landing in the implicit [+Inf] bucket reports the last finite
    bound. [nan] on an empty snapshot.
    @raise Invalid_argument unless [0 <= q <= 1]. *)

(** {1 Export} *)

val to_prometheus : t -> string
(** Renders every family in the Prometheus text exposition format:
    [# HELP] / [# TYPE] preambles, one sample line per child (per
    bucket, plus [_sum] and [_count], for histograms), label values
    escaped per the spec. Families are sorted by name, children by
    label values. *)

val to_json : t -> string
(** The same data as a single JSON object
    [{"metrics": [{"name"; "type"; "help"; "values": [...]}]}]. Counter
    values are JSON integers; gauge/histogram values are JSON numbers;
    histogram children carry ["count"], ["sum"] and a cumulative
    ["buckets"] array whose last entry has ["le": "+Inf"]. *)

(** {1 Escaping helpers} (exposed for tests) *)

val escape_label_value : string -> string
(** Prometheus label-value escaping: backslash, double quote and
    newline become backslash-escaped two-character sequences. *)

val escape_help : string -> string
(** Prometheus HELP-line escaping: backslash and newline. *)

val json_string : string -> string
(** [json_string s] is [s] as a double-quoted JSON string literal with
    all mandatory escapes (quotes, backslash, control characters). *)
