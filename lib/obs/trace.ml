(* Span-based decision tracing: structured events into a bounded ring
   or a JSONL channel. The Null sink must cost (nearly) nothing: every
   emission first checks [enabled], and hot call sites guard event
   construction themselves. *)

type verdict = Accept | Reject | Fault

type kind =
  | Span_open of { name : string; detail : string }
  | Span_close of { name : string; elapsed_s : float }
  | Cache_query of { cache : string; hit : bool }
  | Validation of { subject : string; violations : int }
  | Fork_choice of { fname : string; choice : string }
  | Attempt of { fname : string; number : int }
  | Retry of { fname : string; attempt : int; backoff_s : float }
  | Breaker of { fname : string; transition : string }
  | Invocation of { fname : string; attempts : int; ok : bool }
  | Decision of { subject : string; verdict : verdict; detail : string }
  | Note of string

type event = { seq : int; time_s : float; depth : int; kind : kind }

(* ---------- ring buffer ---------- *)

(* Parallel arrays, not an [event array]: pushing then costs four
   stores and zero allocation (the common kinds — cache queries, fork
   choices with interned names — are static blocks), where a slot of
   boxed [event]s would allocate a record per push and pay its
   promotion when the ring outlives a minor collection. [event]
   records are only rebuilt on the cold read path. *)
type buffer = {
  seqs : int array;
  times : float array;  (* flat float array: unboxed, no write barrier *)
  depths : int array;
  kinds : kind array;
  mutable next : int;  (* next slot to overwrite *)
  mutable pushed : int;
}

let buffer ?(capacity = 4096) () =
  let cap = max 1 capacity in
  { seqs = Array.make cap 0;
    times = Array.make cap 0.;
    depths = Array.make cap 0;
    kinds = Array.make cap (Note "");
    next = 0;
    pushed = 0 }

let buffer_capacity b = Array.length b.kinds
let buffer_pushed b = b.pushed

let buffer_push b ~seq ~time_s ~depth kind =
  let i = b.next in
  b.seqs.(i) <- seq;
  b.times.(i) <- time_s;
  b.depths.(i) <- depth;
  b.kinds.(i) <- kind;
  let n = i + 1 in
  b.next <- (if n = Array.length b.kinds then 0 else n);
  b.pushed <- b.pushed + 1

let buffer_events b =
  let cap = Array.length b.kinds in
  let n = min b.pushed cap in
  let first = if b.pushed <= cap then 0 else b.next in
  List.init n (fun i ->
      let j = (first + i) mod cap in
      { seq = b.seqs.(j);
        time_s = b.times.(j);
        depth = b.depths.(j);
        kind = b.kinds.(j) })

let buffer_clear b =
  Array.fill b.kinds 0 (Array.length b.kinds) (Note "");
  b.next <- 0;
  b.pushed <- 0

(* ---------- rendering ---------- *)

let pp_verdict ppf = function
  | Accept -> Format.pp_print_string ppf "ACCEPT"
  | Reject -> Format.pp_print_string ppf "REJECT"
  | Fault -> Format.pp_print_string ppf "FAULT"

let pp_kind ppf = function
  | Span_open { name; detail } ->
      Format.fprintf ppf "> %s%s" name (if detail = "" then "" else " " ^ detail)
  | Span_close { name; elapsed_s } ->
      Format.fprintf ppf "< %s (%.1f us)" name (elapsed_s *. 1e6)
  | Cache_query { cache; hit } ->
      Format.fprintf ppf "cache %s: %s" cache (if hit then "hit" else "miss")
  | Validation { subject; violations } ->
      if violations = 0 then Format.fprintf ppf "validate %s: conforms" subject
      else Format.fprintf ppf "validate %s: %d violation(s)" subject violations
  | Fork_choice { fname; choice } ->
      Format.fprintf ppf "fork %s: %s" fname choice
  | Attempt { fname; number } ->
      Format.fprintf ppf "attempt #%d %s" number fname
  | Retry { fname; attempt; backoff_s } ->
      Format.fprintf ppf "retry %s after attempt #%d (backoff %.0f ms)" fname
        attempt (backoff_s *. 1e3)
  | Breaker { fname; transition } ->
      Format.fprintf ppf "breaker %s: %s" fname transition
  | Invocation { fname; attempts; ok } ->
      Format.fprintf ppf "invoke %s: %s%s" fname (if ok then "ok" else "failed")
        (if attempts = 0 then ""
         else Format.sprintf " (%d attempt%s)" attempts (if attempts = 1 then "" else "s"))
  | Decision { subject; verdict; detail } ->
      Format.fprintf ppf "decision %s: %a%s" subject pp_verdict verdict
        (if detail = "" then "" else " — " ^ detail)
  | Note s -> Format.fprintf ppf "note: %s" s

let pp_event ppf e =
  Format.fprintf ppf "#%03d %s%a" e.seq (String.make (2 * e.depth) ' ') pp_kind e.kind

let js = Metrics.json_string

let kind_fields = function
  | Span_open { name; detail } ->
      Printf.sprintf "\"event\": \"span_open\", \"name\": %s, \"detail\": %s"
        (js name) (js detail)
  | Span_close { name; elapsed_s } ->
      Printf.sprintf "\"event\": \"span_close\", \"name\": %s, \"elapsed_s\": %.9g"
        (js name) elapsed_s
  | Cache_query { cache; hit } ->
      Printf.sprintf "\"event\": \"cache_query\", \"cache\": %s, \"hit\": %b"
        (js cache) hit
  | Validation { subject; violations } ->
      Printf.sprintf "\"event\": \"validation\", \"subject\": %s, \"violations\": %d"
        (js subject) violations
  | Fork_choice { fname; choice } ->
      Printf.sprintf "\"event\": \"fork_choice\", \"fname\": %s, \"choice\": %s"
        (js fname) (js choice)
  | Attempt { fname; number } ->
      Printf.sprintf "\"event\": \"attempt\", \"fname\": %s, \"number\": %d"
        (js fname) number
  | Retry { fname; attempt; backoff_s } ->
      Printf.sprintf
        "\"event\": \"retry\", \"fname\": %s, \"attempt\": %d, \"backoff_s\": %.9g"
        (js fname) attempt backoff_s
  | Breaker { fname; transition } ->
      Printf.sprintf "\"event\": \"breaker\", \"fname\": %s, \"transition\": %s"
        (js fname) (js transition)
  | Invocation { fname; attempts; ok } ->
      Printf.sprintf
        "\"event\": \"invocation\", \"fname\": %s, \"attempts\": %d, \"ok\": %b"
        (js fname) attempts ok
  | Decision { subject; verdict; detail } ->
      let v = match verdict with Accept -> "accept" | Reject -> "reject" | Fault -> "fault" in
      Printf.sprintf
        "\"event\": \"decision\", \"subject\": %s, \"verdict\": \"%s\", \"detail\": %s"
        (js subject) v (js detail)
  | Note s -> Printf.sprintf "\"event\": \"note\", \"text\": %s" (js s)

let event_to_json e =
  Printf.sprintf "{\"seq\": %d, \"t\": %.9f, \"depth\": %d, %s}" e.seq e.time_s
    e.depth (kind_fields e.kind)

(* ---------- tracers ---------- *)

type sink = Null | Memory of buffer | Jsonl of out_channel

type t = {
  mutable sink : sink;
  mutable clock : unit -> float;
  mutable seq : int;
  mutable depth : int;
  mutable last_time : float;  (* cached clock reading, see [emit] *)
  mutable clock_mask : int;   (* re-read every (mask+1) events *)
}

let create ?(clock = Unix.gettimeofday) ?(sink = Null) () =
  { sink; clock; seq = 0; depth = 0; last_time = 0.; clock_mask = 31 }

let default = create ()
let set_sink t sink = t.sink <- sink
let sink t = t.sink

let set_clock t clock =
  t.clock <- clock;
  t.last_time <- 0.

let set_clock_every t n =
  let rec pow2 p = if p >= n || p lsl 1 <= 0 then p else pow2 (p lsl 1) in
  t.clock_mask <- pow2 1 - 1

let enabled t = match t.sink with Null -> false | Memory _ | Jsonl _ -> true

(* [Unix.gettimeofday] resolves ~1 us, so sub-microsecond event bursts
   (e.g. cache hits) are indistinguishable whether or not each gets its
   own reading; amortize the call instead. Span boundaries always
   re-read the clock ([with_span]), and the cache only moves forward,
   so timestamps stay monotone. *)
let next_seq tracer =
  let seq = tracer.seq in
  tracer.seq <- seq + 1;
  if seq land tracer.clock_mask = 0 then tracer.last_time <- tracer.clock ();
  seq

let emit ?(tracer = default) kind =
  match tracer.sink with
  | Null -> ()
  | Memory b ->
      let seq = next_seq tracer in
      buffer_push b ~seq ~time_s:tracer.last_time ~depth:tracer.depth kind
  | Jsonl oc ->
      let seq = next_seq tracer in
      output_string oc
        (event_to_json
           { seq; time_s = tracer.last_time; depth = tracer.depth; kind });
      output_char oc '\n'

let with_span ?(tracer = default) ?detail name f =
  match tracer.sink with
  | Null -> f ()
  | Memory _ | Jsonl _ ->
      let detail = match detail with None -> "" | Some d -> d () in
      tracer.last_time <- tracer.clock ();
      emit ~tracer (Span_open { name; detail });
      let t0 = tracer.last_time in
      tracer.depth <- tracer.depth + 1;
      Fun.protect
        ~finally:(fun () ->
          tracer.depth <- tracer.depth - 1;
          tracer.last_time <- tracer.clock ();
          emit ~tracer (Span_close { name; elapsed_s = tracer.last_time -. t0 }))
        f
