(** Span-based decision tracing.

    A {e tracer} turns the decisions taken on an enforcement path —
    spans opened around phases, cache hits, fork choices, invocation
    attempts, retries, breaker transitions, accept/reject/fault
    verdicts — into a stream of structured {!event}s delivered to a
    pluggable {!sink}:

    - {!Null}: events are dropped before they are even built. This is
      the production default; instrumented code guards event
      construction with {!enabled}, so a disabled tracer costs one
      branch per site (bench E19 quantifies it).
    - {!Memory}: events accumulate in a bounded ring {!buffer} that
      keeps the most recent [capacity] events (old ones are
      overwritten). Used by [axml trace] and tests.
    - {!Jsonl}: each event is written to an [out_channel] as one JSON
      object per line.

    Tracers maintain a current span {e depth} so a renderer can indent
    events under their enclosing span; {!with_span} restores the depth
    even when the traced function raises.

    The tracer is not itself domain-safe (sequence numbers and depth
    are plain mutable fields): confine one tracer to one domain, or
    give each domain its own. The metrics registry ({!Metrics}) is the
    domain-safe half of the observability layer. *)

(** {1 Events} *)

type verdict = Accept | Reject | Fault
(** The terminal verdict of one enforcement: the document conformed or
    was rewritten ([Accept]), no rewriting exists ([Reject]), or the
    environment misbehaved — ill-typed service, retries exhausted
    ([Fault]). *)

(** What happened. [string] payloads are small, human-oriented
    identifiers (service names, cache kinds, span names). *)
type kind =
  | Span_open of { name : string; detail : string }
      (** A phase began ([detail] may be [""]). *)
  | Span_close of { name : string; elapsed_s : float }
      (** The matching phase ended, [elapsed_s] after it opened. *)
  | Cache_query of { cache : string; hit : bool }
      (** A memoized analysis was looked up ([cache] is ["safe"] or
          ["possible"] for contract word analyses). *)
  | Validation of { subject : string; violations : int }
      (** A document was validated; [violations = 0] means it already
          conformed. *)
  | Fork_choice of { fname : string; choice : string }
      (** During {!Axml_core.Execute.run}, a fork node for function
          [fname] was resolved by [choice] (["keep"] or ["invoke"]).
          Emitted per {e attempted} branch: a backtracking walk may
          emit both for the same function occurrence. *)
  | Attempt of { fname : string; number : int }
      (** A resilience guard started physical attempt [number]
          (1-based) of a call to [fname]. *)
  | Retry of { fname : string; attempt : int; backoff_s : float }
      (** Attempt [attempt] of [fname] failed; the guard sleeps
          [backoff_s] and retries. *)
  | Breaker of { fname : string; transition : string }
      (** [fname]'s circuit breaker changed state: ["trip"],
          ["short-circuit"], ["half-open"] or ["close"]. *)
  | Invocation of { fname : string; attempts : int; ok : bool }
      (** Final outcome of invoking [fname] ([attempts] physical tries;
          [0] when unknown at this layer). *)
  | Decision of { subject : string; verdict : verdict; detail : string }
      (** The enforcement verdict for [subject] (a document root or a
          peer exchange). *)
  | Note of string  (** Free-form annotation. *)

type event = {
  seq : int;     (** Per-tracer sequence number, from 0. *)
  time_s : float;(** Clock reading at emission. *)
  depth : int;   (** Enclosing-span nesting depth at emission. *)
  kind : kind;
}

(** {1 Ring buffers} *)

type buffer
(** A bounded ring of events: keeps the last [capacity] pushed. *)

val buffer : ?capacity:int -> unit -> buffer
(** [buffer ()] is an empty ring keeping [capacity] (default 4096,
    min 1) events. *)

val buffer_capacity : buffer -> int

val buffer_pushed : buffer -> int
(** Total events ever pushed, including overwritten ones; the number
    dropped is [max 0 (pushed - capacity)]. *)

val buffer_events : buffer -> event list
(** The retained events, oldest first. *)

val buffer_clear : buffer -> unit

(** {1 Sinks and tracers} *)

type sink =
  | Null                  (** Drop everything (production default). *)
  | Memory of buffer      (** Ring-buffer the last N events. *)
  | Jsonl of out_channel  (** One JSON object per line, unflushed. *)

type t
(** A tracer: a sink plus clock, sequence and depth state. *)

val create : ?clock:(unit -> float) -> ?sink:sink -> unit -> t
(** A fresh tracer (default: [Unix.gettimeofday], {!Null}). *)

val default : t
(** The process-wide tracer all library instrumentation emits to.
    Starts with the {!Null} sink; [axml trace] swaps in a {!Memory}
    sink around one enforcement. *)

val set_sink : t -> sink -> unit
val sink : t -> sink
val set_clock : t -> (unit -> float) -> unit

val set_clock_every : t -> int -> unit
(** [set_clock_every t n] re-reads the clock every [n] events ([n] is
    rounded up to a power of two; default 32 — see {!emit}). Pass [1]
    for an exact reading on every event, as [axml trace] does when
    replaying a single document interactively. *)

val enabled : t -> bool
(** [true] iff the sink is not {!Null}. Hot paths check this before
    constructing events with non-constant payloads. *)

val emit : ?tracer:t -> kind -> unit
(** [emit kind] stamps [kind] with a clock reading, the next sequence
    number and the current depth, and delivers it to the sink (a no-op
    on {!Null}). Default tracer: {!default}.

    Timestamps are {e amortized}: the clock (1 us resolution for the
    default [Unix.gettimeofday]) is re-read every 32nd event (tunable,
    {!set_clock_every}) and at every span boundary, and intermediate
    events reuse the cached reading — sub-microsecond bursts are indistinguishable either way,
    and this keeps the hot emission path to a few tens of nanoseconds.
    Timestamps remain monotone per tracer. *)

val with_span : ?tracer:t -> ?detail:(unit -> string) -> string -> (unit -> 'a) -> 'a
(** [with_span name f] emits [Span_open] (with [detail ()] if given —
    the thunk is only forced when the tracer is enabled), runs [f] one
    depth level deeper, and emits [Span_close] with the elapsed time,
    also when [f] raises. When the tracer is disabled this is just
    [f ()]. *)

(** {1 Rendering} *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_kind : Format.formatter -> kind -> unit
(** One-line human rendering of an event kind (no indentation). *)

val pp_event : Format.formatter -> event -> unit
(** [seq], kind and depth-indentation on one line. *)

val event_to_json : event -> string
(** One JSON object (no trailing newline):
    [{"seq";"t";"depth";"event";...kind fields}]. *)
