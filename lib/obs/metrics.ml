(* Process-wide metrics registry: families of counters / gauges /
   histograms with labels. Registration is mutex-protected; updates are
   single Atomic operations so instrumented hot paths never contend. *)

type labels = (string * string) list

(* Gauge values and histogram sums are floats stored as int64 bit
   patterns inside an Atomic, so [add] can be a CAS loop without a
   lock and readers never see a torn value. *)
module Afloat = struct
  type t = int64 Atomic.t

  let make v : t = Atomic.make (Int64.bits_of_float v)
  let get (t : t) = Int64.float_of_bits (Atomic.get t)
  let set (t : t) v = Atomic.set t (Int64.bits_of_float v)

  let rec add (t : t) d =
    let cur = Atomic.get t in
    let next = Int64.bits_of_float (Int64.float_of_bits cur +. d) in
    if not (Atomic.compare_and_set t cur next) then add t d
end

type counter = { c_value : int Atomic.t }
type gauge = { g_value : Afloat.t }

type histogram = {
  h_bounds : float array;        (* sorted upper bounds, +Inf excluded *)
  h_counts : int Atomic.t array; (* per-bucket (non-cumulative); length = bounds + 1,
                                    last slot is the +Inf overflow bucket *)
  h_sum : Afloat.t;
  h_count : int Atomic.t;
  h_clock : (unit -> float) ref; (* shared with the owning registry *)
}

type child =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type family = {
  f_name : string;
  f_type : [ `Counter | `Gauge | `Histogram ];
  f_help : string;
  f_buckets : float array; (* histograms only *)
  f_children : (string, labels * child) Hashtbl.t; (* key: canonical labels *)
}

type t = {
  families : (string, family) Hashtbl.t;
  lock : Mutex.t;
  clock : (unit -> float) ref;
}

let create ?(clock = Unix.gettimeofday) () =
  { families = Hashtbl.create 32; lock = Mutex.create (); clock = ref clock }

let default = create ()
let set_clock t now = t.clock := now
let now t = !(t.clock) ()

(* ---------- name / label validation ---------- *)

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       s

let valid_label_key s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let canonical labels =
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  List.iter
    (fun (k, _) ->
      if not (valid_label_key k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label name %S" k))
    labels;
  (labels, String.concat "\x00" (List.concat_map (fun (k, v) -> [ k; v ]) labels))

(* ---------- registration ---------- *)

let type_name = function
  | `Counter -> "counter"
  | `Gauge -> "gauge"
  | `Histogram -> "histogram"

let default_buckets =
  [ 5e-6; 2.5e-5; 1e-4; 5e-4; 2.5e-3; 1e-2; 5e-2; 2.5e-1; 1.0 ]

let get_family t ~name ~typ ~help ~buckets =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  match Hashtbl.find_opt t.families name with
  | Some f ->
      if f.f_type <> typ then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s, not a %s"
             name (type_name f.f_type) (type_name typ));
      f
  | None ->
      let buckets =
        Array.of_list (List.sort_uniq compare buckets)
      in
      let f =
        { f_name = name; f_type = typ; f_help = help; f_buckets = buckets;
          f_children = Hashtbl.create 4 }
      in
      Hashtbl.add t.families name f;
      f

let get_child t ~name ~typ ~help ~buckets ~labels ~make =
  let labels, key = canonical labels in
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  let f = get_family t ~name ~typ ~help ~buckets in
  match Hashtbl.find_opt f.f_children key with
  | Some (_, child) -> child
  | None ->
      let child = make f in
      Hashtbl.add f.f_children key (labels, child);
      child

let counter ?(registry = default) ?(help = "") ?(labels = []) name =
  match
    get_child registry ~name ~typ:`Counter ~help ~buckets:[] ~labels
      ~make:(fun _ -> Counter { c_value = Atomic.make 0 })
  with
  | Counter c -> c
  | _ -> assert false

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  match
    get_child registry ~name ~typ:`Gauge ~help ~buckets:[] ~labels
      ~make:(fun _ -> Gauge { g_value = Afloat.make 0. })
  with
  | Gauge g -> g
  | _ -> assert false

let histogram ?(registry = default) ?(help = "") ?(buckets = default_buckets)
    ?(labels = []) name =
  match
    get_child registry ~name ~typ:`Histogram ~help ~buckets ~labels
      ~make:(fun f ->
        Histogram
          { h_bounds = f.f_buckets;
            h_counts = Array.init (Array.length f.f_buckets + 1) (fun _ -> Atomic.make 0);
            h_sum = Afloat.make 0.;
            h_count = Atomic.make 0;
            h_clock = registry.clock })
  with
  | Histogram h -> h
  | _ -> assert false

(* ---------- updates ---------- *)

let inc ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.inc: counters are monotone";
  ignore (Atomic.fetch_and_add c.c_value by)

let counter_value c = Atomic.get c.c_value
let set g v = Afloat.set g.g_value v
let add g d = Afloat.add g.g_value d
let gauge_value g = Afloat.get g.g_value

let bucket_index bounds v =
  (* first bound >= v, or the overflow slot *)
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  ignore (Atomic.fetch_and_add h.h_counts.(bucket_index h.h_bounds v) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  Afloat.add h.h_sum v

let time h f =
  let t0 = !(h.h_clock) () in
  Fun.protect ~finally:(fun () -> observe h (!(h.h_clock) () -. t0)) f

type histogram_snapshot = {
  buckets : (float * int) list;
  count : int;
  sum : float;
}

let histogram_snapshot h =
  let acc = ref 0 in
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i bound ->
           acc := !acc + Atomic.get h.h_counts.(i);
           (bound, !acc))
         h.h_bounds)
  in
  { buckets; count = Atomic.get h.h_count; sum = Afloat.get h.h_sum }

(* Windowed views: a histogram child accumulates forever, so a window is
   the pointwise difference of two snapshots of the same child. *)
let diff_histogram_snapshot ~before after =
  if List.length before.buckets <> List.length after.buckets then
    invalid_arg "Metrics.diff_histogram_snapshot: different bucket layouts";
  let buckets =
    List.map2
      (fun (b0, c0) (b1, c1) ->
        if b0 <> b1 then
          invalid_arg "Metrics.diff_histogram_snapshot: different bucket layouts";
        (b1, max 0 (c1 - c0)))
      before.buckets after.buckets
  in
  { buckets;
    count = max 0 (after.count - before.count);
    sum = after.sum -. before.sum }

let snapshot_quantile snap q =
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Metrics.snapshot_quantile: q must be in [0, 1]";
  if snap.count = 0 then Float.nan
  else begin
    let rank = q *. float_of_int snap.count in
    (* walk the cumulative buckets; interpolate linearly inside the
       first bucket whose cumulative count reaches the rank. A rank that
       lands in the +Inf overflow bucket reports the last finite bound:
       the histogram carries no upper estimate beyond it. *)
    let rec interp lower_bound lower_cum = function
      | [] -> lower_bound
      | (bound, cum) :: rest ->
        if float_of_int cum >= rank then
          if cum = lower_cum then bound
          else
            let frac =
              (rank -. float_of_int lower_cum)
              /. float_of_int (cum - lower_cum)
            in
            lower_bound +. ((bound -. lower_bound) *. max 0. (min 1. frac))
        else interp bound cum rest
    in
    interp 0. 0 snap.buckets
  end

let reset t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  Hashtbl.iter
    (fun _ f ->
      Hashtbl.iter
        (fun _ (_, child) ->
          match child with
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Afloat.set g.g_value 0.
          | Histogram h ->
              Array.iter (fun a -> Atomic.set a 0) h.h_counts;
              Atomic.set h.h_count 0;
              Afloat.set h.h_sum 0.)
        f.f_children)
    t.families

(* ---------- escaping ---------- *)

let escape_with specials s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match List.assoc_opt c specials with
      | Some repl -> Buffer.add_string buf repl
      | None -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value =
  escape_with [ ('\\', "\\\\"); ('"', "\\\""); ('\n', "\\n") ]

let escape_help = escape_with [ ('\\', "\\\\"); ('\n', "\\n") ]

let json_string s =
  let buf = Buffer.create (String.length s + 8) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* ---------- export ---------- *)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let sorted_families t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.families []
  |> List.sort (fun a b -> compare a.f_name b.f_name)

let sorted_children f =
  Hashtbl.fold (fun _ lc acc -> lc :: acc) f.f_children []
  |> List.sort (fun (la, _) (lb, _) -> compare la lb)

let prom_labels ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun f ->
      if f.f_help <> "" then line "# HELP %s %s" f.f_name (escape_help f.f_help);
      line "# TYPE %s %s" f.f_name (type_name f.f_type);
      List.iter
        (fun (labels, child) ->
          match child with
          | Counter c -> line "%s%s %d" f.f_name (prom_labels labels) (Atomic.get c.c_value)
          | Gauge g -> line "%s%s %s" f.f_name (prom_labels labels) (float_str (Afloat.get g.g_value))
          | Histogram h ->
              let snap = histogram_snapshot h in
              List.iter
                (fun (bound, cum) ->
                  line "%s_bucket%s %d" f.f_name
                    (prom_labels ~extra:("le", float_str bound) labels) cum)
                snap.buckets;
              line "%s_bucket%s %d" f.f_name
                (prom_labels ~extra:("le", "+Inf") labels) snap.count;
              line "%s_sum%s %s" f.f_name (prom_labels labels) (float_str snap.sum);
              line "%s_count%s %d" f.f_name (prom_labels labels) snap.count)
        (sorted_children f))
    (sorted_families t);
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  let json_labels labels =
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> json_string k ^ ": " ^ json_string v) labels)
    ^ "}"
  in
  add "{\"metrics\": [";
  List.iteri
    (fun i f ->
      if i > 0 then add ",";
      add
        (Printf.sprintf "\n  {\"name\": %s, \"type\": %s, \"help\": %s, \"values\": ["
           (json_string f.f_name)
           (json_string (type_name f.f_type))
           (json_string f.f_help));
      List.iteri
        (fun j (labels, child) ->
          if j > 0 then add ",";
          add "\n    ";
          match child with
          | Counter c ->
              add
                (Printf.sprintf "{\"labels\": %s, \"value\": %d}" (json_labels labels)
                   (Atomic.get c.c_value))
          | Gauge g ->
              add
                (Printf.sprintf "{\"labels\": %s, \"value\": %s}" (json_labels labels)
                   (float_str (Afloat.get g.g_value)))
          | Histogram h ->
              let snap = histogram_snapshot h in
              let buckets =
                String.concat ", "
                  (List.map
                     (fun (bound, cum) ->
                       Printf.sprintf "{\"le\": %s, \"count\": %d}" (float_str bound) cum)
                     snap.buckets
                  @ [ Printf.sprintf "{\"le\": \"+Inf\", \"count\": %d}" snap.count ])
              in
              add
                (Printf.sprintf
                   "{\"labels\": %s, \"count\": %d, \"sum\": %s, \"buckets\": [%s]}"
                   (json_labels labels) snap.count (float_str snap.sum) buckets))
        (sorted_children f);
      add "]}")
    (sorted_families t);
  add "\n]}\n";
  Buffer.contents buf
