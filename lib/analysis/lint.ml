module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto
module Contract = Axml_core.Contract
module Document = Axml_core.Document
module Schema_rewrite = Axml_core.Schema_rewrite
module D = Diagnostic
module Metrics = Axml_obs.Metrics
module Trace = Axml_obs.Trace

(* ------------------------------------------------------------------ *)
(* Observability: every pass counts its runs and findings and observes
   its wall-clock time, under a "lint" trace span.                     *)

let runs_total pass =
  Metrics.counter ~help:"Lint pass executions"
    ~labels:[ ("pass", pass) ] "axml_lint_runs_total"

let diagnostics_total severity =
  Metrics.counter ~help:"Diagnostics emitted by lint passes"
    ~labels:[ ("severity", severity) ] "axml_lint_diagnostics_total"

let pass_seconds pass =
  Metrics.histogram ~help:"Wall-clock seconds per lint pass"
    ~labels:[ ("pass", pass) ] "axml_lint_seconds"

let instrumented pass f =
  Metrics.inc (runs_total pass);
  let ds =
    Metrics.time (pass_seconds pass) (fun () ->
        Trace.with_span ~detail:(fun () -> pass) "lint" f)
  in
  List.iter
    (fun (d : D.t) ->
      Metrics.inc (diagnostics_total (Fmt.str "%a" D.pp_severity d.severity)))
    ds;
  List.sort D.compare ds

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

let pp_model = R.pp Auto.pp_sym

let sym_set r =
  List.fold_left
    (fun acc s -> Auto.Sym_set.add s acc)
    Auto.Sym_set.empty (R.symbols r)

(* Top-level alternative branches, left to right ([] unless the regex
   is an alternation). *)
let alt_branches r =
  let rec go acc = function R.Alt (a, b) -> go (go acc a) b | r -> r :: acc in
  match r with R.Alt _ -> List.rev (go [] r) | _ -> []

(* Branches (1-based index, from the second on) whose language is
   contained in the union of the earlier branches: removing them
   preserves the language. *)
let redundant_branches r =
  match alt_branches r with
  | [] | [ _ ] -> []
  | first :: rest ->
    let rec go covered idx acc = function
      | [] -> List.rev acc
      | b :: tl ->
        let db = Auto.Dfa.of_regex b in
        let dcov = Auto.Dfa.of_regex covered in
        let acc =
          if Auto.Dfa.is_empty (Auto.Dfa.difference db dcov) then
            (idx, b) :: acc
          else acc
        in
        go (R.alt covered b) (idx + 1) acc tl
    in
    go first 2 [] rest

(* ------------------------------------------------------------------ *)
(* Regex level: AXM001 / AXM002 / AXM003                               *)

let compiled_rules ?file ?pos ~subject r =
  let d ?hint code severity message =
    D.make ?file ?pos ?hint ~code ~severity subject message
  in
  if R.is_empty_language r then
    [
      d "AXM001" D.Error
        ~hint:
          "a pattern with no matching member expands to the empty \
           language; fix the pattern or the declaration"
        (Fmt.str
           "content model %a is the empty language: no children word can \
            ever validate" pp_model r);
    ]
  else
    let ambiguity =
      if Auto.deterministic_regex r then []
      else
        [
          d "AXM002" D.Warning
            ~hint:
              "rewrite so that each next symbol decides the next position \
               (XML-Schema 1-unambiguity)"
            (Fmt.str
               "content model %a is not 1-unambiguous; the paper's \
                polynomial rewriting bound (Section 5.2) relies on \
                deterministic content models" pp_model r);
        ]
    in
    let redundancy =
      List.map
        (fun (idx, b) ->
          d "AXM003" D.Warning
            ~hint:"remove the branch; the language is unchanged"
            (Fmt.str
               "alternative branch %d (%a) is subsumed by the earlier \
                branches" idx pp_model b))
        (redundant_branches r)
    in
    ambiguity @ redundancy

let lint_compiled ?file ?pos ~subject r =
  instrumented "regex" (fun () -> compiled_rules ?file ?pos ~subject r)

(* ------------------------------------------------------------------ *)
(* Schema level                                                        *)

(* Least fixpoint of "label admits a finite document": a label is
   inhabited once its content model has a word whose every label symbol
   is already inhabited (data and calls are finite leaves; labels the
   schema does not declare are someone else's problem — Schema.check
   flags them — and treated as inhabited to avoid double reports). *)
let inhabited_labels env s =
  let declared = Schema.String_set.of_list (Schema.element_names s) in
  let compiled =
    List.filter_map
      (fun l ->
        Option.map (fun r -> (l, r)) (Schema.compiled_element env s l))
      (Schema.element_names s)
  in
  let step inh =
    List.fold_left
      (fun acc (l, r) ->
        let r' =
          R.subst
            (function
              | Symbol.Data -> R.epsilon
              | Symbol.Fun _ -> R.epsilon
              | Symbol.Label l' ->
                if
                  (not (Schema.String_set.mem l' declared))
                  || Schema.String_set.mem l' inh
                then R.epsilon
                else R.empty)
            r
        in
        if R.is_empty_language r' then acc else Schema.String_set.add l acc)
      Schema.String_set.empty compiled
  in
  let rec fix inh =
    let inh' = step inh in
    if Schema.String_set.equal inh' inh then inh else fix inh'
  in
  fix Schema.String_set.empty

let lint_schema ?file ?positions ?predicate s =
  instrumented "schema" @@ fun () ->
  let env = Schema.env_of_schema ?predicate s in
  let pos_of name =
    Option.bind positions (fun m ->
        Option.map
          (fun (p : Axml_schema.Schema_parser.pos) ->
            { D.line = p.line; col = p.col })
          (Schema.String_map.find_opt name m))
  in
  let elements = Schema.String_map.bindings s.Schema.elements in
  let functions = Schema.String_map.bindings s.Schema.functions in
  let patterns = Schema.String_map.bindings s.Schema.patterns in
  let regex_level =
    (* The regex rules over every compiled content model and signature.
       Content that fails to compile (Schema.check territory) is
       skipped, never crashed on. *)
    let over subject name content compile =
      match compile content with
      | exception Schema.Schema_error _ -> []
      | r -> compiled_rules ?file ?pos:(pos_of name) ~subject r
    in
    List.concat_map
      (fun (l, content) ->
        over (D.Element l) l content (Schema.compile_content env))
      elements
    @ List.concat_map
        (fun (f, (fn : Schema.func)) ->
          over (D.Function f) f fn.Schema.f_input (Schema.compile_signature env)
          @ over (D.Function f) f fn.Schema.f_output
              (Schema.compile_signature env))
        functions
    @ List.concat_map
        (fun (p, (pat : Schema.pattern)) ->
          over (D.Pattern p) p pat.Schema.p_input (Schema.compile_content env)
          @ over (D.Pattern p) p pat.Schema.p_output
              (Schema.compile_content env))
        patterns
  in
  let inhabitation =
    let inh = inhabited_labels env s in
    List.filter_map
      (fun (l, content) ->
        match Schema.compile_content env content with
        | exception Schema.Schema_error _ -> None
        | r ->
          if R.is_empty_language r (* already AXM001 *) then None
          else if Schema.String_set.mem l inh then None
          else
            Some
              (D.make ?file ?pos:(pos_of l) ~code:"AXM011" ~severity:D.Error
                 ~hint:
                   "add a base case: an alternative that needs no further \
                    elements (e.g. #data or an optional branch)"
                 (D.Element l)
                 "element admits no finite document: every children word \
                  requires another uninhabited element"))
      elements
  in
  let reachability =
    match s.Schema.root with
    | None ->
      [
        D.make ?file ~code:"AXM014" ~severity:D.Hint
          ~hint:"add a 'root <name>' declaration" D.Root
          "schema declares no root; reachability and schema-compatibility \
           checks are skipped";
      ]
    | Some root ->
      let reach =
        Schema.String_set.of_list
          (root :: Schema_rewrite.reachable_labels env s root)
      in
      List.filter_map
        (fun (l, _) ->
          if Schema.String_set.mem l reach then None
          else
            Some
              (D.make ?file ?pos:(pos_of l) ~code:"AXM010" ~severity:D.Warning
                 ~hint:"reference it from the root or remove the declaration"
                 (D.Element l) "element is unreachable from the root"))
        elements
  in
  let never_referenced =
    let contents =
      List.map snd elements
      @ List.concat_map
          (fun (_, (fn : Schema.func)) ->
            [ fn.Schema.f_input; fn.Schema.f_output ])
          functions
      @ List.concat_map
          (fun (_, (pat : Schema.pattern)) ->
            [ pat.Schema.p_input; pat.Schema.p_output ])
          patterns
    in
    let atoms = List.concat_map Schema.atoms_of_content contents in
    let any_fun = List.mem Schema.A_any_fun atoms in
    let used_patterns =
      List.filter_map
        (function Schema.A_pattern p -> Some p | _ -> None)
        atoms
      |> Schema.String_set.of_list
    in
    let used_functions =
      (* Direct mentions, plus every member of a mentioned pattern. *)
      let direct =
        List.filter_map (function Schema.A_fun f -> Some f | _ -> None) atoms
      in
      let via_patterns =
        List.concat_map
          (fun (p, pat) ->
            if Schema.String_set.mem p used_patterns then
              List.map
                (fun (fn : Schema.func) -> fn.Schema.f_name)
                (Schema.pattern_members env pat)
            else [])
          patterns
      in
      Schema.String_set.of_list (direct @ via_patterns)
    in
    let unused subject name =
      D.make ?file ?pos:(pos_of name) ~code:"AXM012" ~severity:D.Warning
        ~hint:"use it in a content model or delete the declaration" subject
        "declared but never referenced by any content model or signature"
    in
    (if any_fun then []
     else
       List.filter_map
         (fun (f, _) ->
           if Schema.String_set.mem f used_functions then None
           else Some (unused (D.Function f) f))
         functions)
    @ List.filter_map
        (fun (p, _) ->
          if Schema.String_set.mem p used_patterns then None
          else Some (unused (D.Pattern p) p))
        patterns
  in
  regex_level @ inhabitation @ reachability @ never_referenced

(* ------------------------------------------------------------------ *)
(* Contract level                                                      *)

(* Can invoking [fn] ever produce a forest acceptable inside a context
   whose compiled model is [m]? Conservative: materialization is ruled
   out only when the output can never be empty, mentions no further
   calls (which could in turn be rewritten), and shares no symbol with
   the context's alphabet. *)
let materialization_ruled_out env name (fn : Schema.func) ~model_alphabet =
  (not fn.Schema.f_invocable)
  ||
  match Schema.compiled_output env name with
  | None -> true
  | Some out ->
    (not (R.nullable out))
    && List.for_all
         (function Symbol.Fun _ -> false | _ -> true)
         (R.symbols out)
    && Auto.Sym_set.is_empty (Auto.Sym_set.inter (sym_set out) model_alphabet)

(* Function symbols that can actually occur in a document of [s],
   i.e. are mentioned by some content model or signature (expanding
   wildcards and patterns) — unlike [Schema.alphabet], a merely
   declared but never referenced function does not count. *)
let occurring_functions env (s : Schema.t) =
  let contents =
    List.map snd (Schema.String_map.bindings s.Schema.elements)
    @ List.concat_map
        (fun (_, (fn : Schema.func)) -> [ fn.Schema.f_input; fn.Schema.f_output ])
        (Schema.String_map.bindings s.Schema.functions)
    @ List.concat_map
        (fun (_, (p : Schema.pattern)) -> [ p.Schema.p_input; p.Schema.p_output ])
        (Schema.String_map.bindings s.Schema.patterns)
  in
  List.fold_left
    (fun acc atom ->
      match atom with
      | Schema.A_fun f -> Auto.Sym_set.add (Symbol.Fun f) acc
      | Schema.A_any_fun ->
        Schema.String_map.fold
          (fun f _ acc -> Auto.Sym_set.add (Symbol.Fun f) acc)
          env.Schema.env_functions acc
      | Schema.A_pattern p ->
        (match Schema.String_map.find_opt p env.Schema.env_patterns with
         | None -> acc
         | Some pat ->
           List.fold_left
             (fun acc (fn : Schema.func) ->
               Auto.Sym_set.add (Symbol.Fun fn.Schema.f_name) acc)
             acc (Schema.pattern_members env pat))
      | _ -> acc)
    Auto.Sym_set.empty
    (List.concat_map Schema.atoms_of_content contents)

let lint_contract c =
  instrumented "contract" @@ fun () ->
  let env = Contract.env c in
  let s0 = Contract.s0 c in
  let target = Contract.target c in
  let sender_alpha = occurring_functions env s0 in
  let target_alpha = occurring_functions env target in
  let sender_models =
    List.filter_map
      (fun l ->
        Option.map (fun r -> (l, r)) (Schema.compiled_element env s0 l))
      (Schema.element_names s0)
  in
  (* Materialization depth demanded by a function's declared output
     (AXM032). [Some d]: fully flattening a call to this function needs
     [d] rewriting levels in the worst case (1 = the output is already
     extensional); [None]: the embeds-a-call relation is cyclic and no
     finite budget suffices. Label symbols in an output are expanded
     through their content models, so a call embedded two elements down
     still counts. *)
  let output_depth =
    let compiled_label l =
      match Schema.compiled_element env s0 l with
      | Some r -> Some r
      | None -> Schema.compiled_element env target l
    in
    let embedded_invocables r =
      let seen = ref Schema.String_set.empty in
      let funs = ref Schema.String_set.empty in
      let rec visit r =
        List.iter
          (function
            | Symbol.Fun f ->
              (match Schema.String_map.find_opt f env.Schema.env_functions with
               | Some (fn : Schema.func) when fn.Schema.f_invocable ->
                 funs := Schema.String_set.add f !funs
               | _ -> ())
            | Symbol.Label l ->
              if not (Schema.String_set.mem l !seen) then begin
                seen := Schema.String_set.add l !seen;
                Option.iter visit (compiled_label l)
              end
            | Symbol.Data -> ())
          (R.symbols r)
      in
      visit r;
      !funs
    in
    let memo = Hashtbl.create 16 in
    (* A stack hit means a genuine cycle in the embeds relation: every
       function on (or reaching) it has unbounded depth, so memoizing
       [None] for them is exact, not an artifact of the traversal. *)
    let rec depth stack name =
      match Hashtbl.find_opt memo name with
      | Some d -> d
      | None ->
        let d =
          if Schema.String_set.mem name stack then None
          else
            match Schema.compiled_output env name with
            | None -> Some 1
            | Some out ->
              let stack = Schema.String_set.add name stack in
              Schema.String_set.fold
                (fun g acc ->
                  match (acc, depth stack g) with
                  | None, _ | _, None -> None
                  | Some a, Some dg -> Some (max a (1 + dg)))
                (embedded_invocables out) (Some 1)
        in
        Hashtbl.replace memo name d;
        d
    in
    fun name -> depth Schema.String_set.empty name
  in
  let per_function (name, (fn : Schema.func)) =
    let sym = Symbol.Fun name in
    let in_sender = Auto.Sym_set.mem sym sender_alpha in
    let in_target = Auto.Sym_set.mem sym target_alpha in
    let dead_invocable =
      if fn.Schema.f_invocable && not in_sender then
        [
          D.make ~code:"AXM023" ~severity:D.Warning
            ~hint:"declare it noninvocable, or mention it in the sender schema"
            (D.Function name)
            "invocable function never occurs in a sender document";
        ]
      else []
    in
    let always_materialize =
      if in_sender && not in_target then
        [
          D.make ~code:"AXM022" ~severity:D.Hint (D.Function name)
            "absent from the target schema: every occurrence must be \
             materialized before the exchange";
        ]
      else []
    in
    let depth_gap =
      if not (fn.Schema.f_invocable && in_sender) then []
      else
        let k = Contract.k c in
        match output_depth name with
        | Some d when d <= k -> []
        | verdict ->
          let message, hint =
            match verdict with
            | Some d ->
              ( Fmt.str
                  "declared output can embed invocable calls %d level(s) \
                   deep, but the contract enforces at k=%d: a materialized \
                   result may still carry calls the receiver will refuse"
                  (d - 1) k,
                Fmt.str
                  "raise the rewriting depth to k=%d, or make the output \
                   type extensional" d )
            | None ->
              ( Fmt.str
                  "declared output can embed invocable calls at unbounded \
                   depth (the embeds-a-call relation is cyclic); no finite \
                   budget (configured k=%d) guarantees extensional results"
                  k,
                "break the cycle in the output types, or declare the inner \
                 functions noninvocable" )
          in
          [
            D.make ~code:"AXM032" ~severity:D.Warning ~hint (D.Function name)
              message;
          ]
    in
    let never_safe =
      if not in_sender then []
      else
        (* Contexts the call can occur in: sender labels whose content
           model mentions it and that the target schema also declares. *)
        let contexts =
          List.filter_map
            (fun (l, r_s) ->
              if List.mem sym (R.symbols r_s) then
                Option.map
                  (fun m -> (l, r_s, m))
                  (Contract.element_regex c l)
              else None)
            sender_models
        in
        if contexts = [] then []
        else
          let doomed_everywhere =
            (* Sound alphabet argument: the call can neither remain in
               nor materialize into ANY of its contexts, so every
               sender document containing it is unexchangeable. *)
            List.for_all
              (fun (_, _, m) ->
                let malpha = sym_set m in
                (not (Auto.Sym_set.mem sym malpha))
                && materialization_ruled_out env name fn
                     ~model_alphabet:malpha)
              contexts
          in
          if doomed_everywhere then
            [
              D.make ~code:"AXM021" ~severity:D.Error
                ~hint:
                  "align the schemas: let the target keep the call, or \
                   give the function an output the target accepts"
                (D.Function name)
                "never safe: in every context the call may occur in, it \
                 can neither remain nor materialize into the target \
                 content model";
            ]
          else
            (* Witness check, through the contract's memoized analyses:
               wherever the sender admits a document whose children are
               the lone call, must that minimal document be refused? *)
            let lone_call_contexts =
              List.filter
                (fun (_, r_s, _) ->
                  Auto.Dfa.accepts (Auto.Dfa.of_regex r_s) [ sym ])
                contexts
            in
            if lone_call_contexts = [] then []
            else if
              List.exists
                (fun (_, _, m) -> Contract.is_safe c ~target_regex:m [ sym ])
                lone_call_contexts
            then []
            else
              let possible =
                List.exists
                  (fun (_, _, m) ->
                    Contract.is_possible c ~target_regex:m [ sym ])
                  lone_call_contexts
              in
              let severity = if possible then D.Warning else D.Error in
              [
                D.make ~code:"AXM021" ~severity
                  ~hint:"raise the rewriting depth k or align the schemas"
                  (D.Function name)
                  (if possible then
                     "a minimal sender document holding only this call has \
                      no safe rewriting (a possible one exists)"
                   else
                     "a minimal sender document holding only this call has \
                      no rewriting at all");
              ]
    in
    dead_invocable @ always_materialize @ depth_gap @ never_safe
  in
  let per_label =
    match s0.Schema.root with
    | None -> []
    | Some root ->
      let result =
        Schema_rewrite.check ~k:(Contract.k c) ~engine:(Contract.engine c)
          ~predicate:env.Schema.predicate ~s0 ~root ~target ()
      in
      List.filter_map
        (fun (v : Schema_rewrite.label_verdict) ->
          if v.Schema_rewrite.safe then None
          else
            Some
              (D.make ~code:"AXM020" ~severity:D.Error
                 (D.Schema_pair v.Schema_rewrite.label)
                 (Fmt.str
                    "documents of this type cannot all be safely \
                     exchanged%a"
                    Fmt.(
                      option (fun ppf r -> Fmt.pf ppf ": %s" r))
                    v.Schema_rewrite.reason)))
        result.Schema_rewrite.verdicts
  in
  List.concat_map per_function (Schema.String_map.bindings env.Schema.env_functions)
  @ per_label

(* ------------------------------------------------------------------ *)
(* Document level                                                      *)

let lint_document c doc =
  instrumented "document" @@ fun () ->
  let env = Contract.env c in
  let parent path =
    let rec drop_last = function
      | [] | [ _ ] -> []
      | x :: tl -> x :: drop_last tl
    in
    match path with [] -> None | _ -> Document.get doc (drop_last path)
  in
  List.filter_map
    (fun (path, name) ->
      match Schema.String_map.find_opt name env.Schema.env_functions with
      | None ->
        Some
          (D.make ~code:"AXM030" ~severity:D.Error
             ~hint:"declare the function in a schema or drop the call"
             (D.Node path)
             (Fmt.str "call to '%s', which neither schema declares" name))
      | Some fn ->
        let model =
          match parent path with
          | Some (Document.Elem { label; _ }) -> Contract.element_regex c label
          | Some (Document.Call { name = g; _ }) -> Contract.input_regex c g
          | Some (Document.Data _) | None -> None
        in
        Option.bind model (fun m ->
            let malpha = sym_set m in
            if
              (not (Auto.Sym_set.mem (Symbol.Fun name) malpha))
              && materialization_ruled_out env name fn ~model_alphabet:malpha
            then
              Some
                (D.make ~code:"AXM031" ~severity:D.Error
                   ~hint:
                     "the rewriter will reject this document; fix the call \
                      or the schemas"
                   (D.Node path)
                   (Fmt.str
                      "call to '%s' can never contribute: it may neither \
                       remain in nor materialize into its context" name))
            else None))
    (Document.calls_with_paths doc)
