type severity = Error | Warning | Hint

let severity_rank = function Error -> 2 | Warning -> 1 | Hint -> 0

let pp_severity ppf s =
  Fmt.string ppf
    (match s with Error -> "error" | Warning -> "warning" | Hint -> "hint")

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "hint" -> Some Hint
  | _ -> None

let severity_geq a b = severity_rank a >= severity_rank b

type subject =
  | Element of string
  | Function of string
  | Pattern of string
  | Root
  | Schema_pair of string
  | Node of int list

let pp_subject ppf = function
  | Element l -> Fmt.pf ppf "element '%s'" l
  | Function f -> Fmt.pf ppf "function '%s'" f
  | Pattern p -> Fmt.pf ppf "pattern '%s'" p
  | Root -> Fmt.string ppf "root"
  | Schema_pair l -> Fmt.pf ppf "exchange of '%s'" l
  | Node path ->
    Fmt.pf ppf "node /%a" Fmt.(list ~sep:(any "/") int) path

type pos = { line : int; col : int }

type location = {
  file : string option;
  pos : pos option;
  subject : subject;
}

let at ?file ?pos subject = { file; pos; subject }

type t = {
  code : string;
  severity : severity;
  loc : location;
  message : string;
  hint : string option;
}

let make ?file ?pos ?hint ~code ~severity subject message =
  { code; severity; loc = at ?file ?pos subject; message; hint }

let subject_key = function
  | Element l -> (0, l, [])
  | Function f -> (1, f, [])
  | Pattern p -> (2, p, [])
  | Root -> (3, "", [])
  | Schema_pair l -> (4, l, [])
  | Node path -> (5, "", path)

let compare a b =
  let file l = Option.value l.file ~default:"" in
  let posn l = match l.pos with Some p -> (p.line, p.col) | None -> (0, 0) in
  Stdlib.compare
    (file a.loc, posn a.loc, a.code, subject_key a.loc.subject, a.message)
    (file b.loc, posn b.loc, b.code, subject_key b.loc.subject, b.message)

let count sev ds =
  List.length (List.filter (fun d -> d.severity = sev) ds)

let max_severity = function
  | [] -> None
  | ds ->
    Some
      (List.fold_left
         (fun acc d -> if severity_geq d.severity acc then d.severity else acc)
         Hint ds)

let exceeds ~deny ds = List.exists (fun d -> severity_geq d.severity deny) ds

let pp ppf d =
  let place ppf loc =
    match (loc.file, loc.pos) with
    | Some f, Some p -> Fmt.pf ppf "%s:%d:%d " f p.line p.col
    | Some f, None -> Fmt.pf ppf "%s: " f
    | None, Some p -> Fmt.pf ppf "%d:%d " p.line p.col
    | None, None -> ()
  in
  Fmt.pf ppf "%a[%s] %a%a: %s" pp_severity d.severity d.code place d.loc
    pp_subject d.loc.subject d.message;
  match d.hint with
  | Some h -> Fmt.pf ppf "@,  hint: %s" h
  | None -> ()

(* JSON rendering reuses the registry's escaper so the two observability
   surfaces agree on string encoding. *)
let js = Axml_obs.Metrics.json_string

let subject_json = function
  | Element l -> Fmt.str {|{"kind":"element","name":%s}|} (js l)
  | Function f -> Fmt.str {|{"kind":"function","name":%s}|} (js f)
  | Pattern p -> Fmt.str {|{"kind":"pattern","name":%s}|} (js p)
  | Root -> {|{"kind":"root"}|}
  | Schema_pair l -> Fmt.str {|{"kind":"exchange","label":%s}|} (js l)
  | Node path ->
    Fmt.str {|{"kind":"node","path":[%s]}|}
      (String.concat "," (List.map string_of_int path))

let to_json d =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Fmt.str {|{"code":%s,"severity":%s,"subject":%s|} (js d.code)
       (js (Fmt.str "%a" pp_severity d.severity))
       (subject_json d.loc.subject));
  (match d.loc.file with
  | Some f -> Buffer.add_string b (Fmt.str {|,"file":%s|} (js f))
  | None -> ());
  (match d.loc.pos with
  | Some p ->
    Buffer.add_string b (Fmt.str {|,"line":%d,"col":%d|} p.line p.col)
  | None -> ());
  Buffer.add_string b (Fmt.str {|,"message":%s|} (js d.message));
  (match d.hint with
  | Some h -> Buffer.add_string b (Fmt.str {|,"hint":%s|} (js h))
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let report_to_json ds =
  let ds = List.sort compare ds in
  Fmt.str
    {|{"diagnostics":[%s],"summary":{"errors":%d,"warnings":%d,"hints":%d}}|}
    (String.concat "," (List.map to_json ds))
    (count Error ds) (count Warning ds) (count Hint ds)

let rules =
  [
    ("AXM000", Error, "usage or input error (bad file, unparsable schema or document)");
    ("AXM001", Error, "content model or signature is the empty language");
    ("AXM002", Warning, "content model is not 1-unambiguous");
    ("AXM003", Warning, "alternative branch is subsumed by earlier branches");
    ("AXM010", Warning, "element is unreachable from the root");
    ("AXM011", Error, "element admits no finite document (cyclic without base case)");
    ("AXM012", Warning, "function or pattern is declared but never referenced");
    ("AXM014", Hint, "schema declares no root");
    ("AXM020", Error, "sender document type cannot be safely exchanged at this label");
    ("AXM021", Error, "function can never be safely rewritten in any context it occurs in");
    ("AXM022", Hint, "function is absent from the target schema and must always materialize");
    ("AXM023", Warning, "invocable function never occurs in a sender document");
    ("AXM030", Error, "call to a function the contract does not declare");
    ("AXM031", Error, "call can never contribute to a valid exchanged document");
    ( "AXM032",
      Warning,
      "declared output can embed invocable calls deeper than the configured \
       rewriting depth k" );
    ("AXM033", Error, "document failed enforcement (rejected, faulted or precluded)");
    ( "AXM040",
      Warning,
      "schema evolution narrowed (or removed) a label's content model" );
    ( "AXM041",
      Warning,
      "schema evolution regressed a label's contract-level verdict" );
    ("AXM042", Error, "archived document cannot migrate to the new schema");
    ( "AXM043",
      Warning,
      "widened content model silently accepts previously-refused calls" );
    ( "AXM044",
      Warning,
      "schema evolution changed a function's signature or invocability" );
  ]
