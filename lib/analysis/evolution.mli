(** Schema evolution analysis: what changed between two versions of a
    schema, what the change does to exchangeability, and what a
    document corpus must materialize to move.

    The paper reduces schema-to-schema compatibility to document
    rewriting (Section 6); evolving a deployed exchange schema from v1
    to v2 asks three successively deeper questions, all decidable from
    the same Glushkov automata the linter already compiles (the
    approach of "Ensuring Query Compatibility with Evolving XML
    Schemas", arXiv:0811.4324, and "Automata-based Static Analysis of
    XML Document Adaptations", arXiv:1210.2453):

    - {b per-label classification} ({!classify}, {!diff}): for each
      label declared by both versions, compare the compiled content
      models by DFA inclusion both ways — {e identical} /
      {e widened} (v2 accepts strictly more) / {e narrowed} (v2
      refuses words v1 accepted) / {e incompatible} (neither
      contains the other). Function signatures and invocability are
      compared the same way.
    - {b verdict lift} ({!diff}): a narrowing at one label can flip
      the {e contract-level} verdict of an ancestor. The paper's
      Section 6 reduction is replayed against the pair: for each label
      [l] of v1, a fresh invocable function [g_l] with output
      [tau_1(l)] is added to v1 and the word [g_l] is analyzed against
      v2's model of [l] at depth k+1. Under v1 → v1 every label is
      trivially safe, so any non-[Safe] verdict is a regression
      introduced by the evolution (AXM041).
    - {b migration advisory} ({!migrate}): for each archived document,
      whether it already conforms to v2, rewrites safely after
      materializing a named set of calls, rewrites only possibly, or
      cannot migrate at all (AXM042).

    Findings flow through the existing {!Diagnostic} machinery as
    stable AXM04x codes; see [LINTING.md] for the catalog. Both entry
    points count runs and observe wall-clock seconds under
    [axml_evolution_*] metrics and run under ["diff"] / ["migrate"]
    trace spans (see [OBSERVABILITY.md]). *)

(** How a content model (or signature component) evolved, decided by
    Glushkov-DFA inclusion over the union alphabet. *)
type change =
  | Identical     (** same language *)
  | Widened       (** v2 accepts a strict superset: compatible widening *)
  | Narrowed      (** v2 refuses words v1 accepted *)
  | Incompatible  (** neither language contains the other *)

val pp_change : change Fmt.t
val change_to_string : change -> string

val classify :
  Axml_schema.Symbol.t Axml_regex.Regex.t ->
  Axml_schema.Symbol.t Axml_regex.Regex.t -> change
(** [classify r1 r2]: how the language of [r2] relates to the language
    of [r1] ([r1] is the old model). Inclusion both ways via
    [Auto.Dfa.subset] over the union alphabet. *)

(** Whether a declaration exists in both versions or only one. *)
type presence =
  | Both of change  (** declared by both; for functions, the worst of
                        the input/output changes *)
  | Only_v1         (** removed by the evolution *)
  | Only_v2         (** added by the evolution *)

type label_diff = {
  l_label : string;
  l_presence : presence;
  l_new_calls : string list;
      (** function names v2's model mentions that v1's never did —
          calls a widened model silently starts accepting (AXM043) *)
  l_witness : Axml_schema.Symbol.t list option;
      (** for narrowed/incompatible labels: a shortest children word
          v1 accepted and v2 refuses *)
}

type func_diff = {
  f_func : string;
  f_presence : presence;
  f_input : change;        (** [Identical] unless present in both *)
  f_output : change;
  f_invocable_v1 : bool;
  f_invocable_v2 : bool;
}

(** The Section 6 reduction replayed per label: the contract-level
    verdict of exchanging v1-documents of this type under v2. *)
type verdict_lift = {
  v_label : string;
  v_verdict : Axml_core.Contract.verdict;
  v_safe_at : int option;
      (** smallest rewriting depth at which the type is safe under v2
          ([Some 0]: already safe with no materialization headroom);
          [None] when not safe even at the configured [k] *)
  v_possible_at : int option;
}

type report = {
  r_k : int;                       (** rewriting depth of the lift *)
  r_labels : label_diff list;
  r_functions : func_diff list;
  r_verdicts : verdict_lift list;  (** labels reachable in v1 and
                                       declared by both versions; empty
                                       when v1 has no root or the pair
                                       has signature conflicts *)
  r_conflicts : string list;
      (** functions whose signature language changed: the merged
          contract of the pair cannot be built, so the verdict lift is
          skipped (each is also an AXM044 error) *)
  r_diagnostics : Diagnostic.t list;  (** sorted with {!Diagnostic.compare} *)
}

val diff :
  ?k:int -> ?engine:Axml_core.Contract.engine ->
  ?predicate:(string -> string -> bool) ->
  ?from_file:string ->
  ?from_positions:Axml_schema.Schema_parser.pos Axml_schema.Schema.String_map.t ->
  ?to_file:string ->
  ?to_positions:Axml_schema.Schema_parser.pos Axml_schema.Schema.String_map.t ->
  v1:Axml_schema.Schema.t -> v2:Axml_schema.Schema.t -> unit -> report
(** Diff two versions of one schema. [k] (default 1) is the rewriting
    depth of the verdict lift. Positions (from
    [Schema_parser.parse_with_positions]) attach [file:line:col] to
    each finding: label findings are attributed to the {e new}
    version's declaration ([to_file]/[to_positions]), removals to the
    old one. Declarations that fail to compile are skipped, never
    crashed on. Diagnostics emitted: AXM040 (narrowed or removed
    label), AXM041 (verdict regression), AXM043 (widening newly
    accepting calls), AXM044 (function signature change). *)

(** What a document needs in order to live under the new schema. *)
type advisory =
  | Conforms
      (** already an instance of v2 as-is — ship it unchanged *)
  | Materialize
      (** rewrites {e safely} once the named calls are materialized *)
  | Possible
      (** only a possible rewriting exists: materializing may work,
          but some service answers lead outside v2 *)
  | Doomed of string
      (** no rewriting at all; the payload says why (AXM042) *)

type doc_advisory = {
  a_doc : string;  (** the document's name (file path) *)
  a_advisory : advisory;
  a_calls : (Axml_core.Document.path * string) list;
      (** the exact calls to materialize: occurrences whose symbol the
          context's v2 content model does not accept, so they cannot
          remain embedded (document order) *)
  a_diagnostics : Diagnostic.t list;
}

type migration = {
  g_k : int;
  g_advisories : doc_advisory list;  (** input order *)
  g_migratable : bool;
      (** every document is [Conforms] or [Materialize] *)
  g_diagnostics : Diagnostic.t list;  (** all AXM042s, sorted *)
}

val migrate :
  ?k:int -> ?engine:Axml_core.Contract.engine ->
  ?predicate:(string -> string -> bool) ->
  v1:Axml_schema.Schema.t -> v2:Axml_schema.Schema.t ->
  (string * Axml_core.Document.t) list -> migration
(** Advise a corpus of archived v1-documents on moving to v2. Each
    document is validated against v2 as-is, then checked for safe and
    possible rewritability under the (v1, v2, k) contract; the calls
    to materialize are named per document.
    @raise Axml_schema.Schema.Schema_error when v1 and v2 disagree on
    a common function signature (run {!diff} first: the conflicts are
    reported there as AXM044 errors). *)

(** {1 JSON reports}

    One envelope shared by [axml diff], [axml migrate] and
    [axml compat]: [command], [from], [to], [k], the command's payload
    arrays, [diagnostics] (the {!Diagnostic.to_json} objects) and a
    severity [summary]. Validated against the test suite's JSON
    checker. *)

val report_to_json : ?from_file:string -> ?to_file:string -> report -> string
val migration_to_json :
  ?from_file:string -> ?to_file:string -> migration -> string

val compat_to_json :
  ?from_file:string -> ?to_file:string -> k:int ->
  Axml_core.Schema_rewrite.result -> string
(** The same envelope for the Section 6 whole-schema check, so tooling
    consumes all three commands uniformly. *)
