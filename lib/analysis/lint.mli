(** Static diagnostics over schemas, exchange contracts and intensional
    documents.

    Everything the Schema Enforcement module would discover at exchange
    time that is already decidable from the automata built at compile
    time (Sections 4–7 of the paper) is surfaced here ahead of time as
    {!Diagnostic.t}s:

    - {b regex level} ({!lint_compiled}): empty-language content
      models (AXM001), 1-unambiguity violations (AXM002), alternative
      branches subsumed by earlier ones (AXM003);
    - {b schema level} ({!lint_schema}): the regex rules over every
      content model and signature, plus elements unreachable from the
      root (AXM010), elements admitting no finite document (AXM011),
      functions/patterns never referenced (AXM012), missing root
      (AXM014);
    - {b contract level} ({!lint_contract}): per-function verdicts —
      never-safe (AXM021), always-materialize (AXM022), dead-invocable
      (AXM023), output deeper than the rewriting budget (AXM032: the
      function's declared output can embed invocable calls — expanding
      element labels through their content models — at a nesting depth
      exceeding the contract's configured k, so even a successful
      materialization may return a forest the receiver refuses) — and
      per-label schema-compatibility verdicts through [Schema_rewrite]
      (AXM020). The word analyses behind AXM021 run through
      [Contract.is_safe]/[is_possible] and are therefore memoized in
      the contract's existing analysis cache;
    - {b document level} ({!lint_document}): calls to undeclared
      functions (AXM030) and calls that can neither remain in nor
      materialize into their context's content model (AXM031).

    Every pass increments [axml_lint_runs_total{pass}] and
    [axml_lint_diagnostics_total{severity}], observes
    [axml_lint_seconds{pass}], and runs under a ["lint"] trace span.
    Results come back sorted with {!Diagnostic.compare}. Passes never
    raise on well-formed inputs (property-tested); content models that
    fail to compile are skipped, not crashed on. *)

val lint_compiled :
  ?file:string -> ?pos:Diagnostic.pos -> subject:Diagnostic.subject ->
  Axml_schema.Symbol.t Axml_regex.Regex.t -> Diagnostic.t list
(** The regex-level rules (AXM001/002/003) over one compiled content
    model, attributed to [subject]. AXM003 inspects top-level
    alternative branches only. *)

val lint_schema :
  ?file:string ->
  ?positions:Axml_schema.Schema_parser.pos Axml_schema.Schema.String_map.t ->
  ?predicate:(string -> string -> bool) ->
  Axml_schema.Schema.t -> Diagnostic.t list
(** All schema-local rules. [positions] (from
    [Schema_parser.parse_with_positions]) attaches source line/col to
    each finding's declaration; [predicate] answers function-pattern
    predicates when expanding patterns (default: accept everything). *)

val lint_contract : Axml_core.Contract.t -> Diagnostic.t list
(** The contract-level rules (AXM020–AXM023, AXM032) for a compiled
    exchange contract. The schema-compatibility pass (AXM020) needs the
    sender schema to declare a root; it is skipped (schema lint reports
    AXM014) otherwise. AXM032 compares each invocable sender function's
    output-call depth against the contract's k (see {!Axml_core.Contract.k}). *)

val lint_document :
  Axml_core.Contract.t -> Axml_core.Document.t -> Diagnostic.t list
(** The document-level rules (AXM030/AXM031) for one document under a
    contract. *)
