(** Structured lint diagnostics.

    Every finding of the static analyses in {!Lint} is a {!t}: a stable
    rule code ([AXM001]...), a {!severity}, a structured {!location}
    (what schema object or document node the finding is about, plus an
    optional source position threaded from [Schema_parser]) and a
    human message with an optional fix hint.

    Renderers are deliberately dumb: the text form is one
    [severity[CODE] file:line:col subject: message] line per
    diagnostic, the JSON form is a stable object consumed by tooling
    (and validated by the test suite's JSON checker). *)

type severity = Error | Warning | Hint

val pp_severity : severity Fmt.t
val severity_of_string : string -> severity option
(** Accepts ["error"], ["warning"], ["hint"]. *)

val severity_geq : severity -> severity -> bool
(** [severity_geq a b]: is [a] at least as severe as [b]?
    ([Error > Warning > Hint].) *)

(** What a diagnostic is about. *)
type subject =
  | Element of string      (** an element declaration *)
  | Function of string     (** a function declaration *)
  | Pattern of string      (** a pattern declaration *)
  | Root                   (** the schema's root (or its absence) *)
  | Schema_pair of string  (** sender/target compatibility at a label *)
  | Node of int list       (** a document node, by path from the root *)

val pp_subject : subject Fmt.t

type pos = { line : int; col : int }  (** 1-based source position *)

type location = {
  file : string option;  (** source file, when linting from disk *)
  pos : pos option;      (** position of the declaration, when known *)
  subject : subject;
}

val at : ?file:string -> ?pos:pos -> subject -> location

type t = {
  code : string;          (** stable rule code, e.g. ["AXM002"] *)
  severity : severity;
  loc : location;
  message : string;
  hint : string option;   (** suggested fix, when one is obvious *)
}

val make :
  ?file:string -> ?pos:pos -> ?hint:string ->
  code:string -> severity:severity -> subject -> string -> t

val compare : t -> t -> int
(** Order for stable reports: file, position, code, subject. *)

(** {1 Severity accounting} *)

val count : severity -> t list -> int
val max_severity : t list -> severity option
val exceeds : deny:severity -> t list -> bool
(** Does any diagnostic reach the [deny] threshold? *)

(** {1 Rendering} *)

val pp : t Fmt.t
(** One line, plus an indented [hint:] line when present. *)

val to_json : t -> string
(** A JSON object: [code], [severity], [subject] (kind + name/path),
    optional [file]/[line]/[col], [message], optional [hint]. *)

val report_to_json : t list -> string
(** [{"diagnostics": [...], "summary": {"errors": n, ...}}] — sorted
    with {!compare}. *)

(** {1 Catalog} *)

val rules : (string * severity * string) list
(** Every rule the linter can emit: code, default severity, one-line
    description. Kept in sync with [LINTING.md] (checked by tests). *)
