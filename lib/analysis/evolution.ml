(* Schema evolution: per-label DFA-inclusion classification, the
   Section 6 verdict lift replayed against the (v1, v2) pair, and the
   corpus migration advisory. See evolution.mli for the model. *)

module R = Axml_regex.Regex
module Schema = Axml_schema.Schema
module Schema_parser = Axml_schema.Schema_parser
module Symbol = Axml_schema.Symbol
module Auto = Axml_schema.Auto
module Contract = Axml_core.Contract
module Rewriter = Axml_core.Rewriter
module Validate = Axml_core.Validate
module Document = Axml_core.Document
module Schema_rewrite = Axml_core.Schema_rewrite
module D = Diagnostic
module Metrics = Axml_obs.Metrics
module Trace = Axml_obs.Trace

(* ------------------------------------------------------------------ *)
(* Observability: runs, wall-clock, per-label classifications and
   per-document advisories, under a "diff" / "migrate" trace span.     *)

let runs_total pass =
  Metrics.counter ~help:"Evolution analyses"
    ~labels:[ ("pass", pass) ] "axml_evolution_runs_total"

let pass_seconds pass =
  Metrics.histogram ~help:"Wall-clock seconds per evolution analysis"
    ~labels:[ ("pass", pass) ] "axml_evolution_seconds"

let labels_total change =
  Metrics.counter ~help:"Per-label classifications by the schema differ"
    ~labels:[ ("change", change) ] "axml_evolution_labels_total"

let documents_total advisory =
  Metrics.counter ~help:"Migration advisories by outcome"
    ~labels:[ ("advisory", advisory) ] "axml_evolution_documents_total"

let diagnostics_total severity =
  Metrics.counter ~help:"Diagnostics emitted by evolution analyses"
    ~labels:[ ("severity", severity) ] "axml_evolution_diagnostics_total"

let instrumented pass f =
  Metrics.inc (runs_total pass);
  Metrics.time (pass_seconds pass) (fun () -> Trace.with_span pass f)

let observe_diagnostics ds =
  List.iter
    (fun (d : D.t) ->
      Metrics.inc
        (diagnostics_total (Fmt.str "%a" D.pp_severity d.D.severity)))
    ds

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

type change = Identical | Widened | Narrowed | Incompatible

let change_to_string = function
  | Identical -> "identical"
  | Widened -> "widened"
  | Narrowed -> "narrowed"
  | Incompatible -> "incompatible"

let pp_change ppf c = Fmt.string ppf (change_to_string c)

(* The product construction completes both automata over the union
   alphabet, so inclusion is sound across models mentioning different
   symbols. *)
let classify r1 r2 =
  let d1 = Auto.Dfa.of_regex r1 and d2 = Auto.Dfa.of_regex r2 in
  match (Auto.Dfa.subset d1 d2, Auto.Dfa.subset d2 d1) with
  | true, true -> Identical
  | true, false -> Widened
  | false, true -> Narrowed
  | false, false -> Incompatible

type presence = Both of change | Only_v1 | Only_v2

type label_diff = {
  l_label : string;
  l_presence : presence;
  l_new_calls : string list;
  l_witness : Symbol.t list option;
}

type func_diff = {
  f_func : string;
  f_presence : presence;
  f_input : change;
  f_output : change;
  f_invocable_v1 : bool;
  f_invocable_v2 : bool;
}

type verdict_lift = {
  v_label : string;
  v_verdict : Contract.verdict;
  v_safe_at : int option;
  v_possible_at : int option;
}

type report = {
  r_k : int;
  r_labels : label_diff list;
  r_functions : func_diff list;
  r_verdicts : verdict_lift list;
  r_conflicts : string list;
  r_diagnostics : D.t list;
}

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

let pp_word ppf = function
  | [] -> Fmt.string ppf "the empty word"
  | w -> Fmt.(list ~sep:(any ".") Auto.pp_sym) ppf w

let fun_names r =
  List.sort_uniq compare
    (List.filter_map
       (function Symbol.Fun f -> Some f | _ -> None)
       (R.symbols r))

let union_names xs ys = List.sort_uniq compare (xs @ ys)

(* The worse of two changes; diverging directions make the pair
   incomparable as a whole. *)
let worst a b =
  match (a, b) with
  | Incompatible, _ | _, Incompatible -> Incompatible
  | Narrowed, Widened | Widened, Narrowed -> Incompatible
  | Narrowed, _ | _, Narrowed -> Narrowed
  | Widened, _ | _, Widened -> Widened
  | Identical, Identical -> Identical

(* ------------------------------------------------------------------ *)
(* diff                                                                *)

let diff ?(k = 1) ?(engine = Contract.Lazy) ?predicate ?from_file
    ?from_positions ?to_file ?to_positions ~(v1 : Schema.t)
    ~(v2 : Schema.t) () : report =
  instrumented "diff" @@ fun () ->
  let env1 = Schema.env_of_schema ?predicate v1 in
  let env2 = Schema.env_of_schema ?predicate v2 in
  let pos_of positions name =
    Option.bind positions (fun m ->
        Option.map
          (fun (p : Schema_parser.pos) -> { D.line = p.line; col = p.col })
          (Schema.String_map.find_opt name m))
  in
  (* Findings about the evolved declaration point at the new version's
     source; removals at the old one. *)
  let at_new name = (to_file, pos_of to_positions name) in
  let at_old name = (from_file, pos_of from_positions name) in
  let diff_label l =
    match (Schema.find_element v1 l, Schema.find_element v2 l) with
    | None, None -> None
    | Some _, None ->
      let file, pos = at_old l in
      Some
        ( { l_label = l; l_presence = Only_v1; l_new_calls = [];
            l_witness = None },
          [
            D.make ?file ?pos ~code:"AXM040" ~severity:D.Error
              ~hint:
                "re-declare the element, or migrate and re-root archived \
                 documents of this type"
              (D.Element l)
              "element removed by the new version: archived documents of \
               this type have nowhere to land";
          ] )
    | None, Some _ ->
      Some
        ( { l_label = l; l_presence = Only_v2; l_new_calls = [];
            l_witness = None },
          [] )
    | Some c1, Some c2 ->
      (match (Schema.compile_content env1 c1, Schema.compile_content env2 c2) with
       | exception Schema.Schema_error _ -> None
       | r1, r2 ->
         let change = classify r1 r2 in
         Metrics.inc (labels_total (change_to_string change));
         let new_calls =
           let old_calls = fun_names r1 in
           List.filter (fun f -> not (List.mem f old_calls)) (fun_names r2)
         in
         let witness =
           match change with
           | Narrowed | Incompatible ->
             Auto.Dfa.separating_word (Auto.Dfa.of_regex r1)
               (Auto.Dfa.of_regex r2)
           | Identical | Widened -> None
         in
         let file, pos = at_new l in
         let ds =
           match change with
           | Identical -> []
           | Widened ->
             if new_calls = [] then []
             else
               [
                 D.make ?file ?pos ~code:"AXM043" ~severity:D.Warning
                   ~hint:
                     "make sure receivers are prepared for unmaterialized \
                      calls, or keep the model extensional"
                   (D.Element l)
                   (Fmt.str
                      "widened content model silently accepts embedded \
                       call(s) %s that the old version always refused"
                      (String.concat ", " new_calls));
               ]
           | Narrowed ->
             [
               D.make ?file ?pos ~code:"AXM040" ~severity:D.Warning
                 ~hint:
                   "widen the new model, or run 'axml migrate' over the \
                    archived corpus"
                 (D.Element l)
                 (Fmt.str
                    "content model narrowed: the new version refuses %a, \
                     which the old version accepted"
                    pp_word
                    (Option.value witness ~default:[]));
             ]
           | Incompatible ->
             [
               D.make ?file ?pos ~code:"AXM040" ~severity:D.Error
                 ~hint:"evolve the model by widening only, or version the label"
                 (D.Element l)
                 (Fmt.str
                    "content models are incomparable: the new version \
                     refuses %a (accepted before) and accepts words the old \
                     version refused"
                    pp_word
                    (Option.value witness ~default:[]));
             ]
         in
         Some
           ( { l_label = l; l_presence = Both change; l_new_calls = new_calls;
               l_witness = witness },
             ds ))
  in
  let diff_func f =
    match (Schema.find_function v1 f, Schema.find_function v2 f) with
    | None, None -> None
    | Some fn, None ->
      let file, pos = at_old f in
      Some
        ( { f_func = f; f_presence = Only_v1; f_input = Identical;
            f_output = Identical; f_invocable_v1 = fn.Schema.f_invocable;
            f_invocable_v2 = false },
          [
            D.make ?file ?pos ~code:"AXM044" ~severity:D.Warning
              ~hint:
                "archived calls to it must be materialized before the \
                 corpus migrates"
              (D.Function f) "function removed by the new version";
          ] )
    | None, Some fn ->
      Some
        ( { f_func = f; f_presence = Only_v2; f_input = Identical;
            f_output = Identical; f_invocable_v1 = false;
            f_invocable_v2 = fn.Schema.f_invocable },
          [] )
    | Some fn1, Some fn2 ->
      let comp env c =
        match Schema.compile_signature env c with
        | exception Schema.Schema_error _ -> None
        | r -> Some r
      in
      let cls a b =
        match (a, b) with
        | Some r1, Some r2 -> classify r1 r2
        | _ -> Identical
      in
      let ci = cls (comp env1 fn1.Schema.f_input) (comp env2 fn2.Schema.f_input) in
      let co =
        cls (comp env1 fn1.Schema.f_output) (comp env2 fn2.Schema.f_output)
      in
      let change = worst ci co in
      let inv1 = fn1.Schema.f_invocable and inv2 = fn2.Schema.f_invocable in
      let file, pos = at_new f in
      let ds =
        if change <> Identical then
          [
            D.make ?file ?pos ~code:"AXM044" ~severity:D.Error
              ~hint:
                "peers assume common functions agree on their signatures \
                 (the paper's Section 4); version the function name instead \
                 of its type"
              (D.Function f)
              (Fmt.str
                 "signature changed between versions (input %a, output %a): \
                  the merged exchange contract of the pair cannot be built"
                 pp_change ci pp_change co);
          ]
        else if inv1 <> inv2 then
          [
            D.make ?file ?pos ~code:"AXM044" ~severity:D.Warning
              ~hint:"invocability narrows or widens the rewriter's options"
              (D.Function f)
              (if inv1 then
                 "function is no longer invocable: rewritings can keep its \
                  calls but never fire them"
               else
                 "function became invocable: rewritings may now fire calls \
                  the old version had to keep embedded");
          ]
        else []
      in
      Some
        ( { f_func = f; f_presence = Both change; f_input = ci; f_output = co;
            f_invocable_v1 = inv1; f_invocable_v2 = inv2 },
          ds )
  in
  let labels, label_ds =
    List.split
      (List.filter_map diff_label
         (union_names (Schema.element_names v1) (Schema.element_names v2)))
  in
  let funcs, func_ds =
    List.split
      (List.filter_map diff_func
         (union_names (Schema.function_names v1) (Schema.function_names v2)))
  in
  let conflicts =
    List.filter_map
      (fun fd ->
        match fd.f_presence with
        | Both c when c <> Identical -> Some fd.f_func
        | _ -> None)
      funcs
  in
  (* The verdict lift (Section 6 against the pair): one batched contract
     carrying a fresh invocable g_l per lifted label — the g's are
     mutually invisible (no content mentions them), so they share the
     merge, the compiled regexes and the analysis cache. *)
  let verdicts, lift_ds =
    match v1.Schema.root with
    | None -> ([], [])
    | Some _ when conflicts <> [] -> ([], [])
    | Some root ->
      let lift_labels =
        List.filter
          (fun l ->
            Schema.find_element v1 l <> None
            && Schema.find_element v2 l <> None)
          (Schema_rewrite.reachable_labels env1 v1 root)
      in
      let taken = ref Schema.String_set.empty in
      let fresh base =
        let rec go i =
          let candidate = Fmt.str "%s#%d" base i in
          if
            Schema.String_map.mem candidate env1.Schema.env_functions
            || Schema.String_map.mem candidate env2.Schema.env_functions
            || Schema.String_set.mem candidate !taken
          then go (i + 1)
          else begin
            taken := Schema.String_set.add candidate !taken;
            candidate
          end
        in
        go 0
      in
      let s0', gnames =
        List.fold_left
          (fun (s, gs) l ->
            match Schema.find_element v1 l with
            | None -> (s, gs)
            | Some content ->
              let g = fresh ("g_" ^ l) in
              ( Schema.add_function s
                  (Schema.func g ~input:R.epsilon ~output:content),
                (l, g) :: gs ))
          (v1, []) lift_labels
      in
      (match Contract.create ~k:(k + 1) ~engine ?predicate ~s0:s0' ~target:v2 () with
       | exception Schema.Schema_error _ -> ([], [])
       | contract ->
         let lift (l, g) =
           match Contract.element_regex contract l with
           | None -> None
           | Some target_regex ->
             let m =
               Contract.minimal_k ~max_k:(k + 1) contract ~target_regex
                 [ Symbol.Fun g ]
             in
             (* the synthetic call pays one depth level: contract depth d
                answers the user's question at depth d - 1 *)
             let user d = max 0 (d - 1) in
             let verdict =
               match (m.Contract.safe_at, m.Contract.possible_at) with
               | Some _, _ -> Contract.Safe
               | None, Some _ -> Contract.Possible_only
               | None, None -> Contract.Impossible
             in
             Some
               { v_label = l; v_verdict = verdict;
                 v_safe_at = Option.map user m.Contract.safe_at;
                 v_possible_at = Option.map user m.Contract.possible_at }
         in
         let verdicts = List.filter_map lift (List.rev gnames) in
         let ds =
           List.filter_map
             (fun v ->
               let file, pos = at_new v.v_label in
               match v.v_verdict with
               | Contract.Safe -> None
               | Contract.Possible_only ->
                 Some
                   (D.make ?file ?pos ~code:"AXM041" ~severity:D.Warning
                      ~hint:
                        "raise the rewriting depth k, widen the new model, \
                         or migrate the archived corpus ('axml migrate')"
                      (D.Schema_pair v.v_label)
                      "verdict regression (safe -> mixed): every old-version \
                       document of this type exchanged safely, but under the \
                       new version not all of them rewrite safely any more")
               | Contract.Impossible ->
                 Some
                   (D.make ?file ?pos ~code:"AXM041" ~severity:D.Error
                      ~hint:"align the content models of the two versions"
                      (D.Schema_pair v.v_label)
                      "verdict regression (safe -> impossible): no document \
                       of this type has any rewriting into the new version"))
             verdicts
         in
         (verdicts, ds))
  in
  let diagnostics =
    List.sort D.compare (List.concat label_ds @ List.concat func_ds @ lift_ds)
  in
  observe_diagnostics diagnostics;
  { r_k = k; r_labels = labels; r_functions = funcs; r_verdicts = verdicts;
    r_conflicts = conflicts; r_diagnostics = diagnostics }

(* ------------------------------------------------------------------ *)
(* migrate                                                             *)

type advisory = Conforms | Materialize | Possible | Doomed of string

type doc_advisory = {
  a_doc : string;
  a_advisory : advisory;
  a_calls : (Document.path * string) list;
  a_diagnostics : D.t list;
}

type migration = {
  g_k : int;
  g_advisories : doc_advisory list;
  g_migratable : bool;
  g_diagnostics : D.t list;
}

let advisory_string = function
  | Conforms -> "conforms"
  | Materialize -> "materialize"
  | Possible -> "possible"
  | Doomed _ -> "doomed"

(* The calls that cannot stay embedded: occurrences whose symbol the
   v2 content model of their context does not mention, so any rewriting
   into v2 must fire them. A call in an unknown context (undeclared
   label, or the document root itself) must fire too. *)
let must_materialize contract doc =
  let parent path =
    let rec drop_last = function
      | [] | [ _ ] -> []
      | x :: tl -> x :: drop_last tl
    in
    match path with [] -> None | _ -> Document.get doc (drop_last path)
  in
  List.filter
    (fun (path, name) ->
      let model =
        match parent path with
        | Some (Document.Elem { label; _ }) ->
          Contract.element_regex contract label
        | Some (Document.Call { name = g; _ }) -> Contract.input_regex contract g
        | Some (Document.Data _) | None -> None
      in
      match model with
      | None -> true
      | Some m -> not (List.mem (Symbol.Fun name) (R.symbols m)))
    (Document.calls_with_paths doc)

let migrate ?(k = 1) ?(engine = Contract.Lazy) ?predicate ~v1 ~v2 docs :
    migration =
  instrumented "migrate" @@ fun () ->
  let contract = Contract.create ~k ~engine ?predicate ~s0:v1 ~target:v2 () in
  let rw = Rewriter.of_contract contract in
  (* validate against v2 in the merged environment, so calls declared
     only by v1 do not read as unknown functions *)
  let vctx = Validate.ctx ~env:(Contract.env contract) v2 in
  let advise (name, doc) =
    let calls = must_materialize contract doc in
    let advisory, ds =
      if Validate.document_violations vctx doc = [] then (Conforms, [])
      else if (Rewriter.check ~mode:Rewriter.Check_safe rw doc).Rewriter.ok
      then (Materialize, [])
      else
        let rep = Rewriter.check ~mode:Rewriter.Check_possible rw doc in
        if rep.Rewriter.ok then (Possible, [])
        else
          let reason, at =
            match rep.Rewriter.failures with
            | f :: _ ->
              (Fmt.str "%a" Rewriter.pp_reason f.Rewriter.reason, f.Rewriter.at)
            | [] -> ("no rewriting lands in the new schema", [])
          in
          ( Doomed reason,
            [
              D.make ~file:name ~code:"AXM042" ~severity:D.Error
                ~hint:
                  "no materialization can move this document: widen the new \
                   schema or re-author the document"
                (D.Node at)
                (Fmt.str "doomed after migration: %s" reason);
            ] )
    in
    Metrics.inc (documents_total (advisory_string advisory));
    { a_doc = name; a_advisory = advisory; a_calls = calls;
      a_diagnostics = ds }
  in
  let advisories = List.map advise docs in
  let diagnostics =
    List.sort D.compare (List.concat_map (fun a -> a.a_diagnostics) advisories)
  in
  observe_diagnostics diagnostics;
  { g_k = k; g_advisories = advisories;
    g_migratable =
      List.for_all
        (fun a ->
          match a.a_advisory with
          | Conforms | Materialize -> true
          | Possible | Doomed _ -> false)
        advisories;
    g_diagnostics = diagnostics }

(* ------------------------------------------------------------------ *)
(* JSON reports: one envelope for diff / migrate / compat              *)

let js = Axml_obs.Metrics.json_string

let summary_json ds =
  Fmt.str {|{"errors":%d,"warnings":%d,"hints":%d}|} (D.count D.Error ds)
    (D.count D.Warning ds) (D.count D.Hint ds)

let envelope ~command ?from_file ?to_file ~k ~payload ds =
  let b = Buffer.create 512 in
  Buffer.add_string b (Fmt.str {|{"command":%s|} (js command));
  Option.iter
    (fun f -> Buffer.add_string b (Fmt.str {|,"from":%s|} (js f)))
    from_file;
  Option.iter
    (fun f -> Buffer.add_string b (Fmt.str {|,"to":%s|} (js f)))
    to_file;
  Buffer.add_string b (Fmt.str {|,"k":%d|} k);
  Buffer.add_string b payload;
  Buffer.add_string b
    (Fmt.str {|,"diagnostics":[%s],"summary":%s}|}
       (String.concat "," (List.map D.to_json (List.sort D.compare ds)))
       (summary_json ds));
  Buffer.contents b

let presence_change = function
  | Both c -> change_to_string c
  | Only_v1 -> "removed"
  | Only_v2 -> "added"

let label_json ld =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Fmt.str {|{"label":%s,"change":%s|} (js ld.l_label)
       (js (presence_change ld.l_presence)));
  if ld.l_new_calls <> [] then
    Buffer.add_string b
      (Fmt.str {|,"new_calls":[%s]|}
         (String.concat "," (List.map js ld.l_new_calls)));
  Option.iter
    (fun w ->
      Buffer.add_string b
        (Fmt.str {|,"witness":%s|} (js (Fmt.str "%a" pp_word w))))
    ld.l_witness;
  Buffer.add_char b '}';
  Buffer.contents b

let func_json fd =
  Fmt.str
    {|{"function":%s,"change":%s,"input":%s,"output":%s,"invocable_v1":%b,"invocable_v2":%b}|}
    (js fd.f_func)
    (js (presence_change fd.f_presence))
    (js (change_to_string fd.f_input))
    (js (change_to_string fd.f_output))
    fd.f_invocable_v1 fd.f_invocable_v2

let verdict_string = function
  | Contract.Safe -> "safe"
  | Contract.Possible_only -> "possible"
  | Contract.Impossible -> "impossible"

let depth_json = function None -> "null" | Some d -> string_of_int d

let verdict_json v =
  Fmt.str {|{"label":%s,"verdict":%s,"safe_at":%s,"possible_at":%s}|}
    (js v.v_label)
    (js (verdict_string v.v_verdict))
    (depth_json v.v_safe_at) (depth_json v.v_possible_at)

let report_to_json ?from_file ?to_file r =
  let payload =
    Fmt.str {|,"labels":[%s],"functions":[%s],"verdicts":[%s],"conflicts":[%s]|}
      (String.concat "," (List.map label_json r.r_labels))
      (String.concat "," (List.map func_json r.r_functions))
      (String.concat "," (List.map verdict_json r.r_verdicts))
      (String.concat "," (List.map js r.r_conflicts))
  in
  envelope ~command:"diff" ?from_file ?to_file ~k:r.r_k ~payload
    r.r_diagnostics

let call_json (path, name) =
  Fmt.str {|{"path":[%s],"name":%s}|}
    (String.concat "," (List.map string_of_int path))
    (js name)

let doc_advisory_json a =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Fmt.str {|{"doc":%s,"advisory":%s|} (js a.a_doc)
       (js (advisory_string a.a_advisory)));
  if a.a_calls <> [] then
    Buffer.add_string b
      (Fmt.str {|,"calls":[%s]|}
         (String.concat "," (List.map call_json a.a_calls)));
  (match a.a_advisory with
  | Doomed reason ->
    Buffer.add_string b (Fmt.str {|,"reason":%s|} (js reason))
  | Conforms | Materialize | Possible -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let migration_to_json ?from_file ?to_file g =
  let payload =
    Fmt.str {|,"documents":[%s],"migratable":%b|}
      (String.concat "," (List.map doc_advisory_json g.g_advisories))
      g.g_migratable
  in
  envelope ~command:"migrate" ?from_file ?to_file ~k:g.g_k ~payload
    g.g_diagnostics

let compat_to_json ?from_file ?to_file ~k (r : Schema_rewrite.result) =
  let verdict_json (v : Schema_rewrite.label_verdict) =
    let b = Buffer.create 64 in
    Buffer.add_string b
      (Fmt.str {|{"label":%s,"safe":%b|} (js v.Schema_rewrite.label)
         v.Schema_rewrite.safe);
    Option.iter
      (fun why -> Buffer.add_string b (Fmt.str {|,"reason":%s|} (js why)))
      v.Schema_rewrite.reason;
    Buffer.add_char b '}';
    Buffer.contents b
  in
  let payload =
    Fmt.str {|,"verdicts":[%s],"compatible":%b|}
      (String.concat ","
         (List.map verdict_json r.Schema_rewrite.verdicts))
      r.Schema_rewrite.compatible
  in
  envelope ~command:"compat" ?from_file ?to_file ~k ~payload []
